//! DCG functions executed natively via the x86-64 backend: the baseline
//! must be *correct* for the VCODE-vs-DCG speed comparison to be fair.

use dcg::Fun;
use vcode::target::Leaf;
use vcode::{BinOp, Cond, Ty, UnOp};
use vcode_x64::{ExecCode, ExecMem, X64};

fn compile(f: &Fun) -> ExecCode {
    let mut mem = ExecMem::new(8192).unwrap();
    f.compile::<X64>(mem.as_mut_slice(), Leaf::Yes).unwrap();
    mem.finalize().unwrap()
}

#[test]
fn plus1() {
    let mut f = Fun::new("%i").unwrap();
    let x = f.arg(0);
    let one = f.consti(1);
    let s = f.binop(BinOp::Add, Ty::I, x, one);
    f.ret(Ty::I, s);
    let code = compile(&f);
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(i32) -> i32 = unsafe { code.as_fn() };
    assert_eq!(g(41), 42);
}

#[test]
fn arithmetic_expression_tree() {
    // (x * 3 + y / 2) ^ (y - x)
    let mut f = Fun::new("%i%i").unwrap();
    let x = f.arg(0);
    let y = f.arg(1);
    let three = f.consti(3);
    let two = f.consti(2);
    let m = f.binop(BinOp::Mul, Ty::I, x, three);
    let d = f.binop(BinOp::Div, Ty::I, y, two);
    let sum = f.binop(BinOp::Add, Ty::I, m, d);
    let diff = f.binop(BinOp::Sub, Ty::I, y, x);
    let r = f.binop(BinOp::Xor, Ty::I, sum, diff);
    f.ret(Ty::I, r);
    let code = compile(&f);
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(i32, i32) -> i32 = unsafe { code.as_fn() };
    for (x, y) in [(1, 2), (10, 7), (-5, 100), (0, 0)] {
        assert_eq!(g(x, y), (x * 3 + y / 2) ^ (y - x), "({x}, {y})");
    }
}

#[test]
fn loads_stores_and_branches() {
    // Sums a null-terminated i32 array.
    let mut f = Fun::new("%p").unwrap();
    let p0 = f.arg(0);
    // sum in a store-free accumulator is awkward without assignments;
    // use memory: *out += ... — simpler: loop summing until zero via
    // repeated ret is impossible; instead compute sum of exactly 4
    // elements unrolled (tree IR has no loops without statements).
    let mut acc = f.load(Ty::I, p0, 0);
    for i in 1..4 {
        let e = f.load(Ty::I, p0, i * 4);
        acc = f.binop(BinOp::Add, Ty::I, acc, e);
    }
    f.ret(Ty::I, acc);
    let code = compile(&f);
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(*const i32) -> i32 = unsafe { code.as_fn() };
    let data = [10, 20, 30, 40];
    assert_eq!(g(data.as_ptr()), 100);
}

#[test]
fn control_flow_abs() {
    let mut f = Fun::new("%i").unwrap();
    let x = f.arg(0);
    let zero = f.consti(0);
    let pos = f.label();
    f.branch(Cond::Ge, Ty::I, x, zero, pos);
    let n = f.unop(UnOp::Neg, Ty::I, x);
    f.ret(Ty::I, n);
    f.bind(pos);
    f.ret(Ty::I, x);
    let code = compile(&f);
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(i32) -> i32 = unsafe { code.as_fn() };
    assert_eq!(g(5), 5);
    assert_eq!(g(-5), 5);
    assert_eq!(g(0), 0);
}

#[test]
fn loop_via_statements() {
    // sum 0..n with a backward branch.
    // DCG expresses loops through memory (no SSA): use a local cell.
    let mut f = Fun::new("%i%p").unwrap();
    let n = f.arg(0);
    let cell = f.arg(1); // scratch: cell[0] = i, cell[1] = sum
    let zero = f.consti(0);
    f.store(Ty::I, cell, 0, zero);
    let zero2 = f.consti(0);
    f.store(Ty::I, cell, 4, zero2);
    let top = f.label();
    let done = f.label();
    f.bind(top);
    let i = f.load(Ty::I, cell, 0);
    f.branch(Cond::Ge, Ty::I, i, n, done);
    let i2 = f.load(Ty::I, cell, 0);
    let s = f.load(Ty::I, cell, 4);
    let s2 = f.binop(BinOp::Add, Ty::I, s, i2);
    f.store(Ty::I, cell, 4, s2);
    let i3 = f.load(Ty::I, cell, 0);
    let one = f.consti(1);
    let i4 = f.binop(BinOp::Add, Ty::I, i3, one);
    f.store(Ty::I, cell, 0, i4);
    f.jump(top);
    f.bind(done);
    let s = f.load(Ty::I, cell, 4);
    f.ret(Ty::I, s);
    let code = compile(&f);
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(i32, *mut i32) -> i32 = unsafe { code.as_fn() };
    let mut cell = [0i32; 2];
    assert_eq!(g(10, cell.as_mut_ptr()), 45);
    assert_eq!(g(0, cell.as_mut_ptr()), 0);
}

#[test]
fn doubles_through_the_ir() {
    let mut f = Fun::new("%d%d").unwrap();
    let x = f.arg(0);
    let y = f.arg(1);
    let half = f.constd(0.5);
    let m = f.binop(BinOp::Mul, Ty::D, x, y);
    let r = f.binop(BinOp::Add, Ty::D, m, half);
    f.ret(Ty::D, r);
    let code = compile(&f);
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(f64, f64) -> f64 = unsafe { code.as_fn() };
    assert_eq!(g(3.0, 4.0), 12.5);
}

#[test]
fn conversions_through_the_ir() {
    let mut f = Fun::new("%i").unwrap();
    let x = f.arg(0);
    let d = f.cvt(Ty::I, Ty::D, x);
    let half = f.constd(0.5);
    let h = f.binop(BinOp::Mul, Ty::D, d, half);
    let r = f.cvt(Ty::D, Ty::I, h);
    f.ret(Ty::I, r);
    let code = compile(&f);
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let g: extern "C" fn(i32) -> i32 = unsafe { code.as_fn() };
    assert_eq!(g(9), 4);
}

#[test]
fn matches_vcode_direct_generation() {
    // The same computation generated both ways must agree — DCG is the
    // control in the codegen-cost experiment.
    use vcode::Assembler;
    let mut f = Fun::new("%i%i").unwrap();
    let x = f.arg(0);
    let y = f.arg(1);
    let t = f.binop(BinOp::Mul, Ty::I, x, y);
    let c = f.consti(17);
    let r = f.binop(BinOp::Add, Ty::I, t, c);
    f.ret(Ty::I, r);
    let dcg_code = compile(&f);
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let dcg: extern "C" fn(i32, i32) -> i32 = unsafe { dcg_code.as_fn() };

    let mut mem = ExecMem::new(4096).unwrap();
    let mut a = Assembler::<X64>::lambda(mem.as_mut_slice(), "%i%i", Leaf::Yes).unwrap();
    let (x, y) = (a.arg(0), a.arg(1));
    a.muli(x, x, y);
    a.addii(x, x, 17);
    a.reti(x);
    a.end().unwrap();
    let vc_code = mem.finalize().unwrap();
    // SAFETY: the buffer holds a complete emitted function matching this signature.
    let vc: extern "C" fn(i32, i32) -> i32 = unsafe { vc_code.as_fn() };

    for (x, y) in [(0, 0), (3, 4), (-7, 9), (1000, 1000)] {
        assert_eq!(dcg(x, y), vc(x, y));
    }
}
