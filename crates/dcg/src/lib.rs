//! # dcg — an IR-tree dynamic code generator (the VCODE paper's baseline)
//!
//! A reproduction of DCG (Engler & Proebsting, *"DCG: An efficient,
//! retargetable dynamic code generation system"*, ASPLOS 1994), the
//! system VCODE descends from and is compared against: "Compared to DCG,
//! VCODE is both substantially simpler and approximately 35 times faster.
//! Both of these benefits come from eschewing an intermediate
//! representation during code generation; in contrast, DCG builds and
//! consumes IR-trees at runtime" (paper §2).
//!
//! This crate exists to reproduce that comparison. Clients describe code
//! as expression trees ([`Fun::binop`], [`Fun::load`], ...) which are
//! *allocated at runtime*, then [`Fun::compile`] walks the trees doing
//! pattern-directed instruction selection (maximal munch with
//! constant-operand folding into immediate forms) and register
//! allocation, emitting through the same `vcode` backends. The space and
//! time proportional to the number of IR nodes is exactly the overhead
//! VCODE's in-place generation eliminates.
//!
//! ```
//! use dcg::Fun;
//! use vcode::{Leaf, Ty};
//! use vcode::fake::FakeTarget;
//!
//! // int plus1(int x) { return x + 1; }
//! let mut f = Fun::new("%i")?;
//! let x = f.arg(0);
//! let one = f.consti(1);
//! let sum = f.binop(vcode::BinOp::Add, Ty::I, x, one);
//! f.ret(Ty::I, sum);
//! let mut mem = vec![0u8; 1024];
//! let fin = f.compile::<FakeTarget>(&mut mem, Leaf::Yes)?;
//! assert!(fin.len > 0);
//! # Ok::<(), dcg::DcgError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt;
use vcode::target::{JumpTarget, Leaf};
use vcode::{Assembler, BinOp, Cond, Error, Finished, Reg, RegClass, Sig, Target, Ty, UnOp};

/// Reference to an expression node within a [`Fun`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeId(u32);

/// A label in the statement stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabelId(u32);

/// An expression-tree node — this is the intermediate representation
/// whose construction and consumption at runtime VCODE eliminates.
#[derive(Debug, Clone)]
enum Node {
    Arg(usize),
    ConstI(Ty, i64),
    ConstF32(f32),
    ConstF64(f64),
    Binop(BinOp, Ty, NodeId, NodeId),
    Unop(UnOp, Ty, NodeId),
    Cvt(Ty, Ty, NodeId),
    Load(Ty, NodeId, i32),
}

/// A statement (the roots of the expression trees).
#[derive(Debug, Clone)]
enum Stmt {
    Store(Ty, NodeId, i32, NodeId),
    Ret(Ty, NodeId),
    RetVoid,
    Branch(Cond, Ty, NodeId, NodeId, LabelId),
    Jump(LabelId),
    Bind(LabelId),
}

/// Error from building or compiling a function.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DcgError {
    /// Underlying code-generation error.
    Codegen(Error),
    /// Ran out of registers while evaluating a tree (tree too deep for
    /// the simple Sethi–Ullman-free allocator).
    OutOfRegisters,
    /// Malformed signature string.
    BadSignature(vcode::SigParseError),
}

impl fmt::Display for DcgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcgError::Codegen(e) => write!(f, "{e}"),
            DcgError::OutOfRegisters => write!(f, "expression tree exhausted the register file"),
            DcgError::BadSignature(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for DcgError {}

impl From<Error> for DcgError {
    fn from(e: Error) -> DcgError {
        DcgError::Codegen(e)
    }
}

impl From<vcode::SigParseError> for DcgError {
    fn from(e: vcode::SigParseError) -> DcgError {
        DcgError::BadSignature(e)
    }
}

/// A function under construction: a forest of expression trees plus a
/// statement list.
#[derive(Debug)]
pub struct Fun {
    sig: Sig,
    nodes: Vec<Node>,
    stmts: Vec<Stmt>,
    labels: u32,
}

impl Fun {
    /// Starts a function with a paper-style type string (`"%i%p"`).
    ///
    /// # Errors
    ///
    /// [`DcgError::BadSignature`] on a malformed string.
    pub fn new(type_str: &str) -> Result<Fun, DcgError> {
        Ok(Fun {
            sig: Sig::parse(type_str)?,
            nodes: Vec::new(),
            stmts: Vec::new(),
            labels: 0,
        })
    }

    fn push(&mut self, n: Node) -> NodeId {
        self.nodes.push(n);
        NodeId(self.nodes.len() as u32 - 1)
    }

    /// The `i`-th incoming argument.
    pub fn arg(&mut self, i: usize) -> NodeId {
        self.push(Node::Arg(i))
    }

    /// An `int` constant.
    pub fn consti(&mut self, v: i32) -> NodeId {
        self.push(Node::ConstI(Ty::I, i64::from(v)))
    }

    /// A word-sized constant of the given integer type.
    pub fn constl(&mut self, ty: Ty, v: i64) -> NodeId {
        self.push(Node::ConstI(ty, v))
    }

    /// A `float` constant.
    pub fn constf(&mut self, v: f32) -> NodeId {
        self.push(Node::ConstF32(v))
    }

    /// A `double` constant.
    pub fn constd(&mut self, v: f64) -> NodeId {
        self.push(Node::ConstF64(v))
    }

    /// A binary operation node.
    pub fn binop(&mut self, op: BinOp, ty: Ty, l: NodeId, r: NodeId) -> NodeId {
        self.push(Node::Binop(op, ty, l, r))
    }

    /// A unary operation node.
    pub fn unop(&mut self, op: UnOp, ty: Ty, e: NodeId) -> NodeId {
        self.push(Node::Unop(op, ty, e))
    }

    /// A conversion node.
    pub fn cvt(&mut self, from: Ty, to: Ty, e: NodeId) -> NodeId {
        self.push(Node::Cvt(from, to, e))
    }

    /// A typed load `*(ty*)(addr + off)`.
    pub fn load(&mut self, ty: Ty, addr: NodeId, off: i32) -> NodeId {
        self.push(Node::Load(ty, addr, off))
    }

    /// A typed store statement `*(ty*)(addr + off) = value`.
    pub fn store(&mut self, ty: Ty, addr: NodeId, off: i32, value: NodeId) {
        self.stmts.push(Stmt::Store(ty, addr, off, value));
    }

    /// Return-with-value statement.
    pub fn ret(&mut self, ty: Ty, value: NodeId) {
        self.stmts.push(Stmt::Ret(ty, value));
    }

    /// Return-void statement.
    pub fn ret_void(&mut self) {
        self.stmts.push(Stmt::RetVoid);
    }

    /// Creates a fresh label.
    pub fn label(&mut self) -> LabelId {
        self.labels += 1;
        LabelId(self.labels - 1)
    }

    /// Places `l` at the current point in the statement stream.
    pub fn bind(&mut self, l: LabelId) {
        self.stmts.push(Stmt::Bind(l));
    }

    /// Conditional branch statement.
    pub fn branch(&mut self, cond: Cond, ty: Ty, l: NodeId, r: NodeId, target: LabelId) {
        self.stmts.push(Stmt::Branch(cond, ty, l, r, target));
    }

    /// Unconditional jump statement.
    pub fn jump(&mut self, target: LabelId) {
        self.stmts.push(Stmt::Jump(target));
    }

    /// Number of IR nodes currently allocated (the space VCODE does not
    /// spend — used by the space-behaviour experiment).
    pub fn ir_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.stmts.capacity() * std::mem::size_of::<Stmt>()
    }

    /// Compiles the function into `mem` for target `T`: the passes over
    /// the intermediate representation that VCODE eliminates.
    ///
    /// Faithful to DCG's BURS discipline, compilation is two passes over
    /// every tree: a bottom-up *label* pass computing per-node cost
    /// state (heap-allocated per node, as BURG-generated matchers
    /// allocate state records), then a top-down *reduce* pass that emits
    /// code following the selected rules.
    ///
    /// # Errors
    ///
    /// [`DcgError::OutOfRegisters`] when a tree is too deep for the
    /// simple allocator, or any backend error.
    pub fn compile<T: Target>(&self, mem: &mut [u8], leaf: Leaf) -> Result<Finished, DcgError> {
        let mut a = Assembler::<T>::lambda_sig(mem, self.sig.clone(), leaf)?;
        let labels: Vec<vcode::Label> = (0..self.labels).map(|_| a.genlabel()).collect();
        // Pass 1: label.
        let states = self.label_pass();
        let mut cg = Codegen {
            fun: self,
            labels,
            states,
            temps: Vec::new(),
        };
        // Pass 2: reduce (emit).
        for stmt in &self.stmts {
            cg.stmt(&mut a, stmt)?;
        }
        Ok(a.end()?)
    }

    /// The BURS label pass: computes, for every node, the cost of
    /// deriving each nonterminal (`reg`, `imm`) and the rule achieving
    /// it. Nodes are numbered in creation order, so children always
    /// precede parents and one forward sweep suffices.
    // The boxing is the point: per-node heap-allocated state is the
    // DCG baseline behaviour being measured (see DESIGN.md).
    #[allow(clippy::vec_box)]
    fn label_pass(&self) -> Vec<Box<NodeState>> {
        let mut states: Vec<Box<NodeState>> = Vec::with_capacity(self.nodes.len());
        for node in &self.nodes {
            let st = match node {
                Node::Arg(_) => NodeState {
                    cost: [0, u16::MAX],
                    rule: [Rule::Leaf, Rule::None],
                },
                Node::ConstI(_, _) => NodeState {
                    // imm derivation is free; reg costs one `set`.
                    cost: [1, 0],
                    rule: [Rule::SetConst, Rule::ImmLeaf],
                },
                Node::ConstF32(_) | Node::ConstF64(_) => NodeState {
                    cost: [1, u16::MAX],
                    rule: [Rule::SetConst, Rule::None],
                },
                Node::Binop(op, ty, l, r) => {
                    let cl = states[l.0 as usize].cost[NT_REG];
                    let rimm = states[r.0 as usize].cost[NT_IMM];
                    let rreg = states[r.0 as usize].cost[NT_REG];
                    // Two candidate rules: reg ← reg op imm (when the
                    // target has an immediate form) and reg ← reg op reg.
                    let imm_ok = ty.is_int() && rimm != u16::MAX && op.accepts(*ty);
                    let cost_imm = if imm_ok {
                        cl.saturating_add(rimm).saturating_add(1)
                    } else {
                        u16::MAX
                    };
                    let cost_reg = cl.saturating_add(rreg).saturating_add(1);
                    if cost_imm <= cost_reg {
                        NodeState {
                            cost: [cost_imm, u16::MAX],
                            rule: [Rule::BinImm, Rule::None],
                        }
                    } else {
                        NodeState {
                            cost: [cost_reg, u16::MAX],
                            rule: [Rule::BinReg, Rule::None],
                        }
                    }
                }
                Node::Unop(_, _, e) | Node::Cvt(_, _, e) | Node::Load(_, e, _) => {
                    let ce = states[e.0 as usize].cost[NT_REG];
                    NodeState {
                        cost: [ce.saturating_add(1), u16::MAX],
                        rule: [Rule::Unary, Rule::None],
                    }
                }
            };
            states.push(Box::new(st));
        }
        states
    }
}

const NT_REG: usize = 0;
const NT_IMM: usize = 1;

/// Rules of the (tiny) tree grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rule {
    None,
    Leaf,
    ImmLeaf,
    SetConst,
    BinImm,
    BinReg,
    Unary,
}

/// Per-node matcher state, heap-allocated like the state records of
/// BURG-generated labelers (and of DCG's C implementation).
#[derive(Debug)]
struct NodeState {
    cost: [u16; 2],
    rule: [Rule; 2],
}

struct Codegen<'f> {
    fun: &'f Fun,
    labels: Vec<vcode::Label>,
    #[allow(clippy::vec_box)]
    states: Vec<Box<NodeState>>,
    temps: Vec<Reg>,
}

impl<'f> Codegen<'f> {
    fn node(&self, id: NodeId) -> &'f Node {
        &self.fun.nodes[id.0 as usize]
    }

    fn alloc<T: Target>(&mut self, a: &mut Assembler<'_, T>, flt: bool) -> Result<Reg, DcgError> {
        let r = if flt {
            a.getreg_f(RegClass::Temp)
        } else {
            a.getreg(RegClass::Temp)
        };
        r.ok_or(DcgError::OutOfRegisters)
    }

    fn free<T: Target>(&mut self, a: &mut Assembler<'_, T>, r: Reg) {
        // Argument registers are owned by lambda, not the tree walker.
        if !a.args().contains(&r) {
            a.putreg(r);
        }
    }

    /// Pattern match: an integer constant usable as an immediate operand.
    fn as_const(&self, id: NodeId) -> Option<i64> {
        match self.node(id) {
            Node::ConstI(_, v) => Some(*v),
            _ => None,
        }
    }

    /// Evaluates a tree into a register (maximal munch).
    fn eval<T: Target>(&mut self, a: &mut Assembler<'_, T>, id: NodeId) -> Result<Reg, DcgError> {
        match self.node(id) {
            Node::Arg(i) => Ok(a.arg(*i)),
            Node::ConstI(ty, v) => {
                let r = self.alloc(a, false)?;
                emit_set_int(a, *ty, r, *v);
                Ok(r)
            }
            Node::ConstF32(v) => {
                let r = self.alloc(a, true)?;
                a.setf(r, *v);
                Ok(r)
            }
            Node::ConstF64(v) => {
                let r = self.alloc(a, true)?;
                a.setd(r, *v);
                Ok(r)
            }
            Node::Binop(op, ty, l, rn) => {
                let lr = self.eval(a, *l)?;
                // Reduce following the rule the label pass selected:
                // fold a constant right operand into the immediate form.
                if self.states[id.0 as usize].rule[NT_REG] == Rule::BinImm {
                    if let Some(imm) = self.as_const(*rn) {
                        let rd = self.result_reg(a, lr, false)?;
                        T::emit_binop_imm(a.raw(), *op, *ty, rd, lr, imm);
                        if rd != lr {
                            self.free(a, lr);
                        }
                        return Ok(rd);
                    }
                }
                let rr = self.eval(a, *rn)?;
                let rd = self.result_reg(a, lr, ty.is_float())?;
                T::emit_binop(a.raw(), *op, *ty, rd, lr, rr);
                self.free(a, rr);
                if rd != lr {
                    self.free(a, lr);
                }
                Ok(rd)
            }
            Node::Unop(op, ty, e) => {
                let er = self.eval(a, *e)?;
                let rd = self.result_reg(a, er, ty.is_float())?;
                T::emit_unop(a.raw(), *op, *ty, rd, er);
                if rd != er {
                    self.free(a, er);
                }
                Ok(rd)
            }
            Node::Cvt(from, to, e) => {
                let er = self.eval(a, *e)?;
                let rd = if from.is_float() == to.is_float() {
                    self.result_reg(a, er, to.is_float())?
                } else {
                    let rd = self.alloc(a, to.is_float())?;
                    self.free(a, er);
                    rd
                };
                T::emit_cvt(a.raw(), *from, *to, rd, er);
                if rd != er && from.is_float() == to.is_float() {
                    self.free(a, er);
                }
                Ok(rd)
            }
            Node::Load(ty, addr, off) => {
                let ar = self.eval(a, *addr)?;
                let rd = if ty.is_float() {
                    let rd = self.alloc(a, true)?;
                    self.free(a, ar);
                    rd
                } else {
                    self.result_reg(a, ar, false)?
                };
                T::emit_ld(a.raw(), *ty, rd, ar, vcode::Off::I(*off));
                if !ty.is_float() && rd != ar {
                    self.free(a, ar);
                }
                Ok(rd)
            }
        }
    }

    /// Chooses the destination register: reuse the left operand's
    /// register when it is a tree temporary, otherwise allocate.
    fn result_reg<T: Target>(
        &mut self,
        a: &mut Assembler<'_, T>,
        left: Reg,
        flt: bool,
    ) -> Result<Reg, DcgError> {
        if a.args().contains(&left) {
            self.alloc(a, flt)
        } else if left.is_flt() == flt {
            Ok(left)
        } else {
            self.alloc(a, flt)
        }
    }

    fn stmt<T: Target>(&mut self, a: &mut Assembler<'_, T>, s: &Stmt) -> Result<(), DcgError> {
        match s {
            Stmt::Store(ty, addr, off, val) => {
                let vr = self.eval(a, *val)?;
                let ar = self.eval(a, *addr)?;
                T::emit_st(a.raw(), *ty, vr, ar, vcode::Off::I(*off));
                self.free(a, ar);
                self.free(a, vr);
            }
            Stmt::Ret(ty, val) => {
                let vr = self.eval(a, *val)?;
                T::emit_ret(a.raw(), Some((*ty, vr)));
                self.free(a, vr);
            }
            Stmt::RetVoid => T::emit_ret(a.raw(), None),
            Stmt::Branch(cond, ty, l, r, target) => {
                let lr = self.eval(a, *l)?;
                let lab = self.labels[target.0 as usize];
                if ty.is_int() {
                    if let Some(imm) = self.as_const(*r) {
                        T::emit_branch(a.raw(), *cond, *ty, lr, vcode::BrOperand::I(imm), lab);
                        self.free(a, lr);
                        return Ok(());
                    }
                }
                let rr = self.eval(a, *r)?;
                T::emit_branch(a.raw(), *cond, *ty, lr, vcode::BrOperand::R(rr), lab);
                self.free(a, rr);
                self.free(a, lr);
            }
            Stmt::Jump(target) => {
                T::emit_jump(a.raw(), JumpTarget::Label(self.labels[target.0 as usize]));
            }
            Stmt::Bind(l) => a.label(self.labels[l.0 as usize]),
        }
        let _ = &self.temps;
        Ok(())
    }
}

fn emit_set_int<T: Target>(a: &mut Assembler<'_, T>, ty: Ty, rd: Reg, v: i64) {
    match ty {
        Ty::I => a.seti(rd, v as i32),
        Ty::U => a.setu(rd, v as u32),
        Ty::L => a.setl(rd, v),
        Ty::Ul => a.setul(rd, v as u64),
        Ty::P => a.setp(rd, v as u64),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vcode::fake::FakeTarget;

    #[test]
    fn ir_grows_with_the_program() {
        let mut f = Fun::new("%i").unwrap();
        let mut e = f.arg(0);
        let before = f.ir_bytes();
        for i in 0..100 {
            let c = f.consti(i);
            e = f.binop(BinOp::Add, Ty::I, e, c);
        }
        f.ret(Ty::I, e);
        assert!(
            f.ir_bytes() >= before + 200 * std::mem::size_of::<u32>(),
            "IR space is proportional to program size — the overhead \
             VCODE eliminates"
        );
    }

    #[test]
    fn constant_folding_into_immediate_forms() {
        // x + 1 must compile to a single immediate add, not set + add.
        let mut f = Fun::new("%i").unwrap();
        let x = f.arg(0);
        let one = f.consti(1);
        let sum = f.binop(BinOp::Add, Ty::I, x, one);
        f.ret(Ty::I, sum);
        let mut mem = vec![0u8; 1024];
        f.compile::<FakeTarget>(&mut mem, Leaf::Yes).unwrap();
        // FakeTarget: prologue 7 words, then BINOPI (0x02), then RET.
        assert_eq!(mem[7 * 4], 0x02, "immediate form selected");
    }

    #[test]
    fn deep_tree_exhausts_registers() {
        let mut f = Fun::new("%i").unwrap();
        // Build a fully left-leaning comb of loads to force register
        // pressure: (load(load(load(...)))) keeps only one live — use a
        // right-deep tree of adds instead, which keeps all lefts live.
        fn deep(f: &mut Fun, depth: usize) -> NodeId {
            if depth == 0 {
                f.consti(1)
            } else {
                let l = f.consti(depth as i32);
                let r = deep(f, depth - 1);
                f.binop(BinOp::Add, Ty::I, l, r)
            }
        }
        let e = deep(&mut f, 40);
        f.ret(Ty::I, e);
        let mut mem = vec![0u8; 65536];
        assert_eq!(
            f.compile::<FakeTarget>(&mut mem, Leaf::Yes).unwrap_err(),
            DcgError::OutOfRegisters
        );
    }

    #[test]
    fn labels_and_branches_compile() {
        let mut f = Fun::new("%i").unwrap();
        let x = f.arg(0);
        let zero = f.consti(0);
        let done = f.label();
        f.branch(Cond::Ge, Ty::I, x, zero, done);
        let neg = f.unop(UnOp::Neg, Ty::I, x);
        f.ret(Ty::I, neg);
        f.bind(done);
        f.ret(Ty::I, x);
        let mut mem = vec![0u8; 1024];
        f.compile::<FakeTarget>(&mut mem, Leaf::Yes).unwrap();
    }

    #[test]
    fn bad_signature_is_reported() {
        assert!(matches!(Fun::new("%q"), Err(DcgError::BadSignature(_))));
    }
}
