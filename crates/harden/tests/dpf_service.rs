//! Update-storm fault corpus for the live DPF service (ISSUE 8).
//!
//! The contract: filters installed and removed *under traffic*, with
//! native builds failing at every capacity on the storage-exhaustion
//! ladder, produce **zero panics** — every classification returns a
//! correct typed result from whichever engine is published (native or
//! the delta-window interpreter), builder failure mid-swap leaves the
//! previous serving path intact with a typed quarantine, and the
//! service heals to native as soon as a buildable set returns.

use dpf::packet::{self, PacketSpec};
use dpf::{Dpf, DpfService, Options};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const DST_IP: u32 = 0x0a00_0002;

fn port_msg(port: u16) -> Vec<u8> {
    packet::build(&PacketSpec {
        dst_port: port,
        ..PacketSpec::default()
    })
}

fn capped(cap: usize) -> Options {
    Options {
        code_capacity: Some(cap),
        ..Options::default()
    }
}

/// Storm of insert/remove across the whole storage-exhaustion ladder,
/// with a reader classifying throughout. At small capacities every
/// native build fails (typed, quarantined); at large ones builds land
/// mid-storm. Both must classify correctly at every step — the zero-
/// panic acceptance gate for this corpus.
#[test]
fn update_storm_across_capacity_ladder() {
    // Every third rung: the full series re-covers the same failure mode
    // (overflow → typed error → quarantine) at CI-hostile cost.
    for cap in harden::capacity_series().into_iter().step_by(3) {
        let svc = Arc::new(DpfService::with_options(capped(cap)));
        let base_ids: Vec<u32> = packet::port_filter_set(4, 2000)
            .into_iter()
            .map(|f| svc.insert(f))
            .collect();
        let done = Arc::new(AtomicBool::new(false));
        let traffic = {
            let svc = Arc::clone(&svc);
            let done = Arc::clone(&done);
            let base_ids = base_ids.clone();
            std::thread::spawn(move || {
                let reader = svc.reader();
                let msgs: Vec<Vec<u8>> = (0..4).map(|i| port_msg(2000 + i)).collect();
                let mut k = 0usize;
                while !done.load(Ordering::SeqCst) {
                    let m = k % 4;
                    assert_eq!(
                        reader.classify(&msgs[m]),
                        Some(base_ids[m]),
                        "base filter lost during storm (capacity {cap})"
                    );
                    k += 1;
                }
            })
        };
        for round in 0..6u16 {
            let id = svc.insert(packet::tcp_port_filter(DST_IP, 3000 + round).unwrap());
            assert_eq!(
                svc.classify(&port_msg(3000 + round)),
                Some(id),
                "inserted filter not live (capacity {cap})"
            );
            svc.poll_upgrade();
            assert!(svc.remove(id));
            assert_eq!(
                svc.classify(&port_msg(3000 + round)),
                None,
                "stale positive after remove (capacity {cap})"
            );
        }
        done.store(true, Ordering::SeqCst);
        traffic.join().expect("reader panicked");
        // Bounded settle; hopeless capacities stay interpreter-pinned
        // with a typed quarantine, larger ones go native. Failing
        // builds resolve in well under a second (overflow is immediate,
        // the deadline bounds the rest), so a short settle suffices.
        let native = svc.flush(Duration::from_millis(800));
        if !native {
            let q = svc.quarantine().expect("failing builds quarantine, typed");
            assert!(q.failures >= 1);
            assert!(!q.last_error.is_empty(), "quarantine carries the error");
        }
        let st = svc.stats();
        assert_eq!(st.seq, 4 + 12, "every mutation published a generation");
        assert!(st.published >= st.seq);
    }
}

/// Builder failure mid-swap: a service whose capacity fits one filter
/// but not a large set keeps serving — the native generation before the
/// failing mutation, the interpreter for the new set after it — with a
/// typed quarantine, and heals instantly (warm key, no delta window)
/// when the set shrinks back.
#[test]
fn builder_failure_mid_swap_keeps_serving() {
    // Measure a one-filter classifier, then cap just above it.
    let f0 = packet::tcp_port_filter(DST_IP, 80).unwrap();
    let probe = {
        let mut d = Dpf::new();
        d.insert(f0.clone());
        d.compile_uncached().expect("probe compile");
        d.compiled().expect("probe is native").code_len
    };
    let svc = DpfService::with_options(capped(probe + 64));
    let reader = svc.reader();
    let a = svc.insert(f0);
    assert!(
        svc.flush(Duration::from_secs(10)),
        "one filter fits the cap by construction"
    );
    assert!(svc.is_native());
    assert_eq!(reader.classify(&port_msg(80)), Some(a));

    // Mid-swap failure: 64 more filters cannot fit even after the
    // overflow retry doubles the buffer. The swap to the new set is
    // immediate (interpreter); the native build fails and quarantines.
    let storm_ids: Vec<u32> = packet::port_filter_set(64, 9000)
        .into_iter()
        .map(|f| svc.insert(f))
        .collect();
    assert_eq!(
        reader.classify(&port_msg(9005)),
        Some(storm_ids[5]),
        "new set live despite failing build"
    );
    assert!(!svc.flush(Duration::from_millis(400)), "build must fail");
    assert!(!svc.is_native());
    assert_eq!(reader.classify(&port_msg(80)), Some(a), "old filter kept");
    let q = svc
        .quarantine()
        .expect("typed quarantine after mid-swap failure");
    assert!(q.failures >= 1);

    // Shrink back: the one-filter key is warm in the process cache, so
    // the service republishes native directly — no interpreter window.
    for id in storm_ids {
        assert!(svc.remove(id));
    }
    assert!(svc.flush(Duration::from_secs(10)), "healed set goes native");
    assert!(svc.is_native());
    assert_eq!(reader.classify(&port_msg(80)), Some(a));
    assert_eq!(reader.classify(&port_msg(9005)), None, "storm set gone");
    let st = svc.stats();
    assert!(
        st.degraded_calls >= 1,
        "delta windows served by interpreter"
    );
    assert!(
        st.native_publishes >= 2,
        "native before and after the storm"
    );
}
