//! The fault-injection harness (ISSUE: hardened execution).
//!
//! Injects deterministic faults — bitflips in emitted code, storage
//! exhaustion at byte N, truncated and misaligned packets, curated
//! native crashes — across all four backends (MIPS, SPARC and Alpha
//! simulators plus guarded x86-64). Every fault must surface as a typed
//! outcome: never a panic, never a hang, never a silently wrong answer
//! on an unfaulted path. The case counts here are what the acceptance
//! criteria mean by "≥100 deterministic fault cases".

use ash::{generic, reference, Step};
use harden::{bit_positions, capacity_series, flip_bit, Tally, XorShift};
use vcode::target::{Leaf, Target};
use vcode::{Assembler, RegClass, Trap, TrapKind};

/// The injected program: the fused checksum+swap pipeline
/// `fn(dst: %p, src: %p, nwords: %i) -> %u`, generated through the
/// portable surface so the identical client program exists on every
/// backend.
const STEPS: [Step; 2] = [Step::Checksum, Step::Swap];

fn gen<T: Target>() -> Vec<u8> {
    let mut mem = vec![0u8; 8192];
    let fin = generic::compile_fused::<T>(&mut mem, &STEPS).expect("pipeline generates");
    mem.truncate(fin.len);
    mem
}

fn pattern(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i * 131 + 7) as u8).collect()
}

/// Runs `code` on the MIPS simulator; returns (sum, dst bytes).
fn run_mips(code: &[u8], data: &[u8], steps: u64) -> Result<(u64, Vec<u8>), Trap> {
    let mut m = vcode_sim::mips::Machine::new(1 << 21);
    let entry = m.load_code(code);
    let dst = m.alloc(data.len().max(4), 8);
    let src = m.alloc(data.len().max(4), 8);
    m.write(src, data);
    let sum = m
        .call(entry, &[dst, src, (data.len() / 4) as u32], steps)
        .map_err(Trap::from)?;
    Ok((u64::from(sum), m.read(dst, data.len()).to_vec()))
}

fn run_sparc(code: &[u8], data: &[u8], steps: u64) -> Result<(u64, Vec<u8>), Trap> {
    let mut m = vcode_sim::sparc::Machine::new(1 << 21);
    let entry = m.load_code(code);
    let dst = m.alloc(data.len().max(4), 8);
    let src = m.alloc(data.len().max(4), 8);
    m.write(src, data);
    let sum = m
        .call(entry, &[dst, src, (data.len() / 4) as u32], steps)
        .map_err(Trap::from)?;
    Ok((u64::from(sum), m.read(dst, data.len()).to_vec()))
}

fn run_alpha(code: &[u8], data: &[u8], steps: u64) -> Result<(u64, Vec<u8>), Trap> {
    let mut m = vcode_sim::alpha::Machine::new(1 << 21);
    let entry = m.load_code(code);
    let dst = m.alloc(data.len().max(4), 8);
    let src = m.alloc(data.len().max(4), 8);
    m.write(src, data);
    let sum = m
        .call(entry, &[dst, src, (data.len() / 4) as u64], steps)
        .map_err(Trap::from)?;
    Ok((sum, m.read(dst, data.len()).to_vec()))
}

type SimRunner = fn(&[u8], &[u8], u64) -> Result<(u64, Vec<u8>), Trap>;

/// ~120 single-bit corruptions of emitted code, 40 per simulator. Each
/// mutant either runs to completion (the flip was benign) or raises a
/// typed [`Trap`] within the step budget — the harness itself is the
/// assertion that nothing panics or hangs.
#[test]
fn bitflipped_code_traps_or_completes_on_every_simulator() {
    let data = pattern(40);
    let want_sum = reference::checksum(&data);
    let want_dst = reference::swapped(&data);

    let backends: [(&str, Vec<u8>, SimRunner); 3] = [
        ("mips", gen::<vcode_mips::Mips>(), run_mips),
        ("sparc", gen::<vcode_sparc::Sparc>(), run_sparc),
        ("alpha", gen::<vcode_alpha::Alpha>(), run_alpha),
    ];

    let mut tally = Tally::new();
    let mut rng = XorShift::new(0xb17_f11b);
    for (name, code, run) in &backends {
        // Unfaulted baseline first: the differential ground truth. A
        // harness that cannot tell right from wrong would also accept
        // silently wrong answers from benign-looking flips.
        let (sum, dst) = run(code, &data, 500_000).expect("pristine code runs");
        assert_eq!(generic::fold_le_halfwords(sum as u32), want_sum, "{name}");
        assert_eq!(dst, want_dst, "{name}");

        for pos in bit_positions(&mut rng, code.len() * 8, 40) {
            let mut bad = code.clone();
            flip_bit(&mut bad, pos);
            let out = run(&bad, &data, 200_000);
            tally.record(&out);
        }
    }
    tally.assert_covered(100);
    println!(
        "bitflips: {} cases, {} completed, {} trapped",
        tally.total(),
        tally.completed,
        tally.trapped
    );
}

/// Storage exhaustion at byte N for the standard capacity series, on
/// all four code generators plus the DPF and ASH degradation ladders —
/// 144 cases. Generation into a too-small buffer must latch
/// [`vcode::Error::Overflow`]; the engine ladders must keep producing
/// *correct* answers by degrading, never a panic (this exact series is
/// what exposed the backpatch-past-cursor and save-area-underflow
/// panics fixed in this PR).
#[test]
fn storage_exhaustion_is_typed_at_every_byte_budget() {
    let mut tally = Tally::new();

    // Raw generation into N-byte client storage, all four targets.
    for &cap in &capacity_series() {
        let mut buf = vec![0u8; cap];
        tally.record(&generic::compile_fused::<vcode_x64::X64>(&mut buf, &STEPS));
        let mut buf = vec![0u8; cap];
        tally.record(&generic::compile_fused::<vcode_mips::Mips>(
            &mut buf, &STEPS,
        ));
        let mut buf = vec![0u8; cap];
        tally.record(&generic::compile_fused::<vcode_sparc::Sparc>(
            &mut buf, &STEPS,
        ));
        let mut buf = vec![0u8; cap];
        tally.record(&generic::compile_fused::<vcode_alpha::Alpha>(
            &mut buf, &STEPS,
        ));
    }
    assert!(tally.completed > 0, "large capacities must generate");
    assert!(tally.trapped > 0, "small capacities must overflow");

    // The DPF ladder: classification stays correct at every capacity,
    // on whichever engine the ladder lands on.
    use dpf::packet::{self, PacketSpec};
    let filters = packet::port_filter_set(5, 3000);
    let hit = packet::build(&PacketSpec {
        dst_port: 3003,
        ..PacketSpec::default()
    });
    let miss = packet::build(&PacketSpec {
        dst_port: 9,
        ..PacketSpec::default()
    });
    let mut engines_seen = (false, false);
    for &cap in &capacity_series() {
        let mut d = dpf::Dpf::with_options(dpf::Options {
            code_capacity: Some(cap),
            ..dpf::Options::default()
        });
        let ids: Vec<u32> = filters.iter().map(|f| d.insert(f.clone())).collect();
        let r = d.compile();
        tally.record(&r);
        r.expect("the ladder always yields a runnable engine");
        match d.engine().unwrap() {
            dpf::EngineKind::Native => engines_seen.0 = true,
            dpf::EngineKind::Interpreter => engines_seen.1 = true,
        }
        assert_eq!(d.classify(&hit), Some(ids[3]), "capacity {cap}");
        assert_eq!(d.classify(&miss), None, "capacity {cap}");
    }
    assert!(engines_seen.0, "comfortable capacities must compile native");
    assert!(engines_seen.1, "hopeless capacities must degrade");

    // The ASH ladder, same contract.
    let src = pattern(256);
    let mut engines_seen = (false, false);
    for &cap in &capacity_series() {
        let p = ash::Pipeline::compile_with_options(
            &STEPS,
            ash::PipelineOptions {
                code_capacity: Some(cap),
                ..ash::PipelineOptions::default()
            },
        )
        .expect("the ladder always yields a runnable pipeline");
        match p.engine_kind() {
            ash::EngineKind::Native => engines_seen.0 = true,
            ash::EngineKind::Interpreter => engines_seen.1 = true,
        }
        let mut dst = vec![0u8; src.len()];
        let ck = p.run(&src, &mut dst);
        assert_eq!(ck, reference::checksum(&src), "capacity {cap}");
        assert_eq!(dst, reference::swapped(&src), "capacity {cap}");
        tally.record::<(), ()>(&Ok(()));
    }
    assert!(engines_seen.0, "comfortable capacities must compile native");
    assert!(engines_seen.1, "hopeless capacities must degrade");

    tally.assert_covered(140);
    println!(
        "exhaustion: {} cases, {} completed, {} typed overflows",
        tally.total(),
        tally.completed,
        tally.trapped
    );
}

/// Truncated, misaligned and garbage packets against three
/// independently implemented classifiers — compiled DPF, the MPF
/// bytecode interpreter and the PATHFINDER trie interpreter. The
/// filters are disjoint, so on *any* input all three must agree; ~100
/// comparisons, none may panic.
#[test]
fn malformed_packets_classify_identically_on_every_engine() {
    use dpf::packet::{self, PacketSpec};
    let filters = packet::port_filter_set(6, 4000);

    let mut d = dpf::Dpf::new();
    let mut m = dpf::mpf::Mpf::new();
    let mut p = dpf::Pathfinder::new();
    for f in &filters {
        let a = d.insert(f.clone());
        let b = m.insert(f);
        let c = p.insert(f.clone());
        assert_eq!((a, b), (c, c), "id assignment must agree");
    }
    d.compile().expect("compiles");
    assert_eq!(d.engine(), Some(dpf::EngineKind::Native));

    let pkt = packet::build(&PacketSpec {
        dst_port: 4003,
        ..PacketSpec::default()
    });
    let full = d.classify(&pkt);
    assert!(full.is_some(), "the intact packet must match");

    let mut cases = 0usize;
    let mut rejected = 0usize;
    let agree = |msg: &[u8], what: &str| {
        let (a, b, c) = (d.classify(msg), m.classify(msg), p.classify(msg));
        assert_eq!(a, b, "{what}: dpf vs mpf");
        assert_eq!(a, c, "{what}: dpf vs pathfinder");
        a
    };

    // Every truncation point, 0..=len.
    for cut in 0..=pkt.len() {
        let got = agree(&pkt[..cut], &format!("truncated to {cut}"));
        cases += 1;
        if got.is_none() {
            rejected += 1;
        }
    }
    assert!(rejected > 0, "short prefixes must be rejected, not matched");

    // Misaligned views of the same packet.
    for off in 1..4 {
        agree(&pkt[off..], &format!("offset by {off}"));
        cases += 1;
    }

    // Deterministic garbage of assorted lengths.
    let mut rng = XorShift::new(0xdecaf);
    for _ in 0..40 {
        let mut msg = vec![0u8; rng.below(81) as usize];
        rng.fill(&mut msg);
        agree(&msg, "garbage");
        cases += 1;
    }

    assert!(cases >= 90, "only {cases} packet cases ran");
    println!("packets: {cases} cases, {rejected} truncations rejected");
}

/// Curated native crash programs under [`vcode_x64::GuardedCall`]:
/// each historically-fatal fault (null deref, wild store, illegal
/// opcode, runaway loop, straight-line runoff) becomes a typed
/// [`vcode_x64::NativeTrap`] carrying the faulting address.
#[test]
fn curated_native_faults_trap_under_guard() {
    use std::time::Duration;
    use vcode_x64::{ExecMem, GuardedCall, X64};

    fn emit(f: impl FnOnce(&mut Assembler<'_, X64>)) -> vcode_x64::ExecCode {
        let mut mem = ExecMem::new(4096).expect("map");
        let mut a =
            Assembler::<X64>::lambda(mem.as_mut_slice(), "%p:%i", Leaf::Yes).expect("lambda");
        f(&mut a);
        a.end().expect("end");
        mem.finalize().expect("finalize")
    }

    let guard = GuardedCall::new();
    let mut tally = Tally::new();

    // Load through a null pointer.
    let code = emit(|a| {
        let p = a.arg(0);
        let t = a.getreg(RegClass::Temp).expect("reg");
        a.ldii(t, p, 0);
        a.reti(t);
    });
    let out = guard.call1(&code, 0);
    tally.record(&out);
    let t = out.expect_err("null deref must trap");
    assert_eq!(Trap::from(t).kind, TrapKind::BadAccess);

    // Store through a wild pointer.
    let code = emit(|a| {
        let p = a.arg(0);
        let t = a.getreg(RegClass::Temp).expect("reg");
        a.seti(t, 7);
        a.stii(t, p, 0);
        a.reti(t);
    });
    let out = guard.call1(&code, 0xdead_b000);
    tally.record(&out);
    let t = Trap::from(out.expect_err("wild store must trap"));
    assert_eq!(t.kind, TrapKind::BadAccess);
    assert_eq!(t.addr, Some(0xdead_b000));

    // Illegal opcode (raw ud2 — no assembler surface emits it).
    let mut mem = ExecMem::new(4096).expect("map");
    mem.as_mut_slice()[..2].copy_from_slice(&[0x0f, 0x0b]);
    let code = mem.finalize().expect("finalize");
    let out = guard.call0(&code);
    tally.record(&out);
    assert_eq!(
        Trap::from(out.expect_err("ud2 must trap")).kind,
        TrapKind::IllegalInsn
    );

    // Runaway loop under the watchdog.
    let code = emit(|a| {
        let top = a.genlabel();
        a.label(top);
        a.jmp(top);
        a.retv();
    });
    let watchdog = GuardedCall::with_fuel(vcode::Fuel::time(Duration::from_millis(40)));
    let out = watchdog.call1(&code, 0);
    tally.record(&out);
    assert_eq!(
        Trap::from(out.expect_err("loop must exhaust fuel")).kind,
        TrapKind::FuelExhausted
    );

    // Straight-line runoff into the trailing guard page.
    let mut mem = ExecMem::new(4096).expect("map");
    let len = mem.len();
    for b in mem.as_mut_slice().iter_mut() {
        *b = 0x90; // nop sled, no ret: execution escapes off the end
    }
    let code = mem.finalize().expect("finalize");
    let out = guard.call0(&code);
    tally.record(&out);
    let t = Trap::from(out.expect_err("runoff must hit the guard page"));
    assert_eq!(t.kind, TrapKind::BadAccess);
    assert_eq!(t.addr, Some(code.addr() + len as u64));

    assert_eq!(tally.total(), 5);
    assert_eq!(tally.trapped, 5);
}
