//! The fault-injection harness (ISSUE: hardened execution).
//!
//! Injects deterministic faults — bitflips in emitted code, storage
//! exhaustion at byte N, truncated and misaligned packets, curated
//! native crashes — across all four backends (MIPS, SPARC and Alpha
//! simulators plus guarded x86-64). Every fault must surface as a typed
//! outcome: never a panic, never a hang, never a silently wrong answer
//! on an unfaulted path. The case counts here are what the acceptance
//! criteria mean by "≥100 deterministic fault cases".

use ash::{generic, reference, Step};
use harden::{bit_positions, capacity_series, flip_bit, Tally, XorShift};
use vcode::target::{Leaf, Target};
use vcode::{Assembler, RegClass, Trap, TrapKind};

/// The injected program: the fused checksum+swap pipeline
/// `fn(dst: %p, src: %p, nwords: %i) -> %u`, generated through the
/// portable surface so the identical client program exists on every
/// backend.
const STEPS: [Step; 2] = [Step::Checksum, Step::Swap];

fn gen<T: Target>() -> Vec<u8> {
    let mut mem = vec![0u8; 8192];
    let fin = generic::compile_fused::<T>(&mut mem, &STEPS).expect("pipeline generates");
    mem.truncate(fin.len);
    mem
}

fn pattern(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i * 131 + 7) as u8).collect()
}

/// Runs `code` on the MIPS simulator; returns (sum, dst bytes).
fn run_mips(code: &[u8], data: &[u8], steps: u64) -> Result<(u64, Vec<u8>), Trap> {
    let mut m = vcode_sim::mips::Machine::new(1 << 21);
    let entry = m.load_code(code).expect("code fits");
    let dst = m.alloc(data.len().max(4), 8).expect("heap fits");
    let src = m.alloc(data.len().max(4), 8).expect("heap fits");
    m.write(src, data).expect("in range");
    let sum = m
        .call(entry, &[dst, src, (data.len() / 4) as u32], steps)
        .map_err(Trap::from)?;
    Ok((
        u64::from(sum),
        m.read(dst, data.len()).expect("in range").to_vec(),
    ))
}

fn run_sparc(code: &[u8], data: &[u8], steps: u64) -> Result<(u64, Vec<u8>), Trap> {
    let mut m = vcode_sim::sparc::Machine::new(1 << 21);
    let entry = m.load_code(code).expect("code fits");
    let dst = m.alloc(data.len().max(4), 8).expect("heap fits");
    let src = m.alloc(data.len().max(4), 8).expect("heap fits");
    m.write(src, data).expect("in range");
    let sum = m
        .call(entry, &[dst, src, (data.len() / 4) as u32], steps)
        .map_err(Trap::from)?;
    Ok((
        u64::from(sum),
        m.read(dst, data.len()).expect("in range").to_vec(),
    ))
}

fn run_alpha(code: &[u8], data: &[u8], steps: u64) -> Result<(u64, Vec<u8>), Trap> {
    let mut m = vcode_sim::alpha::Machine::new(1 << 21);
    let entry = m.load_code(code).expect("code fits");
    let dst = m.alloc(data.len().max(4), 8).expect("heap fits");
    let src = m.alloc(data.len().max(4), 8).expect("heap fits");
    m.write(src, data).expect("in range");
    let sum = m
        .call(entry, &[dst, src, (data.len() / 4) as u64], steps)
        .map_err(Trap::from)?;
    Ok((sum, m.read(dst, data.len()).expect("in range").to_vec()))
}

type SimRunner = fn(&[u8], &[u8], u64) -> Result<(u64, Vec<u8>), Trap>;

/// ~120 single-bit corruptions of emitted code, 40 per simulator. Each
/// mutant either runs to completion (the flip was benign) or raises a
/// typed [`Trap`] within the step budget — the harness itself is the
/// assertion that nothing panics or hangs.
#[test]
fn bitflipped_code_traps_or_completes_on_every_simulator() {
    let data = pattern(40);
    let want_sum = reference::checksum(&data);
    let want_dst = reference::swapped(&data);

    let backends: [(&str, Vec<u8>, SimRunner); 3] = [
        ("mips", gen::<vcode_mips::Mips>(), run_mips),
        ("sparc", gen::<vcode_sparc::Sparc>(), run_sparc),
        ("alpha", gen::<vcode_alpha::Alpha>(), run_alpha),
    ];

    let mut tally = Tally::new();
    let mut rng = XorShift::new(0xb17_f11b);
    for (name, code, run) in &backends {
        // Unfaulted baseline first: the differential ground truth. A
        // harness that cannot tell right from wrong would also accept
        // silently wrong answers from benign-looking flips.
        let (sum, dst) = run(code, &data, 500_000).expect("pristine code runs");
        assert_eq!(generic::fold_le_halfwords(sum as u32), want_sum, "{name}");
        assert_eq!(dst, want_dst, "{name}");

        for pos in bit_positions(&mut rng, code.len() * 8, 40) {
            let mut bad = code.clone();
            flip_bit(&mut bad, pos);
            let out = run(&bad, &data, 200_000);
            tally.record(&out);
        }
    }
    tally.assert_covered(100);
    println!(
        "bitflips: {} cases, {} completed, {} trapped",
        tally.total(),
        tally.completed,
        tally.trapped
    );
}

/// Storage exhaustion at byte N for the standard capacity series, on
/// all four code generators plus the DPF and ASH degradation ladders —
/// 144 cases. Generation into a too-small buffer must latch
/// [`vcode::Error::Overflow`]; the engine ladders must keep producing
/// *correct* answers by degrading, never a panic (this exact series is
/// what exposed the backpatch-past-cursor and save-area-underflow
/// panics fixed in this PR).
#[test]
fn storage_exhaustion_is_typed_at_every_byte_budget() {
    let mut tally = Tally::new();

    // Raw generation into N-byte client storage, all four targets.
    for &cap in &capacity_series() {
        let mut buf = vec![0u8; cap];
        tally.record(&generic::compile_fused::<vcode_x64::X64>(&mut buf, &STEPS));
        let mut buf = vec![0u8; cap];
        tally.record(&generic::compile_fused::<vcode_mips::Mips>(
            &mut buf, &STEPS,
        ));
        let mut buf = vec![0u8; cap];
        tally.record(&generic::compile_fused::<vcode_sparc::Sparc>(
            &mut buf, &STEPS,
        ));
        let mut buf = vec![0u8; cap];
        tally.record(&generic::compile_fused::<vcode_alpha::Alpha>(
            &mut buf, &STEPS,
        ));
    }
    assert!(tally.completed > 0, "large capacities must generate");
    assert!(tally.trapped > 0, "small capacities must overflow");

    // The DPF ladder: classification stays correct at every capacity,
    // on whichever engine the ladder lands on.
    use dpf::packet::{self, PacketSpec};
    let filters = packet::port_filter_set(5, 3000);
    let hit = packet::build(&PacketSpec {
        dst_port: 3003,
        ..PacketSpec::default()
    });
    let miss = packet::build(&PacketSpec {
        dst_port: 9,
        ..PacketSpec::default()
    });
    let mut engines_seen = (false, false);
    for &cap in &capacity_series() {
        let mut d = dpf::Dpf::with_options(dpf::Options {
            code_capacity: Some(cap),
            ..dpf::Options::default()
        });
        let ids: Vec<u32> = filters.iter().map(|f| d.insert(f.clone())).collect();
        let r = d.compile();
        tally.record(&r);
        r.expect("the ladder always yields a runnable engine");
        match d.engine().unwrap() {
            dpf::EngineKind::Native => engines_seen.0 = true,
            dpf::EngineKind::Interpreter => engines_seen.1 = true,
        }
        assert_eq!(d.classify(&hit), Some(ids[3]), "capacity {cap}");
        assert_eq!(d.classify(&miss), None, "capacity {cap}");
    }
    assert!(engines_seen.0, "comfortable capacities must compile native");
    assert!(engines_seen.1, "hopeless capacities must degrade");

    // The ASH ladder, same contract.
    let src = pattern(256);
    let mut engines_seen = (false, false);
    for &cap in &capacity_series() {
        let p = ash::Pipeline::compile_with_options(
            &STEPS,
            ash::PipelineOptions {
                code_capacity: Some(cap),
                ..ash::PipelineOptions::default()
            },
        )
        .expect("the ladder always yields a runnable pipeline");
        match p.engine_kind() {
            ash::EngineKind::Native => engines_seen.0 = true,
            ash::EngineKind::Interpreter => engines_seen.1 = true,
        }
        let mut dst = vec![0u8; src.len()];
        let ck = p.run(&src, &mut dst);
        assert_eq!(ck, reference::checksum(&src), "capacity {cap}");
        assert_eq!(dst, reference::swapped(&src), "capacity {cap}");
        tally.record::<(), ()>(&Ok(()));
    }
    assert!(engines_seen.0, "comfortable capacities must compile native");
    assert!(engines_seen.1, "hopeless capacities must degrade");

    tally.assert_covered(140);
    println!(
        "exhaustion: {} cases, {} completed, {} typed overflows",
        tally.total(),
        tally.completed,
        tally.trapped
    );
}

/// Truncated, misaligned and garbage packets against three
/// independently implemented classifiers — compiled DPF, the MPF
/// bytecode interpreter and the PATHFINDER trie interpreter. The
/// filters are disjoint, so on *any* input all three must agree; ~100
/// comparisons, none may panic.
#[test]
fn malformed_packets_classify_identically_on_every_engine() {
    use dpf::packet::{self, PacketSpec};
    let filters = packet::port_filter_set(6, 4000);

    let mut d = dpf::Dpf::new();
    let mut m = dpf::mpf::Mpf::new();
    let mut p = dpf::Pathfinder::new();
    for f in &filters {
        let a = d.insert(f.clone());
        let b = m.insert(f);
        let c = p.insert(f.clone());
        assert_eq!((a, b), (c, c), "id assignment must agree");
    }
    d.compile().expect("compiles");
    assert_eq!(d.engine(), Some(dpf::EngineKind::Native));

    let pkt = packet::build(&PacketSpec {
        dst_port: 4003,
        ..PacketSpec::default()
    });
    let full = d.classify(&pkt);
    assert!(full.is_some(), "the intact packet must match");

    let mut cases = 0usize;
    let mut rejected = 0usize;
    let agree = |msg: &[u8], what: &str| {
        let (a, b, c) = (d.classify(msg), m.classify(msg), p.classify(msg));
        assert_eq!(a, b, "{what}: dpf vs mpf");
        assert_eq!(a, c, "{what}: dpf vs pathfinder");
        a
    };

    // Every truncation point, 0..=len.
    for cut in 0..=pkt.len() {
        let got = agree(&pkt[..cut], &format!("truncated to {cut}"));
        cases += 1;
        if got.is_none() {
            rejected += 1;
        }
    }
    assert!(rejected > 0, "short prefixes must be rejected, not matched");

    // Misaligned views of the same packet.
    for off in 1..4 {
        agree(&pkt[off..], &format!("offset by {off}"));
        cases += 1;
    }

    // Deterministic garbage of assorted lengths.
    let mut rng = XorShift::new(0xdecaf);
    for _ in 0..40 {
        let mut msg = vec![0u8; rng.below(81) as usize];
        rng.fill(&mut msg);
        agree(&msg, "garbage");
        cases += 1;
    }

    assert!(cases >= 90, "only {cases} packet cases ran");
    println!("packets: {cases} cases, {rejected} truncations rejected");
}

/// The zero-check emission fast path under storage faults: a fixed
/// emission script exercising every append tier (per-byte, fixed
/// arrays, packed words, a reserved window, prologue reserve,
/// alignment) is swept across every capacity from zero to past its
/// full length, in both the fast path and the `Bytewise` reference
/// mode. At every capacity the two paths must agree on the overflow
/// latch, nothing may panic or spin, and at-or-above the exact length
/// the output must be byte-identical to the unfaulted reference —
/// "reservation exactly at capacity" is the interesting boundary the
/// sweep passes through. On top of the sweep, each backend's fused
/// pipeline is generated into storage of exactly the finished length
/// (must succeed) and one byte less (must latch a typed overflow).
#[test]
fn reservation_faults_are_typed_at_every_capacity() {
    use vcode::buf::{CodeBuffer, EmitPath};

    fn script(b: &mut CodeBuffer<'_>) {
        b.put_u8(0x90);
        b.put_array([0x11, 0x22, 0x33, 0x44]);
        b.put_word(0x8899_aabb_ccdd_eeff, 4);
        b.put_u32(0x5566_7788);
        {
            let mut w = b.window(12);
            w.u8(0xaa);
            w.array([0xbb, 0xcc]);
            w.word(0x1122_3344, 4);
        }
        b.reserve(5, 0xee);
        b.align_to(8, 0);
        b.put_slice(&[0xde, 0xad, 0xbe, 0xef]);
    }

    // Unfaulted reference: the full output and its exact length.
    let mut ref_mem = vec![0u8; 64];
    let mut r = CodeBuffer::new(&mut ref_mem);
    script(&mut r);
    assert!(!r.overflowed());
    let full = r.as_slice().to_vec();

    let mut cases = 0usize;
    let mut latched = 0usize;
    for cap in 0..=full.len() + 8 {
        let mut fast_mem = vec![0u8; cap];
        let mut byte_mem = vec![0u8; cap];
        let mut fast = CodeBuffer::new(&mut fast_mem);
        let mut slow = CodeBuffer::with_path(&mut byte_mem, EmitPath::Bytewise);
        script(&mut fast);
        script(&mut slow);
        // Both paths must latch at exactly the same capacities (the
        // fast path drops whole runs where the reference lands partial
        // bytes, so cursors may differ below the boundary — but the
        // typed outcome may not).
        assert_eq!(fast.overflowed(), slow.overflowed(), "cap {cap}: latch");
        assert_eq!(fast.overflowed(), cap < full.len(), "cap {cap}: boundary");
        assert!(fast.len() <= cap, "cap {cap}: cursor past storage");
        if cap >= full.len() {
            assert_eq!(fast.as_slice(), &full[..], "cap {cap}: bytes");
            assert_eq!(slow.as_slice(), &full[..], "cap {cap}: bytes (ref)");
        } else {
            latched += 1;
        }
        // Reservations *after* the latch must stay typed: more window
        // writes land in the spill, replay, and re-latch — no panic, no
        // cursor escape.
        let mut w = fast.window(8);
        w.u8(0x01);
        w.u16(0x0203);
        drop(w);
        assert_eq!(
            fast.overflowed(),
            cap < full.len() + 3,
            "cap {cap}: relatch"
        );
        assert!(fast.len() <= cap, "cap {cap}: cursor after relatch");
        cases += 1;
    }
    assert!(latched > 0, "the sweep must cross the overflow boundary");

    // Exactly-sized storage at the generator level, all four targets:
    // the finished length must generate cleanly, one byte less must be
    // a typed overflow from `end()`, never a panic.
    fn exact<T: Target>(name: &str, tally: &mut Tally, cases: &mut usize) {
        let fin_len = {
            let mut mem = vec![0u8; 8192];
            generic::compile_fused::<T>(&mut mem, &STEPS)
                .expect("pipeline generates")
                .len
        };
        let mut mem = vec![0u8; fin_len];
        let ok = generic::compile_fused::<T>(&mut mem, &STEPS);
        assert!(ok.is_ok(), "{name}: exact capacity must generate");
        tally.record(&ok);
        let mut mem = vec![0u8; fin_len - 1];
        let err = generic::compile_fused::<T>(&mut mem, &STEPS);
        assert!(err.is_err(), "{name}: one byte short must overflow");
        tally.record(&err);
        *cases += 2;
    }
    let mut tally = Tally::new();
    exact::<vcode_x64::X64>("x64", &mut tally, &mut cases);
    exact::<vcode_mips::Mips>("mips", &mut tally, &mut cases);
    exact::<vcode_sparc::Sparc>("sparc", &mut tally, &mut cases);
    exact::<vcode_alpha::Alpha>("alpha", &mut tally, &mut cases);
    assert_eq!((tally.completed, tally.trapped), (4, 4));
    println!("reservation: {cases} cases, {latched} capacities latched");
}

/// Pooled executable memory under exhaustion: impossible sizes must
/// come back as typed [`std::io::Error`]s (`ENOMEM`), and the pool must
/// remain fully usable afterwards — a failed request may not poison a
/// shard or leak a parked mapping.
#[test]
fn pooled_execmem_exhaustion_is_typed() {
    use vcode_x64::{ExecMem, MAX_POOL_PAGES};

    // Size so large the page-count arithmetic itself would overflow.
    let err = ExecMem::new(usize::MAX).expect_err("absurd size must fail");
    assert_eq!(err.raw_os_error(), Some(12), "ENOMEM, not a panic");
    // Large enough to defeat any real allocation, small enough that all
    // the checked arithmetic succeeds: the typed error must come from
    // the mapping layer instead.
    assert!(ExecMem::new(usize::MAX / 4).is_err());

    // The pool is not poisoned: both a pooled-class and an oversized
    // (pool-bypassing) allocation still work after the failures.
    let small = ExecMem::new(4096).expect("pooled class survives");
    drop(small);
    let big = ExecMem::new((MAX_POOL_PAGES + 1) * 4096).expect("bypass class survives");
    drop(big);
}

/// Curated native crash programs under [`vcode_x64::GuardedCall`]:
/// each historically-fatal fault (null deref, wild store, illegal
/// opcode, runaway loop, straight-line runoff) becomes a typed
/// [`vcode_x64::NativeTrap`] carrying the faulting address.
#[test]
fn curated_native_faults_trap_under_guard() {
    use std::time::Duration;
    use vcode_x64::{ExecMem, GuardedCall, X64};

    fn emit(f: impl FnOnce(&mut Assembler<'_, X64>)) -> vcode_x64::ExecCode {
        let mut mem = ExecMem::new(4096).expect("map");
        let mut a =
            Assembler::<X64>::lambda(mem.as_mut_slice(), "%p:%i", Leaf::Yes).expect("lambda");
        f(&mut a);
        a.end().expect("end");
        mem.finalize().expect("finalize")
    }

    let guard = GuardedCall::new();
    let mut tally = Tally::new();

    // Load through a null pointer.
    let code = emit(|a| {
        let p = a.arg(0);
        let t = a.getreg(RegClass::Temp).expect("reg");
        a.ldii(t, p, 0);
        a.reti(t);
    });
    let out = guard.call1(&code, 0);
    tally.record(&out);
    let t = out.expect_err("null deref must trap");
    assert_eq!(Trap::from(t).kind, TrapKind::BadAccess);

    // Store through a wild pointer.
    let code = emit(|a| {
        let p = a.arg(0);
        let t = a.getreg(RegClass::Temp).expect("reg");
        a.seti(t, 7);
        a.stii(t, p, 0);
        a.reti(t);
    });
    let out = guard.call1(&code, 0xdead_b000);
    tally.record(&out);
    let t = Trap::from(out.expect_err("wild store must trap"));
    assert_eq!(t.kind, TrapKind::BadAccess);
    assert_eq!(t.addr, Some(0xdead_b000));

    // Illegal opcode (raw ud2 — no assembler surface emits it).
    let mut mem = ExecMem::new(4096).expect("map");
    mem.as_mut_slice()[..2].copy_from_slice(&[0x0f, 0x0b]);
    let code = mem.finalize().expect("finalize");
    let out = guard.call0(&code);
    tally.record(&out);
    assert_eq!(
        Trap::from(out.expect_err("ud2 must trap")).kind,
        TrapKind::IllegalInsn
    );

    // Runaway loop under the watchdog.
    let code = emit(|a| {
        let top = a.genlabel();
        a.label(top);
        a.jmp(top);
        a.retv();
    });
    let watchdog = GuardedCall::with_fuel(vcode::Fuel::time(Duration::from_millis(40)));
    let out = watchdog.call1(&code, 0);
    tally.record(&out);
    assert_eq!(
        Trap::from(out.expect_err("loop must exhaust fuel")).kind,
        TrapKind::FuelExhausted
    );

    // Straight-line runoff into the trailing guard page.
    let mut mem = ExecMem::new(4096).expect("map");
    let len = mem.len();
    for b in mem.as_mut_slice().iter_mut() {
        *b = 0x90; // nop sled, no ret: execution escapes off the end
    }
    let code = mem.finalize().expect("finalize");
    let out = guard.call0(&code);
    tally.record(&out);
    let t = Trap::from(out.expect_err("runoff must hit the guard page"));
    assert_eq!(t.kind, TrapKind::BadAccess);
    assert_eq!(t.addr, Some(code.addr() + len as u64));

    assert_eq!(tally.total(), 5);
    assert_eq!(tally.trapped, 5);
}

/// Host-facing simulator memory APIs (`load_code` / `alloc` / `write` /
/// `read`) under a misuse corpus: out-of-range addresses, oversized
/// images, overflowing and exhausting allocations. Every case must come
/// back as a typed [`vcode_sim::MemError`] — these paths used to panic
/// (slice out of bounds, `at + size` overflow, bare asserts) — and the
/// machine must stay fully usable afterwards.
#[test]
fn sim_memory_api_misuse_is_typed_on_every_simulator() {
    use vcode_sim::MemError;

    const MEM: usize = 1 << 20;

    // (addr, len) misuse corpus shared by write/read; u32::MAX-based
    // cases also exercise the 32-bit machines' widest addresses.
    let ranges: [(u64, usize); 6] = [
        (MEM as u64, 1),                  // one past the end
        (MEM as u64 - 1, 2),              // straddles the end
        (u64::from(u32::MAX), 1),         // widest 32-bit address
        (u64::from(u32::MAX) - 3, 8),     // end wraps past u32
        (0, MEM + 1),                     // len alone too large
        (MEM as u64 / 2, usize::MAX / 2), // addr + len overflows
    ];
    // (size, align) alloc misuse corpus.
    let allocs: [(usize, usize); 4] = [
        (MEM, 8),            // exhausts the heap
        (usize::MAX - 4, 8), // at + size overflows
        (usize::MAX, 1),     // size alone overflows
        (8, usize::MAX),     // align rounds past usize
    ];

    let mut cases = 0usize;

    macro_rules! misuse {
        ($name:literal, $mk:expr, $good:expr) => {{
            let mut m = $mk;
            for &(addr, len) in &ranges {
                let addr = addr.try_into().unwrap_or_default();
                assert!(
                    matches!(m.read(addr, len), Err(MemError::OutOfRange { .. }))
                        || u64::from(addr) + (len as u64) <= MEM as u64,
                    "{}: read({addr:#x}, {len})",
                    $name
                );
                let data = vec![0u8; len.min(16)];
                // Rebuild the out-of-range property for the clamped
                // write length before asserting.
                if u64::from(addr) + (data.len() as u64) > MEM as u64 {
                    assert!(
                        matches!(m.write(addr, &data), Err(MemError::OutOfRange { .. })),
                        "{}: write({addr:#x}, {})",
                        $name,
                        data.len()
                    );
                }
                cases += 2;
            }
            let huge = vec![0u8; MEM + 1];
            assert!(
                matches!(m.load_code(&huge), Err(MemError::OutOfRange { .. })),
                "{}: oversized load_code",
                $name
            );
            for &(size, align) in &allocs {
                assert!(
                    matches!(m.alloc(size, align), Err(MemError::OutOfMemory { .. })),
                    "{}: alloc({size:#x}, {align:#x})",
                    $name
                );
                cases += 1;
            }
            cases += 1;
            // The machine survives the misuse: generate and run the
            // real pipeline on it.
            $good(&mut m);
        }};
    }

    let data = pattern(40);
    misuse!(
        "mips",
        vcode_sim::mips::Machine::new(MEM),
        |m: &mut vcode_sim::mips::Machine| {
            let code = gen::<vcode_mips::Mips>();
            let entry = m.load_code(&code).expect("fits");
            let dst = m.alloc(64, 8).expect("fits");
            let src = m.alloc(64, 8).expect("fits");
            m.write(src, &data).expect("in range");
            m.call(entry, &[dst, src, 10], 500_000).expect("runs");
        }
    );
    misuse!(
        "sparc",
        vcode_sim::sparc::Machine::new(MEM),
        |m: &mut vcode_sim::sparc::Machine| {
            let code = gen::<vcode_sparc::Sparc>();
            let entry = m.load_code(&code).expect("fits");
            let dst = m.alloc(64, 8).expect("fits");
            let src = m.alloc(64, 8).expect("fits");
            m.write(src, &data).expect("in range");
            m.call(entry, &[dst, src, 10], 500_000).expect("runs");
        }
    );
    misuse!(
        "alpha",
        vcode_sim::alpha::Machine::new(MEM),
        |m: &mut vcode_sim::alpha::Machine| {
            let code = gen::<vcode_alpha::Alpha>();
            let entry = m.load_code(&code).expect("fits");
            let dst = m.alloc(64, 8).expect("fits");
            let src = m.alloc(64, 8).expect("fits");
            m.write(src, &data).expect("in range");
            m.call(entry, &[dst, src, 10], 500_000).expect("runs");
        }
    );

    assert!(cases >= 50, "only {cases} misuse cases ran");
    println!("memory-api misuse: {cases} cases, all typed");
}

/// Register-tuning APIs (`set_register_class` / `set_register_priority`)
/// fed registers outside the target's register file, on every backend.
/// Each case must latch a typed [`vcode::Error::UnknownRegister`] —
/// never a panic, never a silent acceptance — and the backend must stay
/// fully usable for a subsequent clean generation.
#[test]
fn register_api_misuse_is_typed_on_every_backend() {
    use vcode::{Bank, Error, Reg, RegKind};

    /// An integer register the target does not describe, reserve or
    /// anchor — no legitimate path can ever hand it out.
    fn ghost_int<T: Target>() -> Reg {
        let rf = T::regfile();
        (0u8..64)
            .map(Reg::int)
            .find(|&r| {
                rf.desc(r).is_none()
                    && !T::CHECKS.reserved_int.contains(&r.num())
                    && r != rf.sp
                    && r != rf.fp
                    && Some(r) != rf.zero
            })
            .expect("every target leaves some integer register undescribed")
    }

    fn corpus<T: Target>(cases: &mut usize) {
        let ghost = ghost_int::<T>();
        // Far outside any bank on any target, in both banks.
        let wild = [ghost, Reg::int(63), Reg::flt(63)];

        for &bad in &wild {
            for kind in [RegKind::CallerSaved, RegKind::CalleeSaved] {
                let mut mem = vec![0u8; 1024];
                let mut a = Assembler::<T>::lambda(&mut mem, "%i", Leaf::Yes).unwrap();
                let x = a.arg(0);
                a.set_register_class(bad, kind);
                a.reti(x);
                assert!(
                    matches!(a.end(), Err(Error::UnknownRegister(_))),
                    "set_register_class({bad:?}) must latch UnknownRegister"
                );
                *cases += 1;
            }
            for bank in [Bank::Int, Bank::Flt] {
                let mut mem = vec![0u8; 1024];
                let mut a = Assembler::<T>::lambda(&mut mem, "%i", Leaf::Yes).unwrap();
                let x = a.arg(0);
                a.set_register_priority(bank, &[bad]);
                a.reti(x);
                assert!(
                    matches!(a.end(), Err(Error::UnknownRegister(_))),
                    "set_register_priority({bank:?}, [{bad:?}]) must latch UnknownRegister"
                );
                *cases += 1;
            }
        }

        // A ghost hidden among valid registers is still caught.
        let valid = T::regfile().int.first().expect("nonempty file").reg;
        let mut mem = vec![0u8; 1024];
        let mut a = Assembler::<T>::lambda(&mut mem, "%i", Leaf::Yes).unwrap();
        let x = a.arg(0);
        a.set_register_priority(Bank::Int, &[valid, ghost]);
        a.reti(x);
        assert!(matches!(a.end(), Err(Error::UnknownRegister(_))));
        *cases += 1;

        // The backend survives the misuse: the real pipeline still
        // generates cleanly afterwards.
        let code = gen::<T>();
        assert!(!code.is_empty());
        *cases += 1;
    }

    let mut cases = 0usize;
    corpus::<vcode_mips::Mips>(&mut cases);
    corpus::<vcode_sparc::Sparc>(&mut cases);
    corpus::<vcode_alpha::Alpha>(&mut cases);
    corpus::<vcode_x64::X64>(&mut cases);

    assert!(cases >= 40, "only {cases} register-API misuse cases ran");
    println!("register-api misuse: {cases} cases, all typed");
}
