//! Fault-injected builders against the background compile service.
//!
//! The contract under fault (ISSUE 6 acceptance): with builders that
//! panic, overrun their deadline, or fail persistently, the corpus shows
//! **zero panics and zero unbounded waits** — every request returns
//! Ready, a degraded/typed outcome (Queued, InFlight, Shed,
//! Quarantined), or a typed error, and every wait in the suite is
//! bounded by an explicit timeout.

use harden::{BuildFault, FaultPlan, XorShift};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vcode::{CacheKey, CompileService, LambdaCache, ServiceConfig, Submit, TargetId};

fn key(n: u64) -> CacheKey {
    CacheKey::from_client_hash(TargetId::X64, n)
}

fn service(cfg: ServiceConfig) -> CompileService<u64> {
    CompileService::new(Arc::new(LambdaCache::new(64)), cfg)
}

fn cfg() -> ServiceConfig {
    ServiceConfig {
        workers: 2,
        queue_depth: 16,
        deadline: Duration::from_millis(250),
        quarantine_base: Duration::from_millis(20),
        quarantine_cap: Duration::from_millis(200),
    }
}

/// Bounded wait for an idle service — the suite-wide "no unbounded
/// waits" guard.
fn drain(sv: &CompileService<u64>) {
    assert!(
        sv.wait_idle(Duration::from_secs(30)),
        "service failed to go idle within bound"
    );
}

#[test]
fn panicking_builders_never_escape_and_quarantine() {
    let sv = service(cfg());
    for n in 0..8 {
        let plan = FaultPlan::new(vec![BuildFault::Panic]);
        match sv.submit(key(n), move || plan.run(n)) {
            Submit::Queued => {}
            other => panic!("expected Queued, got {other:?}"),
        }
    }
    drain(&sv);
    let st = sv.stats();
    assert_eq!(st.panicked, 8, "every panic caught and counted");
    assert_eq!(st.quarantined_keys, 8, "every poisoned key quarantined");
    for n in 0..8 {
        assert!(sv.cache().peek(&key(n)).is_none(), "no garbage published");
        let q = sv.quarantine(&key(n)).expect("quarantine entry");
        assert!(q.last_error.contains("injected panic"), "{}", q.last_error);
    }
}

#[test]
fn deadline_overrun_vacates_slot_for_sync_claim() {
    let sv = service(ServiceConfig {
        workers: 1,
        deadline: Duration::from_millis(20),
        ..cfg()
    });
    let plan = FaultPlan::new(vec![BuildFault::SleepMs(80)]);
    let p = Arc::clone(&plan);
    assert!(matches!(
        sv.submit(key(100), move || p.run(1)),
        Submit::Queued
    ));
    drain(&sv);
    assert_eq!(plan.attempts(), 1);
    assert_eq!(sv.stats().deadline_expired, 1);
    assert!(
        sv.cache().peek(&key(100)).is_none(),
        "overrun result must be discarded"
    );
    // The slot is vacated, not wedged: a bounded sync build on the same
    // key claims it immediately (after the quarantine backoff expires).
    let t0 = Instant::now();
    loop {
        match sv.quarantine(&key(100)) {
            Some(q) if q.retry_in > Duration::ZERO => std::thread::sleep(q.retry_in),
            _ => break,
        }
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "backoff never expired"
        );
    }
    let v = sv
        .cache()
        .get_or_build::<String>(key(100), || Ok(Arc::new(7)), Duration::from_secs(5))
        .expect("sync claim after vacate");
    assert_eq!(*v, 7);
}

#[test]
fn persistent_failure_backs_off_exponentially() {
    let sv = service(ServiceConfig {
        workers: 1,
        quarantine_base: Duration::from_millis(40),
        quarantine_cap: Duration::from_secs(5),
        ..cfg()
    });
    let plan = FaultPlan::new(vec![BuildFault::Fail]);
    // Hammer the key far more often than the backoff admits probes.
    let t0 = Instant::now();
    let mut quarantined_seen = 0u32;
    while t0.elapsed() < Duration::from_millis(300) {
        let p = Arc::clone(&plan);
        match sv.submit(key(200), move || p.run(1)) {
            Submit::Queued | Submit::InFlight | Submit::Shed => {}
            Submit::Quarantined { failures, .. } => {
                quarantined_seen = quarantined_seen.max(failures);
            }
            Submit::Ready(_) => panic!("a failing key can never be Ready"),
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    drain(&sv);
    // ~150 submits; with 40ms-base exponential backoff the builder may
    // run only a handful of times. The poison key cannot hot-loop.
    assert!(
        plan.attempts() <= 4,
        "backoff must throttle rebuilds, ran {}",
        plan.attempts()
    );
    assert!(quarantined_seen >= 1, "typed quarantine outcomes observed");
    assert!(sv.quarantine(&key(200)).unwrap().failures >= 1);
}

#[test]
fn failing_key_recovers_once_builder_heals() {
    let sv = service(ServiceConfig {
        workers: 1,
        quarantine_base: Duration::from_millis(15),
        ..cfg()
    });
    let plan = FaultPlan::new(vec![
        BuildFault::Fail,
        BuildFault::Fail,
        BuildFault::Succeed,
    ]);
    let t0 = Instant::now();
    loop {
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "healed builder never published"
        );
        let p = Arc::clone(&plan);
        match sv.submit(key(300), move || p.run(42)) {
            Submit::Ready(v) => {
                assert_eq!(*v, 42);
                break;
            }
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    assert_eq!(plan.attempts(), 3, "two failures, then the recovery probe");
    assert!(
        sv.quarantine(&key(300)).is_none(),
        "success clears quarantine"
    );
}

#[test]
fn mixed_fault_corpus_every_request_served_or_typed() {
    // A seeded storm of submits across keys whose builders draw
    // deterministic faults. The assertions are the acceptance criteria
    // themselves: no panic escapes, no wait is unbounded, and the
    // service keeps serving afterwards.
    let sv = service(ServiceConfig {
        workers: 2,
        queue_depth: 8,
        deadline: Duration::from_millis(60),
        quarantine_base: Duration::from_millis(10),
        quarantine_cap: Duration::from_millis(100),
    });
    let mut rng = XorShift::new(0x5eed);
    let plans: Vec<Arc<FaultPlan>> = (0..24)
        .map(|_| {
            let fault = match rng.below(4) {
                0 => BuildFault::Succeed,
                1 => BuildFault::Fail,
                2 => BuildFault::Panic,
                _ => BuildFault::SleepMs(100), // overruns the deadline
            };
            // Whatever the fault, the builder eventually heals.
            FaultPlan::new(vec![fault, BuildFault::Succeed])
        })
        .collect();
    let mut outcomes = harden::Tally::new();
    for i in 0..400u64 {
        let k = rng.below(plans.len() as u64);
        let plan = Arc::clone(&plans[k as usize]);
        let outcome: Result<(), ()> = match sv.submit(key(k), move || plan.run(k)) {
            Submit::Ready(v) => {
                assert_eq!(*v, k, "published value must be the key's own");
                Ok(())
            }
            // Degraded-but-served outcomes: typed, never a wait.
            Submit::Queued | Submit::InFlight | Submit::Shed => Err(()),
            Submit::Quarantined { .. } => Err(()),
        };
        outcomes.record(&outcome);
        if i % 16 == 0 {
            std::thread::sleep(Duration::from_millis(3));
        }
    }
    outcomes.assert_covered(400);
    drain(&sv);
    let st = sv.stats();
    assert_eq!(
        st.enqueued,
        st.completed + st.failed + st.panicked + st.deadline_expired,
        "every accepted build resolved exactly once: {st:?}"
    );
    // The service survived the storm: a fresh key still compiles.
    assert!(matches!(
        sv.submit(key(999), || Ok(Arc::new(999))),
        Submit::Queued
    ));
    drain(&sv);
    assert_eq!(sv.cache().peek(&key(999)).as_deref(), Some(&999));
}
