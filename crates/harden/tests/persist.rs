//! Artifact-corruption corpus for the persistent (L2) code cache.
//!
//! A cache directory is hostile input: anything — truncation, bit rot,
//! a foreign build's artifacts, a concurrent rewriter — may be behind
//! that `.vcar` file. Every corruption here must surface as a typed
//! [`PersistError`] from the tier, the engine must silently fall back
//! to a fresh compile with correct results, and nothing may panic or
//! map unverified bytes.

use harden::XorShift;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use vcode::engine::{fnv1a, Backend, Engine, Program, TargetId};
use vcode::persist::{FOOTER_LEN, HEADER_LEN, OFF_ABI, OFF_FORMAT, OFF_TARGET};
use vcode::{BinOp, CacheKey, CacheTier, PersistError};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "vcode-harden-persist-{}-{}",
        std::process::id(),
        tag
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine(dir: &Path) -> Engine {
    vcode_sim::engine::install();
    let mut e = Engine::new(32);
    let backends: Vec<Arc<dyn Backend>> = vec![
        Arc::new(vcode_mips::MipsBackend),
        Arc::new(vcode_sparc::SparcBackend),
        Arc::new(vcode_alpha::AlphaBackend),
        Arc::new(vcode_x64::X64Backend),
    ];
    for b in backends {
        e.register(b);
    }
    e.enable_persist(dir).expect("tier attaches");
    e
}

fn key_for(p: &Program, target: TargetId) -> CacheKey {
    let (bytes, hash) = p.encoded();
    CacheKey::from_encoded(target, Arc::clone(bytes), *hash)
}

fn sample() -> Program {
    let mut p = Program::new(2).unwrap();
    p.bin(BinOp::Add, 2, 0, 1);
    p.bin_imm(BinOp::Mul, 2, 2, 7);
    p.ret(2);
    p
}

/// Compiles the sample on `target` into a fresh dir and returns the
/// single artifact written, as (dir, path, bytes).
fn seeded_artifact(tag: &str, target: TargetId) -> (PathBuf, PathBuf, Vec<u8>) {
    let dir = scratch_dir(tag);
    let e = engine(&dir);
    let f = e.compile_cached(target, &sample()).expect("compiles");
    assert_eq!(f.call(&[5, 1]).unwrap(), 42);
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("dir exists")
        .map(|d| d.unwrap().path())
        .collect();
    assert_eq!(files.len(), 1, "exactly one artifact for one key");
    let path = files.pop().unwrap();
    let bytes = std::fs::read(&path).expect("readable");
    (dir, path, bytes)
}

/// Loads whatever is at `path` through a fresh engine's tier, returning
/// the typed error, and proves the engine still compiles correctly
/// (silent fallback: the corrupt artifact costs time, never answers).
fn load_err_and_fallback(dir: &Path, target: TargetId) -> PersistError {
    let e = engine(dir);
    let p = sample();
    let key = key_for(&p, target);
    let tier = e.persist_tier().expect("tier attached");
    let err = CacheTier::load(&**tier, &key).expect_err("corrupt artifact must be a typed error");
    let f = e
        .compile_cached(target, &p)
        .expect("fallback compile must succeed");
    assert_eq!(
        f.call(&[5, 1]).unwrap(),
        42,
        "fallback result must be correct"
    );
    err
}

/// Patches `bytes[off..off+N]` and recomputes the trailing checksum, so
/// the corruption under test is the *field*, not the checksum.
fn patch_and_reseal(bytes: &[u8], off: usize, field: &[u8]) -> Vec<u8> {
    let mut b = bytes.to_vec();
    b[off..off + field.len()].copy_from_slice(field);
    let body = b.len() - FOOTER_LEN;
    let sum = fnv1a(&b[..body]);
    b[body..].copy_from_slice(&sum.to_le_bytes());
    b
}

#[test]
fn truncation_at_every_region_is_typed() {
    let (dir, path, bytes) = seeded_artifact("trunc", TargetId::X64);
    let cuts = [
        0,
        1,
        3,
        HEADER_LEN - 1,
        HEADER_LEN,
        HEADER_LEN + (bytes.len() - HEADER_LEN) / 2,
        bytes.len() - FOOTER_LEN,
        bytes.len() - 1,
    ];
    for cut in cuts {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let err = load_err_and_fallback(&dir, TargetId::X64);
        assert!(
            matches!(
                err,
                PersistError::Truncated { .. } | PersistError::Checksum { .. }
            ),
            "cut at {cut}: got {err}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_length_file_is_typed() {
    let (dir, path, _) = seeded_artifact("zero", TargetId::X64);
    std::fs::write(&path, []).unwrap();
    let err = load_err_and_fallback(&dir, TargetId::X64);
    assert!(
        matches!(err, PersistError::Truncated { got: 0, .. }),
        "got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn garbage_file_is_typed() {
    let (dir, path, bytes) = seeded_artifact("garbage", TargetId::X64);
    let mut rng = XorShift::new(0x6761_7262);
    let junk: Vec<u8> = (0..bytes.len()).map(|_| rng.next_u64() as u8).collect();
    std::fs::write(&path, &junk).unwrap();
    let err = load_err_and_fallback(&dir, TargetId::X64);
    assert!(matches!(err, PersistError::BadMagic), "got {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Single-bit flips across the whole envelope: header, payload, and
/// checksum bits alike must classify as *some* typed error — the exact
/// class depends on which field the bit lands in, but a flip may never
/// load, panic, or fall through to unverified native bytes.
#[test]
fn sampled_bitflips_are_typed() {
    let (dir, path, bytes) = seeded_artifact("bitflip", TargetId::X64);
    let nbits = bytes.len() * 8;
    let mut rng = XorShift::new(0xb17f_11b5);
    // Every header bit, plus a deterministic sample of the rest.
    let mut positions: Vec<usize> = (0..HEADER_LEN * 8).collect();
    positions.extend((0..96).map(|_| rng.below(nbits as u64) as usize));
    for bit in positions {
        let mut b = bytes.clone();
        b[bit / 8] ^= 1 << (bit % 8);
        std::fs::write(&path, &b).unwrap();
        let _typed: PersistError = load_err_and_fallback(&dir, TargetId::X64);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_target_is_refused() {
    let (dir, path, bytes) = seeded_artifact("target", TargetId::X64);
    // Claim the bytes are MIPS code (index 0): the envelope is intact
    // and the checksum resealed, so only the target check can refuse it.
    let patched = patch_and_reseal(&bytes, OFF_TARGET, &[0u8]);
    std::fs::write(&path, &patched).unwrap();
    let err = load_err_and_fallback(&dir, TargetId::X64);
    assert!(
        matches!(
            err,
            PersistError::WrongTarget {
                found: TargetId::Mips,
                expected: TargetId::X64,
            }
        ),
        "got {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_format_version_is_refused() {
    let (dir, path, bytes) = seeded_artifact("format", TargetId::X64);
    let next = (vcode::persist::FORMAT_VERSION + 1).to_le_bytes();
    let patched = patch_and_reseal(&bytes, OFF_FORMAT, &next);
    std::fs::write(&path, &patched).unwrap();
    let err = load_err_and_fallback(&dir, TargetId::X64);
    assert!(matches!(err, PersistError::WrongFormat { .. }), "got {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_abi_fingerprint_is_refused() {
    let (dir, path, bytes) = seeded_artifact("abi", TargetId::X64);
    let foreign = (vcode::persist::abi_fingerprint() ^ 0xdead_beef).to_le_bytes();
    let patched = patch_and_reseal(&bytes, OFF_ABI, &foreign);
    std::fs::write(&path, &patched).unwrap();
    let err = load_err_and_fallback(&dir, TargetId::X64);
    assert!(matches!(err, PersistError::WrongAbi { .. }), "got {err}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupt simulated-target artifacts take the same typed path: a
/// payload flip the checksum still covers classifies as
/// [`PersistError::Checksum`] and the compile falls back correctly,
/// on all three simulated ISAs.
#[test]
fn sim_target_payload_damage_is_typed() {
    for (tag, target) in [
        ("mips", TargetId::Mips),
        ("sparc", TargetId::Sparc),
        ("alpha", TargetId::Alpha),
    ] {
        let (dir, path, bytes) = seeded_artifact(tag, target);
        let mut b = bytes.clone();
        let code_mid = HEADER_LEN + (b.len() - HEADER_LEN - FOOTER_LEN) / 2;
        b[code_mid] ^= 0x40;
        std::fs::write(&path, &b).unwrap();
        let err = load_err_and_fallback(&dir, target);
        assert!(
            matches!(err, PersistError::Checksum { .. }),
            "{target}: got {err}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A *resealed* payload flip (damage plus a recomputed checksum — i.e.
/// a writer consistent enough to fix its own footer) is beyond what
/// structural revalidation can attribute: the re-decode refuses it when
/// the flip breaks an encoding, and otherwise the bytes are a
/// different-but-well-formed program. The hardening guarantee is that
/// *neither* case can panic, map undecodable bytes, or crash the
/// process — the artifact directory is trusted against accident, not
/// against an adversary who can recompute checksums.
#[test]
fn resealed_payload_damage_never_crashes() {
    for (tag, target) in [
        ("mips-resealed", TargetId::Mips),
        ("sparc-resealed", TargetId::Sparc),
        ("alpha-resealed", TargetId::Alpha),
    ] {
        let (dir, path, bytes) = seeded_artifact(tag, target);
        let mut rng = XorShift::new(0x5ea1);
        for _ in 0..16 {
            let mut b = bytes.clone();
            let payload = b.len() - HEADER_LEN - FOOTER_LEN;
            let bit = HEADER_LEN * 8 + rng.below(payload as u64 * 8) as usize;
            b[bit / 8] ^= 1 << (bit % 8);
            let body = b.len() - FOOTER_LEN;
            let sum = fnv1a(&b[..body]);
            b[body..].copy_from_slice(&sum.to_le_bytes());
            std::fs::write(&path, &b).unwrap();
            let e = engine(&dir);
            let p = sample();
            let key = key_for(&p, target);
            let tier = e.persist_tier().expect("tier attached");
            match CacheTier::load(&**tier, &key) {
                // Structurally valid bytes load; running them may
                // return anything or trap (typed), but never crash.
                Ok(Some(f)) => {
                    let _ = f.call(&[5, 1]);
                }
                Ok(None) => panic!("{target}: artifact file vanished"),
                // The flip broke an encoding or an embedded hash:
                // typed refusal, and the fresh compile still answers.
                Err(_) => {
                    let f = e.compile_cached(target, &p).expect("fallback compiles");
                    assert_eq!(f.call(&[5, 1]).unwrap(), 42, "{target}");
                }
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// A writer non-atomically rewriting the artifact (alternating between
/// torn prefixes, garbage, and the pristine image) while readers hammer
/// the tier: loads are Ok(Some) or typed errors, compiles always answer
/// correctly, and nothing panics. This is the failure mode the atomic
/// write-rename publication protects *well-behaved* writers from; a
/// hostile in-place rewriter must still never crash a reader.
#[test]
fn concurrent_rewriter_never_crashes_readers() {
    let (dir, path, pristine) = seeded_artifact("rewrite", TargetId::X64);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let stop = Arc::clone(&stop);
        let path = path.clone();
        let pristine = pristine.clone();
        std::thread::spawn(move || {
            let mut rng = XorShift::new(0x7ea2);
            let mut i = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                match i % 3 {
                    0 => {
                        let cut = rng.below(pristine.len() as u64) as usize;
                        let _ = std::fs::write(&path, &pristine[..cut]);
                    }
                    1 => {
                        let mut b = pristine.clone();
                        let bit = rng.below(b.len() as u64 * 8) as usize;
                        b[bit / 8] ^= 1 << (bit % 8);
                        let _ = std::fs::write(&path, &b);
                    }
                    _ => {
                        let _ = std::fs::write(&path, &pristine);
                    }
                }
                i += 1;
            }
        })
    };
    let readers: Vec<_> = (0..3)
        .map(|_| {
            let dir = dir.clone();
            std::thread::spawn(move || {
                let p = sample();
                let key = key_for(&p, TargetId::X64);
                for _ in 0..40 {
                    let e = engine(&dir);
                    let tier = e.persist_tier().expect("tier attached");
                    if let Ok(Some(f)) = CacheTier::load(&**tier, &key) {
                        assert_eq!(f.call(&[5, 1]).unwrap(), 42);
                    }
                    let f = e
                        .compile_cached(TargetId::X64, &p)
                        .expect("always compiles");
                    assert_eq!(f.call(&[5, 1]).unwrap(), 42);
                }
            })
        })
        .collect();
    for r in readers {
        r.join().expect("reader must not panic");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().expect("writer must not panic");
    let _ = std::fs::remove_dir_all(&dir);
}
