//! Fault-injection corpus for the engine's compiled-lambda cache:
//! exhaustion, eviction under concurrent load, and poisoned entries
//! (failed compiles). Every failure must surface as a typed
//! [`vcode::EngineError`] — never a panic — and the cache must stay
//! fully usable afterwards.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use vcode::engine::{Backend, Engine, Lambda, Program, TargetId};
use vcode::{BinOp, CacheKey, EngineError, LambdaCache};

fn engine(capacity: usize) -> Engine {
    vcode_sim::engine::install();
    let mut e = Engine::new(capacity);
    e.register(Arc::new(vcode_mips::MipsBackend));
    e.register(Arc::new(vcode_x64::X64Backend));
    e
}

/// `fn f(x) = x * k + k`, distinct per `k` so every program is a
/// distinct cache key with a distinct result.
fn prog(k: i32) -> Program {
    let mut p = Program::new(1).unwrap();
    p.bin_imm(BinOp::Mul, 0, 0, k);
    p.bin_imm(BinOp::Add, 0, 0, k);
    p.ret(0);
    p
}

#[test]
fn exhaustion_evicts_but_never_fails() {
    // Far more distinct programs than the cache retains: every compile
    // must still succeed, evictions must be counted, and the cache must
    // end up within its capacity.
    let e = engine(4);
    for k in 1..=40 {
        let f = e.compile_cached(TargetId::X64, &prog(k)).unwrap();
        assert_eq!(f.call(&[10]).unwrap(), i64::from(10 * k + k), "k={k}");
    }
    let s = e.cache_stats();
    assert_eq!(s.inserts, 40);
    assert!(s.evictions >= 36, "evictions {}", s.evictions);
    assert!(e.cache().len() <= 4);
    // Still fully usable after the churn.
    let f = e.compile_cached(TargetId::X64, &prog(1)).unwrap();
    assert_eq!(f.call(&[1]).unwrap(), 2);
}

#[test]
fn eviction_under_concurrent_load_stays_consistent() {
    // Threads hammer a tiny cache with overlapping key sets, forcing
    // constant eviction races. Every call must return the right answer
    // and the cache must remain within capacity with sane counters.
    let e = Arc::new(engine(3));
    const THREADS: usize = 6;
    const ROUNDS: usize = 50;
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let (e, barrier) = (e.clone(), barrier.clone());
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..ROUNDS {
                    let k = ((t + i) % 8 + 1) as i32;
                    let f = e.compile_cached(TargetId::X64, &prog(k)).unwrap();
                    assert_eq!(f.call(&[7]).unwrap(), i64::from(7 * k + k));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let s = e.cache_stats();
    assert!(e.cache().len() <= 3);
    assert!(s.inserts >= 8, "every key compiled at least once");
    // Conservation: every lookup was either a hit or a miss.
    assert_eq!(s.hits + s.misses, (THREADS * ROUNDS) as u64);
}

/// A backend that fails a configurable number of compiles before
/// recovering — the poisoned-entry fault.
#[derive(Debug)]
struct Flaky {
    inner: vcode_x64::X64Backend,
    failures_left: AtomicUsize,
    attempts: AtomicUsize,
}

impl Backend for Flaky {
    fn id(&self) -> TargetId {
        TargetId::X64
    }
    fn word_bits(&self) -> u32 {
        64
    }
    fn compile(&self, prog: &Program) -> Result<Arc<dyn Lambda>, EngineError> {
        self.attempts.fetch_add(1, Ordering::SeqCst);
        if self
            .failures_left
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
        {
            return Err(EngineError::Exec("injected compile failure".into()));
        }
        self.inner.compile(prog)
    }
}

#[test]
fn failed_compile_does_not_poison_the_key() {
    let flaky = Arc::new(Flaky {
        inner: vcode_x64::X64Backend,
        failures_left: AtomicUsize::new(2),
        attempts: AtomicUsize::new(0),
    });
    let mut e = Engine::new(8);
    e.register(flaky.clone());
    let p = prog(3);
    // Two injected failures: each returns the typed error to the caller
    // and leaves the slot vacant.
    for _ in 0..2 {
        match e.compile_cached(TargetId::X64, &p) {
            Err(EngineError::Exec(msg)) => assert!(msg.contains("injected")),
            other => panic!("expected injected failure, got {other:?}"),
        }
    }
    // Third attempt recovers; fourth is a warm hit (no new attempt).
    let f = e.compile_cached(TargetId::X64, &p).unwrap();
    assert_eq!(f.call(&[5]).unwrap(), 18);
    let f2 = e.compile_cached(TargetId::X64, &p).unwrap();
    assert!(Arc::ptr_eq(&f, &f2));
    assert_eq!(flaky.attempts.load(Ordering::SeqCst), 3);
}

#[test]
fn racing_threads_all_see_the_typed_error_then_recover() {
    let flaky = Arc::new(Flaky {
        inner: vcode_x64::X64Backend,
        failures_left: AtomicUsize::new(1),
        attempts: AtomicUsize::new(0),
    });
    let mut e = Engine::new(8);
    e.register(flaky.clone());
    let e = Arc::new(e);
    let p = Arc::new(prog(4));
    const THREADS: usize = 8;
    let barrier = Arc::new(Barrier::new(THREADS));
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let (e, p, barrier) = (e.clone(), p.clone(), barrier.clone());
            std::thread::spawn(move || {
                barrier.wait();
                // One racer eats the injected failure and retries; the
                // cache must never panic, hang, or hand out a poisoned
                // slot — eventual success for everyone.
                for _ in 0..3 {
                    if let Ok(f) = e.compile_cached(TargetId::X64, &p) {
                        return f.call(&[10]).unwrap();
                    }
                }
                panic!("compile never recovered");
            })
        })
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), 44);
    }
}

#[test]
fn zero_capacity_cache_compiles_but_retains_nothing() {
    let e = engine(0);
    let p = prog(2);
    let f = e.compile_cached(TargetId::X64, &p).unwrap();
    assert_eq!(f.call(&[3]).unwrap(), 8);
    assert_eq!(e.cache().len(), 0, "capacity 0 caches nothing");
    // Compiling again builds fresh code — still correct, never a panic.
    let f2 = e.compile_cached(TargetId::X64, &p).unwrap();
    assert_eq!(f2.call(&[3]).unwrap(), 8);
}

#[test]
fn direct_cache_api_survives_builder_panic() {
    // The engine never panics in a builder, but the cache is a public
    // type: a client builder that panics must not wedge the slot.
    let c: LambdaCache<u32> = LambdaCache::new(4);
    let key = CacheKey::from_client_hash(TargetId::X64, 0x1234);
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        c.get_or_insert_with::<std::convert::Infallible>(key.clone(), || panic!("builder exploded"))
    }));
    assert!(r.is_err());
    // The key is vacant, not wedged: the next builder runs and wins.
    let v = c
        .get_or_insert_with::<std::convert::Infallible>(key, || Ok(Arc::new(7)))
        .unwrap();
    assert_eq!(*v, 7);
}
