//! Fault-injected tier-2 rebuilds: a hot lambda whose optimizing
//! recompile panics, overruns its deadline, or fails persistently must
//! keep serving tier-1 code — correct answers, no stall, no torn state —
//! while the failure surfaces as a typed quarantine entry on the
//! tier-2 cache key.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;
use vcode::engine::{Backend, Engine, Lambda, Program, TargetId};
use vcode::{BinOp, CacheKey, EngineError, ServiceConfig, TierConfig};

/// Wraps the real MIPS backend but injects a fault into every tier-2
/// compile; tier-1 compiles stay healthy.
#[derive(Debug)]
struct FaultyTier2 {
    inner: vcode_mips::MipsBackend,
    fault: Fault,
    tier2_attempts: AtomicU64,
}

#[derive(Debug, Clone, Copy)]
enum Fault {
    Panic,
    Slow(Duration),
    Error,
}

impl Backend for FaultyTier2 {
    fn id(&self) -> TargetId {
        self.inner.id()
    }

    fn word_bits(&self) -> u32 {
        self.inner.word_bits()
    }

    fn compile(&self, prog: &Program) -> Result<Arc<dyn Lambda>, EngineError> {
        self.inner.compile(prog)
    }

    fn compile_tier2(&self, prog: &Program) -> Result<Arc<dyn Lambda>, EngineError> {
        self.tier2_attempts.fetch_add(1, Ordering::SeqCst);
        match self.fault {
            Fault::Panic => panic!("injected tier-2 panic"),
            Fault::Slow(d) => {
                std::thread::sleep(d);
                self.inner.compile_tier2(prog)
            }
            Fault::Error => Err(EngineError::Exec("injected tier-2 failure".into())),
        }
    }
}

fn engine_with(fault: Fault) -> Engine {
    vcode_sim::engine::install();
    let mut e = Engine::new(64);
    e.register(Arc::new(FaultyTier2 {
        inner: vcode_mips::MipsBackend,
        fault,
        tier2_attempts: AtomicU64::new(0),
    }));
    assert!(e.configure_service(ServiceConfig {
        workers: 1,
        queue_depth: 8,
        deadline: Duration::from_millis(200),
        quarantine_base: Duration::from_millis(50),
        quarantine_cap: Duration::from_millis(400),
    }));
    assert!(e.enable_tiering(TierConfig {
        hot_threshold: 4,
        ..TierConfig::default()
    }));
    e
}

fn sample() -> Program {
    let mut p = Program::new(1).unwrap();
    p.bin_imm(BinOp::Mul, 1, 0, 3);
    p.bin_imm(BinOp::Add, 1, 1, 4);
    p.ret(1);
    p
}

fn tier2_key(p: &Program) -> CacheKey {
    let (bytes, hash) = p.encoded();
    CacheKey::from_encoded(TargetId::Mips, Arc::clone(bytes), *hash).tiered(2)
}

/// Drives the lambda hot, bounded-waits for the service, and returns
/// the tiered wrapper view. Every call must stay correct throughout.
fn drive_hot(e: &Engine, p: &Program, calls: u64) -> Arc<dyn Lambda> {
    let f = e.compile_cached(TargetId::Mips, p).unwrap();
    for i in 0..calls {
        let x = (i % 100) as i32;
        assert_eq!(
            f.call(&[x]).unwrap(),
            i64::from(x * 3 + 4),
            "call {i} answered wrong under fault"
        );
    }
    assert!(
        e.service().wait_idle(Duration::from_secs(30)),
        "tier-2 fault stalled the service"
    );
    f
}

#[test]
fn panicking_tier2_build_leaves_lambda_on_tier1() {
    let e = engine_with(Fault::Panic);
    let p = sample();
    let f = drive_hot(&e, &p, 16);
    let tiered = f.as_tiered().expect("tiering wraps the lambda");
    assert!(!tiered.upgraded(), "a panicked build must not publish");
    // Still correct after the panic was contained.
    assert_eq!(f.call(&[5]).unwrap(), 19);
    let st = e.service().stats();
    assert!(st.panicked >= 1, "panic not recorded: {st:?}");
    let q = e
        .service()
        .quarantine(&tier2_key(&p))
        .expect("tier-2 key quarantined after panic");
    assert!(q.last_error.contains("panic"), "{}", q.last_error);
    // The tier-1 entry itself is untouched — still served warm.
    assert!(Arc::ptr_eq(
        &f,
        &e.compile_cached(TargetId::Mips, &p).unwrap()
    ));
}

#[test]
fn deadline_missing_tier2_build_is_discarded_not_installed() {
    let e = engine_with(Fault::Slow(Duration::from_millis(600)));
    let p = sample();
    let f = drive_hot(&e, &p, 8);
    let tiered = f.as_tiered().unwrap();
    assert!(
        !tiered.upgraded(),
        "a build past its deadline must be discarded"
    );
    assert_eq!(f.call(&[7]).unwrap(), 25);
    let st = e.service().stats();
    assert!(
        st.deadline_expired >= 1,
        "deadline miss not recorded: {st:?}"
    );
}

#[test]
fn failing_tier2_build_quarantines_and_retries_respect_backoff() {
    let e = engine_with(Fault::Error);
    let p = sample();
    let f = drive_hot(&e, &p, 64);
    let tiered = f.as_tiered().unwrap();
    assert!(!tiered.upgraded());
    let st = e.service().stats();
    assert!(st.failed >= 1, "failure not recorded: {st:?}");
    let q = e
        .service()
        .quarantine(&tier2_key(&p))
        .expect("tier-2 key quarantined");
    assert!(
        q.last_error.contains("injected tier-2 failure"),
        "{}",
        q.last_error
    );
    // 64 calls at threshold 4 would mean 16 submissions without
    // backoff; quarantine must have rejected most rebuild probes.
    assert!(
        st.quarantine_rejects >= 1,
        "no submissions rejected by backoff: {st:?}"
    );
    // Tier-1 service is uninterrupted throughout.
    assert_eq!(f.call(&[11]).unwrap(), 37);
}
