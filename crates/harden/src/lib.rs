//! # harden — deterministic fault-injection machinery
//!
//! Dynamic code generation fails in ugly ways: a bitflip in emitted
//! code executes garbage, storage exhaustion truncates an instruction
//! mid-encoding, a malformed packet walks a classifier off the end of
//! the message. The harness in `tests/faults.rs` injects exactly those
//! faults — deterministically, from seeded PRNG streams — and requires
//! every one to surface as a *typed* outcome ([`vcode::Trap`],
//! [`vcode::Error`], or an engine's own error enum): never a panic, a
//! hang, or a silently wrong answer on an unfaulted path.
//!
//! This library holds the reusable machinery (bit flips, capacity
//! series, outcome tallies) so other crates' tests can inject the same
//! faults.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub use vcode::regress::XorShift;

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One injected behavior for a background build attempt (the compile
/// service's fault corpus).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildFault {
    /// The build succeeds normally.
    Succeed,
    /// The builder returns a typed error (drives quarantine).
    Fail,
    /// The builder panics; the service must catch it, vacate the slot
    /// and quarantine the key.
    Panic,
    /// The builder sleeps this many milliseconds before succeeding
    /// (drives deadline overruns when it exceeds the service deadline).
    SleepMs(u64),
}

/// A deterministic per-attempt fault schedule for background builders.
///
/// Attempt `k` executes `plan[k]`; attempts past the end repeat the last
/// entry (so `[Fail, Fail, Succeed]` means "recover on the third try").
/// The attempt counter is shared, letting tests assert exactly how often
/// the service ran the builder — quarantine backoff is precisely the
/// claim that it runs *less* often than it is asked.
#[derive(Debug)]
pub struct FaultPlan {
    plan: Vec<BuildFault>,
    attempts: AtomicUsize,
}

impl FaultPlan {
    /// A shared schedule; empty plans behave as `[Succeed]`.
    pub fn new(plan: Vec<BuildFault>) -> Arc<FaultPlan> {
        Arc::new(FaultPlan {
            plan,
            attempts: AtomicUsize::new(0),
        })
    }

    /// Builder attempts executed so far.
    pub fn attempts(&self) -> usize {
        self.attempts.load(Ordering::SeqCst)
    }

    /// Executes the next scheduled attempt, producing `value` on
    /// success. Intended to be the body of a service builder closure.
    ///
    /// # Errors
    ///
    /// An injected error message on [`BuildFault::Fail`] attempts.
    ///
    /// # Panics
    ///
    /// Panics (by design) on [`BuildFault::Panic`] attempts.
    pub fn run(&self, value: u64) -> Result<Arc<u64>, String> {
        let k = self.attempts.fetch_add(1, Ordering::SeqCst);
        let fault = self
            .plan
            .get(k)
            .or(self.plan.last())
            .copied()
            .unwrap_or(BuildFault::Succeed);
        match fault {
            BuildFault::Succeed => Ok(Arc::new(value)),
            BuildFault::Fail => Err(format!("injected failure on attempt {k}")),
            BuildFault::Panic => panic!("injected panic on attempt {k}"),
            BuildFault::SleepMs(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                Ok(Arc::new(value))
            }
        }
    }
}

/// Flips one bit of `code` (bit index taken modulo the buffer's bit
/// count).
///
/// # Panics
///
/// Panics if `code` is empty.
pub fn flip_bit(code: &mut [u8], bit: usize) {
    assert!(!code.is_empty(), "cannot flip bits of empty code");
    let bit = bit % (code.len() * 8);
    code[bit / 8] ^= 1 << (bit % 8);
}

/// Draws `count` deterministic bit positions below `nbits` from `rng`.
/// Positions may repeat across draws but the sequence is fixed by the
/// seed, so every run injects the identical fault set.
pub fn bit_positions(rng: &mut XorShift, nbits: usize, count: usize) -> Vec<usize> {
    (0..count)
        .map(|_| rng.below(nbits as u64) as usize)
        .collect()
}

/// The standard storage-exhaustion series: code-buffer capacities from
/// hopeless (0 bytes) through cramped to comfortable. Every generator
/// must produce a typed result at each point — the small end of this
/// series is what exposed the overflow-path panics this crate exists to
/// prevent.
pub fn capacity_series() -> Vec<usize> {
    vec![
        0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 24, 32, 48, 64, 96, 128, 192, 256, 384, 512, 1024, 2048,
        4096,
    ]
}

/// Counts fault-case outcomes. Every recorded case by construction
/// neither panicked nor hung; the tally splits them into "ran to
/// completion" and "surfaced a typed error".
#[derive(Debug, Default, Clone, Copy)]
pub struct Tally {
    /// Cases that ran to completion (the fault was benign).
    pub completed: usize,
    /// Cases that surfaced a typed error.
    pub trapped: usize,
}

impl Tally {
    /// A fresh tally.
    pub fn new() -> Tally {
        Tally::default()
    }

    /// Records one case outcome: `Ok` completed, `Err` trapped.
    pub fn record<T, E>(&mut self, outcome: &Result<T, E>) {
        match outcome {
            Ok(_) => self.completed += 1,
            Err(_) => self.trapped += 1,
        }
    }

    /// Total cases recorded.
    pub fn total(&self) -> usize {
        self.completed + self.trapped
    }

    /// Asserts the tally covered at least `min` cases and that at least
    /// one fault actually bit (a harness whose faults are all benign is
    /// not injecting anything).
    ///
    /// # Panics
    ///
    /// Panics when either condition fails.
    pub fn assert_covered(&self, min: usize) {
        assert!(
            self.total() >= min,
            "only {} fault cases ran, wanted at least {min}",
            self.total()
        );
        assert!(self.trapped > 0, "no injected fault surfaced an error");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flip_bit_round_trips() {
        let mut b = vec![0u8; 4];
        flip_bit(&mut b, 9);
        assert_eq!(b, [0, 2, 0, 0]);
        flip_bit(&mut b, 9);
        assert_eq!(b, [0; 4]);
        flip_bit(&mut b, 32); // wraps to bit 0
        assert_eq!(b, [1, 0, 0, 0]);
    }

    #[test]
    fn bit_positions_are_deterministic() {
        let a = bit_positions(&mut XorShift::new(7), 640, 16);
        let b = bit_positions(&mut XorShift::new(7), 640, 16);
        assert_eq!(a, b);
        assert!(a.iter().all(|&p| p < 640));
    }

    #[test]
    fn tally_counts_and_asserts() {
        let mut t = Tally::new();
        t.record::<u32, ()>(&Ok(1));
        t.record::<u32, ()>(&Err(()));
        t.record::<u32, ()>(&Err(()));
        assert_eq!(t.total(), 3);
        assert_eq!(t.completed, 1);
        assert_eq!(t.trapped, 2);
        t.assert_covered(3);
    }

    #[test]
    #[should_panic(expected = "no injected fault")]
    fn tally_rejects_all_benign() {
        let mut t = Tally::new();
        t.record::<u32, ()>(&Ok(1));
        t.assert_covered(1);
    }
}
