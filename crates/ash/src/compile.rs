//! The ASH itself: a vcode-generated data-copying loop specialized to
//! the operations each protocol layer registered.
//!
//! "The ASH system dynamically generates a memory copying loop
//! specialized to the operations performed by each layer" (paper §4.3).
//! Each [`Step`](crate::Step) contributes its word transformation to the
//! loop body; the generated loop makes exactly one pass over the message
//! no matter how many layers composed.

use crate::{generic, reference, Step};
use std::fmt;
use std::sync::{Arc, OnceLock};
use vcode::target::Leaf;
use vcode::{
    Assembler, CacheError, CacheKey, CacheStats, CompileService, LambdaCache, RegClass, ServeMode,
    ServiceConfig, Submit, TargetId,
};
use vcode_x64::{ExecCode, ExecMem, X64};

/// The process-wide cache of fused kernels, keyed by the pipeline
/// *shape*: the generated loop depends only on which steps are present
/// and the unroll factor, so layers composing the same shape across many
/// message flows share one compiled kernel.
fn kernel_cache() -> &'static Arc<LambdaCache<NativeCode>> {
    static CACHE: OnceLock<Arc<LambdaCache<NativeCode>>> = OnceLock::new();
    CACHE.get_or_init(|| Arc::new(LambdaCache::new(16)))
}

/// The process-wide background compile service over the kernel cache:
/// [`Pipeline::compile_async`] hands codegen to it and runs the scalar
/// interpreter until the fused kernel publishes.
pub fn kernel_service() -> &'static CompileService<NativeCode> {
    static SERVICE: OnceLock<CompileService<NativeCode>> = OnceLock::new();
    SERVICE
        .get_or_init(|| CompileService::new(Arc::clone(kernel_cache()), ServiceConfig::default()))
}

/// Counters for the process-wide kernel cache.
pub fn cache_stats() -> CacheStats {
    kernel_cache().stats()
}

/// Drops every cached kernel (live pipelines keep theirs). Benchmarks
/// use this to measure cold compiles.
pub fn clear_cache() {
    kernel_cache().clear();
}

impl NativeCode {
    /// The generated machine code (execution view, exact length).
    fn code_bytes(&self) -> &[u8] {
        &self.code.bytes()[..self.code_len]
    }

    /// Rebuilds a kernel from persisted code bytes: the bytes land in
    /// pooled dual-mapped executable memory and are sealed before the
    /// entry pointer is formed. Callers must have revalidated `bytes`
    /// (differential re-decode) first.
    fn adopt(bytes: &[u8], vcode_insns: u64) -> Result<NativeCode, PipelineError> {
        let mem = ExecMem::adopt_bytes(bytes).map_err(PipelineError::Exec)?;
        let code = mem.finalize().map_err(PipelineError::Exec)?;
        // SAFETY: the bytes round-tripped through the artifact envelope
        // (checksum + differential re-decode) from a kernel this same
        // generator produced, so the entry has the declared C ABI.
        let entry: extern "C" fn(*mut u8, *const u8, u64) -> u64 = unsafe { code.as_fn() };
        Ok(NativeCode {
            code,
            entry,
            code_len: bytes.len(),
            vcode_insns,
        })
    }
}

/// The [`ArtifactCodec`](vcode::ArtifactCodec) for fused ASH kernels.
/// Kernel code is always position-independent (no dispatch side
/// tables), so every kernel persists; loads re-decode the bytes with
/// the x86-64 length decoder before they touch executable memory.
#[derive(Debug)]
struct KernelCodec;

impl vcode::ArtifactCodec<NativeCode> for KernelCodec {
    fn to_artifact(
        &self,
        key: &CacheKey,
        val: &Arc<NativeCode>,
    ) -> Result<vcode::Artifact, vcode::PersistError> {
        Ok(vcode::Artifact {
            target: TargetId::X64,
            args: 0,
            insns: val.vcode_insns,
            key: key.content().to_vec(),
            meta: Vec::new(),
            code: val.code_bytes().to_vec(),
        })
    }

    fn from_artifact(
        &self,
        artifact: &vcode::Artifact,
    ) -> Result<Arc<NativeCode>, vcode::PersistError> {
        vcode::persist::redecode(&artifact.code, &vcode_x64::declen::Decoder)?;
        let native = NativeCode::adopt(&artifact.code, artifact.insns)
            .map_err(|e| vcode::PersistError::Revalidation(e.to_string()))?;
        Ok(Arc::new(native))
    }
}

fn persist_slot() -> &'static OnceLock<Arc<vcode::DiskTier<NativeCode>>> {
    static TIER: OnceLock<Arc<vcode::DiskTier<NativeCode>>> = OnceLock::new();
    &TIER
}

/// Attaches a persistent L2 tier for fused kernels under `dir`: cache
/// misses in [`Pipeline::compile`] probe the disk tier before
/// generating code, and successful compiles store through. First call
/// wins (`false` afterwards).
///
/// # Errors
///
/// [`vcode::PersistError::Io`] when the directory cannot be created.
pub fn enable_persist(dir: impl Into<std::path::PathBuf>) -> Result<bool, vcode::PersistError> {
    let tier = vcode::DiskTier::new(dir, Box::new(KernelCodec))?;
    Ok(persist_slot().set(Arc::new(tier)).is_ok())
}

/// The kernel persistent tier, if [`enable_persist`] was called.
pub fn persist_tier() -> Option<&'static Arc<vcode::DiskTier<NativeCode>>> {
    persist_slot().get()
}

/// Probes the persistent tier for `key`; any [`vcode::PersistError`] is
/// a counted, silent miss (fresh codegen follows).
fn l2_load(key: &CacheKey) -> Option<Arc<NativeCode>> {
    let tier = persist_tier()?;
    vcode::CacheTier::load(&**tier, key).ok().flatten()
}

/// Best-effort store-through to the persistent tier.
fn l2_store(key: &CacheKey, native: &Arc<NativeCode>) {
    if let Some(tier) = persist_tier() {
        let _ = vcode::CacheTier::store(&**tier, key, native);
    }
}

/// Which engine a [`Pipeline`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Dynamically generated native code (the fast path).
    Native,
    /// The scalar [`generic`] interpreter, engaged because code
    /// generation failed (graceful degradation).
    Interpreter,
}

/// Compilation options.
///
/// [`code_capacity`](Self::code_capacity) exists for the fault-injection
/// harness: forcing a tiny buffer exercises the overflow → retry →
/// degrade ladder deterministically.
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    /// Words per unrolled main-loop iteration (1 disables unrolling).
    pub unroll: i32,
    /// Code-buffer capacity in bytes; `None` picks a comfortable
    /// default.
    pub code_capacity: Option<usize>,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions {
            unroll: UNROLL,
            code_capacity: None,
        }
    }
}

/// Error from compiling a pipeline.
#[derive(Debug)]
pub enum PipelineError {
    /// Code generation failed.
    Codegen(vcode::Error),
    /// Could not obtain executable memory.
    Exec(std::io::Error),
    /// A racing build held the kernel cache's `Building` slot past its
    /// stall timeout (the builder thread most likely died without
    /// unwinding). The slot was vacated; this compile degraded.
    Stalled,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Codegen(e) => write!(f, "{e}"),
            PipelineError::Exec(e) => write!(f, "executable memory: {e}"),
            PipelineError::Stalled => f.write_str("in-flight kernel build stalled"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<vcode::Error> for PipelineError {
    fn from(e: vcode::Error) -> PipelineError {
        PipelineError::Codegen(e)
    }
}

/// A compiled, fused data pipeline.
///
/// The generated function has signature
/// `fn(dst: *mut u8, src: *const u8, nbytes: u64) -> u64` and returns
/// the unfolded little-endian word sum when a checksum step is present.
///
/// When code generation fails the pipeline degrades to the scalar
/// [`generic`] interpreter rather than erroring — [`run`](Self::run)
/// keeps producing identical results, only slower; [`engine`]
/// (Self::engine) reports which path is active.
pub struct Pipeline {
    engine: Engine,
    steps: Vec<Step>,
    /// Bytes of generated machine code (0 in degraded mode).
    pub code_len: usize,
    /// VCODE instructions specified during generation (0 in degraded
    /// mode).
    pub vcode_insns: u64,
    /// Cache key of an in-flight [`compile_async`](Pipeline::
    /// compile_async) build; [`poll_upgrade`](Pipeline::poll_upgrade)
    /// watches it.
    pending: Option<CacheKey>,
}

/// One fused, finished kernel: the live mapping plus its entry pointer
/// and size metadata. Shared (via `Arc`) between every pipeline with the
/// same shape and the process-wide cache; the mapping stays executable
/// until the last holder drops.
pub struct NativeCode {
    code: ExecCode,
    entry: extern "C" fn(*mut u8, *const u8, u64) -> u64,
    code_len: usize,
    vcode_insns: u64,
}

impl fmt::Debug for NativeCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NativeCode")
            .field("code_len", &self.code_len)
            .field("vcode_insns", &self.vcode_insns)
            .finish_non_exhaustive()
    }
}

enum Engine {
    Native(Arc<NativeCode>),
    Interpreter,
}

impl fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pipeline")
            .field("steps", &self.steps)
            .field("engine", &self.engine_kind())
            .field("code_len", &self.code_len)
            .finish()
    }
}

/// Words per unrolled main-loop iteration.
const UNROLL: i32 = 8;

impl Pipeline {
    /// Dynamically composes and compiles the pipeline for `steps`,
    /// degrading gracefully when generation fails.
    ///
    /// The ladder: on a storage [`Overflow`](vcode::Error::Overflow)
    /// the compile is retried once with a doubled buffer; if generation
    /// still fails (or executable memory cannot be obtained at all),
    /// the pipeline falls back to the scalar [`generic`] interpreter —
    /// [`run`](Self::run) produces identical output on either engine.
    ///
    /// # Errors
    ///
    /// [`PipelineError`] only if even the interpreter cannot be built —
    /// which cannot currently happen, so callers may treat `Ok` as
    /// "the pipeline is runnable".
    pub fn compile(steps: &[Step]) -> Result<Pipeline, PipelineError> {
        Self::compile_with_options(steps, PipelineOptions::default())
    }

    /// Compiles with an explicit unroll factor (ablation knob; `1`
    /// disables unrolling). Same degradation ladder as
    /// [`compile`](Self::compile).
    ///
    /// # Errors
    ///
    /// See [`compile`](Self::compile).
    ///
    /// # Panics
    ///
    /// Panics if `unroll` is 0 or absurdly large.
    pub fn compile_with_unroll(steps: &[Step], unroll: i32) -> Result<Pipeline, PipelineError> {
        Self::compile_with_options(
            steps,
            PipelineOptions {
                unroll,
                ..PipelineOptions::default()
            },
        )
    }

    /// Compiles with explicit [`PipelineOptions`]. Same degradation
    /// ladder as [`compile`](Self::compile).
    ///
    /// # Errors
    ///
    /// See [`compile`](Self::compile).
    ///
    /// # Panics
    ///
    /// Panics if `opts.unroll` is 0 or absurdly large.
    pub fn compile_with_options(
        steps: &[Step],
        opts: PipelineOptions,
    ) -> Result<Pipeline, PipelineError> {
        assert!((1..=16).contains(&opts.unroll));
        // An explicit code_capacity is a harness knob (fault injection /
        // overflow drills): those compiles are bespoke, never cached.
        // The cached path waits boundedly on a racing build: a stalled
        // `Building` slot degrades to the interpreter instead of
        // blocking the caller forever.
        let native = if opts.code_capacity.is_some() {
            Self::native_with_retry(steps, opts).map(Arc::new)
        } else {
            let key = Self::cache_key(steps, opts);
            let l2_key = key.clone();
            kernel_cache()
                .get_or_build(
                    key,
                    || {
                        // L1 missed: a valid persisted artifact (L2)
                        // skips codegen entirely; fresh kernels store
                        // through best-effort.
                        if let Some(native) = l2_load(&l2_key) {
                            return Ok(native);
                        }
                        let native = Self::native_with_retry(steps, opts).map(Arc::new)?;
                        l2_store(&l2_key, &native);
                        Ok(native)
                    },
                    kernel_cache().stall_timeout(),
                )
                .map_err(|e| match e {
                    CacheError::Build(e) => e,
                    CacheError::Stalled { .. } => PipelineError::Stalled,
                })
        };
        Ok(Self::from_native(native, steps))
    }

    /// Serve-while-compiling: the returned pipeline is runnable the
    /// moment this returns, with codegen moved off the calling thread.
    ///
    /// A warm cache key returns the native kernel immediately
    /// ([`ServeMode::Native`]). Otherwise the build is handed to the
    /// process-wide [`kernel_service`] and the pipeline runs the scalar
    /// [`generic`] interpreter meanwhile — call
    /// [`poll_upgrade`](Self::poll_upgrade) to adopt the fused kernel
    /// once it publishes. Shed and quarantined submits also serve the
    /// interpreter; the returned mode says why nothing was enqueued.
    ///
    /// # Panics
    ///
    /// Panics if `opts.unroll` is 0 or absurdly large.
    pub fn compile_async(steps: &[Step]) -> (Pipeline, ServeMode) {
        Self::compile_async_with_options(steps, PipelineOptions::default())
    }

    /// [`compile_async`](Self::compile_async) with explicit options. A
    /// bespoke `code_capacity` (harness knob) compiles synchronously
    /// and reports `Native` or `Shed` (degraded, nothing enqueued).
    ///
    /// # Panics
    ///
    /// Panics if `opts.unroll` is 0 or absurdly large.
    pub fn compile_async_with_options(
        steps: &[Step],
        opts: PipelineOptions,
    ) -> (Pipeline, ServeMode) {
        assert!((1..=16).contains(&opts.unroll));
        if opts.code_capacity.is_some() {
            let native = Self::native_with_retry(steps, opts).map(Arc::new);
            let mode = if native.is_ok() {
                ServeMode::Native
            } else {
                ServeMode::Shed
            };
            return (Self::from_native(native, steps), mode);
        }
        let key = Self::cache_key(steps, opts);
        let to_build = steps.to_vec();
        let submit = kernel_service().submit(key.clone(), move || {
            Self::native_with_retry(&to_build, opts)
                .map(Arc::new)
                .map_err(|e| e.to_string())
        });
        let mode = match submit {
            Submit::Ready(nc) => return (Self::from_native(Ok(nc), steps), ServeMode::Native),
            Submit::Queued | Submit::InFlight => ServeMode::Building,
            Submit::Shed => ServeMode::Shed,
            Submit::Quarantined { retry_in, failures } => {
                ServeMode::Quarantined { retry_in, failures }
            }
        };
        let pipeline = Pipeline {
            engine: Engine::Interpreter,
            steps: steps.to_vec(),
            code_len: 0,
            vcode_insns: 0,
            pending: Some(key),
        };
        (pipeline, mode)
    }

    /// Adopts the fused kernel if the background build from
    /// [`compile_async`](Self::compile_async) has published. Returns
    /// whether the pipeline runs native *after* the call; cheap enough
    /// to poll per message batch.
    pub fn poll_upgrade(&mut self) -> bool {
        if matches!(self.engine, Engine::Native(_)) {
            return true;
        }
        let Some(key) = self.pending.as_ref() else {
            return false;
        };
        match kernel_cache().peek(key) {
            Some(nc) => {
                self.code_len = nc.code_len;
                self.vcode_insns = nc.vcode_insns;
                self.engine = Engine::Native(nc);
                self.pending = None;
                true
            }
            None => false,
        }
    }

    /// Compiles bypassing the process-wide kernel cache (always a cold
    /// compile, and the result is not shared). Same degradation ladder
    /// as [`compile`](Self::compile); benchmarks use this for the cold
    /// side of the amortization table.
    ///
    /// # Errors
    ///
    /// See [`compile`](Self::compile).
    pub fn compile_uncached(steps: &[Step]) -> Result<Pipeline, PipelineError> {
        let opts = PipelineOptions::default();
        let native = Self::native_with_retry(steps, opts).map(Arc::new);
        Ok(Self::from_native(native, steps))
    }

    fn from_native(native: Result<Arc<NativeCode>, PipelineError>, steps: &[Step]) -> Pipeline {
        match native {
            Ok(nc) => Pipeline {
                code_len: nc.code_len,
                vcode_insns: nc.vcode_insns,
                engine: Engine::Native(nc),
                steps: steps.to_vec(),
                pending: None,
            },
            // Degrade: interpret the same steps.
            Err(_) => Pipeline {
                engine: Engine::Interpreter,
                steps: steps.to_vec(),
                code_len: 0,
                vcode_insns: 0,
                pending: None,
            },
        }
    }

    /// Content key of a pipeline shape. The generated loop depends only
    /// on which step kinds are present and the unroll factor, not on the
    /// step order or multiplicity (`native` probes with `contains`).
    fn cache_key(steps: &[Step], opts: PipelineOptions) -> CacheKey {
        let bytes = format!(
            "ash|ck={}|sw={}|u={}",
            steps.contains(&Step::Checksum),
            steps.contains(&Step::Swap),
            opts.unroll
        )
        .into_bytes();
        CacheKey::new(TargetId::X64, bytes)
    }

    /// The overflow → doubled-buffer retry rung of the ladder.
    fn native_with_retry(
        steps: &[Step],
        opts: PipelineOptions,
    ) -> Result<NativeCode, PipelineError> {
        match Self::native(steps, opts) {
            Ok(nc) => Ok(nc),
            Err(PipelineError::Codegen(vcode::Error::Overflow { capacity })) => {
                let retry = PipelineOptions {
                    code_capacity: Some(capacity.max(1) * 2),
                    ..opts
                };
                Self::native(steps, retry)
            }
            Err(e) => Err(e),
        }
    }

    /// The native-codegen rung of the ladder.
    fn native(steps: &[Step], opts: PipelineOptions) -> Result<NativeCode, PipelineError> {
        let unroll = opts.unroll;
        let do_cksum = steps.contains(&Step::Checksum);
        let do_swap = steps.contains(&Step::Swap);
        let est = opts.code_capacity.unwrap_or(4096);
        let mut mem = ExecMem::new(est).map_err(PipelineError::Exec)?;
        // The mapping rounds up to whole pages; honor sub-page
        // capacities so the harness can force overflows.
        let cap = est.min(mem.len());
        let mut a =
            Assembler::<X64>::lambda(&mut mem.as_mut_slice()[..cap], "%p%p%ul:%ul", Leaf::Yes)?;
        let dst = a.arg(0);
        let src = a.arg(1);
        let n = a.arg(2);
        let acc = a.getreg(RegClass::Temp).expect("reg");
        // A second accumulator halves the add-latency dependency chain.
        let acc2 = a.getreg(RegClass::Temp).expect("reg");
        let w = a.getreg(RegClass::Temp).expect("reg");
        let t = a.getreg(RegClass::Temp).expect("reg");
        let end = a.getreg(RegClass::Temp).expect("reg");
        let end_main = a.getreg(RegClass::Temp).expect("reg");
        a.setul(acc, 0);
        a.setul(acc2, 0);
        a.addp(end, src, n);
        let chunk = i64::from(unroll) * 4;
        // end_main = src + (n & !(chunk - 1))
        a.anduli(end_main, n, !(chunk - 1));
        a.addp(end_main, src, end_main);

        // One 64-bit word of the fused body: the per-layer steps
        // contributed their transformations and the loop makes a single
        // pass. (The ones-complement sum may be accumulated over any
        // word width — 2^32 ≡ 1 (mod 65535) — but 64-bit lanes could
        // overflow the accumulator on long messages, so the two 32-bit
        // halves are added separately.)
        let body64 = |a: &mut Assembler<'_, X64>, off: i32, sum: vcode::Reg| {
            a.lduli(w, src, off);
            if do_cksum {
                a.movu(t, w); // 32-bit move zero-extends: the low lane
                a.addul(sum, sum, t);
                a.rshuli(t, w, 32);
                a.addul(sum, sum, t);
            }
            if do_swap {
                // Swap bytes within each halfword of the 64-bit word.
                a.anduli(t, w, 0x00ff_00ff_00ff_00ff);
                a.lshuli(t, t, 8);
                a.rshuli(w, w, 8);
                a.anduli(w, w, 0x00ff_00ff_00ff_00ff);
                a.orul(w, w, t);
            }
            a.stuli(w, dst, off);
        };
        let body32 = |a: &mut Assembler<'_, X64>, off: i32| {
            a.ldui(w, src, off);
            if do_cksum {
                a.addul(acc, acc, w);
            }
            if do_swap {
                a.andui(t, w, 0x00ff_00ff);
                a.lshui(t, t, 8);
                a.rshui(w, w, 8);
                a.andui(w, w, 0x00ff_00ff);
                a.oru(w, w, t);
            }
            a.stui(w, dst, off);
        };

        let main_top = a.genlabel();
        let tail_top = a.genlabel();
        let done = a.genlabel();
        a.label(main_top);
        a.bgep(src, end_main, tail_top);
        for k in 0..unroll / 2 {
            body64(&mut a, k * 8, if k % 2 == 0 { acc } else { acc2 });
        }
        if unroll % 2 == 1 {
            body32(&mut a, (unroll - 1) * 4);
        }
        a.addpi(src, src, chunk);
        a.addpi(dst, dst, chunk);
        a.jmp(main_top);
        // Tail: single 32-bit words.
        a.label(tail_top);
        a.bgep(src, end, done);
        body32(&mut a, 0);
        a.addpi(src, src, 4);
        a.addpi(dst, dst, 4);
        a.jmp(tail_top);
        a.label(done);
        a.addul(acc, acc, acc2);
        a.retul(acc);
        let vcode_insns = a.insn_count();
        let fin = a.end()?;
        let code = mem.finalize().map_err(PipelineError::Exec)?;
        // SAFETY: the generated function has the declared C ABI and only
        // touches dst[..n] / src[..n].
        let entry: extern "C" fn(*mut u8, *const u8, u64) -> u64 = unsafe { code.as_fn() };
        Ok(NativeCode {
            code,
            entry,
            code_len: fin.len,
            vcode_insns,
        })
    }

    /// Runs the pipeline, copying `src` to `dst` with the composed
    /// transformations; returns the Internet checksum when a
    /// [`Step::Checksum`] is present (0 otherwise).
    ///
    /// # Panics
    ///
    /// Panics unless `src.len() == dst.len()` and the length is a
    /// multiple of 4.
    #[inline]
    pub fn run(&self, src: &[u8], dst: &mut [u8]) -> u16 {
        assert_eq!(src.len(), dst.len());
        assert!(
            src.len().is_multiple_of(4),
            "pipelines operate on whole words"
        );
        let sum = match &self.engine {
            Engine::Native(nc) => (nc.entry)(dst.as_mut_ptr(), src.as_ptr(), src.len() as u64),
            Engine::Interpreter => generic::run_fused(&self.steps, src, dst),
        };
        if self.steps.contains(&Step::Checksum) {
            reference::fold_le_words(sum)
        } else {
            0
        }
    }

    /// The composed steps.
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Which engine [`run`](Self::run) executes on.
    pub fn engine_kind(&self) -> EngineKind {
        match self.engine {
            Engine::Native(_) => EngineKind::Native,
            Engine::Interpreter => EngineKind::Interpreter,
        }
    }

    /// Entry address of the generated code (diagnostics); `None` in
    /// degraded mode.
    pub fn entry_addr(&self) -> Option<u64> {
        match &self.engine {
            Engine::Native(nc) => Some(nc.code.addr()),
            Engine::Interpreter => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{integrated, separate};

    fn data(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 131 + 7) as u8).collect()
    }

    #[test]
    fn all_step_combinations_match_baselines() {
        for steps in [
            vec![],
            vec![Step::Checksum],
            vec![Step::Swap],
            vec![Step::Checksum, Step::Swap],
        ] {
            let p = Pipeline::compile(&steps).unwrap();
            for n in [0usize, 4, 8, 12, 16, 20, 64, 100, 1024, 1500 / 4 * 4] {
                let src = data(n);
                let mut d_ash = vec![0u8; n];
                let mut d_sep = vec![0u8; n];
                let mut d_int = vec![0u8; n];
                let c_ash = p.run(&src, &mut d_ash);
                let c_sep = separate(&steps, &src, &mut d_sep);
                let c_int = integrated(&steps, &src, &mut d_int);
                assert_eq!(d_ash, d_sep, "{steps:?} n={n}");
                assert_eq!(d_ash, d_int, "{steps:?} n={n}");
                assert_eq!(c_ash, c_sep, "{steps:?} n={n}");
                assert_eq!(c_ash, c_int, "{steps:?} n={n}");
            }
        }
    }

    #[test]
    fn unroll_factors_agree() {
        let src = data(4096);
        let steps = [Step::Checksum, Step::Swap];
        let reference_p = Pipeline::compile_with_unroll(&steps, 1).unwrap();
        let mut want = vec![0u8; src.len()];
        let want_ck = reference_p.run(&src, &mut want);
        for unroll in [2, 4, 8] {
            let p = Pipeline::compile_with_unroll(&steps, unroll).unwrap();
            let mut got = vec![0u8; src.len()];
            let ck = p.run(&src, &mut got);
            assert_eq!(got, want, "unroll {unroll}");
            assert_eq!(ck, want_ck, "unroll {unroll}");
        }
    }

    #[test]
    fn non_multiple_of_unroll_hits_tail_loop() {
        let steps = [Step::Checksum];
        let p = Pipeline::compile_with_unroll(&steps, 4).unwrap();
        for words in [1usize, 2, 3, 5, 7, 9] {
            let src = data(words * 4);
            let mut dst = vec![0u8; src.len()];
            let ck = p.run(&src, &mut dst);
            assert_eq!(dst, src);
            assert_eq!(ck, reference::checksum(&src), "{words} words");
        }
    }

    #[test]
    #[should_panic(expected = "whole words")]
    fn odd_length_rejected() {
        let p = Pipeline::compile(&[]).unwrap();
        let src = [0u8; 6];
        let mut dst = [0u8; 6];
        let _ = p.run(&src[..6], &mut dst[..6]);
    }

    #[test]
    fn generated_code_is_small_and_counted() {
        let p = Pipeline::compile(&[Step::Checksum, Step::Swap]).unwrap();
        assert!(p.vcode_insns > 10);
        assert!(p.code_len < 1024);
        assert_eq!(p.steps(), &[Step::Checksum, Step::Swap]);
        assert_eq!(p.engine_kind(), EngineKind::Native);
        assert!(p.entry_addr().is_some());
    }

    #[test]
    fn forced_codegen_failure_degrades_to_interpreter() {
        for steps in [
            vec![],
            vec![Step::Checksum],
            vec![Step::Swap],
            vec![Step::Checksum, Step::Swap],
        ] {
            let p = Pipeline::compile_with_options(
                &steps,
                PipelineOptions {
                    code_capacity: Some(16), // retry doubles to 32: still hopeless
                    ..PipelineOptions::default()
                },
            )
            .unwrap();
            assert_eq!(p.engine_kind(), EngineKind::Interpreter, "{steps:?}");
            assert_eq!(p.code_len, 0);
            assert_eq!(p.entry_addr(), None);
            // Degraded mode must be semantically invisible.
            for n in [0usize, 4, 16, 100, 1024] {
                let src = data(n);
                let mut d_deg = vec![0u8; n];
                let mut d_sep = vec![0u8; n];
                let c_deg = p.run(&src, &mut d_deg);
                let c_sep = separate(&steps, &src, &mut d_sep);
                assert_eq!(d_deg, d_sep, "{steps:?} n={n}");
                assert_eq!(c_deg, c_sep, "{steps:?} n={n}");
            }
        }
    }

    #[test]
    fn overflow_retry_with_doubled_buffer_recovers() {
        let steps = [Step::Checksum, Step::Swap];
        let probe = Pipeline::compile(&steps).unwrap();
        // One byte short forces the overflow; the doubled retry fits.
        let p = Pipeline::compile_with_options(
            &steps,
            PipelineOptions {
                code_capacity: Some(probe.code_len - 1),
                ..PipelineOptions::default()
            },
        )
        .unwrap();
        assert_eq!(p.engine_kind(), EngineKind::Native);
        let src = data(256);
        let mut d1 = vec![0u8; 256];
        let mut d2 = vec![0u8; 256];
        assert_eq!(p.run(&src, &mut d1), probe.run(&src, &mut d2));
        assert_eq!(d1, d2);
    }
}
