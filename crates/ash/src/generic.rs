//! Target-generic pipeline generation, for reproducing Table 4 on the
//! *simulated* paper machines.
//!
//! The native [`Pipeline`](crate::Pipeline) is specialized for x86-64
//! wall-clock runs. This module generates the same fused loop — and the
//! separate-pass baselines — through the portable VCODE surface for any
//! [`Target`], so the MIPS simulator with the DECstation cache models
//! can replay the experiment in deterministic cycles (see the
//! `table4_sim` bench).
//!
//! All functions use 32-bit words and halfword checksum accumulation
//! (sum of 16-bit fields in a 32-bit register cannot overflow for
//! messages under 256 KiB), so they run unchanged on 32- and 64-bit
//! targets.

use crate::Step;
use vcode::target::Leaf;
use vcode::{Assembler, Error, Finished, Reg, RegClass, Target};

/// Emits the per-word checksum accumulation (two halfword adds).
fn cksum_word<T: Target>(a: &mut Assembler<'_, T>, acc: Reg, w: Reg, t: Reg) {
    a.andui(t, w, 0xffff);
    a.addu(acc, acc, t);
    a.rshui(t, w, 16);
    a.addu(acc, acc, t);
}

/// Emits the per-word halfword byte swap.
fn swap_word<T: Target>(a: &mut Assembler<'_, T>, w: Reg, t: Reg) {
    a.andui(t, w, 0x00ff_00ff);
    a.lshui(t, t, 8);
    a.rshui(w, w, 8);
    a.andui(w, w, 0x00ff_00ff);
    a.oru(w, w, t);
}

/// Generates the fused pipeline
/// `fn(dst: p, src: p, nwords: i) -> u` (partial halfword sum; fold
/// with [`crate::reference::fold`] after a final byte swap — the sum is
/// over little-endian halfwords).
///
/// # Errors
///
/// Any code-generation error.
pub fn compile_fused<T: Target>(mem: &mut [u8], steps: &[Step]) -> Result<Finished, Error> {
    let do_cksum = steps.contains(&Step::Checksum);
    let do_swap = steps.contains(&Step::Swap);
    let mut a = Assembler::<T>::lambda(mem, "%p%p%i:%u", Leaf::Yes)?;
    let (dst, src, n) = (a.arg(0), a.arg(1), a.arg(2));
    let acc = a.getreg(RegClass::Temp).expect("reg");
    let w = a.getreg(RegClass::Temp).expect("reg");
    let t = a.getreg(RegClass::Temp).expect("reg");
    let i = a.getreg(RegClass::Temp).expect("reg");
    let off = a.getreg(RegClass::Temp).expect("reg");
    a.setu(acc, 0);
    a.seti(i, 0);
    let (top, done) = (a.genlabel(), a.genlabel());
    a.label(top);
    a.bgei(i, n, done);
    a.lshii(off, i, 2);
    a.ldu(w, src, off);
    if do_cksum {
        cksum_word(&mut a, acc, w, t);
    }
    if do_swap {
        swap_word(&mut a, w, t);
    }
    a.stu(w, dst, off);
    a.addii(i, i, 1);
    a.jmp(top);
    a.label(done);
    a.retu(acc);
    a.end()
}

/// Generates a bare copy pass `fn(dst, src, nwords)`.
///
/// # Errors
///
/// Any code-generation error.
pub fn compile_copy<T: Target>(mem: &mut [u8]) -> Result<Finished, Error> {
    compile_fused::<T>(mem, &[])
}

/// Generates a checksum-only pass `fn(buf: p, nwords: i) -> u`.
///
/// # Errors
///
/// Any code-generation error.
pub fn compile_cksum<T: Target>(mem: &mut [u8]) -> Result<Finished, Error> {
    let mut a = Assembler::<T>::lambda(mem, "%p%i:%u", Leaf::Yes)?;
    let (buf, n) = (a.arg(0), a.arg(1));
    let acc = a.getreg(RegClass::Temp).expect("reg");
    let w = a.getreg(RegClass::Temp).expect("reg");
    let t = a.getreg(RegClass::Temp).expect("reg");
    let i = a.getreg(RegClass::Temp).expect("reg");
    let off = a.getreg(RegClass::Temp).expect("reg");
    a.setu(acc, 0);
    a.seti(i, 0);
    let (top, done) = (a.genlabel(), a.genlabel());
    a.label(top);
    a.bgei(i, n, done);
    a.lshii(off, i, 2);
    a.ldu(w, buf, off);
    cksum_word(&mut a, acc, w, t);
    a.addii(i, i, 1);
    a.jmp(top);
    a.label(done);
    a.retu(acc);
    a.end()
}

/// Generates an in-place byte-swap pass `fn(buf: p, nwords: i)`.
///
/// # Errors
///
/// Any code-generation error.
pub fn compile_swap<T: Target>(mem: &mut [u8]) -> Result<Finished, Error> {
    let mut a = Assembler::<T>::lambda(mem, "%p%i", Leaf::Yes)?;
    let (buf, n) = (a.arg(0), a.arg(1));
    let w = a.getreg(RegClass::Temp).expect("reg");
    let t = a.getreg(RegClass::Temp).expect("reg");
    let i = a.getreg(RegClass::Temp).expect("reg");
    let off = a.getreg(RegClass::Temp).expect("reg");
    a.seti(i, 0);
    let (top, done) = (a.genlabel(), a.genlabel());
    a.label(top);
    a.bgei(i, n, done);
    a.lshii(off, i, 2);
    a.ldu(w, buf, off);
    swap_word(&mut a, w, t);
    a.stu(w, buf, off);
    a.addii(i, i, 1);
    a.jmp(top);
    a.label(done);
    a.retv();
    a.end()
}

/// Folds a little-endian halfword sum into the Internet checksum.
pub fn fold_le_halfwords(sum: u32) -> u16 {
    crate::reference::fold_le_words(u64::from(sum))
}

/// Scalar host execution of the fused pipeline semantics — the engine
/// [`Pipeline`](crate::Pipeline) degrades to when native code
/// generation fails.
///
/// Mirrors the generated function's contract exactly: copies `src` to
/// `dst` applying the swap, and returns the *unfolded* little-endian
/// 32-bit word sum when a checksum step is present (fold with
/// [`reference::fold_le_words`](crate::reference::fold_le_words)).
///
/// # Panics
///
/// Panics unless `src.len() == dst.len()` and the length is a multiple
/// of 4.
pub fn run_fused(steps: &[Step], src: &[u8], dst: &mut [u8]) -> u64 {
    assert_eq!(src.len(), dst.len());
    assert!(src.len().is_multiple_of(4));
    let do_cksum = steps.contains(&Step::Checksum);
    let do_swap = steps.contains(&Step::Swap);
    let mut sum: u64 = 0;
    for (s, d) in src.chunks_exact(4).zip(dst.chunks_exact_mut(4)) {
        let w = u32::from_le_bytes(s.try_into().unwrap());
        if do_cksum {
            sum += u64::from(w);
        }
        let out = if do_swap {
            ((w & 0x00ff_00ff) << 8) | ((w >> 8) & 0x00ff_00ff)
        } else {
            w
        };
        d.copy_from_slice(&out.to_le_bytes());
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use vcode::fake::FakeTarget;

    #[test]
    fn generic_pipelines_build_for_the_test_target() {
        let mut mem = vec![0u8; 8192];
        for steps in [
            vec![],
            vec![Step::Checksum],
            vec![Step::Swap],
            vec![Step::Checksum, Step::Swap],
        ] {
            let fin = compile_fused::<FakeTarget>(&mut mem, &steps).unwrap();
            assert!(fin.len > 0, "{steps:?}");
        }
        assert!(compile_cksum::<FakeTarget>(&mut mem).unwrap().len > 0);
        assert!(compile_swap::<FakeTarget>(&mut mem).unwrap().len > 0);
    }

    #[test]
    fn halfword_fold_matches_reference() {
        let data: Vec<u8> = (0..64).map(|i| (i * 37 + 3) as u8).collect();
        let mut sum: u32 = 0;
        for h in data.chunks_exact(2) {
            sum += u32::from(u16::from_le_bytes([h[0], h[1]]));
        }
        assert_eq!(fold_le_halfwords(sum), reference::checksum(&data));
    }
}
