//! # ash — dynamic composition of message data pipelines (paper §4.3)
//!
//! ASHs (application-specific handlers) are message handlers downloaded
//! into the kernel. The problem they attack: modular protocol
//! composition is expensive because each layer's data-touching operation
//! (checksumming, byte swapping, copying) makes its own pass over the
//! message, and "touching memory multiple times stresses the weak link
//! in modern workstations, the memory subsystem".
//!
//! The ASH system uses VCODE to *integrate* protocol data operations
//! into a single optimized pass over memory — e.g. folding checksumming
//! and byte swapping into the copy loop — composed dynamically from the
//! modular steps each layer registers. Table 4 shows the payoff: 20–50%
//! with a warm cache and roughly 2× when the data is cold.
//!
//! This crate provides the three competitors of Table 4:
//!
//! - [`separate`]: one pass per operation (the modular baseline);
//! - [`integrated`]: a hand-written fused loop (the paper's
//!   "C integrated" row);
//! - [`Pipeline`]: the ASH — a vcode-generated fused loop built from a
//!   runtime list of [`Step`]s.
//!
//! ```
//! use ash::{Pipeline, Step};
//! let p = Pipeline::compile(&[Step::Checksum, Step::Swap])?;
//! let src = vec![0x12u8; 64];
//! let mut dst = vec![0u8; 64];
//! let cksum = p.run(&src, &mut dst);
//! assert_eq!(cksum, ash::reference::checksum(&src));
//! assert_eq!(dst, ash::reference::swapped(&src));
//! # Ok::<(), ash::PipelineError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compile;
pub mod generic;
pub mod hotloop;

pub use compile::{
    cache_stats, clear_cache, enable_persist, kernel_service, persist_tier, EngineKind, NativeCode,
    Pipeline, PipelineError, PipelineOptions,
};

/// A data-manipulation step a protocol layer contributes to the message
/// pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Step {
    /// Fold the data into an Internet checksum (16-bit one's-complement
    /// sum); the pipeline returns the folded sum.
    Checksum,
    /// Swap the bytes of every 16-bit halfword (network ↔ host order
    /// for halfword streams).
    Swap,
}

/// Reference (scalar, obviously-correct) implementations the engines are
/// validated against.
pub mod reference {
    /// Internet checksum of `data` (length must be even).
    pub fn checksum(data: &[u8]) -> u16 {
        assert!(data.len().is_multiple_of(2));
        let mut sum: u64 = 0;
        for h in data.chunks_exact(2) {
            sum += u64::from(u16::from_be_bytes([h[0], h[1]]));
        }
        fold(sum)
    }

    /// Folds a wide one's-complement accumulator to 16 bits.
    pub fn fold(mut sum: u64) -> u16 {
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }

    /// `data` with every 16-bit halfword byte-swapped.
    pub fn swapped(data: &[u8]) -> Vec<u8> {
        let mut out = data.to_vec();
        for h in out.chunks_exact_mut(2) {
            h.swap(0, 1);
        }
        out
    }

    /// Folds a little-endian word-wise sum into the Internet checksum.
    ///
    /// Summing 32-bit little-endian words and folding is equivalent to
    /// summing big-endian 16-bit halfwords and folding, after one final
    /// byte swap — the classic trick fast checksum loops use.
    pub fn fold_le_words(sum: u64) -> u16 {
        let mut s = sum;
        while s >> 16 != 0 {
            s = (s & 0xffff) + (s >> 16);
        }
        !(s as u16).swap_bytes()
    }
}

/// The modular baseline: each operation is its own pass over the data
/// (the paper's "separate" rows). Returns the checksum if requested.
///
/// Pipeline semantics are canonical regardless of step order: the
/// checksum covers the *source* data, the swap applies to the *output* —
/// every engine in this crate implements that contract.
///
/// # Panics
///
/// Panics unless `src.len() == dst.len()` and the length is a multiple
/// of 4.
pub fn separate(steps: &[Step], src: &[u8], dst: &mut [u8]) -> u16 {
    assert_eq!(src.len(), dst.len());
    assert!(src.len().is_multiple_of(4));
    // Pass 1: copy.
    dst.copy_from_slice(src);
    let mut cksum = 0;
    let canonical = [Step::Checksum, Step::Swap];
    for step in canonical.iter().filter(|s| steps.contains(s)) {
        match step {
            Step::Checksum => {
                // Pass 2: checksum (its own walk over the data).
                let mut sum: u64 = 0;
                for w in dst.chunks_exact(4) {
                    sum += u64::from(u32::from_le_bytes(w.try_into().unwrap()));
                }
                cksum = reference::fold_le_words(sum);
            }
            Step::Swap => {
                // Pass 3: byte swap in place.
                for h in dst.chunks_exact_mut(2) {
                    h.swap(0, 1);
                }
            }
        }
    }
    cksum
}

/// The hand-integrated baseline (the paper's "C integrated" row): one
/// fused loop written by hand for each step combination.
///
/// # Panics
///
/// Panics unless lengths match and are a multiple of 4.
pub fn integrated(steps: &[Step], src: &[u8], dst: &mut [u8]) -> u16 {
    assert_eq!(src.len(), dst.len());
    assert!(src.len().is_multiple_of(4));
    let do_cksum = steps.contains(&Step::Checksum);
    let do_swap = steps.contains(&Step::Swap);
    let mut sum: u64 = 0;
    match (do_cksum, do_swap) {
        (true, false) => {
            for (s, d) in src.chunks_exact(4).zip(dst.chunks_exact_mut(4)) {
                let w = u32::from_le_bytes(s.try_into().unwrap());
                sum += u64::from(w);
                d.copy_from_slice(&w.to_le_bytes());
            }
        }
        (true, true) => {
            for (s, d) in src.chunks_exact(4).zip(dst.chunks_exact_mut(4)) {
                let w = u32::from_le_bytes(s.try_into().unwrap());
                sum += u64::from(w);
                let sw = ((w & 0x00ff_00ff) << 8) | ((w >> 8) & 0x00ff_00ff);
                d.copy_from_slice(&sw.to_le_bytes());
            }
        }
        (false, true) => {
            for (s, d) in src.chunks_exact(4).zip(dst.chunks_exact_mut(4)) {
                let w = u32::from_le_bytes(s.try_into().unwrap());
                let sw = ((w & 0x00ff_00ff) << 8) | ((w >> 8) & 0x00ff_00ff);
                d.copy_from_slice(&sw.to_le_bytes());
            }
        }
        (false, false) => dst.copy_from_slice(src),
    }
    if do_cksum {
        reference::fold_le_words(sum)
    } else {
        0
    }
}

/// Evicts `buf` from the data cache (the Table 4 "uncached" rows flush
/// between trials).
pub fn flush_cache(buf: &[u8]) {
    #[cfg(target_arch = "x86_64")]
    {
        for line in buf.chunks(64) {
            // SAFETY: clflush is safe on any mapped address; `line`
            // points into a live slice.
            unsafe { core::arch::x86_64::_mm_clflush(line.as_ptr()) };
        }
        // SAFETY: mfence has no memory-safety preconditions.
        unsafe { core::arch::x86_64::_mm_mfence() };
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = buf;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 37 + 11) as u8).collect()
    }

    #[test]
    fn reference_checksum_known_vector() {
        // RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7 → sum 0xddf2,
        // checksum = !0xddf2 = 0x220d.
        let bytes = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(reference::checksum(&bytes), 0x220d);
    }

    #[test]
    fn le_word_fold_equals_be_halfword_fold() {
        for n in [4usize, 8, 64, 1000] {
            let d = data(n * 4);
            let mut sum: u64 = 0;
            for w in d.chunks_exact(4) {
                sum += u64::from(u32::from_le_bytes(w.try_into().unwrap()));
            }
            assert_eq!(
                reference::fold_le_words(sum),
                reference::checksum(&d),
                "n = {n}"
            );
        }
    }

    #[test]
    fn separate_and_integrated_agree() {
        let src = data(256);
        for steps in [
            vec![],
            vec![Step::Checksum],
            vec![Step::Swap],
            vec![Step::Checksum, Step::Swap],
        ] {
            let mut d1 = vec![0u8; 256];
            let mut d2 = vec![0u8; 256];
            let c1 = separate(&steps, &src, &mut d1);
            let c2 = integrated(&steps, &src, &mut d2);
            assert_eq!(d1, d2, "{steps:?}");
            assert_eq!(c1, c2, "{steps:?}");
            if steps.contains(&Step::Swap) {
                assert_eq!(d1, reference::swapped(&src));
            } else {
                assert_eq!(d1, src);
            }
            if steps.contains(&Step::Checksum) {
                assert_eq!(c1, reference::checksum(&src));
            }
        }
    }

    #[test]
    fn flush_cache_is_harmless() {
        let d = data(4096);
        flush_cache(&d);
        assert_eq!(d, data(4096));
    }
}
