//! Hot-path message-transfer kernels in recorded [`Program`] IR — the
//! tier-2 recompilation corpus for the ASH side of the workspace.
//!
//! ASH's signature trick is *integration*: fusing the checksum
//! reduction into the copy loop so data is touched once. The recorded
//! engine IR has no memory operations, so these kernels model the
//! arithmetic half of that loop — a rolling word-reduction over a
//! synthetic stream — written with the redundancy a naive
//! specialization frontend leaves per iteration (copy chains, identity
//! masks, re-stored loop invariants, a dead scratch store). Tier-1
//! transliterates all of it; tier-2's peephole and linear scan exist to
//! strip it out of the loop body.

use vcode::engine::Program;
use vcode::{BinOp, Cond, UnOp};

/// A checksum-style reduction: fold `count` synthetic words (derived
/// from `seed`) into a ones-complement-flavored accumulator. Per
/// iteration the naive frontend leaves two copies, two identity ops, a
/// re-stored invariant and a dead scratch value for tier-2 to delete.
pub fn checksum_loop() -> Program {
    // args: v0 = count, v1 = seed
    let mut p = Program::new(2).unwrap();
    let top = p.genlabel();
    let done = p.genlabel();
    p.set(2, 0); // sum
    p.un(UnOp::Mov, 3, 0); // i = count
    p.label(top);
    p.br_imm(Cond::Le, 3, 0, done);
    p.set(7, 0xffff); // re-stored loop invariant (mask)
    p.bin(BinOp::Mul, 4, 3, 1); // next "word" of the stream
    p.bin_imm(BinOp::Add, 4, 4, 0x9e37); // stream mix
    p.un(UnOp::Mov, 5, 4); // copy chain…
    p.un(UnOp::Mov, 6, 5); // …two deep
    p.bin_imm(BinOp::Mul, 6, 6, 1); // identity
    p.bin(BinOp::And, 6, 6, 7); // fold to 16 bits
    p.bin(BinOp::Add, 2, 2, 6); // accumulate
    p.bin_imm(BinOp::Rsh, 8, 2, 16); // carry…
    p.bin_imm(BinOp::And, 2, 2, 0xffff);
    p.bin(BinOp::Add, 2, 2, 8); // …folded back in
    p.bin_imm(BinOp::Xor, 8, 8, 0); // dead scratch (never read again)
    p.bin_imm(BinOp::Sub, 3, 3, 1);
    p.jmp(top);
    p.label(done);
    p.ret(2);
    p
}

/// A byte-swapping transfer step (the `swap` pipe of the paper's
/// Table 4 corpus) over a synthetic word stream: rotate each word's
/// halves, xor-merge into the output signature.
pub fn swap_loop() -> Program {
    // args: v0 = count, v1 = seed
    let mut p = Program::new(2).unwrap();
    let top = p.genlabel();
    let done = p.genlabel();
    p.set(2, 0); // signature
    p.un(UnOp::Mov, 3, 0);
    p.label(top);
    p.br_imm(Cond::Le, 3, 0, done);
    p.bin(BinOp::Mul, 4, 1, 3); // next word (nonlinear in the seed —
    p.bin(BinOp::Xor, 4, 4, 3); // a plain seed^i xor-fold would cancel)
    p.un(UnOp::Mov, 5, 4); // naive copy
    p.bin_imm(BinOp::Lsh, 6, 5, 16); // low half up
    p.bin_imm(BinOp::Rsh, 5, 5, 16); // high half down (arithmetic)
    p.bin_imm(BinOp::And, 5, 5, 0xffff);
    p.bin(BinOp::Or, 5, 5, 6); // swapped word
    p.bin_imm(BinOp::Or, 5, 5, 0); // identity
    p.bin(BinOp::Xor, 2, 2, 5); // merge
    p.bin_imm(BinOp::Sub, 3, 3, 1);
    p.jmp(top);
    p.label(done);
    p.ret(2);
    p
}

/// The transfer corpus: `(name, program, representative hot input)`.
pub fn corpus() -> Vec<(&'static str, Program, Vec<i32>)> {
    vec![
        ("ash/cksum64", checksum_loop(), vec![64, 0x1357]),
        ("ash/cksum256", checksum_loop(), vec![256, 0x2468]),
        ("ash/swap128", swap_loop(), vec![128, 0x0f0f]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_deterministic_and_bounded() {
        let p = checksum_loop();
        let v = p.interpret(&[64, 0x1357], 1_000_000).unwrap();
        assert_eq!(v, p.interpret(&[64, 0x1357], 1_000_000).unwrap());
        assert!(v >= 0, "carry folding keeps the sum in range: {v}");
        assert_eq!(p.interpret(&[0, 1], 100_000).unwrap(), 0);
    }

    #[test]
    fn swap_signature_changes_with_seed() {
        let p = swap_loop();
        let a = p.interpret(&[32, 1], 1_000_000).unwrap();
        let b = p.interpret(&[32, 2], 1_000_000).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn corpus_runs_under_interpreter_fuel() {
        for (name, p, input) in corpus() {
            p.interpret(&input, 5_000_000)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
