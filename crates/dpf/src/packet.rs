//! Synthetic Ethernet/IPv4/TCP-UDP header generation.
//!
//! The Table 3 experiment classifies "TCP/IP headers destined for one of
//! ten TCP/IP filters". The paper's packets came off a real network; the
//! header bytes in memory are the entire input to classification, so a
//! synthetic generator preserves the experiment exactly (see DESIGN.md).

use crate::lang::{FieldSize, Filter, FilterBuilder, FilterError};

/// Ethernet header length.
pub const ETH_LEN: u32 = 14;
/// Offset of the EtherType field.
pub const ETH_TYPE_OFF: u32 = 12;
/// EtherType for IPv4.
pub const ETHERTYPE_IP: u16 = 0x0800;
/// Offset of the IP protocol byte (fixed 20-byte IP header).
pub const IP_PROTO_OFF: u32 = ETH_LEN + 9;
/// Offset of the IP source address.
pub const IP_SRC_OFF: u32 = ETH_LEN + 12;
/// Offset of the IP destination address.
pub const IP_DST_OFF: u32 = ETH_LEN + 16;
/// IP protocol number for TCP.
pub const IPPROTO_TCP: u8 = 6;
/// IP protocol number for UDP.
pub const IPPROTO_UDP: u8 = 17;
/// Offset of the TCP/UDP source port (fixed-length IP header).
pub const SRC_PORT_OFF: u32 = ETH_LEN + 20;
/// Offset of the TCP/UDP destination port.
pub const DST_PORT_OFF: u32 = ETH_LEN + 22;

/// Parameters of a synthesized packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketSpec {
    /// IP protocol (TCP/UDP).
    pub proto: u8,
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload bytes appended after the TCP header.
    pub payload_len: usize,
}

impl Default for PacketSpec {
    fn default() -> PacketSpec {
        PacketSpec {
            proto: IPPROTO_TCP,
            src_ip: 0x0a00_0001, // 10.0.0.1
            dst_ip: 0x0a00_0002, // 10.0.0.2
            src_port: 1234,
            dst_port: 80,
            payload_len: 0,
        }
    }
}

/// Builds an Ethernet + IPv4 (20-byte header) + TCP frame.
pub fn build(spec: &PacketSpec) -> Vec<u8> {
    let mut p = Vec::with_capacity(54 + spec.payload_len);
    // Ethernet: dst MAC, src MAC, ethertype.
    p.extend_from_slice(&[0x02, 0, 0, 0, 0, 1]);
    p.extend_from_slice(&[0x02, 0, 0, 0, 0, 2]);
    p.extend_from_slice(&ETHERTYPE_IP.to_be_bytes());
    // IPv4 header (20 bytes, IHL = 5).
    let total_len = (20 + 20 + spec.payload_len) as u16;
    p.push(0x45); // version 4, IHL 5
    p.push(0); // TOS
    p.extend_from_slice(&total_len.to_be_bytes());
    p.extend_from_slice(&[0, 0, 0x40, 0]); // id, flags (DF)
    p.push(64); // TTL
    p.push(spec.proto);
    p.extend_from_slice(&[0, 0]); // checksum (not validated here)
    p.extend_from_slice(&spec.src_ip.to_be_bytes());
    p.extend_from_slice(&spec.dst_ip.to_be_bytes());
    // TCP header (20 bytes).
    p.extend_from_slice(&spec.src_port.to_be_bytes());
    p.extend_from_slice(&spec.dst_port.to_be_bytes());
    p.extend_from_slice(&[0; 8]); // seq, ack
    p.push(0x50); // data offset 5
    p.push(0x18); // flags PSH|ACK
    p.extend_from_slice(&[0xff, 0xff, 0, 0, 0, 0]); // window, cksum, urg
    p.resize(p.len() + spec.payload_len, 0xab);
    p
}

/// The canonical TCP/IP filter of the experiment: EtherType == IP,
/// proto == TCP, destination IP and port as given — the atoms every
/// resident filter shares except the final port compare (paper §4.2:
/// "all TCP/IP packet filters will look in messages at identical fixed
/// offsets for port numbers").
///
/// # Errors
///
/// Never fails for valid constants; propagates [`FilterError`] otherwise.
pub fn tcp_port_filter(dst_ip: u32, dst_port: u16) -> Result<Filter, FilterError> {
    FilterBuilder::new()
        .eq_u16(ETH_TYPE_OFF, ETHERTYPE_IP)
        .masked(ETH_LEN, FieldSize::U8, 0xf0, 0x40)
        .eq_u8(IP_PROTO_OFF, IPPROTO_TCP)
        .eq_u32(IP_DST_OFF, dst_ip)
        .eq_u16(DST_PORT_OFF, dst_port)
        .build()
}

/// A variant using a `Shift` atom to follow the IP header length instead
/// of assuming 20 bytes (exercises variable-length header support).
///
/// # Errors
///
/// Propagates [`FilterError`].
pub fn tcp_port_filter_var_ihl(dst_port: u16) -> Result<Filter, FilterError> {
    FilterBuilder::new()
        .eq_u16(ETH_TYPE_OFF, ETHERTYPE_IP)
        .eq_u8(IP_PROTO_OFF, IPPROTO_TCP)
        .shift(ETH_LEN, FieldSize::U8, 0x0f, 2)
        .eq_u16(ETH_LEN + 2, dst_port) // dst port at ihl*4 + 2
        .build()
}

/// The experiment's resident filter set: `n` TCP filters to one
/// destination IP, differing only in destination port (ports
/// `base_port..base_port+n`).
///
/// # Panics
///
/// Panics if `n` overflows the port space.
pub fn port_filter_set(n: u16, base_port: u16) -> Vec<Filter> {
    (0..n)
        .map(|i| tcp_port_filter(0x0a00_0002, base_port + i).expect("valid filter"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packet_has_expected_fields() {
        let p = build(&PacketSpec {
            dst_port: 8080,
            ..PacketSpec::default()
        });
        assert_eq!(p.len(), 54);
        assert_eq!(u16::from_be_bytes([p[12], p[13]]), ETHERTYPE_IP);
        assert_eq!(p[IP_PROTO_OFF as usize], IPPROTO_TCP);
        assert_eq!(
            u16::from_be_bytes([p[DST_PORT_OFF as usize], p[DST_PORT_OFF as usize + 1]]),
            8080
        );
    }

    #[test]
    fn filter_matches_its_packet_only() {
        let f80 = tcp_port_filter(0x0a00_0002, 80).unwrap();
        let f81 = tcp_port_filter(0x0a00_0002, 81).unwrap();
        let p = build(&PacketSpec::default()); // port 80
        assert!(f80.matches(&p));
        assert!(!f81.matches(&p));
        // Non-IP frame.
        let mut arp = p.clone();
        arp[12] = 0x08;
        arp[13] = 0x06;
        assert!(!f80.matches(&arp));
        // UDP.
        let udp = build(&PacketSpec {
            proto: IPPROTO_UDP,
            ..PacketSpec::default()
        });
        assert!(!f80.matches(&udp));
    }

    #[test]
    fn var_ihl_filter_follows_header_length() {
        let f = tcp_port_filter_var_ihl(80).unwrap();
        let p = build(&PacketSpec::default());
        assert!(f.matches(&p));
        // Stretch the IP header by one word: dst port moves.
        let mut q = p.clone();
        q[14] = 0x46; // IHL = 6
        q.insert(34, 0);
        q.insert(34, 0);
        q.insert(34, 0);
        q.insert(34, 0);
        assert!(f.matches(&q), "filter follows the shifted base");
    }

    #[test]
    fn filter_set_is_disjoint() {
        let set = port_filter_set(10, 1000);
        let p = build(&PacketSpec {
            dst_port: 1003,
            ..PacketSpec::default()
        });
        let hits: Vec<usize> = set
            .iter()
            .enumerate()
            .filter(|(_, f)| f.matches(&p))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(hits, vec![3]);
    }
}
