//! Dynamic compilation of the merged filter trie.
//!
//! This is where DPF "exploits dynamic code generation in two ways: (1)
//! eliminating interpretation overhead by compiling packet filters to
//! executable code when they are installed into the kernel and (2) using
//! filter constants to aggressively optimize this executable code"
//! (paper §4.2). Concretely:
//!
//! - **switch lowering by runtime constants** — a multiway dispatch over
//!   the values concurrently-active filters expect is lowered the way
//!   optimizing compilers treat C `switch` statements: a small set is
//!   searched directly, sparse values by binary search, dense ranges by
//!   an indirect jump through a table;
//! - **hash-function selection** — for large sparse sets DPF picks a
//!   multiplier that hashes the *known* keys perfectly, "and then encodes
//!   the chosen function directly in the instruction stream";
//! - **collision-check elision** — because the keys are known at
//!   code-generation time and the chosen hash is collision-free among
//!   them, no chain walking is ever emitted (one compare remains to
//!   reject values that are not keys at all);
//! - **bounds-check elision** — a field load's length check is dropped
//!   when a check already performed on the path dominates it.
//!
//! Backtracking invariant: trying an alternative trie node must observe
//! the same dynamic base offset as its siblings, so `Shift` nodes spill
//! the running base and the fail path restores it.

use crate::lang::FieldSize;
use crate::trie::{Key, Level, Node};
use std::fmt;
use vcode::regress::XorShift;
use vcode::target::Leaf;
use vcode::{Assembler, Label, Reg, RegClass};
use vcode_x64::{ExecCode, ExecMem, X64};

/// How many arms at most are dispatched by a linear compare chain.
const LINEAR_MAX: usize = 4;
/// Above this arm count a sparse set uses hashing instead of a branch
/// tree.
const HASH_MIN: usize = 16;

/// Dispatch-strategy usage counts (for tests and the ablation bench).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Strategies {
    /// Single-value nodes (plain compare-and-branch).
    pub single: u32,
    /// Linear compare chains.
    pub linear: u32,
    /// Binary-search branch trees.
    pub bst: u32,
    /// Indirect jump tables.
    pub table: u32,
    /// Perfect-hash dispatches.
    pub hash: u32,
}

/// Controls which dispatch strategies the compiler may use (the
/// ablation knobs; defaults enable everything).
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Allow indirect jump tables for dense value sets.
    pub use_jump_tables: bool,
    /// Allow perfect-hash dispatch for large sparse sets.
    pub use_hashing: bool,
    /// Elide dominated bounds checks.
    pub elide_bounds_checks: bool,
    /// Executable-buffer capacity in bytes; `None` sizes it from the
    /// trie's node count. Setting a too-small value exercises the
    /// overflow → retry → interpreter-fallback ladder (see
    /// [`Dpf::compile`](crate::Dpf::compile)); the fault-injection
    /// harness uses it to force code-generation failure on demand.
    pub code_capacity: Option<usize>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            use_jump_tables: true,
            use_hashing: true,
            elide_bounds_checks: true,
            code_capacity: None,
        }
    }
}

/// Error from compiling a filter set.
#[derive(Debug)]
pub enum CompileError {
    /// Code generation failed.
    Codegen(vcode::Error),
    /// Could not obtain executable memory.
    Exec(std::io::Error),
    /// The classifier generator exhausted the target's temp register
    /// file (the `TooManyTemps` discipline: surface it, never panic).
    TooManyTemps,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Codegen(e) => write!(f, "{e}"),
            CompileError::Exec(e) => write!(f, "executable memory: {e}"),
            CompileError::TooManyTemps => {
                write!(f, "classifier generation exhausted the temp register file")
            }
        }
    }
}

impl std::error::Error for CompileError {}

impl From<vcode::Error> for CompileError {
    fn from(e: vcode::Error) -> CompileError {
        CompileError::Codegen(e)
    }
}

impl From<CompileError> for vcode::ExecError {
    fn from(e: CompileError) -> vcode::ExecError {
        match e {
            CompileError::Codegen(e) => vcode::ExecError::Codegen(e),
            CompileError::Exec(e) => vcode::ExecError::Mem(e),
            CompileError::TooManyTemps => vcode::ExecError::Codegen(vcode::Error::BadOperands(
                "classifier generation exhausted the temp register file",
            )),
        }
    }
}

/// A compiled classifier.
///
/// Safety of the generated code rests on the filter language's bounds
/// discipline: every field load is dominated by a check that
/// `offset + size <= len`, so the code never reads outside
/// `msg[..len]`.
pub struct CompiledSet {
    code: ExecCode,
    entry: extern "C" fn(*const u8, u64) -> i64,
    // Dispatch tables referenced by absolute address from the generated
    // code; kept alive (and unmoved — Box contents are stable) here.
    _jump_tables: Vec<Box<[u64]>>,
    _hash_keys: Vec<Box<[u32]>>,
    _hash_addrs: Vec<Box<[u64]>>,
    /// Strategy usage.
    pub strategies: Strategies,
    /// Bytes of generated machine code.
    pub code_len: usize,
    /// VCODE instructions specified during generation.
    pub vcode_insns: u64,
}

impl fmt::Debug for CompiledSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompiledSet")
            .field("code_len", &self.code_len)
            .field("strategies", &self.strategies)
            .finish()
    }
}

impl CompiledSet {
    /// Classifies a message; the id of the accepted filter.
    #[inline]
    pub fn classify(&self, msg: &[u8]) -> Option<u32> {
        let r = (self.entry)(msg.as_ptr(), msg.len() as u64);
        u32::try_from(r).ok()
    }

    /// The entry address (diagnostics).
    pub fn entry_addr(&self) -> u64 {
        self.code.addr()
    }

    /// Pins the underlying executable mapping (see
    /// [`vcode_x64::CodePin`]): the code stays mapped and executable
    /// until the pin drops, even if this set is dropped first. The DPF
    /// hot-swap service holds one pin per published generation and
    /// releases it only when the generation's last reader retires.
    pub fn pin(&self) -> vcode_x64::CodePin {
        self.code.pin()
    }

    /// Whether the generated code is position-independent and can
    /// therefore be persisted: jump-table and perfect-hash dispatch
    /// embed absolute addresses of side tables (and of the code
    /// itself), so only sets that used neither are artifact-eligible.
    pub fn position_independent(&self) -> bool {
        self._jump_tables.is_empty() && self._hash_keys.is_empty() && self._hash_addrs.is_empty()
    }

    /// The emitted machine-code bytes (the persistable image when
    /// [`position_independent`](Self::position_independent)).
    pub fn code_bytes(&self) -> &[u8] {
        &self.code.bytes()[..self.code_len]
    }

    /// Serializes the strategy counters into an artifact meta blob
    /// (5 × u32 LE).
    pub(crate) fn meta_blob(&self) -> Vec<u8> {
        let s = &self.strategies;
        let mut out = Vec::with_capacity(20);
        for v in [s.single, s.linear, s.bst, s.table, s.hash] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Parses a [`meta_blob`](Self::meta_blob) back into counters.
    pub(crate) fn meta_parse(blob: &[u8]) -> Option<Strategies> {
        if blob.len() != 20 {
            return None;
        }
        let u32le =
            |at: usize| u32::from_le_bytes([blob[at], blob[at + 1], blob[at + 2], blob[at + 3]]);
        Some(Strategies {
            single: u32le(0),
            linear: u32le(4),
            bst: u32le(8),
            table: u32le(12),
            hash: u32le(16),
        })
    }

    /// Re-materializes a set from revalidated artifact bytes: the code
    /// lands in fresh pooled executable memory via
    /// [`ExecMem::adopt_bytes`]. Only position-independent images are
    /// ever persisted, so the adopted set carries no side tables.
    ///
    /// # Errors
    ///
    /// [`CompileError::Exec`] when executable memory cannot be obtained.
    pub(crate) fn adopt(
        bytes: &[u8],
        strategies: Strategies,
        vcode_insns: u64,
    ) -> Result<CompiledSet, CompileError> {
        let mem = ExecMem::adopt_bytes(bytes).map_err(CompileError::Exec)?;
        let code = mem.finalize().map_err(CompileError::Exec)?;
        // SAFETY: the adopted bytes passed the differential re-decode
        // and were originally emitted by `compile` for exactly this C
        // ABI: (ptr, len) -> i64, reads bounded by `len`.
        let entry: extern "C" fn(*const u8, u64) -> i64 = unsafe { code.as_fn() };
        Ok(CompiledSet {
            code,
            entry,
            _jump_tables: Vec::new(),
            _hash_keys: Vec::new(),
            _hash_addrs: Vec::new(),
            strategies,
            code_len: bytes.len(),
            vcode_insns,
        })
    }
}

#[derive(Debug, Clone, Copy)]
struct PathState {
    /// Message length proven ≥ this many bytes on this path.
    checked: u32,
    /// A `Shift` executed: offsets are dynamic, loads go through the
    /// recomputed base pointer.
    shifted: bool,
}

struct Cg<'m> {
    a: Assembler<'m, X64>,
    msg: Reg,
    len: Reg,
    field: Reg,
    ptr: Reg,
    base: Reg,
    tmp: Reg,
    tmp2: Reg,
    opts: Options,
    strategies: Strategies,
    jump_tables: Vec<Box<[u64]>>,
    hash_keys: Vec<Box<[u32]>>,
    hash_addrs: Vec<Box<[u64]>>,
    // (table index, entry index, label) resolved after `end`.
    table_fills: Vec<(usize, usize, Label)>,
    hash_fills: Vec<(usize, usize, Label)>,
    rng: XorShift,
}

fn swap_val(v: u32, size: FieldSize) -> u32 {
    match size {
        FieldSize::U8 => v,
        FieldSize::U16 => u32::from((v as u16).swap_bytes()),
        FieldSize::U32 => v.swap_bytes(),
    }
}

impl<'m> Cg<'m> {
    /// Emits the length check dominating a field access, unless elided.
    fn bounds(&mut self, offset: u32, size: FieldSize, st: &mut PathState, fail: Label) {
        let need = offset + size.bytes();
        if st.shifted {
            // Dynamic base: check base + need <= len at runtime.
            self.a.adduli(self.tmp, self.base, i64::from(need));
            self.a.bgtul(self.tmp, self.len, fail);
        } else if !self.opts.elide_bounds_checks || need > st.checked {
            self.a.bltuli(self.len, i64::from(need), fail);
            if self.opts.elide_bounds_checks {
                st.checked = need;
            }
        }
    }

    /// Loads a field (little-endian raw bits) into `self.field`.
    fn load_field(&mut self, offset: u32, size: FieldSize, st: PathState) {
        let bp = if st.shifted { self.ptr } else { self.msg };
        match size {
            FieldSize::U8 => self.a.lduci(self.field, bp, offset as i32),
            FieldSize::U16 => self.a.ldusi(self.field, bp, offset as i32),
            FieldSize::U32 => self.a.ldui(self.field, bp, offset as i32),
        }
    }

    /// Converts `self.field` from raw little-endian load to the
    /// big-endian value domain (needed by table/hash dispatch, which
    /// relies on numeric ordering/density of the real values).
    fn emit_value_domain(&mut self, size: FieldSize) {
        match size {
            FieldSize::U8 => {}
            FieldSize::U16 => {
                let (f, t) = (self.field, self.tmp);
                self.a.bswapus(f, f, t);
            }
            FieldSize::U32 => {
                let (f, t, u) = (self.field, self.tmp, self.tmp2);
                self.a.bswapu(f, f, t, u); // native bswap on x86-64
            }
        }
    }

    fn ret_id(&mut self, id: u32) {
        self.a.seti(self.tmp, id as i32);
        self.a.reti(self.tmp);
    }

    fn gen_level(&mut self, level: &Level, fail: Label, st: PathState) {
        for node in &level.nodes {
            let node_fail = self.a.genlabel();
            // A Shift node mutates the running base; if its subtree fails
            // and we backtrack to a sibling, the base must be restored,
            // so it is spilled around the alternative.
            let saved = if matches!(node.key, Key::Shift { .. }) {
                let slot = self.a.local(vcode::Ty::Ul);
                self.a.st_slot(slot, self.base);
                Some(slot)
            } else {
                None
            };
            self.gen_node(node, node_fail, st);
            self.a.label(node_fail);
            if let Some(slot) = saved {
                self.a.ld_slot(self.base, slot);
                self.a.addp(self.ptr, self.msg, self.base);
            }
        }
        match level.accept {
            Some(id) => self.ret_id(id),
            None => self.a.jmp(fail),
        }
    }

    fn gen_node(&mut self, node: &Node, node_fail: Label, mut st: PathState) {
        match node.key {
            Key::Cmp { offset, size, mask } => {
                self.bounds(offset, size, &mut st, node_fail);
                self.load_field(offset, size, st);
                if mask != size.full_mask() {
                    // Mask in the load domain: byte-swapping commutes
                    // with AND.
                    self.a
                        .andui(self.field, self.field, i64::from(swap_val(mask, size)));
                }
                let arm_labels: Vec<Label> = node.arms.iter().map(|_| self.a.genlabel()).collect();
                self.dispatch(node, size, &arm_labels, node_fail);
                for (arm, &l) in node.arms.iter().zip(&arm_labels) {
                    self.a.label(l);
                    self.gen_level(&arm.next, node_fail, st);
                }
            }
            Key::Shift {
                offset,
                size,
                mask,
                shift,
            } => {
                self.bounds(offset, size, &mut st, node_fail);
                self.load_field(offset, size, st);
                self.emit_value_domain(size);
                self.a.andui(self.field, self.field, i64::from(mask));
                if shift > 0 {
                    self.a.lshuli(self.field, self.field, i64::from(shift));
                }
                self.a.addul(self.base, self.base, self.field);
                self.a.addp(self.ptr, self.msg, self.base);
                st.shifted = true;
                if let Some(next) = &node.next {
                    self.gen_level(next, node_fail, st);
                } else {
                    self.a.jmp(node_fail);
                }
            }
        }
    }

    /// Emits the multiway dispatch over a node's arms. The strategy is
    /// chosen from the runtime-known key set (paper §4.2's `switch`
    /// treatment).
    fn dispatch(&mut self, node: &Node, size: FieldSize, arm_labels: &[Label], fail: Label) {
        let n = node.arms.len();
        if n == 1 {
            self.strategies.single += 1;
            let v = swap_val(node.arms[0].value, size);
            self.a.bneui(self.field, i64::from(v), fail);
            // Fall through into the single arm body (its label binds
            // immediately after).
            return;
        }
        if n <= LINEAR_MAX {
            self.strategies.linear += 1;
            for (arm, &l) in node.arms.iter().zip(arm_labels) {
                let v = swap_val(arm.value, size);
                self.a.bequi(self.field, i64::from(v), l);
            }
            self.a.jmp(fail);
            return;
        }
        // Density test in the true value domain.
        let mut vals: Vec<(u32, Label)> = node
            .arms
            .iter()
            .zip(arm_labels)
            .map(|(a, &l)| (a.value, l))
            .collect();
        vals.sort_by_key(|&(v, _)| v);
        let min = vals[0].0;
        let max = vals[n - 1].0;
        let span = (max - min) as usize + 1;
        if self.opts.use_jump_tables && span <= (4 * n).max(16) && span <= 4096 {
            self.strategies.table += 1;
            self.gen_jump_table(size, &vals, min, span, fail);
        } else if self.opts.use_hashing && n >= HASH_MIN {
            self.strategies.hash += 1;
            self.gen_hash(size, &vals, fail);
        } else {
            self.strategies.bst += 1;
            // Binary search runs in the swapped (load) domain: ordering
            // only needs to be consistent, not meaningful.
            let mut sw: Vec<(u32, Label)> = node
                .arms
                .iter()
                .zip(arm_labels)
                .map(|(a, &l)| (swap_val(a.value, size), l))
                .collect();
            sw.sort_by_key(|&(v, _)| v);
            self.gen_bst(&sw, fail);
        }
    }

    /// Dense range: subtract the base, bound-check, and jump indirect
    /// through a table of label addresses (filled in after linking).
    fn gen_jump_table(
        &mut self,
        size: FieldSize,
        vals: &[(u32, Label)],
        min: u32,
        span: usize,
        fail: Label,
    ) {
        self.emit_value_domain(size);
        if min != 0 {
            self.a.subui(self.field, self.field, i64::from(min));
        }
        self.a.bgtui(self.field, i64::from(span as u32 - 1), fail);
        let table: Box<[u64]> = vec![0u64; span].into_boxed_slice();
        let taddr = table.as_ptr() as u64;
        let ti = self.jump_tables.len();
        self.jump_tables.push(table);
        for i in 0..span {
            self.table_fills.push((ti, i, fail));
        }
        for &(v, l) in vals {
            let idx = (v - min) as usize;
            // Overwrite the default fail entry.
            if let Some(f) = self
                .table_fills
                .iter_mut()
                .find(|(t, i, _)| *t == ti && *i == idx)
            {
                f.2 = l;
            }
        }
        self.a.lshuli(self.field, self.field, 3);
        self.a.setp(self.tmp, taddr);
        self.a.ldul(self.tmp, self.tmp, self.field);
        self.a.jmp_reg(self.tmp);
    }

    /// Sparse large set: select a perfect multiplicative hash over the
    /// known keys and encode it directly in the instruction stream.
    fn gen_hash(&mut self, size: FieldSize, vals: &[(u32, Label)], fail: Label) {
        let n = vals.len();
        let bits = usize::BITS - (2 * n - 1).leading_zeros();
        let slots = 1usize << bits;
        // Select a multiplier that is collision-free on the key set.
        let mult = 'found: {
            for _ in 0..10_000 {
                let m = (self.rng.next_u64() as u32) | 1;
                let mut seen = vec![false; slots];
                let mut ok = true;
                for &(v, _) in vals {
                    let slot = (v.wrapping_mul(m) >> (32 - bits)) as usize;
                    if seen[slot] {
                        ok = false;
                        break;
                    }
                    seen[slot] = true;
                }
                if ok {
                    break 'found Some(m);
                }
            }
            None
        };
        let Some(mult) = mult else {
            // No perfect hash found (vanishingly unlikely): fall back.
            self.strategies.hash -= 1;
            self.strategies.bst += 1;
            let mut sw: Vec<(u32, Label)> =
                vals.iter().map(|&(v, l)| (swap_val(v, size), l)).collect();
            sw.sort_by_key(|&(v, _)| v);
            self.gen_bst(&sw, fail);
            return;
        };
        let mut keys: Box<[u32]> = vec![u32::MAX; slots].into_boxed_slice();
        let addrs: Box<[u64]> = vec![0u64; slots].into_boxed_slice();
        let hi = self.hash_keys.len();
        for &(v, l) in vals {
            let slot = (v.wrapping_mul(mult) >> (32 - bits)) as usize;
            keys[slot] = v;
            self.hash_fills.push((hi, slot, l));
        }
        // Unused slots jump to fail (their keys never match, but keep the
        // table total).
        for slot in 0..slots {
            if keys[slot] == u32::MAX {
                self.hash_fills.push((hi, slot, fail));
            }
        }
        let kaddr = keys.as_ptr() as u64;
        let aaddr = addrs.as_ptr() as u64;
        self.hash_keys.push(keys);
        self.hash_addrs.push(addrs);

        self.emit_value_domain(size);
        // tmp = slot = (field * M) >> (32 - bits)
        self.a.mului(self.tmp, self.field, i64::from(mult));
        self.a.rshuli(self.tmp, self.tmp, i64::from(32 - bits));
        // Verify the key (one compare — no collision chains, paper §4.2).
        self.a.lshuli(self.tmp2, self.tmp, 2);
        self.a.setp(self.tmp, kaddr);
        self.a.ldu(self.tmp, self.tmp, self.tmp2);
        self.a.bneu(self.tmp, self.field, fail);
        self.a.lshuli(self.tmp2, self.tmp2, 1);
        self.a.setp(self.tmp, aaddr);
        self.a.ldul(self.tmp, self.tmp, self.tmp2);
        self.a.jmp_reg(self.tmp);
    }

    /// Sparse set: balanced tree of compares.
    fn gen_bst(&mut self, vals: &[(u32, Label)], fail: Label) {
        let mid = vals.len() / 2;
        let (v, l) = vals[mid];
        self.a.bequi(self.field, i64::from(v), l);
        let left = &vals[..mid];
        let right = &vals[mid + 1..];
        match (left.is_empty(), right.is_empty()) {
            (true, true) => self.a.jmp(fail),
            (true, false) => self.gen_bst(right, fail),
            (false, true) => self.gen_bst(left, fail),
            (false, false) => {
                let go_right = self.a.genlabel();
                self.a.bgtui(self.field, i64::from(v), go_right);
                self.gen_bst(left, fail);
                self.a.label(go_right);
                self.gen_bst(right, fail);
            }
        }
    }
}

/// Compiles a merged trie into native code.
///
/// # Errors
///
/// [`CompileError`] on code-generation or mapping failure.
pub fn compile(root: &Level, opts: Options) -> Result<CompiledSet, CompileError> {
    // Size the mapping generously: trie nodes each cost tens of bytes.
    // An explicit code_capacity overrides the estimate (harness knob).
    let est = opts.code_capacity.unwrap_or(4096 + root.node_count() * 512);
    let mut mem = ExecMem::new(est).map_err(CompileError::Exec)?;
    // The mapping rounds up to whole pages; honor a sub-page capacity
    // override by handing the assembler only the requested prefix.
    let cap = est.min(mem.len());
    let mut a = Assembler::<X64>::lambda(&mut mem.as_mut_slice()[..cap], "%p%ul", Leaf::Yes)?;
    let msg = a.arg(0);
    let len = a.arg(1);
    let field = a.getreg(RegClass::Temp).ok_or(CompileError::TooManyTemps)?;
    let ptr = a.getreg(RegClass::Temp).ok_or(CompileError::TooManyTemps)?;
    let base = a.getreg(RegClass::Temp).ok_or(CompileError::TooManyTemps)?;
    let tmp = a.getreg(RegClass::Temp).ok_or(CompileError::TooManyTemps)?;
    let tmp2 = a.getreg(RegClass::Temp).ok_or(CompileError::TooManyTemps)?;
    let fail = a.genlabel();
    a.setul(base, 0);
    a.movp(ptr, msg);
    let mut cg = Cg {
        a,
        msg,
        len,
        field,
        ptr,
        base,
        tmp,
        tmp2,
        opts,
        strategies: Strategies::default(),
        jump_tables: Vec::new(),
        hash_keys: Vec::new(),
        hash_addrs: Vec::new(),
        table_fills: Vec::new(),
        hash_fills: Vec::new(),
        rng: XorShift::new(0x5eed_cafe),
    };
    let st = PathState {
        checked: 0,
        shifted: false,
    };
    cg.gen_level(root, fail, st);
    cg.a.label(fail);
    let t = cg.tmp;
    cg.a.seti(t, -1);
    cg.a.reti(t);
    let Cg {
        a,
        strategies,
        jump_tables: mut tables,
        hash_keys,
        hash_addrs: mut addrs,
        table_fills,
        hash_fills,
        ..
    } = cg;
    let vcode_insns = a.insn_count();
    let fin = a.end()?;
    let code = mem.finalize().map_err(CompileError::Exec)?;
    // Resolve dispatch-table entries now that label addresses are known.
    for (ti, idx, label) in table_fills {
        let off = fin
            .label_offset(label)
            .ok_or(CompileError::Codegen(vcode::Error::UnboundLabel(label)))?;
        tables[ti][idx] = code.addr() + off as u64;
    }
    for (hi, slot, label) in hash_fills {
        let off = fin
            .label_offset(label)
            .ok_or(CompileError::Codegen(vcode::Error::UnboundLabel(label)))?;
        addrs[hi][slot] = code.addr() + off as u64;
    }
    // SAFETY: the generated function has the declared C ABI
    // (ptr, len) -> i64 and only dereferences `msg` below `len`.
    let entry: extern "C" fn(*const u8, u64) -> i64 = unsafe { code.as_fn() };
    Ok(CompiledSet {
        code,
        entry,
        _jump_tables: tables,
        _hash_keys: hash_keys,
        _hash_addrs: addrs,
        strategies,
        code_len: fin.len,
        vcode_insns,
    })
}
