//! An MPF-style interpreted packet-filter engine.
//!
//! MPF (Yuhara et al., USENIX 1994) is the "widely used packet filter
//! engine" of Table 3: a BPF-descended bytecode interpreter in which
//! each resident filter is a straight-line program run over the message;
//! classification tries the filters in turn. Its per-packet cost is
//! therefore (number of filters) × (interpretation cost per atom) — the
//! overhead DPF removes with dynamic code generation.

use crate::lang::{Atom, FieldSize, Filter};

/// One bytecode instruction of the interpreter.
///
/// Accumulator machine in the BPF tradition: `A` is the accumulator,
/// `X` the index register used for shifted (variable-header) offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `A = msg[X + k .. ]` read big-endian with the given width;
    /// failure (out of bounds) rejects the packet.
    LdInd(FieldSize, u32),
    /// `A &= k`.
    And(u32),
    /// Reject unless `A == k`.
    JeqOrFail(u32),
    /// `X += A << k`.
    AddX(u32),
    /// Accept.
    Accept,
}

/// A compiled-to-bytecode filter program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    insns: Vec<Insn>,
}

impl Program {
    /// Translates a filter into bytecode.
    pub fn from_filter(f: &Filter) -> Program {
        let mut insns = Vec::new();
        for atom in f.atoms() {
            match *atom {
                Atom::Cmp {
                    offset,
                    size,
                    mask,
                    value,
                } => {
                    insns.push(Insn::LdInd(size, offset));
                    if mask & size.full_mask() != size.full_mask() {
                        insns.push(Insn::And(mask));
                    }
                    insns.push(Insn::JeqOrFail(value));
                }
                Atom::Shift {
                    offset,
                    size,
                    mask,
                    shift,
                } => {
                    insns.push(Insn::LdInd(size, offset));
                    insns.push(Insn::And(mask));
                    insns.push(Insn::AddX(shift));
                }
            }
        }
        insns.push(Insn::Accept);
        Program { insns }
    }

    /// The instruction stream (for inspection).
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// Runs the program over a message.
    pub fn run(&self, msg: &[u8]) -> bool {
        let mut a: u32 = 0;
        let mut x: u64 = 0;
        for insn in &self.insns {
            match *insn {
                Insn::LdInd(size, k) => {
                    match crate::lang::read_field(msg, x + u64::from(k), size) {
                        Some(v) => a = v,
                        None => return false,
                    }
                }
                Insn::And(k) => a &= k,
                Insn::JeqOrFail(k) => {
                    if a != k {
                        return false;
                    }
                }
                Insn::AddX(k) => x += u64::from(a) << k,
                Insn::Accept => return true,
            }
        }
        false
    }
}

/// The MPF-style demultiplexer: resident programs tried in insertion
/// order.
#[derive(Debug, Default)]
pub struct Mpf {
    programs: Vec<(u32, Program)>,
    next_id: u32,
}

impl Mpf {
    /// Creates an empty engine.
    pub fn new() -> Mpf {
        Mpf::default()
    }

    /// Installs a filter, returning its id.
    pub fn insert(&mut self, f: &Filter) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        self.programs.push((id, Program::from_filter(f)));
        id
    }

    /// Installs a filter under a caller-chosen id. Used by the [`Dpf`]
    /// interpreter fallback so the ids reported by interpreted
    /// classification match the ids the compiled engine assigned.
    ///
    /// [`Dpf`]: crate::Dpf
    pub fn insert_as(&mut self, id: u32, f: &Filter) {
        self.programs.push((id, Program::from_filter(f)));
        self.next_id = self.next_id.max(id + 1);
    }

    /// Removes a filter by id; returns whether it existed.
    pub fn remove(&mut self, id: u32) -> bool {
        let n = self.programs.len();
        self.programs.retain(|(i, _)| *i != id);
        self.programs.len() != n
    }

    /// Number of resident filters.
    pub fn len(&self) -> usize {
        self.programs.len()
    }

    /// `true` when no filters are installed.
    pub fn is_empty(&self) -> bool {
        self.programs.is_empty()
    }

    /// Classifies a message: the id of the first matching filter.
    pub fn classify(&self, msg: &[u8]) -> Option<u32> {
        self.programs
            .iter()
            .find(|(_, p)| p.run(msg))
            .map(|(id, _)| *id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{self, PacketSpec};

    #[test]
    fn bytecode_matches_reference_semantics() {
        let f = packet::tcp_port_filter(0x0a00_0002, 80).unwrap();
        let p = Program::from_filter(&f);
        let yes = packet::build(&PacketSpec::default());
        let no = packet::build(&PacketSpec {
            dst_port: 81,
            ..PacketSpec::default()
        });
        assert_eq!(p.run(&yes), f.matches(&yes));
        assert_eq!(p.run(&no), f.matches(&no));
        assert!(p.run(&yes));
        assert!(!p.run(&no));
    }

    #[test]
    fn masked_atoms_emit_and() {
        let f = packet::tcp_port_filter(0x0a00_0002, 80).unwrap();
        let p = Program::from_filter(&f);
        assert!(p.insns().iter().any(|i| matches!(i, Insn::And(0xf0))));
        // Full-width compares skip the And.
        assert!(!p.insns().iter().any(|i| matches!(i, Insn::And(0xffff))));
    }

    #[test]
    fn shift_programs_follow_headers() {
        let f = packet::tcp_port_filter_var_ihl(80).unwrap();
        let p = Program::from_filter(&f);
        let msg = packet::build(&PacketSpec::default());
        assert!(p.run(&msg));
    }

    #[test]
    fn classify_first_match_and_removal() {
        let mut mpf = Mpf::new();
        let set = packet::port_filter_set(10, 1000);
        let ids: Vec<u32> = set.iter().map(|f| mpf.insert(f)).collect();
        assert_eq!(mpf.len(), 10);
        let p = packet::build(&PacketSpec {
            dst_port: 1007,
            ..PacketSpec::default()
        });
        assert_eq!(mpf.classify(&p), Some(ids[7]));
        assert!(mpf.remove(ids[7]));
        assert_eq!(mpf.classify(&p), None);
        assert!(!mpf.remove(ids[7]), "already removed");
    }

    #[test]
    fn truncated_messages_reject_safely() {
        let mut mpf = Mpf::new();
        let f = packet::tcp_port_filter(0x0a00_0002, 80).unwrap();
        mpf.insert(&f);
        let p = packet::build(&PacketSpec::default());
        for cut in [0, 1, 13, 14, 23, 35, 37] {
            assert_eq!(mpf.classify(&p[..cut.min(p.len())]), None, "cut {cut}");
        }
    }
}
