//! The packet-filter language.
//!
//! "Packet filters are predicates written in a small safe language"
//! (paper §4.2). A [`Filter`] is a conjunction of atoms over a message:
//! comparisons of (masked) header fields against constants, plus offset
//! shifts for variable-length headers (e.g. the IP header-length field).
//! Safety comes from validation at insertion time (bounded offsets) and
//! bounds checks against the message length at evaluation time — checks
//! the compiled engine elides when a dominating check already covers
//! them.

use std::fmt;

/// Width of a header field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FieldSize {
    /// One byte.
    U8,
    /// Two bytes, big-endian (network order).
    U16,
    /// Four bytes, big-endian.
    U32,
}

impl FieldSize {
    /// Size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            FieldSize::U8 => 1,
            FieldSize::U16 => 2,
            FieldSize::U32 => 4,
        }
    }

    /// All-ones mask for this width.
    pub fn full_mask(self) -> u32 {
        match self {
            FieldSize::U8 => 0xff,
            FieldSize::U16 => 0xffff,
            FieldSize::U32 => 0xffff_ffff,
        }
    }
}

/// One predicate atom.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Atom {
    /// `(msg[offset .. offset+size] & mask) == value`, field read
    /// big-endian. The offset is relative to the current base (0 until a
    /// [`Atom::Shift`] executes).
    Cmp {
        /// Byte offset from the current base.
        offset: u32,
        /// Field width.
        size: FieldSize,
        /// Mask applied before comparison.
        mask: u32,
        /// Expected value.
        value: u32,
    },
    /// Advance the base: `base += (msg[offset..] & mask) << shift`.
    /// Models variable-length headers (IP IHL: offset 14, mask 0x0f,
    /// shift 2).
    Shift {
        /// Byte offset of the length field from the current base.
        offset: u32,
        /// Field width.
        size: FieldSize,
        /// Mask applied to the raw field.
        mask: u32,
        /// Left shift applied after masking.
        shift: u32,
    },
}

/// Why a filter was rejected at insertion.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FilterError {
    /// An atom's offset exceeds the maximum supported message size.
    OffsetTooLarge(u32),
    /// The value has bits outside the mask — the atom can never match.
    ValueOutsideMask {
        /// The mask.
        mask: u32,
        /// The contradictory value.
        value: u32,
    },
    /// The filter has no comparison atoms.
    Empty,
    /// A shift amount that could move the base out of range.
    ShiftTooLarge(u32),
}

impl fmt::Display for FilterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FilterError::OffsetTooLarge(o) => write!(f, "offset {o} exceeds 65535"),
            FilterError::ValueOutsideMask { mask, value } => {
                write!(f, "value {value:#x} has bits outside mask {mask:#x}")
            }
            FilterError::Empty => write!(f, "filter has no comparison atoms"),
            FilterError::ShiftTooLarge(s) => write!(f, "shift {s} too large"),
        }
    }
}

impl std::error::Error for FilterError {}

/// A validated conjunction of atoms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Filter {
    atoms: Vec<Atom>,
}

impl Filter {
    /// Validates and constructs a filter.
    ///
    /// # Errors
    ///
    /// [`FilterError`] when any atom is out of range, contradictory, or
    /// the filter contains no comparisons.
    pub fn new(atoms: Vec<Atom>) -> Result<Filter, FilterError> {
        let mut has_cmp = false;
        for atom in &atoms {
            match *atom {
                Atom::Cmp {
                    offset,
                    size,
                    mask,
                    value,
                } => {
                    has_cmp = true;
                    if offset > 65_535 - size.bytes() {
                        return Err(FilterError::OffsetTooLarge(offset));
                    }
                    let m = mask & size.full_mask();
                    if value & !m != 0 {
                        return Err(FilterError::ValueOutsideMask { mask: m, value });
                    }
                }
                Atom::Shift { offset, shift, .. } => {
                    if offset > 65_535 {
                        return Err(FilterError::OffsetTooLarge(offset));
                    }
                    if shift > 8 {
                        return Err(FilterError::ShiftTooLarge(shift));
                    }
                }
            }
        }
        if !has_cmp {
            return Err(FilterError::Empty);
        }
        Ok(Filter { atoms })
    }

    /// The atom sequence.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Reference semantics: does this filter accept `msg`? Used by the
    /// test suite to validate every engine (DPF, MPF, PATHFINDER) against
    /// the same oracle.
    pub fn matches(&self, msg: &[u8]) -> bool {
        let mut base: u64 = 0;
        for atom in &self.atoms {
            match *atom {
                Atom::Cmp {
                    offset,
                    size,
                    mask,
                    value,
                } => match read_field(msg, base + u64::from(offset), size) {
                    Some(raw) => {
                        if raw & mask & size.full_mask() != value {
                            return false;
                        }
                    }
                    None => return false,
                },
                Atom::Shift {
                    offset,
                    size,
                    mask,
                    shift,
                } => match read_field(msg, base + u64::from(offset), size) {
                    Some(raw) => base += u64::from((raw & mask) << shift),
                    None => return false,
                },
            }
        }
        true
    }
}

/// Reads a big-endian field with bounds checking.
pub fn read_field(msg: &[u8], offset: u64, size: FieldSize) -> Option<u32> {
    let offset = usize::try_from(offset).ok()?;
    let end = offset.checked_add(size.bytes() as usize)?;
    let b = msg.get(offset..end)?;
    Some(match size {
        FieldSize::U8 => u32::from(b[0]),
        FieldSize::U16 => u32::from(u16::from_be_bytes([b[0], b[1]])),
        FieldSize::U32 => u32::from_be_bytes([b[0], b[1], b[2], b[3]]),
    })
}

/// Builder with protocol-aware helpers for the experiments.
#[derive(Debug, Default, Clone)]
pub struct FilterBuilder {
    atoms: Vec<Atom>,
}

impl FilterBuilder {
    /// Starts an empty filter.
    pub fn new() -> FilterBuilder {
        FilterBuilder::default()
    }

    /// Adds a full-width equality on a byte.
    pub fn eq_u8(mut self, offset: u32, value: u8) -> FilterBuilder {
        self.atoms.push(Atom::Cmp {
            offset,
            size: FieldSize::U8,
            mask: 0xff,
            value: u32::from(value),
        });
        self
    }

    /// Adds a full-width equality on a 16-bit field.
    pub fn eq_u16(mut self, offset: u32, value: u16) -> FilterBuilder {
        self.atoms.push(Atom::Cmp {
            offset,
            size: FieldSize::U16,
            mask: 0xffff,
            value: u32::from(value),
        });
        self
    }

    /// Adds a full-width equality on a 32-bit field.
    pub fn eq_u32(mut self, offset: u32, value: u32) -> FilterBuilder {
        self.atoms.push(Atom::Cmp {
            offset,
            size: FieldSize::U32,
            mask: 0xffff_ffff,
            value,
        });
        self
    }

    /// Adds a masked equality.
    pub fn masked(mut self, offset: u32, size: FieldSize, mask: u32, value: u32) -> FilterBuilder {
        self.atoms.push(Atom::Cmp {
            offset,
            size,
            mask,
            value,
        });
        self
    }

    /// Adds a base shift (variable-length header).
    pub fn shift(mut self, offset: u32, size: FieldSize, mask: u32, shift: u32) -> FilterBuilder {
        self.atoms.push(Atom::Shift {
            offset,
            size,
            mask,
            shift,
        });
        self
    }

    /// Validates and builds.
    ///
    /// # Errors
    ///
    /// See [`Filter::new`].
    pub fn build(self) -> Result<Filter, FilterError> {
        Filter::new(self.atoms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_atoms() {
        assert_eq!(Filter::new(vec![]), Err(FilterError::Empty));
        assert!(matches!(
            FilterBuilder::new().eq_u32(65_534, 0).build(),
            Err(FilterError::OffsetTooLarge(_))
        ));
        assert!(matches!(
            FilterBuilder::new()
                .masked(0, FieldSize::U8, 0x0f, 0x10)
                .build(),
            Err(FilterError::ValueOutsideMask { .. })
        ));
        assert!(matches!(
            Filter::new(vec![Atom::Shift {
                offset: 0,
                size: FieldSize::U8,
                mask: 0xf,
                shift: 20
            }]),
            Err(FilterError::ShiftTooLarge(20))
        ));
    }

    #[test]
    fn reference_matching_reads_big_endian() {
        let f = FilterBuilder::new().eq_u16(2, 0x0800).build().unwrap();
        assert!(f.matches(&[0, 0, 0x08, 0x00]));
        assert!(!f.matches(&[0, 0, 0x00, 0x08]));
        assert!(!f.matches(&[0, 0, 0x08]), "short message rejected");
    }

    #[test]
    fn masked_fields() {
        // IP version nibble: high 4 bits of byte 0.
        let f = FilterBuilder::new()
            .masked(0, FieldSize::U8, 0xf0, 0x40)
            .build()
            .unwrap();
        assert!(f.matches(&[0x45]));
        assert!(f.matches(&[0x40]));
        assert!(!f.matches(&[0x60]));
    }

    #[test]
    fn shift_follows_variable_header() {
        // hdr[0] = length of first part in words; match byte at
        // shifted offset 0 == 0x99.
        let f = FilterBuilder::new()
            .shift(0, FieldSize::U8, 0x0f, 2)
            .eq_u8(0, 0x99)
            .build()
            .unwrap();
        let mut msg = vec![0u8; 16];
        msg[0] = 2; // base += 8
        msg[8] = 0x99;
        assert!(f.matches(&msg));
        msg[0] = 3; // base += 12 → msg[12] != 0x99
        assert!(!f.matches(&msg));
        msg[0] = 0x0f; // base += 60: out of range → reject
        assert!(!f.matches(&msg));
    }

    #[test]
    fn conjunction_requires_all_atoms() {
        let f = FilterBuilder::new()
            .eq_u8(0, 1)
            .eq_u8(1, 2)
            .build()
            .unwrap();
        assert!(f.matches(&[1, 2]));
        assert!(!f.matches(&[1, 3]));
        assert!(!f.matches(&[0, 2]));
    }
}
