//! The merged filter trie.
//!
//! DPF "optimizes the common situation where concurrently active filters
//! examine the same part of a message and compare against different
//! values" (paper §4.2): filters are merged into a trie keyed by the
//! field each atom examines, so shared prefixes are tested once and
//! same-field/different-value sets become a single multiway dispatch.
//!
//! The same structure drives both engines: interpreted walking (the
//! PATHFINDER-style baseline, [`Level::classify`]) and dynamic
//! compilation (`crate::compile`).

use crate::lang::{Atom, FieldSize, Filter};
use std::collections::HashMap;

/// What a trie node examines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Key {
    /// A masked field compare (dispatch on its value).
    Cmp {
        /// Offset from the current base.
        offset: u32,
        /// Field width.
        size: FieldSize,
        /// Mask applied before dispatch.
        mask: u32,
    },
    /// A base shift.
    Shift {
        /// Offset of the length field.
        offset: u32,
        /// Field width.
        size: FieldSize,
        /// Mask.
        mask: u32,
        /// Left shift.
        shift: u32,
    },
}

/// One dispatch arm of a [`Node`]: a distinct field value and its
/// continuation.
#[derive(Debug, Clone)]
pub struct Arm {
    /// The (masked, big-endian) field value.
    pub value: u32,
    /// Where matching continues.
    pub next: Level,
}

/// A trie node: a field examination with its dispatch arms (or, for
/// shifts, a single continuation).
#[derive(Debug, Clone)]
pub struct Node {
    /// What this node examines.
    pub key: Key,
    /// Value arms (`Cmp` nodes).
    pub arms: Vec<Arm>,
    /// Hashed cell index into `arms` (the PATHFINDER discipline).
    pub index: HashMap<u32, usize>,
    /// Continuation (`Shift` nodes).
    pub next: Option<Box<Level>>,
}

/// A trie level: alternative nodes tried in order, plus the filter
/// accepted when every deeper test fails (longest-match semantics).
#[derive(Debug, Clone, Default)]
pub struct Level {
    /// Alternative examinations.
    pub nodes: Vec<Node>,
    /// Filter accepted at this level.
    pub accept: Option<u32>,
}

impl Level {
    /// Inserts a filter's remaining atoms.
    pub fn insert(&mut self, atoms: &[Atom], id: u32) {
        let Some((first, rest)) = atoms.split_first() else {
            // First insertion wins, like the interpreter engines.
            if self.accept.is_none() {
                self.accept = Some(id);
            }
            return;
        };
        match *first {
            Atom::Cmp {
                offset,
                size,
                mask,
                value,
            } => {
                let mask = mask & size.full_mask();
                let key = Key::Cmp { offset, size, mask };
                let node = self.node_mut(key);
                match node.index.get(&value) {
                    Some(&i) => node.arms[i].next.insert(rest, id),
                    None => {
                        let mut next = Level::default();
                        next.insert(rest, id);
                        node.index.insert(value, node.arms.len());
                        node.arms.push(Arm { value, next });
                    }
                }
            }
            Atom::Shift {
                offset,
                size,
                mask,
                shift,
            } => {
                let key = Key::Shift {
                    offset,
                    size,
                    mask,
                    shift,
                };
                let node = self.node_mut(key);
                node.next.get_or_insert_with(Box::default).insert(rest, id);
            }
        }
    }

    fn node_mut(&mut self, key: Key) -> &mut Node {
        if let Some(i) = self.nodes.iter().position(|n| n.key == key) {
            &mut self.nodes[i]
        } else {
            self.nodes.push(Node {
                key,
                arms: Vec::new(),
                index: HashMap::new(),
                next: None,
            });
            self.nodes.last_mut().expect("just pushed")
        }
    }

    /// Interpreted classification — this is the PATHFINDER-style engine:
    /// walk the merged trie, hashing into each node's cell index.
    pub fn classify(&self, msg: &[u8], base: u64) -> Option<u32> {
        for node in &self.nodes {
            match node.key {
                Key::Cmp { offset, size, mask } => {
                    let Some(raw) = crate::lang::read_field(msg, base + u64::from(offset), size)
                    else {
                        continue;
                    };
                    if let Some(&i) = node.index.get(&(raw & mask)) {
                        if let Some(hit) = node.arms[i].next.classify(msg, base) {
                            return Some(hit);
                        }
                    }
                }
                Key::Shift {
                    offset,
                    size,
                    mask,
                    shift,
                } => {
                    let Some(raw) = crate::lang::read_field(msg, base + u64::from(offset), size)
                    else {
                        continue;
                    };
                    let nb = base + u64::from((raw & mask) << shift);
                    if let Some(next) = &node.next {
                        if let Some(hit) = next.classify(msg, nb) {
                            return Some(hit);
                        }
                    }
                }
            }
        }
        self.accept
    }

    /// Number of nodes in the (sub)trie.
    pub fn node_count(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| {
                1 + n.arms.iter().map(|a| a.next.node_count()).sum::<usize>()
                    + n.next.as_ref().map_or(0, |l| l.node_count())
            })
            .sum()
    }
}

/// Builds the merged trie for a resident filter set.
pub fn build(filters: &[(u32, Filter)]) -> Level {
    let mut root = Level::default();
    for (id, f) in filters {
        root.insert(f.atoms(), *id);
    }
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{self, PacketSpec};

    #[test]
    fn shared_prefixes_merge() {
        let set = packet::port_filter_set(10, 1000);
        let filters: Vec<(u32, Filter)> = set
            .into_iter()
            .enumerate()
            .map(|(i, f)| (i as u32, f))
            .collect();
        let trie = build(&filters);
        // 4 shared prefix nodes + 1 port-dispatch node = 5 nodes total,
        // not 10 × 5.
        assert_eq!(trie.node_count(), 5);
        // The port node has 10 arms.
        fn port_node_arms(l: &Level) -> Option<usize> {
            for n in &l.nodes {
                if n.arms.len() > 1 {
                    return Some(n.arms.len());
                }
                for a in &n.arms {
                    if let Some(k) = port_node_arms(&a.next) {
                        return Some(k);
                    }
                }
            }
            None
        }
        assert_eq!(port_node_arms(&trie), Some(10));
    }

    #[test]
    fn interpreted_classification_matches_reference() {
        let set = packet::port_filter_set(10, 1000);
        let filters: Vec<(u32, Filter)> = set
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, f)| (i as u32, f))
            .collect();
        let trie = build(&filters);
        for port in 995..1015 {
            let p = packet::build(&PacketSpec {
                dst_port: port,
                ..PacketSpec::default()
            });
            let expect = set.iter().position(|f| f.matches(&p)).map(|i| i as u32);
            assert_eq!(trie.classify(&p, 0), expect, "port {port}");
        }
    }

    #[test]
    fn prefix_filter_accepts_when_deeper_fails() {
        // Filter 0: just "is IP". Filter 1: IP && port 80.
        let ip_only = crate::lang::FilterBuilder::new()
            .eq_u16(12, 0x0800)
            .build()
            .unwrap();
        let f80 = packet::tcp_port_filter(0x0a00_0002, 80).unwrap();
        let trie = build(&[(0, ip_only), (1, f80)]);
        let p80 = packet::build(&PacketSpec::default());
        let p99 = packet::build(&PacketSpec {
            dst_port: 99,
            ..PacketSpec::default()
        });
        // Longest match: the specific filter wins when it matches...
        assert_eq!(trie.classify(&p80, 0), Some(1));
        // ...and the prefix filter is the fallback.
        assert_eq!(trie.classify(&p99, 0), Some(0));
    }

    #[test]
    fn shift_nodes_share_continuations() {
        let f1 = packet::tcp_port_filter_var_ihl(80).unwrap();
        let f2 = packet::tcp_port_filter_var_ihl(81).unwrap();
        let trie = build(&[(0, f1), (1, f2)]);
        let p = packet::build(&PacketSpec::default());
        assert_eq!(trie.classify(&p, 0), Some(0));
        let p81 = packet::build(&PacketSpec {
            dst_port: 81,
            ..PacketSpec::default()
        });
        assert_eq!(trie.classify(&p81, 0), Some(1));
    }

    #[test]
    fn disjoint_first_atoms_coexist() {
        let a = crate::lang::FilterBuilder::new()
            .eq_u8(0, 7)
            .build()
            .unwrap();
        let b = crate::lang::FilterBuilder::new()
            .eq_u16(2, 9)
            .build()
            .unwrap();
        let trie = build(&[(0, a), (1, b)]);
        assert_eq!(trie.nodes.len(), 2, "two alternative root nodes");
        assert_eq!(trie.classify(&[7, 0, 0, 0], 0), Some(0));
        assert_eq!(trie.classify(&[0, 0, 0, 9], 0), Some(1));
        // A message matching both: first node wins.
        assert_eq!(trie.classify(&[7, 0, 0, 9], 0), Some(0));
    }
}
