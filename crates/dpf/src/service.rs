//! # Live-updatable packet classification (`DpfService`)
//!
//! The paper's DPF compiles filters *at install time*, while traffic is
//! running (§4.2). [`crate::Dpf`] is stop-the-world: every insert or
//! remove invalidates the compiled set and classification degrades to
//! the interpreter until the owner recompiles. `DpfService` closes that
//! gap with an RCU-style hot swap:
//!
//! - **Readers never lock.** Each [`DpfReader`] owns a registered epoch
//!   slot; entering a classification (or a whole
//!   [`classify_batch`](DpfReader::classify_batch)) is two atomic
//!   stores and two loads — no mutex, no reference-count contention on
//!   the generation itself.
//! - **Writers publish generations.** `insert`/`remove` build an
//!   immutable [`Generation`] for the *new* filter set and swap it in
//!   with a single pointer store. The native build is handed to the
//!   process-wide [`classifier_service`](crate::classifier_service)
//!   (PR 6); for the delta window between publication and the build
//!   landing, the generation classifies with an [`Mpf`] interpreter
//!   over the same filters — correct ids, never a stale match, never a
//!   panic, never a stall.
//! - **Reclamation is epoch-deferred.** A replaced generation is freed
//!   (and its [`CodePin`] on the compiled mapping released) only once
//!   every active reader entered at or after the retire epoch — a
//!   reader mid-batch on the old code keeps it mapped and executable.
//!
//! Semantic caveat, inherited from the degradation ladder: the compiled
//! trie resolves overlapping filters by longest match, the interpreter
//! by first match. Disjoint filter sets (the common demultiplexing
//! case) classify identically in and out of the delta window.
//!
//! ```
//! use dpf::packet::{self, PacketSpec};
//! use dpf::DpfService;
//! use std::time::Duration;
//!
//! let svc = DpfService::new();
//! let id = svc.insert(packet::tcp_port_filter(0x0a00_0002, 80)?);
//! let reader = svc.reader();           // clone one per thread
//! let msg = packet::build(&PacketSpec { dst_port: 80, ..PacketSpec::default() });
//! // Classification is live immediately (interpreter delta window),
//! // and upgrades in place once the background build publishes.
//! assert_eq!(reader.classify(&msg), Some(id));
//! svc.flush(Duration::from_secs(5));
//! assert_eq!(reader.classify(&msg), Some(id));
//! assert!(svc.is_native());
//! # Ok::<(), dpf::FilterError>(())
//! ```

use crate::compile::CompiledSet;
use crate::lang::Filter;
use crate::mpf::Mpf;
use crate::{cache_key, classifier_cache, classifier_service, compile_with_retry, trie, Options};
use std::cell::Cell;
use std::marker::PhantomData;
// Synchronization via vcode's `vsync` facade, and the epoch-RCU cell
// via the generic `vcode::rcu::Rcu` it was extracted into — both so the
// `mcheck` model checker can explore this module's reader/writer
// interleavings (no raw `std::sync` here; see DESIGN.md "Model-checked
// concurrency").
use vcode::rcu::Rcu;
use vcode::vsync::{
    self, Arc, AtomicBool, AtomicU64, Duration, Instant, Mutex, MutexGuard, Ordering,
};
use vcode::{obs, CacheKey, QuarantineInfo, Submit};
use vcode_x64::CodePin;

/// One published classifier generation: an immutable snapshot serving
/// exactly one filter set. Readers obtain it through the RCU cell and
/// never observe a partially built one.
struct Generation {
    /// Filter-set sequence this generation serves (bumped per
    /// insert/remove, not per publication — a delta-window generation
    /// and its native upgrade share a `seq`).
    seq: u64,
    /// The compiled classifier, once the build has landed.
    native: Option<Arc<CompiledSet>>,
    /// Liveness pin on the compiled mapping: released only when this
    /// generation is reclaimed, i.e. after its last reader epoch
    /// retires — a reader mid-batch keeps the old code executable even
    /// if the cache evicts and drops the `CompiledSet` meanwhile.
    _pin: Option<CodePin>,
    /// Interpreter over the same filters (same ids): the delta-window
    /// engine while the native build is in flight, and the permanent
    /// backstop if codegen fails or quarantines.
    mpf: Mpf,
}

impl Generation {
    #[inline]
    fn classify(&self, msg: &[u8], degraded_calls: &AtomicU64) -> Option<u32> {
        match self.native.as_ref() {
            Some(set) => set.classify(msg),
            None => {
                degraded_calls.fetch_add(1, Ordering::Relaxed);
                obs::note_degraded_call();
                self.mpf.classify(msg)
            }
        }
    }
}

// The epoch-based RCU cell that used to live here is now the generic
// `vcode::rcu::Rcu<T>` (shared with the `mcheck` model programs, which
// exhaustively explore its reader/writer interleavings and assert no
// use-after-retire). `Generation` is the `T` for this service.

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Writer-side state, guarded by one mutex: the authoritative filter
/// list and the in-flight native build, if any.
struct Writer {
    filters: Vec<(u32, Filter)>,
    next_id: u32,
    opts: Options,
    /// Filter-set sequence (bumped per insert/remove).
    seq: u64,
    /// Cache key of the native build for the *current* set, still
    /// unpublished.
    pending: Option<CacheKey>,
}

struct Shared {
    rcu: Rcu<Generation>,
    writer: Mutex<Writer>,
    /// Mirror of `writer.pending.is_some()`, readable without the lock:
    /// readers use it to decide whether polling could upgrade anything.
    pending: AtomicBool,
    /// The current generation serves native code.
    native: AtomicBool,
    /// The current generation's filter-set sequence.
    seq: AtomicU64,
    // -- counters (service-local; the process-wide mirrors live in
    // vcode::obs::swap_counters) --
    published: AtomicU64,
    native_publishes: AtomicU64,
    degraded_publishes: AtomicU64,
    upgrades: AtomicU64,
    retired: AtomicU64,
    degraded_calls: AtomicU64,
}

impl Shared {
    /// Publishes a generation for the writer's current filter set.
    fn publish_generation(&self, w: &Writer, native: Option<Arc<CompiledSet>>) {
        let mut mpf = Mpf::new();
        for (id, f) in &w.filters {
            mpf.insert_as(*id, f);
        }
        let pin = native.as_ref().map(|s| s.pin());
        let is_native = native.is_some();
        let freed = self.rcu.publish(Generation {
            seq: w.seq,
            native,
            _pin: pin,
            mpf,
        });
        self.seq.store(w.seq, Ordering::SeqCst);
        self.native.store(is_native, Ordering::SeqCst);
        self.published.fetch_add(1, Ordering::Relaxed);
        if is_native {
            self.native_publishes.fetch_add(1, Ordering::Relaxed);
        } else {
            self.degraded_publishes.fetch_add(1, Ordering::Relaxed);
        }
        obs::note_generation_published(is_native);
        self.note_freed(freed);
    }

    fn note_freed(&self, freed: u64) {
        if freed > 0 {
            self.retired.fetch_add(freed, Ordering::Relaxed);
            obs::note_generations_retired(freed);
        }
    }

    /// Submits the native build for the writer's current set to the
    /// process-wide compile service; publishes immediately when the
    /// result is already at hand.
    fn submit_build(&self, w: &mut Writer, key: CacheKey) {
        let filters = w.filters.clone();
        let opts = w.opts;
        let submit = classifier_service().submit(key.clone(), move || {
            let root = trie::build(&filters);
            compile_with_retry(&root, opts)
                .map(Arc::new)
                .map_err(|e| e.to_string())
        });
        match submit {
            Submit::Ready(set) => {
                self.publish_generation(w, Some(set));
                w.pending = None;
                self.pending.store(false, Ordering::SeqCst);
            }
            // Queued/InFlight: the poll path publishes on completion.
            // Shed/Quarantined: nothing enqueued now; the poll path
            // keeps re-offering the key (quarantine backoff applies),
            // so an update storm degrades to the interpreter instead of
            // wedging the service.
            Submit::Queued | Submit::InFlight | Submit::Shed | Submit::Quarantined { .. } => {
                w.pending = Some(key);
                self.pending.store(true, Ordering::SeqCst);
            }
        }
    }

    /// The writer-locked half of a filter mutation: publish an
    /// interpreter generation for the new set *first* (correctness is
    /// immediate), then chase the native build.
    fn republish(&self, w: &mut Writer) {
        w.seq += 1;
        w.pending = None;
        self.pending.store(false, Ordering::SeqCst);
        let key = cache_key(&w.filters, w.opts);
        // Warm key — the same filter set compiled before, process-wide
        // (L1) or in a previous process with a persistent tier (L2) —
        // publishes native directly: no interpreter window at all.
        if let Some(set) = classifier_cache()
            .peek(&key)
            .or_else(|| crate::l2_fetch_into_l1(&key))
        {
            self.publish_generation(w, Some(set));
            return;
        }
        self.publish_generation(w, None);
        self.submit_build(w, key);
    }

    /// Adopts a finished native build for the current set, if any.
    /// Requires the writer lock; returns whether the current generation
    /// is native afterwards.
    fn poll_locked(&self, w: &mut Writer) -> bool {
        let Some(key) = w.pending.clone() else {
            self.pending.store(false, Ordering::SeqCst);
            return self.native.load(Ordering::SeqCst);
        };
        if let Some(set) = classifier_cache()
            .peek(&key)
            .or_else(|| crate::l2_fetch_into_l1(&key))
        {
            self.publish_generation(w, Some(set));
            self.upgrades.fetch_add(1, Ordering::Relaxed);
            obs::note_generation_upgraded();
            w.pending = None;
            self.pending.store(false, Ordering::SeqCst);
            return true;
        }
        // Keep the build moving: re-offering the key re-admits a shed
        // build and probes an expired quarantine; an in-flight build
        // returns cheaply.
        self.submit_build(w, key);
        self.native.load(Ordering::SeqCst)
    }

    /// Best-effort maintenance from the read side: adopt a finished
    /// build and reclaim retired generations, but never block — all
    /// locks are `try_lock`.
    fn opportunistic_poll(&self) {
        if self.pending.load(Ordering::Relaxed) {
            if let Ok(mut w) = self.writer.try_lock() {
                self.poll_locked(&mut w);
            }
        }
        if self.rcu.retired_len() > 0 {
            let freed = self.rcu.reclaim();
            self.note_freed(freed);
        }
    }
}

/// Counter snapshot of a [`DpfService`] (see
/// [`stats`](DpfService::stats)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServiceSnapshot {
    /// Generations published (every hot swap).
    pub published: u64,
    /// Publications that served native code immediately.
    pub native_publishes: u64,
    /// Publications that opened an interpreter delta window.
    pub degraded_publishes: u64,
    /// Delta windows closed by a background build landing.
    pub upgrades: u64,
    /// Retired generations reclaimed (their code pins released).
    pub retired: u64,
    /// Classifications served by the interpreter (delta windows).
    pub degraded_calls: u64,
    /// Retired generations still waiting on a reader epoch.
    pub retired_backlog: u64,
    /// A native build for the current set is still outstanding.
    pub pending: bool,
    /// The current generation serves native code.
    pub native: bool,
    /// The current generation's filter-set sequence.
    pub seq: u64,
    /// Registered readers.
    pub readers: u64,
}

/// A live-updatable, batch-classifying packet-filter service: the
/// RCU-style hot-swap layer over [`crate::Dpf`]'s compiler. See the
/// [module docs](self) for the protocol.
///
/// `DpfService` is `Send + Sync`; share it behind an `Arc` (or plain
/// references) and give each classification thread its own
/// [`DpfReader`].
pub struct DpfService {
    shared: Arc<Shared>,
}

impl Default for DpfService {
    fn default() -> DpfService {
        DpfService::new()
    }
}

impl std::fmt::Debug for DpfService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DpfService")
            .field("stats", &self.stats())
            .finish()
    }
}

impl DpfService {
    /// Creates an empty service with default compilation options. The
    /// initial generation classifies everything as `None` (no filters).
    pub fn new() -> DpfService {
        DpfService::with_options(Options::default())
    }

    /// Creates an empty service with explicit dispatch-strategy options
    /// (the ablation and fault-injection knobs — a deliberately tiny
    /// `code_capacity` forces every native build to fail, pinning the
    /// service to its interpreter generations).
    pub fn with_options(opts: Options) -> DpfService {
        let shared = Shared {
            rcu: Rcu::new(Generation {
                seq: 0,
                native: None,
                _pin: None,
                mpf: Mpf::new(),
            }),
            writer: Mutex::new(Writer {
                filters: Vec::new(),
                next_id: 0,
                opts,
                seq: 0,
                pending: None,
            }),
            pending: AtomicBool::new(false),
            native: AtomicBool::new(false),
            seq: AtomicU64::new(0),
            published: AtomicU64::new(0),
            native_publishes: AtomicU64::new(0),
            degraded_publishes: AtomicU64::new(0),
            upgrades: AtomicU64::new(0),
            retired: AtomicU64::new(0),
            degraded_calls: AtomicU64::new(0),
        };
        DpfService {
            shared: Arc::new(shared),
        }
    }

    /// Installs a filter and publishes a generation for the new set
    /// before returning: subsequent classifications (on any reader)
    /// already see it. The native build proceeds in the background;
    /// until it lands the new generation classifies with the
    /// interpreter.
    pub fn insert(&self, f: Filter) -> u32 {
        let mut w = lock(&self.shared.writer);
        let id = w.next_id;
        w.next_id += 1;
        w.filters.push((id, f));
        self.shared.republish(&mut w);
        id
    }

    /// Removes a filter and publishes a generation without it before
    /// returning: once this returns, no reader classification started
    /// afterwards can return `id` (no stale positives — the guarantee
    /// the plain [`crate::Dpf`] only regains at its next compile).
    pub fn remove(&self, id: u32) -> bool {
        let mut w = lock(&self.shared.writer);
        let n = w.filters.len();
        w.filters.retain(|(i, _)| *i != id);
        if w.filters.len() == n {
            return false;
        }
        self.shared.republish(&mut w);
        true
    }

    /// Number of resident filters.
    pub fn len(&self) -> usize {
        lock(&self.shared.writer).filters.len()
    }

    /// `true` when no filters are installed.
    pub fn is_empty(&self) -> bool {
        lock(&self.shared.writer).filters.is_empty()
    }

    /// Registers a reader. One per classification thread; cloning a
    /// reader registers a fresh epoch slot.
    pub fn reader(&self) -> DpfReader {
        let slot = self.shared.rcu.register_slot();
        DpfReader {
            shared: Arc::clone(&self.shared),
            slot,
            _not_sync: PhantomData,
        }
    }

    /// Convenience single classification (registers a transient
    /// reader). Hot paths should hold a [`DpfReader`] instead.
    pub fn classify(&self, msg: &[u8]) -> Option<u32> {
        self.reader().classify(msg)
    }

    /// Convenience batch classification (transient reader); see
    /// [`DpfReader::classify_batch`].
    pub fn classify_batch(&self, msgs: &[&[u8]]) -> Vec<Option<u32>> {
        self.reader().classify_batch(msgs)
    }

    /// Adopts the native build for the current filter set if it has
    /// published, and reclaims retired generations. Returns whether the
    /// current generation is native *after* the call. Never blocks on
    /// readers; cheap enough to poll per batch.
    pub fn poll_upgrade(&self) -> bool {
        let native = {
            let mut w = lock(&self.shared.writer);
            self.shared.poll_locked(&mut w)
        };
        let freed = self.shared.rcu.reclaim();
        self.shared.note_freed(freed);
        native
    }

    /// Waits (bounded) until no native build is outstanding for the
    /// current filter set, polling the upgrade path. Returns whether
    /// the current generation is native. A quarantined build (forced
    /// codegen failure) stays outstanding, so this returns `false` at
    /// the deadline — classification keeps working on the interpreter
    /// generations throughout.
    pub fn flush(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let native = self.poll_upgrade();
            if !self.shared.pending.load(Ordering::SeqCst) {
                return native;
            }
            if Instant::now() >= deadline {
                return native;
            }
            vsync::thread::sleep(Duration::from_micros(200));
        }
    }

    /// The current generation's filter-set sequence (bumped on every
    /// insert/remove that changed the set).
    pub fn generation(&self) -> u64 {
        self.shared.seq.load(Ordering::SeqCst)
    }

    /// Whether the current generation serves compiled native code.
    pub fn is_native(&self) -> bool {
        self.shared.native.load(Ordering::SeqCst)
    }

    /// Typed quarantine state of the native build for the current
    /// filter set, if the process-wide compile service has one.
    pub fn quarantine(&self) -> Option<QuarantineInfo> {
        let key = {
            let w = lock(&self.shared.writer);
            w.pending
                .clone()
                .unwrap_or_else(|| cache_key(&w.filters, w.opts))
        };
        classifier_service().quarantine(&key)
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServiceSnapshot {
        let s = &*self.shared;
        ServiceSnapshot {
            published: s.published.load(Ordering::Relaxed),
            native_publishes: s.native_publishes.load(Ordering::Relaxed),
            degraded_publishes: s.degraded_publishes.load(Ordering::Relaxed),
            upgrades: s.upgrades.load(Ordering::Relaxed),
            retired: s.retired.load(Ordering::Relaxed),
            degraded_calls: s.degraded_calls.load(Ordering::Relaxed),
            retired_backlog: s.rcu.retired_len() as u64,
            pending: s.pending.load(Ordering::SeqCst),
            native: s.native.load(Ordering::SeqCst),
            seq: s.seq.load(Ordering::SeqCst),
            readers: s.rcu.slots_len() as u64,
        }
    }
}

/// A per-thread read handle on a [`DpfService`].
///
/// `Send` but not `Sync`: move one into each classification thread (or
/// [`Clone`] it — a clone registers its own epoch slot). Dropping a
/// reader unregisters it, so an idle pool never delays reclamation.
pub struct DpfReader {
    shared: Arc<Shared>,
    slot: Arc<AtomicU64>,
    /// The epoch-slot protocol allows one concurrent user per slot:
    /// `Cell` makes this handle `!Sync` while staying `Send`.
    _not_sync: PhantomData<Cell<()>>,
}

impl std::fmt::Debug for DpfReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DpfReader")
            .field("slot", &self.slot.load(Ordering::Relaxed))
            .finish()
    }
}

impl DpfReader {
    /// Classifies one message against the current generation: native
    /// code when published, the delta-window interpreter otherwise.
    /// Lock-free; never panics.
    #[inline]
    pub fn classify(&self, msg: &[u8]) -> Option<u32> {
        // The guard's epoch announcement keeps the generation from
        // being reclaimed until it drops.
        let g = self.shared.rcu.enter(&self.slot);
        g.classify(msg, &self.shared.degraded_calls)
    }

    /// Classifies a batch of messages in one read-side critical
    /// section, amortizing entry/exit and the engine dispatch across
    /// the whole slice. Every message in the batch is classified by the
    /// *same* generation (no torn batches). Also opportunistically
    /// adopts a finished native build first (never blocking).
    pub fn classify_batch(&self, msgs: &[&[u8]]) -> Vec<Option<u32>> {
        self.classify_batch_seq(msgs).1
    }

    /// Like [`classify_batch`](Self::classify_batch), also reporting
    /// the filter-set sequence of the generation that served the batch
    /// — the stress tests use it to prove batches are never torn across
    /// a swap.
    pub fn classify_batch_seq(&self, msgs: &[&[u8]]) -> (u64, Vec<Option<u32>>) {
        self.shared.opportunistic_poll();
        let mut out = Vec::with_capacity(msgs.len());
        let g = self.shared.rcu.enter(&self.slot);
        let seq = g.seq;
        match g.native.as_ref() {
            Some(set) => out.extend(msgs.iter().map(|m| set.classify(m))),
            None => {
                self.shared
                    .degraded_calls
                    .fetch_add(msgs.len() as u64, Ordering::Relaxed);
                out.extend(msgs.iter().map(|m| g.mpf.classify(m)));
            }
        }
        drop(g);
        (seq, out)
    }

    /// The filter-set sequence of the generation the *next*
    /// classification will observe (or a later one).
    pub fn generation(&self) -> u64 {
        self.shared.seq.load(Ordering::SeqCst)
    }
}

impl Clone for DpfReader {
    fn clone(&self) -> DpfReader {
        DpfReader {
            shared: Arc::clone(&self.shared),
            slot: self.shared.rcu.register_slot(),
            _not_sync: PhantomData,
        }
    }
}

impl Drop for DpfReader {
    fn drop(&mut self) {
        self.shared.rcu.unregister_slot(&self.slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{self, PacketSpec};

    fn port_msg(port: u16) -> Vec<u8> {
        packet::build(&PacketSpec {
            dst_port: port,
            ..PacketSpec::default()
        })
    }

    #[test]
    fn serves_immediately_and_upgrades() {
        let svc = DpfService::new();
        let reader = svc.reader();
        assert_eq!(reader.classify(&port_msg(1000)), None);
        let ids: Vec<u32> = packet::port_filter_set(8, 1000)
            .into_iter()
            .map(|f| svc.insert(f))
            .collect();
        // Live before any build lands.
        assert_eq!(reader.classify(&port_msg(1003)), Some(ids[3]));
        assert!(svc.flush(Duration::from_secs(10)), "build never landed");
        assert!(svc.is_native());
        assert_eq!(reader.classify(&port_msg(1003)), Some(ids[3]));
        assert_eq!(reader.classify(&port_msg(2000)), None);
        let st = svc.stats();
        assert!(st.published >= 8, "one publication per mutation");
        assert_eq!(st.seq, 8);
    }

    #[test]
    fn remove_is_immediate_no_stale_positive() {
        let svc = DpfService::new();
        let reader = svc.reader();
        let a = svc.insert(packet::tcp_port_filter(0x0a00_0002, 80).unwrap());
        let b = svc.insert(packet::tcp_port_filter(0x0a00_0002, 81).unwrap());
        svc.flush(Duration::from_secs(10));
        assert_eq!(reader.classify(&port_msg(80)), Some(a));
        assert!(svc.remove(a));
        // No recompile, no flush: the removed id must already be gone.
        assert_eq!(reader.classify(&port_msg(80)), None);
        assert_eq!(reader.classify(&port_msg(81)), Some(b));
        assert!(!svc.remove(a), "double remove");
    }

    #[test]
    fn batch_matches_single_and_is_untorn() {
        let svc = DpfService::new();
        let ids: Vec<u32> = packet::port_filter_set(16, 7000)
            .into_iter()
            .map(|f| svc.insert(f))
            .collect();
        svc.flush(Duration::from_secs(10));
        let reader = svc.reader();
        let msgs: Vec<Vec<u8>> = (0..32).map(|i| port_msg(7000 + (i % 20))).collect();
        let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
        let batch = reader.classify_batch(&refs);
        for (m, got) in refs.iter().zip(&batch) {
            assert_eq!(*got, reader.classify(m));
        }
        assert_eq!(batch[3], Some(ids[3]));
        assert_eq!(batch[16], None, "port 7016 unfiltered");
    }

    #[test]
    fn reclaim_drains_after_readers_leave() {
        let svc = DpfService::new();
        let reader = svc.reader();
        for f in packet::port_filter_set(6, 3000) {
            svc.insert(f);
        }
        svc.flush(Duration::from_secs(10));
        // All mutations and their upgrades have retired; a quiescent
        // reader must not hold them back.
        svc.poll_upgrade();
        assert_eq!(svc.stats().retired_backlog, 0);
        drop(reader);
        assert_eq!(svc.stats().readers, 0);
    }

    #[test]
    fn forced_codegen_failure_pins_interpreter_service() {
        let svc = DpfService::with_options(Options {
            code_capacity: Some(16), // hopeless: every build fails
            ..Options::default()
        });
        let id = svc.insert(packet::tcp_port_filter(0x0a00_0002, 90).unwrap());
        let reader = svc.reader();
        assert_eq!(reader.classify(&port_msg(90)), Some(id));
        assert!(!svc.flush(Duration::from_millis(300)));
        assert!(!svc.is_native());
        // Still serving, still correct, typed quarantine observable.
        assert_eq!(reader.classify(&port_msg(90)), Some(id));
        let st = svc.stats();
        assert!(st.degraded_calls >= 2);
        assert!(st.pending, "failed build stays outstanding");
    }
}
