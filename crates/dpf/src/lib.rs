//! # dpf — Dynamic Packet Filters (paper §4.2, Table 3)
//!
//! Message demultiplexing is the process of determining which application
//! an incoming message should be delivered to; packet filters — predicates
//! in a small safe language — make it extensible. Traditionally filters
//! are *interpreted*, which costs so much that high-performance stacks
//! avoided them. DPF removes the interpretation tax with dynamic code
//! generation: filters are compiled to native code when installed, and the
//! compiler exploits runtime knowledge (the exact set of resident
//! filters and their constants) for optimizations static systems cannot
//! perform. In the paper's Table 3, DPF classifies TCP/IP headers ~20×
//! faster than the MPF interpreter and ~10× faster than PATHFINDER.
//!
//! This crate contains all three engines:
//!
//! - [`Dpf`] — the dynamically compiled engine (via `vcode` + the x86-64
//!   backend);
//! - [`Mpf`](mpf::Mpf) — a BPF-style bytecode interpreter run per filter;
//! - [`Pathfinder`] — a pattern-trie interpreter with hashed cells.
//!
//! ```
//! use dpf::packet::{self, PacketSpec};
//! use dpf::Dpf;
//!
//! let mut dpf = Dpf::new();
//! let ids: Vec<u32> = packet::port_filter_set(10, 1000)
//!     .iter()
//!     .map(|f| dpf.insert(f.clone()))
//!     .collect();
//! dpf.compile()?;
//! let msg = packet::build(&PacketSpec { dst_port: 1004, ..PacketSpec::default() });
//! assert_eq!(dpf.classify(&msg), Some(ids[4]));
//! # Ok::<(), dpf::compile::CompileError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod compile;
pub mod hotloop;
pub mod lang;
pub mod mpf;
pub mod packet;
pub mod service;
pub mod trie;

pub use compile::{CompileError, CompiledSet, Options, Strategies};
pub use lang::{Atom, FieldSize, Filter, FilterBuilder, FilterError};
pub use service::{DpfReader, DpfService, ServiceSnapshot};

use mpf::Mpf;
use std::sync::{Arc, OnceLock};
use trie::Level;
use vcode::{
    CacheError, CacheKey, CacheStats, CompileService, LambdaCache, ServeMode, ServiceConfig,
    Submit, TargetId,
};

/// The process-wide cache of compiled classifiers, keyed by the exact
/// resident filter set (ids included — generated code returns them) and
/// the dispatch-strategy options. Re-installing the same filters — the
/// common case when identical flows come and go — reuses the finished
/// code instead of re-running codegen.
fn classifier_cache() -> &'static Arc<LambdaCache<CompiledSet>> {
    static CACHE: OnceLock<Arc<LambdaCache<CompiledSet>>> = OnceLock::new();
    CACHE.get_or_init(|| Arc::new(LambdaCache::new(64)))
}

/// The process-wide background compile service over
/// [`classifier_cache`]: [`Dpf::compile_async`] hands codegen to it and
/// serves the MPF interpreter until the native classifier publishes.
pub fn classifier_service() -> &'static CompileService<CompiledSet> {
    static SERVICE: OnceLock<CompileService<CompiledSet>> = OnceLock::new();
    SERVICE.get_or_init(|| {
        CompileService::new(Arc::clone(classifier_cache()), ServiceConfig::default())
    })
}

/// Counters for the process-wide classifier cache.
pub fn cache_stats() -> CacheStats {
    classifier_cache().stats()
}

/// Drops every cached classifier (callers holding compiled sets keep
/// them). Benchmarks use this to measure cold compiles.
pub fn clear_cache() {
    classifier_cache().clear();
}

/// The [`ArtifactCodec`](vcode::ArtifactCodec) for compiled classifier
/// sets: code bytes plus the dispatch-strategy counters in the meta
/// blob. Only [position-independent](CompiledSet::position_independent)
/// sets persist — jump-table and perfect-hash dispatch embed absolute
/// side-table addresses that cannot survive a reload — and every load
/// re-decodes the bytes with the x86-64 length decoder before they
/// touch executable memory.
#[derive(Debug)]
struct SetCodec;

impl vcode::ArtifactCodec<CompiledSet> for SetCodec {
    fn to_artifact(
        &self,
        key: &CacheKey,
        val: &Arc<CompiledSet>,
    ) -> Result<vcode::Artifact, vcode::PersistError> {
        if !val.position_independent() {
            return Err(vcode::PersistError::NotPersistable(
                "classifier uses absolute-address dispatch tables",
            ));
        }
        Ok(vcode::Artifact {
            target: TargetId::X64,
            args: 0,
            insns: val.vcode_insns,
            key: key.content().to_vec(),
            meta: val.meta_blob(),
            code: val.code_bytes().to_vec(),
        })
    }

    fn from_artifact(
        &self,
        artifact: &vcode::Artifact,
    ) -> Result<Arc<CompiledSet>, vcode::PersistError> {
        vcode::persist::redecode(&artifact.code, &vcode_x64::declen::Decoder)?;
        let strategies = CompiledSet::meta_parse(&artifact.meta).ok_or(
            vcode::PersistError::Malformed("classifier strategy meta blob"),
        )?;
        let set = CompiledSet::adopt(&artifact.code, strategies, artifact.insns)
            .map_err(|e| vcode::PersistError::Revalidation(e.to_string()))?;
        Ok(Arc::new(set))
    }
}

fn persist_slot() -> &'static OnceLock<Arc<vcode::DiskTier<CompiledSet>>> {
    static TIER: OnceLock<Arc<vcode::DiskTier<CompiledSet>>> = OnceLock::new();
    &TIER
}

/// Attaches a persistent L2 tier for compiled classifiers under `dir`:
/// cache misses in [`Dpf::compile`] and the [`DpfService`] warm path
/// probe the disk tier before compiling, and successful compiles
/// store through. First call wins (`false` afterwards).
///
/// # Errors
///
/// [`vcode::PersistError::Io`] when the directory cannot be created.
pub fn enable_persist(dir: impl Into<std::path::PathBuf>) -> Result<bool, vcode::PersistError> {
    let tier = vcode::DiskTier::new(dir, Box::new(SetCodec))?;
    Ok(persist_slot().set(Arc::new(tier)).is_ok())
}

/// The classifier persistent tier, if [`enable_persist`] was called.
pub fn persist_tier() -> Option<&'static Arc<vcode::DiskTier<CompiledSet>>> {
    persist_slot().get()
}

/// Probes the persistent tier for `key`; any [`vcode::PersistError`] is
/// a counted, silent miss (fresh compile follows).
fn l2_load(key: &CacheKey) -> Option<Arc<CompiledSet>> {
    let tier = persist_tier()?;
    vcode::CacheTier::load(&**tier, key).ok().flatten()
}

/// Best-effort store-through to the persistent tier.
fn l2_store(key: &CacheKey, set: &Arc<CompiledSet>) {
    if let Some(tier) = persist_tier() {
        let _ = vcode::CacheTier::store(&**tier, key, set);
    }
}

/// L2 probe that also installs the loaded set into the in-memory cache
/// (so subsequent peeks hit L1). The service's warm-key republish path
/// uses this: a process restart with a populated artifact directory
/// then serves native code without ever compiling.
pub(crate) fn l2_fetch_into_l1(key: &CacheKey) -> Option<Arc<CompiledSet>> {
    let set = l2_load(key)?;
    classifier_cache()
        .get_or_insert_with(key.clone(), || {
            Ok::<_, std::convert::Infallible>(Arc::clone(&set))
        })
        .ok()
}

/// Which engine a [`Dpf`] is classifying with after
/// [`compile`](Dpf::compile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// Dynamically generated native code (the fast path).
    Native,
    /// The MPF bytecode interpreter, engaged because code generation
    /// failed (graceful degradation).
    Interpreter,
}

/// Why [`Dpf::try_classify`] has no engine matching the resident
/// filter set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClassifyError {
    /// No compile has been attempted since construction.
    NeverCompiled,
    /// Filters changed since the last compile: the compiled code would
    /// classify against the *old* set (stale positives/negatives).
    Stale {
        /// Filters inserted since the last compile.
        inserts: u32,
        /// Filters removed since the last compile.
        removes: u32,
    },
}

impl std::fmt::Display for ClassifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClassifyError::NeverCompiled => write!(f, "classifier never compiled"),
            ClassifyError::Stale { inserts, removes } => write!(
                f,
                "classifier stale: {inserts} insert(s) and {removes} remove(s) since last compile"
            ),
        }
    }
}

impl std::error::Error for ClassifyError {}

/// The dynamically compiled demultiplexer.
///
/// Filters are inserted and removed at runtime; [`Dpf::compile`] merges
/// the resident set into a trie and generates a native classifier.
/// Insertion/removal invalidates the compiled code until the next
/// `compile` (the paper's system recompiled on installation into the
/// kernel) — but classification never panics and never serves a stale
/// set: between a filter change and the next compile,
/// [`classify`](Dpf::classify) runs the resident [`Mpf`] interpreter, kept
/// in sync on every insert/remove. [`try_classify`](Dpf::try_classify)
/// is the strict variant that reports staleness as a typed error
/// instead of degrading. For filter updates under live traffic with no
/// interpreter window at all, use [`service::DpfService`].
#[derive(Debug, Default)]
pub struct Dpf {
    filters: Vec<(u32, Filter)>,
    next_id: u32,
    opts: Options,
    compiled: Option<Arc<CompiledSet>>,
    /// Resident interpreter, kept in sync with `filters` on every
    /// insert/remove (ids match the compiled engine's): classification
    /// always has a correct engine to run on.
    resident: Mpf,
    /// The last compile degraded to the interpreter (codegen failed or
    /// an async build is still in flight).
    degraded: bool,
    /// Filters inserted/removed since the last compile attempt; nonzero
    /// means `compiled`/`degraded` no longer describe `filters`.
    stale_inserts: u32,
    /// See `stale_inserts`.
    stale_removes: u32,
    /// A compile has been attempted at least once.
    ever_compiled: bool,
    /// Cache key of an in-flight [`compile_async`](Dpf::compile_async)
    /// build; [`poll_upgrade`](Dpf::poll_upgrade) watches it.
    pending: Option<CacheKey>,
}

impl Dpf {
    /// Creates an empty engine with default compilation options.
    pub fn new() -> Dpf {
        Dpf::default()
    }

    /// Creates an engine with explicit dispatch-strategy options (the
    /// ablation knobs).
    pub fn with_options(opts: Options) -> Dpf {
        Dpf {
            opts,
            ..Dpf::default()
        }
    }

    /// Installs a filter, returning its id. Invalidates compiled code;
    /// until the next compile, classification runs the resident
    /// interpreter over the *new* set (the freshly inserted filter
    /// matches immediately).
    pub fn insert(&mut self, f: Filter) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        self.resident.insert_as(id, &f);
        self.filters.push((id, f));
        self.compiled = None;
        self.degraded = false;
        self.pending = None;
        self.stale_inserts += 1;
        id
    }

    /// Removes a filter by id; returns whether it existed. Invalidates
    /// compiled code; until the next compile, classification runs the
    /// resident interpreter over the *new* set — the removed id is
    /// never returned again (no stale positives).
    pub fn remove(&mut self, id: u32) -> bool {
        let n = self.filters.len();
        self.filters.retain(|(i, _)| *i != id);
        let removed = self.filters.len() != n;
        if removed {
            self.resident.remove(id);
            self.compiled = None;
            self.degraded = false;
            self.pending = None;
            self.stale_removes += 1;
        }
        removed
    }

    /// Number of resident filters.
    pub fn len(&self) -> usize {
        self.filters.len()
    }

    /// `true` when no filters are installed.
    pub fn is_empty(&self) -> bool {
        self.filters.is_empty()
    }

    /// Merges the resident filters and generates the native classifier,
    /// degrading gracefully when generation fails.
    ///
    /// The ladder: on a storage [`Overflow`](vcode::Error::Overflow)
    /// the compile is retried once with a doubled buffer; if generation
    /// still fails (or executable memory cannot be obtained at all),
    /// the engine falls back to the MPF bytecode interpreter over the
    /// same filter set — classification keeps working, only slower.
    /// [`engine`](Self::engine) reports which path is active.
    ///
    /// Note one semantic caveat of degraded mode: the compiled trie
    /// resolves overlapping filters by longest match, the interpreter
    /// by first match. Disjoint filter sets (the common demultiplexing
    /// case) classify identically on both.
    ///
    /// # Errors
    ///
    /// [`CompileError`] only if even the interpreter cannot be built —
    /// which cannot currently happen, so callers may treat `Ok` as
    /// "classification is available".
    pub fn compile(&mut self) -> Result<(), CompileError> {
        self.pending = None;
        // An explicit code_capacity is a harness knob (fault injection /
        // overflow drills): those compiles are bespoke, never cached.
        // The cached path waits boundedly on a racing build: a stalled
        // `Building` slot (builder died without unwinding) degrades to
        // the interpreter like any other generation failure instead of
        // blocking the caller forever.
        let compiled = if self.opts.code_capacity.is_some() {
            let root = trie::build(&self.filters);
            compile_with_retry(&root, self.opts)
                .map(Arc::new)
                .map_err(CacheError::Build)
        } else {
            let cache = classifier_cache();
            let key = self.cache_key();
            let l2_key = key.clone();
            cache.get_or_build(
                key,
                || {
                    // L1 missed: a valid persisted artifact (L2) skips
                    // trie construction and codegen entirely; errors
                    // fall through to a fresh compile.
                    if let Some(set) = l2_load(&l2_key) {
                        return Ok(set);
                    }
                    let root = trie::build(&self.filters);
                    let set = compile_with_retry(&root, self.opts).map(Arc::new)?;
                    l2_store(&l2_key, &set);
                    Ok(set)
                },
                cache.stall_timeout(),
            )
        };
        self.ever_compiled = true;
        self.stale_inserts = 0;
        self.stale_removes = 0;
        match compiled {
            Ok(set) => {
                self.compiled = Some(set);
                self.degraded = false;
                Ok(())
            }
            Err(_) => {
                // Degrade: the resident interpreter already holds the
                // same filters, preserving ids.
                self.compiled = None;
                self.degraded = true;
                Ok(())
            }
        }
    }

    /// Compiles the resident filters bypassing the process-wide cache
    /// (always a cold compile, and the result is not shared). Same
    /// degradation ladder as [`compile`](Self::compile); benchmarks use
    /// this for the cold side of the amortization table.
    ///
    /// # Errors
    ///
    /// [`CompileError`] only if even the interpreter cannot be built —
    /// which cannot currently happen (see [`compile`](Self::compile)).
    pub fn compile_uncached(&mut self) -> Result<(), CompileError> {
        self.pending = None;
        self.ever_compiled = true;
        self.stale_inserts = 0;
        self.stale_removes = 0;
        let root = trie::build(&self.filters);
        match compile_with_retry(&root, self.opts) {
            Ok(set) => {
                self.compiled = Some(Arc::new(set));
                self.degraded = false;
                Ok(())
            }
            Err(_) => {
                self.compiled = None;
                self.degraded = true;
                Ok(())
            }
        }
    }

    /// Serve-while-compiling: classification is available the moment
    /// this returns, with codegen moved off the calling thread.
    ///
    /// A warm cache key returns the native classifier immediately
    /// ([`ServeMode::Native`]). Otherwise the build is handed to the
    /// process-wide [`classifier_service`] and the engine serves the MPF
    /// interpreter over the same filters (same ids) meanwhile — call
    /// [`poll_upgrade`](Self::poll_upgrade) to adopt the native code
    /// once it publishes. Shed and quarantined submits also serve the
    /// interpreter; the returned mode says why nothing was enqueued.
    ///
    /// A bespoke `code_capacity` (harness knob) compiles synchronously,
    /// exactly like [`compile`](Self::compile), and reports `Native` or
    /// `Shed` (degraded, nothing enqueued).
    pub fn compile_async(&mut self) -> ServeMode {
        if self.opts.code_capacity.is_some() {
            // Bespoke compiles never go through the shared cache.
            let _ = self.compile();
            return if self.compiled.is_some() {
                ServeMode::Native
            } else {
                ServeMode::Shed
            };
        }
        self.pending = None;
        self.ever_compiled = true;
        self.stale_inserts = 0;
        self.stale_removes = 0;
        let key = self.cache_key();
        let filters = self.filters.clone();
        let opts = self.opts;
        let submit = classifier_service().submit(key.clone(), move || {
            let root = trie::build(&filters);
            compile_with_retry(&root, opts)
                .map(Arc::new)
                .map_err(|e| e.to_string())
        });
        let mode = match submit {
            Submit::Ready(set) => {
                self.compiled = Some(set);
                self.degraded = false;
                return ServeMode::Native;
            }
            Submit::Queued | Submit::InFlight => ServeMode::Building,
            Submit::Shed => ServeMode::Shed,
            Submit::Quarantined { retry_in, failures } => {
                ServeMode::Quarantined { retry_in, failures }
            }
        };
        // Serve the resident interpreter until the build publishes.
        self.compiled = None;
        self.degraded = true;
        self.pending = Some(key);
        mode
    }

    /// Adopts the native classifier if the background build from
    /// [`compile_async`](Self::compile_async) has published. Returns
    /// whether classification is native *after* the call; cheap enough
    /// to poll per batch.
    pub fn poll_upgrade(&mut self) -> bool {
        if self.compiled.is_some() {
            return true;
        }
        // `pending` is cleared on every insert/remove, so a published
        // build can never be adopted over a *changed* filter set: the
        // stale-generation assumption is confined to the key we
        // actually submitted.
        let Some(key) = self.pending.as_ref() else {
            return false;
        };
        match classifier_cache().peek(key) {
            Some(set) => {
                self.compiled = Some(set);
                self.degraded = false;
                self.pending = None;
                true
            }
            None => false,
        }
    }

    /// Content key of the resident configuration (see [`cache_key`]).
    fn cache_key(&self) -> CacheKey {
        cache_key(&self.filters, self.opts)
    }

    /// Classifies a message: compiled engine when current, otherwise
    /// the resident [`Mpf`] interpreter (which is kept in sync on every
    /// insert/remove). Never panics and never consults a stale compiled
    /// set — after a `remove` without recompile, the removed id is not
    /// returned. Use [`try_classify`](Self::try_classify) to observe
    /// staleness as a typed error instead of degrading.
    #[inline]
    pub fn classify(&self, msg: &[u8]) -> Option<u32> {
        if let Some(set) = self.compiled.as_ref() {
            return set.classify(msg);
        }
        self.resident.classify(msg)
    }

    /// Strict classification: `Err` when no engine matches the resident
    /// filter set (never compiled, or filters changed since the last
    /// compile), instead of silently running the interpreter.
    ///
    /// # Errors
    ///
    /// [`ClassifyError::NeverCompiled`] before the first compile
    /// attempt; [`ClassifyError::Stale`] when filters changed since the
    /// last one.
    #[inline]
    pub fn try_classify(&self, msg: &[u8]) -> Result<Option<u32>, ClassifyError> {
        if let Some(set) = self.compiled.as_ref() {
            return Ok(set.classify(msg));
        }
        if self.degraded {
            return Ok(self.resident.classify(msg));
        }
        if self.ever_compiled {
            Err(ClassifyError::Stale {
                inserts: self.stale_inserts,
                removes: self.stale_removes,
            })
        } else {
            Err(ClassifyError::NeverCompiled)
        }
    }

    /// Classifies a batch of messages, amortizing the engine dispatch
    /// over the whole slice. Same engine choice as
    /// [`classify`](Self::classify).
    pub fn classify_batch(&self, msgs: &[&[u8]]) -> Vec<Option<u32>> {
        let mut out = Vec::with_capacity(msgs.len());
        match self.compiled.as_ref() {
            Some(set) => out.extend(msgs.iter().map(|m| set.classify(m))),
            None => out.extend(msgs.iter().map(|m| self.resident.classify(m))),
        }
        out
    }

    /// `true` when filters changed since the last compile attempt (the
    /// compiled engine, if any, no longer describes the resident set).
    pub fn is_stale(&self) -> bool {
        self.stale_inserts != 0 || self.stale_removes != 0
    }

    /// The compiled classifier, if current.
    pub fn compiled(&self) -> Option<&CompiledSet> {
        self.compiled.as_deref()
    }

    /// Which engine classification runs on: `None` before
    /// [`compile`](Self::compile) (or after a filter change), otherwise
    /// native or degraded-interpreter.
    pub fn engine(&self) -> Option<EngineKind> {
        if self.compiled.is_some() {
            Some(EngineKind::Native)
        } else if self.degraded {
            Some(EngineKind::Interpreter)
        } else {
            None
        }
    }
}

/// Content key of a filter configuration: the exact (id, filter) list
/// plus the ablation knobs. Ids are part of the content — the generated
/// code returns them — so two sets with the same patterns but different
/// ids never alias; an explicit `code_capacity` is likewise encoded so
/// capacity-limited builds (the fault-injection knob) never alias
/// default-sized ones. The encoding is length-prefixed and tagged
/// (injective), and deliberately cheap: building this key is the whole
/// cost of a warm `compile()` hit.
pub(crate) fn cache_key(filters: &[(u32, Filter)], opts: Options) -> CacheKey {
    let mut bytes = Vec::with_capacity(16 + filters.len() * 64);
    bytes.push(u8::from(opts.use_jump_tables));
    bytes.push(u8::from(opts.use_hashing));
    bytes.push(u8::from(opts.elide_bounds_checks));
    match opts.code_capacity {
        None => bytes.push(0),
        Some(cap) => {
            bytes.push(1);
            bytes.extend_from_slice(&(cap as u64).to_le_bytes());
        }
    }
    for (id, f) in filters {
        bytes.extend_from_slice(&id.to_le_bytes());
        let atoms = f.atoms();
        bytes.extend_from_slice(&(atoms.len() as u32).to_le_bytes());
        for a in atoms {
            let (tag, offset, size, mask, last) = match *a {
                Atom::Cmp {
                    offset,
                    size,
                    mask,
                    value,
                } => (0u8, offset, size, mask, value),
                Atom::Shift {
                    offset,
                    size,
                    mask,
                    shift,
                } => (1u8, offset, size, mask, shift),
            };
            bytes.push(tag);
            bytes.extend_from_slice(&offset.to_le_bytes());
            bytes.push(size.bytes() as u8);
            bytes.extend_from_slice(&mask.to_le_bytes());
            bytes.extend_from_slice(&last.to_le_bytes());
        }
    }
    CacheKey::new(TargetId::X64, bytes)
}

/// Compiles a trie with the storage-overflow retry ladder: on a
/// [`vcode::Error::Overflow`] the compile is retried once with a doubled
/// buffer.
pub(crate) fn compile_with_retry(root: &Level, opts: Options) -> Result<CompiledSet, CompileError> {
    match compile::compile(root, opts) {
        Ok(set) => Ok(set),
        Err(CompileError::Codegen(vcode::Error::Overflow { capacity })) => {
            let retry = Options {
                code_capacity: Some(capacity.max(1) * 2),
                ..opts
            };
            compile::compile(root, retry)
        }
        Err(e) => Err(e),
    }
}

/// The PATHFINDER-style baseline: the same merged trie, *interpreted* —
/// each node examined by hashing into its cell index at runtime.
#[derive(Debug, Default)]
pub struct Pathfinder {
    filters: Vec<(u32, Filter)>,
    next_id: u32,
    trie: Level,
}

impl Pathfinder {
    /// Creates an empty engine.
    pub fn new() -> Pathfinder {
        Pathfinder::default()
    }

    /// Installs a filter, returning its id.
    pub fn insert(&mut self, f: Filter) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        self.filters.push((id, f));
        self.trie = trie::build(&self.filters);
        id
    }

    /// Removes a filter by id; returns whether it existed.
    pub fn remove(&mut self, id: u32) -> bool {
        let n = self.filters.len();
        self.filters.retain(|(i, _)| *i != id);
        let removed = self.filters.len() != n;
        if removed {
            self.trie = trie::build(&self.filters);
        }
        removed
    }

    /// Classifies a message by interpreting the trie.
    #[inline]
    pub fn classify(&self, msg: &[u8]) -> Option<u32> {
        self.trie.classify(msg, 0)
    }
}
