//! Hot-path demux kernels in recorded [`Program`] IR — the tier-2
//! recompilation corpus for the DPF side of the workspace.
//!
//! The real DPF engine (see [`crate::compile`]) emits straight through
//! `Assembler<X64>`, exactly as the paper describes. What tiered
//! recompilation needs from this crate is the *shape* of demux work in
//! the engine's replayable IR: compare-ladder classifiers that run on
//! every packet, written with the redundancy a naive filter frontend
//! leaves behind (per-arm re-normalization of the scrutinee, copies,
//! identity arithmetic, re-stored constants). Tier-1 transliterates that
//! redundancy into the code; tier-2 folds it away — these kernels are
//! what the `tier2` bench and the cycle-reduction CI gate measure.

use vcode::engine::Program;
use vcode::{BinOp, Cond, UnOp};

/// A demux compare-ladder over one header word: `arms` resident
/// filters, each checking the scrutinee against its constant and
/// returning the filter id on match; 0 falls through as "no filter".
///
/// Written naively on purpose: every arm re-derives the scrutinee
/// through a copy chain and an identity normalization (`& -1`,
/// `addi 0`) and re-stores the miss marker, the way per-filter
/// template emission does before any cross-arm cleanup.
pub fn demux_ladder(arms: u8) -> Program {
    let mut p = Program::new(1).unwrap();
    let exit = p.genlabel();
    p.set(1, 0); // result: no-match marker
    for k in 0..arms {
        let next = p.genlabel();
        p.un(UnOp::Mov, 2, 0); // re-derive the scrutinee…
        p.un(UnOp::Mov, 3, 2); // …through a copy chain
        p.bin_imm(BinOp::And, 3, 3, -1); // identity normalization
        p.bin_imm(BinOp::Add, 3, 3, 0); // identity offset
        p.set(1, 0); // re-store the miss marker
        p.br_imm(Cond::Ne, 3, arm_key(k), next);
        p.set(1, i32::from(k) + 1);
        p.jmp(exit);
        p.label(next);
    }
    p.label(exit);
    p.ret(1);
    p
}

/// The constant filter key for arm `k` (stable across tiers and runs).
pub fn arm_key(k: u8) -> i32 {
    0x1000 + i32::from(k) * 37
}

/// A per-packet classification loop: classify `count` synthetic headers
/// (derived from a rolling seed) through an `arms`-deep inline ladder
/// and accumulate matched ids. This is the steady-state demux loop a
/// server runs per batch — the heat that triggers tier-2.
pub fn demux_loop(arms: u8) -> Program {
    // args: v0 = count, v1 = seed
    let mut p = Program::new(2).unwrap();
    let top = p.genlabel();
    let done = p.genlabel();
    p.set(2, 0); // acc
    p.un(UnOp::Mov, 3, 0); // i = count
    p.label(top);
    p.br_imm(Cond::Le, 3, 0, done);
    // header = (seed ^ i) re-derived with naive redundancy each packet
    p.bin(BinOp::Xor, 4, 1, 3);
    p.un(UnOp::Mov, 5, 4);
    p.bin_imm(BinOp::Mul, 5, 5, 1); // identity
    p.bin_imm(BinOp::And, 5, 5, 0xff); // field extract
    let exit = p.genlabel();
    for k in 0..arms {
        let next = p.genlabel();
        p.un(UnOp::Mov, 6, 5); // per-arm copy of the field
        p.bin_imm(BinOp::Add, 6, 6, 0); // identity offset
        p.br_imm(Cond::Ne, 6, (i32::from(k) * 17) & 0xff, next);
        p.bin_imm(BinOp::Add, 2, 2, i32::from(k) + 1);
        p.jmp(exit);
        p.label(next);
    }
    p.label(exit);
    p.bin_imm(BinOp::Sub, 3, 3, 1);
    p.jmp(top);
    p.label(done);
    p.ret(2);
    p
}

/// The demux corpus: `(name, program, representative hot input)`.
pub fn corpus() -> Vec<(&'static str, Program, Vec<i32>)> {
    vec![
        ("dpf/ladder8", demux_ladder(8), vec![arm_key(5)]),
        ("dpf/ladder16", demux_ladder(16), vec![arm_key(11)]),
        ("dpf/loop4x64", demux_loop(4), vec![64, 0x5ead]),
        ("dpf/loop8x32", demux_loop(8), vec![32, 0x0dd5]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_classifies_by_key() {
        let p = demux_ladder(8);
        assert_eq!(p.interpret(&[arm_key(0)], 100_000).unwrap(), 1);
        assert_eq!(p.interpret(&[arm_key(7)], 100_000).unwrap(), 8);
        assert_eq!(p.interpret(&[12345], 100_000).unwrap(), 0);
    }

    #[test]
    fn loop_accumulates_and_terminates() {
        let p = demux_loop(4);
        let a = p.interpret(&[64, 0x5ead], 1_000_000).unwrap();
        let b = p.interpret(&[64, 0x5ead], 1_000_000).unwrap();
        assert_eq!(a, b, "deterministic");
        assert_eq!(p.interpret(&[0, 1], 100_000).unwrap(), 0);
    }

    #[test]
    fn corpus_runs_under_interpreter_fuel() {
        for (name, p, input) in corpus() {
            p.interpret(&input, 5_000_000)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
}
