//! Concurrent install/remove-under-traffic stress tests for
//! [`dpf::DpfService`]: readers must observe only complete generations
//! (never a torn swap that drops a stable filter), a removed id must
//! never be returned by a classification that started after `remove`
//! returned, and batches must be served by a single generation.

use dpf::packet::{self, PacketSpec};
use dpf::{ClassifyError, Dpf, DpfService};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn port_msg(port: u16) -> Vec<u8> {
    packet::build(&PacketSpec {
        dst_port: port,
        ..PacketSpec::default()
    })
}

const DST_IP: u32 = 0x0a00_0002;

/// The headline interleaving test: a writer storms insert/remove on one
/// "churn" port while readers hammer classification on a stable filter
/// set and the churn port, batched and unbatched, checking three
/// invariants on every observation:
///
/// 1. **No torn swap** — every stable port classifies to its exact id
///    in every generation, native or interpreter.
/// 2. **No stale positive** — a churn id whose `remove` returned before
///    the read began is never returned.
/// 3. **Untorn batches** — a batch mixing stable ports is answered by
///    one generation, and the observed generation sequence never goes
///    backwards on a single reader.
#[test]
fn install_remove_under_traffic() {
    const STABLE: u16 = 8;
    const ROUNDS: u64 = 40;
    const READERS: usize = 3;
    const CHURN_PORT: u16 = 6000;

    let svc = Arc::new(DpfService::new());
    let stable_ids: Vec<u32> = packet::port_filter_set(STABLE, 5000)
        .into_iter()
        .map(|f| svc.insert(f))
        .collect();

    // Highest churn id whose removal has been published (plus one; 0 =
    // none yet). Any classification started after the store must not
    // return an id <= this floor (ids are never reused).
    let removed_floor = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    let writer = {
        let svc = Arc::clone(&svc);
        let removed_floor = Arc::clone(&removed_floor);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            for _ in 0..ROUNDS {
                let id = svc.insert(packet::tcp_port_filter(DST_IP, CHURN_PORT).unwrap());
                // Let traffic see the new filter (and often the native
                // upgrade) before tearing it back down.
                std::thread::sleep(Duration::from_micros(300));
                assert!(svc.remove(id));
                // `remove` has returned: the id is gone from the
                // published generation.
                removed_floor.store(u64::from(id) + 1, Ordering::SeqCst);
                std::thread::sleep(Duration::from_micros(100));
            }
            done.store(true, Ordering::SeqCst);
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let svc = Arc::clone(&svc);
            let removed_floor = Arc::clone(&removed_floor);
            let done = Arc::clone(&done);
            let stable_ids = stable_ids.clone();
            std::thread::spawn(move || {
                let reader = svc.reader();
                let stable_msgs: Vec<Vec<u8>> = (0..STABLE).map(|i| port_msg(5000 + i)).collect();
                let churn_msg = port_msg(CHURN_PORT);
                let mut last_seq = 0u64;
                let mut i = r; // desynchronize readers
                while !done.load(Ordering::SeqCst) {
                    // Invariant 1: stable filters always classify.
                    let k = i % stable_msgs.len();
                    assert_eq!(
                        reader.classify(&stable_msgs[k]),
                        Some(stable_ids[k]),
                        "torn generation: stable filter missing"
                    );
                    // Invariant 2: no stale positives on the churn port.
                    let floor = removed_floor.load(Ordering::SeqCst);
                    if let Some(id) = reader.classify(&churn_msg) {
                        assert!(
                            u64::from(id) + 1 > floor,
                            "removed id {id} returned after its removal \
                             published (floor {floor})"
                        );
                    }
                    // Invariant 3: untorn, monotone batches.
                    if i % 7 == 0 {
                        let refs: Vec<&[u8]> = stable_msgs.iter().map(|m| m.as_slice()).collect();
                        let (seq, out) = reader.classify_batch_seq(&refs);
                        assert!(seq >= last_seq, "generation sequence went backwards");
                        last_seq = seq;
                        for (k, got) in out.iter().enumerate() {
                            assert_eq!(*got, Some(stable_ids[k]), "torn batch");
                        }
                    }
                    i += 1;
                }
            })
        })
        .collect();

    writer.join().expect("writer panicked");
    for r in readers {
        r.join().expect("reader panicked");
    }

    // Quiesce: the final set is just the stable filters; the churn id
    // stays gone and the service settles back to native code.
    assert!(
        svc.flush(Duration::from_secs(20)),
        "final build never landed"
    );
    assert!(svc.is_native());
    let reader = svc.reader();
    assert_eq!(reader.classify(&port_msg(CHURN_PORT)), None);
    assert_eq!(reader.classify(&port_msg(5003)), Some(stable_ids[3]));
    let st = svc.stats();
    assert_eq!(st.seq, u64::from(STABLE) + 2 * ROUNDS);
    assert!(st.published >= st.seq, "every mutation published");
    // Retired generations drain once readers are quiescent.
    svc.poll_upgrade();
    assert_eq!(svc.stats().retired_backlog, 0, "reclaim stuck");
}

/// Readers registered while generations churn never block reclamation
/// forever, and dropping readers mid-storm is safe.
#[test]
fn reader_churn_during_updates() {
    let svc = Arc::new(DpfService::new());
    let done = Arc::new(AtomicBool::new(false));
    let writer = {
        let svc = Arc::clone(&svc);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            for _ in 0..30 {
                let id = svc.insert(packet::tcp_port_filter(DST_IP, 4000).unwrap());
                svc.remove(id);
            }
            done.store(true, Ordering::SeqCst);
        })
    };
    let spawners: Vec<_> = (0..2)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let msg = port_msg(4000);
                while !done.load(Ordering::SeqCst) {
                    // Fresh reader every iteration: registration,
                    // classification, deregistration all race the swaps.
                    let reader = svc.reader();
                    let _ = reader.classify(&msg);
                    let second = reader.clone();
                    let _ = second.classify_batch(&[msg.as_slice()]);
                }
            })
        })
        .collect();
    writer.join().expect("writer panicked");
    for s in spawners {
        s.join().expect("reader panicked");
    }
    svc.poll_upgrade();
    let st = svc.stats();
    assert_eq!(st.readers, 0);
    assert_eq!(st.retired_backlog, 0);
}

/// Satellite regression: the non-service `Dpf` no longer panics on a
/// stale or never-compiled set, and `remove` without recompile is not
/// a stale positive — the resident interpreter serves the new set.
#[test]
fn plain_dpf_stale_set_degrades_not_panics() {
    // Never compiled: classify is live (interpreter), try_classify is
    // a typed error.
    let mut d = Dpf::new();
    assert_eq!(d.classify(&port_msg(80)), None);
    assert_eq!(
        d.try_classify(&port_msg(80)),
        Err(ClassifyError::NeverCompiled)
    );
    let a = d.insert(packet::tcp_port_filter(DST_IP, 80).unwrap());
    let b = d.insert(packet::tcp_port_filter(DST_IP, 81).unwrap());
    assert_eq!(d.classify(&port_msg(80)), Some(a), "live before compile");
    assert_eq!(d.engine(), None, "no compile attempted yet");

    d.compile().expect("compiles");
    assert_eq!(d.classify(&port_msg(80)), Some(a));
    assert!(!d.is_stale());

    // The headline stale-positive bug: remove then classify without
    // recompile must not match the removed filter.
    assert!(d.remove(a));
    assert!(d.is_stale());
    assert!(d.compiled().is_none(), "stale compiled set dropped");
    assert_eq!(d.classify(&port_msg(80)), None, "stale positive");
    assert_eq!(d.classify(&port_msg(81)), Some(b), "survivor still matches");
    assert_eq!(
        d.try_classify(&port_msg(80)),
        Err(ClassifyError::Stale {
            inserts: 0,
            removes: 1,
        })
    );

    // Insert is just as live, and the stale counters accumulate.
    let c = d.insert(packet::tcp_port_filter(DST_IP, 82).unwrap());
    assert_eq!(d.classify(&port_msg(82)), Some(c));
    assert_eq!(
        d.try_classify(&port_msg(82)),
        Err(ClassifyError::Stale {
            inserts: 1,
            removes: 1,
        })
    );

    // Recompile restores the strict path.
    d.compile().expect("compiles");
    assert!(!d.is_stale());
    assert_eq!(d.try_classify(&port_msg(82)), Ok(Some(c)));
    assert_eq!(d.try_classify(&port_msg(80)), Ok(None));

    // Batch parity with single classification.
    let msgs = [port_msg(80), port_msg(81), port_msg(82)];
    let refs: Vec<&[u8]> = msgs.iter().map(|m| m.as_slice()).collect();
    assert_eq!(
        d.classify_batch(&refs),
        vec![None, Some(b), Some(c)],
        "batch parity"
    );
}
