//! Cross-engine agreement tests: DPF (compiled), MPF (bytecode) and
//! PATHFINDER (interpreted trie) must classify identically — and all
//! must agree with the filter language's reference semantics.

use dpf::mpf::Mpf;
use dpf::packet::{self, PacketSpec};
use dpf::{Dpf, FieldSize, Filter, FilterBuilder, Options, Pathfinder};
use vcode::regress::XorShift;

/// Runs all engines over a message set and asserts agreement with the
/// reference semantics (first-match for MPF; trie engines use
/// longest-match, so agreement is asserted only for disjoint sets).
fn check_all(filters: &[Filter], messages: &[Vec<u8>]) {
    let mut dpf = Dpf::new();
    let mut mpf = Mpf::new();
    let mut pf = Pathfinder::new();
    for f in filters {
        dpf.insert(f.clone());
        mpf.insert(f);
        pf.insert(f.clone());
    }
    dpf.compile().expect("compiles");
    for (k, msg) in messages.iter().enumerate() {
        let reference = filters
            .iter()
            .position(|f| f.matches(msg))
            .map(|i| i as u32);
        assert_eq!(mpf.classify(msg), reference, "mpf msg {k}");
        assert_eq!(pf.classify(msg), reference, "pathfinder msg {k}");
        assert_eq!(dpf.classify(msg), reference, "dpf msg {k}");
    }
}

#[test]
fn ten_tcp_filters_table3_setup() {
    let filters = packet::port_filter_set(10, 1000);
    let mut msgs = Vec::new();
    for port in 990..1020 {
        msgs.push(packet::build(&PacketSpec {
            dst_port: port,
            ..PacketSpec::default()
        }));
    }
    // Non-TCP, non-IP, wrong dst.
    msgs.push(packet::build(&PacketSpec {
        proto: packet::IPPROTO_UDP,
        dst_port: 1005,
        ..PacketSpec::default()
    }));
    msgs.push(packet::build(&PacketSpec {
        dst_ip: 0x0a00_0003,
        dst_port: 1005,
        ..PacketSpec::default()
    }));
    let mut arp = msgs[0].clone();
    arp[12] = 0x08;
    arp[13] = 0x06;
    msgs.push(arp);
    check_all(&filters, &msgs);
}

#[test]
fn truncated_messages_never_match_or_crash() {
    let filters = packet::port_filter_set(4, 80);
    let full = packet::build(&PacketSpec {
        dst_port: 81,
        ..PacketSpec::default()
    });
    let mut msgs: Vec<Vec<u8>> = (0..full.len()).map(|n| full[..n].to_vec()).collect();
    msgs.push(full);
    check_all(&filters, &msgs);
}

#[test]
fn empty_message() {
    let filters = packet::port_filter_set(2, 7);
    check_all(&filters, &[vec![]]);
}

#[test]
fn two_filters_linear_dispatch() {
    let filters = packet::port_filter_set(2, 5000);
    let msgs: Vec<Vec<u8>> = (4998..5004)
        .map(|p| {
            packet::build(&PacketSpec {
                dst_port: p,
                ..PacketSpec::default()
            })
        })
        .collect();
    check_all(&filters, &msgs);
}

#[test]
fn sparse_ports_use_bst_dispatch() {
    let ports = [7u16, 113, 1999, 8080, 17000, 40000];
    let filters: Vec<Filter> = ports
        .iter()
        .map(|&p| packet::tcp_port_filter(0x0a00_0002, p).unwrap())
        .collect();
    let mut dpf = Dpf::new();
    for f in &filters {
        dpf.insert(f.clone());
    }
    dpf.compile().unwrap();
    assert!(dpf.compiled().unwrap().strategies.bst >= 1);
    let mut msgs = Vec::new();
    for p in [7u16, 8, 113, 8080, 40000, 40001, 12345] {
        msgs.push(packet::build(&PacketSpec {
            dst_port: p,
            ..PacketSpec::default()
        }));
    }
    check_all(&filters, &msgs);
}

#[test]
fn dense_ports_use_jump_table() {
    let filters = packet::port_filter_set(10, 1000);
    let mut dpf = Dpf::new();
    for f in &filters {
        dpf.insert(f.clone());
    }
    dpf.compile().unwrap();
    let s = dpf.compiled().unwrap().strategies;
    assert_eq!(s.table, 1, "dense 10-port set dispatches indirectly: {s:?}");
    // All ten still classify correctly through the table.
    for (i, _) in filters.iter().enumerate() {
        let msg = packet::build(&PacketSpec {
            dst_port: 1000 + i as u16,
            ..PacketSpec::default()
        });
        assert_eq!(dpf.classify(&msg), Some(i as u32));
    }
    // And a port inside the table's range with no filter fails.
    let msg = packet::build(&PacketSpec {
        dst_port: 1010,
        ..PacketSpec::default()
    });
    assert_eq!(dpf.classify(&msg), None);
}

#[test]
fn many_sparse_ports_use_perfect_hash() {
    let mut rng = XorShift::new(42);
    let mut ports: Vec<u16> = Vec::new();
    while ports.len() < 24 {
        let p = rng.range(1, 60000) as u16;
        // Keep the set sparse so the jump-table heuristic rejects it.
        if !ports.contains(&p) {
            ports.push(p);
        }
    }
    let filters: Vec<Filter> = ports
        .iter()
        .map(|&p| packet::tcp_port_filter(0x0a00_0002, p).unwrap())
        .collect();
    let mut dpf = Dpf::new();
    for f in &filters {
        dpf.insert(f.clone());
    }
    dpf.compile().unwrap();
    let s = dpf.compiled().unwrap().strategies;
    assert_eq!(s.hash, 1, "24 sparse keys hash-dispatch: {s:?}");
    for (i, &p) in ports.iter().enumerate() {
        let msg = packet::build(&PacketSpec {
            dst_port: p,
            ..PacketSpec::default()
        });
        assert_eq!(dpf.classify(&msg), Some(i as u32), "port {p}");
    }
    // Random non-resident ports must miss.
    for _ in 0..200 {
        let p = rng.range(1, 60000) as u16;
        if ports.contains(&p) {
            continue;
        }
        let msg = packet::build(&PacketSpec {
            dst_port: p,
            ..PacketSpec::default()
        });
        assert_eq!(dpf.classify(&msg), None, "port {p}");
    }
}

#[test]
fn variable_length_headers_with_shift() {
    let filters = vec![
        packet::tcp_port_filter_var_ihl(80).unwrap(),
        packet::tcp_port_filter_var_ihl(443).unwrap(),
    ];
    let mut msgs = Vec::new();
    for port in [80u16, 443, 81] {
        let p = packet::build(&PacketSpec {
            dst_port: port,
            ..PacketSpec::default()
        });
        msgs.push(p.clone());
        // Stretched IP header (IHL = 6).
        let mut q = p;
        q[14] = 0x46;
        for _ in 0..4 {
            q.insert(34, 0);
        }
        msgs.push(q);
    }
    // Truncation around the shifted load.
    let base = msgs[0].clone();
    for cut in 30..base.len() {
        msgs.push(base[..cut].to_vec());
    }
    check_all(&filters, &msgs);
}

#[test]
fn masked_dispatch() {
    // Dispatch on the IP version nibble.
    let v4 = FilterBuilder::new()
        .masked(14, FieldSize::U8, 0xf0, 0x40)
        .build()
        .unwrap();
    let v6 = FilterBuilder::new()
        .masked(14, FieldSize::U8, 0xf0, 0x60)
        .build()
        .unwrap();
    let mut m4 = vec![0u8; 20];
    m4[14] = 0x45;
    let mut m6 = vec![0u8; 20];
    m6[14] = 0x60;
    let mut m0 = vec![0u8; 20];
    m0[14] = 0x20;
    check_all(&[v4, v6], &[m4, m6, m0]);
}

#[test]
fn insert_remove_recompile() {
    let mut dpf = Dpf::new();
    let a = dpf.insert(packet::tcp_port_filter(0x0a00_0002, 80).unwrap());
    let b = dpf.insert(packet::tcp_port_filter(0x0a00_0002, 81).unwrap());
    dpf.compile().unwrap();
    let p80 = packet::build(&PacketSpec::default());
    assert_eq!(dpf.classify(&p80), Some(a));
    assert!(dpf.remove(a));
    assert!(dpf.compiled().is_none(), "removal invalidates code");
    dpf.compile().unwrap();
    assert_eq!(dpf.classify(&p80), None);
    let p81 = packet::build(&PacketSpec {
        dst_port: 81,
        ..PacketSpec::default()
    });
    assert_eq!(dpf.classify(&p81), Some(b));
    assert_eq!(dpf.len(), 1);
}

#[test]
fn ablation_options_disable_strategies() {
    let filters = packet::port_filter_set(10, 1000);
    let opts = Options {
        use_jump_tables: false,
        use_hashing: false,
        elide_bounds_checks: false,
        ..Options::default()
    };
    let mut dpf = Dpf::with_options(opts);
    for f in &filters {
        dpf.insert(f.clone());
    }
    dpf.compile().unwrap();
    let s = dpf.compiled().unwrap().strategies;
    assert_eq!(s.table, 0);
    assert_eq!(s.hash, 0);
    assert!(s.bst >= 1, "falls back to binary search: {s:?}");
    for i in 0..10u16 {
        let msg = packet::build(&PacketSpec {
            dst_port: 1000 + i,
            ..PacketSpec::default()
        });
        assert_eq!(dpf.classify(&msg), Some(u32::from(i)));
    }
}

#[test]
fn prefix_filter_longest_match_in_trie_engines() {
    let ip_only = FilterBuilder::new().eq_u16(12, 0x0800).build().unwrap();
    let f80 = packet::tcp_port_filter(0x0a00_0002, 80).unwrap();
    let mut dpf = Dpf::new();
    let id_ip = dpf.insert(ip_only);
    let id_80 = dpf.insert(f80);
    dpf.compile().unwrap();
    let p80 = packet::build(&PacketSpec::default());
    let p99 = packet::build(&PacketSpec {
        dst_port: 99,
        ..PacketSpec::default()
    });
    assert_eq!(dpf.classify(&p80), Some(id_80), "specific filter wins");
    assert_eq!(dpf.classify(&p99), Some(id_ip), "prefix is the fallback");
}

#[test]
fn fuzz_random_filters_and_messages_agree() {
    let mut rng = XorShift::new(7);
    for round in 0..30 {
        // Random small filters over a 64-byte message space, all with the
        // same atom shape so tries merge (disjointness for first-match
        // consistency is guaranteed by distinct first-atom values).
        let n = rng.range(1, 8) as usize;
        let mut vals: Vec<u8> = Vec::new();
        while vals.len() < n {
            let v = rng.next_u64() as u8;
            if !vals.contains(&v) {
                vals.push(v);
            }
        }
        let filters: Vec<Filter> = vals
            .iter()
            .map(|&v| {
                FilterBuilder::new()
                    .eq_u8(3, v)
                    .eq_u16(10, u16::from(v) ^ 0x55aa)
                    .build()
                    .unwrap()
            })
            .collect();
        let msgs: Vec<Vec<u8>> = (0..100)
            .map(|_| {
                let len = rng.below(64) as usize;
                let mut m = vec![0u8; len];
                rng.fill(&mut m);
                if len > 12 && rng.next_bool() {
                    // Bias toward near-matches.
                    let v = vals[rng.below(vals.len() as u64) as usize];
                    m[3] = v;
                    let w = (u16::from(v) ^ 0x55aa).to_be_bytes();
                    m[10] = w[0];
                    m[11] = w[1];
                }
                m
            })
            .collect();
        check_all(&filters, &msgs);
        let _ = round;
    }
}

#[test]
fn empty_filter_set_compiles_and_rejects() {
    let mut dpf = Dpf::new();
    dpf.compile().unwrap();
    assert!(dpf.is_empty());
    let msg = packet::build(&PacketSpec::default());
    assert_eq!(dpf.classify(&msg), None);
    assert_eq!(dpf.classify(&[]), None);
}

#[test]
fn large_mixed_filter_set_uses_multiple_strategies() {
    let mut rng = XorShift::new(99);
    let mut dpf = Dpf::new();
    let mut expected: Vec<(Vec<u8>, u32)> = Vec::new();
    // Dense port block → jump table.
    for i in 0..12u16 {
        let f = packet::tcp_port_filter(0x0a00_0002, 2000 + i).unwrap();
        let id = dpf.insert(f);
        let msg = packet::build(&PacketSpec {
            dst_port: 2000 + i,
            ..PacketSpec::default()
        });
        expected.push((msg, id));
    }
    // Sparse ports on a different dst IP → hash or bst under the same
    // shared prefix.
    let mut sparse: Vec<u16> = Vec::new();
    while sparse.len() < 20 {
        let p = rng.range(10_000, 60_000) as u16;
        if !sparse.contains(&p) {
            sparse.push(p);
        }
    }
    for &p in &sparse {
        let f = packet::tcp_port_filter(0x0a00_0003, p).unwrap();
        let id = dpf.insert(f);
        let msg = packet::build(&PacketSpec {
            dst_ip: 0x0a00_0003,
            dst_port: p,
            ..PacketSpec::default()
        });
        expected.push((msg, id));
    }
    // UDP filters, too.
    for i in 0..3u16 {
        let f = FilterBuilder::new()
            .eq_u16(12, 0x0800)
            .eq_u8(23, packet::IPPROTO_UDP)
            .eq_u16(36, 7000 + i)
            .build()
            .unwrap();
        let id = dpf.insert(f);
        let msg = packet::build(&PacketSpec {
            proto: packet::IPPROTO_UDP,
            dst_port: 7000 + i,
            ..PacketSpec::default()
        });
        expected.push((msg, id));
    }
    dpf.compile().unwrap();
    let s = dpf.compiled().unwrap().strategies;
    assert!(s.table >= 1, "{s:?}");
    assert!(s.hash + s.bst >= 1, "{s:?}");
    for (msg, id) in &expected {
        assert_eq!(dpf.classify(msg), Some(*id));
    }
    // Random traffic classifies without crashing, matching the reference.
    for _ in 0..500 {
        let msg = packet::build(&PacketSpec {
            dst_ip: if rng.next_bool() {
                0x0a00_0002
            } else {
                0x0a00_0003
            },
            dst_port: rng.next_u64() as u16,
            proto: if rng.below(10) < 8 {
                packet::IPPROTO_TCP
            } else {
                packet::IPPROTO_UDP
            },
            ..PacketSpec::default()
        });
        let _ = dpf.classify(&msg);
    }
}

#[test]
fn forced_codegen_failure_degrades_to_interpreter() {
    // A code capacity of 16 bytes cannot even hold the prologue: the
    // compile overflows, the doubled retry overflows too, and the
    // engine must degrade to the MPF interpreter — classification stays
    // correct (the filter set is disjoint, so first-match and
    // longest-match agree).
    let filters = packet::port_filter_set(6, 3000);
    let mut dpf = Dpf::with_options(dpf::Options {
        code_capacity: Some(16),
        ..dpf::Options::default()
    });
    let ids: Vec<u32> = filters.iter().map(|f| dpf.insert(f.clone())).collect();
    assert_eq!(dpf.engine(), None, "not compiled yet");
    dpf.compile().expect("degraded compile still succeeds");
    assert_eq!(dpf.engine(), Some(dpf::EngineKind::Interpreter));
    assert!(dpf.compiled().is_none());
    for (i, id) in ids.iter().enumerate() {
        let msg = packet::build(&PacketSpec {
            dst_port: 3000 + i as u16,
            ..PacketSpec::default()
        });
        assert_eq!(dpf.classify(&msg), Some(*id), "port {}", 3000 + i);
    }
    // Misses still miss, truncated packets still classify as no-match.
    let miss = packet::build(&PacketSpec {
        dst_port: 9999,
        ..PacketSpec::default()
    });
    assert_eq!(dpf.classify(&miss), None);
    assert_eq!(dpf.classify(&miss[..11]), None);
    assert_eq!(dpf.classify(&[]), None);
}

#[test]
fn overflow_retry_with_doubled_buffer_recovers() {
    // 2 KiB is too small for this set's first attempt but the doubled
    // retry fits: the ladder stops at Native without degrading.
    let filters = packet::port_filter_set(10, 1000);
    let mut dpf = Dpf::with_options(dpf::Options {
        code_capacity: Some(2048),
        ..dpf::Options::default()
    });
    let ids: Vec<u32> = filters.iter().map(|f| dpf.insert(f.clone())).collect();
    dpf.compile().expect("compiles");
    if dpf.engine() == Some(dpf::EngineKind::Native) {
        assert!(dpf.compiled().is_some());
    }
    for (i, id) in ids.iter().enumerate() {
        let msg = packet::build(&PacketSpec {
            dst_port: 1000 + i as u16,
            ..PacketSpec::default()
        });
        assert_eq!(dpf.classify(&msg), Some(*id));
    }
}

#[test]
fn normal_compile_reports_native_engine() {
    let mut dpf = Dpf::new();
    dpf.insert(packet::tcp_port_filter(0x0a00_0002, 80).unwrap());
    dpf.compile().unwrap();
    assert_eq!(dpf.engine(), Some(dpf::EngineKind::Native));
    // A filter change drops back to "must recompile".
    dpf.insert(packet::tcp_port_filter(0x0a00_0002, 81).unwrap());
    assert_eq!(dpf.engine(), None);
}

#[test]
fn sibling_shift_nodes_backtrack_with_clean_base() {
    // Two filters whose *first* atom is a Shift with different
    // parameters: the trie gets two shift siblings at the root. If the
    // first filter's deep compare fails, classification must backtrack
    // to the second with the base offset restored — a polluted base
    // would read the wrong byte.
    use dpf::Atom;
    // Filter 0: base += (msg[0] & 0x0f) << 2, then msg[base+0] == 0xAA.
    let f0 = dpf::Filter::new(vec![
        Atom::Shift {
            offset: 0,
            size: FieldSize::U8,
            mask: 0x0f,
            shift: 2,
        },
        Atom::Cmp {
            offset: 0,
            size: FieldSize::U8,
            mask: 0xff,
            value: 0xaa,
        },
    ])
    .unwrap();
    // Filter 1: base += (msg[1] & 0x07) << 1, then msg[base+0] == 0xBB.
    let f1 = dpf::Filter::new(vec![
        Atom::Shift {
            offset: 1,
            size: FieldSize::U8,
            mask: 0x07,
            shift: 1,
        },
        Atom::Cmp {
            offset: 0,
            size: FieldSize::U8,
            mask: 0xff,
            value: 0xbb,
        },
    ])
    .unwrap();
    // msg[0] = 2 → f0 base 8, msg[8] != 0xAA → f0 fails.
    // msg[1] = 3 → f1 base 6, msg[6] == 0xBB → f1 matches, but only if
    // the base was restored to 0 before f1's shift.
    let mut msg = vec![0u8; 16];
    msg[0] = 2;
    msg[1] = 3;
    msg[6] = 0xbb;
    msg[8] = 0x11;
    assert!(!f0.matches(&msg));
    assert!(f1.matches(&msg));
    check_all(&[f0, f1], &[msg]);
}

#[test]
fn serve_while_compiling_matches_native_bit_for_bit() {
    // The degradation-ladder contract: every answer served by the MPF
    // fallback while the native classifier builds in the background must
    // equal the answer the native code gives once it publishes.
    let filters = packet::port_filter_set(10, 7000);
    let mut dpf = Dpf::new();
    let ids: Vec<u32> = filters.iter().map(|f| dpf.insert(f.clone())).collect();
    let mut msgs: Vec<Vec<u8>> = (6995..7015)
        .map(|port| {
            packet::build(&PacketSpec {
                dst_port: port,
                ..PacketSpec::default()
            })
        })
        .collect();
    msgs.push(vec![0u8; 3]); // truncated: must match nothing on both engines
    let mode = dpf.compile_async();
    assert!(
        matches!(mode, vcode::ServeMode::Native | vcode::ServeMode::Building),
        "unexpected mode {mode:?}"
    );
    // Snapshot the answers from whatever tier is serving right now.
    let degraded: Vec<Option<u32>> = msgs.iter().map(|m| dpf.classify(m)).collect();
    assert_eq!(degraded[0], None, "port 6995 matches nothing");
    assert_eq!(degraded[5], Some(ids[0]), "port 7000 is filter 0");
    // Wait for the background build, upgrade, and re-ask natively.
    let t0 = std::time::Instant::now();
    while !dpf.poll_upgrade() {
        assert!(
            t0.elapsed() < std::time::Duration::from_secs(30),
            "native classifier never published"
        );
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert_eq!(dpf.engine(), Some(dpf::EngineKind::Native));
    let native: Vec<Option<u32>> = msgs.iter().map(|m| dpf.classify(m)).collect();
    assert_eq!(degraded, native, "fallback answers must match native");
}

#[test]
fn async_herd_compiles_once_and_everyone_serves() {
    // Many engines racing the same filter set through the async path:
    // classification works on every one immediately, and they all end up
    // sharing a single compiled classifier.
    let filters = packet::port_filter_set(4, 7600);
    let probe = packet::build(&PacketSpec {
        dst_port: 7602,
        ..PacketSpec::default()
    });
    let mut engines: Vec<Dpf> = (0..8)
        .map(|_| {
            let mut d = Dpf::new();
            for f in &filters {
                d.insert(f.clone());
            }
            let _ = d.compile_async();
            d
        })
        .collect();
    for (k, d) in engines.iter().enumerate() {
        assert_eq!(d.classify(&probe), Some(2), "engine {k} serves immediately");
    }
    let t0 = std::time::Instant::now();
    for d in &mut engines {
        while !d.poll_upgrade() {
            assert!(
                t0.elapsed() < std::time::Duration::from_secs(30),
                "no upgrade"
            );
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(d.classify(&probe), Some(2));
    }
    let native: Vec<_> = engines.iter().map(|d| d.compiled().unwrap()).collect();
    for w in native.windows(2) {
        assert!(
            std::ptr::eq(w[0], w[1]),
            "async herd must share one compiled set"
        );
    }
}
