//! # tcc — a small C compiler that generates code at runtime (paper §4.1)
//!
//! The paper's first experimental client is `tcc`, a C compiler using
//! VCODE as its abstract machine: "compilers can rely on it to emit code
//! efficiently while retaining sufficient control to perform many
//! optimizations … the use of VCODE has allowed us to isolate most
//! machine dependencies from the tcc compiler itself."
//!
//! This crate is that client for a C subset (`int`, `long`, `char`,
//! `double`, pointers; full statement forms; recursion): source text in,
//! directly executable native functions out — no external assembler,
//! linker, or process involved.
//!
//! ```
//! let prog = tcc::Program::compile(r"
//!     int fib(int n) {
//!         if (n < 2) return n;
//!         return fib(n - 1) + fib(n - 2);
//!     }
//! ")?;
//! assert_eq!(prog.call_int("fib", &[10])?, 55);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod codegen;
pub mod lex;
pub mod parse;

pub use codegen::CcError;
pub use lex::ParseError;
pub use parse::{CType, FnDef};

use codegen::{FnCg, FnSig};
use std::collections::HashMap;
use std::fmt;
use vcode_x64::{ExecCode, ExecMem};

/// A compiled translation unit: every function is native code in one
/// executable mapping, callable through [`Program::call_int`],
/// [`Program::call_f64`], or a raw typed pointer.
pub struct Program {
    _code: ExecCode,
    fns: HashMap<String, (FnSig, u64)>,
    _table: Box<[u64]>,
    /// Total machine-code bytes generated.
    pub code_len: usize,
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Program")
            .field("functions", &self.fns.keys().collect::<Vec<_>>())
            .field("code_len", &self.code_len)
            .finish()
    }
}

/// Error calling a compiled function through the checked helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CallError {
    /// No function with that name.
    Undefined(String),
    /// Wrong number of arguments.
    Arity {
        /// Expected count.
        expected: usize,
        /// Provided count.
        got: usize,
    },
    /// The helper's type shape does not match the function's signature.
    Signature(String),
}

impl fmt::Display for CallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CallError::Undefined(n) => write!(f, "no function named `{n}`"),
            CallError::Arity { expected, got } => {
                write!(f, "expected {expected} arguments, got {got}")
            }
            CallError::Signature(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CallError {}

impl Program {
    /// Compiles C source into native code.
    ///
    /// # Errors
    ///
    /// [`CcError`] on lexical, syntactic, semantic, or code-generation
    /// problems.
    pub fn compile(source: &str) -> Result<Program, CcError> {
        let defs = parse::parse(source)?;
        let mut fns: HashMap<String, FnSig> = HashMap::new();
        for (i, d) in defs.iter().enumerate() {
            let prev = fns.insert(
                d.name.clone(),
                FnSig {
                    index: i,
                    ret: d.ret.clone(),
                    params: d.params.iter().map(|(t, _)| t.clone()).collect(),
                },
            );
            if prev.is_some() {
                return Err(CcError::Sem {
                    func: d.name.clone(),
                    msg: "function defined twice".into(),
                });
            }
        }
        // One mapping for the whole unit; size generously relative to
        // the source (expression trees expand to a few instructions per
        // token, plus fixed prologue overhead per function).
        let est = 8192 + source.len() * 48 + defs.len() * 512;
        let mut mem = ExecMem::new(est).map_err(CcError::Exec)?;
        let base = mem.addr();
        let mut table: Box<[u64]> = vec![0u64; defs.len()].into_boxed_slice();
        let table_addr = table.as_ptr() as u64;
        let mut offsets = Vec::with_capacity(defs.len());
        let mut off = 0usize;
        for d in &defs {
            let chunk = &mut mem.as_mut_slice()[off..];
            let len = FnCg::compile(d, chunk, &fns, table_addr)?;
            offsets.push(off);
            off = (off + len).div_ceil(16) * 16;
        }
        for (i, &o) in offsets.iter().enumerate() {
            table[i] = base + o as u64;
        }
        let code = mem.finalize().map_err(CcError::Exec)?;
        let fns = fns
            .into_iter()
            .map(|(name, sig)| {
                let addr = base + offsets[sig.index] as u64;
                (name, (sig, addr))
            })
            .collect();
        Ok(Program {
            _code: code,
            fns,
            _table: table,
            code_len: off,
        })
    }

    /// Names of the compiled functions.
    pub fn functions(&self) -> impl Iterator<Item = &str> {
        self.fns.keys().map(String::as_str)
    }

    /// The native entry address of `name`, if defined.
    pub fn addr(&self, name: &str) -> Option<u64> {
        self.fns.get(name).map(|(_, a)| *a)
    }

    /// Reinterprets a compiled function as a typed function pointer.
    ///
    /// # Safety
    ///
    /// `F` must be an `extern "C"` fn-pointer type matching the C
    /// signature of `name`, and the [`Program`] must outlive all calls.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not defined.
    pub unsafe fn as_fn<F: Copy>(&self, name: &str) -> F {
        let addr = self.addr(name).expect("undefined function");
        assert_eq!(std::mem::size_of::<F>(), std::mem::size_of::<usize>());
        // SAFETY: size checked; ABI match is the caller's obligation.
        unsafe { std::mem::transmute_copy(&addr) }
    }

    /// Calls an integer-family function (params and return all
    /// `int`/`long`/`char`/pointer) with up to six arguments.
    ///
    /// # Errors
    ///
    /// [`CallError`] when the name, arity, or type shape does not match.
    pub fn call_int(&self, name: &str, args: &[i64]) -> Result<i64, CallError> {
        let (sig, addr) = self
            .fns
            .get(name)
            .ok_or_else(|| CallError::Undefined(name.to_owned()))?;
        if sig.params.len() != args.len() {
            return Err(CallError::Arity {
                expected: sig.params.len(),
                got: args.len(),
            });
        }
        if args.len() > 6 {
            return Err(CallError::Signature("more than 6 arguments".into()));
        }
        if sig.params.contains(&CType::Double) || sig.ret == CType::Double {
            return Err(CallError::Signature(format!(
                "`{name}` involves doubles; use call_f64 or as_fn"
            )));
        }
        let a = args;
        // SAFETY: integer-family C arguments all pass in the same
        // registers regardless of exact width; the generated code reads
        // only the meaningful low bits.
        let r = unsafe {
            match a.len() {
                0 => std::mem::transmute::<u64, extern "C" fn() -> i64>(*addr)(),
                1 => std::mem::transmute::<u64, extern "C" fn(i64) -> i64>(*addr)(a[0]),
                2 => std::mem::transmute::<u64, extern "C" fn(i64, i64) -> i64>(*addr)(a[0], a[1]),
                3 => std::mem::transmute::<u64, extern "C" fn(i64, i64, i64) -> i64>(*addr)(
                    a[0], a[1], a[2],
                ),
                4 => std::mem::transmute::<u64, extern "C" fn(i64, i64, i64, i64) -> i64>(*addr)(
                    a[0], a[1], a[2], a[3],
                ),
                5 => std::mem::transmute::<u64, extern "C" fn(i64, i64, i64, i64, i64) -> i64>(
                    *addr,
                )(a[0], a[1], a[2], a[3], a[4]),
                _ => {
                    std::mem::transmute::<u64, extern "C" fn(i64, i64, i64, i64, i64, i64) -> i64>(
                        *addr,
                    )(a[0], a[1], a[2], a[3], a[4], a[5])
                }
            }
        };
        // Narrow the result to the declared width.
        Ok(match sig.ret {
            CType::Int | CType::Char => i64::from(r as i32),
            _ => r,
        })
    }

    /// Calls an all-`double` function with up to four arguments.
    ///
    /// # Errors
    ///
    /// [`CallError`] when the name, arity, or type shape does not match.
    pub fn call_f64(&self, name: &str, args: &[f64]) -> Result<f64, CallError> {
        let (sig, addr) = self
            .fns
            .get(name)
            .ok_or_else(|| CallError::Undefined(name.to_owned()))?;
        if sig.params.len() != args.len() {
            return Err(CallError::Arity {
                expected: sig.params.len(),
                got: args.len(),
            });
        }
        if sig.params.iter().any(|t| *t != CType::Double) || sig.ret != CType::Double {
            return Err(CallError::Signature(format!(
                "`{name}` is not an all-double function"
            )));
        }
        let a = args;
        // SAFETY: all-double signatures pass in xmm registers; shape
        // verified above.
        let r = unsafe {
            match a.len() {
                0 => std::mem::transmute::<u64, extern "C" fn() -> f64>(*addr)(),
                1 => std::mem::transmute::<u64, extern "C" fn(f64) -> f64>(*addr)(a[0]),
                2 => std::mem::transmute::<u64, extern "C" fn(f64, f64) -> f64>(*addr)(a[0], a[1]),
                3 => std::mem::transmute::<u64, extern "C" fn(f64, f64, f64) -> f64>(*addr)(
                    a[0], a[1], a[2],
                ),
                4 => std::mem::transmute::<u64, extern "C" fn(f64, f64, f64, f64) -> f64>(*addr)(
                    a[0], a[1], a[2], a[3],
                ),
                _ => return Err(CallError::Signature("more than 4 arguments".into())),
            }
        };
        Ok(r)
    }
}
