//! Code generation: the C subset lowered to VCODE.
//!
//! This mirrors the paper's experience using VCODE as a compiler target
//! (§4.1): "compiling to VCODE has been easier than compiling to more
//! traditional RISC architectures … due both to the regularity of the
//! VCODE instruction set and to the fact that VCODE handles calling
//! conventions." The backend is a straightforward one-pass tree walk:
//! variables live in stack slots, expressions in allocator temporaries,
//! calls are marshaled with the `call_begin`/`call_arg`/`call_end`
//! interface, and inter-function references go through a function table
//! so forward references and recursion need no link step.

use crate::lex::ParseError;
use crate::parse::{CType, Expr, FnDef, Stmt};
use std::collections::HashMap;
use std::fmt;
use vcode::target::{JumpTarget, Leaf, StackSlot};
use vcode::{Assembler, Label, Reg, RegClass, Sig, Ty};
use vcode_x64::X64;

/// Compilation error.
#[derive(Debug)]
#[non_exhaustive]
pub enum CcError {
    /// Lexical/syntactic error.
    Parse(ParseError),
    /// Semantic error (undeclared names, type misuse, ...).
    Sem {
        /// Function the error is in.
        func: String,
        /// Description.
        msg: String,
    },
    /// An expression needed more registers than the machine has.
    TooComplex {
        /// Function the expression is in.
        func: String,
    },
    /// Backend code-generation error.
    Codegen(vcode::Error),
    /// Could not obtain executable memory.
    Exec(std::io::Error),
}

impl fmt::Display for CcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CcError::Parse(e) => write!(f, "{e}"),
            CcError::Sem { func, msg } => write!(f, "in `{func}`: {msg}"),
            CcError::TooComplex { func } => {
                write!(f, "in `{func}`: expression exhausted the register file")
            }
            CcError::Codegen(e) => write!(f, "{e}"),
            CcError::Exec(e) => write!(f, "executable memory: {e}"),
        }
    }
}

impl std::error::Error for CcError {}

impl From<ParseError> for CcError {
    fn from(e: ParseError) -> CcError {
        CcError::Parse(e)
    }
}

impl From<vcode::Error> for CcError {
    fn from(e: vcode::Error) -> CcError {
        CcError::Codegen(e)
    }
}

/// Signature info for the function table.
#[derive(Debug, Clone)]
pub struct FnSig {
    /// Index into the function table.
    pub index: usize,
    /// Return type.
    pub ret: CType,
    /// Parameter types.
    pub params: Vec<CType>,
}

fn vty(t: &CType) -> Ty {
    match t {
        CType::Int | CType::Char => Ty::I,
        CType::Long => Ty::L,
        CType::Double => Ty::D,
        CType::Ptr(_) | CType::Arr(..) => Ty::P,
        CType::Void => Ty::V,
    }
}

/// The vcode type used for a variable's stack slot (chars really occupy
/// one byte).
fn slot_ty(t: &CType) -> Ty {
    match t {
        CType::Char => Ty::C,
        other => vty(other),
    }
}

#[derive(Debug, Clone)]
struct VarInfo {
    slot: StackSlot,
    ty: CType,
}

/// An lvalue: somewhere a value can be stored.
enum Place {
    Slot(StackSlot, CType),
    /// Address in a register (owned; must be freed) + pointee type.
    Mem(Reg, CType),
}

fn expr_has_call(e: &Expr) -> bool {
    match e {
        Expr::Call(..) => true,
        Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => false,
        Expr::Assign(a, b) | Expr::OpAssign(_, a, b) | Expr::Bin(_, a, b) | Expr::Index(a, b) => {
            expr_has_call(a) || expr_has_call(b)
        }
        Expr::Un(_, a)
        | Expr::PreIncDec(_, a)
        | Expr::PostIncDec(_, a)
        | Expr::Deref(a)
        | Expr::Addr(a)
        | Expr::Cast(_, a) => expr_has_call(a),
    }
}

pub(crate) struct FnCg<'m, 'ctx> {
    a: Assembler<'m, X64>,
    name: String,
    ret: CType,
    scopes: Vec<HashMap<String, VarInfo>>,
    fns: &'ctx HashMap<String, FnSig>,
    table_addr: u64,
    loops: Vec<(Label, Label)>, // (continue target, break target)
}

type CcResult<T> = Result<T, CcError>;

impl<'m, 'ctx> FnCg<'m, 'ctx> {
    /// Compiles one function definition into `mem`, returning the number
    /// of bytes emitted.
    pub(crate) fn compile(
        def: &FnDef,
        mem: &'m mut [u8],
        fns: &'ctx HashMap<String, FnSig>,
        table_addr: u64,
    ) -> CcResult<usize> {
        let leaf = if def.body.iter().any(stmt_has_call) {
            Leaf::No
        } else {
            Leaf::Yes
        };
        let sig = Sig::new(
            def.params.iter().map(|(t, _)| vty(t)).collect(),
            vty(&def.ret),
        );
        let a = Assembler::<X64>::lambda_sig(mem, sig, leaf)?;
        let mut cg = FnCg {
            a,
            name: def.name.clone(),
            ret: def.ret.clone(),
            scopes: vec![HashMap::new()],
            fns,
            table_addr,
            loops: Vec::new(),
        };
        // Home every parameter in a stack slot and release its register:
        // simple, correct, and uniform with locals.
        for (i, (ty, pname)) in def.params.iter().enumerate() {
            let slot = cg.a.local(slot_ty(ty));
            let arg = cg.a.arg(i);
            cg.a.st_slot(slot, arg);
            cg.declare(pname, slot, ty.clone())?;
        }
        for i in (0..def.params.len()).rev() {
            cg.a.release_arg(i);
        }
        for s in &def.body {
            cg.stmt(s)?;
        }
        // Implicit return: 0 for value-returning functions (defensive),
        // plain return for void.
        match cg.ret.clone() {
            CType::Void => cg.a.retv(),
            t => {
                let r = cg.zero_of(&t)?;
                cg.emit_ret(r, &t);
            }
        }
        let fin = cg.a.end()?;
        Ok(fin.len)
    }

    fn sem(&self, msg: impl Into<String>) -> CcError {
        CcError::Sem {
            func: self.name.clone(),
            msg: msg.into(),
        }
    }

    fn declare(&mut self, name: &str, slot: StackSlot, ty: CType) -> CcResult<()> {
        let scope = self.scopes.last_mut().expect("scope");
        if scope
            .insert(name.to_owned(), VarInfo { slot, ty })
            .is_some()
        {
            return Err(self.sem(format!("`{name}` redeclared in the same scope")));
        }
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<&VarInfo> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn alloc(&mut self, flt: bool) -> CcResult<Reg> {
        let r = if flt {
            self.a.getreg_f(RegClass::Temp)
        } else {
            self.a.getreg(RegClass::Temp)
        };
        r.ok_or(CcError::TooComplex {
            func: self.name.clone(),
        })
    }

    fn zero_of(&mut self, t: &CType) -> CcResult<Reg> {
        let r = self.alloc(*t == CType::Double)?;
        match t {
            CType::Double => self.a.setd(r, 0.0),
            CType::Long | CType::Ptr(_) => self.a.setl(r, 0),
            _ => self.a.seti(r, 0),
        }
        Ok(r)
    }

    fn emit_ret(&mut self, r: Reg, t: &CType) {
        match t {
            CType::Int | CType::Char => self.a.reti(r),
            CType::Long => self.a.retl(r),
            CType::Double => self.a.retd(r),
            CType::Ptr(_) | CType::Arr(..) => self.a.retp(r),
            CType::Void => self.a.retv(),
        }
        if *t != CType::Void {
            self.a.putreg(r);
        }
    }

    /// Converts a value to another C type, reusing the register when the
    /// bank is unchanged.
    fn convert(&mut self, r: Reg, from: &CType, to: &CType) -> CcResult<Reg> {
        if from == to || (from.is_integral() && to.is_integral() && vty(from) == vty(to)) {
            return Ok(r);
        }
        match (from, to) {
            (CType::Double, CType::Double) => Ok(r),
            (f, CType::Double) if f.is_integral() => {
                let d = self.alloc(true)?;
                if vty(f) == Ty::L {
                    self.a.cvl2d(d, r);
                } else {
                    self.a.cvi2d(d, r);
                }
                self.a.putreg(r);
                Ok(d)
            }
            (CType::Double, t) if t.is_integral() => {
                let i = self.alloc(false)?;
                if vty(t) == Ty::L {
                    self.a.cvd2l(i, r);
                } else {
                    self.a.cvd2i(i, r);
                }
                self.a.putreg(r);
                Ok(i)
            }
            // Integer-family widenings/narrowings and pointer casts stay
            // in the integer bank.
            (f, t) => {
                match (vty(f), vty(t)) {
                    (Ty::I, Ty::L | Ty::P) => self.a.cvi2l(r, r),
                    (Ty::L | Ty::P, Ty::I) => self.a.cvl2i(r, r),
                    (Ty::L, Ty::P) | (Ty::P, Ty::L) | (Ty::P, Ty::P) => {}
                    (a, b) if a == b => {}
                    (a, b) => {
                        return Err(self.sem(format!("unsupported conversion {a} -> {b}")));
                    }
                }
                Ok(r)
            }
        }
    }

    /// The usual arithmetic conversions: the common type of a binary
    /// operation.
    fn common_type(&self, l: &CType, r: &CType) -> CType {
        if *l == CType::Double || *r == CType::Double {
            CType::Double
        } else if l.is_ptr() {
            l.clone()
        } else if r.is_ptr() {
            r.clone()
        } else if *l == CType::Long || *r == CType::Long {
            CType::Long
        } else {
            CType::Int
        }
    }

    // ---- lvalues ----

    fn lvalue(&mut self, e: &Expr) -> CcResult<Place> {
        match e {
            Expr::Var(name) => {
                let v = self
                    .lookup(name)
                    .ok_or_else(|| self.sem(format!("`{name}` is not declared")))?
                    .clone();
                if matches!(v.ty, CType::Arr(..)) {
                    return Err(self.sem(format!("array `{name}` is not assignable")));
                }
                Ok(Place::Slot(v.slot, v.ty))
            }
            Expr::Deref(inner) => {
                let (r, t) = self.rvalue(inner)?;
                let CType::Ptr(elem) = t else {
                    return Err(self.sem("dereference of a non-pointer"));
                };
                Ok(Place::Mem(r, (*elem).clone()))
            }
            Expr::Index(base, idx) => {
                let addr = self.index_addr(base, idx)?;
                Ok(addr)
            }
            _ => Err(self.sem("expression is not an lvalue")),
        }
    }

    /// Computes `&base[idx]` as a Mem place.
    fn index_addr(&mut self, base: &Expr, idx: &Expr) -> CcResult<Place> {
        let (mut b, bt) = self.rvalue(base)?;
        let CType::Ptr(elem) = bt else {
            return Err(self.sem("indexing a non-pointer"));
        };
        // An index expression containing a call clobbers caller-saved
        // temporaries: spill the base around it.
        let (i, it) = if expr_has_call(idx) {
            let slot = self.a.local(Ty::P);
            self.a.st_slot(slot, b);
            self.a.putreg(b);
            let iv = self.rvalue(idx)?;
            b = self.alloc(false)?;
            self.a.ld_slot(b, slot);
            iv
        } else {
            self.rvalue(idx)?
        };
        if !it.is_integral() {
            return Err(self.sem("array index must be an integer"));
        }
        let i = self.convert(i, &it, &CType::Long)?;
        let size = elem.size() as i64;
        if size > 1 {
            if size.count_ones() == 1 {
                self.a.lshli(i, i, size.trailing_zeros() as i64);
            } else {
                self.a.mulli(i, i, size);
            }
        }
        self.a.addp(b, b, i);
        self.a.putreg(i);
        Ok(Place::Mem(b, (*elem).clone()))
    }

    fn load_place(&mut self, p: &Place) -> CcResult<(Reg, CType)> {
        match p {
            Place::Slot(slot, ty) => {
                let r = self.alloc(*ty == CType::Double)?;
                self.a.ld_slot(r, *slot);
                Ok((r, promote(ty)))
            }
            Place::Mem(addr, ty) => {
                let r = self.alloc(*ty == CType::Double)?;
                match ty {
                    CType::Char => self.a.ldci(r, *addr, 0),
                    CType::Int => self.a.ldii(r, *addr, 0),
                    CType::Long => self.a.ldli(r, *addr, 0),
                    CType::Double => self.a.lddi(r, *addr, 0),
                    CType::Ptr(_) => self.a.ldpi(r, *addr, 0),
                    CType::Arr(..) | CType::Void => {
                        return Err(self.sem("dereference of void pointer"))
                    }
                }
                Ok((r, promote(ty)))
            }
        }
    }

    fn store_place(&mut self, p: &Place, r: Reg) {
        match p {
            Place::Slot(slot, _) => self.a.st_slot(*slot, r),
            Place::Mem(addr, ty) => match ty {
                CType::Char => self.a.stci(r, *addr, 0),
                CType::Int => self.a.stii(r, *addr, 0),
                CType::Long => self.a.stli(r, *addr, 0),
                CType::Double => self.a.stdi(r, *addr, 0),
                CType::Ptr(_) => self.a.stpi(r, *addr, 0),
                CType::Arr(..) | CType::Void => {}
            },
        }
    }

    fn place_type(&self, p: &Place) -> CType {
        match p {
            Place::Slot(_, t) | Place::Mem(_, t) => t.clone(),
        }
    }

    fn free_place(&mut self, p: Place) {
        if let Place::Mem(addr, _) = p {
            self.a.putreg(addr);
        }
    }

    // ---- rvalues ----

    #[allow(clippy::too_many_lines)]
    fn rvalue(&mut self, e: &Expr) -> CcResult<(Reg, CType)> {
        match e {
            Expr::Int(v) => {
                let r = self.alloc(false)?;
                if i32::try_from(*v).is_ok() {
                    self.a.seti(r, *v as i32);
                    Ok((r, CType::Int))
                } else {
                    self.a.setl(r, *v);
                    Ok((r, CType::Long))
                }
            }
            Expr::Float(v) => {
                let r = self.alloc(true)?;
                self.a.setd(r, *v);
                Ok((r, CType::Double))
            }
            Expr::Var(name) => {
                // Arrays decay to a pointer to their first element.
                if let Some(v) = self.lookup(name) {
                    if let CType::Arr(elem, _) = v.ty.clone() {
                        let slot = v.slot;
                        let r = self.alloc(false)?;
                        self.a.movp(r, slot.base);
                        self.a.addpi(r, r, i64::from(slot.off));
                        return Ok((r, CType::Ptr(elem)));
                    }
                }
                let p = self.lvalue(e)?;
                let v = self.load_place(&p)?;
                self.free_place(p);
                Ok(v)
            }
            Expr::Deref(_) | Expr::Index(..) => {
                let p = self.lvalue(e)?;
                let v = self.load_place(&p)?;
                self.free_place(p);
                Ok(v)
            }
            Expr::Addr(inner) => {
                let p = self.lvalue(inner)?;
                match p {
                    Place::Slot(slot, ty) => {
                        let r = self.alloc(false)?;
                        // &local: base + offset.
                        self.a.movp(r, slot.base);
                        self.a.addpi(r, r, i64::from(slot.off));
                        Ok((r, CType::Ptr(Box::new(ty))))
                    }
                    Place::Mem(addr, ty) => Ok((addr, CType::Ptr(Box::new(ty)))),
                }
            }
            Expr::Cast(t, inner) => {
                let (r, ti) = self.rvalue(inner)?;
                if *t == CType::Void {
                    self.a.putreg(r);
                    return Err(self.sem("cast to void is not a value"));
                }
                let r = self.convert(r, &ti, t)?;
                Ok((r, t.clone()))
            }
            Expr::Assign(lhs, rhs) => {
                let (v, vt) = self.rvalue(rhs)?;
                let (v, p) = self.lvalue_with_live(lhs, v, &vt)?;
                let target = self.place_type(&p);
                let v = self.convert(v, &vt, &target)?;
                self.store_place(&p, v);
                self.free_place(p);
                Ok((v, promote(&target)))
            }
            Expr::OpAssign(op, lhs, rhs) => {
                let (v, vt) = self.rvalue(rhs)?;
                let (v, p) = self.lvalue_with_live(lhs, v, &vt)?;
                let target = self.place_type(&p);
                let (cur, curt) = self.load_place(&p)?;
                let (res, rest) = self.binop(op, cur, curt, v, vt)?;
                let res = self.convert(res, &rest, &target)?;
                self.store_place(&p, res);
                self.free_place(p);
                Ok((res, promote(&target)))
            }
            Expr::PreIncDec(op, inner) => {
                let p = self.lvalue(inner)?;
                let target = self.place_type(&p);
                let (cur, curt) = self.load_place(&p)?;
                let step = self.step_of(&target)?;
                let (res, rest) = self.binop(op, cur, curt.clone(), step, step_type(&target))?;
                let res = self.convert(res, &rest, &target)?;
                self.store_place(&p, res);
                self.free_place(p);
                Ok((res, promote(&target)))
            }
            Expr::PostIncDec(op, inner) => {
                let p = self.lvalue(inner)?;
                let target = self.place_type(&p);
                let (old, oldt) = self.load_place(&p)?;
                let (cur, curt) = self.load_place(&p)?;
                let step = self.step_of(&target)?;
                let (res, rest) = self.binop(op, cur, curt, step, step_type(&target))?;
                let res = self.convert(res, &rest, &target)?;
                self.store_place(&p, res);
                self.a.putreg(res);
                self.free_place(p);
                Ok((old, oldt))
            }
            Expr::Un("-", inner) => {
                let (r, t) = self.rvalue(inner)?;
                match vty(&t) {
                    Ty::D => self.a.negd(r, r),
                    Ty::L | Ty::P => self.a.negl(r, r),
                    _ => self.a.negi(r, r),
                }
                Ok((r, promote(&t)))
            }
            Expr::Un("~", inner) => {
                let (r, t) = self.rvalue(inner)?;
                if !t.is_integral() {
                    return Err(self.sem("~ needs an integer"));
                }
                if vty(&t) == Ty::L {
                    self.a.coml(r, r);
                } else {
                    self.a.comi(r, r);
                }
                Ok((r, promote(&t)))
            }
            Expr::Un("!", inner) => {
                let (r, t) = self.rvalue(inner)?;
                if t == CType::Double {
                    let z = self.alloc(true)?;
                    self.a.setd(z, 0.0);
                    let out = self.alloc(false)?;
                    let yes = self.a.genlabel();
                    self.a.seti(out, 1);
                    self.a.beqd(r, z, yes);
                    self.a.seti(out, 0);
                    self.a.label(yes);
                    self.a.putreg(r);
                    self.a.putreg(z);
                    Ok((out, CType::Int))
                } else {
                    if vty(&t) == Ty::L || t.is_ptr() {
                        self.a.notl(r, r);
                    } else {
                        self.a.noti(r, r);
                    }
                    Ok((r, CType::Int))
                }
            }
            Expr::Un(op, _) => Err(self.sem(format!("unsupported unary `{op}`"))),
            Expr::Bin("&&", l, r) => self.logical(l, r, true),
            Expr::Bin("||", l, r) => self.logical(l, r, false),
            Expr::Bin(op, l, r) => {
                let (lv, lt) = self.rvalue(l)?;
                // A right operand containing a call clobbers caller-saved
                // temporaries: spill the left value around it.
                let (lv, rv, rt) = if expr_has_call(r) {
                    let slot = self.a.local(slot_ty(&lt));
                    self.a.st_slot(slot, lv);
                    self.a.putreg(lv);
                    let (rv, rt) = self.rvalue(r)?;
                    let fresh = self.alloc(lt == CType::Double)?;
                    self.a.ld_slot(fresh, slot);
                    (fresh, rv, rt)
                } else {
                    let (rv, rt) = self.rvalue(r)?;
                    (lv, rv, rt)
                };
                self.binop(op, lv, lt, rv, rt)
            }
            Expr::Call(name, args) => self.call(name, args),
        }
    }

    /// Computes an lvalue while keeping an already-computed value alive:
    /// when the target computation contains a call (which clobbers
    /// caller-saved temporaries), the value is spilled around it.
    fn lvalue_with_live(&mut self, lhs: &Expr, v: Reg, vt: &CType) -> CcResult<(Reg, Place)> {
        if expr_has_call(lhs) {
            let slot = self.a.local(slot_ty(vt));
            self.a.st_slot(slot, v);
            self.a.putreg(v);
            let p = self.lvalue(lhs)?;
            let fresh = self.alloc(*vt == CType::Double)?;
            self.a.ld_slot(fresh, slot);
            Ok((fresh, p))
        } else {
            Ok((v, self.lvalue(lhs)?))
        }
    }

    fn step_of(&mut self, t: &CType) -> CcResult<Reg> {
        let r = self.alloc(false)?;
        self.a.seti(r, 1);
        let _ = t;
        Ok(r)
    }

    fn logical(&mut self, l: &Expr, r: &Expr, is_and: bool) -> CcResult<(Reg, CType)> {
        let out = self.alloc(false)?;
        let short = self.a.genlabel();
        let done = self.a.genlabel();
        self.a.seti(out, if is_and { 0 } else { 1 });
        // Short-circuit on the left operand.
        self.branch_if(l, short, !is_and)?;
        // Right operand decides.
        self.branch_if(r, short, !is_and)?;
        self.a.seti(out, if is_and { 1 } else { 0 });
        self.a.jmp(done);
        self.a.label(short);
        self.a.label(done);
        Ok((out, CType::Int))
    }

    fn binop(
        &mut self,
        op: &str,
        lv: Reg,
        lt: CType,
        rv: Reg,
        rt: CType,
    ) -> CcResult<(Reg, CType)> {
        // Comparisons produce int.
        if matches!(op, "==" | "!=" | "<" | "<=" | ">" | ">=") {
            return self.compare(op, lv, lt, rv, rt);
        }
        // Pointer arithmetic.
        if lt.is_ptr() || rt.is_ptr() {
            return self.ptr_arith(op, lv, lt, rv, rt);
        }
        let ct = self.common_type(&lt, &rt);
        let lv = self.convert(lv, &lt, &ct)?;
        let rv = self.convert(rv, &rt, &ct)?;
        match vty(&ct) {
            Ty::D => {
                match op {
                    "+" => self.a.addd(lv, lv, rv),
                    "-" => self.a.subd(lv, lv, rv),
                    "*" => self.a.muld(lv, lv, rv),
                    "/" => self.a.divd(lv, lv, rv),
                    _ => return Err(self.sem(format!("`{op}` needs integer operands"))),
                }
                self.a.putreg(rv);
                Ok((lv, CType::Double))
            }
            Ty::L => {
                match op {
                    "+" => self.a.addl(lv, lv, rv),
                    "-" => self.a.subl(lv, lv, rv),
                    "*" => self.a.mull(lv, lv, rv),
                    "/" => self.a.divl(lv, lv, rv),
                    "%" => self.a.modl(lv, lv, rv),
                    "&" => self.a.andl(lv, lv, rv),
                    "|" => self.a.orl(lv, lv, rv),
                    "^" => self.a.xorl(lv, lv, rv),
                    "<<" => self.a.lshl(lv, lv, rv),
                    ">>" => self.a.rshl(lv, lv, rv),
                    _ => return Err(self.sem(format!("unsupported operator `{op}`"))),
                }
                self.a.putreg(rv);
                Ok((lv, CType::Long))
            }
            _ => {
                match op {
                    "+" => self.a.addi(lv, lv, rv),
                    "-" => self.a.subi(lv, lv, rv),
                    "*" => self.a.muli(lv, lv, rv),
                    "/" => self.a.divi(lv, lv, rv),
                    "%" => self.a.modi(lv, lv, rv),
                    "&" => self.a.andi(lv, lv, rv),
                    "|" => self.a.ori(lv, lv, rv),
                    "^" => self.a.xori(lv, lv, rv),
                    "<<" => self.a.lshi(lv, lv, rv),
                    ">>" => self.a.rshi(lv, lv, rv),
                    _ => return Err(self.sem(format!("unsupported operator `{op}`"))),
                }
                self.a.putreg(rv);
                Ok((lv, CType::Int))
            }
        }
    }

    fn ptr_arith(
        &mut self,
        op: &str,
        lv: Reg,
        lt: CType,
        rv: Reg,
        rt: CType,
    ) -> CcResult<(Reg, CType)> {
        match (op, lt.is_ptr(), rt.is_ptr()) {
            ("-", true, true) => {
                if lt != rt {
                    return Err(self.sem("subtracting incompatible pointers"));
                }
                let CType::Ptr(elem) = &lt else {
                    unreachable!()
                };
                self.a.subl(lv, lv, rv);
                self.a.putreg(rv);
                let size = elem.size() as i64;
                if size > 1 {
                    self.a.divli(lv, lv, size);
                }
                Ok((lv, CType::Long))
            }
            ("+", true, false) | ("-", true, false) => {
                let CType::Ptr(elem) = &lt else {
                    unreachable!()
                };
                let rv = self.convert(rv, &rt, &CType::Long)?;
                let size = elem.size() as i64;
                if size > 1 {
                    if size.count_ones() == 1 {
                        self.a.lshli(rv, rv, size.trailing_zeros() as i64);
                    } else {
                        self.a.mulli(rv, rv, size);
                    }
                }
                if op == "+" {
                    self.a.addp(lv, lv, rv);
                } else {
                    self.a.subp(lv, lv, rv);
                }
                self.a.putreg(rv);
                Ok((lv, lt))
            }
            ("+", false, true) => self.ptr_arith(op, rv, rt, lv, lt),
            _ => Err(self.sem(format!("unsupported pointer operation `{op}`"))),
        }
    }

    fn compare(
        &mut self,
        op: &str,
        lv: Reg,
        lt: CType,
        rv: Reg,
        rt: CType,
    ) -> CcResult<(Reg, CType)> {
        let ct = self.common_type(&lt, &rt);
        let lv = self.convert(lv, &lt, &ct)?;
        let rv = self.convert(rv, &rt, &ct)?;
        let out = self.alloc(false)?;
        let yes = self.a.genlabel();
        self.a.seti(out, 1);
        match vty(&ct) {
            Ty::D => match op {
                "==" => self.a.beqd(lv, rv, yes),
                "!=" => self.a.bned(lv, rv, yes),
                "<" => self.a.bltd(lv, rv, yes),
                "<=" => self.a.bled(lv, rv, yes),
                ">" => self.a.bgtd(lv, rv, yes),
                _ => self.a.bged(lv, rv, yes),
            },
            Ty::L => match op {
                "==" => self.a.beql(lv, rv, yes),
                "!=" => self.a.bnel(lv, rv, yes),
                "<" => self.a.bltl(lv, rv, yes),
                "<=" => self.a.blel(lv, rv, yes),
                ">" => self.a.bgtl(lv, rv, yes),
                _ => self.a.bgel(lv, rv, yes),
            },
            Ty::P => match op {
                "==" => self.a.beqp(lv, rv, yes),
                "!=" => self.a.bnep(lv, rv, yes),
                "<" => self.a.bltp(lv, rv, yes),
                "<=" => self.a.blep(lv, rv, yes),
                ">" => self.a.bgtp(lv, rv, yes),
                _ => self.a.bgep(lv, rv, yes),
            },
            _ => match op {
                "==" => self.a.beqi(lv, rv, yes),
                "!=" => self.a.bnei(lv, rv, yes),
                "<" => self.a.blti(lv, rv, yes),
                "<=" => self.a.blei(lv, rv, yes),
                ">" => self.a.bgti(lv, rv, yes),
                _ => self.a.bgei(lv, rv, yes),
            },
        }
        self.a.seti(out, 0);
        self.a.label(yes);
        self.a.putreg(lv);
        self.a.putreg(rv);
        Ok((out, CType::Int))
    }

    fn call(&mut self, name: &str, args: &[Expr]) -> CcResult<(Reg, CType)> {
        let fi = self
            .fns
            .get(name)
            .ok_or_else(|| self.sem(format!("call to undeclared function `{name}`")))?
            .clone();
        if fi.params.len() != args.len() {
            return Err(self.sem(format!(
                "`{name}` takes {} arguments, {} given",
                fi.params.len(),
                args.len()
            )));
        }
        // Evaluate every argument into a typed spill slot first: argument
        // expressions may themselves contain calls, which clobber
        // temporaries and must not interleave with outgoing-argument
        // staging.
        let mut slots = Vec::with_capacity(args.len());
        for (arg, pty) in args.iter().zip(&fi.params) {
            let (r, t) = self.rvalue(arg)?;
            let r = self.convert(r, &t, pty)?;
            let slot = self.a.local(slot_ty(pty));
            self.a.st_slot(slot, r);
            self.a.putreg(r);
            slots.push(slot);
        }
        // Load the function pointer from the table.
        let fptr = self.alloc(false)?;
        self.a.setp(fptr, self.table_addr + 8 * fi.index as u64);
        self.a.ldpi(fptr, fptr, 0);
        // Marshal.
        let sig = Sig::new(fi.params.iter().map(vty).collect(), vty(&fi.ret));
        let mut cf = self.a.call_begin(&sig);
        for (i, (slot, pty)) in slots.iter().zip(&fi.params).enumerate() {
            let t = self.alloc(*pty == CType::Double)?;
            self.a.ld_slot(t, *slot);
            self.a.call_arg(&mut cf, i, vty(pty), t);
            self.a.putreg(t);
        }
        let (ret_reg, ret_ty) = if fi.ret == CType::Void {
            self.a.call_end(cf, JumpTarget::Reg(fptr), None);
            self.a.putreg(fptr);
            let r = self.zero_of(&CType::Int)?;
            (r, CType::Int)
        } else {
            let r = self.alloc(fi.ret == CType::Double)?;
            self.a.call_end(cf, JumpTarget::Reg(fptr), Some(r));
            self.a.putreg(fptr);
            (r, promote(&fi.ret))
        };
        Ok((ret_reg, ret_ty))
    }

    /// Emits a branch to `target` taken when `e` is truthy (or falsy when
    /// `when_true` is false). Comparison expressions branch directly.
    fn branch_if(&mut self, e: &Expr, target: Label, when_true: bool) -> CcResult<()> {
        let (r, t) = self.rvalue(e)?;
        match vty(&t) {
            Ty::D => {
                let z = self.alloc(true)?;
                self.a.setd(z, 0.0);
                if when_true {
                    self.a.bned(r, z, target);
                } else {
                    self.a.beqd(r, z, target);
                }
                self.a.putreg(z);
            }
            Ty::L | Ty::P => {
                if when_true {
                    self.a.bneli(r, 0, target);
                } else {
                    self.a.beqli(r, 0, target);
                }
            }
            _ => {
                if when_true {
                    self.a.bneii(r, 0, target);
                } else {
                    self.a.beqii(r, 0, target);
                }
            }
        }
        self.a.putreg(r);
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> CcResult<()> {
        match s {
            Stmt::Empty => Ok(()),
            Stmt::Expr(e) => {
                let (r, _) = self.rvalue(e)?;
                self.a.putreg(r);
                Ok(())
            }
            Stmt::Decl(ds) => {
                for (ty, name, init) in ds {
                    if let CType::Arr(elem, n) = ty {
                        if init.is_some() {
                            return Err(self.sem("array initializers are not supported"));
                        }
                        let slot = self.a.local_array(slot_ty(elem), *n);
                        self.declare(name, slot, ty.clone())?;
                        continue;
                    }
                    let slot = self.a.local(slot_ty(ty));
                    self.declare(name, slot, ty.clone())?;
                    if let Some(e) = init {
                        let (r, t) = self.rvalue(e)?;
                        let r = self.convert(r, &t, ty)?;
                        self.a.st_slot(slot, r);
                        self.a.putreg(r);
                    }
                }
                Ok(())
            }
            Stmt::Block(body) => {
                self.scopes.push(HashMap::new());
                for s in body {
                    self.stmt(s)?;
                }
                self.scopes.pop();
                Ok(())
            }
            Stmt::If(cond, then, els) => {
                let else_l = self.a.genlabel();
                let end = self.a.genlabel();
                self.branch_if(cond, else_l, false)?;
                self.stmt(then)?;
                self.a.jmp(end);
                self.a.label(else_l);
                if let Some(e) = els {
                    self.stmt(e)?;
                }
                self.a.label(end);
                Ok(())
            }
            Stmt::While(cond, body) => {
                let top = self.a.genlabel();
                let out = self.a.genlabel();
                self.a.label(top);
                self.branch_if(cond, out, false)?;
                self.loops.push((top, out));
                self.stmt(body)?;
                self.loops.pop();
                self.a.jmp(top);
                self.a.label(out);
                Ok(())
            }
            Stmt::DoWhile(body, cond) => {
                let top = self.a.genlabel();
                let cont = self.a.genlabel();
                let out = self.a.genlabel();
                self.a.label(top);
                self.loops.push((cont, out));
                self.stmt(body)?;
                self.loops.pop();
                self.a.label(cont);
                self.branch_if(cond, top, true)?;
                self.a.label(out);
                Ok(())
            }
            Stmt::For(init, cond, step, body) => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let top = self.a.genlabel();
                let cont = self.a.genlabel();
                let out = self.a.genlabel();
                self.a.label(top);
                if let Some(c) = cond {
                    self.branch_if(c, out, false)?;
                }
                self.loops.push((cont, out));
                self.stmt(body)?;
                self.loops.pop();
                self.a.label(cont);
                if let Some(st) = step {
                    let (r, _) = self.rvalue(st)?;
                    self.a.putreg(r);
                }
                self.a.jmp(top);
                self.a.label(out);
                self.scopes.pop();
                Ok(())
            }
            Stmt::Return(e) => {
                match (e, self.ret.clone()) {
                    (None, CType::Void) => self.a.retv(),
                    (None, _) => return Err(self.sem("missing return value")),
                    (Some(_), CType::Void) => return Err(self.sem("void function returns a value")),
                    (Some(e), ret) => {
                        let (r, t) = self.rvalue(e)?;
                        let r = self.convert(r, &t, &ret)?;
                        self.emit_ret(r, &ret);
                    }
                }
                Ok(())
            }
            Stmt::Break => {
                let (_, out) = *self
                    .loops
                    .last()
                    .ok_or_else(|| self.sem("`break` outside a loop"))?;
                self.a.jmp(out);
                Ok(())
            }
            Stmt::Continue => {
                let (cont, _) = *self
                    .loops
                    .last()
                    .ok_or_else(|| self.sem("`continue` outside a loop"))?;
                self.a.jmp(cont);
                Ok(())
            }
        }
    }
}

fn stmt_has_call(s: &Stmt) -> bool {
    match s {
        Stmt::Expr(e) => expr_has_call(e),
        Stmt::Decl(ds) => ds
            .iter()
            .any(|(_, _, i)| i.as_ref().is_some_and(expr_has_call)),
        Stmt::If(c, a, b) => {
            expr_has_call(c) || stmt_has_call(a) || b.as_ref().is_some_and(|s| stmt_has_call(s))
        }
        Stmt::While(c, b) => expr_has_call(c) || stmt_has_call(b),
        Stmt::DoWhile(b, c) => expr_has_call(c) || stmt_has_call(b),
        Stmt::For(i, c, st, b) => {
            i.as_ref().is_some_and(|s| stmt_has_call(s))
                || c.as_ref().is_some_and(expr_has_call)
                || st.as_ref().is_some_and(expr_has_call)
                || stmt_has_call(b)
        }
        Stmt::Return(e) => e.as_ref().is_some_and(expr_has_call),
        Stmt::Block(b) => b.iter().any(stmt_has_call),
        Stmt::Break | Stmt::Continue | Stmt::Empty => false,
    }
}

/// Expression-level type of a stored value (chars promote to int).
fn promote(t: &CType) -> CType {
    match t {
        CType::Char => CType::Int,
        other => other.clone(),
    }
}

fn step_type(_t: &CType) -> CType {
    CType::Int
}
