//! Recursive-descent parser for the C subset.

use crate::lex::{lex, Kw, ParseError, Tok};

/// A C type in the subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CType {
    /// 32-bit signed `int`.
    Int,
    /// 64-bit signed `long`.
    Long,
    /// `char` (signed, promoted to `int` in expressions).
    Char,
    /// `double`.
    Double,
    /// `void` (returns only).
    Void,
    /// Pointer.
    Ptr(Box<CType>),
    /// Fixed-size local array (decays to a pointer in expressions).
    Arr(Box<CType>, usize),
}

impl CType {
    /// Size in bytes (on the 64-bit native target).
    pub fn size(&self) -> usize {
        match self {
            CType::Int => 4,
            CType::Long => 8,
            CType::Char => 1,
            CType::Double => 8,
            CType::Void => 0,
            CType::Ptr(_) => 8,
            CType::Arr(elem, n) => elem.size() * n,
        }
    }

    /// `true` for the integer family (including pointers).
    pub fn is_integral(&self) -> bool {
        matches!(self, CType::Int | CType::Long | CType::Char)
    }

    /// `true` for pointers.
    pub fn is_ptr(&self) -> bool {
        matches!(self, CType::Ptr(_))
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Variable reference.
    Var(String),
    /// Assignment `lhs = rhs`.
    Assign(Box<Expr>, Box<Expr>),
    /// Compound assignment `lhs op= rhs`.
    OpAssign(&'static str, Box<Expr>, Box<Expr>),
    /// Binary operation.
    Bin(&'static str, Box<Expr>, Box<Expr>),
    /// Unary operation (`-`, `!`, `~`).
    Un(&'static str, Box<Expr>),
    /// Pre-increment/decrement.
    PreIncDec(&'static str, Box<Expr>),
    /// Post-increment/decrement.
    PostIncDec(&'static str, Box<Expr>),
    /// Function call.
    Call(String, Vec<Expr>),
    /// Array indexing `base[idx]`.
    Index(Box<Expr>, Box<Expr>),
    /// Pointer dereference.
    Deref(Box<Expr>),
    /// Address-of.
    Addr(Box<Expr>),
    /// Cast `(type) expr`.
    Cast(CType, Box<Expr>),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Expression statement.
    Expr(Expr),
    /// Declarations `type a = e, b;`.
    Decl(Vec<(CType, String, Option<Expr>)>),
    /// `if` / `else`.
    If(Expr, Box<Stmt>, Option<Box<Stmt>>),
    /// `while` loop.
    While(Expr, Box<Stmt>),
    /// `do … while`.
    DoWhile(Box<Stmt>, Expr),
    /// `for` loop.
    For(Option<Box<Stmt>>, Option<Expr>, Option<Expr>, Box<Stmt>),
    /// `return`.
    Return(Option<Expr>),
    /// `break`.
    Break,
    /// `continue`.
    Continue,
    /// `{ … }`.
    Block(Vec<Stmt>),
    /// `;`.
    Empty,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FnDef {
    /// Return type.
    pub ret: CType,
    /// Name.
    pub name: String,
    /// Parameters.
    pub params: Vec<(CType, String)>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Source line of the definition.
    pub line: u32,
}

/// Parses a translation unit.
///
/// # Errors
///
/// [`ParseError`] on any lexical or syntactic problem.
pub fn parse(src: &str) -> Result<Vec<FnDef>, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut fns = Vec::new();
    while p.peek() != &Tok::Eof {
        fns.push(p.fndef()?);
    }
    Ok(fns)
}

struct Parser {
    toks: Vec<(Tok, u32)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].0
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].1
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            msg: msg.into(),
        }
    }

    fn expect(&mut self, p: &'static str) -> Result<(), ParseError> {
        if self.peek() == &Tok::Punct(p) {
            self.next();
            Ok(())
        } else {
            Err(self.err(format!("expected `{p}`, found {}", self.peek())))
        }
    }

    fn eat(&mut self, p: &'static str) -> bool {
        if self.peek() == &Tok::Punct(p) {
            self.next();
            true
        } else {
            false
        }
    }

    fn is_type_start(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Kw(Kw::Int | Kw::Long | Kw::Char | Kw::Double | Kw::Void)
        )
    }

    fn ty(&mut self) -> Result<CType, ParseError> {
        let base = match self.next() {
            Tok::Kw(Kw::Int) => CType::Int,
            Tok::Kw(Kw::Long) => CType::Long,
            Tok::Kw(Kw::Char) => CType::Char,
            Tok::Kw(Kw::Double) => CType::Double,
            Tok::Kw(Kw::Void) => CType::Void,
            other => return Err(self.err(format!("expected type, found {other}"))),
        };
        let mut t = base;
        while self.eat("*") {
            t = CType::Ptr(Box::new(t));
        }
        Ok(t)
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    fn fndef(&mut self) -> Result<FnDef, ParseError> {
        let line = self.line();
        let ret = self.ty()?;
        let name = self.ident()?;
        self.expect("(")?;
        let mut params = Vec::new();
        if !self.eat(")") {
            if self.peek() == &Tok::Kw(Kw::Void) && self.peek2() == &Tok::Punct(")") {
                self.next();
                self.next();
            } else {
                loop {
                    let t = self.ty()?;
                    let n = self.ident()?;
                    params.push((t, n));
                    if self.eat(")") {
                        break;
                    }
                    self.expect(",")?;
                }
            }
        }
        self.expect("{")?;
        let mut body = Vec::new();
        while !self.eat("}") {
            body.push(self.stmt()?);
        }
        Ok(FnDef {
            ret,
            name,
            params,
            body,
            line,
        })
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        if self.is_type_start() {
            return self.decl();
        }
        match self.peek().clone() {
            Tok::Punct(";") => {
                self.next();
                Ok(Stmt::Empty)
            }
            Tok::Punct("{") => {
                self.next();
                let mut body = Vec::new();
                while !self.eat("}") {
                    body.push(self.stmt()?);
                }
                Ok(Stmt::Block(body))
            }
            Tok::Kw(Kw::If) => {
                self.next();
                self.expect("(")?;
                let cond = self.expr()?;
                self.expect(")")?;
                let then = Box::new(self.stmt()?);
                let els = if self.peek() == &Tok::Kw(Kw::Else) {
                    self.next();
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If(cond, then, els))
            }
            Tok::Kw(Kw::While) => {
                self.next();
                self.expect("(")?;
                let cond = self.expr()?;
                self.expect(")")?;
                Ok(Stmt::While(cond, Box::new(self.stmt()?)))
            }
            Tok::Kw(Kw::Do) => {
                self.next();
                let body = Box::new(self.stmt()?);
                if self.peek() != &Tok::Kw(Kw::While) {
                    return Err(self.err("expected `while` after do-body"));
                }
                self.next();
                self.expect("(")?;
                let cond = self.expr()?;
                self.expect(")")?;
                self.expect(";")?;
                Ok(Stmt::DoWhile(body, cond))
            }
            Tok::Kw(Kw::For) => {
                self.next();
                self.expect("(")?;
                let init = if self.eat(";") {
                    None
                } else if self.is_type_start() {
                    Some(Box::new(self.decl()?))
                } else {
                    let e = self.expr()?;
                    self.expect(";")?;
                    Some(Box::new(Stmt::Expr(e)))
                };
                let cond = if self.peek() == &Tok::Punct(";") {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(";")?;
                let step = if self.peek() == &Tok::Punct(")") {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(")")?;
                Ok(Stmt::For(init, cond, step, Box::new(self.stmt()?)))
            }
            Tok::Kw(Kw::Return) => {
                self.next();
                if self.eat(";") {
                    Ok(Stmt::Return(None))
                } else {
                    let e = self.expr()?;
                    self.expect(";")?;
                    Ok(Stmt::Return(Some(e)))
                }
            }
            Tok::Kw(Kw::Break) => {
                self.next();
                self.expect(";")?;
                Ok(Stmt::Break)
            }
            Tok::Kw(Kw::Continue) => {
                self.next();
                self.expect(";")?;
                Ok(Stmt::Continue)
            }
            _ => {
                let e = self.expr()?;
                self.expect(";")?;
                Ok(Stmt::Expr(e))
            }
        }
    }

    fn decl(&mut self) -> Result<Stmt, ParseError> {
        let base = self.ty()?;
        if base == CType::Void {
            return Err(self.err("cannot declare a void variable"));
        }
        let mut decls = Vec::new();
        loop {
            // Each declarator may add further pointer levels: int *p, x;
            let mut t = base.clone();
            while self.eat("*") {
                t = CType::Ptr(Box::new(t));
            }
            let name = self.ident()?;
            if self.eat("[") {
                let n = match self.next() {
                    Tok::Int(v) if v > 0 && v < 1 << 20 => v as usize,
                    other => {
                        return Err(self.err(format!(
                            "array size must be a positive integer literal, found {other}"
                        )))
                    }
                };
                self.expect("]")?;
                t = CType::Arr(Box::new(t), n);
            }
            let init = if self.eat("=") {
                Some(self.assignment()?)
            } else {
                None
            };
            decls.push((t, name, init));
            if self.eat(";") {
                break;
            }
            self.expect(",")?;
        }
        Ok(Stmt::Decl(decls))
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.binary(0)?;
        for (tok, op) in [
            ("=", ""),
            ("+=", "+"),
            ("-=", "-"),
            ("*=", "*"),
            ("/=", "/"),
            ("%=", "%"),
            ("<<=", "<<"),
            (">>=", ">>"),
        ] {
            if self.peek() == &Tok::Punct(tok) {
                self.next();
                let rhs = self.assignment()?;
                return Ok(if op.is_empty() {
                    Expr::Assign(Box::new(lhs), Box::new(rhs))
                } else {
                    Expr::OpAssign(op, Box::new(lhs), Box::new(rhs))
                });
            }
        }
        Ok(lhs)
    }

    /// Precedence-climbing over binary operators.
    fn binary(&mut self, min_prec: u8) -> Result<Expr, ParseError> {
        const LEVELS: [&[&str]; 9] = [
            &["||"],
            &["&&"],
            &["|"],
            &["^"],
            &["&"],
            &["==", "!="],
            &["<", "<=", ">", ">="],
            &["<<", ">>"],
            &["+", "-"],
        ];
        const TOP: u8 = LEVELS.len() as u8;
        if min_prec >= TOP {
            return self.mul();
        }
        let mut lhs = self.binary(min_prec + 1)?;
        while let Tok::Punct(p) = self.peek() {
            let Some(op) = LEVELS[min_prec as usize].iter().find(|o| *o == p) else {
                break;
            };
            let op = *op;
            self.next();
            let rhs = self.binary(min_prec + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("*") => "*",
                Tok::Punct("/") => "/",
                Tok::Punct("%") => "%",
                _ => break,
            };
            self.next();
            let rhs = self.unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Punct("-") => {
                self.next();
                Ok(Expr::Un("-", Box::new(self.unary()?)))
            }
            Tok::Punct("!") => {
                self.next();
                Ok(Expr::Un("!", Box::new(self.unary()?)))
            }
            Tok::Punct("~") => {
                self.next();
                Ok(Expr::Un("~", Box::new(self.unary()?)))
            }
            Tok::Punct("*") => {
                self.next();
                Ok(Expr::Deref(Box::new(self.unary()?)))
            }
            Tok::Punct("&") => {
                self.next();
                Ok(Expr::Addr(Box::new(self.unary()?)))
            }
            Tok::Punct("++") => {
                self.next();
                Ok(Expr::PreIncDec("+", Box::new(self.unary()?)))
            }
            Tok::Punct("--") => {
                self.next();
                Ok(Expr::PreIncDec("-", Box::new(self.unary()?)))
            }
            Tok::Punct("(")
                if matches!(
                    self.peek2(),
                    Tok::Kw(Kw::Int | Kw::Long | Kw::Char | Kw::Double | Kw::Void)
                ) =>
            {
                self.next();
                let t = self.ty()?;
                self.expect(")")?;
                Ok(Expr::Cast(t, Box::new(self.unary()?)))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            match self.peek() {
                Tok::Punct("[") => {
                    self.next();
                    let idx = self.expr()?;
                    self.expect("]")?;
                    e = Expr::Index(Box::new(e), Box::new(idx));
                }
                Tok::Punct("(") => {
                    let Expr::Var(name) = e else {
                        return Err(self.err("only direct calls are supported"));
                    };
                    self.next();
                    let mut args = Vec::new();
                    if !self.eat(")") {
                        loop {
                            args.push(self.assignment()?);
                            if self.eat(")") {
                                break;
                            }
                            self.expect(",")?;
                        }
                    }
                    e = Expr::Call(name, args);
                }
                Tok::Punct("++") => {
                    self.next();
                    e = Expr::PostIncDec("+", Box::new(e));
                }
                Tok::Punct("--") => {
                    self.next();
                    e = Expr::PostIncDec("-", Box::new(e));
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        match self.next() {
            Tok::Int(v) => Ok(Expr::Int(v)),
            Tok::Char(v) => Ok(Expr::Int(v)),
            Tok::Float(v) => Ok(Expr::Float(v)),
            Tok::Ident(s) => Ok(Expr::Var(s)),
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.expect(")")?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_function() {
        let fns = parse("int plus1(int x) { return x + 1; }").unwrap();
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "plus1");
        assert_eq!(fns[0].ret, CType::Int);
        assert_eq!(fns[0].params, vec![(CType::Int, "x".into())]);
        assert_eq!(
            fns[0].body,
            vec![Stmt::Return(Some(Expr::Bin(
                "+",
                Box::new(Expr::Var("x".into())),
                Box::new(Expr::Int(1))
            )))]
        );
    }

    #[test]
    fn precedence() {
        let fns = parse("int f() { return 1 + 2 * 3 == 7 && 4 < 5; }").unwrap();
        let Stmt::Return(Some(e)) = &fns[0].body[0] else {
            panic!()
        };
        // (&&) at the top.
        assert!(matches!(e, Expr::Bin("&&", _, _)));
    }

    #[test]
    fn pointer_declarations_and_deref() {
        let fns = parse("int f(int *p) { int *q; q = p; return *q + p[2]; }").unwrap();
        assert_eq!(fns[0].params[0].0, CType::Ptr(Box::new(CType::Int)));
        let Stmt::Decl(d) = &fns[0].body[0] else {
            panic!()
        };
        assert_eq!(d[0].0, CType::Ptr(Box::new(CType::Int)));
    }

    #[test]
    fn control_flow_forms() {
        let src = "
            int f(int n) {
                int s = 0;
                for (int i = 0; i < n; i += 1) { s += i; }
                while (s > 100) s -= 100;
                do { s += 1; } while (s < 0);
                if (s == 3) return 1; else return s;
            }";
        let fns = parse(src).unwrap();
        assert_eq!(fns[0].body.len(), 5);
    }

    #[test]
    fn casts_and_calls() {
        let fns = parse("double g(int x) { return (double) x * 0.5 + h(x, 1); }").unwrap();
        let Stmt::Return(Some(e)) = &fns[0].body[0] else {
            panic!()
        };
        assert!(matches!(e, Expr::Bin("+", _, _)));
    }

    #[test]
    fn errors_mention_line_and_token() {
        let e = parse("int f() {\n return ]; }").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(parse("int f( { }").is_err());
        assert!(parse("int 3() {}").is_err());
    }

    #[test]
    fn void_parameter_list() {
        let fns = parse("int f(void) { return 0; }").unwrap();
        assert!(fns[0].params.is_empty());
    }

    #[test]
    fn increment_forms() {
        let fns = parse("int f(int x) { ++x; x++; --x; x--; return x; }").unwrap();
        assert_eq!(fns[0].body.len(), 5);
    }
}
