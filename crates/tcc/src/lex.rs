//! Lexer for the C subset.

use std::fmt;

/// A token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating literal.
    Float(f64),
    /// Character literal (value).
    Char(i64),
    /// Keyword.
    Kw(Kw),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// Keywords of the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Kw {
    Int,
    Long,
    Char,
    Double,
    Void,
    If,
    Else,
    While,
    For,
    Return,
    Break,
    Continue,
    Do,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(v) => write!(f, "integer {v}"),
            Tok::Float(v) => write!(f, "float {v}"),
            Tok::Char(v) => write!(f, "char {v}"),
            Tok::Kw(k) => write!(f, "keyword `{k:?}`"),
            Tok::Punct(p) => write!(f, "`{p}`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexical or syntax error with a line number.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: u32,
    /// Description.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Multi-character punctuators, longest first.
const PUNCTS: [&str; 28] = [
    "<<=", ">>=", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=", "%=",
    "++", "--", "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|",
];
const SINGLE: [&str; 10] = ["(", ")", "{", "}", "[", "]", ";", ",", "^", "~"];

/// Tokenizes `src`, returning tokens with their line numbers.
///
/// # Errors
///
/// [`ParseError`] on malformed literals or stray characters.
pub fn lex(src: &str) -> Result<Vec<(Tok, u32)>, ParseError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            i += 2;
            while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                if b[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            if i + 1 >= b.len() {
                return Err(ParseError {
                    line,
                    msg: "unterminated comment".into(),
                });
            }
            i += 2;
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            let word = &src[start..i];
            let tok = match word {
                "int" => Tok::Kw(Kw::Int),
                "long" => Tok::Kw(Kw::Long),
                "char" => Tok::Kw(Kw::Char),
                "double" => Tok::Kw(Kw::Double),
                "void" => Tok::Kw(Kw::Void),
                "if" => Tok::Kw(Kw::If),
                "else" => Tok::Kw(Kw::Else),
                "while" => Tok::Kw(Kw::While),
                "for" => Tok::Kw(Kw::For),
                "return" => Tok::Kw(Kw::Return),
                "break" => Tok::Kw(Kw::Break),
                "continue" => Tok::Kw(Kw::Continue),
                "do" => Tok::Kw(Kw::Do),
                _ => Tok::Ident(word.to_owned()),
            };
            out.push((tok, line));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            // Hex.
            if c == b'0' && i + 1 < b.len() && (b[i + 1] | 32) == b'x' {
                i += 2;
                while i < b.len() && b[i].is_ascii_hexdigit() {
                    i += 1;
                }
                let v = i64::from_str_radix(&src[start + 2..i], 16).map_err(|e| ParseError {
                    line,
                    msg: format!("bad hex literal: {e}"),
                })?;
                out.push((Tok::Int(v), line));
                continue;
            }
            while i < b.len() && b[i].is_ascii_digit() {
                i += 1;
            }
            let is_float = i < b.len() && b[i] == b'.';
            if is_float {
                i += 1;
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
                let v: f64 = src[start..i].parse().map_err(|e| ParseError {
                    line,
                    msg: format!("bad float literal: {e}"),
                })?;
                out.push((Tok::Float(v), line));
            } else {
                let v: i64 = src[start..i].parse().map_err(|e| ParseError {
                    line,
                    msg: format!("bad integer literal: {e}"),
                })?;
                out.push((Tok::Int(v), line));
            }
            continue;
        }
        if c == b'\'' {
            // Character literal (no escapes beyond \n, \t, \0, \\, \').
            let (v, len) = match b.get(i + 1) {
                Some(b'\\') => {
                    let esc = *b.get(i + 2).ok_or(ParseError {
                        line,
                        msg: "unterminated char literal".into(),
                    })?;
                    let v = match esc {
                        b'n' => b'\n',
                        b't' => b'\t',
                        b'0' => 0,
                        b'\\' => b'\\',
                        b'\'' => b'\'',
                        other => {
                            return Err(ParseError {
                                line,
                                msg: format!("unknown escape \\{}", other as char),
                            })
                        }
                    };
                    (v, 4)
                }
                Some(&ch) => (ch, 3),
                None => {
                    return Err(ParseError {
                        line,
                        msg: "unterminated char literal".into(),
                    })
                }
            };
            if b.get(i + len - 1) != Some(&b'\'') {
                return Err(ParseError {
                    line,
                    msg: "unterminated char literal".into(),
                });
            }
            out.push((Tok::Char(i64::from(v)), line));
            i += len;
            continue;
        }
        // Punctuators, longest match first.
        let rest = &src[i..];
        if let Some(p) = PUNCTS
            .iter()
            .chain(SINGLE.iter())
            .find(|p| rest.starts_with(**p))
        {
            out.push((Tok::Punct(p), line));
            i += p.len();
            continue;
        }
        return Err(ParseError {
            line,
            msg: format!("stray character {:?}", c as char),
        });
    }
    out.push((Tok::Eof, line));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_idents_numbers() {
        let toks = lex("int x = 42; double y = 1.5;").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|(t, _)| t).collect();
        assert_eq!(kinds[0], &Tok::Kw(Kw::Int));
        assert_eq!(kinds[1], &Tok::Ident("x".into()));
        assert_eq!(kinds[2], &Tok::Punct("="));
        assert_eq!(kinds[3], &Tok::Int(42));
        assert_eq!(kinds[5], &Tok::Kw(Kw::Double));
        assert_eq!(kinds[7], &Tok::Punct("="));
        assert_eq!(kinds[8], &Tok::Float(1.5));
    }

    #[test]
    fn multichar_operators_win() {
        let toks = lex("a <= b == c << 2 && d").unwrap();
        let ops: Vec<&Tok> = toks
            .iter()
            .map(|(t, _)| t)
            .filter(|t| matches!(t, Tok::Punct(_)))
            .collect();
        assert_eq!(
            ops,
            [
                &Tok::Punct("<="),
                &Tok::Punct("=="),
                &Tok::Punct("<<"),
                &Tok::Punct("&&")
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let toks = lex("x // comment\n/* multi\nline */ y").unwrap();
        assert_eq!(toks[0].1, 1);
        assert_eq!(toks[1].1, 3, "y is on line 3");
    }

    #[test]
    fn hex_and_char_literals() {
        let toks = lex("0xff 'A' '\\n' '\\0'").unwrap();
        assert_eq!(toks[0].0, Tok::Int(255));
        assert_eq!(toks[1].0, Tok::Char(65));
        assert_eq!(toks[2].0, Tok::Char(10));
        assert_eq!(toks[3].0, Tok::Char(0));
    }

    #[test]
    fn errors_have_lines() {
        let e = lex("a\nb\n@").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(lex("'x").is_err());
        assert!(lex("/* never ends").is_err());
    }
}
