//! End-to-end tests: C programs compiled at runtime and executed
//! natively.

use tcc::{CallError, CcError, Program};

fn compile(src: &str) -> Program {
    match Program::compile(src) {
        Ok(p) => p,
        Err(e) => panic!("compile failed: {e}\n{src}"),
    }
}

#[test]
fn plus1() {
    let p = compile("int plus1(int x) { return x + 1; }");
    assert_eq!(p.call_int("plus1", &[41]).unwrap(), 42);
    assert_eq!(p.call_int("plus1", &[-1]).unwrap(), 0);
}

#[test]
fn arithmetic_and_precedence() {
    let p = compile("int f(int a, int b, int c) { return a + b * c - (a - b) / 2 + a % c; }");
    let f = |a: i64, b: i64, c: i64| a + b * c - (a - b) / 2 + a % c;
    for (a, b, c) in [(1, 2, 3), (10, -4, 7), (100, 3, 9), (-50, -60, 11)] {
        assert_eq!(p.call_int("f", &[a, b, c]).unwrap(), f(a, b, c));
    }
}

#[test]
fn bitwise_and_shifts() {
    let p = compile("int f(int a, int b) { return (a & b) | (a ^ 255) | (a << 2) | (b >> 1); }");
    let f = |a: i32, b: i32| (a & b) | (a ^ 255) | (a << 2) | (b >> 1);
    for (a, b) in [(0, 0), (0x55, 0xaa), (1024, 7), (-8, 3)] {
        assert_eq!(
            p.call_int("f", &[i64::from(a), i64::from(b)]).unwrap(),
            i64::from(f(a, b))
        );
    }
}

#[test]
fn recursion_fib_and_fact() {
    let p = compile(
        "
        int fib(int n) {
            if (n < 2) return n;
            return fib(n - 1) + fib(n - 2);
        }
        long fact(long n) {
            if (n <= 1) return 1;
            return n * fact(n - 1);
        }
        ",
    );
    assert_eq!(p.call_int("fib", &[10]).unwrap(), 55);
    assert_eq!(p.call_int("fib", &[20]).unwrap(), 6765);
    assert_eq!(p.call_int("fact", &[20]).unwrap(), 2432902008176640000);
}

#[test]
fn mutual_recursion_forward_reference() {
    let p = compile(
        "
        int is_even(int n) {
            if (n == 0) return 1;
            return is_odd(n - 1);
        }
        int is_odd(int n) {
            if (n == 0) return 0;
            return is_even(n - 1);
        }
        ",
    );
    assert_eq!(p.call_int("is_even", &[10]).unwrap(), 1);
    assert_eq!(p.call_int("is_odd", &[7]).unwrap(), 1);
    assert_eq!(p.call_int("is_even", &[7]).unwrap(), 0);
}

#[test]
fn loops_and_compound_assignment() {
    let p = compile(
        "
        int sum_to(int n) {
            int s = 0;
            for (int i = 1; i <= n; i += 1) s += i;
            return s;
        }
        int count_down(int n) {
            int steps = 0;
            while (n > 0) { n -= 3; steps++; }
            return steps;
        }
        int do_once(int x) {
            do { x *= 2; } while (x < 0);
            return x;
        }
        ",
    );
    assert_eq!(p.call_int("sum_to", &[100]).unwrap(), 5050);
    assert_eq!(p.call_int("count_down", &[10]).unwrap(), 4);
    assert_eq!(p.call_int("do_once", &[21]).unwrap(), 42);
    assert_eq!(p.call_int("do_once", &[0]).unwrap(), 0, "body runs once");
}

#[test]
fn break_continue_nested() {
    let p = compile(
        "
        int f(int n) {
            int hits = 0;
            for (int i = 0; i < n; i++) {
                if (i % 3 == 0) continue;
                if (i > 20) break;
                hits++;
            }
            return hits;
        }
        ",
    );
    // i in 1..=20 not divisible by 3: 20 - 6 = 14.
    assert_eq!(p.call_int("f", &[100]).unwrap(), 14);
    assert_eq!(p.call_int("f", &[5]).unwrap(), 3);
}

#[test]
fn pointers_and_arrays() {
    let p = compile(
        "
        int sum(int *a, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += a[i];
            return s;
        }
        void fill(int *a, int n, int v) {
            for (int i = 0; i < n; i++) a[i] = v + i;
        }
        int deref(int *p) { return *p; }
        void set(int *p, int v) { *p = v; }
        ",
    );
    let data = [1i32, 2, 3, 4, 5];
    assert_eq!(p.call_int("sum", &[data.as_ptr() as i64, 5]).unwrap(), 15);
    let mut out = [0i32; 8];
    p.call_int("fill", &[out.as_mut_ptr() as i64, 8, 100])
        .unwrap();
    assert_eq!(out, [100, 101, 102, 103, 104, 105, 106, 107]);
    let x = 7i32;
    assert_eq!(p.call_int("deref", &[&x as *const i32 as i64]).unwrap(), 7);
    let mut y = 0i32;
    p.call_int("set", &[&mut y as *mut i32 as i64, 99]).unwrap();
    assert_eq!(y, 99);
}

#[test]
fn char_pointers_and_string_ops() {
    let p = compile(
        "
        int strlen_(char *s) {
            int n = 0;
            while (s[n] != '\\0') n++;
            return n;
        }
        int count_char(char *s, int n, char c) {
            int hits = 0;
            for (int i = 0; i < n; i++) if (s[i] == c) hits++;
            return hits;
        }
        ",
    );
    let s = b"hello world\0";
    assert_eq!(p.call_int("strlen_", &[s.as_ptr() as i64]).unwrap(), 11);
    assert_eq!(
        p.call_int("count_char", &[s.as_ptr() as i64, 11, i64::from(b'l')])
            .unwrap(),
        3
    );
}

#[test]
fn address_of_locals() {
    let p = compile(
        "
        void bump(int *p) { *p = *p + 1; }
        int f(int x) {
            int v = x;
            bump(&v);
            bump(&v);
            return v;
        }
        ",
    );
    assert_eq!(p.call_int("f", &[40]).unwrap(), 42);
}

#[test]
fn doubles_and_conversions() {
    let p = compile(
        "
        double poly(double x) { return 2.0 * x * x - 3.0 * x + 0.5; }
        double mix(double a, double b) { return a / b + 1.5; }
        int trunc_(double x) { return (int) x; }
        double widen(int x) { return (double) x / 4.0; }
        int avg(int a, int b) { return (int) (((double) a + (double) b) / 2.0); }
        ",
    );
    assert_eq!(p.call_f64("poly", &[2.0]).unwrap(), 2.5);
    assert_eq!(p.call_f64("mix", &[3.0, 2.0]).unwrap(), 3.0);
    assert_eq!(
        p.call_int("trunc_", &[]).unwrap_err(),
        CallError::Arity {
            expected: 1,
            got: 0
        }
    );
    // SAFETY: the compiled program defines `trunc_` with exactly this
    // f64 -> i32 signature.
    let trunc_: extern "C" fn(f64) -> i32 = unsafe { p.as_fn("trunc_") };
    assert_eq!(trunc_(3.9), 3);
    assert_eq!(trunc_(-3.9), -3);
    // SAFETY: the compiled program defines `widen` with exactly this
    // i32 -> f64 signature.
    let widen: extern "C" fn(i32) -> f64 = unsafe { p.as_fn("widen") };
    assert_eq!(widen(10), 2.5);
    assert_eq!(p.call_int("avg", &[3, 4]).unwrap(), 3);
}

#[test]
fn logical_operators_short_circuit() {
    let p = compile(
        "
        int bomb(int *counter) { *counter = *counter + 1; return 1; }
        int and_test(int x, int *counter) { return x && bomb(counter); }
        int or_test(int x, int *counter) { return x || bomb(counter); }
        int chain(int a, int b, int c) { return a && b || c; }
        ",
    );
    let mut counter = 0i32;
    let cp = &mut counter as *mut i32 as i64;
    assert_eq!(p.call_int("and_test", &[0, cp]).unwrap(), 0);
    assert_eq!(counter, 0, "&& short-circuits");
    assert_eq!(p.call_int("and_test", &[5, cp]).unwrap(), 1);
    assert_eq!(counter, 1);
    assert_eq!(p.call_int("or_test", &[5, cp]).unwrap(), 1);
    assert_eq!(counter, 1, "|| short-circuits");
    assert_eq!(p.call_int("or_test", &[0, cp]).unwrap(), 1);
    assert_eq!(counter, 2);
    assert_eq!(p.call_int("chain", &[1, 1, 0]).unwrap(), 1);
    assert_eq!(p.call_int("chain", &[1, 0, 0]).unwrap(), 0);
    assert_eq!(p.call_int("chain", &[0, 0, 3]).unwrap(), 1);
}

#[test]
fn unary_operators() {
    let p = compile(
        "
        int f(int x) { return -x + !x + ~x; }
        int g(int x) { return !!x; }
        ",
    );
    let f = |x: i64| -x + i64::from(x == 0) + !x;
    for x in [-5i64, 0, 1, 42] {
        assert_eq!(p.call_int("f", &[x]).unwrap(), f(x));
    }
    assert_eq!(p.call_int("g", &[17]).unwrap(), 1);
    assert_eq!(p.call_int("g", &[0]).unwrap(), 0);
}

#[test]
fn increments_pre_and_post() {
    let p = compile(
        "
        int f(int x) {
            int a = x++;
            int b = ++x;
            int c = x--;
            int d = --x;
            return a * 1000000 + b * 10000 + c * 100 + d;
        }
        ",
    );
    // x=5: a=5 (x=6), b=7 (x=7), c=7 (x=6), d=5 (x=5).
    assert_eq!(
        p.call_int("f", &[5]).unwrap(),
        5 * 1000000 + 7 * 10000 + 7 * 100 + 5
    );
}

#[test]
fn calls_inside_expressions_spill_correctly() {
    let p = compile(
        "
        int id(int x) { return x; }
        int f(int a, int b) { return a * 10 + id(b); }
        int g(int a) { return id(a) + id(a + 1) * id(a + 2); }
        int h(int *arr) { return arr[id(2)] + 5; }
        ",
    );
    assert_eq!(p.call_int("f", &[3, 4]).unwrap(), 34);
    assert_eq!(p.call_int("g", &[5]).unwrap(), 5 + 6 * 7);
    let data = [10i32, 20, 30];
    assert_eq!(p.call_int("h", &[data.as_ptr() as i64]).unwrap(), 35);
}

#[test]
fn six_argument_calls() {
    let p = compile(
        "
        int six(int a, int b, int c, int d, int e, int f) {
            return a + 2*b + 3*c + 4*d + 5*e + 6*f;
        }
        int relay(int a, int b, int c, int d, int e, int f) {
            return six(f, e, d, c, b, a);
        }
        ",
    );
    assert_eq!(
        p.call_int("six", &[1, 2, 3, 4, 5, 6]).unwrap(),
        1 + 4 + 9 + 16 + 25 + 36
    );
    assert_eq!(
        p.call_int("relay", &[1, 2, 3, 4, 5, 6]).unwrap(),
        6 + 10 + 12 + 12 + 10 + 6
    );
}

#[test]
fn long_arithmetic() {
    let p = compile(
        "
        long mul(long a, long b) { return a * b; }
        long big(long n) {
            long s = 0;
            for (long i = 0; i < n; i++) s += i * i;
            return s;
        }
        ",
    );
    assert_eq!(p.call_int("mul", &[1 << 40, 3]).unwrap(), 3 << 40);
    assert_eq!(p.call_int("big", &[1000]).unwrap(), 332833500);
}

#[test]
fn gcd_and_primes() {
    let p = compile(
        "
        int gcd(int a, int b) {
            while (b != 0) {
                int t = a % b;
                a = b;
                b = t;
            }
            return a;
        }
        int is_prime(int n) {
            if (n < 2) return 0;
            for (int d = 2; d * d <= n; d++)
                if (n % d == 0) return 0;
            return 1;
        }
        int count_primes(int limit) {
            int k = 0;
            for (int i = 2; i < limit; i++) k += is_prime(i);
            return k;
        }
        ",
    );
    assert_eq!(p.call_int("gcd", &[48, 36]).unwrap(), 12);
    assert_eq!(p.call_int("gcd", &[17, 5]).unwrap(), 1);
    assert_eq!(p.call_int("count_primes", &[100]).unwrap(), 25);
}

#[test]
fn scopes_shadowing() {
    let p = compile(
        "
        int f(int x) {
            int y = 1;
            {
                int y = 2;
                x += y;
            }
            return x + y;
        }
        ",
    );
    assert_eq!(p.call_int("f", &[10]).unwrap(), 13);
}

#[test]
fn newton_sqrt_in_c() {
    let p = compile(
        "
        double my_sqrt(double v) {
            double x = v / 2.0 + 0.5;
            for (int i = 0; i < 30; i++) x = (x + v / x) / 2.0;
            return x;
        }
        ",
    );
    let r = p.call_f64("my_sqrt", &[2.0]).unwrap();
    assert!((r - 2.0f64.sqrt()).abs() < 1e-12, "{r}");
}

#[test]
fn semantic_errors_are_reported() {
    let cases = [
        ("int f() { return x; }", "not declared"),
        ("int f() { g(); return 0; }", "undeclared function"),
        ("int f(int a) { int a; return a; }", "redeclared"),
        ("int f() { break; }", "outside a loop"),
        ("void f() { return 3; }", "void function"),
        ("int f() { return *3; }", "non-pointer"),
        ("int f(int x) { return 1 = x; }", "not an lvalue"),
        ("int f() { return h(1); }", "undeclared"),
        (
            "int g(int a, int b) { return a; } int f() { return g(1); }",
            "takes 2 arguments",
        ),
        ("int f() { return 1.5 % 2; }", "integer operands"),
    ];
    for (src, needle) in cases {
        match Program::compile(src) {
            Err(CcError::Sem { msg, .. }) => {
                assert!(msg.contains(needle), "{src}: {msg:?} missing {needle:?}")
            }
            other => panic!("{src}: expected semantic error, got {other:?}"),
        }
    }
}

#[test]
fn parse_errors_are_reported() {
    assert!(matches!(
        Program::compile("int f( {"),
        Err(CcError::Parse(_))
    ));
}

#[test]
fn call_helper_type_checks() {
    let p = compile("double d(double x) { return x; } int i(int x) { return x; }");
    assert!(matches!(
        p.call_int("d", &[1]),
        Err(CallError::Signature(_))
    ));
    assert!(matches!(
        p.call_f64("i", &[1.0]),
        Err(CallError::Signature(_))
    ));
    assert!(matches!(
        p.call_int("nope", &[]),
        Err(CallError::Undefined(_))
    ));
}

#[test]
fn casts_between_int_widths_and_pointers() {
    let p = compile(
        "
        long widen(int x) { return (long) x; }
        int narrow(long x) { return (int) x; }
        long ptr2long(int *p) { return (long) p; }
        ",
    );
    assert_eq!(p.call_int("widen", &[-5]).unwrap(), -5);
    assert_eq!(p.call_int("narrow", &[0x1_0000_0002]).unwrap(), 2);
    let x = 0i32;
    let addr = &x as *const i32 as i64;
    assert_eq!(p.call_int("ptr2long", &[addr]).unwrap(), addr);
}

#[test]
fn pointer_difference_and_comparison() {
    let p = compile(
        "
        long diff(int *a, int *b) { return b - a; }
        int before(int *a, int *b) { return a < b; }
        ",
    );
    let arr = [0i32; 10];
    let a = arr.as_ptr() as i64;
    // SAFETY: index 7 is in bounds of the 10-element array.
    let b = unsafe { arr.as_ptr().add(7) } as i64;
    assert_eq!(p.call_int("diff", &[a, b]).unwrap(), 7);
    assert_eq!(p.call_int("before", &[a, b]).unwrap(), 1);
    assert_eq!(p.call_int("before", &[b, a]).unwrap(), 0);
}

#[test]
fn bubble_sort_program() {
    let p = compile(
        "
        void sort(int *a, int n) {
            for (int i = 0; i < n - 1; i++)
                for (int j = 0; j < n - 1 - i; j++)
                    if (a[j] > a[j + 1]) {
                        int t = a[j];
                        a[j] = a[j + 1];
                        a[j + 1] = t;
                    }
        }
        ",
    );
    let mut data = [5i32, 3, 8, 1, 9, 2, 7, 4, 6, 0];
    p.call_int("sort", &[data.as_mut_ptr() as i64, 10]).unwrap();
    assert_eq!(data, [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
}

#[test]
fn ackermann_stress_calls() {
    let p = compile(
        "
        int ack(int m, int n) {
            if (m == 0) return n + 1;
            if (n == 0) return ack(m - 1, 1);
            return ack(m - 1, ack(m, n - 1));
        }
        ",
    );
    assert_eq!(p.call_int("ack", &[2, 3]).unwrap(), 9);
    assert_eq!(p.call_int("ack", &[3, 3]).unwrap(), 61);
}

#[test]
fn local_arrays() {
    let p = compile(
        "
        int sieve(int limit) {
            int flag[100];
            for (int i = 0; i < limit; i++) flag[i] = 1;
            int count = 0;
            for (int i = 2; i < limit; i++) {
                if (flag[i]) {
                    count++;
                    for (int j = i + i; j < limit; j += i) flag[j] = 0;
                }
            }
            return count;
        }
        int sum_squares(int n) {
            int a[32];
            for (int i = 0; i < n; i++) a[i] = i * i;
            int s = 0;
            for (int i = 0; i < n; i++) s += a[i];
            return s;
        }
        long via_pointer(int n) {
            long vals[8];
            long *p = vals;
            for (int i = 0; i < n; i++) *(p + i) = i * 10;
            long s = 0;
            for (int i = 0; i < n; i++) s += vals[i];
            return s;
        }
        int bytes(int n) {
            char buf[16];
            for (int i = 0; i < n; i++) buf[i] = 'a' + i;
            int s = 0;
            for (int i = 0; i < n; i++) s += buf[i];
            return s;
        }
        ",
    );
    assert_eq!(p.call_int("sieve", &[100]).unwrap(), 25);
    assert_eq!(p.call_int("sum_squares", &[10]).unwrap(), 285);
    assert_eq!(p.call_int("via_pointer", &[8]).unwrap(), 280);
    assert_eq!(
        p.call_int("bytes", &[4]).unwrap(),
        i64::from(b'a') + i64::from(b'b') + i64::from(b'c') + i64::from(b'd')
    );
}

#[test]
fn array_passed_to_function() {
    let p = compile(
        "
        int total(int *a, int n) {
            int s = 0;
            for (int i = 0; i < n; i++) s += a[i];
            return s;
        }
        int driver(void) {
            int xs[5];
            for (int i = 0; i < 5; i++) xs[i] = i + 1;
            return total(xs, 5);
        }
        ",
    );
    assert_eq!(p.call_int("driver", &[]).unwrap(), 15);
}

#[test]
fn array_misuse_is_rejected() {
    match Program::compile("int f() { int a[4]; a = 0; return 0; }") {
        Err(CcError::Sem { msg, .. }) => assert!(msg.contains("not assignable"), "{msg}"),
        other => panic!("expected semantic error, got {other:?}"),
    }
    assert!(Program::compile("int f() { int a[0]; return 0; }").is_err());
    match Program::compile("int f() { int a[4] = 3; return a[0]; }") {
        Err(CcError::Sem { msg, .. }) => assert!(msg.contains("initializers"), "{msg}"),
        other => panic!("expected semantic error, got {other:?}"),
    }
}
