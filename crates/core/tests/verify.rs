//! Streaming-verifier tests: the regress corpus must come out clean on
//! every backend, a corpus of deliberately bad clients must each be
//! caught with the exact expected rule, and the differential
//! machine-code checker must pass the re-decode on real emitted code.

use vcode::target::{Finished, JumpTarget, Leaf, Target};
use vcode::verify::{self, Rule, Severity};
use vcode::{
    regress, Assembler, BinOp, Cond, Error, InsnDecoder, Reg, RegClass, RegKind, Sig, StackSlot,
    Ty, UnOp, VerifyReport,
};
use vcode_alpha::Alpha;
use vcode_mips::Mips;
use vcode_sparc::Sparc;
use vcode_x64::X64;

const MEM: usize = 64 * 1024;

/// Runs one verified generation session and returns the latched result
/// plus the verifier report (present even when generation failed).
fn session<T: Target>(
    sig: &str,
    leaf: Leaf,
    f: impl FnOnce(&mut Assembler<'_, T>),
) -> (Result<Finished, Error>, VerifyReport) {
    let mut mem = vec![0u8; MEM];
    let mut a = Assembler::<T>::lambda(&mut mem, sig, leaf).unwrap();
    a.enable_verifier();
    f(&mut a);
    let (r, report) = a.end_report();
    (r, *report.expect("verifier was enabled"))
}

/// A session that must both generate successfully and verify clean.
fn clean<T: Target>(sig: &str, f: impl FnOnce(&mut Assembler<'_, T>)) -> VerifyReport {
    let (r, report) = session::<T>(sig, Leaf::Yes, f);
    r.expect("clean program generates");
    assert!(
        report.is_clean(),
        "expected a clean report, got: {:#?}",
        report.diags
    );
    report
}

fn dispatch_binop<T: Target>(
    a: &mut Assembler<'_, T>,
    op: BinOp,
    ty: Ty,
    rd: Reg,
    r1: Reg,
    r2: Reg,
) {
    match (op, ty) {
        (BinOp::Add, Ty::I) => a.addi(rd, r1, r2),
        (BinOp::Add, Ty::U) => a.addu(rd, r1, r2),
        (BinOp::Add, Ty::L) => a.addl(rd, r1, r2),
        (BinOp::Add, Ty::Ul) => a.addul(rd, r1, r2),
        (BinOp::Sub, Ty::I) => a.subi(rd, r1, r2),
        (BinOp::Sub, Ty::U) => a.subu(rd, r1, r2),
        (BinOp::Sub, Ty::L) => a.subl(rd, r1, r2),
        (BinOp::Sub, Ty::Ul) => a.subul(rd, r1, r2),
        (BinOp::Mul, Ty::I) => a.muli(rd, r1, r2),
        (BinOp::Mul, Ty::U) => a.mulu(rd, r1, r2),
        (BinOp::Mul, Ty::L) => a.mull(rd, r1, r2),
        (BinOp::Mul, Ty::Ul) => a.mulul(rd, r1, r2),
        (BinOp::Div, Ty::I) => a.divi(rd, r1, r2),
        (BinOp::Div, Ty::U) => a.divu(rd, r1, r2),
        (BinOp::Div, Ty::L) => a.divl(rd, r1, r2),
        (BinOp::Div, Ty::Ul) => a.divul(rd, r1, r2),
        (BinOp::Mod, Ty::I) => a.modi(rd, r1, r2),
        (BinOp::Mod, Ty::U) => a.modu(rd, r1, r2),
        (BinOp::Mod, Ty::L) => a.modl(rd, r1, r2),
        (BinOp::Mod, Ty::Ul) => a.modul(rd, r1, r2),
        (BinOp::And, Ty::I) => a.andi(rd, r1, r2),
        (BinOp::And, Ty::U) => a.andu(rd, r1, r2),
        (BinOp::And, Ty::L) => a.andl(rd, r1, r2),
        (BinOp::And, Ty::Ul) => a.andul(rd, r1, r2),
        (BinOp::Or, Ty::I) => a.ori(rd, r1, r2),
        (BinOp::Or, Ty::U) => a.oru(rd, r1, r2),
        (BinOp::Or, Ty::L) => a.orl(rd, r1, r2),
        (BinOp::Or, Ty::Ul) => a.orul(rd, r1, r2),
        (BinOp::Xor, Ty::I) => a.xori(rd, r1, r2),
        (BinOp::Xor, Ty::U) => a.xoru(rd, r1, r2),
        (BinOp::Xor, Ty::L) => a.xorl(rd, r1, r2),
        (BinOp::Xor, Ty::Ul) => a.xorul(rd, r1, r2),
        (BinOp::Lsh, Ty::I) => a.lshi(rd, r1, r2),
        (BinOp::Lsh, Ty::U) => a.lshu(rd, r1, r2),
        (BinOp::Lsh, Ty::L) => a.lshl(rd, r1, r2),
        (BinOp::Lsh, Ty::Ul) => a.lshul(rd, r1, r2),
        (BinOp::Rsh, Ty::I) => a.rshi(rd, r1, r2),
        (BinOp::Rsh, Ty::U) => a.rshu(rd, r1, r2),
        (BinOp::Rsh, Ty::L) => a.rshl(rd, r1, r2),
        (BinOp::Rsh, Ty::Ul) => a.rshul(rd, r1, r2),
        (op, ty) => panic!("corpus produced {op:?}.{ty:?}"),
    }
}

fn dispatch_binop_imm<T: Target>(
    a: &mut Assembler<'_, T>,
    op: BinOp,
    ty: Ty,
    rd: Reg,
    rs: Reg,
    imm: i64,
) {
    match (op, ty) {
        (BinOp::Add, Ty::I) => a.addii(rd, rs, imm),
        (BinOp::Add, Ty::U) => a.addui(rd, rs, imm),
        (BinOp::Add, Ty::L) => a.addli(rd, rs, imm),
        (BinOp::Add, Ty::Ul) => a.adduli(rd, rs, imm),
        (BinOp::Sub, Ty::I) => a.subii(rd, rs, imm),
        (BinOp::Sub, Ty::U) => a.subui(rd, rs, imm),
        (BinOp::Sub, Ty::L) => a.subli(rd, rs, imm),
        (BinOp::Sub, Ty::Ul) => a.subuli(rd, rs, imm),
        (BinOp::Mul, Ty::I) => a.mulii(rd, rs, imm),
        (BinOp::Mul, Ty::U) => a.mului(rd, rs, imm),
        (BinOp::Mul, Ty::L) => a.mulli(rd, rs, imm),
        (BinOp::Mul, Ty::Ul) => a.mululi(rd, rs, imm),
        (BinOp::Div, Ty::I) => a.divii(rd, rs, imm),
        (BinOp::Div, Ty::U) => a.divui(rd, rs, imm),
        (BinOp::Div, Ty::L) => a.divli(rd, rs, imm),
        (BinOp::Div, Ty::Ul) => a.divuli(rd, rs, imm),
        (BinOp::Mod, Ty::I) => a.modii(rd, rs, imm),
        (BinOp::Mod, Ty::U) => a.modui(rd, rs, imm),
        (BinOp::Mod, Ty::L) => a.modli(rd, rs, imm),
        (BinOp::Mod, Ty::Ul) => a.moduli(rd, rs, imm),
        (BinOp::And, Ty::I) => a.andii(rd, rs, imm),
        (BinOp::And, Ty::U) => a.andui(rd, rs, imm),
        (BinOp::And, Ty::L) => a.andli(rd, rs, imm),
        (BinOp::And, Ty::Ul) => a.anduli(rd, rs, imm),
        (BinOp::Or, Ty::I) => a.orii(rd, rs, imm),
        (BinOp::Or, Ty::U) => a.orui(rd, rs, imm),
        (BinOp::Or, Ty::L) => a.orli(rd, rs, imm),
        (BinOp::Or, Ty::Ul) => a.oruli(rd, rs, imm),
        (BinOp::Xor, Ty::I) => a.xorii(rd, rs, imm),
        (BinOp::Xor, Ty::U) => a.xorui(rd, rs, imm),
        (BinOp::Xor, Ty::L) => a.xorli(rd, rs, imm),
        (BinOp::Xor, Ty::Ul) => a.xoruli(rd, rs, imm),
        (BinOp::Lsh, Ty::I) => a.lshii(rd, rs, imm),
        (BinOp::Lsh, Ty::U) => a.lshui(rd, rs, imm),
        (BinOp::Lsh, Ty::L) => a.lshli(rd, rs, imm),
        (BinOp::Lsh, Ty::Ul) => a.lshuli(rd, rs, imm),
        (BinOp::Rsh, Ty::I) => a.rshii(rd, rs, imm),
        (BinOp::Rsh, Ty::U) => a.rshui(rd, rs, imm),
        (BinOp::Rsh, Ty::L) => a.rshli(rd, rs, imm),
        (BinOp::Rsh, Ty::Ul) => a.rshuli(rd, rs, imm),
        (op, ty) => panic!("corpus produced {op:?}.{ty:?} imm"),
    }
}

fn dispatch_unop<T: Target>(a: &mut Assembler<'_, T>, op: UnOp, ty: Ty, rd: Reg, rs: Reg) {
    match (op, ty) {
        (UnOp::Com, Ty::I) => a.comi(rd, rs),
        (UnOp::Com, Ty::U) => a.comu(rd, rs),
        (UnOp::Com, Ty::L) => a.coml(rd, rs),
        (UnOp::Com, Ty::Ul) => a.comul(rd, rs),
        (UnOp::Not, Ty::I) => a.noti(rd, rs),
        (UnOp::Not, Ty::U) => a.notu(rd, rs),
        (UnOp::Not, Ty::L) => a.notl(rd, rs),
        (UnOp::Not, Ty::Ul) => a.notul(rd, rs),
        (UnOp::Mov, Ty::I) => a.movi(rd, rs),
        (UnOp::Mov, Ty::U) => a.movu(rd, rs),
        (UnOp::Mov, Ty::L) => a.movl(rd, rs),
        (UnOp::Mov, Ty::Ul) => a.movul(rd, rs),
        (UnOp::Neg, Ty::I) => a.negi(rd, rs),
        (UnOp::Neg, Ty::U) => a.negu(rd, rs),
        (UnOp::Neg, Ty::L) => a.negl(rd, rs),
        (UnOp::Neg, Ty::Ul) => a.negul(rd, rs),
        (op, ty) => panic!("corpus produced {op:?}.{ty:?}"),
    }
}

fn dispatch_branch<T: Target>(
    a: &mut Assembler<'_, T>,
    cond: Cond,
    ty: Ty,
    r1: Reg,
    r2: Reg,
    l: vcode::Label,
) {
    match (cond, ty) {
        (Cond::Lt, Ty::I) => a.blti(r1, r2, l),
        (Cond::Lt, Ty::U) => a.bltu(r1, r2, l),
        (Cond::Lt, Ty::L) => a.bltl(r1, r2, l),
        (Cond::Lt, Ty::Ul) => a.bltul(r1, r2, l),
        (Cond::Le, Ty::I) => a.blei(r1, r2, l),
        (Cond::Le, Ty::U) => a.bleu(r1, r2, l),
        (Cond::Le, Ty::L) => a.blel(r1, r2, l),
        (Cond::Le, Ty::Ul) => a.bleul(r1, r2, l),
        (Cond::Gt, Ty::I) => a.bgti(r1, r2, l),
        (Cond::Gt, Ty::U) => a.bgtu(r1, r2, l),
        (Cond::Gt, Ty::L) => a.bgtl(r1, r2, l),
        (Cond::Gt, Ty::Ul) => a.bgtul(r1, r2, l),
        (Cond::Ge, Ty::I) => a.bgei(r1, r2, l),
        (Cond::Ge, Ty::U) => a.bgeu(r1, r2, l),
        (Cond::Ge, Ty::L) => a.bgel(r1, r2, l),
        (Cond::Ge, Ty::Ul) => a.bgeul(r1, r2, l),
        (Cond::Eq, Ty::I) => a.beqi(r1, r2, l),
        (Cond::Eq, Ty::U) => a.bequ(r1, r2, l),
        (Cond::Eq, Ty::L) => a.beql(r1, r2, l),
        (Cond::Eq, Ty::Ul) => a.bequl(r1, r2, l),
        (Cond::Ne, Ty::I) => a.bnei(r1, r2, l),
        (Cond::Ne, Ty::U) => a.bneu(r1, r2, l),
        (Cond::Ne, Ty::L) => a.bnel(r1, r2, l),
        (Cond::Ne, Ty::Ul) => a.bneul(r1, r2, l),
        (cond, ty) => panic!("corpus produced {cond:?}.{ty:?}"),
    }
}

// ---------------------------------------------------------------------------
// Property: the regress corpus verifies clean on every backend
// ---------------------------------------------------------------------------

/// Streams the whole regress corpus (binops, immediate binops, unops,
/// branches) through the verified public assembler surface in chunks and
/// requires a clean report for every chunk.
fn corpus_is_clean<T: Target>() {
    let bits = T::WORD_BITS;
    let bins = regress::binop_cases(bits, 1, 0x5eed);
    for chunk in bins.chunks(24) {
        clean::<T>("%i%i", |a| {
            let (x, y) = (a.arg(0), a.arg(1));
            for c in chunk {
                let rd = a.getreg(RegClass::Temp).unwrap();
                dispatch_binop(a, c.op, c.ty, rd, x, y);
                a.putreg(rd);
            }
            a.reti(x);
        });
    }
    for chunk in bins.chunks(24) {
        clean::<T>("%i", |a| {
            let x = a.arg(0);
            for c in chunk {
                let rd = a.getreg(RegClass::Temp).unwrap();
                let imm = if bits == 32 {
                    c.b as i32 as i64
                } else {
                    c.b as i64
                };
                dispatch_binop_imm(a, c.op, c.ty, rd, x, imm);
                a.putreg(rd);
            }
            a.reti(x);
        });
    }
    for chunk in regress::unop_cases(bits).chunks(24) {
        clean::<T>("%i", |a| {
            let x = a.arg(0);
            for c in chunk {
                let rd = a.getreg(RegClass::Temp).unwrap();
                dispatch_unop(a, c.op, c.ty, rd, x);
                a.putreg(rd);
            }
            a.reti(x);
        });
    }
    for chunk in regress::branch_cases(bits).chunks(24) {
        clean::<T>("%i%i", |a| {
            let (x, y) = (a.arg(0), a.arg(1));
            for c in chunk {
                let l = a.genlabel();
                dispatch_branch(a, c.cond, c.ty, x, y, l);
                a.label(l);
            }
            a.reti(x);
        });
    }
}

#[test]
fn corpus_clean_mips() {
    corpus_is_clean::<Mips>();
}

#[test]
fn corpus_clean_sparc() {
    corpus_is_clean::<Sparc>();
}

#[test]
fn corpus_clean_alpha() {
    corpus_is_clean::<Alpha>();
}

#[test]
fn corpus_clean_x64() {
    corpus_is_clean::<X64>();
}

/// Floats, conversions, locals and constant pools verify clean too.
fn kitchen_sink_is_clean<T: Target>() {
    clean::<T>("%d%d", |a| {
        let (x, y) = (a.arg(0), a.arg(1));
        let f = a.getreg_f(RegClass::Temp).unwrap();
        a.addd(f, x, y);
        a.subd(f, f, y);
        a.muld(f, f, x);
        a.divd(f, f, y);
        a.negd(f, f);
        a.setd(f, 2.5);
        let i = a.getreg(RegClass::Temp).unwrap();
        a.cvd2i(i, f);
        a.cvi2d(f, i);
        let slot = a.local(Ty::D);
        a.st_slot(slot, f);
        a.ld_slot(f, slot);
        let islot = a.local(Ty::I);
        a.st_slot(islot, i);
        a.ld_slot(i, islot);
        a.putreg(i);
        a.putreg(f);
        a.retd(x);
    });
}

#[test]
fn kitchen_sink_clean_mips() {
    kitchen_sink_is_clean::<Mips>();
}

#[test]
fn kitchen_sink_clean_sparc() {
    kitchen_sink_is_clean::<Sparc>();
}

#[test]
fn kitchen_sink_clean_alpha() {
    kitchen_sink_is_clean::<Alpha>();
}

#[test]
fn kitchen_sink_clean_x64() {
    kitchen_sink_is_clean::<X64>();
}

// ---------------------------------------------------------------------------
// Bad-client corpus: every misuse is caught with the exact rule
// ---------------------------------------------------------------------------

/// Finds an integer register that is in no way nameable: not described
/// in the register file, not reserved, not an anchor.
fn undescribed_int<T: Target>() -> Reg {
    let rf = T::regfile();
    (0u8..64)
        .map(Reg::int)
        .find(|&r| {
            rf.desc(r).is_none()
                && !T::CHECKS.reserved_int.contains(&r.num())
                && r != rf.sp
                && r != rf.fp
                && Some(r) != rf.zero
        })
        .expect("every target leaves some integer register undescribed")
}

fn callee_saved_int<T: Target>() -> Option<Reg> {
    T::regfile()
        .int
        .iter()
        .find(|d| matches!(d.kind, RegKind::CalleeSaved))
        .map(|d| d.reg)
}

/// The target-independent misuse corpus, instantiated per backend. Each
/// case asserts the exact rule (and where interesting, the severity).
fn bad_clients<T: Target>() {
    // 1. Read of a register that was never written.
    let (_, rep) = session::<T>("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        let t = a.getreg(RegClass::Temp).unwrap();
        a.addi(x, t, x); // t is uninitialized
        a.putreg(t);
        a.reti(x);
    });
    assert_eq!(rep.count(Rule::UseBeforeDef), 1, "{:#?}", rep.diags);

    // 2. ...reported once per register, not per use.
    let (_, rep) = session::<T>("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        let t = a.getreg(RegClass::Temp).unwrap();
        a.addi(x, t, x);
        a.addi(x, t, x);
        a.putreg(t);
        a.reti(x);
    });
    assert_eq!(rep.count(Rule::UseBeforeDef), 1);

    // 3. Float register fed to an integer op.
    let (_, rep) = session::<T>("%i%d", Leaf::Yes, |a| {
        let (x, d) = (a.arg(0), a.arg(1));
        a.addi(x, d, x);
        a.reti(x);
    });
    assert!(rep.has(Rule::BankMismatch), "{:#?}", rep.diags);
    assert!(rep
        .at_least(Severity::Error)
        .any(|d| d.rule == Rule::BankMismatch));

    // 4. Integer register returned through the float path.
    let (_, rep) = session::<T>("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        a.retd(x);
    });
    assert!(rep.has(Rule::BankMismatch));

    // 5. Bank mismatch in a branch operand.
    let (_, rep) = session::<T>("%i%d", Leaf::Yes, |a| {
        let (x, d) = (a.arg(0), a.arg(1));
        let l = a.genlabel();
        a.blti(x, d, l);
        a.label(l);
        a.reti(x);
    });
    assert!(rep.has(Rule::BankMismatch));

    // 6. Naming a register the target reserves for synthesis.
    if let Some(&n) = T::CHECKS.reserved_int.first() {
        let (_, rep) = session::<T>("%i", Leaf::Yes, |a| {
            let x = a.arg(0);
            a.addi(x, Reg::int(n), x);
            a.reti(x);
        });
        assert!(rep.has(Rule::ReservedRegister), "{:#?}", rep.diags);
    }

    // 7. Naming a register that is not in the register file at all.
    let ghost = undescribed_int::<T>();
    let (_, rep) = session::<T>("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        a.movi(x, ghost);
        a.reti(x);
    });
    assert!(rep.has(Rule::UnknownRegister), "{:#?}", rep.diags);

    // 8. A leaked getreg lease is a note, not a warning: the report
    //    stays clean but records the leak.
    let (_, rep) = session::<T>("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        let t = a.getreg(RegClass::Temp).unwrap();
        a.movi(t, x);
        a.reti(x);
    });
    assert!(rep.has(Rule::LeakedReg));
    assert!(rep.is_clean(), "a leak alone must not dirty the report");

    // 9. Returning the same register twice.
    let (_, rep) = session::<T>("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        let t = a.getreg(RegClass::Temp).unwrap();
        a.putreg(t);
        a.putreg(t);
        a.reti(x);
    });
    assert_eq!(rep.count(Rule::DoubleFree), 1, "{:#?}", rep.diags);

    // 10. Out-of-range hard register index: typed error plus lint.
    let (r, rep) = session::<T>("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        let _ = a.hard_temp(usize::MAX);
        a.reti(x);
    });
    assert!(rep.has(Rule::BadOperand), "{:#?}", rep.diags);
    assert!(matches!(r, Err(Error::BadOperands(_))));

    // 11. Calling out of a declared leaf.
    let (r, rep) = session::<T>("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        let sig = Sig::parse("%i:%i").unwrap();
        let mut cf = a.call_begin(&sig);
        a.call_arg(&mut cf, 0, Ty::I, x);
        a.call_end(cf, JumpTarget::Abs(0x1000), None);
        a.reti(x);
    });
    assert!(rep.has(Rule::CallInLeaf), "{:#?}", rep.diags);
    assert!(matches!(r, Err(Error::CallInLeaf)));

    // 12. Binding the same label twice is diagnosed, not a panic, when
    //     the verifier is on.
    let (_, rep) = session::<T>("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        let l = a.genlabel();
        a.label(l);
        a.label(l);
        a.reti(x);
    });
    assert_eq!(rep.count(Rule::LabelRebound), 1, "{:#?}", rep.diags);

    // 13. Branching to a label that is never placed.
    let (r, rep) = session::<T>("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        let l = a.genlabel();
        a.jmp(l);
        a.reti(x);
    });
    assert!(rep.has(Rule::LabelUnbound), "{:#?}", rep.diags);
    assert!(matches!(r, Err(Error::UnboundLabel(_))));

    // 14. A fixup past the write cursor: typed error plus lint.
    let (r, rep) = session::<T>("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        let l = a.genlabel();
        a.label(l);
        a.raw()
            .fixup_at(0xffff, vcode::label::FixupTarget::Label(l), 0);
        a.reti(x);
    });
    assert!(rep.has(Rule::FixupPastCursor), "{:#?}", rep.diags);
    assert!(matches!(r, Err(Error::FixupOutOfRange { .. })));

    // 15. A stack-slot access outside every allocated local.
    let (_, rep) = session::<T>("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        let slot = a.local(Ty::I);
        let oob = StackSlot {
            base: slot.base,
            off: slot.off + 512,
            ty: slot.ty,
        };
        a.st_slot(oob, x);
        a.reti(x);
    });
    assert_eq!(rep.count(Rule::SlotOutOfBounds), 1, "{:#?}", rep.diags);

    // 16. Writing a callee-saved register that was never allocated, so
    //     the prologue will not preserve it for the caller.
    if let Some(s) = callee_saved_int::<T>() {
        let (_, rep) = session::<T>("%i", Leaf::Yes, |a| {
            let x = a.arg(0);
            a.movi(s, x);
            a.reti(x);
        });
        assert!(rep.has(Rule::CalleeSavedClobber), "{:#?}", rep.diags);
    }

    // 17. call_begin that is never completed.
    let (_, rep) = session::<T>("%i", Leaf::No, |a| {
        let x = a.arg(0);
        let sig = Sig::parse(":%i").unwrap();
        let _cf = a.call_begin(&sig);
        a.reti(x);
    });
    assert!(rep.has(Rule::UnbalancedCall), "{:#?}", rep.diags);

    // 18. Registers out of the register file fed to the tuning API:
    //     typed error, diagnosed, never a panic.
    let (r, rep) = session::<T>("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        a.set_register_class(ghost, RegKind::CallerSaved);
        a.reti(x);
    });
    assert!(rep.has(Rule::UnknownRegister), "{:#?}", rep.diags);
    assert!(matches!(r, Err(Error::UnknownRegister(_))));

    let (r, rep) = session::<T>("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        a.set_register_priority(vcode::Bank::Int, &[ghost]);
        a.reti(x);
    });
    assert!(rep.has(Rule::UnknownRegister), "{:#?}", rep.diags);
    assert!(matches!(r, Err(Error::UnknownRegister(_))));
}

#[test]
fn bad_clients_mips() {
    bad_clients::<Mips>();
}

#[test]
fn bad_clients_sparc() {
    bad_clients::<Sparc>();
}

#[test]
fn bad_clients_alpha() {
    bad_clients::<Alpha>();
}

#[test]
fn bad_clients_x64() {
    bad_clients::<X64>();
}

/// 32-bit targets diagnose immediates that cannot live in a machine
/// word.
#[test]
fn imm_out_of_range_is_32_bit_only() {
    let (_, rep) = session::<Mips>("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        a.setl(x, 0x1_0000_0000);
        a.reti(x);
    });
    assert!(rep.has(Rule::ImmOutOfRange), "{:#?}", rep.diags);

    let (_, rep) = session::<Alpha>("%i", Leaf::Yes, |a| {
        let x = a.arg(0);
        a.setl(x, 0x1_0000_0000);
        a.reti(x);
    });
    assert!(!rep.has(Rule::ImmOutOfRange), "{:#?}", rep.diags);
}

/// Dropping a verified session without `end` bumps the process-wide
/// orphan counter (the unbalanced-lambda detector).
#[test]
fn dropped_session_counts_as_orphan() {
    let before = verify::orphaned_sessions();
    {
        let mut mem = vec![0u8; 4096];
        let mut a = Assembler::<Mips>::lambda(&mut mem, "%i", Leaf::Yes).unwrap();
        a.enable_verifier();
        let x = a.arg(0);
        a.reti(x);
        // dropped without end()
    }
    assert!(verify::orphaned_sessions() > before);
}

// ---------------------------------------------------------------------------
// Zero-cost-off: the verifier must not change emitted bytes
// ---------------------------------------------------------------------------

fn bytes_identical_off_and_on<T: Target>() {
    let build = |verified: bool| -> (Vec<u8>, bool) {
        let mut mem = vec![0u8; MEM];
        let mut a = Assembler::<T>::lambda(&mut mem, "%i%i", Leaf::Yes).unwrap();
        if verified {
            a.enable_verifier();
        }
        let (x, y) = (a.arg(0), a.arg(1));
        let t = a.getreg(RegClass::Temp).unwrap();
        a.addi(t, x, y);
        a.mulii(t, t, 7);
        let l = a.genlabel();
        a.bnei(t, y, l);
        a.seti(t, 0);
        a.label(l);
        let slot = a.local(Ty::I);
        a.st_slot(slot, t);
        a.ld_slot(t, slot);
        a.putreg(t);
        a.reti(t);
        let fin = a.end().unwrap();
        let had_report = fin.verify.is_some();
        mem.truncate(fin.len);
        (mem, had_report)
    };
    let (off, off_report) = build(false);
    let (on, on_report) = build(true);
    assert_eq!(off, on, "verifier-on emission must be byte-identical");
    assert!(!off_report);
    assert!(on_report);
}

#[test]
fn bytes_identical_mips() {
    bytes_identical_off_and_on::<Mips>();
}

#[test]
fn bytes_identical_sparc() {
    bytes_identical_off_and_on::<Sparc>();
}

#[test]
fn bytes_identical_alpha() {
    bytes_identical_off_and_on::<Alpha>();
}

#[test]
fn bytes_identical_x64() {
    bytes_identical_off_and_on::<X64>();
}

// ---------------------------------------------------------------------------
// Differential machine-code checker on real emitted code
// ---------------------------------------------------------------------------

/// Builds a representative program (arith, immediates, a loop, locals,
/// floats) and returns its code, report and finish record.
fn representative<T: Target>() -> (Vec<u8>, VerifyReport, Finished) {
    let mut mem = vec![0u8; MEM];
    let mut a = Assembler::<T>::lambda(&mut mem, "%i%i", Leaf::Yes).unwrap();
    a.enable_verifier();
    let (x, y) = (a.arg(0), a.arg(1));
    let t = a.getreg(RegClass::Temp).unwrap();
    let acc = a.getreg(RegClass::Temp).unwrap();
    a.seti(acc, 0);
    a.movi(t, x);
    let top = a.genlabel();
    let done = a.genlabel();
    a.label(top);
    a.blei(t, y, done);
    a.addi(acc, acc, t);
    a.subii(t, t, 1);
    a.jmp(top);
    a.label(done);
    let slot = a.local(Ty::I);
    a.st_slot(slot, acc);
    a.ld_slot(acc, slot);
    let f = a.getreg_f(RegClass::Temp).unwrap();
    a.setd(f, 1.5);
    a.addd(f, f, f);
    a.putreg(f);
    a.putreg(t);
    a.reti(acc);
    let fin = a.end().unwrap();
    let report = *fin.verify.clone().unwrap();
    mem.truncate(fin.len);
    (mem, report, fin)
}

fn cross_checks_green<T: Target>(dec: &dyn InsnDecoder) {
    let (code, report, fin) = representative::<T>();
    let diags = vcode::cross_check(&code, &report, &fin, dec, &T::CHECKS);
    assert!(diags.is_empty(), "differential check found: {diags:#?}");
    assert_eq!(report.marks.len() as u64, report.vcode_insns);
}

#[test]
fn cross_check_green_mips() {
    cross_checks_green::<Mips>(&vcode_sim::mips::Decoder);
}

#[test]
fn cross_check_green_sparc() {
    cross_checks_green::<Sparc>(&vcode_sim::sparc::Decoder);
}

#[test]
fn cross_check_green_alpha() {
    cross_checks_green::<Alpha>(&vcode_sim::alpha::Decoder);
}

#[test]
fn cross_check_green_x64() {
    cross_checks_green::<X64>(&vcode_x64::declen::Decoder);
}

/// Corrupting bytes inside a recorded span is caught by the re-decode.
#[test]
fn cross_check_catches_corruption() {
    let (mut code, report, fin) = representative::<Mips>();
    let m = report.marks[report.marks.len() / 2];
    code[m.start..m.start + 4].copy_from_slice(&0xffff_ffffu32.to_le_bytes());
    let diags = vcode::cross_check(
        &code,
        &report,
        &fin,
        &vcode_sim::mips::Decoder,
        &Mips::CHECKS,
    );
    assert!(
        diags.iter().any(|d| d.rule == Rule::DecodeError),
        "{diags:#?}"
    );
}

/// A doctored mark that splits a machine instruction is a boundary
/// mismatch.
#[test]
fn cross_check_catches_split_spans() {
    let (code, mut report, fin) = representative::<Mips>();
    let k = report.marks.len() / 2;
    report.marks[k].end -= 2; // cut into the middle of a word
    let diags = vcode::cross_check(
        &code,
        &report,
        &fin,
        &vcode_sim::mips::Decoder,
        &Mips::CHECKS,
    );
    assert!(
        diags
            .iter()
            .any(|d| matches!(d.rule, Rule::BoundaryMismatch | Rule::DecodeError)),
        "{diags:#?}"
    );
}

/// Losing a mark makes the instruction accounting disagree.
#[test]
fn cross_check_catches_count_mismatch() {
    let (code, mut report, fin) = representative::<Mips>();
    report.marks.pop();
    let diags = vcode::cross_check(
        &code,
        &report,
        &fin,
        &vcode_sim::mips::Decoder,
        &Mips::CHECKS,
    );
    assert!(
        diags.iter().any(|d| d.rule == Rule::InsnCountMismatch),
        "{diags:#?}"
    );
}
