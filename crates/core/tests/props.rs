//! Property-style tests on the core data structures and invariants,
//! driven by the in-repo deterministic [`XorShift`] generator (no
//! external property-testing dependency, so tier-1 runs offline).

use vcode::buf::CodeBuffer;
use vcode::label::LiteralPool;
use vcode::reg::{Reg, RegClass, RegDesc, RegFile, RegKind};
use vcode::regalloc::RegAlloc;
use vcode::regress::{canon, eval_binop, eval_cond, eval_unop, XorShift};
use vcode::spec::Spec;
use vcode::{BinOp, Cond, Sig, Ty, UnOp};

const ARITH: [Ty; 7] = [Ty::I, Ty::U, Ty::L, Ty::Ul, Ty::P, Ty::F, Ty::D];

fn arith_ty(rng: &mut XorShift) -> Ty {
    ARITH[rng.below(ARITH.len() as u64) as usize]
}

/// Any signature built from valid types prints back to a string that
/// parses to the same signature.
#[test]
fn sig_roundtrip() {
    let mut rng = XorShift::new(0x51c);
    for _ in 0..256 {
        let n = rng.below(8) as usize;
        let args: Vec<Ty> = (0..n).map(|_| arith_ty(&mut rng)).collect();
        let ret = arith_ty(&mut rng);
        let mut s = String::new();
        for t in &args {
            s.push('%');
            s.push_str(t.suffix());
        }
        s.push(':');
        s.push_str(ret.suffix());
        let sig = Sig::parse(&s).expect("round-trip parses");
        assert_eq!(sig.args(), &args[..]);
        assert_eq!(sig.ret(), ret);
    }
}

/// The code buffer's cursor only moves forward, never past capacity,
/// and reads observe the most recent write.
#[test]
fn buffer_is_monotonic() {
    let mut rng = XorShift::new(0xb0f);
    for _ in 0..64 {
        let cap = rng.below(512) as usize;
        let n_ops = rng.below(200) as usize;
        let mut mem = vec![0u8; cap];
        let mut b = CodeBuffer::new(&mut mem);
        let mut prev = 0;
        for i in 0..n_ops {
            let v = rng.next_u64() as u32;
            b.put_u32(v);
            assert!(b.len() >= prev);
            assert!(b.len() <= cap);
            prev = b.len();
            if (i + 1) * 4 <= cap {
                assert_eq!(b.read_u32(i * 4), v);
            } else {
                assert!(b.overflowed());
            }
        }
    }
}

/// The literal pool deduplicates by bit pattern and, once emitted,
/// every entry's offset points to its exact bytes.
#[test]
fn literal_pool_offsets_are_faithful() {
    let mut rng = XorShift::new(0x9001);
    for _ in 0..64 {
        let n = rng.range(1, 32) as usize;
        // Bias toward collisions so dedup is actually exercised.
        let vals: Vec<f64> = (0..n)
            .map(|_| {
                if rng.next_bool() {
                    f64::from_bits(rng.next_u64())
                } else {
                    rng.below(4) as f64
                }
            })
            .collect();
        let mut pool = LiteralPool::new();
        let ids: Vec<_> = vals.iter().map(|&v| pool.intern_f64(v)).collect();
        assert!(pool.len() <= vals.len());
        let mut mem = vec![0u8; 16 + vals.len() * 8];
        let mut buf = CodeBuffer::new(&mut mem);
        buf.put_u32(0); // misalign a little
        pool.emit(&mut buf);
        for (id, v) in ids.iter().zip(&vals) {
            let off = pool.offset(*id);
            assert_eq!(off % 8, 0, "doubles are 8-aligned");
            let got = f64::from_bits(
                u64::from(buf.read_u32(off)) | (u64::from(buf.read_u32(off + 4)) << 32),
            );
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }
}

/// The register allocator never hands out the same register twice
/// without an intervening putreg, and never hands out reserved
/// registers.
#[test]
fn regalloc_never_double_allocates() {
    static INT: [RegDesc; 6] = [
        RegDesc {
            reg: Reg::int(8),
            kind: RegKind::CallerSaved,
            name: "t0",
        },
        RegDesc {
            reg: Reg::int(9),
            kind: RegKind::CallerSaved,
            name: "t1",
        },
        RegDesc {
            reg: Reg::int(4),
            kind: RegKind::Arg(0),
            name: "a0",
        },
        RegDesc {
            reg: Reg::int(16),
            kind: RegKind::CalleeSaved,
            name: "s0",
        },
        RegDesc {
            reg: Reg::int(17),
            kind: RegKind::CalleeSaved,
            name: "s1",
        },
        RegDesc {
            reg: Reg::int(1),
            kind: RegKind::Reserved,
            name: "at",
        },
    ];
    static RF: RegFile = RegFile {
        int: &INT,
        flt: &[],
        hard_temps: &[],
        hard_saved: &[],
        sp: Reg::int(29),
        fp: Reg::int(30),
        zero: None,
    };
    let mut rng = XorShift::new(0xa110c);
    for _ in 0..128 {
        let steps = rng.range(1, 64);
        let mut ra = RegAlloc::new(&RF, false);
        let mut live: Vec<Reg> = Vec::new();
        for _ in 0..steps {
            if rng.next_bool() || live.is_empty() {
                if let Some(r) = ra.getreg(vcode::Bank::Int, RegClass::Temp) {
                    assert!(!live.contains(&r), "double allocation of {r}");
                    assert_ne!(r, Reg::int(1), "reserved register escaped");
                    live.push(r);
                } else {
                    assert_eq!(live.len(), 5, "exhaustion only when all are live");
                }
            } else {
                let r = live.pop().expect("non-empty");
                ra.putreg(r);
            }
        }
    }
}

/// Reference-semantics sanity: algebraic identities hold for the
/// regression oracle itself.
#[test]
fn reference_semantics_identities() {
    const TYS: [Ty; 4] = [Ty::I, Ty::U, Ty::L, Ty::Ul];
    let mut rng = XorShift::new(0x1de7);
    let bits = 64;
    for _ in 0..512 {
        let a = rng.next_u64();
        let b = rng.next_u64();
        let ty = TYS[rng.below(4) as usize];
        // x + y == y + x
        assert_eq!(
            eval_binop(BinOp::Add, ty, a, b, bits),
            eval_binop(BinOp::Add, ty, b, a, bits)
        );
        // x - x == 0
        assert_eq!(eval_binop(BinOp::Sub, ty, a, a, bits), Some(0));
        // x ^ x == 0
        assert_eq!(eval_binop(BinOp::Xor, ty, a, a, bits), Some(0));
        // neg(neg x) == canon(x)
        let n = eval_unop(UnOp::Neg, ty, a, bits).unwrap();
        assert_eq!(
            eval_unop(UnOp::Neg, ty, n, bits).unwrap(),
            canon(ty, a, bits)
        );
        // exactly one of <, ==, > holds
        let lt = eval_cond(Cond::Lt, ty, a, b, bits);
        let eq = eval_cond(Cond::Eq, ty, a, b, bits);
        let gt = eval_cond(Cond::Gt, ty, a, b, bits);
        assert_eq!(u8::from(lt) + u8::from(eq) + u8::from(gt), 1);
        // <= is < or ==
        assert_eq!(eval_cond(Cond::Le, ty, a, b, bits), lt || eq);
    }
}

/// The spec preprocessor: generated instruction names are the base
/// name composed with each type suffix (plus `i` for immediate forms),
/// in clause order.
#[test]
fn spec_composition() {
    let mut rng = XorShift::new(0x5bec);
    for _ in 0..64 {
        let len = rng.range(1, 9) as usize;
        let base: String = (0..len)
            .map(|_| (b'a' + rng.below(26) as u8) as char)
            .collect();
        let n_types = rng.range(1, 5) as usize;
        let types = [Ty::I, Ty::U, Ty::L, Ty::Ul][..n_types].to_vec();
        let tlist: Vec<&str> = types.iter().map(|t| t.suffix()).collect();
        let text = format!("({base} (rd, rs) ({} mach machi))", tlist.join(" "));
        let spec = Spec::parse(&text).expect("valid spec");
        let defs = spec.instructions();
        assert_eq!(defs.len(), types.len() * 2);
        for (k, ty) in types.iter().enumerate() {
            assert_eq!(&defs[2 * k].name, &format!("{base}{}", ty.suffix()));
            assert_eq!(&defs[2 * k + 1].name, &format!("{base}{}i", ty.suffix()));
            assert!(defs[2 * k + 1].imm);
        }
    }
}
