//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;
use vcode::buf::CodeBuffer;
use vcode::label::LiteralPool;
use vcode::reg::{Reg, RegClass, RegDesc, RegFile, RegKind};
use vcode::regalloc::RegAlloc;
use vcode::regress::{eval_binop, eval_cond, eval_unop};
use vcode::spec::Spec;
use vcode::{BinOp, Cond, Sig, Ty, UnOp};

fn arith_ty() -> impl Strategy<Value = Ty> {
    prop_oneof![
        Just(Ty::I),
        Just(Ty::U),
        Just(Ty::L),
        Just(Ty::Ul),
        Just(Ty::P),
        Just(Ty::F),
        Just(Ty::D),
    ]
}

proptest! {
    /// Any signature built from valid types prints back to a string
    /// that parses to the same signature.
    #[test]
    fn sig_roundtrip(args in proptest::collection::vec(arith_ty(), 0..8), ret in arith_ty()) {
        let mut s = String::new();
        for t in &args {
            s.push('%');
            s.push_str(t.suffix());
        }
        s.push(':');
        s.push_str(ret.suffix());
        let sig = Sig::parse(&s).expect("round-trip parses");
        prop_assert_eq!(sig.args(), &args[..]);
        prop_assert_eq!(sig.ret(), ret);
    }

    /// The code buffer's cursor only moves forward, never past capacity,
    /// and reads observe the most recent write.
    #[test]
    fn buffer_is_monotonic(ops in proptest::collection::vec(any::<u32>(), 0..200), cap in 0usize..512) {
        let mut mem = vec![0u8; cap];
        let mut b = CodeBuffer::new(&mut mem);
        let mut prev = 0;
        for (i, v) in ops.iter().enumerate() {
            b.put_u32(*v);
            prop_assert!(b.len() >= prev);
            prop_assert!(b.len() <= cap);
            prev = b.len();
            if (i + 1) * 4 <= cap {
                prop_assert_eq!(b.read_u32(i * 4), *v);
            } else {
                prop_assert!(b.overflowed());
            }
        }
    }

    /// The literal pool deduplicates by bit pattern and, once emitted,
    /// every entry's offset points to its exact bytes.
    #[test]
    fn literal_pool_offsets_are_faithful(vals in proptest::collection::vec(any::<f64>(), 1..32)) {
        let mut pool = LiteralPool::new();
        let ids: Vec<_> = vals.iter().map(|&v| pool.intern_f64(v)).collect();
        prop_assert!(pool.len() <= vals.len());
        let mut mem = vec![0u8; 16 + vals.len() * 8];
        let mut buf = CodeBuffer::new(&mut mem);
        buf.put_u32(0); // misalign a little
        pool.emit(&mut buf);
        for (id, v) in ids.iter().zip(&vals) {
            let off = pool.offset(*id);
            prop_assert_eq!(off % 8, 0, "doubles are 8-aligned");
            let got = f64::from_bits(
                u64::from(buf.read_u32(off)) | (u64::from(buf.read_u32(off + 4)) << 32),
            );
            prop_assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    /// The register allocator never hands out the same register twice
    /// without an intervening putreg, and never hands out reserved
    /// registers.
    #[test]
    fn regalloc_never_double_allocates(script in proptest::collection::vec(any::<bool>(), 1..64)) {
        static INT: [RegDesc; 6] = [
            RegDesc { reg: Reg::int(8), kind: RegKind::CallerSaved, name: "t0" },
            RegDesc { reg: Reg::int(9), kind: RegKind::CallerSaved, name: "t1" },
            RegDesc { reg: Reg::int(4), kind: RegKind::Arg(0), name: "a0" },
            RegDesc { reg: Reg::int(16), kind: RegKind::CalleeSaved, name: "s0" },
            RegDesc { reg: Reg::int(17), kind: RegKind::CalleeSaved, name: "s1" },
            RegDesc { reg: Reg::int(1), kind: RegKind::Reserved, name: "at" },
        ];
        static RF: RegFile = RegFile {
            int: &INT,
            flt: &[],
            hard_temps: &[],
            hard_saved: &[],
            sp: Reg::int(29),
            fp: Reg::int(30),
            zero: None,
        };
        let mut ra = RegAlloc::new(&RF, false);
        let mut live: Vec<Reg> = Vec::new();
        for take in script {
            if take || live.is_empty() {
                if let Some(r) = ra.getreg(vcode::Bank::Int, RegClass::Temp) {
                    prop_assert!(!live.contains(&r), "double allocation of {r}");
                    prop_assert_ne!(r, Reg::int(1), "reserved register escaped");
                    live.push(r);
                } else {
                    prop_assert_eq!(live.len(), 5, "exhaustion only when all are live");
                }
            } else {
                let r = live.pop().expect("non-empty");
                ra.putreg(r);
            }
        }
    }

    /// Reference-semantics sanity: algebraic identities hold for the
    /// regression oracle itself.
    #[test]
    fn reference_semantics_identities(a in any::<u64>(), b in any::<u64>(), ty in prop_oneof![Just(Ty::I), Just(Ty::U), Just(Ty::L), Just(Ty::Ul)]) {
        let bits = 64;
        // x + y == y + x
        prop_assert_eq!(
            eval_binop(BinOp::Add, ty, a, b, bits),
            eval_binop(BinOp::Add, ty, b, a, bits)
        );
        // x - x == 0
        prop_assert_eq!(eval_binop(BinOp::Sub, ty, a, a, bits), Some(0));
        // x ^ x == 0, x | x == x&canon
        prop_assert_eq!(eval_binop(BinOp::Xor, ty, a, a, bits), Some(0).map(|z| z));
        // neg(neg x) == canon(x)
        let n = eval_unop(UnOp::Neg, ty, a, bits).unwrap();
        prop_assert_eq!(eval_unop(UnOp::Neg, ty, n, bits).unwrap(), vcode::regress::canon(ty, a, bits));
        // exactly one of <, ==, > holds
        let lt = eval_cond(Cond::Lt, ty, a, b, bits);
        let eq = eval_cond(Cond::Eq, ty, a, b, bits);
        let gt = eval_cond(Cond::Gt, ty, a, b, bits);
        prop_assert_eq!(u8::from(lt) + u8::from(eq) + u8::from(gt), 1);
        // <= is < or ==
        prop_assert_eq!(eval_cond(Cond::Le, ty, a, b, bits), lt || eq);
    }

    /// The spec preprocessor: generated instruction names are the base
    /// name composed with each type suffix (plus `i` for immediate
    /// forms), in clause order.
    #[test]
    fn spec_composition(base in "[a-z]{1,8}", n_types in 1usize..5) {
        let types = [Ty::I, Ty::U, Ty::L, Ty::Ul][..n_types.min(4)].to_vec();
        let tlist: Vec<&str> = types.iter().map(|t| t.suffix()).collect();
        let text = format!("({base} (rd, rs) ({} mach machi))", tlist.join(" "));
        let spec = Spec::parse(&text).expect("valid spec");
        let defs = spec.instructions();
        prop_assert_eq!(defs.len(), types.len() * 2);
        for (k, ty) in types.iter().enumerate() {
            prop_assert_eq!(&defs[2 * k].name, &format!("{base}{}", ty.suffix()));
            prop_assert_eq!(&defs[2 * k + 1].name, &format!("{base}{}i", ty.suffix()));
            prop_assert!(defs[2 * k + 1].imm);
        }
    }
}
