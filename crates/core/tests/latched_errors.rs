//! Regression tests: client misuse that used to panic now latches
//! [`Error::BadOperands`] and is reported by `end()`, per the paper's
//! "signals an error" contract (§5.2).

use vcode::fake::FakeTarget;
use vcode::{Assembler, Error, Leaf, Ty};

fn asm(mem: &mut [u8]) -> Assembler<'_, FakeTarget> {
    Assembler::<FakeTarget>::lambda(mem, "%i:i", Leaf::Yes).expect("prologue fits")
}

#[test]
fn hard_temp_out_of_range_latches() {
    let mut mem = vec![0u8; 1024];
    let mut a = asm(&mut mem);
    // FakeTarget exposes 4 hard temporaries; index 99 used to panic.
    let r = a.hard_temp(99);
    // A usable dummy register comes back so generation can continue...
    a.movi(r, r);
    // ...but end() reports the misuse.
    assert!(matches!(a.end(), Err(Error::BadOperands(_))));
}

#[test]
fn hard_temp_in_range_still_works() {
    let mut mem = vec![0u8; 1024];
    let mut a = asm(&mut mem);
    let r = a.hard_temp(2);
    a.movi(r, r);
    a.reti(r);
    assert!(a.end().is_ok());
}

#[test]
fn hard_saved_out_of_range_latches() {
    let mut mem = vec![0u8; 1024];
    let mut a = asm(&mut mem);
    let r = a.hard_saved(4); // one past the end
    a.movi(r, r);
    assert!(matches!(a.end(), Err(Error::BadOperands(_))));
}

#[test]
fn void_local_latches() {
    let mut mem = vec![0u8; 1024];
    let mut a = asm(&mut mem);
    // A void-typed stack slot has no size; this used to panic inside
    // Ty::size_bytes.
    let _slot = a.local(Ty::V);
    assert!(matches!(a.end(), Err(Error::BadOperands(_))));
}

#[test]
fn void_or_empty_local_array_latches() {
    let mut mem = vec![0u8; 1024];
    let mut a = asm(&mut mem);
    let _slot = a.local_array(Ty::V, 3);
    assert!(matches!(a.end(), Err(Error::BadOperands(_))));

    let mut mem = vec![0u8; 1024];
    let mut a = asm(&mut mem);
    let _slot = a.local_array(Ty::I, 0);
    assert!(matches!(a.end(), Err(Error::BadOperands(_))));
}

#[test]
fn sized_local_still_works() {
    let mut mem = vec![0u8; 1024];
    let mut a = asm(&mut mem);
    let _slot = a.local(Ty::I);
    let _arr = a.local_array(Ty::D, 4);
    let x = a.arg(0);
    a.reti(x);
    assert!(a.end().is_ok());
}

#[test]
fn try_size_bytes_is_total() {
    assert_eq!(Ty::V.try_size_bytes(64), None);
    assert_eq!(Ty::I.try_size_bytes(64), Some(4));
    assert_eq!(Ty::P.try_size_bytes(32), Some(4));
    assert_eq!(Ty::P.try_size_bytes(64), Some(8));
    assert_eq!(Ty::D.try_size_bytes(32), Some(8));
}
