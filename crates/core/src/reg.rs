//! Registers and register-file descriptions.
//!
//! VCODE hands out *physical* machine registers: clients perform "virtual
//! register allocation" at static compile time by asking the allocator for
//! registers up front (paper §3). A [`Reg`] is therefore just a physical
//! register number tagged with the bank (integer or floating-point) it
//! lives in.

use std::fmt;

/// Which register file a register belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Bank {
    /// General-purpose integer registers.
    Int,
    /// Floating-point registers.
    Flt,
}

/// A physical machine register.
///
/// The numbering is target-specific (e.g. on MIPS, `Reg::int(4)` is `$a0`).
/// Clients normally obtain registers from
/// [`Assembler::getreg`](crate::Assembler::getreg) or from the argument
/// vector returned by [`Assembler::lambda`](crate::Assembler::lambda);
/// the architecture-independent hard-coded names [`T0`]–[`T3`] and
/// [`S0`]–[`S3`] are resolved per target (paper §5.3).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg {
    bank: Bank,
    num: u8,
}

impl Reg {
    /// An integer register with the given target-specific number.
    #[inline]
    pub const fn int(num: u8) -> Reg {
        Reg {
            bank: Bank::Int,
            num,
        }
    }

    /// A floating-point register with the given target-specific number.
    #[inline]
    pub const fn flt(num: u8) -> Reg {
        Reg {
            bank: Bank::Flt,
            num,
        }
    }

    /// The register's number within its bank.
    #[inline]
    pub const fn num(self) -> u8 {
        self.num
    }

    /// The bank this register belongs to.
    #[inline]
    pub const fn bank(self) -> Bank {
        self.bank
    }

    /// `true` if this is an integer register.
    #[inline]
    pub const fn is_int(self) -> bool {
        matches!(self.bank, Bank::Int)
    }

    /// `true` if this is a floating-point register.
    #[inline]
    pub const fn is_flt(self) -> bool {
        matches!(self.bank, Bank::Flt)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.bank {
            Bank::Int => write!(f, "r{}", self.num),
            Bank::Flt => write!(f, "f{}", self.num),
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Allocation class of a register candidate (paper §3.2).
///
/// `Temp` registers do not survive procedure calls; `Persistent` registers
/// do (on conventional targets these map to caller-saved and callee-saved
/// registers respectively, but VCODE lets clients reclassify registers
/// per generated function — see
/// [`Assembler::set_register_class`](crate::Assembler::set_register_class)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegClass {
    /// Not preserved across calls ("temporary").
    Temp,
    /// Preserved across calls ("persistent").
    Persistent,
}

/// How a physical register may be used, from the allocator's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegKind {
    /// Caller-saved: free to use between calls, clobbered by calls.
    CallerSaved,
    /// Callee-saved: usable as persistent, must be saved in the prologue.
    CalleeSaved,
    /// Dedicated to passing the n-th argument; available for allocation
    /// when the generated function takes fewer arguments (paper §3.2:
    /// "makes unused argument registers available for allocation").
    Arg(u8),
    /// Reserved by the backend for instruction synthesis or by the ABI
    /// (stack pointer, assembler temporaries, ...). Never allocated.
    Reserved,
}

/// Static description of one register candidate.
#[derive(Debug, Clone, Copy)]
pub struct RegDesc {
    /// The register.
    pub reg: Reg,
    /// Its default kind under the target's standard calling convention.
    pub kind: RegKind,
    /// Target-specific assembly name, for diagnostics and disassembly.
    pub name: &'static str,
}

/// Static description of a target's register files.
///
/// The order of `int` and `flt` is the default allocation priority
/// ordering (paper §3.2); clients may override it per function.
#[derive(Debug, Clone, Copy)]
pub struct RegFile {
    /// Integer register candidates, in default allocation priority order.
    pub int: &'static [RegDesc],
    /// Floating-point register candidates, in priority order.
    pub flt: &'static [RegDesc],
    /// Architecture-independent temporary names `T0..` (paper §5.3),
    /// resolved to physical registers.
    pub hard_temps: &'static [Reg],
    /// Architecture-independent persistent names `S0..`, resolved to
    /// physical registers.
    pub hard_saved: &'static [Reg],
    /// The stack pointer.
    pub sp: Reg,
    /// The frame pointer (or stack pointer again if frameless).
    pub fp: Reg,
    /// Hard-wired zero register, if the target has one.
    pub zero: Option<Reg>,
}

impl RegFile {
    /// Looks up the descriptor for `reg`, if it is a candidate.
    pub fn desc(&self, reg: Reg) -> Option<&RegDesc> {
        let bank = match reg.bank() {
            Bank::Int => self.int,
            Bank::Flt => self.flt,
        };
        bank.iter().find(|d| d.reg == reg)
    }

    /// Target-specific name of `reg`, or `"r?"`-style fallback.
    pub fn name(&self, reg: Reg) -> String {
        match self.desc(reg) {
            Some(d) => d.name.to_owned(),
            None => format!("{reg}"),
        }
    }
}

/// Architecture-independent hard-coded temporary register names
/// (paper §5.3). Resolve with
/// [`Assembler::hard_temp`](crate::Assembler::hard_temp).
pub const T0: usize = 0;
/// Second hard temporary.
pub const T1: usize = 1;
/// Third hard temporary.
pub const T2: usize = 2;
/// Fourth hard temporary.
pub const T3: usize = 3;
/// First hard persistent (callee-saved) register name.
pub const S0: usize = 0;
/// Second hard persistent register name.
pub const S1: usize = 1;
/// Third hard persistent register name.
pub const S2: usize = 2;
/// Fourth hard persistent register name.
pub const S3: usize = 3;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_accessors() {
        let r = Reg::int(7);
        assert_eq!(r.num(), 7);
        assert_eq!(r.bank(), Bank::Int);
        assert!(r.is_int());
        assert!(!r.is_flt());
        let f = Reg::flt(3);
        assert!(f.is_flt());
        assert_eq!(format!("{f}"), "f3");
        assert_eq!(format!("{r:?}"), "r7");
    }

    #[test]
    fn int_and_flt_same_number_differ() {
        assert_ne!(Reg::int(2), Reg::flt(2));
    }

    #[test]
    fn regfile_lookup() {
        static INT: [RegDesc; 2] = [
            RegDesc {
                reg: Reg::int(8),
                kind: RegKind::CallerSaved,
                name: "t0",
            },
            RegDesc {
                reg: Reg::int(16),
                kind: RegKind::CalleeSaved,
                name: "s0",
            },
        ];
        let rf = RegFile {
            int: &INT,
            flt: &[],
            hard_temps: &[],
            hard_saved: &[],
            sp: Reg::int(29),
            fp: Reg::int(30),
            zero: Some(Reg::int(0)),
        };
        assert_eq!(rf.name(Reg::int(8)), "t0");
        assert_eq!(rf.name(Reg::int(9)), "r9");
        assert!(rf.desc(Reg::flt(0)).is_none());
    }
}
