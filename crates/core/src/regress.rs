//! Automatic regression-test generation for instruction mappings.
//!
//! "The most common error we have found is the mis-mapping of VCODE
//! instructions to machine instructions. [...] easily caught with
//! automatically generated regression tests" (paper §6.1). VCODE includes
//! a script to generate such tests; this module is that script.
//!
//! It enumerates operation/type/operand-value cases together with their
//! *reference* results (computed here with ordinary Rust arithmetic).
//! Backend test suites build a two-argument function per case with the
//! assembler, execute it — natively for x86-64, under the instruction-set
//! simulator for MIPS/SPARC/Alpha — and compare against `expect`.
//!
//! Values are carried as canonical `u64`: `i` results are the 32-bit
//! result sign-extended, `u` zero-extended, `l`/`ul`/`p` are word-sized
//! for the target.

use crate::op::{BinOp, Cond, UnOp};
use crate::ty::Ty;

/// A binary-operation regression case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinCase {
    /// The operation.
    pub op: BinOp,
    /// The operand type.
    pub ty: Ty,
    /// First operand (canonical u64).
    pub a: u64,
    /// Second operand.
    pub b: u64,
    /// Expected result.
    pub expect: u64,
}

/// A unary-operation regression case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnCase {
    /// The operation.
    pub op: UnOp,
    /// The operand type.
    pub ty: Ty,
    /// Operand.
    pub a: u64,
    /// Expected result.
    pub expect: u64,
}

/// A branch-condition regression case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BranchCase {
    /// The condition.
    pub cond: Cond,
    /// The operand type.
    pub ty: Ty,
    /// First operand.
    pub a: u64,
    /// Second operand.
    pub b: u64,
    /// Whether the branch is taken.
    pub taken: bool,
}

fn sext32(v: u64) -> u64 {
    v as u32 as i32 as i64 as u64
}

fn zext32(v: u64) -> u64 {
    v as u32 as u64
}

/// Canonicalizes `v` as a value of `ty` on a machine of `word_bits`.
pub fn canon(ty: Ty, v: u64, word_bits: u32) -> u64 {
    let word = |v: u64, signed: bool| {
        if word_bits == 32 {
            if signed {
                sext32(v)
            } else {
                zext32(v)
            }
        } else {
            v
        }
    };
    match ty {
        Ty::C => v as u8 as i8 as i64 as u64,
        Ty::Uc => v as u8 as u64,
        Ty::S => v as u16 as i16 as i64 as u64,
        Ty::Us => v as u16 as u64,
        Ty::I => sext32(v),
        Ty::U => zext32(v),
        Ty::L => word(v, true),
        Ty::Ul | Ty::P => word(v, false),
        Ty::F | Ty::D | Ty::V => v,
    }
}

/// Reference semantics of a binary operation; `None` when the case is
/// undefined (division by zero, signed overflow of `INT_MIN / -1`).
///
/// Shift amounts are masked to the operand width, matching the hardware
/// of every target we port to.
pub fn eval_binop(op: BinOp, ty: Ty, a: u64, b: u64, word_bits: u32) -> Option<u64> {
    let bits: u32 = match ty {
        Ty::I | Ty::U => 32,
        Ty::L | Ty::Ul | Ty::P => word_bits,
        _ => return None,
    };
    let signed = ty.is_signed();
    let (a, b) = (canon(ty, a, word_bits), canon(ty, b, word_bits));
    let r = if bits == 32 {
        let (ai, bi) = (a as i32, b as i32);
        let (au, bu) = (a as u32, b as u32);
        let r32: u32 = match op {
            BinOp::Add => au.wrapping_add(bu),
            BinOp::Sub => au.wrapping_sub(bu),
            BinOp::Mul => au.wrapping_mul(bu),
            BinOp::Div if signed => {
                if bi == 0 || (ai == i32::MIN && bi == -1) {
                    return None;
                }
                ai.wrapping_div(bi) as u32
            }
            BinOp::Div => {
                if bu == 0 {
                    return None;
                }
                au / bu
            }
            BinOp::Mod if signed => {
                if bi == 0 || (ai == i32::MIN && bi == -1) {
                    return None;
                }
                ai.wrapping_rem(bi) as u32
            }
            BinOp::Mod => {
                if bu == 0 {
                    return None;
                }
                au % bu
            }
            BinOp::And => au & bu,
            BinOp::Or => au | bu,
            BinOp::Xor => au ^ bu,
            BinOp::Lsh => au.wrapping_shl(bu & 31),
            BinOp::Rsh if signed => ai.wrapping_shr(bu & 31) as u32,
            BinOp::Rsh => au.wrapping_shr(bu & 31),
        };
        if signed {
            sext32(r32 as u64)
        } else {
            zext32(r32 as u64)
        }
    } else {
        let (ai, bi) = (a as i64, b as i64);
        match op {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div if signed => {
                if bi == 0 || (ai == i64::MIN && bi == -1) {
                    return None;
                }
                ai.wrapping_div(bi) as u64
            }
            BinOp::Div => {
                if b == 0 {
                    return None;
                }
                a / b
            }
            BinOp::Mod if signed => {
                if bi == 0 || (ai == i64::MIN && bi == -1) {
                    return None;
                }
                ai.wrapping_rem(bi) as u64
            }
            BinOp::Mod => {
                if b == 0 {
                    return None;
                }
                a % b
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Lsh => a.wrapping_shl(b as u32 & 63),
            BinOp::Rsh if signed => ai.wrapping_shr(b as u32 & 63) as u64,
            BinOp::Rsh => a.wrapping_shr(b as u32 & 63),
        }
    };
    Some(r)
}

/// Reference semantics of a unary operation.
pub fn eval_unop(op: UnOp, ty: Ty, a: u64, word_bits: u32) -> Option<u64> {
    if !op.accepts(ty) {
        return None;
    }
    let a = canon(ty, a, word_bits);
    let r = match op {
        UnOp::Com => !a,
        UnOp::Not => (a == 0) as u64,
        UnOp::Mov => a,
        UnOp::Neg => (a as i64).wrapping_neg() as u64,
    };
    Some(canon(ty, r, word_bits))
}

/// Reference semantics of a branch condition.
pub fn eval_cond(cond: Cond, ty: Ty, a: u64, b: u64, word_bits: u32) -> bool {
    let (a, b) = (canon(ty, a, word_bits), canon(ty, b, word_bits));
    if ty.is_signed() {
        cond.eval_signed(a as i64, b as i64)
    } else {
        cond.eval_unsigned(a, b)
    }
}

/// A deterministic xorshift generator so the regression suite is
/// reproducible without a dependency.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// Creates a generator; `seed` must be non-zero.
    pub fn new(seed: u64) -> XorShift {
        XorShift(if seed == 0 { 0x9e37_79b9 } else { seed })
    }

    /// Next pseudo-random value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    /// Next value in `0..n` (`n` must be non-zero). The slight modulo
    /// bias is irrelevant for test-case generation.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Next value in `lo..hi` (`hi` must exceed `lo`).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.below(hi - lo)
    }

    /// Next pseudo-random boolean.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Interesting boundary operand values (paper: "frequently the source of
/// latent bugs due to boundary conditions, e.g. constants that don't fit
/// in immediate fields").
pub const BOUNDARY_VALUES: [u64; 14] = [
    0,
    1,
    2,
    0x7f,
    0x80,
    0xff,
    0x7fff, // largest 16-bit immediate
    0x8000, // just past it
    0xffff,
    0x7fff_ffff,
    0x8000_0000,
    0xffff_ffff,
    0x8000_0000_0000_0000,
    0xffff_ffff_ffff_ffff,
];

/// Generates binary-operation regression cases for a machine of
/// `word_bits`: every op × type over boundary values plus `extra`
/// pseudo-random pairs per combination.
pub fn binop_cases(word_bits: u32, extra: usize, seed: u64) -> Vec<BinCase> {
    let mut rng = XorShift::new(seed);
    let mut out = Vec::new();
    let types: &[Ty] = if word_bits == 64 {
        &[Ty::I, Ty::U, Ty::L, Ty::Ul]
    } else {
        &[Ty::I, Ty::U]
    };
    let ops = [
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
        BinOp::And,
        BinOp::Or,
        BinOp::Xor,
        BinOp::Lsh,
        BinOp::Rsh,
    ];
    for &op in &ops {
        for &ty in types {
            if !op.accepts(ty) {
                continue;
            }
            let push = |a: u64, b: u64, out: &mut Vec<BinCase>| {
                // Keep shift amounts in range so the case is well-defined
                // on every ISA.
                let b = if matches!(op, BinOp::Lsh | BinOp::Rsh) {
                    b % 31
                } else {
                    b
                };
                if let Some(expect) = eval_binop(op, ty, a, b, word_bits) {
                    out.push(BinCase {
                        op,
                        ty,
                        a: canon(ty, a, word_bits),
                        b: canon(ty, b, word_bits),
                        expect,
                    });
                }
            };
            for &a in &BOUNDARY_VALUES {
                for &b in &BOUNDARY_VALUES {
                    push(a, b, &mut out);
                }
            }
            for _ in 0..extra {
                let (a, b) = (rng.next_u64(), rng.next_u64());
                push(a, b, &mut out);
            }
        }
    }
    out
}

/// Generates unary-operation regression cases.
pub fn unop_cases(word_bits: u32) -> Vec<UnCase> {
    let mut out = Vec::new();
    let types: &[Ty] = if word_bits == 64 {
        &[Ty::I, Ty::U, Ty::L, Ty::Ul]
    } else {
        &[Ty::I, Ty::U]
    };
    for op in [UnOp::Com, UnOp::Not, UnOp::Mov, UnOp::Neg] {
        for &ty in types {
            if !op.accepts(ty) {
                continue;
            }
            for &a in &BOUNDARY_VALUES {
                if let Some(expect) = eval_unop(op, ty, a, word_bits) {
                    out.push(UnCase {
                        op,
                        ty,
                        a: canon(ty, a, word_bits),
                        expect,
                    });
                }
            }
        }
    }
    out
}

/// Generates branch regression cases.
pub fn branch_cases(word_bits: u32) -> Vec<BranchCase> {
    let mut out = Vec::new();
    let types: &[Ty] = if word_bits == 64 {
        &[Ty::I, Ty::U, Ty::L, Ty::Ul]
    } else {
        &[Ty::I, Ty::U]
    };
    for cond in [Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge, Cond::Eq, Cond::Ne] {
        for &ty in types {
            for &a in &BOUNDARY_VALUES {
                for &b in &BOUNDARY_VALUES {
                    out.push(BranchCase {
                        cond,
                        ty,
                        a: canon(ty, a, word_bits),
                        b: canon(ty, b, word_bits),
                        taken: eval_cond(cond, ty, a, b, word_bits),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canon_sign_extends_int() {
        assert_eq!(canon(Ty::I, 0xffff_ffff, 64), u64::MAX);
        assert_eq!(canon(Ty::U, 0xffff_ffff, 64), 0xffff_ffff);
        assert_eq!(canon(Ty::L, 0xffff_ffff, 32), u64::MAX);
        assert_eq!(canon(Ty::C, 0x80, 64), (-128i64) as u64);
    }

    #[test]
    fn eval_binop_signed_division_truncates_toward_zero() {
        let r = eval_binop(BinOp::Div, Ty::I, (-7i64) as u64, 2, 64).unwrap();
        assert_eq!(r as i64, -3);
        let r = eval_binop(BinOp::Mod, Ty::I, (-7i64) as u64, 2, 64).unwrap();
        assert_eq!(r as i64, -1);
    }

    #[test]
    fn eval_binop_undefined_cases_are_none() {
        assert_eq!(eval_binop(BinOp::Div, Ty::I, 1, 0, 64), None);
        assert_eq!(
            eval_binop(
                BinOp::Div,
                Ty::I,
                i32::MIN as i64 as u64,
                (-1i64) as u64,
                64
            ),
            None
        );
        assert_eq!(
            eval_binop(BinOp::Add, Ty::D, 1, 2, 64),
            None,
            "f/d not integer cases"
        );
    }

    #[test]
    fn eval_binop_unsigned_rsh_is_logical() {
        let r = eval_binop(BinOp::Rsh, Ty::U, 0x8000_0000, 31, 64).unwrap();
        assert_eq!(r, 1);
        let r = eval_binop(BinOp::Rsh, Ty::I, 0x8000_0000, 31, 64).unwrap();
        assert_eq!(r as i64, -1, "arithmetic shift propagates sign");
    }

    #[test]
    fn eval_unop_not_is_logical_not() {
        assert_eq!(eval_unop(UnOp::Not, Ty::I, 0, 64), Some(1));
        assert_eq!(eval_unop(UnOp::Not, Ty::I, 42, 64), Some(0));
        assert_eq!(eval_unop(UnOp::Com, Ty::U, 0, 64), Some(0xffff_ffff));
    }

    #[test]
    fn case_generators_produce_rich_suites() {
        let bins = binop_cases(64, 4, 42);
        assert!(bins.len() > 2000, "got {}", bins.len());
        let uns = unop_cases(32);
        assert!(uns.len() > 50);
        let brs = branch_cases(64);
        assert_eq!(brs.len(), 6 * 4 * 14 * 14);
        // Determinism.
        assert_eq!(binop_cases(64, 4, 42), bins);
    }

    #[test]
    fn branch_cases_agree_with_cond_eval() {
        for c in branch_cases(32).iter().take(500) {
            assert_eq!(c.taken, eval_cond(c.cond, c.ty, c.a, c.b, 32));
        }
    }

    #[test]
    fn xorshift_zero_seed_is_fixed_up() {
        let mut a = XorShift::new(0);
        assert_ne!(a.next_u64(), 0);
    }
}
