//! The concise instruction-specification language (paper §3.3, §5.4).
//!
//! VCODE provides a preprocessor that consumes a concise instruction
//! specification and automatically generates the specified set of VCODE
//! instruction definitions. A simplified form of the specification is:
//!
//! ```text
//! ( base-insn-name ( param-list ) [ ( type-list mach_insn [ mach-imm-insn ] ) ]+ )
//! ```
//!
//! Each `base-insn-name` is composed with each `type-list` entry and
//! mapped to the associated register-only machine instruction and, if
//! given, the associated immediate instruction. The paper's example adds
//! a square-root family on MIPS:
//!
//! ```
//! use vcode::spec::Spec;
//! let spec = Spec::parse("(sqrt (rd, rs) (f fsqrts) (d fsqrtd))")?;
//! let defs = spec.instructions();
//! assert_eq!(defs[0].name, "sqrtf");
//! assert_eq!(defs[0].mach, "fsqrts");
//! assert_eq!(defs[1].name, "sqrtd");
//! # Ok::<(), vcode::spec::SpecError>(())
//! ```
//!
//! Where the original preprocessor generated C `#define`s, this module
//! generates Rust source text ([`Spec::generate_rust`]) that a build step
//! or a porter pastes into a backend — "a single line in a preprocessing
//! specification can add a new family of instructions".

use crate::ty::Ty;
use std::fmt;

/// A parsed instruction-family specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spec {
    /// Base instruction name (`sqrt`).
    pub base: String,
    /// Parameter list (`rd`, `rs`).
    pub params: Vec<String>,
    /// Per-type mappings to machine instructions.
    pub mappings: Vec<Mapping>,
}

/// One `(type-list mach_insn [mach-imm-insn])` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    /// The types this clause composes the base name with.
    pub types: Vec<Ty>,
    /// Register-form machine instruction.
    pub mach: String,
    /// Immediate-form machine instruction, if any.
    pub mach_imm: Option<String>,
}

/// One generated instruction definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsnDef {
    /// Composed VCODE name (`sqrtf` = base `sqrt` × type `f`).
    pub name: String,
    /// The operand type.
    pub ty: Ty,
    /// Parameters.
    pub params: Vec<String>,
    /// Machine instruction it maps to.
    pub mach: String,
    /// `true` for the immediate form (name carries a trailing `i`).
    pub imm: bool,
}

/// Error from parsing a specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for SpecError {}

// ---- a tiny s-expression reader ----

#[derive(Debug, Clone, PartialEq)]
enum Sexp {
    Atom(String),
    List(Vec<Sexp>),
}

fn read_sexp(s: &str, mut i: usize) -> Result<(Sexp, usize), SpecError> {
    let b = s.as_bytes();
    let err = |at: usize, msg: &str| SpecError {
        msg: msg.to_owned(),
        at,
    };
    while i < b.len() && (b[i].is_ascii_whitespace() || b[i] == b',') {
        i += 1;
    }
    if i >= b.len() {
        return Err(err(i, "unexpected end of input"));
    }
    if b[i] == b'(' {
        let mut items = Vec::new();
        i += 1;
        loop {
            while i < b.len() && (b[i].is_ascii_whitespace() || b[i] == b',') {
                i += 1;
            }
            if i >= b.len() {
                return Err(err(i, "unterminated list"));
            }
            if b[i] == b')' {
                return Ok((Sexp::List(items), i + 1));
            }
            let (item, ni) = read_sexp(s, i)?;
            items.push(item);
            i = ni;
        }
    }
    if b[i] == b')' {
        return Err(err(i, "unexpected ')'"));
    }
    let start = i;
    while i < b.len() && !b[i].is_ascii_whitespace() && !matches!(b[i], b'(' | b')' | b',') {
        i += 1;
    }
    Ok((Sexp::Atom(s[start..i].to_owned()), i))
}

fn is_type_atom(s: &str) -> Option<Ty> {
    match s {
        "v" => Some(Ty::V),
        "c" => Some(Ty::C),
        "uc" => Some(Ty::Uc),
        "s" => Some(Ty::S),
        "us" => Some(Ty::Us),
        "i" => Some(Ty::I),
        "u" => Some(Ty::U),
        "l" => Some(Ty::L),
        "ul" => Some(Ty::Ul),
        "p" => Some(Ty::P),
        "f" => Some(Ty::F),
        "d" => Some(Ty::D),
        _ => None,
    }
}

impl Spec {
    /// Parses one specification.
    ///
    /// In each mapping clause, leading atoms that name VCODE types form
    /// the type list; the first non-type atom is the machine instruction
    /// and an optional second is its immediate form — so both the paper's
    /// `(f fsqrts)` and multi-type `(i u l ul add addi)` clauses work
    /// without ambiguity.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] on malformed input.
    pub fn parse(input: &str) -> Result<Spec, SpecError> {
        let (sexp, end) = read_sexp(input, 0)?;
        let rest = input[end..].trim();
        if !rest.is_empty() {
            return Err(SpecError {
                msg: format!("trailing input: {rest:?}"),
                at: end,
            });
        }
        Spec::from_sexp(&sexp)
    }

    /// Parses a file of several specifications.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] on malformed input.
    pub fn parse_all(input: &str) -> Result<Vec<Spec>, SpecError> {
        let mut specs = Vec::new();
        let mut i = 0;
        loop {
            while i < input.len()
                && (input.as_bytes()[i].is_ascii_whitespace() || input.as_bytes()[i] == b',')
            {
                i += 1;
            }
            if i >= input.len() {
                return Ok(specs);
            }
            let (sexp, ni) = read_sexp(input, i)?;
            specs.push(Spec::from_sexp(&sexp)?);
            i = ni;
        }
    }

    fn from_sexp(sexp: &Sexp) -> Result<Spec, SpecError> {
        let err = |msg: &str| SpecError {
            msg: msg.to_owned(),
            at: 0,
        };
        let Sexp::List(items) = sexp else {
            return Err(err("specification must be a list"));
        };
        let mut it = items.iter();
        let Some(Sexp::Atom(base)) = it.next() else {
            return Err(err("expected base instruction name"));
        };
        let Some(Sexp::List(params)) = it.next() else {
            return Err(err("expected parameter list"));
        };
        let params = params
            .iter()
            .map(|p| match p {
                Sexp::Atom(a) => Ok(a.clone()),
                _ => Err(err("parameter names must be atoms")),
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut mappings = Vec::new();
        for clause in it {
            let Sexp::List(parts) = clause else {
                return Err(err("mapping clause must be a list"));
            };
            let mut types = Vec::new();
            let mut names = Vec::new();
            for p in parts {
                let Sexp::Atom(a) = p else {
                    return Err(err("mapping clause entries must be atoms"));
                };
                if names.is_empty() {
                    if let Some(ty) = is_type_atom(a) {
                        types.push(ty);
                        continue;
                    }
                }
                names.push(a.clone());
            }
            if types.is_empty() {
                return Err(err("mapping clause has no types"));
            }
            if names.is_empty() || names.len() > 2 {
                return Err(err("mapping clause needs one or two machine instructions"));
            }
            mappings.push(Mapping {
                types,
                mach: names[0].clone(),
                mach_imm: names.get(1).cloned(),
            });
        }
        if mappings.is_empty() {
            return Err(err("specification has no mapping clauses"));
        }
        Ok(Spec {
            base: base.clone(),
            params,
            mappings,
        })
    }

    /// Enumerates the instruction definitions this specification
    /// generates: base × type (and the immediate form where given).
    pub fn instructions(&self) -> Vec<InsnDef> {
        let mut out = Vec::new();
        for m in &self.mappings {
            for &ty in &m.types {
                out.push(InsnDef {
                    name: format!("{}{}", self.base, ty.suffix()),
                    ty,
                    params: self.params.clone(),
                    mach: m.mach.clone(),
                    imm: false,
                });
                if let Some(imm) = &m.mach_imm {
                    out.push(InsnDef {
                        name: format!("{}{}i", self.base, ty.suffix()),
                        ty,
                        params: self.params.clone(),
                        mach: imm.clone(),
                        imm: true,
                    });
                }
            }
        }
        out
    }

    /// Generates Rust source for the instruction family — the analogue
    /// of the paper's preprocessor emitting
    /// `#define v_sqrtf(rd,rs) fsqrts(rd,rs)`.
    pub fn generate_rust(&self) -> String {
        let mut out = String::new();
        for def in self.instructions() {
            let params = def.params.join(": Reg, ") + ": Reg";
            let args = def.params.join(", ");
            out.push_str(&format!(
                "#[inline]\npub fn {}(a: &mut Asm<'_>, {}) {{\n    {}(a, {});\n}}\n",
                def.name, params, def.mach, args
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sqrt_example() {
        let spec = Spec::parse("(sqrt (rd, rs) (f fsqrts) (d fsqrtd))").unwrap();
        assert_eq!(spec.base, "sqrt");
        assert_eq!(spec.params, vec!["rd", "rs"]);
        let defs = spec.instructions();
        assert_eq!(defs.len(), 2);
        assert_eq!(defs[0].name, "sqrtf");
        assert_eq!(defs[0].mach, "fsqrts");
        assert_eq!(defs[1].name, "sqrtd");
        assert_eq!(defs[1].mach, "fsqrtd");
    }

    #[test]
    fn multi_type_clause_with_immediate_form() {
        let spec = Spec::parse("(add (rd, rs1, rs2) (i u l ul addx addxi))").unwrap();
        let defs = spec.instructions();
        let names: Vec<_> = defs.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(
            names,
            ["addi", "addii", "addu", "addui", "addl", "addli", "addul", "adduli"]
        );
        assert!(defs[1].imm);
        assert_eq!(defs[1].mach, "addxi");
    }

    #[test]
    fn generated_rust_mentions_every_definition() {
        let spec = Spec::parse("(sqrt (rd, rs) (f fsqrts) (d fsqrtd))").unwrap();
        let src = spec.generate_rust();
        assert!(src.contains("pub fn sqrtf(a: &mut Asm<'_>, rd: Reg, rs: Reg)"));
        assert!(src.contains("fsqrtd(a, rd, rs);"));
    }

    #[test]
    fn parse_all_reads_a_specification_file() {
        let specs =
            Spec::parse_all("(sqrt (rd, rs) (f fsqrts) (d fsqrtd))\n(rev (rd, rs) (u brev))")
                .unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[1].base, "rev");
    }

    #[test]
    fn errors_are_reported() {
        assert!(Spec::parse("").is_err());
        assert!(Spec::parse("(sqrt)").is_err());
        assert!(Spec::parse("(sqrt (rd))").is_err());
        assert!(Spec::parse("(sqrt (rd) (fsqrts))").is_err(), "no types");
        assert!(
            Spec::parse("(sqrt (rd) (f a b c))").is_err(),
            "too many insns"
        );
        assert!(Spec::parse("(a (b) (f x)) junk").is_err(), "trailing input");
        assert!(Spec::parse("(a (b) (f x)").is_err(), "unterminated");
    }

    #[test]
    fn commas_are_whitespace() {
        let a = Spec::parse("(m (rd,rs) (i,x))").unwrap();
        let b = Spec::parse("(m (rd rs) (i x))").unwrap();
        assert_eq!(a, b);
    }
}
