//! The `vc!` client macro: assembly-like specification syntax.
//!
//! The paper's clients wrote `v_addii(arg[0], arg[0], 1);` — C macros
//! whose names spell the instruction. [`vc!`](crate::vc) provides the same visual
//! register for Rust clients: a block of `mnemonic operands;` lines that
//! expands to the corresponding [`Assembler`](crate::Assembler) calls
//! (so it composes with every backend and costs nothing).

/// Emits a block of VCODE instructions with assembly-like syntax.
///
/// Each line is `mnemonic operand, operand, ...;` where the mnemonic is
/// any [`Assembler`](crate::Assembler) instruction method (`addii`,
/// `ldii`, `bltii`, `label`, `jmp`, ...).
///
/// # Examples
///
/// ```
/// use vcode::{vc, Assembler, Leaf, RegClass};
/// use vcode::fake::FakeTarget;
///
/// let mut mem = vec![0u8; 4096];
/// let mut a = Assembler::<FakeTarget>::lambda(&mut mem, "%i", Leaf::Yes)?;
/// let x = a.arg(0);
/// let sum = a.getreg(RegClass::Temp).unwrap();
/// let (top, done) = (a.genlabel(), a.genlabel());
/// vc!(a, {
///     seti   sum, 0;
///     label  top;
///     bleii  x, 0, done;      // while (x > 0)
///     addi   sum, sum, x;     //   sum += x
///     subii  x, x, 1;         //   x -= 1
///     jmp    top;
///     label  done;
///     reti   sum;
/// });
/// a.end()?;
/// # Ok::<(), vcode::Error>(())
/// ```
#[macro_export]
macro_rules! vc {
    ($a:expr, { $($insn:ident $($arg:expr),* ;)* }) => {
        $( $a.$insn($($arg),*); )*
    };
}

/// Builds a backend register-description table without the per-crate
/// `const fn d(...)` boilerplate every port used to duplicate.
///
/// Each line is `number, kind, "name";` where `kind` is a bare
/// [`RegKind`](crate::RegKind) variant (`CallerSaved`, `CalleeSaved`,
/// `Arg(i)`, `Reserved`). The leading `int:`/`flt:` selects the register
/// bank.
///
/// # Examples
///
/// ```
/// use vcode::{regdescs, RegDesc};
///
/// static INT_REGS: [RegDesc; 3] = regdescs![int:
///     8, CallerSaved, "t0";
///     4, Arg(0), "a0";
///     1, Reserved, "at";
/// ];
/// assert_eq!(INT_REGS[1].name, "a0");
/// ```
#[macro_export]
macro_rules! regdescs {
    (int: $($n:expr, $kind:ident $(($arg:expr))?, $name:expr;)*) => {
        [ $( $crate::RegDesc {
            reg: $crate::Reg::int($n),
            kind: $crate::RegKind::$kind $(($arg))?,
            name: $name,
        }, )* ]
    };
    (flt: $($n:expr, $kind:ident $(($arg:expr))?, $name:expr;)*) => {
        [ $( $crate::RegDesc {
            reg: $crate::Reg::flt($n),
            kind: $crate::RegKind::$kind $(($arg))?,
            name: $name,
        }, )* ]
    };
}

#[cfg(test)]
mod tests {
    use crate::fake::FakeTarget;
    use crate::target::Leaf;
    use crate::{Assembler, RegClass};

    #[test]
    fn macro_expands_to_method_calls() {
        let mut mem = vec![0u8; 4096];
        let mut a = Assembler::<FakeTarget>::lambda(&mut mem, "%i%i", Leaf::Yes).unwrap();
        let (x, y) = (a.arg(0), a.arg(1));
        let t = a.getreg(RegClass::Temp).unwrap();
        let before = a.insn_count();
        vc!(a, {
            addi  t, x, y;
            mulii t, t, 3;
            negi  t, t;
            reti  t;
        });
        assert_eq!(a.insn_count() - before, 4);
        a.end().unwrap();
    }

    #[test]
    fn macro_works_with_labels_and_branches() {
        let mut mem = vec![0u8; 4096];
        let mut a = Assembler::<FakeTarget>::lambda(&mut mem, "%i", Leaf::Yes).unwrap();
        let x = a.arg(0);
        let skip = a.genlabel();
        vc!(a, {
            beqii x, 0, skip;
            addii x, x, 10;
            label skip;
            reti  x;
        });
        a.end().expect("labels all bound through the macro");
    }

    #[test]
    fn macro_in_function_scope_and_empty_block() {
        let mut mem = vec![0u8; 4096];
        let mut a = Assembler::<FakeTarget>::lambda(&mut mem, "", Leaf::Yes).unwrap();
        vc!(a, {});
        vc!(a, {
            retv;
        });
        a.end().unwrap();
    }
}
