//! Execution and code-generation observability.
//!
//! The paper's own evaluation is counter-driven: instructions per
//! generated instruction in Figure 2, cycle and cache ratios in
//! Tables 3–4 — and §6.2 names the missing symbolic debugger VCODE's
//! "most critical drawback". This module is the uniform metrics surface
//! those experiments (and the gap) need:
//!
//! - [`ExecStats`] — a shared per-execution counter block every engine
//!   exposes via a `stats()` accessor: the three ISA simulators fill it
//!   from their retired-instruction/cache models, while the native
//!   x86-64 path maps executable-memory pool behaviour and guarded-call
//!   trap tallies onto the same shape.
//! - [`CodegenEvent`] + the process-wide hook ([`set_hook`] /
//!   [`clear_hook`]) — a zero-cost-when-disabled event stream the
//!   [`Assembler`](crate::Assembler) fires at `lambda`/`end`, carrying
//!   instructions emitted, bytes emitted, overflow-latch trips, and
//!   register-allocator spills.
//! - [`TraceRecord`] — the record streamed by the simulators'
//!   per-instruction trace mode (`disasm()` text plus register deltas),
//!   the §6.2 debugger stand-in.

use crate::trap::TrapKind;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// Number of distinct [`TrapKind`] variants tracked by [`TrapCounts`].
pub const TRAP_KINDS: usize = 7;

/// Maps a [`TrapKind`] to its stable index in a [`TrapCounts`] table.
///
/// The enum is `#[non_exhaustive]` for downstream crates; this function
/// is the one place that enumerates it, so out-of-crate counter tables
/// (e.g. the native backend's atomic tallies) can stay fixed-size.
pub fn trap_kind_index(kind: TrapKind) -> usize {
    match kind {
        TrapKind::BadAccess => 0,
        TrapKind::Unaligned => 1,
        TrapKind::BadPc => 2,
        TrapKind::IllegalInsn => 3,
        TrapKind::ArithFault => 4,
        TrapKind::FuelExhausted => 5,
        TrapKind::ScheduleHazard => 6,
    }
}

/// All trap kinds, in [`trap_kind_index`] order (for iteration/labels).
pub const TRAP_KIND_TABLE: [TrapKind; TRAP_KINDS] = [
    TrapKind::BadAccess,
    TrapKind::Unaligned,
    TrapKind::BadPc,
    TrapKind::IllegalInsn,
    TrapKind::ArithFault,
    TrapKind::FuelExhausted,
    TrapKind::ScheduleHazard,
];

/// Trap occurrences bucketed by [`TrapKind`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TrapCounts {
    counts: [u64; TRAP_KINDS],
}

impl TrapCounts {
    /// Records one occurrence of `kind`.
    pub fn record(&mut self, kind: TrapKind) {
        self.counts[trap_kind_index(kind)] += 1;
    }

    /// Occurrences of `kind`.
    pub fn count(&self, kind: TrapKind) -> u64 {
        self.counts[trap_kind_index(kind)]
    }

    /// Sets the count for `kind` (used by engines that keep their own
    /// live tally, e.g. atomics on the native path).
    pub fn set(&mut self, kind: TrapKind, n: u64) {
        self.counts[trap_kind_index(kind)] = n;
    }

    /// Total traps across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Iterates `(kind, count)` pairs in stable index order.
    pub fn iter(&self) -> impl Iterator<Item = (TrapKind, u64)> + '_ {
        TRAP_KIND_TABLE.iter().map(|&k| (k, self.count(k)))
    }
}

/// Per-execution counters, shared by every engine in the workspace.
///
/// Semantics per engine:
///
/// - **ISA simulators** (mips/sparc/alpha): every field is a simulated
///   ground truth — `cycles = insns_retired + cache_stall_cycles`, the
///   cache fields mirror the configured data cache (zero when no cache
///   is attached), and `traps` tallies every trap the run loop raised.
/// - **Native x86-64**: `cache_hits`/`cache_misses` report executable-
///   memory *pool* behaviour (a code-cache, not a data cache), `traps`
///   tallies guarded-call faults, and the retired/cycle fields stay
///   zero — hardware counters are out of scope.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions retired (simulators: executed; native: unavailable).
    pub insns_retired: u64,
    /// Total cycles: retired instructions plus memory stalls.
    pub cycles: u64,
    /// Guest load instructions executed.
    pub loads: u64,
    /// Guest store instructions executed.
    pub stores: u64,
    /// Branch (conditional or unconditional control-transfer)
    /// instructions executed.
    pub branches: u64,
    /// Delay-slot instructions that did useful work (non-nop) after a
    /// taken control transfer — the §5.3 scheduling payoff, observable.
    pub delay_slot_fills: u64,
    /// Cache hits (simulators: data cache; native: exec-mem pool).
    pub cache_hits: u64,
    /// Cache misses (simulators: data cache; native: exec-mem pool).
    pub cache_misses: u64,
    /// Stall cycles charged for cache misses.
    pub cache_stall_cycles: u64,
    /// Traps raised during execution, by kind.
    pub traps: TrapCounts,
}

impl ExecStats {
    /// Cache hit ratio in `[0, 1]`, or `None` when no accesses were
    /// recorded (no cache attached, or nothing ran).
    pub fn cache_hit_ratio(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / total as f64)
        }
    }

    /// Cycles per retired instruction, or `None` when nothing retired.
    pub fn cycles_per_insn(&self) -> Option<f64> {
        if self.insns_retired == 0 {
            None
        } else {
            Some(self.cycles as f64 / self.insns_retired as f64)
        }
    }
}

/// One per-instruction trace record (the opt-in §6.2 debugger stand-in):
/// the simulators stream these through a client callback when tracing
/// is enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Program counter of the traced instruction.
    pub pc: u64,
    /// Disassembly text of the executed instruction.
    pub disasm: String,
    /// First register whose value changed, if any: `(index, old, new)`.
    /// 32-bit machines zero-extend into the `u64`s.
    pub delta: Option<(u8, u64, u64)>,
}

/// A code-generation event fired by [`Assembler`](crate::Assembler).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodegenEvent {
    /// `lambda` opened a generation session.
    LambdaBegin {
        /// Number of declared arguments.
        args: usize,
        /// Whether the function was declared a leaf.
        leaf: bool,
    },
    /// `end` closed a generation session (fired whether or not it
    /// succeeded — `overflowed` reports the storage-overflow latch).
    LambdaEnd {
        /// VCODE instructions specified during the session.
        insns: u64,
        /// Machine-code bytes emitted (buffer cursor at `end`).
        bytes: u64,
        /// Whether the storage-overflow latch tripped (paper §3's
        /// client-storage discipline).
        overflowed: bool,
        /// Register-allocator exhaustions (`getreg` returning `None` —
        /// the client fell back to stack slots, the paper's "spill").
        spills: u64,
    },
}

static HOOK_ENABLED: AtomicBool = AtomicBool::new(false);
#[allow(clippy::type_complexity)]
static HOOK: Mutex<Option<Box<dyn Fn(&CodegenEvent) + Send>>> = Mutex::new(None);

/// Installs the process-wide codegen event hook, replacing any previous
/// one. The hook runs inline in `lambda`/`end`; keep it cheap.
pub fn set_hook(f: impl Fn(&CodegenEvent) + Send + 'static) {
    *HOOK.lock().unwrap() = Some(Box::new(f));
    HOOK_ENABLED.store(true, Ordering::Release);
}

/// Removes the codegen event hook; emission returns to a single
/// relaxed atomic load per event site.
pub fn clear_hook() {
    HOOK_ENABLED.store(false, Ordering::Release);
    *HOOK.lock().unwrap() = None;
}

/// Whether a codegen hook is installed.
#[inline]
pub fn hook_enabled() -> bool {
    HOOK_ENABLED.load(Ordering::Relaxed)
}

/// Fires `ev` at the installed hook. The event is built lazily so a
/// disabled hook costs one relaxed load and no construction work —
/// the zero-cost-when-disabled contract emission sites rely on.
#[inline]
pub fn emit_event(ev: impl FnOnce() -> CodegenEvent) {
    if hook_enabled() {
        emit_event_slow(&ev());
    }
}

#[cold]
fn emit_event_slow(ev: &CodegenEvent) {
    if let Some(hook) = HOOK.lock().unwrap().as_ref() {
        hook(ev);
    }
}

// ---- lambda-cache counters -------------------------------------------------
//
// Process-wide totals across every `LambdaCache` (the engine's, DPF's,
// ASH's). Per-cache figures live on the cache itself
// (`LambdaCache::stats`); these aggregates answer "how much codegen did
// caching save this process" without plumbing cache handles around.

static LC_HITS: AtomicU64 = AtomicU64::new(0);
static LC_MISSES: AtomicU64 = AtomicU64::new(0);
static LC_EVICTIONS: AtomicU64 = AtomicU64::new(0);
static LC_INSERTS: AtomicU64 = AtomicU64::new(0);
static LC_STALLS: AtomicU64 = AtomicU64::new(0);
static LC_BYPASSES: AtomicU64 = AtomicU64::new(0);

/// Process-wide lambda-cache counter snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LambdaCacheCounters {
    /// Cache lookups served from finished code (zero emission work).
    pub hits: u64,
    /// Lookups that required (or waited on) a compile.
    pub misses: u64,
    /// Entries dropped by LRU capacity enforcement.
    pub evictions: u64,
    /// Successful compiles inserted into a cache.
    pub inserts: u64,
    /// Bounded condvar waits that expired and vacated a stuck build.
    pub stalls: u64,
    /// Compiles run uncached because a shard hit its build cap.
    pub bypasses: u64,
}

/// Records a lambda-cache hit (called by `LambdaCache`).
#[inline]
pub fn note_lambda_cache_hit() {
    LC_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Records a lambda-cache miss (called by `LambdaCache`).
#[inline]
pub fn note_lambda_cache_miss() {
    LC_MISSES.fetch_add(1, Ordering::Relaxed);
}

/// Records a lambda-cache eviction (called by `LambdaCache`).
#[inline]
pub fn note_lambda_cache_eviction() {
    LC_EVICTIONS.fetch_add(1, Ordering::Relaxed);
}

/// Records a lambda-cache insert (called by `LambdaCache`).
#[inline]
pub fn note_lambda_cache_insert() {
    LC_INSERTS.fetch_add(1, Ordering::Relaxed);
}

/// Records a stalled (and vacated) in-flight build (called by
/// `LambdaCache` when a bounded wait expires).
#[inline]
pub fn note_lambda_cache_stall() {
    LC_STALLS.fetch_add(1, Ordering::Relaxed);
}

/// Records an uncached bypass compile (called by `LambdaCache` when a
/// shard is at its simultaneous-build cap).
#[inline]
pub fn note_lambda_cache_bypass() {
    LC_BYPASSES.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot of the process-wide lambda-cache counters.
pub fn lambda_cache_counters() -> LambdaCacheCounters {
    LambdaCacheCounters {
        hits: LC_HITS.load(Ordering::Relaxed),
        misses: LC_MISSES.load(Ordering::Relaxed),
        evictions: LC_EVICTIONS.load(Ordering::Relaxed),
        inserts: LC_INSERTS.load(Ordering::Relaxed),
        stalls: LC_STALLS.load(Ordering::Relaxed),
        bypasses: LC_BYPASSES.load(Ordering::Relaxed),
    }
}

// ---- compile-service counters ----------------------------------------------
//
// Process-wide totals across every `CompileService` (the engine's,
// DPF's, ASH's): how much compilation left the request path, how often
// the service degraded, shed, or quarantined, and how deep the build
// queue ran. Per-service figures live on the service itself
// (`CompileService::stats`).

static SV_ENQUEUED: AtomicU64 = AtomicU64::new(0);
static SV_COMPLETED: AtomicU64 = AtomicU64::new(0);
static SV_FAILED: AtomicU64 = AtomicU64::new(0);
static SV_PANICKED: AtomicU64 = AtomicU64::new(0);
static SV_SHED: AtomicU64 = AtomicU64::new(0);
static SV_QUARANTINED: AtomicU64 = AtomicU64::new(0);
static SV_DEADLINE_EXPIRED: AtomicU64 = AtomicU64::new(0);
static SV_DEGRADED_CALLS: AtomicU64 = AtomicU64::new(0);
static SV_BUILD_NS: AtomicU64 = AtomicU64::new(0);
static SV_QUEUE_DEPTH_PEAK: AtomicU64 = AtomicU64::new(0);

/// Process-wide compile-service counter snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Builds accepted onto a service queue.
    pub enqueued: u64,
    /// Builds that finished and published into a cache.
    pub completed: u64,
    /// Builds that ran and returned a typed error.
    pub failed: u64,
    /// Builds whose builder panicked (caught; slot vacated).
    pub panicked: u64,
    /// Requests shed because the queue was at its configured depth.
    pub shed: u64,
    /// Quarantine entries created or extended after a failure.
    pub quarantined: u64,
    /// Builds dropped for exceeding their deadline (in queue or in
    /// build; the slot was vacated either way).
    pub deadline_expired: u64,
    /// Calls served by a degraded (fallback) path while native code was
    /// building, shed, or quarantined.
    pub degraded_calls: u64,
    /// Nanoseconds spent inside completed builds (for mean latency:
    /// divide by [`completed`](Self::completed)).
    pub build_ns: u64,
    /// High-water mark of any service queue's depth.
    pub queue_depth_peak: u64,
}

/// Records a build accepted onto a service queue, with the depth after
/// the enqueue (maintains the process-wide high-water mark).
#[inline]
pub fn note_service_enqueued(depth_after: u64) {
    SV_ENQUEUED.fetch_add(1, Ordering::Relaxed);
    SV_QUEUE_DEPTH_PEAK.fetch_max(depth_after, Ordering::Relaxed);
}

/// Records a completed background build and its wall-clock cost.
#[inline]
pub fn note_service_completed(build_ns: u64) {
    SV_COMPLETED.fetch_add(1, Ordering::Relaxed);
    SV_BUILD_NS.fetch_add(build_ns, Ordering::Relaxed);
}

/// Records a background build that returned a typed error.
#[inline]
pub fn note_service_failed() {
    SV_FAILED.fetch_add(1, Ordering::Relaxed);
}

/// Records a background build whose builder panicked.
#[inline]
pub fn note_service_panicked() {
    SV_PANICKED.fetch_add(1, Ordering::Relaxed);
}

/// Records a shed request (queue at depth; fallback served instead).
#[inline]
pub fn note_service_shed() {
    SV_SHED.fetch_add(1, Ordering::Relaxed);
}

/// Records a quarantine entry created or extended.
#[inline]
pub fn note_service_quarantined() {
    SV_QUARANTINED.fetch_add(1, Ordering::Relaxed);
}

/// Records a build dropped for exceeding its deadline.
#[inline]
pub fn note_service_deadline_expired() {
    SV_DEADLINE_EXPIRED.fetch_add(1, Ordering::Relaxed);
}

/// Records one call served by a degraded (fallback) path.
#[inline]
pub fn note_degraded_call() {
    SV_DEGRADED_CALLS.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot of the process-wide compile-service counters.
pub fn service_counters() -> ServiceCounters {
    ServiceCounters {
        enqueued: SV_ENQUEUED.load(Ordering::Relaxed),
        completed: SV_COMPLETED.load(Ordering::Relaxed),
        failed: SV_FAILED.load(Ordering::Relaxed),
        panicked: SV_PANICKED.load(Ordering::Relaxed),
        shed: SV_SHED.load(Ordering::Relaxed),
        quarantined: SV_QUARANTINED.load(Ordering::Relaxed),
        deadline_expired: SV_DEADLINE_EXPIRED.load(Ordering::Relaxed),
        degraded_calls: SV_DEGRADED_CALLS.load(Ordering::Relaxed),
        build_ns: SV_BUILD_NS.load(Ordering::Relaxed),
        queue_depth_peak: SV_QUEUE_DEPTH_PEAK.load(Ordering::Relaxed),
    }
}

// ---- tier-2 recompilation counters -----------------------------------------
//
// Process-wide totals for heat-triggered optimizing recompilation
// (`vcode::tier2`): how often cached lambdas crossed their hot
// threshold, how many rebuilds were scheduled and published, and the
// cumulative instruction-count effect of the optimizer. Build failures
// and deadline misses are already covered by the service counters above.

static T2_HOT: AtomicU64 = AtomicU64::new(0);
static T2_SCHEDULED: AtomicU64 = AtomicU64::new(0);
static T2_UPGRADED: AtomicU64 = AtomicU64::new(0);
static T2_INSNS_IN: AtomicU64 = AtomicU64::new(0);
static T2_INSNS_OUT: AtomicU64 = AtomicU64::new(0);

/// Process-wide tier-2 recompilation counter snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tier2Counters {
    /// Cached lambdas whose call count crossed the hot threshold.
    pub hot: u64,
    /// Tier-2 rebuilds handed to a compile service.
    pub scheduled: u64,
    /// Lambdas now serving tier-2 code (the in-place swap happened).
    pub upgraded: u64,
    /// Executable instructions entering the optimizer, cumulative.
    pub insns_in: u64,
    /// Executable instructions surviving the optimizer, cumulative.
    pub insns_out: u64,
}

impl Tier2Counters {
    /// Fraction of optimizer input instructions eliminated, if any ran.
    pub fn eliminated_ratio(&self) -> Option<f64> {
        (self.insns_in > 0).then(|| {
            (self.insns_in - self.insns_in.min(self.insns_out)) as f64 / self.insns_in as f64
        })
    }
}

/// Records a cached lambda crossing its hot-call threshold.
#[inline]
pub fn note_tier2_hot() {
    T2_HOT.fetch_add(1, Ordering::Relaxed);
}

/// Records a tier-2 rebuild handed to a compile service.
#[inline]
pub fn note_tier2_scheduled() {
    T2_SCHEDULED.fetch_add(1, Ordering::Relaxed);
}

/// Records a lambda swapping to tier-2 code in place.
#[inline]
pub fn note_tier2_upgraded() {
    T2_UPGRADED.fetch_add(1, Ordering::Relaxed);
}

/// Records one optimizer run: executable instructions in and out.
#[inline]
pub fn note_tier2_optimized(insns_in: u64, insns_out: u64) {
    T2_INSNS_IN.fetch_add(insns_in, Ordering::Relaxed);
    T2_INSNS_OUT.fetch_add(insns_out, Ordering::Relaxed);
}

/// Snapshot of the process-wide tier-2 recompilation counters.
pub fn tier2_counters() -> Tier2Counters {
    Tier2Counters {
        hot: T2_HOT.load(Ordering::Relaxed),
        scheduled: T2_SCHEDULED.load(Ordering::Relaxed),
        upgraded: T2_UPGRADED.load(Ordering::Relaxed),
        insns_in: T2_INSNS_IN.load(Ordering::Relaxed),
        insns_out: T2_INSNS_OUT.load(Ordering::Relaxed),
    }
}

// ---- generation-swap counters ----------------------------------------------
//
// Process-wide totals for RCU-style hot-swap publication (the DPF
// live-update service and anything else that republishes compiled code
// under traffic): generations published (split native vs
// interpreter-degraded delta windows), in-place interpreter→native
// upgrades, and retired generations reclaimed after their last reader
// epoch passed.

static GEN_PUBLISHED: AtomicU64 = AtomicU64::new(0);
static GEN_NATIVE: AtomicU64 = AtomicU64::new(0);
static GEN_DEGRADED: AtomicU64 = AtomicU64::new(0);
static GEN_UPGRADED: AtomicU64 = AtomicU64::new(0);
static GEN_RETIRED: AtomicU64 = AtomicU64::new(0);

/// Process-wide generation-swap counter snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SwapCounters {
    /// Generations published (every hot swap, native or degraded).
    pub published: u64,
    /// Generations published already serving native code.
    pub native: u64,
    /// Generations published serving an interpreter (delta windows).
    pub degraded: u64,
    /// In-place interpreter→native upgrades of a live generation.
    pub upgraded: u64,
    /// Retired generations reclaimed after their last reader left.
    pub retired: u64,
}

/// Records one generation publication; `native` says whether it serves
/// compiled code or an interpreter delta window.
#[inline]
pub fn note_generation_published(native: bool) {
    GEN_PUBLISHED.fetch_add(1, Ordering::Relaxed);
    if native {
        GEN_NATIVE.fetch_add(1, Ordering::Relaxed);
    } else {
        GEN_DEGRADED.fetch_add(1, Ordering::Relaxed);
    }
}

/// Records an in-place interpreter→native upgrade of a live generation.
#[inline]
pub fn note_generation_upgraded() {
    GEN_UPGRADED.fetch_add(1, Ordering::Relaxed);
}

/// Records retired generations reclaimed (their code pins released).
#[inline]
pub fn note_generations_retired(n: u64) {
    GEN_RETIRED.fetch_add(n, Ordering::Relaxed);
}

/// Snapshot of the process-wide generation-swap counters.
pub fn swap_counters() -> SwapCounters {
    SwapCounters {
        published: GEN_PUBLISHED.load(Ordering::Relaxed),
        native: GEN_NATIVE.load(Ordering::Relaxed),
        degraded: GEN_DEGRADED.load(Ordering::Relaxed),
        upgraded: GEN_UPGRADED.load(Ordering::Relaxed),
        retired: GEN_RETIRED.load(Ordering::Relaxed),
    }
}

// Persistent-cache (L2) counters: warm-start observability for the
// tiered store. A hit is an artifact loaded, revalidated, and adopted;
// a miss is a clean absence; a reject is an artifact that existed but
// failed any validation stage (envelope, checksum, re-decode, codec) —
// each reject corresponds to one silent fallback to a fresh compile.

static PERSIST_HITS: AtomicU64 = AtomicU64::new(0);
static PERSIST_MISSES: AtomicU64 = AtomicU64::new(0);
static PERSIST_STORES: AtomicU64 = AtomicU64::new(0);
static PERSIST_REJECTS: AtomicU64 = AtomicU64::new(0);

/// Process-wide persistent-cache counter snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PersistCounters {
    /// Artifacts loaded, revalidated, and adopted.
    pub hits: u64,
    /// Clean misses (no artifact on disk).
    pub misses: u64,
    /// Artifacts written (store-through publications).
    pub stores: u64,
    /// Artifacts refused by validation (each one a silent fallback to
    /// a fresh compile).
    pub rejects: u64,
}

/// Records one adopted artifact load.
#[inline]
pub fn note_persist_hit() {
    PERSIST_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Records one clean persistent-cache miss.
#[inline]
pub fn note_persist_miss() {
    PERSIST_MISSES.fetch_add(1, Ordering::Relaxed);
}

/// Records one artifact publication.
#[inline]
pub fn note_persist_store() {
    PERSIST_STORES.fetch_add(1, Ordering::Relaxed);
}

/// Records one artifact refused by validation.
#[inline]
pub fn note_persist_reject() {
    PERSIST_REJECTS.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot of the process-wide persistent-cache counters.
pub fn persist_counters() -> PersistCounters {
    PersistCounters {
        hits: PERSIST_HITS.load(Ordering::Relaxed),
        misses: PERSIST_MISSES.load(Ordering::Relaxed),
        stores: PERSIST_STORES.load(Ordering::Relaxed),
        rejects: PERSIST_REJECTS.load(Ordering::Relaxed),
    }
}

// Execution-cycle feed: the simulators report each call's simulated
// cycle count here, giving the tiering policy a cost-weighted heat
// signal (a callee that burns 10k cycles per call is "hotter" after 3
// calls than a 5-cycle one after 100). The per-call value is
// thread-local — a lambda call runs synchronously on the caller's
// thread — while the total is a process-wide tally.

static EXEC_CYCLES_TOTAL: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static LAST_CALL_CYCLES: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
}

/// Records the simulated cycle cost of one completed lambda call on
/// this thread (the simulators call this; native code has no cycle
/// model and reports nothing).
#[inline]
pub fn note_exec_cycles(cycles: u64) {
    EXEC_CYCLES_TOTAL.fetch_add(cycles, Ordering::Relaxed);
    LAST_CALL_CYCLES.with(|c| c.set(cycles));
}

/// Takes (and clears) the cycle cost the most recent call reported on
/// this thread; 0 when the last call had no cycle model. The tiering
/// heat policy clears before and takes after a call so a native call
/// can never inherit a stale simulator reading.
#[inline]
pub fn take_last_call_cycles() -> u64 {
    LAST_CALL_CYCLES.with(|c| c.replace(0))
}

/// Process-wide total of simulated cycles reported by all backends.
pub fn exec_cycles_total() -> u64 {
    EXEC_CYCLES_TOTAL.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn trap_counts_record_and_total() {
        let mut t = TrapCounts::default();
        t.record(TrapKind::BadAccess);
        t.record(TrapKind::BadAccess);
        t.record(TrapKind::FuelExhausted);
        assert_eq!(t.count(TrapKind::BadAccess), 2);
        assert_eq!(t.count(TrapKind::FuelExhausted), 1);
        assert_eq!(t.count(TrapKind::Unaligned), 0);
        assert_eq!(t.total(), 3);
        assert_eq!(t.iter().map(|(_, n)| n).sum::<u64>(), 3);
    }

    #[test]
    fn kind_index_is_a_bijection() {
        for (i, &k) in TRAP_KIND_TABLE.iter().enumerate() {
            assert_eq!(trap_kind_index(k), i);
        }
    }

    #[test]
    fn ratios_handle_empty_stats() {
        let s = ExecStats::default();
        assert_eq!(s.cache_hit_ratio(), None);
        assert_eq!(s.cycles_per_insn(), None);
        let s = ExecStats {
            insns_retired: 10,
            cycles: 25,
            cache_hits: 3,
            cache_misses: 1,
            ..ExecStats::default()
        };
        assert_eq!(s.cache_hit_ratio(), Some(0.75));
        assert_eq!(s.cycles_per_insn(), Some(2.5));
    }

    #[test]
    fn hook_fires_only_while_installed() {
        // Sentinel value: other tests in this crate run assemblers (and
        // so fire real events) concurrently; count only our own.
        const MARK: u64 = 0x00c0_ffee;
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        set_hook(move |ev| {
            if matches!(ev, CodegenEvent::LambdaEnd { insns: MARK, .. }) {
                n2.fetch_add(1, Ordering::SeqCst);
            }
        });
        emit_event(|| CodegenEvent::LambdaEnd {
            insns: MARK,
            bytes: 4,
            overflowed: false,
            spills: 0,
        });
        clear_hook();
        emit_event(|| CodegenEvent::LambdaEnd {
            insns: MARK,
            bytes: 4,
            overflowed: false,
            spills: 0,
        });
        assert_eq!(n.load(Ordering::SeqCst), 1);
    }
}
