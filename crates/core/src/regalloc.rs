//! The VCODE register allocator (paper §3.2, §5.3).
//!
//! VCODE includes a mechanism for clients to perform register allocation in
//! a machine-independent way: register candidates carry an allocation
//! priority ordering and a class (*temporary* or *persistent* across
//! procedure calls). Allocation walks the ordering; once the machine's
//! registers are exhausted the allocator returns `None` and clients keep
//! variables on the stack.
//!
//! Although its scope is limited, the allocator "does its job well": it
//! makes unused argument registers available, is intelligent about leaf
//! procedures (caller-saved registers can hold persistent values when no
//! call can clobber them), and lets callee-saved registers stand in for
//! caller-saved ones and vice versa. Clients may also dynamically
//! reclassify any physical register per generated function — e.g. an
//! interrupt handler treats every register as callee-saved (paper §5.3).

use crate::reg::{Bank, Reg, RegClass, RegDesc, RegFile, RegKind};

#[derive(Debug, Clone, Copy)]
struct Candidate {
    reg: Reg,
    kind: RegKind,
    free: bool,
}

/// Upper bound on register candidates per bank. No target lists more
/// than 25 allocatable registers per bank; the ceiling lets the
/// candidate lists live inline in the allocator (and therefore in every
/// `Asm`), so building one per generated function allocates nothing.
const MAX_CANDS: usize = 32;

/// A fixed-capacity, inline candidate priority list.
#[derive(Debug, Clone, Copy)]
struct CandList {
    cands: [Candidate; MAX_CANDS],
    len: usize,
}

impl CandList {
    fn new(descs: &[RegDesc]) -> CandList {
        debug_assert!(
            descs.len() <= MAX_CANDS,
            "register file bank exceeds {MAX_CANDS} candidates"
        );
        let mut list = CandList {
            cands: [Candidate {
                reg: Reg::int(0),
                kind: RegKind::Reserved,
                free: false,
            }; MAX_CANDS],
            len: descs.len().min(MAX_CANDS),
        };
        for (c, d) in list.cands.iter_mut().zip(descs) {
            *c = Candidate {
                reg: d.reg,
                kind: d.kind,
                free: !matches!(d.kind, RegKind::Reserved),
            };
        }
        list
    }

    fn as_slice(&self) -> &[Candidate] {
        &self.cands[..self.len]
    }

    fn as_mut_slice(&mut self) -> &mut [Candidate] {
        &mut self.cands[..self.len]
    }
}

/// Per-function register allocation state.
#[derive(Debug)]
pub struct RegAlloc {
    int: CandList,
    flt: CandList,
    leaf: bool,
    callee_used_int: u64,
    callee_used_flt: u64,
    spills: u64,
}

impl RegAlloc {
    /// Builds allocation state from a target's register file. The
    /// backend's `begin` marks the registers holding incoming arguments
    /// with [`take`](Self::take); the rest — including unused argument
    /// registers (paper §3.2) — start out free.
    pub fn new(rf: &RegFile, leaf: bool) -> RegAlloc {
        RegAlloc {
            int: CandList::new(rf.int),
            flt: CandList::new(rf.flt),
            leaf,
            callee_used_int: 0,
            callee_used_flt: 0,
            spills: 0,
        }
    }

    fn bank_mut(&mut self, bank: Bank) -> &mut [Candidate] {
        match bank {
            Bank::Int => self.int.as_mut_slice(),
            Bank::Flt => self.flt.as_mut_slice(),
        }
    }

    fn bank(&self, bank: Bank) -> &[Candidate] {
        match bank {
            Bank::Int => self.int.as_slice(),
            Bank::Flt => self.flt.as_slice(),
        }
    }

    /// Allocates a register of the requested class from `bank`, or `None`
    /// when candidates are exhausted (the paper's error return; clients
    /// then fall back to stack slots).
    ///
    /// For [`RegClass::Temp`], caller-saved and unused-argument registers
    /// are preferred and callee-saved registers stand in when those run
    /// out. For [`RegClass::Persistent`], callee-saved registers are used;
    /// in leaf procedures caller-saved registers stand in (nothing can
    /// clobber them).
    pub fn getreg(&mut self, bank: Bank, class: RegClass) -> Option<Reg> {
        // Two passes: preferred kinds first, then stand-ins (paper: the
        // allocator "generates code to allow caller-saved registers to
        // stand in for callee-saved registers and vice-versa").
        for stand_in in [false, true] {
            let leaf = self.leaf;
            let found = self
                .bank_mut(bank)
                .iter_mut()
                .find(|c| c.free && kind_matches(c.kind, class, stand_in, leaf));
            if let Some(c) = found {
                c.free = false;
                let reg = c.reg;
                if matches!(c.kind, RegKind::CalleeSaved) {
                    self.note_callee_used(reg);
                }
                return Some(reg);
            }
        }
        self.spills += 1;
        None
    }

    /// Returns `reg` to the free pool.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the register was not allocated (double
    /// free), a client bug.
    pub fn putreg(&mut self, reg: Reg) {
        if let Some(c) = self.bank_mut(reg.bank()).iter_mut().find(|c| c.reg == reg) {
            debug_assert!(!c.free, "putreg of free register {reg}");
            c.free = true;
        }
    }

    /// Returns `reg` to the free pool without the debug double-free
    /// assertion of [`putreg`](Self::putreg), reporting whether the
    /// register was actually allocated. The streaming verifier uses this
    /// so a double free becomes a collected diagnostic.
    pub fn try_putreg(&mut self, reg: Reg) -> bool {
        if let Some(c) = self.bank_mut(reg.bank()).iter_mut().find(|c| c.reg == reg) {
            if c.free {
                return false;
            }
            c.free = true;
            return true;
        }
        false
    }

    /// Marks `reg` in use without allocating (used by `lambda` for
    /// incoming argument registers, and by clients that target specific
    /// registers directly).
    pub fn take(&mut self, reg: Reg) {
        if let Some(c) = self.bank_mut(reg.bank()).iter_mut().find(|c| c.reg == reg) {
            c.free = false;
            if matches!(c.kind, RegKind::CalleeSaved) {
                self.note_callee_used(reg);
            }
        }
    }

    /// Dynamically reclassifies a physical register for this function
    /// (paper §5.3). `RegKind::Reserved` removes it from allocation
    /// entirely.
    pub fn set_kind(&mut self, reg: Reg, kind: RegKind) {
        if let Some(c) = self.bank_mut(reg.bank()).iter_mut().find(|c| c.reg == reg) {
            c.kind = kind;
            if matches!(kind, RegKind::Reserved) {
                c.free = false;
            }
        }
    }

    /// Reorders the allocation priority of `bank` so that the given
    /// registers are considered first, in the given order (paper §3.2:
    /// "the client declares an allocation priority ordering").
    pub fn set_priority(&mut self, bank: Bank, order: &[Reg]) {
        let cands = self.bank_mut(bank);
        // Stable in-place reorder: rotate each named register to the front
        // of the not-yet-placed region, preserving the relative order of
        // everything else.
        let mut front = 0;
        for &r in order {
            if let Some(i) = cands[front..].iter().position(|c| c.reg == r) {
                cands[front..=front + i].rotate_right(1);
                front += 1;
            }
        }
    }

    fn note_callee_used(&mut self, reg: Reg) {
        let bit = 1u64 << reg.num();
        match reg.bank() {
            Bank::Int => self.callee_used_int |= bit,
            Bank::Flt => self.callee_used_flt |= bit,
        }
    }

    /// Bitmask (by register number) of callee-saved registers handed out,
    /// which the backend must save in the patched prologue (paper §5.2).
    pub fn callee_used(&self, bank: Bank) -> u64 {
        match bank {
            Bank::Int => self.callee_used_int,
            Bank::Flt => self.callee_used_flt,
        }
    }

    /// Whether `reg` is one of this function's register candidates.
    /// Reclassification APIs use this to reject registers outside the
    /// target register file with a typed error.
    pub fn contains(&self, reg: Reg) -> bool {
        self.bank(reg.bank()).iter().any(|c| c.reg == reg)
    }

    /// Number of currently free candidates in `bank` (diagnostics).
    pub fn free_count(&self, bank: Bank) -> usize {
        self.bank(bank).iter().filter(|c| c.free).count()
    }

    /// Whether this allocation state belongs to a leaf procedure.
    pub fn is_leaf(&self) -> bool {
        self.leaf
    }

    /// Number of exhausted allocations (`getreg` returning `None`): each
    /// is a client fallback to stack storage — the paper's spill. Reported
    /// through [`CodegenEvent::LambdaEnd`](crate::obs::CodegenEvent).
    pub fn spill_count(&self) -> u64 {
        self.spills
    }
}

// ---------------------------------------------------------------------------
// Live intervals (tier-2 linear scan)
// ---------------------------------------------------------------------------

/// One value's live range over a linear instruction stream, as inclusive
/// `[start, end]` positions. Tier-2 recompilation
/// ([`tier2`](crate::tier2)) computes one interval per virtual register
/// from the recorded stream and frees each physical register at its
/// interval's end — the linear-scan discipline — instead of pinning every
/// virtual register for the whole lambda the way one-pass transliteration
/// must.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// First position (instruction index) that mentions the value.
    pub start: u32,
    /// Last position that mentions the value, after loop extension.
    pub end: u32,
}

/// Live intervals for a set of numbered slots (virtual registers),
/// built by scanning a linear stream front to back.
///
/// Intervals over a *linear* order are a sound over-approximation of
/// liveness for forward control flow: a value only exists in its slot's
/// register between its first and last mention, and no position outside
/// that window touches it. Backward branches (loops) are the one case
/// linear order gets wrong — a value last mentioned *inside* a loop body
/// is re-read on the next iteration — so each backward edge reported via
/// [`extend_loop`](Self::extend_loop) stretches every interval it
/// intersects to cover the whole body.
#[derive(Debug, Clone)]
pub struct LiveIntervals {
    by_slot: Vec<Option<Interval>>,
}

impl LiveIntervals {
    /// Empty interval set over `slots` numbered slots.
    pub fn new(slots: usize) -> LiveIntervals {
        LiveIntervals {
            by_slot: vec![None; slots],
        }
    }

    /// Records that `slot` is mentioned (defined or used) at `pos`.
    /// Positions must be fed in non-decreasing order.
    pub fn mention(&mut self, slot: usize, pos: u32) {
        if slot >= self.by_slot.len() {
            self.by_slot.resize(slot + 1, None);
        }
        match &mut self.by_slot[slot] {
            Some(iv) => iv.end = iv.end.max(pos),
            none => {
                *none = Some(Interval {
                    start: pos,
                    end: pos,
                })
            }
        }
    }

    /// Applies one backward branch: an edge from position `back` to a
    /// label bound at position `head <= back`. Every interval that
    /// intersects `[head, back]` is extended to end no earlier than
    /// `back`, so values live anywhere in the loop body stay in their
    /// registers across iterations.
    ///
    /// Feeding edges in ascending `back` order reaches a fixpoint in one
    /// pass: an extension only moves ends *forward*, and any
    /// newly-created intersection with an earlier edge would demand an
    /// end the interval already exceeds.
    pub fn extend_loop(&mut self, head: u32, back: u32) {
        for iv in self.by_slot.iter_mut().flatten() {
            if iv.start <= back && iv.end >= head {
                iv.end = iv.end.max(back);
            }
        }
    }

    /// The interval recorded for `slot`, if it was ever mentioned.
    pub fn get(&self, slot: usize) -> Option<Interval> {
        self.by_slot.get(slot).copied().flatten()
    }

    /// Whether `slot`'s interval ends exactly at `pos` — the linear-scan
    /// trigger to return its physical register to the allocator.
    pub fn ends_at(&self, slot: usize, pos: u32) -> bool {
        self.get(slot).is_some_and(|iv| iv.end == pos)
    }

    /// Number of tracked slots.
    pub fn slots(&self) -> usize {
        self.by_slot.len()
    }

    /// The largest number of intervals simultaneously live at any single
    /// position — the stream's true register pressure (diagnostics; a
    /// stream whose pressure exceeds the target's temp count still fails
    /// allocation, but only then).
    pub fn max_pressure(&self) -> usize {
        let mut events: Vec<(u32, i32)> = Vec::with_capacity(self.by_slot.len() * 2);
        for iv in self.by_slot.iter().flatten() {
            events.push((iv.start, 1));
            events.push((iv.end + 1, -1));
        }
        events.sort_unstable();
        let (mut live, mut peak) = (0i32, 0i32);
        for (_, d) in events {
            live += d;
            peak = peak.max(live);
        }
        peak.max(0) as usize
    }
}

fn kind_matches(kind: RegKind, class: RegClass, stand_in: bool, leaf: bool) -> bool {
    match (class, kind) {
        (_, RegKind::Reserved) => false,
        (RegClass::Temp, RegKind::CallerSaved | RegKind::Arg(_)) => !stand_in,
        (RegClass::Temp, RegKind::CalleeSaved) => stand_in,
        (RegClass::Persistent, RegKind::CalleeSaved) => !stand_in,
        // In a leaf procedure nothing clobbers caller-saved registers, so
        // they may hold persistent values (paper: "intelligent about leaf
        // procedures").
        (RegClass::Persistent, RegKind::CallerSaved | RegKind::Arg(_)) => stand_in && leaf,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_file() -> RegFile {
        static INT: [RegDesc; 6] = [
            RegDesc {
                reg: Reg::int(8),
                kind: RegKind::CallerSaved,
                name: "t0",
            },
            RegDesc {
                reg: Reg::int(9),
                kind: RegKind::CallerSaved,
                name: "t1",
            },
            RegDesc {
                reg: Reg::int(4),
                kind: RegKind::Arg(0),
                name: "a0",
            },
            RegDesc {
                reg: Reg::int(5),
                kind: RegKind::Arg(1),
                name: "a1",
            },
            RegDesc {
                reg: Reg::int(16),
                kind: RegKind::CalleeSaved,
                name: "s0",
            },
            RegDesc {
                reg: Reg::int(1),
                kind: RegKind::Reserved,
                name: "at",
            },
        ];
        RegFile {
            int: &INT,
            flt: &[],
            hard_temps: &[],
            hard_saved: &[],
            sp: Reg::int(29),
            fp: Reg::int(30),
            zero: Some(Reg::int(0)),
        }
    }

    #[test]
    fn temp_allocation_prefers_caller_saved_then_args_then_callee() {
        let rf = test_file();
        let mut ra = RegAlloc::new(&rf, false);
        assert_eq!(ra.getreg(Bank::Int, RegClass::Temp), Some(Reg::int(8)));
        assert_eq!(ra.getreg(Bank::Int, RegClass::Temp), Some(Reg::int(9)));
        assert_eq!(ra.getreg(Bank::Int, RegClass::Temp), Some(Reg::int(4)));
        assert_eq!(ra.getreg(Bank::Int, RegClass::Temp), Some(Reg::int(5)));
        // Callee-saved stands in, and is recorded for the prologue.
        assert_eq!(ra.getreg(Bank::Int, RegClass::Temp), Some(Reg::int(16)));
        assert_eq!(ra.callee_used(Bank::Int), 1 << 16);
        // Reserved registers are never handed out.
        assert_eq!(ra.getreg(Bank::Int, RegClass::Temp), None);
    }

    #[test]
    fn in_use_arg_regs_are_not_allocatable() {
        let rf = test_file();
        let mut ra = RegAlloc::new(&rf, false);
        ra.take(Reg::int(4));
        ra.take(Reg::int(5));
        assert_eq!(ra.getreg(Bank::Int, RegClass::Temp), Some(Reg::int(8)));
        assert_eq!(ra.getreg(Bank::Int, RegClass::Temp), Some(Reg::int(9)));
        // a0/a1 hold live arguments; next is the callee-saved stand-in.
        assert_eq!(ra.getreg(Bank::Int, RegClass::Temp), Some(Reg::int(16)));
        // Releasing an argument makes its register available again.
        ra.putreg(Reg::int(4));
        assert_eq!(ra.getreg(Bank::Int, RegClass::Temp), Some(Reg::int(4)));
    }

    #[test]
    fn persistent_uses_callee_saved_and_caller_saved_only_in_leaves() {
        let rf = test_file();
        let mut ra = RegAlloc::new(&rf, false);
        assert_eq!(
            ra.getreg(Bank::Int, RegClass::Persistent),
            Some(Reg::int(16))
        );
        // Non-leaf: no more persistent registers.
        assert_eq!(ra.getreg(Bank::Int, RegClass::Persistent), None);

        let mut ra = RegAlloc::new(&rf, true);
        assert_eq!(
            ra.getreg(Bank::Int, RegClass::Persistent),
            Some(Reg::int(16))
        );
        // Leaf: caller-saved registers persist trivially.
        assert_eq!(
            ra.getreg(Bank::Int, RegClass::Persistent),
            Some(Reg::int(8))
        );
    }

    #[test]
    fn putreg_recycles() {
        let rf = test_file();
        let mut ra = RegAlloc::new(&rf, false);
        let r = ra.getreg(Bank::Int, RegClass::Temp).unwrap();
        ra.putreg(r);
        assert_eq!(ra.getreg(Bank::Int, RegClass::Temp), Some(r));
    }

    #[test]
    fn reclassification_changes_behaviour() {
        let rf = test_file();
        let mut ra = RegAlloc::new(&rf, false);
        // Interrupt-handler style: all registers must be callee-saved.
        ra.set_kind(Reg::int(8), RegKind::CalleeSaved);
        ra.set_kind(Reg::int(9), RegKind::CalleeSaved);
        let r = ra.getreg(Bank::Int, RegClass::Persistent).unwrap();
        assert_eq!(r, Reg::int(8));
        assert!(ra.callee_used(Bank::Int) & (1 << 8) != 0);
        // Reserving removes a register entirely.
        ra.set_kind(Reg::int(9), RegKind::Reserved);
        assert_eq!(
            ra.getreg(Bank::Int, RegClass::Persistent),
            Some(Reg::int(16))
        );
    }

    #[test]
    fn priority_override() {
        let rf = test_file();
        let mut ra = RegAlloc::new(&rf, false);
        ra.set_priority(Bank::Int, &[Reg::int(9), Reg::int(8)]);
        assert_eq!(ra.getreg(Bank::Int, RegClass::Temp), Some(Reg::int(9)));
        assert_eq!(ra.getreg(Bank::Int, RegClass::Temp), Some(Reg::int(8)));
    }

    #[test]
    fn spill_count_tracks_exhaustion() {
        let rf = test_file();
        let mut ra = RegAlloc::new(&rf, false);
        while ra.getreg(Bank::Int, RegClass::Temp).is_some() {}
        assert_eq!(ra.spill_count(), 1);
        assert_eq!(ra.getreg(Bank::Int, RegClass::Temp), None);
        assert_eq!(ra.getreg(Bank::Flt, RegClass::Temp), None);
        assert_eq!(ra.spill_count(), 3);
    }

    #[test]
    fn take_marks_in_use_and_records_callee_saved() {
        let rf = test_file();
        let mut ra = RegAlloc::new(&rf, false);
        ra.take(Reg::int(16));
        assert_eq!(ra.callee_used(Bank::Int), 1 << 16);
        assert_eq!(ra.getreg(Bank::Int, RegClass::Persistent), None);
    }

    #[test]
    fn intervals_span_first_to_last_mention() {
        let mut iv = LiveIntervals::new(3);
        iv.mention(0, 0);
        iv.mention(1, 2);
        iv.mention(0, 5);
        assert_eq!(iv.get(0), Some(Interval { start: 0, end: 5 }));
        assert_eq!(iv.get(1), Some(Interval { start: 2, end: 2 }));
        assert_eq!(iv.get(2), None);
        assert!(iv.ends_at(0, 5));
        assert!(!iv.ends_at(0, 4));
    }

    #[test]
    fn loop_extension_keeps_body_values_live_across_the_back_edge() {
        let mut iv = LiveIntervals::new(3);
        iv.mention(0, 1); // last mention inside the loop body...
        iv.mention(1, 8); // ...another value, mentioned only near the end
        iv.mention(2, 20); // outside the loop entirely
        iv.extend_loop(0, 10); // backward edge 10 -> 0
        assert_eq!(iv.get(0).unwrap().end, 10);
        assert_eq!(iv.get(1).unwrap().end, 10);
        // Started after the back edge: untouched.
        assert_eq!(iv.get(2).unwrap().end, 20);
    }

    #[test]
    fn max_pressure_counts_simultaneous_overlap() {
        let mut iv = LiveIntervals::new(4);
        // Three disjoint one-position intervals: pressure 1.
        iv.mention(0, 0);
        iv.mention(1, 1);
        iv.mention(2, 2);
        assert_eq!(iv.max_pressure(), 1);
        // One long interval under them: pressure 2.
        iv.mention(3, 0);
        iv.mention(3, 3);
        assert_eq!(iv.max_pressure(), 2);
    }
}
