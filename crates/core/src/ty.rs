//! VCODE operand types (paper Table 1).
//!
//! Every VCODE instruction operates on typed operands. The types are named
//! for their mappings to ANSI C types: `v` (`void`), `c`/`uc` (signed and
//! unsigned `char`), `s`/`us` (`short`), `i`/`u` (`int`), `l`/`ul` (`long`),
//! `p` (`void *`), `f` (`float`) and `d` (`double`). On a 32-bit target
//! some of these are not distinct (e.g. `l` is equivalent to `i`); the
//! [`Target`](crate::target::Target) decides the machine mapping.

use std::fmt;

/// A VCODE operand type.
///
/// Most non-memory operations only accept the word-sized and larger types
/// (`I`, `U`, `L`, `Ul`, `P`, `F`, `D`); the sub-word types (`C`, `Uc`, `S`,
/// `Us`) appear only in loads and stores, mirroring the paper's restriction
/// ("most architectures only provide word and long word operations on
/// registers").
///
/// # Examples
///
/// ```
/// use vcode::Ty;
/// assert!(Ty::I.is_int());
/// assert!(Ty::D.is_float());
/// assert_eq!(Ty::Us.size_bytes(64), 2);
/// assert_eq!(Ty::L.size_bytes(32), 4); // `l` folds to `i` on 32-bit machines
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Ty {
    /// `void` — only meaningful for returns.
    V,
    /// `signed char` (memory operations only).
    C,
    /// `unsigned char` (memory operations only).
    Uc,
    /// `signed short` (memory operations only).
    S,
    /// `unsigned short` (memory operations only).
    Us,
    /// `int` — 32-bit signed.
    I,
    /// `unsigned` — 32-bit unsigned.
    U,
    /// `long` — word-sized signed (32 or 64 bits depending on target).
    L,
    /// `unsigned long` — word-sized unsigned.
    Ul,
    /// `void *` — pointer, word-sized.
    P,
    /// `float` — single-precision IEEE-754.
    F,
    /// `double` — double-precision IEEE-754.
    D,
}

impl Ty {
    /// All types, in paper order.
    pub const ALL: [Ty; 12] = [
        Ty::V,
        Ty::C,
        Ty::Uc,
        Ty::S,
        Ty::Us,
        Ty::I,
        Ty::U,
        Ty::L,
        Ty::Ul,
        Ty::P,
        Ty::F,
        Ty::D,
    ];

    /// Types allowed as register operands of arithmetic instructions.
    pub const ARITH: [Ty; 7] = [Ty::I, Ty::U, Ty::L, Ty::Ul, Ty::P, Ty::F, Ty::D];

    /// Types allowed in loads and stores.
    pub const MEM: [Ty; 11] = [
        Ty::C,
        Ty::Uc,
        Ty::S,
        Ty::Us,
        Ty::I,
        Ty::U,
        Ty::L,
        Ty::Ul,
        Ty::P,
        Ty::F,
        Ty::D,
    ];

    /// Returns `true` for the integer family (including pointer).
    #[inline]
    pub fn is_int(self) -> bool {
        !matches!(self, Ty::F | Ty::D | Ty::V)
    }

    /// Returns `true` for `F` and `D`.
    #[inline]
    pub fn is_float(self) -> bool {
        matches!(self, Ty::F | Ty::D)
    }

    /// Returns `true` for signed integer types.
    #[inline]
    pub fn is_signed(self) -> bool {
        matches!(self, Ty::C | Ty::S | Ty::I | Ty::L)
    }

    /// Returns `true` for the sub-word types that only appear in memory
    /// operations.
    #[inline]
    pub fn is_subword(self) -> bool {
        matches!(self, Ty::C | Ty::Uc | Ty::S | Ty::Us)
    }

    /// Size of a value of this type in bytes on a machine with the given
    /// word width (32 or 64), or `None` for [`Ty::V`], which has no size.
    ///
    /// Client-facing paths (e.g. [`Assembler::local`](crate::Assembler::local))
    /// use this to turn a void-typed request into a latched
    /// [`Error::BadOperands`](crate::Error::BadOperands) instead of a panic.
    pub fn try_size_bytes(self, word_bits: u32) -> Option<usize> {
        assert!(word_bits == 32 || word_bits == 64, "bad word width");
        match self {
            Ty::V => None,
            Ty::C | Ty::Uc => Some(1),
            Ty::S | Ty::Us => Some(2),
            Ty::I | Ty::U | Ty::F => Some(4),
            Ty::L | Ty::Ul | Ty::P => Some((word_bits / 8) as usize),
            Ty::D => Some(8),
        }
    }

    /// Size of a value of this type in bytes on a machine with the given
    /// word width (32 or 64).
    ///
    /// # Panics
    ///
    /// Panics if `word_bits` is neither 32 nor 64, or if called on [`Ty::V`].
    /// Backend code that may see client-supplied types should prefer
    /// [`try_size_bytes`](Self::try_size_bytes).
    pub fn size_bytes(self, word_bits: u32) -> usize {
        self.try_size_bytes(word_bits).expect("void has no size")
    }

    /// The paper's single-letter suffix for this type (`"ul"` is two).
    pub fn suffix(self) -> &'static str {
        match self {
            Ty::V => "v",
            Ty::C => "c",
            Ty::Uc => "uc",
            Ty::S => "s",
            Ty::Us => "us",
            Ty::I => "i",
            Ty::U => "u",
            Ty::L => "l",
            Ty::Ul => "ul",
            Ty::P => "p",
            Ty::F => "f",
            Ty::D => "d",
        }
    }

    /// Parses one type from the front of a `lambda` type-string fragment,
    /// returning the type and the number of characters consumed.
    ///
    /// Used by [`Sig::parse`]. Longest match wins, so `"ul"` parses as `Ul`
    /// rather than `U` followed by `l`, and `"uc"`/`"us"` likewise.
    pub(crate) fn parse_prefix(s: &str) -> Option<(Ty, usize)> {
        let b = s.as_bytes();
        match b {
            [b'u', b'l', ..] => Some((Ty::Ul, 2)),
            [b'u', b'c', ..] => Some((Ty::Uc, 2)),
            [b'u', b's', ..] => Some((Ty::Us, 2)),
            [b'u', ..] => Some((Ty::U, 1)),
            [b'c', ..] => Some((Ty::C, 1)),
            [b's', ..] => Some((Ty::S, 1)),
            [b'i', ..] => Some((Ty::I, 1)),
            [b'l', ..] => Some((Ty::L, 1)),
            [b'p', ..] => Some((Ty::P, 1)),
            [b'f', ..] => Some((Ty::F, 1)),
            [b'd', ..] => Some((Ty::D, 1)),
            [b'v', ..] => Some((Ty::V, 1)),
            _ => None,
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.suffix())
    }
}

/// A dynamically generated function's signature, parsed from a paper-style
/// type string.
///
/// The paper's `v_lambda` takes a type string listing the function's
/// incoming parameter types — e.g. `"%i%p"` for `(int, void *)`. The number
/// and type of parameters do not have to be fixed at static compile time.
///
/// # Examples
///
/// ```
/// use vcode::{Sig, Ty};
/// let sig = Sig::parse("%i%p%d")?;
/// assert_eq!(sig.args(), &[Ty::I, Ty::P, Ty::D]);
/// assert_eq!(sig.ret(), Ty::V);
/// let sig = Sig::parse("%i%i:%i")?; // optional ":<ret>" extension
/// assert_eq!(sig.ret(), Ty::I);
/// # Ok::<(), vcode::SigParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Sig {
    args: Vec<Ty>,
    ret: Option<Ty>,
}

/// Error returned when a `lambda` type string is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SigParseError {
    /// Byte offset of the offending character.
    pub at: usize,
    /// The malformed input.
    pub input: String,
}

impl fmt::Display for SigParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "malformed type string {:?} at byte {}",
            self.input, self.at
        )
    }
}

impl std::error::Error for SigParseError {}

impl Sig {
    /// Creates a signature directly from parts.
    pub fn new(args: Vec<Ty>, ret: Ty) -> Sig {
        Sig {
            args,
            ret: Some(ret),
        }
    }

    /// Parses a paper-style type string: each argument is `%` followed by a
    /// type suffix, optionally terminated by `:` and a return-type suffix.
    ///
    /// # Errors
    ///
    /// Returns [`SigParseError`] when the string contains anything other
    /// than `%<type>` groups and an optional `:<type>` tail, or when `v`
    /// appears as an argument type.
    pub fn parse(s: &str) -> Result<Sig, SigParseError> {
        let err = |at: usize| SigParseError {
            at,
            input: s.to_owned(),
        };
        let mut args = Vec::new();
        let mut ret = None;
        let mut i = 0;
        let b = s.as_bytes();
        while i < b.len() {
            match b[i] {
                b'%' => {
                    let (ty, n) = Ty::parse_prefix(&s[i + 1..]).ok_or_else(|| err(i + 1))?;
                    if ty == Ty::V {
                        return Err(err(i + 1));
                    }
                    args.push(ty);
                    i += 1 + n;
                }
                b':' => {
                    // Accept both ":i" and ":%i" for the return type.
                    if b.get(i + 1) == Some(&b'%') {
                        i += 1;
                    }
                    let (ty, n) = Ty::parse_prefix(&s[i + 1..]).ok_or_else(|| err(i + 1))?;
                    i += 1 + n;
                    if i != b.len() {
                        return Err(err(i));
                    }
                    ret = Some(ty);
                }
                _ => return Err(err(i)),
            }
        }
        Ok(Sig { args, ret })
    }

    /// The argument types, in order.
    pub fn args(&self) -> &[Ty] {
        &self.args
    }

    /// The return type (defaults to [`Ty::V`] when the string had no `:`
    /// tail; the actual value returned is whatever the generated `ret`
    /// instruction supplies, as in the paper).
    pub fn ret(&self) -> Ty {
        self.ret.unwrap_or(Ty::V)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suffix_roundtrip() {
        for ty in Ty::ALL {
            let s = ty.suffix();
            let (parsed, n) = Ty::parse_prefix(s).expect("parses");
            assert_eq!(parsed, ty, "suffix {s}");
            assert_eq!(n, s.len());
        }
    }

    #[test]
    fn sizes_32_vs_64() {
        assert_eq!(Ty::P.size_bytes(32), 4);
        assert_eq!(Ty::P.size_bytes(64), 8);
        assert_eq!(Ty::L.size_bytes(32), 4);
        assert_eq!(Ty::L.size_bytes(64), 8);
        assert_eq!(Ty::D.size_bytes(32), 8);
        assert_eq!(Ty::F.size_bytes(64), 4);
    }

    #[test]
    #[should_panic(expected = "void has no size")]
    fn void_has_no_size() {
        let _ = Ty::V.size_bytes(64);
    }

    #[test]
    fn parse_simple_sig() {
        let sig = Sig::parse("%i").unwrap();
        assert_eq!(sig.args(), &[Ty::I]);
        assert_eq!(sig.ret(), Ty::V);
    }

    #[test]
    fn parse_multi_and_ret() {
        let sig = Sig::parse("%i%ul%d%p:%l").unwrap();
        assert_eq!(sig.args(), &[Ty::I, Ty::Ul, Ty::D, Ty::P]);
        assert_eq!(sig.ret(), Ty::L);
    }

    #[test]
    fn parse_empty_is_nullary() {
        let sig = Sig::parse("").unwrap();
        assert!(sig.args().is_empty());
        assert_eq!(sig.ret(), Ty::V);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Sig::parse("%x").is_err());
        assert!(Sig::parse("i").is_err());
        assert!(Sig::parse("%i:").is_err());
        assert!(Sig::parse("%v").is_err());
        assert!(Sig::parse("%i:%i%i").is_err());
    }

    #[test]
    fn parse_prefers_longest_match() {
        let sig = Sig::parse("%uc%us%ul%u").unwrap();
        assert_eq!(sig.args(), &[Ty::Uc, Ty::Us, Ty::Ul, Ty::U]);
    }

    #[test]
    fn error_display_mentions_offset() {
        let e = Sig::parse("%i%q").unwrap_err();
        assert_eq!(e.at, 3);
        assert!(e.to_string().contains("byte 3"));
    }
}
