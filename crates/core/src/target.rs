//! The retargeting interface.
//!
//! Retargeting VCODE involves (1) constructing emitters for each machine
//! instruction, (2) mapping the core VCODE instruction set onto them, and
//! (3) implementing the machine's calling conventions and activation-record
//! management (paper §3.3). In this reproduction all three are gathered in
//! one [`Target`] implementation per architecture; a RISC retarget is a
//! single file of a few hundred lines, matching the paper's "one to four
//! days" claim in spirit.
//!
//! `Target` implementations are stateless types: every method is an
//! associated function receiving the assembler state
//! [`Asm`]. Because [`Assembler<T>`] is
//! monomorphized over the target, each VCODE instruction compiles down to a
//! direct, inlinable encoding sequence — the Rust equivalent of the paper's
//! C macros expanding in place (Figure 2).
//!
//! [`Assembler<T>`]: crate::Assembler

use crate::asm::Asm;
use crate::error::Error;
use crate::label::{Fixup, Label};
use crate::op::{BinOp, Cond, Imm, UnOp};
use crate::reg::{Reg, RegFile};
use crate::ty::{Sig, Ty};

/// Whether the function being generated is a leaf procedure.
///
/// Leaf procedures can be profitably optimized (no return-address save, no
/// frame in many cases), but VCODE cannot discover leaf-ness on its own
/// while generating code in place, so the client declares it (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Leaf {
    /// The function will not generate any calls.
    Yes,
    /// The function may call other functions.
    No,
}

/// A memory-operand offset: VCODE loads and stores address `base + off`
/// where `off` is an immediate or an index register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Off {
    /// Immediate byte offset.
    I(i32),
    /// Register index.
    R(Reg),
}

/// Second operand of a branch: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BrOperand {
    /// Register operand.
    R(Reg),
    /// Immediate operand (integer branches only).
    I(i64),
}

/// Destination of a jump or call: VCODE jumps go "to immediate, register,
/// or label" (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JumpTarget {
    /// A label inside the function being generated.
    Label(Label),
    /// A register holding an absolute address.
    Reg(Reg),
    /// An absolute address known at generation time (e.g. a function
    /// pointer of previously generated or statically compiled code).
    Abs(u64),
}

/// A stack slot created by [`Assembler::local`](crate::Assembler::local).
///
/// The slot is addressed as `base + off`; both are fixed at allocation time
/// because VCODE pre-reserves a worst-case register-save area so local
/// offsets are computable before the final activation-record size is known
/// (paper §5.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackSlot {
    /// Base register (frame or stack pointer, per target).
    pub base: Reg,
    /// Byte offset from `base`.
    pub off: i32,
    /// The type the slot was allocated for.
    pub ty: Ty,
}

/// Marshaling state for a dynamically constructed call, threaded through
/// [`Target::call_begin`] → [`Target::call_arg`] → [`Target::call_end`].
///
/// Fields are generic scratch the backend uses as it sees fit; clients
/// treat the value as opaque.
#[derive(Debug)]
pub struct CallFrame {
    /// The callee's signature.
    pub sig: Sig,
    /// Bytes of outgoing stack-argument space.
    pub stack_bytes: usize,
    /// Next integer argument register index.
    pub next_int: u8,
    /// Next floating-point argument register index.
    pub next_flt: u8,
    /// Backend scratch.
    pub misc: u64,
}

/// Result of finishing a function: where it starts and how long it is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finished {
    /// Byte offset of the entry point within the client buffer (0 unless
    /// the backend placed a constant island before the code).
    pub entry: usize,
    /// Total bytes emitted, including prologue, epilogue and literal pool.
    pub len: usize,
    /// Resolved byte offset of every label, indexed by
    /// [`Label::index`](crate::Label::index). Clients use these to build
    /// dispatch tables for indirect jumps (e.g. DPF's dense-range
    /// demultiplexing) after generation completes.
    pub label_offsets: Vec<Option<usize>>,
    /// The streaming-verifier report, when the verifier was enabled for
    /// this generation session (`None` on the fast path — see
    /// [`crate::verify`]).
    pub verify: Option<Box<crate::verify::VerifyReport>>,
    /// VCODE instructions emitted into this function (the assembler's
    /// session counter at `end`). The engine layer reports this per
    /// cached lambda: a warm cache hit reuses the finished code without
    /// re-emitting any of them.
    pub insns: u64,
}

impl Finished {
    /// The resolved byte offset of `l`, if it was bound.
    pub fn label_offset(&self, l: crate::label::Label) -> Option<usize> {
        self.label_offsets
            .get(l.index() as usize)
            .copied()
            .flatten()
    }
}

/// Scratch fields backends stash per-function state in (patch sites for
/// the frame-allocation instruction, the reserved prologue save area, ...).
/// The core never interprets these.
#[derive(Debug, Default, Clone)]
pub struct TargetScratch {
    /// Offset of the instruction that allocates the activation record,
    /// backpatched when the final size is known (paper §5.2).
    pub frame_fix: usize,
    /// Reserved byte range in the instruction stream for prologue register
    /// saves, filled in at `end` (paper §5.2).
    pub save_area: (usize, usize),
    /// Generic scratch slots.
    pub misc: [usize; 6],
    /// Generic flag bits.
    pub flags: u32,
}

/// A machine backend.
///
/// This trait is the unit of retargeting. Implementations are `enum`-less
/// zero-sized types; all state lives in [`Asm`]. See the `vcode-mips`,
/// `vcode-sparc`, `vcode-alpha` and `vcode-x64` crates.
pub trait Target: Sized {
    /// Human-readable architecture name.
    const NAME: &'static str;
    /// Machine word width: 32 or 64.
    const WORD_BITS: u32;
    /// Number of branch delay slots (paper §5.3 scheduling interface).
    const BRANCH_DELAY_SLOTS: u32 = 0;
    /// Cycles before a loaded value may be used (MIPS-I load delay).
    const LOAD_DELAY_CYCLES: u32 = 0;
    /// Maximum register-save area the prologue reserves, in bytes
    /// (paper §5.2: "the space needed to save all machine registers").
    const MAX_SAVE_BYTES: usize;
    /// Static table the streaming verifier and differential checker
    /// consult (reserved registers, instruction alignment, delay slots).
    /// The default is derived from the other consts; backends override
    /// it to list their reserved registers and alignment.
    const CHECKS: crate::verify::TargetChecks = crate::verify::TargetChecks {
        word_bits: Self::WORD_BITS,
        insn_align: 1,
        branch_delay_slots: Self::BRANCH_DELAY_SLOTS,
        load_delay_cycles: Self::LOAD_DELAY_CYCLES,
        reserved_int: &[],
        reserved_flt: &[],
    };

    /// The target's register files and allocation ordering.
    fn regfile() -> &'static RegFile;

    // ---- function plumbing ----

    /// Begins a function: computes where incoming parameters are from the
    /// signature and the machine calling convention (copying stack
    /// arguments to registers by default), reserves prologue space, and
    /// returns the registers now holding the parameters (paper §3.2
    /// step 2).
    ///
    /// # Errors
    ///
    /// [`Error::TooManyArgs`] if the convention support cannot place all
    /// parameters.
    fn begin(a: &mut Asm<'_>, sig: &Sig, leaf: Leaf) -> Result<Vec<Reg>, Error>;

    /// Allocates a local variable slot in the activation record.
    fn local(a: &mut Asm<'_>, ty: Ty) -> StackSlot;

    /// Emits a return: move `val` to the return register and transfer to
    /// the (not yet emitted) epilogue.
    fn emit_ret(a: &mut Asm<'_>, val: Option<(Ty, Reg)>);

    /// Finishes the function: emits the epilogue, inserts the deferred
    /// prologue register saves, and backpatches the activation-record
    /// size (paper §5.2). Called by `Assembler::end` *before* literal-pool
    /// emission and fixup resolution.
    fn end(a: &mut Asm<'_>) -> Result<(), Error>;

    /// Resolves one recorded fixup whose destination is byte offset
    /// `dest` within the buffer.
    fn patch(a: &mut Asm<'_>, fixup: Fixup, dest: usize);

    // ---- the core instruction set (paper Table 2) ----

    /// Binary operation `rd = rs1 op rs2`.
    fn emit_binop(a: &mut Asm<'_>, op: BinOp, ty: Ty, rd: Reg, rs1: Reg, rs2: Reg);

    /// Binary operation with immediate `rd = rs op imm`.
    fn emit_binop_imm(a: &mut Asm<'_>, op: BinOp, ty: Ty, rd: Reg, rs: Reg, imm: i64);

    /// Unary operation `rd = op rs`.
    fn emit_unop(a: &mut Asm<'_>, op: UnOp, ty: Ty, rd: Reg, rs: Reg);

    /// Load constant: `rd = imm`.
    fn emit_set(a: &mut Asm<'_>, ty: Ty, rd: Reg, imm: Imm);

    /// Type conversion `rd = (to) rs`.
    fn emit_cvt(a: &mut Asm<'_>, from: Ty, to: Ty, rd: Reg, rs: Reg);

    /// Load `rd = *(ty*)(base + off)`.
    fn emit_ld(a: &mut Asm<'_>, ty: Ty, rd: Reg, base: Reg, off: Off);

    /// Store `*(ty*)(base + off) = src`.
    fn emit_st(a: &mut Asm<'_>, ty: Ty, src: Reg, base: Reg, off: Off);

    /// Conditional branch to `l`.
    fn emit_branch(a: &mut Asm<'_>, cond: Cond, ty: Ty, rs1: Reg, rs2: BrOperand, l: Label);

    /// Unconditional jump.
    fn emit_jump(a: &mut Asm<'_>, t: JumpTarget);

    /// Jump-and-link (raw call primitive; most clients use the
    /// marshaling interface instead).
    fn emit_jal(a: &mut Asm<'_>, t: JumpTarget);

    /// No-operation.
    fn emit_nop(a: &mut Asm<'_>);

    // ---- dynamically constructed calls (paper §2: clients "generate
    //      function calls that take an arbitrary number and type of
    //      arguments") ----

    /// Starts marshaling a call with the given callee signature.
    fn call_begin(a: &mut Asm<'_>, sig: &Sig) -> CallFrame;

    /// Supplies the `idx`-th argument from `src`.
    fn call_arg(a: &mut Asm<'_>, cf: &mut CallFrame, idx: usize, ty: Ty, src: Reg);

    /// Emits the call and moves the return value (if any) to `ret`.
    fn call_end(a: &mut Asm<'_>, cf: CallFrame, target: JumpTarget, ret: Option<(Ty, Reg)>);

    // ---- extension layers (paper §3.1, §5.4) ----

    /// Hook for hardware implementations of extension operations.
    ///
    /// Returns `true` when the target emitted the operation natively;
    /// `false` makes the extension layer fall back to its portable
    /// definition in terms of the core ("this duality of implementation
    /// allows extensions to be implemented in a portable manner without
    /// affecting ease of retargeting").
    fn emit_ext_unop(a: &mut Asm<'_>, op: crate::ext::ExtUnOp, ty: Ty, rd: Reg, rs: Reg) -> bool {
        let _ = (a, op, ty, rd, rs);
        false
    }
}
