//! The in-place code buffer.
//!
//! VCODE generates machine code *in place*: each instruction is encoded and
//! stored directly at the instruction pointer, into storage the client
//! provided (paper §3, §5.1). [`CodeBuffer`] is that instruction pointer: a
//! borrowed byte region plus a cursor. Other than the emitted instructions
//! themselves, VCODE only ever stores label offsets and unresolved jumps —
//! never a representation proportional to the number of instructions.
//!
//! Emission never panics on exhaustion; the buffer latches an overflow flag
//! that [`Assembler::end`](crate::Assembler::end) reports as an error.
//!
//! # The zero-check fast path
//!
//! The paper's headline claim is raw emission speed (~6–10 host
//! instructions per generated instruction, §1/§5.1), which is won or lost
//! in the innermost store. Two mechanisms keep that store check-free:
//!
//! - **Fixed-width appends** ([`put_u16`](CodeBuffer::put_u16) /
//!   [`put_u32`](CodeBuffer::put_u32) / [`put_u64`](CodeBuffer::put_u64))
//!   perform one capacity compare and then a single unaligned word store —
//!   a RISC backend emits each instruction as exactly one `u32` store, the
//!   paper's Figure 2 `_addu` discipline.
//! - **Reservation windows** ([`window`](CodeBuffer::window)) pay one
//!   capacity check for a whole variable-length instruction (x86-64:
//!   prefix/REX/opcode/modrm/SIB/immediate) and hand back a [`Win`] whose
//!   writes are *branch-free* raw-pointer stores: when the reservation
//!   does not fit (or the buffer is in [`EmitPath::Bytewise`] mode) the
//!   window points at an internal spill scratch instead, and the bytes
//!   are replayed through the per-byte checked path when the window
//!   drops — so near-capacity emission behaves exactly like the seed
//!   per-byte implementation, without a mode test on any write.
//!
//! Both funnel through one generic checked/unchecked pair
//! (`put_array` / `Win::array`), so byte order is decided in a single
//! place. The hot paths branch on a single precomputed `cap` field —
//! `EmitPath::Bytewise` simply sets `cap = 0`, routing every multi-byte
//! append through the same per-byte reference code the seed used, with
//! zero extra tests on the production path. All `unsafe` in the emission
//! hot path is confined to this module, and every unchecked write is
//! dominated by the window's capacity check (re-asserted in debug
//! builds).
//!
//! For differential testing, [`EmitPath::Bytewise`] forces every append —
//! including window writes — through the per-byte checked reference path;
//! `tests/differential.rs` proves both paths produce identical machine
//! code over the full regression corpus on all four backends.

/// Which write path a [`CodeBuffer`] uses.
///
/// `Fast` is the production path: one capacity check per instruction (or
/// per fixed-width word), then unchecked stores. `Bytewise` is the
/// reference path — every byte individually bounds-checked, exactly the
/// seed implementation — kept so the fast path can be differentially
/// tested against it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmitPath {
    /// Single-check windows and word stores (production).
    #[default]
    Fast,
    /// Per-byte checked appends (differential-testing reference).
    Bytewise,
}

/// Upper bound on a [`CodeBuffer::window`] reservation, sized by the
/// spill scratch that backs reservations which don't fit in the
/// remaining storage. The largest reservation in the tree is the x86-64
/// encoder's 16-byte instruction bound.
pub const WIN_MAX: usize = 32;

/// A byte buffer with a cursor, backing in-place code emission.
///
/// The buffer borrows client storage, exactly like the paper's
/// `v_lambda(..., ip)` taking "a pointer to memory where the code will be
/// stored" — for native execution the storage is an executable mapping, for
/// simulated targets an ordinary `Vec<u8>`.
#[derive(Debug)]
pub struct CodeBuffer<'m> {
    mem: &'m mut [u8],
    len: usize,
    /// Capacity as seen by the single-check fast paths: `mem.len()`
    /// normally, 0 in [`EmitPath::Bytewise`] mode so every multi-byte
    /// append falls through to the per-byte reference path. Encoding the
    /// mode in the bound keeps the hot path to exactly one compare.
    cap: usize,
    overflow: bool,
    /// Scratch backing for reservations that don't fit (see [`Win`]).
    spill: [u8; WIN_MAX],
}

/// Generates the little-endian fixed-width appends for both the checked
/// ([`CodeBuffer`]) and unchecked ([`Win`]) paths from one definition, so
/// the endianness decision exists in exactly one place per width.
macro_rules! le_appends {
    ($($width:literal, $put:ident, $win:ident: $t:ty;)*) => {
        impl<'m> CodeBuffer<'m> {
            $(
                #[doc = concat!("Appends a little-endian ", $width,
                    "-bit value: one capacity check, one store.")]
                #[inline]
                pub fn $put(&mut self, v: $t) {
                    self.put_array(v.to_le_bytes());
                }
            )*
        }
        impl<'b, 'm> Win<'b, 'm> {
            $(
                #[doc = concat!("Writes a little-endian ", $width,
                    "-bit value (unchecked; covered by the reservation).")]
                #[inline]
                pub fn $win(&mut self, v: $t) {
                    self.array(v.to_le_bytes());
                }
            )*
        }
    };
}

le_appends! {
    "16", put_u16, u16: u16;
    "32", put_u32, u32: u32;
    "64", put_u64, u64: u64;
}

impl<'m> CodeBuffer<'m> {
    /// Wraps client-provided storage (fast path).
    pub fn new(mem: &'m mut [u8]) -> CodeBuffer<'m> {
        Self::with_path(mem, EmitPath::Fast)
    }

    /// Wraps client-provided storage with an explicit write path.
    pub fn with_path(mem: &'m mut [u8], path: EmitPath) -> CodeBuffer<'m> {
        let cap = match path {
            EmitPath::Fast => mem.len(),
            EmitPath::Bytewise => 0,
        };
        CodeBuffer {
            mem,
            len: 0,
            cap,
            overflow: false,
            spill: [0; WIN_MAX],
        }
    }

    /// Bytes emitted so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if nothing has been emitted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total capacity of the client storage.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.mem.len()
    }

    /// `true` once any write has been dropped for lack of space.
    #[inline]
    pub fn overflowed(&self) -> bool {
        self.overflow
    }

    /// The emitted code.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.mem[..self.len]
    }

    /// Appends one byte. This *is* the per-byte reference path: one
    /// compare against the true capacity, identical in both emit modes.
    #[inline(always)]
    pub fn put_u8(&mut self, b: u8) {
        if self.len < self.mem.len() {
            // SAFETY: `len < mem.len()` was just checked.
            unsafe {
                *self.mem.get_unchecked_mut(self.len) = b;
            }
            self.len += 1;
        } else {
            self.overflow = true;
        }
    }

    /// Slow path of [`put_array`](Self::put_array) /
    /// [`put_slice`](Self::put_slice) / spilled-window replay: bytewise
    /// reference mode, a spill replay near capacity, or a true overflow.
    /// Outlined so the append fast paths stay a compare plus a store.
    #[cold]
    #[inline(never)]
    fn put_bytes_cold(&mut self, bytes: &[u8], whole_or_nothing: bool) {
        if self.len + bytes.len() <= self.mem.len() {
            // Fits in the real storage (bytewise mode, or a spilled
            // window whose content turned out to fit).
            self.mem[self.len..self.len + bytes.len()].copy_from_slice(bytes);
            self.len += bytes.len();
        } else if whole_or_nothing {
            // Fast-path overflow: drop the whole run (a partial
            // instruction word is never emitted) and latch.
            self.overflow = true;
        } else {
            // Per-byte reference semantics: land what fits, then latch.
            for &b in bytes {
                self.put_u8(b);
            }
        }
    }

    /// Appends `N` bytes with one capacity check and one fixed-width
    /// store — the generic *checked* append every `put_u16/u32/u64`
    /// routes through ([`Win::array`] is its unchecked twin). On
    /// overflow the whole array is dropped in fast mode (a partial
    /// instruction is never emitted) and the latch is set; bytewise mode
    /// keeps the per-byte reference semantics.
    #[inline(always)]
    pub fn put_array<const N: usize>(&mut self, bytes: [u8; N]) {
        if self.len + N <= self.cap {
            // SAFETY: `cap <= mem.len()`, so `len + N <= mem.len()`; the
            // store is unaligned-safe (`*mut [u8; N]` has alignment 1).
            unsafe {
                self.mem
                    .as_mut_ptr()
                    .add(self.len)
                    .cast::<[u8; N]>()
                    .write_unaligned(bytes);
            }
            self.len += N;
        } else {
            self.put_bytes_cold(&bytes, self.cap != 0);
        }
    }

    /// Appends the low `n` bytes of a little-endian packed instruction
    /// word with **one** capacity check and **one** 8-byte store — the
    /// degenerate single-store form of [`window`](Self::window) for
    /// instructions whose entire encoding fits in a `u64`. The store
    /// always writes 8 bytes (the bytes past `n` are scratch that the
    /// next append overwrites), so the check conservatively requires 8
    /// bytes of headroom; shorter tails fall back to the checked
    /// per-byte path, preserving the seed near-capacity semantics.
    #[inline(always)]
    pub fn put_word(&mut self, word: u64, n: usize) {
        debug_assert!(n <= 8, "packed word longer than 8 bytes");
        if self.len + 8 <= self.cap {
            // SAFETY: `cap <= mem.len()`, so the full 8-byte scratch
            // store is in-bounds; `*mut u64` unaligned store is fine.
            unsafe {
                self.mem
                    .as_mut_ptr()
                    .add(self.len)
                    .cast::<u64>()
                    .write_unaligned(word.to_le());
            }
            self.len += n;
        } else {
            let bytes = word.to_le_bytes();
            self.put_bytes_cold(&bytes[..n], false);
        }
    }

    /// Appends raw bytes (runtime length). Whole-slice semantics like
    /// [`put_array`](Self::put_array): on overflow nothing is written
    /// (fast mode).
    #[inline]
    pub fn put_slice(&mut self, bytes: &[u8]) {
        let end = self.len + bytes.len();
        if end <= self.cap {
            self.mem[self.len..end].copy_from_slice(bytes);
            self.len = end;
        } else {
            self.put_bytes_cold(bytes, self.cap != 0);
        }
    }

    /// Reserves a write window of at most `n` bytes (`n <=` [`WIN_MAX`]):
    /// one capacity check covering every write made through the returned
    /// [`Win`]. When the reservation fits, window writes are branch-free
    /// raw stores into the buffer; otherwise (including `Bytewise` mode)
    /// they land in an internal spill scratch that is replayed through
    /// the checked path when the window drops — so near-capacity
    /// emission behaves exactly like the seed per-byte implementation
    /// (partial bytes may land, the overflow latch is set when storage
    /// runs out, and [`Assembler::end`](crate::Assembler::end) reports
    /// the error).
    ///
    /// A reservation is a *bound*, not a commitment: the cursor advances
    /// only by what is actually written.
    #[inline]
    pub fn window(&mut self, n: usize) -> Win<'_, 'm> {
        debug_assert!(n <= WIN_MAX, "reservation exceeds WIN_MAX");
        let spilled = self.len + n > self.cap;
        let base = if spilled {
            self.spill.as_mut_ptr()
        } else {
            // SAFETY: `len + n <= cap <= mem.len()`, so `base + len` is
            // in-bounds.
            unsafe { self.mem.as_mut_ptr().add(self.len) }
        };
        Win {
            ptr: base,
            base,
            bias: self.len,
            spilled,
            end: n,
            buf: self,
        }
    }

    /// Reserves `n` bytes (filled with `fill`) and returns the offset of
    /// the reserved region. Used to hold space for prologue code whose
    /// contents are only known when generation finishes (paper §5.2).
    pub fn reserve(&mut self, n: usize, fill: u8) -> usize {
        let at = self.len;
        if self.len + n <= self.cap {
            self.mem[self.len..self.len + n].fill(fill);
            self.len += n;
        } else {
            for _ in 0..n {
                self.put_u8(fill);
            }
        }
        at
    }

    /// Pads with `fill` until the cursor is `align`-aligned (power of two).
    pub fn align_to(&mut self, align: usize, fill: u8) {
        debug_assert!(align.is_power_of_two());
        while !self.len.is_multiple_of(align) {
            if self.len == self.mem.len() {
                // Full and still unaligned: latch instead of spinning on
                // a put that can no longer advance the cursor.
                self.overflow = true;
                return;
            }
            self.put_u8(fill);
        }
    }

    /// Overwrites one byte at `at` (must be below the cursor, unless the
    /// buffer has already overflowed — then the cursor froze while
    /// offsets kept advancing, the patch target was never emitted, and
    /// the write is dropped; `end()` reports the overflow).
    #[inline]
    pub fn patch_u8(&mut self, at: usize, b: u8) {
        debug_assert!(at < self.len || self.overflow, "patch past cursor");
        if at < self.len {
            self.mem[at] = b;
        }
    }

    /// Overwrites a little-endian 32-bit value at `at`.
    #[inline]
    pub fn patch_u32(&mut self, at: usize, v: u32) {
        self.patch_slice(at, &v.to_le_bytes());
    }

    /// Overwrites raw bytes at `at` (same overflow tolerance as
    /// [`patch_u8`](Self::patch_u8)).
    pub fn patch_slice(&mut self, at: usize, bytes: &[u8]) {
        let end = at + bytes.len();
        debug_assert!(end <= self.len || self.overflow, "patch past cursor");
        if end <= self.len {
            self.mem[at..end].copy_from_slice(bytes);
        }
    }

    /// Reads back a little-endian 32-bit value (for read-modify-write
    /// patches of already-emitted instructions). After an overflow the
    /// requested word may never have been emitted; reads of such
    /// offsets return 0 rather than panicking (the overflow is latched
    /// and reported by `end()`).
    pub fn read_u32(&self, at: usize) -> u32 {
        match self.mem.get(at..at + 4) {
            Some(s) => {
                let mut b = [0u8; 4];
                b.copy_from_slice(s);
                u32::from_le_bytes(b)
            }
            None => {
                debug_assert!(self.overflow, "read past capacity");
                0
            }
        }
    }

    /// Reads back one byte (same overflow tolerance as
    /// [`read_u32`](Self::read_u32)).
    pub fn read_u8(&self, at: usize) -> u8 {
        match self.mem.get(at) {
            Some(&b) => b,
            None => {
                debug_assert!(self.overflow, "read past capacity");
                0
            }
        }
    }
}

/// A reserved write window over a [`CodeBuffer`] (see
/// [`CodeBuffer::window`]): the capacity check was paid once up front, so
/// every write is a branch-free raw-pointer store advancing a cursor
/// register — no length-field traffic and no mode tests until the window
/// drops and commits. Reservations that didn't fit write into a spill
/// scratch and are replayed through the checked path on drop, which both
/// preserves the seed's exact near-capacity behavior and implements the
/// [`EmitPath::Bytewise`] differential reference mode.
///
/// Dropping a window mid-instruction keeps whatever was written, exactly
/// like the per-byte path.
#[derive(Debug)]
pub struct Win<'b, 'm> {
    buf: &'b mut CodeBuffer<'m>,
    /// Write cursor. Every write is `*ptr = ...; ptr += width`.
    ptr: *mut u8,
    /// Where this window's writes started (buffer cursor or spill start).
    base: *mut u8,
    /// Logical buffer offset at `base`, so [`len`](Self::len) is uniform
    /// across direct and spilled windows.
    bias: usize,
    /// Whether writes land in the spill scratch (replayed on drop).
    spilled: bool,
    /// Reservation size, asserted against in debug builds; the release
    /// fast path's safety argument is the `window()` capacity check plus
    /// the documented `n <= WIN_MAX` bound.
    end: usize,
}

impl<'b, 'm> Win<'b, 'm> {
    /// Bytes written through this window so far.
    #[inline]
    fn written(&self) -> usize {
        // SAFETY: `ptr` is derived from `base` and stays within the same
        // allocation (buffer or spill scratch).
        unsafe { self.ptr.offset_from(self.base) as usize }
    }

    /// Current *logical* buffer offset (for recording fixup positions):
    /// what [`CodeBuffer::len`] will report here once the window commits.
    #[inline]
    pub fn len(&self) -> usize {
        self.bias + self.written()
    }

    /// `true` if the logical cursor is still at offset zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Writes one byte.
    #[inline]
    pub fn u8(&mut self, b: u8) {
        debug_assert!(self.written() < self.end, "write past reservation");
        // SAFETY: the reservation check in `window()` guarantees every
        // cursor position below the reservation bound is in-bounds (in
        // the buffer or the spill scratch).
        unsafe {
            *self.ptr = b;
            self.ptr = self.ptr.add(1);
        }
    }

    /// Writes `N` bytes as one store — the generic *unchecked* twin of
    /// [`CodeBuffer::put_array`].
    #[inline]
    pub fn array<const N: usize>(&mut self, bytes: [u8; N]) {
        debug_assert!(self.written() + N <= self.end, "write past reservation");
        // SAFETY: covered by the reservation (see `u8`); `*mut [u8; N]`
        // has alignment 1 so the unaligned store is fine.
        unsafe {
            self.ptr.cast::<[u8; N]>().write_unaligned(bytes);
            self.ptr = self.ptr.add(N);
        }
    }

    /// Writes the low `n` bytes of a little-endian packed word (byte `k`
    /// of the instruction in bits `8k..8k+8`) as a single 8-byte store,
    /// advancing the cursor by `n`. The full 8 bytes are stored — the
    /// tail past `n` is scratch the next write overwrites — so the
    /// reservation must leave 8 bytes of slack after the cursor. This is
    /// how a variable-length encoder (x86-64) commits a whole
    /// prefix/REX/opcode/modrm head with one store and zero branches.
    #[inline]
    pub fn word(&mut self, word: u64, n: usize) {
        debug_assert!(n <= 8, "packed word is at most 8 bytes");
        debug_assert!(
            self.written() + 8 <= self.end,
            "word needs 8 bytes of slack"
        );
        // SAFETY: the reservation covers 8 bytes from the cursor (debug
        // asserted; callers reserve a full instruction bound).
        unsafe {
            self.ptr
                .cast::<[u8; 8]>()
                .write_unaligned(word.to_le_bytes());
            self.ptr = self.ptr.add(n);
        }
    }
}

impl<'b, 'm> Drop for Win<'b, 'm> {
    /// Commits the window: direct windows just store the new cursor;
    /// spilled windows replay their bytes through the checked per-byte
    /// path (landing what fits, latching overflow past capacity).
    #[inline]
    fn drop(&mut self) {
        let n = self.written();
        if !self.spilled {
            self.buf.len = self.bias + n;
        } else {
            let run: [u8; WIN_MAX] = self.buf.spill;
            self.buf.put_bytes_cold(&run[..n], false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_and_read_back() {
        let mut mem = [0u8; 16];
        let mut b = CodeBuffer::new(&mut mem);
        assert!(b.is_empty());
        b.put_u32(0xdead_beef);
        b.put_u8(0x90);
        assert_eq!(b.len(), 5);
        assert_eq!(b.read_u32(0), 0xdead_beef);
        assert_eq!(b.as_slice()[4], 0x90);
        assert!(!b.overflowed());
    }

    #[test]
    fn overflow_latches_instead_of_panicking() {
        let mut mem = [0u8; 6];
        let mut b = CodeBuffer::new(&mut mem);
        b.put_u32(1);
        b.put_u32(2); // does not fit
        assert!(b.overflowed());
        assert_eq!(b.len(), 4, "partial instruction is dropped whole-slice");
        b.put_u8(7); // still room for a byte? no: slice write already failed
        assert!(b.overflowed());
    }

    #[test]
    fn reserve_and_patch() {
        let mut mem = [0u8; 32];
        let mut b = CodeBuffer::new(&mut mem);
        b.put_u32(0x1111_1111);
        let hole = b.reserve(8, 0);
        b.put_u32(0x2222_2222);
        b.patch_u32(hole, 0xaaaa_aaaa);
        b.patch_u32(hole + 4, 0xbbbb_bbbb);
        assert_eq!(b.read_u32(hole), 0xaaaa_aaaa);
        assert_eq!(b.read_u32(hole + 4), 0xbbbb_bbbb);
        assert_eq!(b.read_u32(hole + 8), 0x2222_2222);
    }

    #[test]
    fn align_pads() {
        let mut mem = [0u8; 32];
        let mut b = CodeBuffer::new(&mut mem);
        b.put_u8(1);
        b.align_to(8, 0x90);
        assert_eq!(b.len(), 8);
        assert_eq!(b.as_slice()[1..8], [0x90; 7]);
        b.align_to(8, 0x90); // already aligned: no-op
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn endianness_is_little() {
        let mut mem = [0u8; 8];
        let mut b = CodeBuffer::new(&mut mem);
        b.put_u32(0x0102_0304);
        assert_eq!(b.as_slice(), &[0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn window_writes_match_checked_path() {
        let mut fast_mem = [0u8; 32];
        let mut slow_mem = [0u8; 32];
        let mut fast = CodeBuffer::new(&mut fast_mem);
        let mut slow = CodeBuffer::with_path(&mut slow_mem, EmitPath::Bytewise);
        for b in [&mut fast, &mut slow] {
            let mut w = b.window(18);
            w.u8(0x48);
            w.u16(0x1234);
            w.u32(0xdead_beef);
            w.u64(0x0102_0304_0506_0708);
            w.array([9, 10, 11]);
            assert_eq!(w.len(), 18);
            drop(w);
        }
        assert_eq!(fast.as_slice(), slow.as_slice());
        assert_eq!(fast.len(), 18);
        assert!(!fast.overflowed() && !slow.overflowed());
    }

    #[test]
    fn window_reservation_is_a_bound_not_a_commitment() {
        let mut mem = [0u8; 32];
        let mut b = CodeBuffer::new(&mut mem);
        {
            let mut w = b.window(16);
            w.u8(0xc3); // only one byte actually written
        }
        assert_eq!(b.len(), 1);
        assert!(!b.overflowed());
    }

    #[test]
    fn window_beyond_capacity_degrades_to_checked_path() {
        let mut mem = [0u8; 6];
        let mut b = CodeBuffer::new(&mut mem);
        b.put_u32(0x1111_1111);
        // Reservation larger than what's left: the window still works,
        // spilling and replaying checked bytes until storage runs out,
        // then latching.
        let mut w = b.window(16);
        w.u8(1);
        w.u8(2);
        w.u8(3); // one more than fits
        assert_eq!(w.len(), 7, "logical offset keeps advancing");
        drop(w);
        assert_eq!(b.len(), 6, "what fit was committed byte-by-byte");
        assert_eq!(b.as_slice()[4..6], [1, 2]);
        assert!(b.overflowed());
    }

    #[test]
    fn window_at_exact_capacity_stays_full_without_overflow() {
        let mut mem = [0u8; 8];
        let mut b = CodeBuffer::new(&mut mem);
        let mut w = b.window(8);
        w.u64(0x0807_0605_0403_0201);
        drop(w);
        assert_eq!(b.len(), 8);
        assert!(!b.overflowed());
        assert_eq!(b.as_slice(), &[1, 2, 3, 4, 5, 6, 7, 8]);
        // The buffer is now exactly full; the next reservation spills
        // and its replay latches the overflow — typed error at `end()`,
        // never a panic.
        let mut w = b.window(1);
        w.u8(9);
        drop(w);
        assert!(b.overflowed());
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn put_word_without_scratch_headroom_lands_per_byte() {
        // 10-byte buffer with 6 bytes used: a 4-byte word fits, but the
        // 8-byte scratch store does not — the append must degrade to the
        // checked per-byte path and land every byte without latching.
        let mut mem = [0u8; 10];
        let mut b = CodeBuffer::new(&mut mem);
        b.put_u32(0);
        b.put_u16(0);
        b.put_word(0x0403_0201, 4);
        assert_eq!(b.len(), 10);
        assert!(!b.overflowed(), "the word fit exactly; no overflow");
        assert_eq!(b.as_slice()[6..], [1, 2, 3, 4]);
    }

    #[test]
    fn put_word_past_capacity_latches_cleanly() {
        let mut mem = [0u8; 6];
        let mut b = CodeBuffer::new(&mut mem);
        b.put_u32(0xaaaa_aaaa);
        b.put_word(0x0403_0201, 4); // two bytes short
        assert!(b.overflowed());
        assert_eq!(b.len(), 6, "per-byte semantics: what fit was kept");
        assert_eq!(b.as_slice()[4..6], [1, 2]);
        // Appends after the latch stay inert — typed error at `end()`,
        // never a panic.
        b.put_word(0xffff_ffff, 4);
        assert!(b.overflowed());
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn put_word_matches_bytewise_path() {
        let mut fast_mem = [0u8; 32];
        let mut slow_mem = [0u8; 32];
        let mut fast = CodeBuffer::new(&mut fast_mem);
        let mut slow = CodeBuffer::with_path(&mut slow_mem, EmitPath::Bytewise);
        for b in [&mut fast, &mut slow] {
            b.put_word(0x90, 1);
            b.put_word(0x0000_1234, 3);
            b.put_word(0x0102_0304_0506_0708, 8);
        }
        assert_eq!(fast.as_slice(), slow.as_slice());
        assert_eq!(fast.len(), 12);
    }

    #[test]
    fn reserve_at_and_past_capacity_keeps_latch_semantics() {
        let mut mem = [0u8; 8];
        let mut b = CodeBuffer::new(&mut mem);
        // Exactly at capacity: bulk fill, no overflow.
        let at = b.reserve(8, 0x90);
        assert_eq!((at, b.len()), (0, 8));
        assert!(!b.overflowed());
        assert_eq!(b.as_slice(), &[0x90; 8]);
        // Past capacity: latches, never panics.
        b.reserve(1, 0);
        assert!(b.overflowed());
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn align_on_full_buffer_latches_instead_of_spinning() {
        let mut mem = [0u8; 6];
        let mut b = CodeBuffer::new(&mut mem);
        b.put_slice(&[1, 2, 3, 4, 5, 6]);
        assert!(!b.overflowed());
        // Full at an unaligned cursor: the pad can never land, so the
        // request must latch and return rather than loop on a dropped put.
        b.align_to(4, 0x90);
        assert!(b.overflowed());
        assert_eq!(b.len(), 6);
    }

    #[test]
    fn bytewise_path_produces_identical_bytes() {
        let mut fast_mem = [0u8; 64];
        let mut slow_mem = [0u8; 64];
        let mut fast = CodeBuffer::new(&mut fast_mem);
        let mut slow = CodeBuffer::with_path(&mut slow_mem, EmitPath::Bytewise);
        for b in [&mut fast, &mut slow] {
            b.put_u8(0x90);
            b.put_u16(0xbeef);
            b.put_u32(0x0102_0304);
            b.put_u64(0x1122_3344_5566_7788);
            b.put_slice(&[1, 2, 3, 4, 5]);
            b.align_to(4, 0x90);
        }
        assert_eq!(fast.as_slice(), slow.as_slice());
    }

    #[test]
    fn bytewise_overflow_is_per_byte() {
        // The reference path writes bytes until full — the seed per-byte
        // behavior — unlike the fast path's whole-array drop.
        let mut mem = [0u8; 6];
        let mut b = CodeBuffer::with_path(&mut mem, EmitPath::Bytewise);
        b.put_u32(0x0403_0201);
        b.put_u32(0x0807_0605);
        assert!(b.overflowed());
        assert_eq!(b.len(), 6, "bytewise mode keeps the bytes that fit");
        assert_eq!(b.as_slice(), &[1, 2, 3, 4, 5, 6]);
    }
}
