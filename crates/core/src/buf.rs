//! The in-place code buffer.
//!
//! VCODE generates machine code *in place*: each instruction is encoded and
//! stored directly at the instruction pointer, into storage the client
//! provided (paper §3, §5.1). [`CodeBuffer`] is that instruction pointer: a
//! borrowed byte region plus a cursor. Other than the emitted instructions
//! themselves, VCODE only ever stores label offsets and unresolved jumps —
//! never a representation proportional to the number of instructions.
//!
//! Emission never panics on exhaustion; the buffer latches an overflow flag
//! that [`Assembler::end`](crate::Assembler::end) reports as an error, so
//! the per-instruction hot path stays a single bounds check.

/// A byte buffer with a cursor, backing in-place code emission.
///
/// The buffer borrows client storage, exactly like the paper's
/// `v_lambda(..., ip)` taking "a pointer to memory where the code will be
/// stored" — for native execution the storage is an executable mapping, for
/// simulated targets an ordinary `Vec<u8>`.
#[derive(Debug)]
pub struct CodeBuffer<'m> {
    mem: &'m mut [u8],
    len: usize,
    overflow: bool,
}

impl<'m> CodeBuffer<'m> {
    /// Wraps client-provided storage.
    pub fn new(mem: &'m mut [u8]) -> CodeBuffer<'m> {
        CodeBuffer {
            mem,
            len: 0,
            overflow: false,
        }
    }

    /// Bytes emitted so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if nothing has been emitted.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total capacity of the client storage.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.mem.len()
    }

    /// `true` once any write has been dropped for lack of space.
    #[inline]
    pub fn overflowed(&self) -> bool {
        self.overflow
    }

    /// The emitted code.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.mem[..self.len]
    }

    /// Appends one byte.
    #[inline]
    pub fn put_u8(&mut self, b: u8) {
        if self.len < self.mem.len() {
            self.mem[self.len] = b;
            self.len += 1;
        } else {
            self.overflow = true;
        }
    }

    /// Appends a little-endian 16-bit value.
    #[inline]
    pub fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian 32-bit value — one RISC instruction word.
    #[inline]
    pub fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian 64-bit value.
    #[inline]
    pub fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends raw bytes.
    #[inline]
    pub fn put_slice(&mut self, bytes: &[u8]) {
        let end = self.len + bytes.len();
        if end <= self.mem.len() {
            self.mem[self.len..end].copy_from_slice(bytes);
            self.len = end;
        } else {
            self.overflow = true;
        }
    }

    /// Reserves `n` bytes (filled with `fill`) and returns the offset of
    /// the reserved region. Used to hold space for prologue code whose
    /// contents are only known when generation finishes (paper §5.2).
    pub fn reserve(&mut self, n: usize, fill: u8) -> usize {
        let at = self.len;
        for _ in 0..n {
            self.put_u8(fill);
        }
        at
    }

    /// Pads with `fill` until the cursor is `align`-aligned (power of two).
    pub fn align_to(&mut self, align: usize, fill: u8) {
        debug_assert!(align.is_power_of_two());
        while !self.len.is_multiple_of(align) {
            self.put_u8(fill);
        }
    }

    /// Overwrites one byte at `at` (must be below the cursor, unless the
    /// buffer has already overflowed — then the cursor froze while
    /// offsets kept advancing, the patch target was never emitted, and
    /// the write is dropped; `end()` reports the overflow).
    #[inline]
    pub fn patch_u8(&mut self, at: usize, b: u8) {
        debug_assert!(at < self.len || self.overflow, "patch past cursor");
        if at < self.len {
            self.mem[at] = b;
        }
    }

    /// Overwrites a little-endian 32-bit value at `at`.
    #[inline]
    pub fn patch_u32(&mut self, at: usize, v: u32) {
        self.patch_slice(at, &v.to_le_bytes());
    }

    /// Overwrites raw bytes at `at` (same overflow tolerance as
    /// [`patch_u8`](Self::patch_u8)).
    pub fn patch_slice(&mut self, at: usize, bytes: &[u8]) {
        let end = at + bytes.len();
        debug_assert!(end <= self.len || self.overflow, "patch past cursor");
        if end <= self.len {
            self.mem[at..end].copy_from_slice(bytes);
        }
    }

    /// Reads back a little-endian 32-bit value (for read-modify-write
    /// patches of already-emitted instructions). After an overflow the
    /// requested word may never have been emitted; reads of such
    /// offsets return 0 rather than panicking (the overflow is latched
    /// and reported by `end()`).
    pub fn read_u32(&self, at: usize) -> u32 {
        match self.mem.get(at..at + 4) {
            Some(s) => {
                let mut b = [0u8; 4];
                b.copy_from_slice(s);
                u32::from_le_bytes(b)
            }
            None => {
                debug_assert!(self.overflow, "read past capacity");
                0
            }
        }
    }

    /// Reads back one byte (same overflow tolerance as
    /// [`read_u32`](Self::read_u32)).
    pub fn read_u8(&self, at: usize) -> u8 {
        match self.mem.get(at) {
            Some(&b) => b,
            None => {
                debug_assert!(self.overflow, "read past capacity");
                0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_and_read_back() {
        let mut mem = [0u8; 16];
        let mut b = CodeBuffer::new(&mut mem);
        assert!(b.is_empty());
        b.put_u32(0xdead_beef);
        b.put_u8(0x90);
        assert_eq!(b.len(), 5);
        assert_eq!(b.read_u32(0), 0xdead_beef);
        assert_eq!(b.as_slice()[4], 0x90);
        assert!(!b.overflowed());
    }

    #[test]
    fn overflow_latches_instead_of_panicking() {
        let mut mem = [0u8; 6];
        let mut b = CodeBuffer::new(&mut mem);
        b.put_u32(1);
        b.put_u32(2); // does not fit
        assert!(b.overflowed());
        assert_eq!(b.len(), 4, "partial instruction is dropped whole-slice");
        b.put_u8(7); // still room for a byte? no: slice write already failed
        assert!(b.overflowed());
    }

    #[test]
    fn reserve_and_patch() {
        let mut mem = [0u8; 32];
        let mut b = CodeBuffer::new(&mut mem);
        b.put_u32(0x1111_1111);
        let hole = b.reserve(8, 0);
        b.put_u32(0x2222_2222);
        b.patch_u32(hole, 0xaaaa_aaaa);
        b.patch_u32(hole + 4, 0xbbbb_bbbb);
        assert_eq!(b.read_u32(hole), 0xaaaa_aaaa);
        assert_eq!(b.read_u32(hole + 4), 0xbbbb_bbbb);
        assert_eq!(b.read_u32(hole + 8), 0x2222_2222);
    }

    #[test]
    fn align_pads() {
        let mut mem = [0u8; 32];
        let mut b = CodeBuffer::new(&mut mem);
        b.put_u8(1);
        b.align_to(8, 0x90);
        assert_eq!(b.len(), 8);
        assert_eq!(b.as_slice()[1..8], [0x90; 7]);
        b.align_to(8, 0x90); // already aligned: no-op
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn endianness_is_little() {
        let mut mem = [0u8; 8];
        let mut b = CodeBuffer::new(&mut mem);
        b.put_u32(0x0102_0304);
        assert_eq!(b.as_slice(), &[0x04, 0x03, 0x02, 0x01]);
    }
}
