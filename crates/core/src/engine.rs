//! Runtime-retargetable engine layer: record → compile → execute.
//!
//! The paper's clients pick a target at *compile* time by monomorphizing
//! [`Assembler<T>`](crate::Assembler) — the fastest path, and still the
//! primary one. This module adds the complementary *runtime* surface a
//! serving system needs (ROADMAP north star: one binary, backends picked
//! per request):
//!
//! - [`Program`] — a small recorded VCODE stream over virtual registers.
//!   Recording is the one deviation from the paper's "no IR" rule, and it
//!   is deliberate: a program recorded once can be compiled onto *any*
//!   registered backend, hashed for the [`LambdaCache`](crate::cache::
//!   LambdaCache), and replayed through the ordinary zero-check emission
//!   path ([`replay`]) at full speed.
//! - [`Backend`] — an object-safe adapter wrapping one monomorphized
//!   `Assembler<T>` path behind a uniform `compile(&Program)` surface.
//!   The four backend crates each export an implementation
//!   (`vcode_mips::MipsBackend`, ..., `vcode_x64::X64Backend`).
//! - [`Lambda`] — finished, executable code behind a uniform `call`
//!   surface: native code calls straight in; simulated-ISA code routes
//!   through a process-wide [`SimExecutor`] installed by `vcode-sim`.
//! - [`Engine`] — a registry of backends selectable by [`TargetId`] or
//!   name at runtime, fronted by a sharded, content-addressed
//!   [`LambdaCache`](crate::cache::LambdaCache) so repeated compiles of
//!   the same stream cost one hash + one shard lookup.
//!
//! ```
//! use vcode::engine::{Program, replay};
//! use vcode::fake::FakeTarget;
//!
//! let mut p = Program::new(1)?;            // fn(i32) -> i32
//! p.bin_imm(vcode::BinOp::Add, 0, 0, 1);   // v0 = v0 + 1
//! p.ret(0);
//! let mut mem = vec![0u8; 4096];
//! let fin = replay::<FakeTarget>(&p, &mut mem)?;   // ordinary emission
//! assert!(fin.len > 0);
//! # Ok::<(), vcode::engine::EngineError>(())
//! ```

use crate::cache::{CacheError, CacheKey, CacheStats, LambdaCache};
use crate::op::{BinOp, Cond, UnOp};
use crate::service::{CompileService, ServiceConfig, Submit};
use crate::target::{Finished, Leaf, Target};
use crate::tier2::TierConfig;
use crate::ty::{Sig, Ty};
use crate::{obs, Assembler, Error, Label, Reg, RegClass};
use std::fmt;
// Tiering state (the heat counter and the tier-2/native publish
// latches) synchronizes via the `vsync` facade so `crates/mcheck` can
// explore upgrade races; the executor registry below stays on
// `std::sync::RwLock` (const-initialized static, never touched by model
// programs).
use crate::vsync::{Arc, AtomicU64, OnceLock, Ordering, Weak};
use std::sync::RwLock;
use std::time::Duration;

/// The largest argument count a [`Program`] may declare: the smallest
/// per-target integer-argument limit in the workspace (MIPS `$a0`–`$a3`).
pub const MAX_PROGRAM_ARGS: usize = 4;

/// Simulator fuel for one [`Lambda::call`] on a simulated backend.
const SIM_FUEL: u64 = 50_000_000;

/// A backend selectable at runtime.
///
/// The discriminants are stable: they index executor slots and salt
/// cache keys, so code compiled for one target can never alias another's
/// cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TargetId {
    /// MIPS-I (the paper's primary platform), executed on `vcode-sim`.
    Mips,
    /// SPARC V8, executed on `vcode-sim`.
    Sparc,
    /// Alpha, executed on `vcode-sim`.
    Alpha,
    /// x86-64, executed natively.
    X64,
}

impl TargetId {
    /// All targets, in stable index order.
    pub const ALL: [TargetId; 4] = [
        TargetId::Mips,
        TargetId::Sparc,
        TargetId::Alpha,
        TargetId::X64,
    ];

    /// Stable small index (cache-key salt, executor-slot index).
    pub fn index(self) -> usize {
        match self {
            TargetId::Mips => 0,
            TargetId::Sparc => 1,
            TargetId::Alpha => 2,
            TargetId::X64 => 3,
        }
    }

    /// The backend's registry name (matches `Target::NAME`).
    pub fn name(self) -> &'static str {
        match self {
            TargetId::Mips => "mips",
            TargetId::Sparc => "sparc",
            TargetId::Alpha => "alpha",
            TargetId::X64 => "x64",
        }
    }

    /// Parses a registry name (`"mips"`, `"sparc"`, `"alpha"`, `"x64"`).
    pub fn from_name(name: &str) -> Option<TargetId> {
        TargetId::ALL.into_iter().find(|t| t.name() == name)
    }
}

impl fmt::Display for TargetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error from the engine layer. Every failure mode is typed — the cache
/// and registry never panic on client mistakes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum EngineError {
    /// No backend registered under this id.
    UnregisteredBackend(TargetId),
    /// No backend known under this name.
    UnknownBackend(String),
    /// Code generation failed (typed vcode error).
    Codegen(Error),
    /// The program asked for more virtual registers than the target's
    /// allocator could provide.
    TooManyTemps {
        /// The virtual register that could not be mapped.
        vreg: u8,
    },
    /// The program declared more arguments than [`MAX_PROGRAM_ARGS`].
    TooManyArgs {
        /// Declared argument count.
        requested: usize,
    },
    /// `call` was given the wrong number of arguments.
    BadArgs {
        /// Arguments the lambda was compiled for.
        expected: usize,
        /// Arguments the caller supplied.
        got: usize,
    },
    /// A simulated-ISA lambda was called but no [`SimExecutor`] is
    /// installed for its target (see `vcode_sim::engine::install`).
    NoExecutor(TargetId),
    /// Executable memory or simulator execution failed.
    Exec(String),
    /// A racing build held the key's `Building` slot past the cache's
    /// stall timeout without publishing — the builder thread most
    /// likely died without unwinding. The slot has been vacated; an
    /// immediate retry will claim the key and compile.
    BuildStalled {
        /// How long the caller waited before giving up.
        waited: Duration,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnregisteredBackend(t) => write!(f, "backend {t} is not registered"),
            EngineError::UnknownBackend(n) => write!(f, "unknown backend name {n:?}"),
            EngineError::Codegen(e) => write!(f, "code generation failed: {e}"),
            EngineError::TooManyTemps { vreg } => {
                write!(f, "virtual register v{vreg} exhausted the allocator")
            }
            EngineError::TooManyArgs { requested } => {
                write!(f, "{requested} arguments exceed the portable limit")
            }
            EngineError::BadArgs { expected, got } => {
                write!(f, "lambda takes {expected} arguments, got {got}")
            }
            EngineError::NoExecutor(t) => write!(f, "no executor installed for target {t}"),
            EngineError::Exec(m) => write!(f, "execution failed: {m}"),
            EngineError::BuildStalled { waited } => {
                write!(
                    f,
                    "in-flight build stalled (waited {waited:?}); slot vacated"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<Error> for EngineError {
    fn from(e: Error) -> EngineError {
        EngineError::Codegen(e)
    }
}

// ---------------------------------------------------------------------------
// The recorded program
// ---------------------------------------------------------------------------

/// One recorded VCODE instruction over virtual registers (see
/// [`Program`]). All operands are `i`-typed — the word-portable subset
/// every backend implements identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum POp {
    /// `v[dst] = imm`.
    Set {
        /// Destination virtual register.
        dst: u8,
        /// Constant.
        imm: i32,
    },
    /// `v[dst] = v[a] op v[b]`.
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination virtual register.
        dst: u8,
        /// Left operand.
        a: u8,
        /// Right operand.
        b: u8,
    },
    /// `v[dst] = v[a] op imm`.
    BinImm {
        /// Operation.
        op: BinOp,
        /// Destination virtual register.
        dst: u8,
        /// Left operand.
        a: u8,
        /// Immediate right operand.
        imm: i32,
    },
    /// `v[dst] = op v[a]`.
    Un {
        /// Operation.
        op: UnOp,
        /// Destination virtual register.
        dst: u8,
        /// Operand.
        a: u8,
    },
    /// Binds label `l` here.
    Label {
        /// Label index (from [`Program::genlabel`]).
        l: u16,
    },
    /// `if v[a] cond v[b] goto l`.
    Br {
        /// Comparison.
        cond: Cond,
        /// Left operand.
        a: u8,
        /// Right operand.
        b: u8,
        /// Branch target.
        l: u16,
    },
    /// `if v[a] cond imm goto l`.
    BrImm {
        /// Comparison.
        cond: Cond,
        /// Left operand.
        a: u8,
        /// Immediate right operand.
        imm: i32,
        /// Branch target.
        l: u16,
    },
    /// `goto l`.
    Jmp {
        /// Jump target.
        l: u16,
    },
    /// `return v[src]`.
    Ret {
        /// Returned virtual register.
        src: u8,
    },
}

/// A recorded `fn(i32, ...) -> i32` VCODE stream over virtual registers.
///
/// Virtual registers `0..args` are the incoming arguments; higher
/// indices are temporaries allocated from the target's register file at
/// replay time. The serialized form ([`encode`](Self::encode)) is the
/// content-addressed identity of the program: [`stream_hash`](Self::
/// stream_hash) over it keys the lambda cache.
pub struct Program {
    args: usize,
    labels: u16,
    ops: Vec<POp>,
    /// Memoized (serialized form, FNV-1a hash): computing the cache key
    /// must not cost O(program) on every warm lookup. Invalidated by
    /// every mutator; excluded from equality and cloning.
    encoded: OnceLock<(Arc<[u8]>, u64)>,
}

impl fmt::Debug for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Program")
            .field("args", &self.args)
            .field("labels", &self.labels)
            .field("ops", &self.ops)
            .finish()
    }
}

impl Clone for Program {
    fn clone(&self) -> Program {
        Program {
            args: self.args,
            labels: self.labels,
            ops: self.ops.clone(),
            encoded: OnceLock::new(),
        }
    }
}

impl PartialEq for Program {
    fn eq(&self, other: &Program) -> bool {
        self.args == other.args && self.labels == other.labels && self.ops == other.ops
    }
}

impl Eq for Program {}

impl Program {
    /// Starts an empty program taking `args` `i32` arguments.
    ///
    /// # Errors
    ///
    /// [`EngineError::TooManyArgs`] above [`MAX_PROGRAM_ARGS`].
    pub fn new(args: usize) -> Result<Program, EngineError> {
        if args > MAX_PROGRAM_ARGS {
            return Err(EngineError::TooManyArgs { requested: args });
        }
        Ok(Program {
            args,
            labels: 0,
            ops: Vec::new(),
            encoded: OnceLock::new(),
        })
    }

    /// Declared argument count.
    pub fn args(&self) -> usize {
        self.args
    }

    /// Recorded instruction count.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The recorded stream.
    pub fn ops(&self) -> &[POp] {
        &self.ops
    }

    /// Number of labels allocated so far (label indices are dense:
    /// `0..labels()`).
    pub fn labels(&self) -> u16 {
        self.labels
    }

    /// Allocates a fresh label index.
    pub fn genlabel(&mut self) -> u16 {
        self.encoded.take();
        let l = self.labels;
        self.labels += 1;
        l
    }

    /// Appends one op, invalidating the memoized serialization.
    fn push(&mut self, op: POp) {
        self.encoded.take();
        self.ops.push(op);
    }

    /// Records `v[dst] = imm`.
    pub fn set(&mut self, dst: u8, imm: i32) {
        self.push(POp::Set { dst, imm });
    }

    /// Records `v[dst] = v[a] op v[b]`.
    pub fn bin(&mut self, op: BinOp, dst: u8, a: u8, b: u8) {
        self.push(POp::Bin { op, dst, a, b });
    }

    /// Records `v[dst] = v[a] op imm`.
    pub fn bin_imm(&mut self, op: BinOp, dst: u8, a: u8, imm: i32) {
        self.push(POp::BinImm { op, dst, a, imm });
    }

    /// Records `v[dst] = op v[a]`.
    pub fn un(&mut self, op: UnOp, dst: u8, a: u8) {
        self.push(POp::Un { op, dst, a });
    }

    /// Binds label `l` at the current position.
    pub fn label(&mut self, l: u16) {
        self.push(POp::Label { l });
    }

    /// Records `if v[a] cond v[b] goto l`.
    pub fn br(&mut self, cond: Cond, a: u8, b: u8, l: u16) {
        self.push(POp::Br { cond, a, b, l });
    }

    /// Records `if v[a] cond imm goto l`.
    pub fn br_imm(&mut self, cond: Cond, a: u8, imm: i32, l: u16) {
        self.push(POp::BrImm { cond, a, imm, l });
    }

    /// Records `goto l`.
    pub fn jmp(&mut self, l: u16) {
        self.push(POp::Jmp { l });
    }

    /// Records `return v[src]`.
    pub fn ret(&mut self, src: u8) {
        self.push(POp::Ret { src });
    }

    /// Serializes the stream to a deterministic byte form — the
    /// program's content-addressed identity.
    pub fn encode(&self) -> Vec<u8> {
        fn op_tag(op: BinOp) -> u8 {
            match op {
                BinOp::Add => 0,
                BinOp::Sub => 1,
                BinOp::Mul => 2,
                BinOp::Div => 3,
                BinOp::Mod => 4,
                BinOp::And => 5,
                BinOp::Or => 6,
                BinOp::Xor => 7,
                BinOp::Lsh => 8,
                BinOp::Rsh => 9,
            }
        }
        fn un_tag(op: UnOp) -> u8 {
            match op {
                UnOp::Com => 0,
                UnOp::Not => 1,
                UnOp::Mov => 2,
                UnOp::Neg => 3,
            }
        }
        fn cond_tag(c: Cond) -> u8 {
            match c {
                Cond::Lt => 0,
                Cond::Le => 1,
                Cond::Gt => 2,
                Cond::Ge => 3,
                Cond::Eq => 4,
                Cond::Ne => 5,
            }
        }
        let mut out = Vec::with_capacity(self.ops.len() * 8 + 4);
        out.push(self.args as u8);
        out.extend_from_slice(&self.labels.to_le_bytes());
        for op in &self.ops {
            match *op {
                POp::Set { dst, imm } => {
                    out.push(0);
                    out.push(dst);
                    out.extend_from_slice(&imm.to_le_bytes());
                }
                POp::Bin { op, dst, a, b } => {
                    out.extend_from_slice(&[1, op_tag(op), dst, a, b]);
                }
                POp::BinImm { op, dst, a, imm } => {
                    out.extend_from_slice(&[2, op_tag(op), dst, a]);
                    out.extend_from_slice(&imm.to_le_bytes());
                }
                POp::Un { op, dst, a } => {
                    out.extend_from_slice(&[3, un_tag(op), dst, a]);
                }
                POp::Label { l } => {
                    out.push(4);
                    out.extend_from_slice(&l.to_le_bytes());
                }
                POp::Br { cond, a, b, l } => {
                    out.extend_from_slice(&[5, cond_tag(cond), a, b]);
                    out.extend_from_slice(&l.to_le_bytes());
                }
                POp::BrImm { cond, a, imm, l } => {
                    out.extend_from_slice(&[6, cond_tag(cond), a]);
                    out.extend_from_slice(&imm.to_le_bytes());
                    out.extend_from_slice(&l.to_le_bytes());
                }
                POp::Jmp { l } => {
                    out.push(7);
                    out.extend_from_slice(&l.to_le_bytes());
                }
                POp::Ret { src } => {
                    out.extend_from_slice(&[8, src]);
                }
            }
        }
        out
    }

    /// Reconstructs a program from its [`encode`](Self::encode) stream —
    /// the persistent cache's differential IR check: an artifact's
    /// embedded key bytes must decode, and re-encode to the same bytes,
    /// before its native code is trusted.
    ///
    /// # Errors
    ///
    /// [`EngineError::TooManyArgs`] when the declared arity exceeds
    /// [`MAX_PROGRAM_ARGS`]; [`EngineError::Exec`] for any structurally
    /// invalid stream (unknown tag, truncated operand, bad sub-tag).
    pub fn decode(bytes: &[u8]) -> Result<Program, EngineError> {
        fn bin_of(tag: u8) -> Option<BinOp> {
            Some(match tag {
                0 => BinOp::Add,
                1 => BinOp::Sub,
                2 => BinOp::Mul,
                3 => BinOp::Div,
                4 => BinOp::Mod,
                5 => BinOp::And,
                6 => BinOp::Or,
                7 => BinOp::Xor,
                8 => BinOp::Lsh,
                9 => BinOp::Rsh,
                _ => return None,
            })
        }
        fn un_of(tag: u8) -> Option<UnOp> {
            Some(match tag {
                0 => UnOp::Com,
                1 => UnOp::Not,
                2 => UnOp::Mov,
                3 => UnOp::Neg,
                _ => return None,
            })
        }
        fn cond_of(tag: u8) -> Option<Cond> {
            Some(match tag {
                0 => Cond::Lt,
                1 => Cond::Le,
                2 => Cond::Gt,
                3 => Cond::Ge,
                4 => Cond::Eq,
                5 => Cond::Ne,
                _ => return None,
            })
        }
        let malformed = |what: &str, at: usize| {
            EngineError::Exec(format!("program decode: {what} at offset {at}"))
        };
        struct Rd<'a> {
            b: &'a [u8],
            at: usize,
        }
        impl Rd<'_> {
            fn u8(&mut self) -> Option<u8> {
                let v = *self.b.get(self.at)?;
                self.at += 1;
                Some(v)
            }
            fn u16(&mut self) -> Option<u16> {
                let v = u16::from_le_bytes([*self.b.get(self.at)?, *self.b.get(self.at + 1)?]);
                self.at += 2;
                Some(v)
            }
            fn i32(&mut self) -> Option<i32> {
                let v = i32::from_le_bytes([
                    *self.b.get(self.at)?,
                    *self.b.get(self.at + 1)?,
                    *self.b.get(self.at + 2)?,
                    *self.b.get(self.at + 3)?,
                ]);
                self.at += 4;
                Some(v)
            }
        }
        let mut r = Rd { b: bytes, at: 0 };
        let args = r.u8().ok_or_else(|| malformed("missing arg count", 0))? as usize;
        if args > MAX_PROGRAM_ARGS {
            return Err(EngineError::TooManyArgs { requested: args });
        }
        let labels = r.u16().ok_or_else(|| malformed("missing label count", 1))?;
        let mut ops = Vec::new();
        while r.at < bytes.len() {
            let at = r.at;
            let tag = r.u8().expect("bounds checked by loop condition");
            let op = match tag {
                0 => {
                    let dst = r.u8().ok_or_else(|| malformed("truncated Set", at))?;
                    let imm = r.i32().ok_or_else(|| malformed("truncated Set", at))?;
                    POp::Set { dst, imm }
                }
                1 => {
                    let t = r.u8().ok_or_else(|| malformed("truncated Bin", at))?;
                    let op = bin_of(t).ok_or_else(|| malformed("bad BinOp tag", at))?;
                    let dst = r.u8().ok_or_else(|| malformed("truncated Bin", at))?;
                    let a = r.u8().ok_or_else(|| malformed("truncated Bin", at))?;
                    let b = r.u8().ok_or_else(|| malformed("truncated Bin", at))?;
                    POp::Bin { op, dst, a, b }
                }
                2 => {
                    let t = r.u8().ok_or_else(|| malformed("truncated BinImm", at))?;
                    let op = bin_of(t).ok_or_else(|| malformed("bad BinOp tag", at))?;
                    let dst = r.u8().ok_or_else(|| malformed("truncated BinImm", at))?;
                    let a = r.u8().ok_or_else(|| malformed("truncated BinImm", at))?;
                    let imm = r.i32().ok_or_else(|| malformed("truncated BinImm", at))?;
                    POp::BinImm { op, dst, a, imm }
                }
                3 => {
                    let t = r.u8().ok_or_else(|| malformed("truncated Un", at))?;
                    let op = un_of(t).ok_or_else(|| malformed("bad UnOp tag", at))?;
                    let dst = r.u8().ok_or_else(|| malformed("truncated Un", at))?;
                    let a = r.u8().ok_or_else(|| malformed("truncated Un", at))?;
                    POp::Un { op, dst, a }
                }
                4 => {
                    let l = r.u16().ok_or_else(|| malformed("truncated Label", at))?;
                    POp::Label { l }
                }
                5 => {
                    let t = r.u8().ok_or_else(|| malformed("truncated Br", at))?;
                    let cond = cond_of(t).ok_or_else(|| malformed("bad Cond tag", at))?;
                    let a = r.u8().ok_or_else(|| malformed("truncated Br", at))?;
                    let b = r.u8().ok_or_else(|| malformed("truncated Br", at))?;
                    let l = r.u16().ok_or_else(|| malformed("truncated Br", at))?;
                    POp::Br { cond, a, b, l }
                }
                6 => {
                    let t = r.u8().ok_or_else(|| malformed("truncated BrImm", at))?;
                    let cond = cond_of(t).ok_or_else(|| malformed("bad Cond tag", at))?;
                    let a = r.u8().ok_or_else(|| malformed("truncated BrImm", at))?;
                    let imm = r.i32().ok_or_else(|| malformed("truncated BrImm", at))?;
                    let l = r.u16().ok_or_else(|| malformed("truncated BrImm", at))?;
                    POp::BrImm { cond, a, imm, l }
                }
                7 => {
                    let l = r.u16().ok_or_else(|| malformed("truncated Jmp", at))?;
                    POp::Jmp { l }
                }
                8 => {
                    let src = r.u8().ok_or_else(|| malformed("truncated Ret", at))?;
                    POp::Ret { src }
                }
                _ => return Err(malformed("unknown op tag", at)),
            };
            ops.push(op);
        }
        Ok(Program {
            args,
            labels,
            ops,
            encoded: OnceLock::new(),
        })
    }

    /// The memoized serialized form and its FNV-1a hash. First call
    /// serializes; subsequent calls (until the next mutation) are O(1) —
    /// this is what keeps warm cache lookups free of emission-scale work.
    pub fn encoded(&self) -> &(Arc<[u8]>, u64) {
        self.encoded.get_or_init(|| {
            let bytes: Arc<[u8]> = self.encode().into();
            let hash = fnv1a(&bytes);
            (bytes, hash)
        })
    }

    /// FNV-1a 64 hash of [`encode`](Self::encode) — the "vcode-stream
    /// hash" that (with the target id) keys the lambda cache. Memoized.
    pub fn stream_hash(&self) -> u64 {
        self.encoded().1
    }

    /// A generous code-buffer size for replaying this program on any
    /// workspace target (worst case: every instruction synthesizes a
    /// large immediate, plus prologue/epilogue save areas).
    pub fn code_capacity(&self) -> usize {
        (self.ops.len() * 32 + 512).max(4096)
    }

    /// The highest virtual-register index the stream touches.
    fn max_vreg(&self) -> usize {
        let mut max = self.args.saturating_sub(1);
        for op in &self.ops {
            let m = match *op {
                POp::Set { dst, .. } => dst,
                POp::Bin { dst, a, b, .. } => dst.max(a).max(b),
                POp::BinImm { dst, a, .. } => dst.max(a),
                POp::Un { dst, a, .. } => dst.max(a),
                POp::Br { a, b, .. } => a.max(b),
                POp::BrImm { a, .. } => a,
                POp::Ret { src } => src,
                POp::Label { .. } | POp::Jmp { .. } => 0,
            };
            max = max.max(usize::from(m));
        }
        max
    }

    /// Directly evaluates the recorded stream — the engine's degraded
    /// tier. While (or instead of) building native code, a
    /// [`DegradedLambda`] serves calls through this evaluator; its
    /// arithmetic is bit-for-bit the word-portable `i32` semantics every
    /// backend emits (wrapping two's complement, shift counts masked to
    /// 5 bits, arithmetic right shift), so an answer served degraded
    /// equals the answer the native code gives later.
    ///
    /// `fuel` bounds executed instructions: a looping program returns a
    /// typed error instead of wedging the request thread.
    ///
    /// # Errors
    ///
    /// [`EngineError::BadArgs`] on arity mismatch; [`EngineError::Exec`]
    /// on division by zero, jumps to unbound labels, running off the end
    /// of the stream, and fuel exhaustion.
    pub fn interpret(&self, args: &[i32], fuel: u64) -> Result<i64, EngineError> {
        if args.len() != self.args {
            return Err(EngineError::BadArgs {
                expected: self.args,
                got: args.len(),
            });
        }
        let mut regs = vec![0i32; self.max_vreg() + 1];
        regs[..args.len()].copy_from_slice(args);
        // Bind every label once up front: branches may jump backward.
        let mut bound: Vec<Option<usize>> = vec![None; usize::from(self.labels)];
        for (pc, op) in self.ops.iter().enumerate() {
            if let POp::Label { l } = *op {
                let idx = usize::from(l);
                if bound.len() <= idx {
                    bound.resize(idx + 1, None);
                }
                bound[idx] = Some(pc);
            }
        }
        let jump = |l: u16| -> Result<usize, EngineError> {
            bound
                .get(usize::from(l))
                .copied()
                .flatten()
                .ok_or_else(|| EngineError::Exec(format!("jump to unbound label L{l}")))
        };
        let bin = |op: BinOp, a: i32, b: i32| -> Result<i32, EngineError> {
            Ok(match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div if b == 0 => {
                    return Err(EngineError::Exec("division by zero".to_string()))
                }
                BinOp::Div => a.wrapping_div(b),
                BinOp::Mod if b == 0 => {
                    return Err(EngineError::Exec("remainder by zero".to_string()))
                }
                BinOp::Mod => a.wrapping_rem(b),
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Lsh => a.wrapping_shl(b as u32),
                BinOp::Rsh => a.wrapping_shr(b as u32),
            })
        };
        let cmp = |c: Cond, a: i32, b: i32| -> bool {
            match c {
                Cond::Lt => a < b,
                Cond::Le => a <= b,
                Cond::Gt => a > b,
                Cond::Ge => a >= b,
                Cond::Eq => a == b,
                Cond::Ne => a != b,
            }
        };
        let mut pc = 0usize;
        let mut fuel = fuel;
        while pc < self.ops.len() {
            if fuel == 0 {
                return Err(EngineError::Exec("interpreter fuel exhausted".to_string()));
            }
            fuel -= 1;
            match self.ops[pc] {
                POp::Set { dst, imm } => regs[usize::from(dst)] = imm,
                POp::Bin { op, dst, a, b } => {
                    regs[usize::from(dst)] = bin(op, regs[usize::from(a)], regs[usize::from(b)])?;
                }
                POp::BinImm { op, dst, a, imm } => {
                    regs[usize::from(dst)] = bin(op, regs[usize::from(a)], imm)?;
                }
                POp::Un { op, dst, a } => {
                    let x = regs[usize::from(a)];
                    regs[usize::from(dst)] = match op {
                        UnOp::Com => !x,
                        UnOp::Not => i32::from(x == 0),
                        UnOp::Mov => x,
                        UnOp::Neg => x.wrapping_neg(),
                    };
                }
                POp::Label { .. } => {}
                POp::Br { cond, a, b, l } => {
                    if cmp(cond, regs[usize::from(a)], regs[usize::from(b)]) {
                        pc = jump(l)?;
                        continue;
                    }
                }
                POp::BrImm { cond, a, imm, l } => {
                    if cmp(cond, regs[usize::from(a)], imm) {
                        pc = jump(l)?;
                        continue;
                    }
                }
                POp::Jmp { l } => {
                    pc = jump(l)?;
                    continue;
                }
                POp::Ret { src } => return Ok(i64::from(regs[usize::from(src)])),
            }
            pc += 1;
        }
        Err(EngineError::Exec(
            "program ran off the end without ret".to_string(),
        ))
    }
}

/// FNV-1a 64-bit hash (no external dependencies; stable across runs).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Replays a recorded [`Program`] through the ordinary (zero-check)
/// emission path of `Assembler<T>` into `mem`.
///
/// This is the monomorphized half of every [`Backend`] adapter: the
/// object-safe surface dispatches here once per compile, and from then
/// on emission is the same code the direct clients use — the cached
/// path adds nothing to the per-instruction cost.
///
/// # Errors
///
/// Typed [`EngineError`]: codegen failures ([`Error`]) and virtual
/// registers the target's allocator cannot supply.
pub fn replay<T: Target>(prog: &Program, mem: &mut [u8]) -> Result<Finished, EngineError> {
    let sig = Sig::new(vec![Ty::I; prog.args], Ty::I);
    let mut a = Assembler::<T>::lambda_sig(mem, sig, Leaf::Yes)?;
    let mut vregs: Vec<Reg> = a.args().to_vec();
    let mut labels: Vec<Label> = (0..prog.labels).map(|_| a.genlabel()).collect();
    // Labels may also be referenced without pre-allocation in hand-built
    // programs; genlabel above covers every declared index.
    fn vreg<T: Target>(
        a: &mut Assembler<'_, T>,
        vregs: &mut Vec<Reg>,
        v: u8,
    ) -> Result<Reg, EngineError> {
        while vregs.len() <= usize::from(v) {
            match a.getreg(RegClass::Temp) {
                Some(r) => vregs.push(r),
                None => return Err(EngineError::TooManyTemps { vreg: v }),
            }
        }
        Ok(vregs[usize::from(v)])
    }
    fn lab<T: Target>(a: &mut Assembler<'_, T>, labels: &mut Vec<Label>, l: u16) -> Label {
        while labels.len() <= usize::from(l) {
            let fresh = a.genlabel();
            labels.push(fresh);
        }
        labels[usize::from(l)]
    }
    for op in &prog.ops {
        match *op {
            POp::Set { dst, imm } => {
                let d = vreg(&mut a, &mut vregs, dst)?;
                a.seti(d, imm);
            }
            POp::Bin { op, dst, a: x, b } => {
                let (rx, rb) = (vreg(&mut a, &mut vregs, x)?, vreg(&mut a, &mut vregs, b)?);
                let d = vreg(&mut a, &mut vregs, dst)?;
                match op {
                    BinOp::Add => a.addi(d, rx, rb),
                    BinOp::Sub => a.subi(d, rx, rb),
                    BinOp::Mul => a.muli(d, rx, rb),
                    BinOp::Div => a.divi(d, rx, rb),
                    BinOp::Mod => a.modi(d, rx, rb),
                    BinOp::And => a.andi(d, rx, rb),
                    BinOp::Or => a.ori(d, rx, rb),
                    BinOp::Xor => a.xori(d, rx, rb),
                    BinOp::Lsh => a.lshi(d, rx, rb),
                    BinOp::Rsh => a.rshi(d, rx, rb),
                }
            }
            POp::BinImm { op, dst, a: x, imm } => {
                let rx = vreg(&mut a, &mut vregs, x)?;
                let d = vreg(&mut a, &mut vregs, dst)?;
                let imm = i64::from(imm);
                match op {
                    BinOp::Add => a.addii(d, rx, imm),
                    BinOp::Sub => a.subii(d, rx, imm),
                    BinOp::Mul => a.mulii(d, rx, imm),
                    BinOp::Div => a.divii(d, rx, imm),
                    BinOp::Mod => a.modii(d, rx, imm),
                    BinOp::And => a.andii(d, rx, imm),
                    BinOp::Or => a.orii(d, rx, imm),
                    BinOp::Xor => a.xorii(d, rx, imm),
                    BinOp::Lsh => a.lshii(d, rx, imm),
                    BinOp::Rsh => a.rshii(d, rx, imm),
                }
            }
            POp::Un { op, dst, a: x } => {
                let rx = vreg(&mut a, &mut vregs, x)?;
                let d = vreg(&mut a, &mut vregs, dst)?;
                match op {
                    UnOp::Com => a.comi(d, rx),
                    UnOp::Not => a.noti(d, rx),
                    UnOp::Mov => a.movi(d, rx),
                    UnOp::Neg => a.negi(d, rx),
                }
            }
            POp::Label { l } => {
                let lbl = lab(&mut a, &mut labels, l);
                a.label(lbl);
            }
            POp::Br { cond, a: x, b, l } => {
                let (rx, rb) = (vreg(&mut a, &mut vregs, x)?, vreg(&mut a, &mut vregs, b)?);
                let lbl = lab(&mut a, &mut labels, l);
                match cond {
                    Cond::Lt => a.blti(rx, rb, lbl),
                    Cond::Le => a.blei(rx, rb, lbl),
                    Cond::Gt => a.bgti(rx, rb, lbl),
                    Cond::Ge => a.bgei(rx, rb, lbl),
                    Cond::Eq => a.beqi(rx, rb, lbl),
                    Cond::Ne => a.bnei(rx, rb, lbl),
                }
            }
            POp::BrImm { cond, a: x, imm, l } => {
                let rx = vreg(&mut a, &mut vregs, x)?;
                let lbl = lab(&mut a, &mut labels, l);
                let imm = i64::from(imm);
                match cond {
                    Cond::Lt => a.bltii(rx, imm, lbl),
                    Cond::Le => a.bleii(rx, imm, lbl),
                    Cond::Gt => a.bgtii(rx, imm, lbl),
                    Cond::Ge => a.bgeii(rx, imm, lbl),
                    Cond::Eq => a.beqii(rx, imm, lbl),
                    Cond::Ne => a.bneii(rx, imm, lbl),
                }
            }
            POp::Jmp { l } => {
                let lbl = lab(&mut a, &mut labels, l);
                a.jmp(lbl);
            }
            POp::Ret { src } => {
                let r = vreg(&mut a, &mut vregs, src)?;
                a.reti(r);
            }
        }
    }
    a.end().map_err(EngineError::Codegen)
}

// ---------------------------------------------------------------------------
// Lambdas and backends
// ---------------------------------------------------------------------------

/// Finished, executable code behind a uniform call surface. Lambdas are
/// shared (`Arc`) between the cache and all callers; the code they own
/// stays alive — and out of the executable-memory pool — for exactly as
/// long as any clone exists.
pub trait Lambda: Send + Sync + fmt::Debug {
    /// The backend that produced this code.
    fn target(&self) -> TargetId;
    /// Machine-code bytes.
    fn code_len(&self) -> usize;
    /// VCODE instructions replayed to produce the code.
    fn insns(&self) -> u64;
    /// Runs the code. The result is the program's `i32` return value,
    /// sign-extended.
    ///
    /// # Errors
    ///
    /// [`EngineError::BadArgs`] on arity mismatch; simulated targets
    /// also surface executor absence and runtime traps.
    fn call(&self, args: &[i32]) -> Result<i64, EngineError>;

    /// Downcast hook for the tiering wrapper (see [`TieredLambda`]);
    /// plain lambdas return `None`.
    fn as_tiered(&self) -> Option<&TieredLambda> {
        None
    }

    /// The `(args, code bytes)` image the persistent cache serializes,
    /// or `None` when this lambda cannot leave the process (degraded
    /// interpreter lambdas, position-dependent code). The bytes must be
    /// exactly what [`Backend::adopt`] re-materializes from.
    fn persist_image(&self) -> Option<(usize, Vec<u8>)> {
        None
    }
}

/// A compiled program for a simulated ISA: raw code bytes plus the
/// metadata needed to run them through the installed [`SimExecutor`].
///
/// The three RISC backend crates produce these (via the
/// [`code_backend!`](crate::code_backend) adapter macro); `vcode-sim`
/// installs the executor that gives them a `call` path.
#[derive(Debug, Clone)]
pub struct CodeImage {
    target: TargetId,
    args: usize,
    bytes: Vec<u8>,
    insns: u64,
}

impl CodeImage {
    /// Wraps finished code bytes for `target`.
    pub fn new(target: TargetId, args: usize, bytes: Vec<u8>, insns: u64) -> CodeImage {
        CodeImage {
            target,
            args,
            bytes,
            insns,
        }
    }

    /// The machine-code bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl Lambda for CodeImage {
    fn target(&self) -> TargetId {
        self.target
    }

    fn code_len(&self) -> usize {
        self.bytes.len()
    }

    fn insns(&self) -> u64 {
        self.insns
    }

    fn call(&self, args: &[i32]) -> Result<i64, EngineError> {
        if args.len() != self.args {
            return Err(EngineError::BadArgs {
                expected: self.args,
                got: args.len(),
            });
        }
        let exec = executor(self.target).ok_or(EngineError::NoExecutor(self.target))?;
        exec.run(self.target, &self.bytes, args, SIM_FUEL)
    }

    fn persist_image(&self) -> Option<(usize, Vec<u8>)> {
        Some((self.args, self.bytes.clone()))
    }
}

/// Executes finished code for a simulated ISA. Installed process-wide by
/// `vcode_sim::engine::install()`; the indirection keeps the dependency
/// graph acyclic (backend crates know nothing about the simulators).
pub trait SimExecutor: Send + Sync + fmt::Debug {
    /// Loads `code` into a fresh machine for `target` and calls it with
    /// `args`, bounded by `fuel` simulated steps.
    ///
    /// # Errors
    ///
    /// Typed [`EngineError::Exec`] on load failures and runtime traps.
    fn run(
        &self,
        target: TargetId,
        code: &[u8],
        args: &[i32],
        fuel: u64,
    ) -> Result<i64, EngineError>;
}

static EXECUTORS: RwLock<[Option<Arc<dyn SimExecutor>>; 4]> = RwLock::new([const { None }; 4]);

/// Installs the executor for `target`, replacing any previous one.
pub fn set_executor(target: TargetId, exec: Arc<dyn SimExecutor>) {
    let mut slots = EXECUTORS.write().unwrap_or_else(|e| e.into_inner());
    slots[target.index()] = Some(exec);
}

/// The installed executor for `target`, if any.
pub fn executor(target: TargetId) -> Option<Arc<dyn SimExecutor>> {
    let slots = EXECUTORS.read().unwrap_or_else(|e| e.into_inner());
    slots[target.index()].clone()
}

/// An object-safe adapter over one monomorphized `Assembler<T>` path:
/// the record → compile half of the engine's record → compile → execute
/// surface.
pub trait Backend: Send + Sync + fmt::Debug {
    /// The target this backend compiles for.
    fn id(&self) -> TargetId;
    /// Registry name (defaults to the target id's name).
    fn name(&self) -> &'static str {
        self.id().name()
    }
    /// Word width of the target.
    fn word_bits(&self) -> u32;
    /// Compiles a recorded program to an executable [`Lambda`].
    ///
    /// # Errors
    ///
    /// Typed [`EngineError`] — codegen failure, executable-memory
    /// exhaustion, register exhaustion.
    fn compile(&self, prog: &Program) -> Result<Arc<dyn Lambda>, EngineError>;
    /// Compiles through the tier-2 optimizing pipeline
    /// ([`tier2::optimize`](crate::tier2::optimize) then linear-scan
    /// replay). The default falls back to the baseline translation so a
    /// backend without a tier-2 path still satisfies upgrade requests.
    ///
    /// # Errors
    ///
    /// As [`compile`](Self::compile).
    fn compile_tier2(&self, prog: &Program) -> Result<Arc<dyn Lambda>, EngineError> {
        self.compile(prog)
    }
    /// Re-materializes a lambda from a persisted artifact's code bytes,
    /// revalidating them (differential re-decode) before anything is
    /// mapped or run. The default refuses: a backend must opt in to
    /// adoption by proving it can revalidate.
    ///
    /// # Errors
    ///
    /// [`EngineError::Exec`] when the bytes fail revalidation or the
    /// backend has no adoption path.
    fn adopt(&self, artifact: &crate::persist::Artifact) -> Result<Arc<dyn Lambda>, EngineError> {
        Err(EngineError::Exec(format!(
            "backend {} has no artifact-adoption path (artifact for {})",
            self.name(),
            artifact.target.name(),
        )))
    }
}

/// Generates a [`Backend`] adapter for a simulated-ISA target: compiles
/// the recorded program into code bytes through the ordinary monomorphized
/// `Assembler<$target>` path and wraps them in a [`CodeImage`].
///
/// This is the shared registration boilerplate the three RISC backend
/// crates previously would have had to duplicate; the native x86-64
/// backend has its own adapter because it executes in place.
#[macro_export]
macro_rules! code_backend {
    ($(#[$meta:meta])* $adapter:ident, $target:ty, $id:expr) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $adapter;

        impl $crate::engine::Backend for $adapter {
            fn id(&self) -> $crate::engine::TargetId {
                $id
            }

            fn word_bits(&self) -> u32 {
                <$target as $crate::Target>::WORD_BITS
            }

            fn compile(
                &self,
                prog: &$crate::engine::Program,
            ) -> Result<
                ::std::sync::Arc<dyn $crate::engine::Lambda>,
                $crate::engine::EngineError,
            > {
                let mut mem = vec![0u8; prog.code_capacity()];
                let fin = $crate::engine::replay::<$target>(prog, &mut mem)?;
                mem.truncate(fin.len);
                Ok(::std::sync::Arc::new($crate::engine::CodeImage::new(
                    $id,
                    prog.args(),
                    mem,
                    fin.insns,
                )))
            }

            fn compile_tier2(
                &self,
                prog: &$crate::engine::Program,
            ) -> Result<
                ::std::sync::Arc<dyn $crate::engine::Lambda>,
                $crate::engine::EngineError,
            > {
                let (opt, _stats) = $crate::tier2::optimize(prog);
                let mut mem = vec![0u8; opt.code_capacity()];
                let fin = $crate::tier2::replay_opt::<$target>(&opt, &mut mem)?;
                mem.truncate(fin.len);
                Ok(::std::sync::Arc::new($crate::engine::CodeImage::new(
                    $id,
                    opt.args(),
                    mem,
                    fin.insns,
                )))
            }

            fn adopt(
                &self,
                artifact: &$crate::persist::Artifact,
            ) -> Result<
                ::std::sync::Arc<dyn $crate::engine::Lambda>,
                $crate::engine::EngineError,
            > {
                let dec = $crate::persist::decoder($id)
                    .ok_or($crate::engine::EngineError::NoExecutor($id))?;
                $crate::persist::redecode(&artifact.code, &*dec).map_err(|e| {
                    $crate::engine::EngineError::Exec(
                        format!("artifact revalidation: {e}"),
                    )
                })?;
                Ok(::std::sync::Arc::new($crate::engine::CodeImage::new(
                    $id,
                    artifact.args as usize,
                    artifact.code.clone(),
                    artifact.insns,
                )))
            }
        }
    };
}

// ---------------------------------------------------------------------------
// Degraded serving: the interpreter tier behind async compiles
// ---------------------------------------------------------------------------

/// A callable handle served *before* (or instead of) native code: calls
/// run through [`Program::interpret`] until the background build
/// publishes, then upgrade — permanently and race-free — to the native
/// [`Lambda`].
///
/// The upgrade check is a cache [`peek`](LambdaCache::peek) (no stats
/// pollution, no emission work) plus a `OnceLock` publish, so a warm
/// degraded handle costs one atomic load per call once upgraded.
#[derive(Debug)]
pub struct DegradedLambda {
    program: Program,
    key: CacheKey,
    cache: Arc<LambdaCache<dyn Lambda>>,
    target: TargetId,
    native: OnceLock<Arc<dyn Lambda>>,
}

impl DegradedLambda {
    /// The native lambda, if the background build has published it.
    /// First success latches: later calls never re-probe the cache.
    pub fn native(&self) -> Option<&Arc<dyn Lambda>> {
        if let Some(n) = self.native.get() {
            return Some(n);
        }
        let fetched = self.cache.peek(&self.key)?;
        Some(self.native.get_or_init(|| fetched))
    }

    /// Whether calls are now served by native code.
    pub fn upgraded(&self) -> bool {
        self.native().is_some()
    }
}

impl Lambda for DegradedLambda {
    fn target(&self) -> TargetId {
        self.target
    }

    /// Native code size once upgraded; `0` while interpreting.
    fn code_len(&self) -> usize {
        self.native().map_or(0, |n| n.code_len())
    }

    /// Recorded stream length while degraded; the native count once
    /// upgraded.
    fn insns(&self) -> u64 {
        self.native()
            .map_or(self.program.len() as u64, |n| n.insns())
    }

    fn call(&self, args: &[i32]) -> Result<i64, EngineError> {
        if let Some(n) = self.native() {
            return n.call(args);
        }
        obs::note_degraded_call();
        self.program.interpret(args, SIM_FUEL)
    }
}

// ---------------------------------------------------------------------------
// Tiered serving: heat-triggered optimizing recompilation
// ---------------------------------------------------------------------------

/// A cached lambda that counts its own calls and upgrades itself in
/// place: it serves tier-1 baseline code immediately, and when the call
/// count crosses [`TierConfig::hot_threshold`] it schedules a tier-2
/// rebuild ([`Backend::compile_tier2`]) on the engine's
/// [`CompileService`] under the [tier-tagged](CacheKey::tiered) cache
/// key. When the optimized build publishes, the very next call latches
/// it through a `OnceLock` — callers never stall on the rebuild and can
/// never observe a torn swap (they run either whole-tier-1 or
/// whole-tier-2 code, both semantically identical).
///
/// The wrapper holds the cache and service [`Weak`]ly: the cache stores
/// the wrapper, so strong references here would leak the whole engine
/// through a reference cycle. A dropped engine simply stops upgrading.
///
/// Failure containment comes from the service for free: a panicking or
/// deadline-missing tier-2 build quarantines the *tier-2* key, the
/// wrapper keeps serving tier-1 code, and re-submission (every
/// `hot_threshold` further calls) respects the quarantine backoff.
#[derive(Debug)]
pub struct TieredLambda {
    base: Arc<dyn Lambda>,
    program: Program,
    key2: CacheKey,
    backend: Arc<dyn Backend>,
    cache: Weak<LambdaCache<dyn Lambda>>,
    service: Weak<CompileService<dyn Lambda>>,
    threshold: u64,
    /// Weight heat by reported execution cycles instead of 1 per call
    /// (see [`TierConfig::cycle_weighted`]).
    cycle_weighted: bool,
    calls: AtomicU64,
    /// Accumulated heat: call count, or total reported cycles when
    /// cycle-weighted. Crossing a multiple of `threshold` (re)submits
    /// the tier-2 build.
    heat: AtomicU64,
    tier2: OnceLock<Arc<dyn Lambda>>,
}

impl TieredLambda {
    /// Wraps a freshly built tier-1 lambda for heat-tracked serving.
    /// Called from inside cache builders so the cached (Ready) slot
    /// holds the wrapper — every caller shares one call counter.
    fn wrap(
        base: Arc<dyn Lambda>,
        program: Program,
        key2: CacheKey,
        backend: Arc<dyn Backend>,
        cache: Weak<LambdaCache<dyn Lambda>>,
        service: Weak<CompileService<dyn Lambda>>,
        cfg: TierConfig,
    ) -> Arc<dyn Lambda> {
        Arc::new(TieredLambda {
            base,
            program,
            key2,
            backend,
            cache,
            service,
            threshold: cfg.hot_threshold.max(1),
            cycle_weighted: cfg.cycle_weighted,
            calls: AtomicU64::new(0),
            heat: AtomicU64::new(0),
            tier2: OnceLock::new(),
        })
    }

    /// Calls served so far (all tiers).
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Accumulated heat: equal to [`calls`](Self::calls) under the
    /// default policy, total reported execution cycles when
    /// [`TierConfig::cycle_weighted`] is set.
    pub fn heat(&self) -> u64 {
        self.heat.load(Ordering::Relaxed)
    }

    /// Whether calls are now served by tier-2 optimized code.
    pub fn upgraded(&self) -> bool {
        self.tier2.get().is_some()
    }

    /// The tier-1 lambda this wrapper started with.
    pub fn baseline(&self) -> &Arc<dyn Lambda> {
        &self.base
    }

    /// The tier-2 lambda, if the upgrade has latched.
    pub fn optimized(&self) -> Option<&Arc<dyn Lambda>> {
        self.tier2.get()
    }

    /// Probes the cache for a published tier-2 build and latches it.
    /// Returns the serving lambda either way.
    fn poll_upgrade(&self) -> &Arc<dyn Lambda> {
        if let Some(t2) = self.tier2.get() {
            return t2;
        }
        let Some(cache) = self.cache.upgrade() else {
            return &self.base;
        };
        let Some(found) = cache.peek(&self.key2) else {
            return &self.base;
        };
        let mut fresh = false;
        let t2 = self.tier2.get_or_init(|| {
            fresh = true;
            found
        });
        if fresh {
            obs::note_tier2_upgraded();
        }
        t2
    }

    /// Hands the tier-2 build to the compile service (non-blocking). A
    /// `Ready` response (another wrapper already built it) latches
    /// immediately.
    fn schedule(&self) {
        let Some(service) = self.service.upgrade() else {
            return;
        };
        obs::note_tier2_scheduled();
        let backend = Arc::clone(&self.backend);
        let prog = self.program.clone();
        let submit = service.submit(self.key2.clone(), move || {
            backend.compile_tier2(&prog).map_err(|e| e.to_string())
        });
        if let Submit::Ready(t2) = submit {
            let mut fresh = false;
            self.tier2.get_or_init(|| {
                fresh = true;
                t2
            });
            if fresh {
                obs::note_tier2_upgraded();
            }
        }
    }
}

impl Lambda for TieredLambda {
    fn target(&self) -> TargetId {
        self.base.target()
    }

    /// Code size of the currently-serving tier.
    fn code_len(&self) -> usize {
        self.tier2
            .get()
            .map_or_else(|| self.base.code_len(), |t| t.code_len())
    }

    /// Instruction count of the currently-serving tier.
    fn insns(&self) -> u64 {
        self.tier2
            .get()
            .map_or_else(|| self.base.insns(), |t| t.insns())
    }

    fn call(&self, args: &[i32]) -> Result<i64, EngineError> {
        if let Some(t2) = self.tier2.get() {
            return t2.call(args);
        }
        self.calls.fetch_add(1, Ordering::Relaxed);
        // Serve tier-1 first: under cycle weighting the heat of this
        // call is its measured cost, which only exists afterwards. (A
        // same-call t2 latch would have produced the identical result —
        // the tiers are differentially checked — so serving order does
        // not change observable behavior.)
        if self.cycle_weighted {
            obs::take_last_call_cycles();
        }
        let out = self.base.call(args);
        let w = if self.cycle_weighted {
            // Cost-weighted heat: a 10k-cycle callee is hot after a
            // handful of calls; a 5-cycle one needs thousands. Backends
            // without a cycle model (native x86-64) report nothing and
            // fall back to 1 per call.
            obs::take_last_call_cycles().max(1)
        } else {
            1
        };
        let prev = self.heat.fetch_add(w, Ordering::Relaxed);
        let h = prev + w;
        if h >= self.threshold {
            if prev < self.threshold {
                obs::note_tier2_hot();
            }
            self.poll_upgrade();
            // Still on tier-1: (re)submit every `threshold` heat units
            // so shed or quarantined builds eventually retry.
            if self.tier2.get().is_none() && (prev / self.threshold) != (h / self.threshold) {
                self.schedule();
            }
        }
        out
    }

    fn as_tiered(&self) -> Option<&TieredLambda> {
        Some(self)
    }

    /// The *baseline* tier's image: tier-2 code is a derived product
    /// the warm-start path rebuilds from heat, not from disk.
    fn persist_image(&self) -> Option<(usize, Vec<u8>)> {
        self.base.persist_image()
    }
}

/// How one [`Engine::compile_async`] request was served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Warm cache hit: the handle is native code from the first call.
    Native,
    /// The build was queued (or already in flight); the handle serves
    /// the interpreter until the upgrade publishes.
    Building,
    /// The service shed the build (queue at depth, or the cache shard
    /// at its build cap): degraded serving, nothing enqueued.
    Shed,
    /// The key is quarantined after repeated build failures: degraded
    /// serving until the backoff expires.
    Quarantined {
        /// Time until the next rebuild probe is admitted.
        retry_in: Duration,
        /// Consecutive failures recorded for the key.
        failures: u32,
    },
}

/// Result of a non-blocking [`Engine::compile_async`]: a lambda that is
/// callable *right now*, plus how it is (currently) served.
#[derive(Debug, Clone)]
pub struct AsyncCompile {
    lambda: Arc<dyn Lambda>,
    degraded: Option<Arc<DegradedLambda>>,
    mode: ServeMode,
}

impl AsyncCompile {
    /// The callable handle (native or degraded).
    pub fn lambda(&self) -> &Arc<dyn Lambda> {
        &self.lambda
    }

    /// How the request was served at submit time.
    pub fn mode(&self) -> ServeMode {
        self.mode
    }

    /// Whether calls are served by native code *now* (a degraded handle
    /// upgrades as soon as the background build publishes).
    pub fn native_ready(&self) -> bool {
        match &self.degraded {
            None => true,
            Some(d) => d.upgraded(),
        }
    }

    /// Calls the handle — identical to `self.lambda().call(args)`.
    ///
    /// # Errors
    ///
    /// See [`Lambda::call`].
    pub fn call(&self, args: &[i32]) -> Result<i64, EngineError> {
        self.lambda.call(args)
    }
}

// ---------------------------------------------------------------------------
// The engine: registry + cache
// ---------------------------------------------------------------------------

/// The engine's [`ArtifactCodec`](crate::persist::ArtifactCodec):
/// serializes any lambda exposing a [`Lambda::persist_image`] and
/// re-materializes artifacts through [`Backend::adopt`], with a
/// differential IR check on the embedded key bytes (they must decode as
/// a [`Program`] and re-encode to themselves) before any native byte is
/// trusted.
struct LambdaCodec {
    backends: [Option<Arc<dyn Backend>>; 4],
}

impl fmt::Debug for LambdaCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LambdaCodec").finish()
    }
}

impl crate::persist::ArtifactCodec<dyn Lambda> for LambdaCodec {
    fn to_artifact(
        &self,
        key: &CacheKey,
        val: &Arc<dyn Lambda>,
    ) -> Result<crate::persist::Artifact, crate::persist::PersistError> {
        let (args, code) =
            val.persist_image()
                .ok_or(crate::persist::PersistError::NotPersistable(
                    "lambda exposes no persistable image",
                ))?;
        Ok(crate::persist::Artifact {
            target: val.target(),
            args: args as u8,
            insns: val.insns(),
            key: key.content().to_vec(),
            meta: Vec::new(),
            code,
        })
    }

    fn from_artifact(
        &self,
        artifact: &crate::persist::Artifact,
    ) -> Result<Arc<dyn Lambda>, crate::persist::PersistError> {
        // Differential IR check: the artifact's identity bytes must be
        // a well-formed Program stream naming the recorded arity.
        let prog = Program::decode(&artifact.key)
            .map_err(|e| crate::persist::PersistError::Revalidation(format!("embedded IR: {e}")))?;
        if prog.args() != artifact.args as usize {
            return Err(crate::persist::PersistError::Revalidation(
                "artifact arity disagrees with its embedded IR".into(),
            ));
        }
        if prog.encode() != artifact.key {
            return Err(crate::persist::PersistError::Revalidation(
                "embedded IR does not round-trip to the key bytes".into(),
            ));
        }
        let backend = self.backends[artifact.target.index()]
            .as_ref()
            .ok_or(crate::persist::PersistError::NoDecoder(artifact.target))?;
        backend
            .adopt(artifact)
            .map_err(|e| crate::persist::PersistError::Revalidation(e.to_string()))
    }
}

/// A registry of runtime-selectable backends fronted by a sharded
/// compiled-lambda cache.
///
/// ```no_run
/// use vcode::engine::{Engine, Program, TargetId};
/// # fn backends() -> Vec<std::sync::Arc<dyn vcode::engine::Backend>> { vec![] }
/// let mut engine = Engine::new(256);
/// for b in backends() {
///     engine.register(b);
/// }
/// let mut p = Program::new(1).unwrap();
/// p.bin_imm(vcode::BinOp::Add, 0, 0, 1);
/// p.ret(0);
/// // Runtime selection by name; the second compile is a cache hit.
/// let id = TargetId::from_name("x64").unwrap();
/// let f = engine.compile_cached(id, &p).unwrap();
/// assert_eq!(f.call(&[41]).unwrap(), 42);
/// ```
#[derive(Debug)]
pub struct Engine {
    backends: [Option<Arc<dyn Backend>>; 4],
    cache: Arc<LambdaCache<dyn Lambda>>,
    service: OnceLock<Arc<CompileService<dyn Lambda>>>,
    tiering: OnceLock<TierConfig>,
    /// Optional persistent L2 tier (see [`enable_persist`](Self::enable_persist)).
    l2: OnceLock<Arc<crate::persist::DiskTier<dyn Lambda>>>,
}

impl Engine {
    /// Creates an engine whose lambda cache retains at most `capacity`
    /// compiled programs (LRU beyond that).
    pub fn new(capacity: usize) -> Engine {
        Engine {
            backends: [const { None }; 4],
            cache: Arc::new(LambdaCache::new(capacity)),
            service: OnceLock::new(),
            tiering: OnceLock::new(),
            l2: OnceLock::new(),
        }
    }

    /// Registers (or replaces) a backend under its [`TargetId`].
    pub fn register(&mut self, backend: Arc<dyn Backend>) {
        let idx = backend.id().index();
        self.backends[idx] = Some(backend);
    }

    /// The backend registered for `id`.
    pub fn backend(&self, id: TargetId) -> Option<&Arc<dyn Backend>> {
        self.backends[id.index()].as_ref()
    }

    /// Runtime backend selection by registry name.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownBackend`] for names no target uses,
    /// [`EngineError::UnregisteredBackend`] for known-but-absent ones.
    pub fn backend_by_name(&self, name: &str) -> Result<&Arc<dyn Backend>, EngineError> {
        let id = TargetId::from_name(name)
            .ok_or_else(|| EngineError::UnknownBackend(name.to_string()))?;
        self.backend(id).ok_or(EngineError::UnregisteredBackend(id))
    }

    /// Registered backends, in stable id order.
    pub fn backends(&self) -> impl Iterator<Item = &Arc<dyn Backend>> {
        self.backends.iter().flatten()
    }

    /// Compiles `prog` on `id` *without* touching the cache — the
    /// single-shot path, identical in cost to calling the backend
    /// directly.
    ///
    /// # Errors
    ///
    /// See [`Backend::compile`]; plus [`EngineError::UnregisteredBackend`].
    pub fn compile(&self, id: TargetId, prog: &Program) -> Result<Arc<dyn Lambda>, EngineError> {
        self.backends[id.index()]
            .as_ref()
            .ok_or(EngineError::UnregisteredBackend(id))?
            .compile(prog)
    }

    /// Compiles `prog` on `id` through the lambda cache: a warm hit
    /// returns the shared finished code with zero emission work; a miss
    /// compiles exactly once no matter how many threads race on the key.
    ///
    /// # Errors
    ///
    /// See [`compile`](Self::compile). A failed compile is returned to
    /// every racing caller and never poisons the cache.
    pub fn compile_cached(
        &self,
        id: TargetId,
        prog: &Program,
    ) -> Result<Arc<dyn Lambda>, EngineError> {
        let backend = self.backends[id.index()]
            .as_ref()
            .ok_or(EngineError::UnregisteredBackend(id))?;
        let (bytes, hash) = prog.encoded();
        let key = CacheKey::from_encoded(id, Arc::clone(bytes), *hash);
        self.cache
            .get_or_build(
                key,
                || {
                    // L1 missed. The L2 key is re-derived *here*, not
                    // cloned from the lookup key — a clone on the hot
                    // path is an Arc refcount round-trip per warm hit,
                    // the exact regression the cache_amortize fence
                    // caught once before (encoded() is memoized, so
                    // this costs nothing beyond the miss itself).
                    let (bytes, hash) = prog.encoded();
                    let l2_key = CacheKey::from_encoded(id, Arc::clone(bytes), *hash);
                    // Probe the persistent tier first: a valid artifact
                    // skips compilation entirely; any PersistError is a
                    // counted, silent fallback to a fresh compile (a
                    // bad cache dir costs time, never correctness).
                    if let Some(l2) = self.l2.get() {
                        if let Ok(Some(base)) = crate::persist::CacheTier::load(&**l2, &l2_key) {
                            return Ok(self.tier_wrap(backend, prog, base));
                        }
                    }
                    let base = backend.compile(prog)?;
                    if let Some(l2) = self.l2.get() {
                        // Store-through is best-effort: failure to
                        // persist must never fail the compile.
                        let _ = crate::persist::CacheTier::store(&**l2, &l2_key, &base);
                    }
                    Ok(self.tier_wrap(backend, prog, base))
                },
                self.cache.stall_timeout(),
            )
            .map_err(|e| match e {
                CacheError::Build(e) => e,
                CacheError::Stalled { waited } => EngineError::BuildStalled { waited },
            })
    }

    /// Compiles `prog` on `id` through the tier-2 optimizing pipeline
    /// directly (no cache, no heat gating): peephole over the recorded
    /// IR, then linear-scan replay. This is the synchronous inspection
    /// entry; production serving reaches tier-2 through
    /// [`enable_tiering`](Self::enable_tiering) instead.
    ///
    /// # Errors
    ///
    /// See [`Backend::compile_tier2`]; plus
    /// [`EngineError::UnregisteredBackend`].
    pub fn compile_tier2(
        &self,
        id: TargetId,
        prog: &Program,
    ) -> Result<Arc<dyn Lambda>, EngineError> {
        self.backends[id.index()]
            .as_ref()
            .ok_or(EngineError::UnregisteredBackend(id))?
            .compile_tier2(prog)
    }

    /// Wraps a tier-1 build for heat-tracked tier-2 upgrade when tiering
    /// is enabled; the identity otherwise. Runs on the cache's miss path
    /// only, so the tier-2 key derivation costs warm hits nothing.
    fn tier_wrap(
        &self,
        backend: &Arc<dyn Backend>,
        prog: &Program,
        base: Arc<dyn Lambda>,
    ) -> Arc<dyn Lambda> {
        match self.tiering.get() {
            Some(cfg) => {
                let (bytes, hash) = prog.encoded();
                let key2 = CacheKey::from_encoded(backend.id(), Arc::clone(bytes), *hash).tiered(2);
                TieredLambda::wrap(
                    base,
                    prog.clone(),
                    key2,
                    Arc::clone(backend),
                    Arc::downgrade(&self.cache),
                    Arc::downgrade(self.service_handle()),
                    *cfg,
                )
            }
            None => base,
        }
    }

    /// Non-blocking compile: never generates code and never waits on
    /// the calling thread. A warm key returns native code
    /// ([`ServeMode::Native`]); otherwise the build is handed to the
    /// engine's [`CompileService`] and the returned handle serves calls
    /// through [`Program::interpret`] until the native code publishes —
    /// see [`ServeMode`] for the shed/quarantine outcomes.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnregisteredBackend`]; everything downstream of a
    /// successful submit is *served*, not errored (the degradation
    /// ladder's whole point).
    pub fn compile_async(&self, id: TargetId, prog: &Program) -> Result<AsyncCompile, EngineError> {
        let backend = self.backends[id.index()]
            .as_ref()
            .ok_or(EngineError::UnregisteredBackend(id))?;
        let (bytes, hash) = prog.encoded();
        let key = CacheKey::from_encoded(id, Arc::clone(bytes), *hash);
        let backend = Arc::clone(backend);
        let to_build = prog.clone();
        let tier = self.tiering.get().copied();
        let cache_weak = Arc::downgrade(&self.cache);
        let service_weak = Arc::downgrade(self.service_handle());
        let wrap_key = key.clone();
        let submit = self.service().submit(key.clone(), move || {
            let base = backend.compile(&to_build).map_err(|e| e.to_string())?;
            Ok(match tier {
                Some(cfg) => TieredLambda::wrap(
                    base,
                    to_build,
                    wrap_key.tiered(2),
                    backend,
                    cache_weak,
                    service_weak,
                    cfg,
                ),
                None => base,
            })
        });
        let mode = match submit {
            Submit::Ready(lambda) => {
                return Ok(AsyncCompile {
                    lambda,
                    degraded: None,
                    mode: ServeMode::Native,
                })
            }
            Submit::Queued | Submit::InFlight => ServeMode::Building,
            Submit::Shed => ServeMode::Shed,
            Submit::Quarantined { retry_in, failures } => {
                ServeMode::Quarantined { retry_in, failures }
            }
        };
        let degraded = Arc::new(DegradedLambda {
            program: prog.clone(),
            key,
            cache: Arc::clone(&self.cache),
            target: id,
            native: OnceLock::new(),
        });
        Ok(AsyncCompile {
            lambda: Arc::clone(&degraded) as Arc<dyn Lambda>,
            degraded: Some(degraded),
            mode,
        })
    }

    /// The engine's background compile service, started on first use
    /// with [`ServiceConfig::default`] (or the configuration installed
    /// by [`configure_service`](Self::configure_service)).
    pub fn service(&self) -> &CompileService<dyn Lambda> {
        self.service_handle()
    }

    fn service_handle(&self) -> &Arc<CompileService<dyn Lambda>> {
        self.service.get_or_init(|| {
            Arc::new(CompileService::new(
                Arc::clone(&self.cache),
                ServiceConfig::default(),
            ))
        })
    }

    /// Installs a non-default service configuration. Returns `false` if
    /// the service already started (first [`compile_async`](Self::
    /// compile_async) wins); the running service is then unchanged.
    pub fn configure_service(&self, cfg: ServiceConfig) -> bool {
        self.service
            .set(Arc::new(CompileService::new(Arc::clone(&self.cache), cfg)))
            .is_ok()
    }

    /// Turns on tiered recompilation: every lambda built through
    /// [`compile_cached`](Self::compile_cached) or
    /// [`compile_async`](Self::compile_async) from here on is wrapped in
    /// a [`TieredLambda`] that schedules a background tier-2 rebuild
    /// once its call count crosses `cfg.hot_threshold`, then swaps to
    /// the optimized code in place. Returns `false` if tiering was
    /// already enabled (first configuration wins). Already-cached
    /// lambdas are unaffected.
    pub fn enable_tiering(&self, cfg: TierConfig) -> bool {
        self.tiering.set(cfg).is_ok()
    }

    /// The tiering configuration, if [`enable_tiering`](Self::
    /// enable_tiering) was called.
    pub fn tiering(&self) -> Option<TierConfig> {
        self.tiering.get().copied()
    }

    /// Attaches a persistent L2 tier under `dir`: subsequent
    /// [`compile_cached`](Self::compile_cached) misses probe the disk
    /// tier before compiling and store-through after. First call wins
    /// (`false` afterwards, like [`enable_tiering`](Self::enable_tiering)).
    ///
    /// Register every backend *before* enabling persistence — the tier
    /// captures the backend set it revalidates and adopts with.
    ///
    /// # Errors
    ///
    /// [`PersistError::Io`](crate::persist::PersistError::Io) when the
    /// directory cannot be created.
    pub fn enable_persist(
        &self,
        dir: impl Into<std::path::PathBuf>,
    ) -> Result<bool, crate::persist::PersistError> {
        let tier = crate::persist::DiskTier::new(
            dir,
            Box::new(LambdaCodec {
                backends: self.backends.clone(),
            }),
        )?;
        Ok(self.l2.set(Arc::new(tier)).is_ok())
    }

    /// The persistent L2 tier, if [`enable_persist`](Self::enable_persist)
    /// was called.
    pub fn persist_tier(&self) -> Option<&Arc<crate::persist::DiskTier<dyn Lambda>>> {
        self.l2.get()
    }

    /// The engine's lambda cache (for direct keying, invalidation and
    /// inspection).
    pub fn cache(&self) -> &LambdaCache<dyn Lambda> {
        &self.cache
    }

    /// Hit/miss/eviction/insert counters of the engine's cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fake::FakeTarget;

    fn sample() -> Program {
        let mut p = Program::new(2).unwrap();
        p.bin(BinOp::Add, 4, 0, 1);
        p.bin_imm(BinOp::Mul, 4, 4, 3);
        let skip = p.genlabel();
        p.br_imm(Cond::Ge, 4, 0, skip);
        p.un(UnOp::Neg, 4, 4);
        p.label(skip);
        p.ret(4);
        p
    }

    #[test]
    fn encode_is_deterministic_and_hash_content_addressed() {
        let p = sample();
        assert_eq!(p.encode(), p.encode());
        assert_eq!(p.stream_hash(), p.stream_hash());
        let mut q = sample();
        q.bin_imm(BinOp::Add, 4, 4, 0); // different stream
        assert_ne!(p.stream_hash(), q.stream_hash());
    }

    #[test]
    fn replay_emits_through_the_ordinary_path() {
        let p = sample();
        let mut mem = vec![0u8; p.code_capacity()];
        let fin = replay::<FakeTarget>(&p, &mut mem).unwrap();
        assert!(fin.len > 0);
        assert_eq!(fin.insns, p.len() as u64 - 1); // `label` emits nothing
    }

    #[test]
    fn interpret_matches_recorded_semantics() {
        // sample() computes v = (x + y) * 3 and negates when negative.
        let p = sample();
        for (x, y) in [(3i32, 4), (-10, 2), (0, 0), (1000, -2000)] {
            let v = x.wrapping_add(y).wrapping_mul(3);
            let want = i64::from(if v < 0 { v.wrapping_neg() } else { v });
            assert_eq!(p.interpret(&[x, y], 1_000).unwrap(), want, "f({x},{y})");
        }
    }

    #[test]
    fn interpret_covers_every_op_bit_for_bit() {
        // One program per binop, checked against native i32 semantics.
        let cases: [(BinOp, i32, i32, i32); 8] = [
            (BinOp::Add, i32::MAX, 1, i32::MAX.wrapping_add(1)),
            (BinOp::Sub, i32::MIN, 1, i32::MIN.wrapping_sub(1)),
            (BinOp::Mul, 123_456, 789, 123_456i32.wrapping_mul(789)),
            (BinOp::Div, -7, 2, -3),
            (BinOp::Mod, -7, 2, -1),
            (BinOp::Xor, 0x5a5a, 0xa5a5, 0xffff),
            (BinOp::Lsh, 1, 33, 2),  // count masked to 5 bits
            (BinOp::Rsh, -8, 1, -4), // arithmetic shift
        ];
        for (op, a, b, want) in cases {
            let mut p = Program::new(2).unwrap();
            p.bin(op, 2, 0, 1);
            p.ret(2);
            assert_eq!(
                p.interpret(&[a, b], 100).unwrap(),
                i64::from(want),
                "{op:?}"
            );
        }
        let mut p = Program::new(1).unwrap();
        p.un(UnOp::Com, 1, 0);
        p.ret(1);
        assert_eq!(p.interpret(&[0x0f0f], 100).unwrap(), i64::from(!0x0f0f));
        let mut p = Program::new(1).unwrap();
        p.un(UnOp::Not, 1, 0);
        p.ret(1);
        assert_eq!(p.interpret(&[0], 100).unwrap(), 1);
        assert_eq!(p.interpret(&[7], 100).unwrap(), 0);
    }

    #[test]
    fn interpret_faults_are_typed() {
        // Division by zero.
        let mut p = Program::new(2).unwrap();
        p.bin(BinOp::Div, 2, 0, 1);
        p.ret(2);
        assert!(matches!(
            p.interpret(&[1, 0], 100),
            Err(EngineError::Exec(m)) if m.contains("zero")
        ));
        // Arity mismatch.
        assert!(matches!(
            p.interpret(&[1], 100),
            Err(EngineError::BadArgs {
                expected: 2,
                got: 1
            })
        ));
        // Fuel bounds an infinite loop.
        let mut p = Program::new(0).unwrap();
        let top = p.genlabel();
        p.label(top);
        p.jmp(top);
        assert!(matches!(
            p.interpret(&[], 10_000),
            Err(EngineError::Exec(m)) if m.contains("fuel")
        ));
        // Running off the end without ret.
        let mut p = Program::new(1).unwrap();
        p.bin_imm(BinOp::Add, 0, 0, 1);
        assert!(matches!(
            p.interpret(&[1], 100),
            Err(EngineError::Exec(m)) if m.contains("ret")
        ));
        // Jump to a label that is never bound.
        let mut p = Program::new(0).unwrap();
        let nowhere = p.genlabel();
        p.jmp(nowhere);
        assert!(matches!(
            p.interpret(&[], 100),
            Err(EngineError::Exec(m)) if m.contains("unbound")
        ));
    }

    #[test]
    fn too_many_args_is_typed() {
        assert!(matches!(
            Program::new(MAX_PROGRAM_ARGS + 1),
            Err(EngineError::TooManyArgs { requested: 5 })
        ));
    }

    #[test]
    fn target_id_names_round_trip() {
        for t in TargetId::ALL {
            assert_eq!(TargetId::from_name(t.name()), Some(t));
        }
        assert_eq!(TargetId::from_name("vax"), None);
    }

    #[test]
    fn unregistered_backend_is_typed() {
        let engine = Engine::new(8);
        let p = sample();
        assert!(matches!(
            engine.compile(TargetId::Mips, &p),
            Err(EngineError::UnregisteredBackend(TargetId::Mips))
        ));
        assert!(matches!(
            engine.backend_by_name("vax"),
            Err(EngineError::UnknownBackend(_))
        ));
        assert!(matches!(
            engine.backend_by_name("mips"),
            Err(EngineError::UnregisteredBackend(TargetId::Mips))
        ));
    }

    #[test]
    fn code_image_without_executor_is_typed() {
        // FakeTarget has no TargetId; borrow mips's slot but do not
        // install an executor for it in this process... other tests in
        // the workspace may install one, so use a CodeImage for a target
        // and accept either NoExecutor or a load failure — the assertion
        // is "typed error, no panic".
        let img = CodeImage::new(TargetId::Sparc, 0, vec![0u8; 4], 1);
        match img.call(&[]) {
            Err(EngineError::NoExecutor(TargetId::Sparc) | EngineError::Exec(_)) => {}
            other => panic!("expected typed failure, got {other:?}"),
        }
        assert!(matches!(
            img.call(&[1]),
            Err(EngineError::BadArgs {
                expected: 0,
                got: 1
            })
        ));
    }
}
