//! Tier-2 optimizing recompilation over the recorded [`Program`] IR.
//!
//! The paper's one-pass transliteration compiles in a handful of host
//! instructions per generated instruction, but concedes the output is
//! naive: every virtual register is pinned to a physical register for
//! the whole lambda, and redundant moves survive into the code. This
//! module is the optimizing tier a serving system applies only where
//! execution heat proves it pays (the Deegen/TPDE shape: baseline-fast
//! first, optimized-on-heat second):
//!
//! 1. **Peephole + constant folding** ([`optimize`]) — removes
//!    `mov d,d` and collapses move chains, folds `add 0`/`mul 1`-style
//!    identities and fully-constant expressions, deletes stores that are
//!    dead or overwritten before use, and simplifies branches
//!    (jump-to-next deleted, branch-over-jump inverted, unreachable tails
//!    dropped). Trapping operations (`div`/`mod` with a possibly-zero
//!    divisor) are never folded away — tier-2 code must fault exactly
//!    where tier-1 code does.
//! 2. **Linear-scan register allocation** ([`replay_opt`]) — computes a
//!    live interval per virtual register from the stream
//!    ([`LiveIntervals`]), conservatively extended across backward
//!    branches, and returns each physical register to the allocator at
//!    its interval's end. Programs whose *pressure* (not vreg count)
//!    fits the target compile where the pinned tier-1 mapping reports
//!    [`EngineError::TooManyTemps`].
//!
//! Both halves preserve the word-portable `i32` semantics of
//! [`Program::interpret`] bit for bit; the differential suite holds
//! tier-2 output equal to tier-1 and to the interpreter on every
//! backend.
//!
//! Heat detection and the in-place swap of cached lambdas live in
//! [`engine::TieredLambda`](crate::engine::TieredLambda); [`TierConfig`]
//! carries the threshold.

use crate::engine::{EngineError, POp, Program};
use crate::op::{BinOp, Cond, UnOp};
use crate::regalloc::LiveIntervals;
use crate::target::{Finished, Leaf, Target};
use crate::ty::{Sig, Ty};
use crate::{obs, Assembler, Label, Reg, RegClass};
use std::collections::{HashMap, HashSet};

/// Heat configuration for tiered recompilation (see
/// [`Engine::enable_tiering`](crate::engine::Engine::enable_tiering)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierConfig {
    /// Heat at which a cached lambda's tier-2 rebuild is scheduled:
    /// call count by default, accumulated execution cycles when
    /// [`cycle_weighted`](Self::cycle_weighted) is set. Clamped to at
    /// least 1.
    pub hot_threshold: u64,
    /// Weight heat by each call's reported execution cost (the
    /// simulators' cycle counters, fed through
    /// [`obs::note_exec_cycles`](crate::obs::note_exec_cycles)) instead
    /// of 1 per call — so a long-running cold callee tiers up before a
    /// cheap hot one. Backends without a cycle model (native x86-64)
    /// fall back to 1 per call.
    pub cycle_weighted: bool,
}

impl Default for TierConfig {
    fn default() -> TierConfig {
        TierConfig {
            hot_threshold: 1024,
            cycle_weighted: false,
        }
    }
}

/// What one [`optimize`] run did, in executable (non-label) instruction
/// counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Executable instructions in the input stream.
    pub insns_in: usize,
    /// Executable instructions surviving optimization.
    pub insns_out: usize,
    /// `mov d,d` (after copy collapsing) deletions.
    pub moves_removed: usize,
    /// Identity and constant folds (`add 0`, `mul 1`, known operands).
    pub folds: usize,
    /// Dead or overwritten-before-use definitions deleted (including
    /// unreachable code after an unconditional transfer).
    pub dead_removed: usize,
    /// Branches deleted (target falls through), rewritten to immediate
    /// form, decided at compile time, or inverted over a jump.
    pub branches_simplified: usize,
}

impl OptStats {
    /// Executable instructions eliminated end to end.
    pub fn eliminated(&self) -> usize {
        self.insns_in.saturating_sub(self.insns_out)
    }

    /// Percentage of input instructions eliminated.
    pub fn eliminated_pct(&self) -> f64 {
        if self.insns_in == 0 {
            0.0
        } else {
            self.eliminated() as f64 * 100.0 / self.insns_in as f64
        }
    }
}

const MAX_PASSES: usize = 8;

fn count_exec(ops: &[POp]) -> usize {
    ops.iter()
        .filter(|o| !matches!(o, POp::Label { .. }))
        .count()
}

/// The interpreter's binary-op semantics, or `None` when the operation
/// would trap (division/remainder by zero) — callers must then keep the
/// original instruction so tier-2 code faults exactly like tier-1.
fn eval_bin(op: BinOp, a: i32, b: i32) -> Option<i32> {
    Some(match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        BinOp::Mod => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Lsh => a.wrapping_shl(b as u32),
        BinOp::Rsh => a.wrapping_shr(b as u32),
    })
}

fn eval_un(op: UnOp, x: i32) -> i32 {
    match op {
        UnOp::Com => !x,
        UnOp::Not => i32::from(x == 0),
        UnOp::Mov => x,
        UnOp::Neg => x.wrapping_neg(),
    }
}

fn eval_cond(c: Cond, a: i32, b: i32) -> bool {
    match c {
        Cond::Lt => a < b,
        Cond::Le => a <= b,
        Cond::Gt => a > b,
        Cond::Ge => a >= b,
        Cond::Eq => a == b,
        Cond::Ne => a != b,
    }
}

/// `!(a c b)` as a condition on the same operand order.
fn invert_cond(c: Cond) -> Cond {
    match c {
        Cond::Lt => Cond::Ge,
        Cond::Le => Cond::Gt,
        Cond::Gt => Cond::Le,
        Cond::Ge => Cond::Lt,
        Cond::Eq => Cond::Ne,
        Cond::Ne => Cond::Eq,
    }
}

/// `a c b` as a condition on swapped operands (`b c' a`).
fn swap_cond(c: Cond) -> Cond {
    match c {
        Cond::Lt => Cond::Gt,
        Cond::Le => Cond::Ge,
        Cond::Gt => Cond::Lt,
        Cond::Ge => Cond::Le,
        Cond::Eq => Cond::Eq,
        Cond::Ne => Cond::Ne,
    }
}

fn commutative(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
    )
}

/// Per-basic-block dataflow facts for the forward simplification pass:
/// which virtual registers hold known constants, and which are verbatim
/// copies of another register. Cleared at every label (unknown incoming
/// edges).
struct BlockState {
    konst: [Option<i32>; 256],
    copy_of: [Option<u8>; 256],
}

impl BlockState {
    fn new() -> BlockState {
        BlockState {
            konst: [None; 256],
            copy_of: [None; 256],
        }
    }

    fn clear(&mut self) {
        self.konst = [None; 256];
        self.copy_of = [None; 256];
    }

    /// The copy-chain root of `v` (chains are kept depth-1).
    fn resolve(&self, v: u8) -> u8 {
        self.copy_of[usize::from(v)].unwrap_or(v)
    }

    fn k(&self, v: u8) -> Option<i32> {
        self.konst[usize::from(v)]
    }

    /// Invalidates every fact involving `d` ahead of its redefinition.
    fn def(&mut self, d: u8) {
        self.konst[usize::from(d)] = None;
        self.copy_of[usize::from(d)] = None;
        for c in self.copy_of.iter_mut() {
            if *c == Some(d) {
                *c = None;
            }
        }
    }

    fn set_const(&mut self, d: u8, v: i32) {
        self.def(d);
        self.konst[usize::from(d)] = Some(v);
    }
}

/// Emits `mov dst, a` (dropping it when it is a self-move) and records
/// the copy fact. `a` must already be copy-resolved.
fn push_mov(out: &mut Vec<POp>, st: &mut BlockState, stats: &mut OptStats, dst: u8, a: u8) {
    let a = st.resolve(a);
    if dst == a {
        stats.moves_removed += 1;
        return;
    }
    let ka = st.k(a);
    st.def(dst);
    st.copy_of[usize::from(dst)] = Some(a);
    st.konst[usize::from(dst)] = ka;
    out.push(POp::Un {
        op: UnOp::Mov,
        dst,
        a,
    });
}

/// Emits `dst = a op imm` after constant folding and identity
/// simplification. `a` must already be copy-resolved.
fn push_binimm(
    out: &mut Vec<POp>,
    st: &mut BlockState,
    stats: &mut OptStats,
    op: BinOp,
    dst: u8,
    a: u8,
    imm: i32,
) {
    if let Some(ka) = st.k(a) {
        if let Some(v) = eval_bin(op, ka, imm) {
            st.set_const(dst, v);
            out.push(POp::Set { dst, imm: v });
            stats.folds += 1;
            return;
        }
        // Known constant divided by zero: keep the trapping instruction.
    }
    let is_identity = matches!(
        (op, imm),
        (
            BinOp::Add | BinOp::Sub | BinOp::Or | BinOp::Xor | BinOp::Lsh | BinOp::Rsh,
            0
        ) | (BinOp::Mul | BinOp::Div, 1)
            | (BinOp::And, -1)
    );
    if is_identity {
        stats.folds += 1;
        push_mov(out, st, stats, dst, a);
        return;
    }
    let absorbed = match (op, imm) {
        (BinOp::Mul | BinOp::And, 0) => Some(0),
        (BinOp::Mod, 1 | -1) => Some(0),
        (BinOp::Or, -1) => Some(-1),
        _ => None,
    };
    if let Some(v) = absorbed {
        stats.folds += 1;
        st.set_const(dst, v);
        out.push(POp::Set { dst, imm: v });
        return;
    }
    st.def(dst);
    out.push(POp::BinImm { op, dst, a, imm });
}

/// Forward constant/copy propagation and algebraic simplification, one
/// basic block at a time. Returns whether anything changed.
fn simplify(ops: &mut Vec<POp>, stats: &mut OptStats) -> bool {
    let mut st = BlockState::new();
    let mut out: Vec<POp> = Vec::with_capacity(ops.len());
    for &op in ops.iter() {
        match op {
            POp::Label { .. } => {
                st.clear();
                out.push(op);
            }
            POp::Set { dst, imm } => {
                if st.k(dst) == Some(imm) {
                    // Re-store of the value the slot already holds.
                    stats.dead_removed += 1;
                } else {
                    st.set_const(dst, imm);
                    out.push(op);
                }
            }
            POp::Un { op, dst, a } => {
                let a = st.resolve(a);
                if matches!(op, UnOp::Mov) {
                    push_mov(&mut out, &mut st, stats, dst, a);
                } else if let Some(ka) = st.k(a) {
                    let v = eval_un(op, ka);
                    st.set_const(dst, v);
                    out.push(POp::Set { dst, imm: v });
                    stats.folds += 1;
                } else {
                    st.def(dst);
                    out.push(POp::Un { op, dst, a });
                }
            }
            POp::Bin { op, dst, a, b } => {
                let (a, b) = (st.resolve(a), st.resolve(b));
                match (st.k(a), st.k(b)) {
                    (Some(ka), Some(kb)) if eval_bin(op, ka, kb).is_some() => {
                        let v = eval_bin(op, ka, kb).expect("checked above");
                        st.set_const(dst, v);
                        out.push(POp::Set { dst, imm: v });
                        stats.folds += 1;
                    }
                    (_, Some(kb)) => push_binimm(&mut out, &mut st, stats, op, dst, a, kb),
                    (Some(ka), None) if commutative(op) => {
                        push_binimm(&mut out, &mut st, stats, op, dst, b, ka)
                    }
                    _ => {
                        st.def(dst);
                        out.push(POp::Bin { op, dst, a, b });
                    }
                }
            }
            POp::BinImm { op, dst, a, imm } => {
                let a = st.resolve(a);
                push_binimm(&mut out, &mut st, stats, op, dst, a, imm);
            }
            POp::Br { cond, a, b, l } => {
                let (a, b) = (st.resolve(a), st.resolve(b));
                match (st.k(a), st.k(b)) {
                    (Some(ka), Some(kb)) => {
                        stats.branches_simplified += 1;
                        if eval_cond(cond, ka, kb) {
                            out.push(POp::Jmp { l });
                        }
                    }
                    (None, Some(kb)) => {
                        stats.branches_simplified += 1;
                        out.push(POp::BrImm {
                            cond,
                            a,
                            imm: kb,
                            l,
                        });
                    }
                    (Some(ka), None) => {
                        stats.branches_simplified += 1;
                        out.push(POp::BrImm {
                            cond: swap_cond(cond),
                            a: b,
                            imm: ka,
                            l,
                        });
                    }
                    (None, None) => out.push(POp::Br { cond, a, b, l }),
                }
            }
            POp::BrImm { cond, a, imm, l } => {
                let a = st.resolve(a);
                if let Some(ka) = st.k(a) {
                    stats.branches_simplified += 1;
                    if eval_cond(cond, ka, imm) {
                        out.push(POp::Jmp { l });
                    }
                } else {
                    out.push(POp::BrImm { cond, a, imm, l });
                }
            }
            POp::Jmp { .. } => out.push(op),
            POp::Ret { src } => out.push(POp::Ret {
                src: st.resolve(src),
            }),
        }
    }
    let changed = out != *ops;
    *ops = out;
    changed
}

fn def_of(op: &POp) -> Option<u8> {
    match *op {
        POp::Set { dst, .. }
        | POp::Bin { dst, .. }
        | POp::BinImm { dst, .. }
        | POp::Un { dst, .. } => Some(dst),
        _ => None,
    }
}

fn reads(op: &POp, v: u8) -> bool {
    match *op {
        POp::Bin { a, b, .. } | POp::Br { a, b, .. } => a == v || b == v,
        POp::BinImm { a, .. } | POp::BrImm { a, .. } | POp::Un { a, .. } => a == v,
        POp::Ret { src } => src == v,
        POp::Set { .. } | POp::Label { .. } | POp::Jmp { .. } => false,
    }
}

/// Whether deleting this definition can never change observable
/// behaviour (no trap it could have raised).
fn trap_free_def(op: &POp) -> bool {
    match *op {
        POp::Set { .. } | POp::Un { .. } => true,
        POp::Bin { op, .. } => !matches!(op, BinOp::Div | BinOp::Mod),
        POp::BinImm { op, imm, .. } => !matches!(op, BinOp::Div | BinOp::Mod) || imm != 0,
        _ => false,
    }
}

/// Dead-definition elimination. Two sound, CFG-free rules: a definition
/// of a register that is never read anywhere in the program, and a
/// definition overwritten later in the same basic block with no
/// intervening read or control flow. Trapping definitions are kept.
fn dce(ops: &mut Vec<POp>, stats: &mut OptStats) -> bool {
    let mut read = [false; 256];
    for op in ops.iter() {
        match *op {
            POp::Bin { a, b, .. } | POp::Br { a, b, .. } => {
                read[usize::from(a)] = true;
                read[usize::from(b)] = true;
            }
            POp::BinImm { a, .. } | POp::BrImm { a, .. } | POp::Un { a, .. } => {
                read[usize::from(a)] = true;
            }
            POp::Ret { src } => read[usize::from(src)] = true,
            POp::Set { .. } | POp::Label { .. } | POp::Jmp { .. } => {}
        }
    }
    let mut keep = vec![true; ops.len()];
    for i in 0..ops.len() {
        let Some(d) = def_of(&ops[i]) else { continue };
        if !trap_free_def(&ops[i]) {
            continue;
        }
        if !read[usize::from(d)] {
            keep[i] = false;
            continue;
        }
        for oj in ops.iter().skip(i + 1) {
            if matches!(
                oj,
                POp::Label { .. }
                    | POp::Br { .. }
                    | POp::BrImm { .. }
                    | POp::Jmp { .. }
                    | POp::Ret { .. }
            ) || reads(oj, d)
            {
                break;
            }
            if def_of(oj) == Some(d) {
                keep[i] = false;
                break;
            }
        }
    }
    let removed = keep.iter().filter(|k| !**k).count();
    if removed == 0 {
        return false;
    }
    stats.dead_removed += removed;
    let mut it = keep.iter();
    ops.retain(|_| *it.next().expect("keep mask matches ops"));
    true
}

/// Branch layout: deletes branches whose target falls through, inverts
/// branch-over-jump diamonds so the hot edge falls through, drops
/// unreachable tails after unconditional transfers, and removes labels
/// nothing references.
fn layout(ops: &mut Vec<POp>, stats: &mut OptStats) -> bool {
    // Last binding wins, matching `Program::interpret`.
    let mut bound: HashMap<u16, usize> = HashMap::new();
    let mut referenced: HashSet<u16> = HashSet::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            POp::Label { l } => {
                bound.insert(l, i);
            }
            POp::Br { l, .. } | POp::BrImm { l, .. } | POp::Jmp { l } => {
                referenced.insert(l);
            }
            _ => {}
        }
    }
    // Whether control at `from` reaches the binding of `l` by falling
    // through nothing but labels.
    let falls_to = |from: usize, l: u16| -> bool {
        match bound.get(&l) {
            Some(&p) if p > from => ops[from + 1..=p]
                .iter()
                .all(|o| matches!(o, POp::Label { .. })),
            _ => false,
        }
    };
    let mut out: Vec<POp> = Vec::with_capacity(ops.len());
    let mut i = 0;
    while i < ops.len() {
        let op = ops[i];
        match op {
            POp::Label { l } => {
                if referenced.contains(&l) {
                    out.push(op);
                }
                i += 1;
            }
            POp::Jmp { l } if falls_to(i, l) => {
                stats.branches_simplified += 1;
                i += 1;
            }
            POp::Jmp { .. } | POp::Ret { .. } => {
                out.push(op);
                i += 1;
                // Unreachable until the next label.
                while i < ops.len() && !matches!(ops[i], POp::Label { .. }) {
                    if !matches!(ops[i], POp::Label { .. }) {
                        stats.dead_removed += 1;
                    }
                    i += 1;
                }
            }
            POp::Br { l, .. } | POp::BrImm { l, .. } if falls_to(i, l) => {
                // Both outcomes land on the same instruction; comparisons
                // cannot trap, so the branch is a no-op.
                stats.branches_simplified += 1;
                i += 1;
            }
            POp::Br { cond, a, b, l } => {
                if let Some(POp::Jmp { l: l2 }) = ops.get(i + 1).copied() {
                    if falls_to(i + 1, l) {
                        out.push(POp::Br {
                            cond: invert_cond(cond),
                            a,
                            b,
                            l: l2,
                        });
                        stats.branches_simplified += 1;
                        i += 2;
                        continue;
                    }
                }
                out.push(op);
                i += 1;
            }
            POp::BrImm { cond, a, imm, l } => {
                if let Some(POp::Jmp { l: l2 }) = ops.get(i + 1).copied() {
                    if falls_to(i + 1, l) {
                        out.push(POp::BrImm {
                            cond: invert_cond(cond),
                            a,
                            imm,
                            l: l2,
                        });
                        stats.branches_simplified += 1;
                        i += 2;
                        continue;
                    }
                }
                out.push(op);
                i += 1;
            }
            _ => {
                out.push(op);
                i += 1;
            }
        }
    }
    let changed = out != *ops;
    *ops = out;
    changed
}

/// Runs the tier-2 peephole pipeline (constant/copy propagation,
/// dead-definition elimination, branch layout) to a fixpoint and returns
/// the optimized program with what was done.
///
/// The result is semantically identical to the input under
/// [`Program::interpret`]'s word-portable semantics, including *where*
/// it traps: division by a value not provably nonzero is never deleted
/// or folded.
pub fn optimize(prog: &Program) -> (Program, OptStats) {
    let mut ops: Vec<POp> = prog.ops().to_vec();
    let mut stats = OptStats {
        insns_in: count_exec(&ops),
        ..OptStats::default()
    };
    for _ in 0..MAX_PASSES {
        let mut changed = simplify(&mut ops, &mut stats);
        changed |= dce(&mut ops, &mut stats);
        changed |= layout(&mut ops, &mut stats);
        if !changed {
            break;
        }
    }
    stats.insns_out = count_exec(&ops);
    obs::note_tier2_optimized(stats.insns_in as u64, stats.insns_out as u64);
    let mut out = Program::new(prog.args()).expect("arity was already validated");
    for _ in 0..prog.labels() {
        out.genlabel();
    }
    for &op in &ops {
        match op {
            POp::Set { dst, imm } => out.set(dst, imm),
            POp::Bin { op, dst, a, b } => out.bin(op, dst, a, b),
            POp::BinImm { op, dst, a, imm } => out.bin_imm(op, dst, a, imm),
            POp::Un { op, dst, a } => out.un(op, dst, a),
            POp::Label { l } => out.label(l),
            POp::Br { cond, a, b, l } => out.br(cond, a, b, l),
            POp::BrImm { cond, a, imm, l } => out.br_imm(cond, a, imm, l),
            POp::Jmp { l } => out.jmp(l),
            POp::Ret { src } => out.ret(src),
        }
    }
    (out, stats)
}

/// Live intervals for every virtual register of `prog`, from a linear
/// scan of the stream with backward branches extending every interval
/// they span (see [`LiveIntervals`]). Argument registers are live from
/// entry.
fn intervals(prog: &Program) -> LiveIntervals {
    let ops = prog.ops();
    let mut iv = LiveIntervals::new(256);
    for v in 0..prog.args() {
        iv.mention(v, 0);
    }
    let mention = |iv: &mut LiveIntervals, v: u8, pos: usize| {
        iv.mention(usize::from(v), pos as u32);
    };
    for (i, op) in ops.iter().enumerate() {
        match *op {
            POp::Set { dst, .. } => mention(&mut iv, dst, i),
            POp::Bin { dst, a, b, .. } => {
                mention(&mut iv, a, i);
                mention(&mut iv, b, i);
                mention(&mut iv, dst, i);
            }
            POp::BinImm { dst, a, .. } | POp::Un { dst, a, .. } => {
                mention(&mut iv, a, i);
                mention(&mut iv, dst, i);
            }
            POp::Br { a, b, .. } => {
                mention(&mut iv, a, i);
                mention(&mut iv, b, i);
            }
            POp::BrImm { a, .. } => mention(&mut iv, a, i),
            POp::Ret { src } => mention(&mut iv, src, i),
            POp::Label { .. } | POp::Jmp { .. } => {}
        }
    }
    // Backward edges, in ascending branch position (one pass reaches the
    // fixpoint — see LiveIntervals::extend_loop).
    let mut bound: HashMap<u16, usize> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        if let POp::Label { l } = *op {
            bound.insert(l, i);
        }
    }
    for (i, op) in ops.iter().enumerate() {
        if let POp::Br { l, .. } | POp::BrImm { l, .. } | POp::Jmp { l } = *op {
            if let Some(&p) = bound.get(&l) {
                if p <= i {
                    iv.extend_loop(p as u32, i as u32);
                }
            }
        }
    }
    iv
}

/// Replays a recorded [`Program`] with **linear-scan register
/// allocation**: each virtual register holds a physical register only
/// for its live interval, and registers are returned to the allocator at
/// last use — so register pressure is the stream's *simultaneous* live
/// count, not its total vreg count.
///
/// This is the tier-2 counterpart of [`replay`](crate::engine::replay);
/// run [`optimize`] first for the full pipeline (the [`Backend::
/// compile_tier2`](crate::engine::Backend::compile_tier2) adapters do).
///
/// # Errors
///
/// Typed [`EngineError`], as [`replay`](crate::engine::replay) — but
/// `TooManyTemps` only when true pressure exceeds the register file.
pub fn replay_opt<T: Target>(prog: &Program, mem: &mut [u8]) -> Result<Finished, EngineError> {
    let sig = Sig::new(vec![Ty::I; prog.args()], Ty::I);
    let mut a = Assembler::<T>::lambda_sig(mem, sig, Leaf::Yes)?;
    let ops = prog.ops();
    let iv = intervals(prog);
    // Registers to free after each position: one bucket per op.
    let mut ends: Vec<Vec<u8>> = vec![Vec::new(); ops.len()];
    for slot in 0..iv.slots() {
        if let Some(r) = iv.get(slot) {
            let pos = (r.end as usize).min(ops.len().saturating_sub(1));
            if !ops.is_empty() {
                ends[pos].push(slot as u8);
            }
        }
    }
    let mut phys: Vec<Option<Reg>> = vec![None; 256];
    for (v, &r) in a.args().iter().enumerate() {
        phys[v] = Some(r);
    }
    let mut labels: Vec<Label> = (0..prog.labels()).map(|_| a.genlabel()).collect();
    fn lab<T: Target>(a: &mut Assembler<'_, T>, labels: &mut Vec<Label>, l: u16) -> Label {
        while labels.len() <= usize::from(l) {
            let fresh = a.genlabel();
            labels.push(fresh);
        }
        labels[usize::from(l)]
    }
    fn ensure<T: Target>(
        a: &mut Assembler<'_, T>,
        phys: &mut [Option<Reg>],
        v: u8,
    ) -> Result<Reg, EngineError> {
        match phys[usize::from(v)] {
            Some(r) => Ok(r),
            None => match a.getreg(RegClass::Temp) {
                Some(r) => {
                    phys[usize::from(v)] = Some(r);
                    Ok(r)
                }
                None => Err(EngineError::TooManyTemps { vreg: v }),
            },
        }
    }
    for (i, op) in ops.iter().enumerate() {
        match *op {
            POp::Set { dst, imm } => {
                let d = ensure(&mut a, &mut phys, dst)?;
                a.seti(d, imm);
            }
            POp::Bin { op, dst, a: x, b } => {
                let rx = ensure(&mut a, &mut phys, x)?;
                let rb = ensure(&mut a, &mut phys, b)?;
                let d = ensure(&mut a, &mut phys, dst)?;
                match op {
                    BinOp::Add => a.addi(d, rx, rb),
                    BinOp::Sub => a.subi(d, rx, rb),
                    BinOp::Mul => a.muli(d, rx, rb),
                    BinOp::Div => a.divi(d, rx, rb),
                    BinOp::Mod => a.modi(d, rx, rb),
                    BinOp::And => a.andi(d, rx, rb),
                    BinOp::Or => a.ori(d, rx, rb),
                    BinOp::Xor => a.xori(d, rx, rb),
                    BinOp::Lsh => a.lshi(d, rx, rb),
                    BinOp::Rsh => a.rshi(d, rx, rb),
                }
            }
            POp::BinImm { op, dst, a: x, imm } => {
                let rx = ensure(&mut a, &mut phys, x)?;
                let d = ensure(&mut a, &mut phys, dst)?;
                let imm = i64::from(imm);
                match op {
                    BinOp::Add => a.addii(d, rx, imm),
                    BinOp::Sub => a.subii(d, rx, imm),
                    BinOp::Mul => a.mulii(d, rx, imm),
                    BinOp::Div => a.divii(d, rx, imm),
                    BinOp::Mod => a.modii(d, rx, imm),
                    BinOp::And => a.andii(d, rx, imm),
                    BinOp::Or => a.orii(d, rx, imm),
                    BinOp::Xor => a.xorii(d, rx, imm),
                    BinOp::Lsh => a.lshii(d, rx, imm),
                    BinOp::Rsh => a.rshii(d, rx, imm),
                }
            }
            POp::Un { op, dst, a: x } => {
                let rx = ensure(&mut a, &mut phys, x)?;
                let d = ensure(&mut a, &mut phys, dst)?;
                match op {
                    UnOp::Com => a.comi(d, rx),
                    UnOp::Not => a.noti(d, rx),
                    UnOp::Mov => a.movi(d, rx),
                    UnOp::Neg => a.negi(d, rx),
                }
            }
            POp::Label { l } => {
                let lbl = lab(&mut a, &mut labels, l);
                a.label(lbl);
            }
            POp::Br { cond, a: x, b, l } => {
                let rx = ensure(&mut a, &mut phys, x)?;
                let rb = ensure(&mut a, &mut phys, b)?;
                let lbl = lab(&mut a, &mut labels, l);
                match cond {
                    Cond::Lt => a.blti(rx, rb, lbl),
                    Cond::Le => a.blei(rx, rb, lbl),
                    Cond::Gt => a.bgti(rx, rb, lbl),
                    Cond::Ge => a.bgei(rx, rb, lbl),
                    Cond::Eq => a.beqi(rx, rb, lbl),
                    Cond::Ne => a.bnei(rx, rb, lbl),
                }
            }
            POp::BrImm { cond, a: x, imm, l } => {
                let rx = ensure(&mut a, &mut phys, x)?;
                let lbl = lab(&mut a, &mut labels, l);
                let imm = i64::from(imm);
                match cond {
                    Cond::Lt => a.bltii(rx, imm, lbl),
                    Cond::Le => a.bleii(rx, imm, lbl),
                    Cond::Gt => a.bgtii(rx, imm, lbl),
                    Cond::Ge => a.bgeii(rx, imm, lbl),
                    Cond::Eq => a.beqii(rx, imm, lbl),
                    Cond::Ne => a.bneii(rx, imm, lbl),
                }
            }
            POp::Jmp { l } => {
                let lbl = lab(&mut a, &mut labels, l);
                a.jmp(lbl);
            }
            POp::Ret { src } => {
                let r = ensure(&mut a, &mut phys, src)?;
                a.reti(r);
            }
        }
        // Linear scan: every interval ending here returns its register.
        for &v in &ends[i] {
            if let Some(r) = phys[usize::from(v)].take() {
                a.putreg(r);
            }
        }
    }
    a.end().map_err(EngineError::Codegen)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::replay;
    use crate::fake::FakeTarget;

    /// Interpret original and optimized on the same inputs; both sides
    /// must agree result-for-result and error-for-error.
    fn assert_equiv(p: &Program, cases: &[&[i32]]) {
        let (q, _) = optimize(p);
        for args in cases {
            let want = p.interpret(args, 1_000_000);
            let got = q.interpret(args, 1_000_000);
            match (&want, &got) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "args {args:?}"),
                (Err(_), Err(_)) => {}
                _ => panic!("divergence on {args:?}: {want:?} vs {got:?}"),
            }
        }
    }

    #[test]
    fn self_moves_and_move_chains_collapse() {
        let mut p = Program::new(1).unwrap();
        p.un(UnOp::Mov, 1, 0); // v1 = v0
        p.un(UnOp::Mov, 2, 1); // v2 = v1  (chain)
        p.un(UnOp::Mov, 2, 2); // self-move
        p.bin_imm(BinOp::Add, 3, 2, 5);
        p.ret(3);
        let (q, stats) = optimize(&p);
        // The chain rewrites each mov to read v0, so the copies die as
        // dead stores (or as self-moves when dst already equals the root).
        assert!(stats.moves_removed + stats.dead_removed >= 3, "{stats:?}");
        // The chain is collapsed and the dead movs eliminated: the add
        // reads v0 directly.
        assert!(
            q.ops()
                .iter()
                .any(|o| matches!(o, POp::BinImm { a: 0, .. })),
            "{:?}",
            q.ops()
        );
        assert!(q.len() < p.len());
        assert_equiv(&p, &[&[7], &[-3], &[0]]);
    }

    #[test]
    fn identities_fold_to_moves_and_constants() {
        let mut p = Program::new(1).unwrap();
        p.bin_imm(BinOp::Add, 1, 0, 0); // v1 = v0 + 0  -> mov
        p.bin_imm(BinOp::Mul, 2, 1, 1); // v2 = v1 * 1  -> mov
        p.bin_imm(BinOp::And, 3, 2, -1); // v3 = v2 & -1 -> mov
        p.bin_imm(BinOp::Mul, 4, 3, 0); // v4 = v3 * 0  -> 0
        p.bin(BinOp::Add, 5, 3, 4); // v5 = v3 + 0  -> mov (v4 known 0)
        p.ret(5);
        let (q, stats) = optimize(&p);
        assert!(stats.folds >= 4, "{stats:?}");
        // Everything collapses to `ret v0`.
        assert_eq!(q.ops(), &[POp::Ret { src: 0 }], "{:?}", q.ops());
        assert_equiv(&p, &[&[11], &[-11], &[0]]);
    }

    #[test]
    fn constant_chains_fold_and_known_branches_resolve() {
        let mut p = Program::new(0).unwrap();
        let skip = p.genlabel();
        p.set(0, 6);
        p.bin_imm(BinOp::Mul, 0, 0, 7); // 42, folded
        p.br_imm(Cond::Eq, 0, 42, skip); // always taken
        p.set(1, 99); // unreachable
        p.label(skip);
        p.ret(0);
        let (q, stats) = optimize(&p);
        assert!(
            stats.folds >= 1 && stats.branches_simplified >= 1,
            "{stats:?}"
        );
        // Folds to set 42; ret.
        assert_eq!(
            q.ops(),
            &[POp::Set { dst: 0, imm: 42 }, POp::Ret { src: 0 }],
            "{:?}",
            q.ops()
        );
        assert_equiv(&p, &[&[]]);
    }

    #[test]
    fn dead_and_overwritten_stores_are_removed() {
        let mut p = Program::new(1).unwrap();
        p.set(1, 1); // overwritten below before any read
        p.set(1, 2);
        p.set(2, 3); // never read anywhere
        p.bin(BinOp::Add, 3, 0, 1);
        p.ret(3);
        let (q, stats) = optimize(&p);
        assert!(stats.dead_removed >= 2, "{stats:?}");
        assert!(q.len() < p.len());
        assert_equiv(&p, &[&[5], &[0]]);
    }

    #[test]
    fn traps_are_never_folded_away() {
        // Constant division by zero must survive as a runtime fault.
        let mut p = Program::new(0).unwrap();
        p.set(0, 7);
        p.bin_imm(BinOp::Div, 1, 0, 0);
        p.ret(1);
        let (q, _) = optimize(&p);
        assert!(
            q.ops()
                .iter()
                .any(|o| matches!(o, POp::BinImm { op: BinOp::Div, .. })),
            "{:?}",
            q.ops()
        );
        assert!(q.interpret(&[], 100).is_err());
        // A dead division with an unknown divisor is also kept.
        let mut p = Program::new(2).unwrap();
        p.bin(BinOp::Div, 2, 0, 1); // v2 never read, but may trap
        p.set(3, 1);
        p.ret(3);
        let (q, _) = optimize(&p);
        assert!(
            q.ops()
                .iter()
                .any(|o| matches!(o, POp::Bin { op: BinOp::Div, .. })),
            "{:?}",
            q.ops()
        );
        assert!(q.interpret(&[1, 0], 100).is_err());
        assert_eq!(q.interpret(&[1, 1], 100).unwrap(), 1);
    }

    #[test]
    fn jump_to_next_and_branch_over_jump_are_simplified() {
        let mut p = Program::new(2).unwrap();
        let next = p.genlabel();
        let exit = p.genlabel();
        p.jmp(next); // jump to fall-through
        p.label(next);
        let other = p.genlabel();
        p.br(Cond::Lt, 0, 1, other); // branch over jump
        p.jmp(exit);
        p.label(other);
        p.bin(BinOp::Add, 0, 0, 1);
        p.label(exit);
        p.ret(0);
        let (q, stats) = optimize(&p);
        assert!(stats.branches_simplified >= 2, "{stats:?}");
        assert!(
            !q.ops().iter().any(|o| matches!(o, POp::Jmp { .. })),
            "{:?}",
            q.ops()
        );
        // The surviving branch is inverted to jump to exit.
        assert!(
            q.ops()
                .iter()
                .any(|o| matches!(o, POp::Br { cond: Cond::Ge, .. })),
            "{:?}",
            q.ops()
        );
        assert_equiv(&p, &[&[1, 2], &[2, 1], &[0, 0]]);
    }

    #[test]
    fn loops_are_preserved_bit_for_bit() {
        // sum = 0; for (i = n; i > 0; i--) sum += i*i; return sum
        let mut p = Program::new(1).unwrap();
        let top = p.genlabel();
        let done = p.genlabel();
        p.set(1, 0); // sum
        p.un(UnOp::Mov, 2, 0); // i = n
        p.label(top);
        p.br_imm(Cond::Le, 2, 0, done);
        p.bin(BinOp::Mul, 3, 2, 2);
        p.bin(BinOp::Add, 1, 1, 3);
        p.bin_imm(BinOp::Sub, 2, 2, 1);
        p.jmp(top);
        p.label(done);
        p.ret(1);
        assert_equiv(&p, &[&[0], &[1], &[10], &[-5]]);
    }

    #[test]
    fn linear_scan_survives_pressure_that_pins_tier1() {
        // Forty short-lived temporaries: pinned allocation exhausts
        // FakeTarget's register file, linear scan tops out at pressure 3.
        let mut p = Program::new(1).unwrap();
        let acc = 1u8;
        p.set(acc, 0);
        for k in 0..40u8 {
            let t = 2 + k;
            p.bin_imm(BinOp::Add, t, 0, i32::from(k));
            p.bin(BinOp::Xor, acc, acc, t);
        }
        p.ret(acc);
        let mut mem = vec![0u8; p.code_capacity()];
        assert!(matches!(
            replay::<FakeTarget>(&p, &mut mem),
            Err(EngineError::TooManyTemps { .. })
        ));
        let iv = intervals(&p);
        assert!(iv.max_pressure() <= 4, "pressure {}", iv.max_pressure());
        let fin = replay_opt::<FakeTarget>(&p, &mut mem).unwrap();
        assert!(fin.len > 0);
    }

    #[test]
    fn optimized_replay_emits_fewer_instructions() {
        // A move/identity-heavy stream: tier-2 output must be strictly
        // smaller through the same emission path.
        let mut p = Program::new(2).unwrap();
        p.un(UnOp::Mov, 2, 0);
        p.un(UnOp::Mov, 3, 2);
        p.bin_imm(BinOp::Add, 3, 3, 0);
        p.bin_imm(BinOp::Mul, 3, 3, 1);
        p.bin(BinOp::Add, 4, 3, 1);
        p.un(UnOp::Mov, 5, 4);
        p.ret(5);
        let mut m1 = vec![0u8; p.code_capacity()];
        let f1 = replay::<FakeTarget>(&p, &mut m1).unwrap();
        let (q, stats) = optimize(&p);
        let mut m2 = vec![0u8; q.code_capacity()];
        let f2 = replay_opt::<FakeTarget>(&q, &mut m2).unwrap();
        assert!(
            f2.insns < f1.insns,
            "tier-2 {} insns vs tier-1 {} ({stats:?})",
            f2.insns,
            f1.insns
        );
        assert_equiv(&p, &[&[3, 4], &[-1, 1]]);
    }

    #[test]
    fn duplicate_label_bindings_follow_interpreter_semantics() {
        // interpret() resolves a label to its *last* binding; the layout
        // pass must agree and not delete a "jump to next" that actually
        // targets a later duplicate.
        let mut p = Program::new(0).unwrap();
        let l = p.genlabel();
        p.set(0, 1);
        p.jmp(l);
        p.label(l); // first binding (shadowed)
        p.set(0, 2);
        p.label(l); // last binding wins
        p.ret(0);
        assert_equiv(&p, &[&[]]);
    }
}
