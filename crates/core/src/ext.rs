//! Extension layers built on the VCODE core (paper §3.1, §5.4).
//!
//! The VCODE instruction set is a single *core* layer, retargeted per
//! machine, plus *extension* layers built on top. Extensions provide
//! functionality less general than the core (byte swapping, square root,
//! conditional moves, strength-reduced multiplication by runtime
//! constants). For porting convenience each extension has a portable
//! default expressed in terms of the core itself — once the core has been
//! retargeted, every extension works on the new machine. For efficiency a
//! backend may override an extension with hardware resources through
//! [`Target::emit_ext_unop`].
//!
//! [`Target::emit_ext_unop`]: crate::target::Target::emit_ext_unop
//!
//! The synthesized sequences need scratch registers; in keeping with
//! VCODE's low-level philosophy the *client* supplies them (it knows which
//! registers are dead), rather than the extension hiding an allocator
//! call in the hot path.

use crate::asm::Assembler;
use crate::reg::Reg;
use crate::target::Target;
use crate::ty::Ty;

/// Unary extension operations a backend may implement natively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExtUnOp {
    /// Square root (`f`, `d`).
    Sqrt,
    /// Byte swap (`us`: 2 bytes, `u`: 4 bytes, `ul`: 8 bytes).
    Bswap,
    /// Absolute value (`i`, `l`).
    Abs,
}

impl<'m, T: Target> Assembler<'m, T> {
    /// Square root, double precision. Falls back to five
    /// Newton–Raphson iterations seeded with the argument when the
    /// target has no hardware square root.
    ///
    /// `t` is a floating-point scratch register.
    pub fn sqrtd(&mut self, rd: Reg, rs: Reg, t: Reg) {
        if T::emit_ext_unop(self.raw(), ExtUnOp::Sqrt, Ty::D, rd, rs) {
            return;
        }
        // x' = (x + v/x) / 2, repeated. Converges quadratically; for the
        // paper-era use cases (graphics, DSP kernels) ~20 iterations give
        // full double precision from a crude seed.
        self.movd(rd, rs);
        self.setd(t, 0.5);
        self.muld(rd, rd, t); // seed: v / 2
        for _ in 0..20 {
            self.divd(t, rs, rd);
            self.addd(rd, rd, t);
            self.setd(t, 0.5);
            self.muld(rd, rd, t);
        }
    }

    /// Byte swap of the low 16 bits (`us`), e.g. for `ntohs`.
    ///
    /// `t` is an integer scratch register.
    pub fn bswapus(&mut self, rd: Reg, rs: Reg, t: Reg) {
        if T::emit_ext_unop(self.raw(), ExtUnOp::Bswap, Ty::Us, rd, rs) {
            return;
        }
        // rd = ((rs >> 8) & 0xff) | ((rs & 0xff) << 8)
        self.rshui(t, rs, 8);
        self.andui(t, t, 0xff);
        self.andui(rd, rs, 0xff);
        self.lshui(rd, rd, 8);
        self.oru(rd, rd, t);
    }

    /// Byte swap of a 32-bit value (`u`), e.g. for `ntohl`.
    ///
    /// `t1`/`t2` are integer scratch registers; `rd` must differ from
    /// `rs`.
    pub fn bswapu(&mut self, rd: Reg, rs: Reg, t1: Reg, t2: Reg) {
        if T::emit_ext_unop(self.raw(), ExtUnOp::Bswap, Ty::U, rd, rs) {
            return;
        }
        debug_assert_ne!(rd, rs, "synthesized bswapu needs rd != rs");
        self.rshui(rd, rs, 24); // byte 3 -> 0
        self.rshui(t1, rs, 8); // byte 2 -> 1
        self.andui(t1, t1, 0xff00);
        self.oru(rd, rd, t1);
        self.lshui(t2, rs, 8); // byte 1 -> 2
        self.andui(t2, t2, 0xff_0000);
        self.oru(rd, rd, t2);
        self.lshui(t1, rs, 24); // byte 0 -> 3
        self.oru(rd, rd, t1);
    }

    /// Absolute value of an `int`.
    ///
    /// `t` is an integer scratch register. Uses the branch-free
    /// sign-mask idiom: `m = x >> 31; |x| = (x ^ m) - m`.
    pub fn absi(&mut self, rd: Reg, rs: Reg, t: Reg) {
        if T::emit_ext_unop(self.raw(), ExtUnOp::Abs, Ty::I, rd, rs) {
            return;
        }
        self.rshii(t, rs, 31);
        self.xori(rd, rs, t);
        self.subi(rd, rd, t);
    }

    /// `rd = min(rs1, rs2)` over signed ints, synthesized with a branch.
    pub fn mini(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        let done = self.genlabel();
        self.movi(rd, rs1);
        self.blei(rs1, rs2, done);
        self.movi(rd, rs2);
        self.label(done);
    }

    /// `rd = max(rs1, rs2)` over signed ints, synthesized with a branch.
    pub fn maxi(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        let done = self.genlabel();
        self.movi(rd, rs1);
        self.bgei(rs1, rs2, done);
        self.movi(rd, rs2);
        self.label(done);
    }

    /// Conditional move: `if (cc != 0) rd = rs`, synthesized with a
    /// branch around a register move.
    pub fn cmovnei(&mut self, rd: Reg, rs: Reg, cc: Reg) {
        let skip = self.genlabel();
        self.beqii(cc, 0, skip);
        self.movi(rd, rs);
        self.label(skip);
    }

    /// Strength-reduced multiplication by a constant known at code
    /// generation time (paper §5.4: "we have built a sophisticated
    /// strength reducer for multiplication and division by integer
    /// constants on top of VCODE").
    ///
    /// Powers of two become shifts, `2^k ± 2^j` becomes two shifts and an
    /// add/sub through the scratch register `t`, everything else falls
    /// back to `mulii`. `rd` may equal `rs`.
    pub fn muli_const(&mut self, rd: Reg, rs: Reg, c: i32, t: Reg) {
        match c {
            0 => self.seti(rd, 0),
            1 => self.movi(rd, rs),
            -1 => self.negi(rd, rs),
            _ => {
                let m = c.unsigned_abs();
                if m.is_power_of_two() {
                    self.lshii(rd, rs, m.trailing_zeros() as i64);
                } else if (m + 1).is_power_of_two() {
                    // 2^k - 1: shift and subtract.
                    self.lshii(t, rs, (m + 1).trailing_zeros() as i64);
                    self.subi(rd, t, rs);
                } else if let Some((hi, lo)) = two_bit_decomposition(m) {
                    self.lshii(t, rs, hi as i64);
                    if lo == 0 {
                        self.addi(rd, t, rs);
                    } else {
                        self.lshii(rd, rs, lo as i64);
                        self.addi(rd, rd, t);
                    }
                } else {
                    self.mulii(rd, rs, m as i64);
                }
                if c < 0 {
                    self.negi(rd, rd);
                }
            }
        }
    }

    /// Strength-reduced signed division by a constant power of two,
    /// with the usual rounding-toward-zero fixup; other divisors fall
    /// back to `divii`. `t` is scratch; `rd` may equal `rs`.
    pub fn divi_const(&mut self, rd: Reg, rs: Reg, c: i32, t: Reg) {
        match c {
            1 => self.movi(rd, rs),
            -1 => self.negi(rd, rs),
            _ if c != 0 && c.unsigned_abs().is_power_of_two() => {
                let k = c.unsigned_abs().trailing_zeros();
                // t = rs < 0 ? rs + (2^k - 1) : rs, then arithmetic shift.
                self.rshii(t, rs, 31);
                self.rshui(t, t, 32 - k as i64);
                self.addi(t, rs, t);
                self.rshii(rd, t, k as i64);
                if c < 0 {
                    self.negi(rd, rd);
                }
            }
            _ => self.divii(rd, rs, c as i64),
        }
    }
}

/// Decomposes `m` into `2^hi + 2^lo` if it has exactly two set bits
/// (`lo` may be 0, i.e. `2^hi + 1`).
fn two_bit_decomposition(m: u32) -> Option<(u32, u32)> {
    if m.count_ones() == 2 {
        let lo = m.trailing_zeros();
        let hi = 31 - m.leading_zeros();
        Some((hi, lo))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fake::FakeTarget;
    use crate::target::Leaf;

    fn count_insns(build: impl FnOnce(&mut Assembler<'_, FakeTarget>)) -> u64 {
        let mut mem = vec![0u8; 4096];
        let mut a = Assembler::<FakeTarget>::lambda(&mut mem, "%i", Leaf::Yes).unwrap();
        let before = a.insn_count();
        build(&mut a);
        a.insn_count() - before
    }

    #[test]
    fn two_bit_decomposition_finds_pairs() {
        assert_eq!(two_bit_decomposition(5), Some((2, 0)));
        assert_eq!(two_bit_decomposition(10), Some((3, 1)));
        assert_eq!(two_bit_decomposition(8), None);
        assert_eq!(two_bit_decomposition(7), None);
    }

    #[test]
    fn mul_by_power_of_two_is_one_shift() {
        let n = count_insns(|a| {
            let x = a.arg(0);
            let t = a.getreg(crate::RegClass::Temp).unwrap();
            a.muli_const(x, x, 8, t);
        });
        assert_eq!(n, 1);
    }

    #[test]
    fn mul_by_zero_one_minus_one() {
        for (c, expect) in [(0, 1u64), (1, 1), (-1, 1)] {
            let n = count_insns(|a| {
                let x = a.arg(0);
                let t = a.getreg(crate::RegClass::Temp).unwrap();
                a.muli_const(x, x, c, t);
            });
            assert_eq!(n, expect, "c = {c}");
        }
    }

    #[test]
    fn mul_by_ten_avoids_multiply() {
        // 10 = 8 + 2: two shifts + add = 3 instructions.
        let n = count_insns(|a| {
            let x = a.arg(0);
            let t = a.getreg(crate::RegClass::Temp).unwrap();
            a.muli_const(x, x, 10, t);
        });
        assert_eq!(n, 3);
    }

    #[test]
    fn mul_by_large_prime_falls_back() {
        let n = count_insns(|a| {
            let x = a.arg(0);
            let t = a.getreg(crate::RegClass::Temp).unwrap();
            a.muli_const(x, x, 97, t);
        });
        assert_eq!(n, 1, "single mulii fallback");
    }

    #[test]
    fn synthesized_extensions_emit_core_instructions() {
        // FakeTarget has no native extensions: everything must expand.
        let n = count_insns(|a| {
            let x = a.arg(0);
            let t = a.getreg(crate::RegClass::Temp).unwrap();
            a.absi(x, x, t);
        });
        assert_eq!(n, 3, "abs = shift, xor, sub");
        let n = count_insns(|a| {
            let x = a.arg(0);
            let t = a.getreg(crate::RegClass::Temp).unwrap();
            a.bswapus(x, x, t);
        });
        assert_eq!(n, 5);
    }

    #[test]
    fn min_max_emit_branches_that_link() {
        let mut mem = vec![0u8; 4096];
        let mut a = Assembler::<FakeTarget>::lambda(&mut mem, "%i%i", Leaf::Yes).unwrap();
        let (x, y) = (a.arg(0), a.arg(1));
        let r = a.getreg(crate::RegClass::Temp).unwrap();
        a.mini(r, x, y);
        a.maxi(r, x, y);
        a.reti(r);
        a.end().expect("labels all bound");
    }
}
