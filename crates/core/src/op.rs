//! Operation kinds of the VCODE core instruction set (paper Table 2).

use crate::ty::Ty;
use std::fmt;

/// Standard binary operations `(rd, rs1, rs2)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition (`i u l ul p f d`).
    Add,
    /// Subtraction (`i u l ul p f d`).
    Sub,
    /// Multiplication (`i u l ul f d`).
    Mul,
    /// Division (`i u l ul f d`).
    Div,
    /// Modulus (`i u l ul`).
    Mod,
    /// Logical and (`i u l ul`).
    And,
    /// Logical or (`i u l ul`).
    Or,
    /// Logical xor (`i u l ul`).
    Xor,
    /// Left shift (`i u l ul`).
    Lsh,
    /// Right shift; the sign bit is propagated for signed types
    /// (`i u l ul`).
    Rsh,
}

impl BinOp {
    /// The paper's base instruction name.
    pub fn name(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Mod => "mod",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Lsh => "lsh",
            BinOp::Rsh => "rsh",
        }
    }

    /// `true` when `a op b == b op a`, which backends exploit when mapping
    /// onto two-address machines.
    pub fn commutes(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }

    /// `true` if this operation accepts operands of type `ty` in the core
    /// instruction set.
    pub fn accepts(self, ty: Ty) -> bool {
        match self {
            BinOp::Add | BinOp::Sub => {
                matches!(ty, Ty::I | Ty::U | Ty::L | Ty::Ul | Ty::P | Ty::F | Ty::D)
            }
            BinOp::Mul | BinOp::Div => {
                matches!(ty, Ty::I | Ty::U | Ty::L | Ty::Ul | Ty::F | Ty::D)
            }
            BinOp::Mod | BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Lsh | BinOp::Rsh => {
                matches!(ty, Ty::I | Ty::U | Ty::L | Ty::Ul)
            }
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Standard unary operations `(rd, rs)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Bit complement (`i u l ul`).
    Com,
    /// Logical not (`i u l ul`).
    Not,
    /// Copy `rs` to `rd` (`i u l ul p f d`).
    Mov,
    /// Negation (`i u l ul f d`).
    Neg,
}

impl UnOp {
    /// The paper's base instruction name.
    pub fn name(self) -> &'static str {
        match self {
            UnOp::Com => "com",
            UnOp::Not => "not",
            UnOp::Mov => "mov",
            UnOp::Neg => "neg",
        }
    }

    /// `true` if this operation accepts operands of type `ty`.
    pub fn accepts(self, ty: Ty) -> bool {
        match self {
            UnOp::Com | UnOp::Not => matches!(ty, Ty::I | Ty::U | Ty::L | Ty::Ul),
            UnOp::Mov => matches!(ty, Ty::I | Ty::U | Ty::L | Ty::Ul | Ty::P | Ty::F | Ty::D),
            UnOp::Neg => matches!(ty, Ty::I | Ty::U | Ty::L | Ty::Ul | Ty::F | Ty::D),
        }
    }
}

impl fmt::Display for UnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Branch conditions `(rs1, rs2, label)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Branch if less than.
    Lt,
    /// Branch if less than or equal.
    Le,
    /// Branch if greater than.
    Gt,
    /// Branch if greater than or equal.
    Ge,
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
}

impl Cond {
    /// The paper's instruction name (`blt`, `ble`, ...).
    pub fn name(self) -> &'static str {
        match self {
            Cond::Lt => "blt",
            Cond::Le => "ble",
            Cond::Gt => "bgt",
            Cond::Ge => "bge",
            Cond::Eq => "beq",
            Cond::Ne => "bne",
        }
    }

    /// The condition with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> Cond {
        match self {
            Cond::Lt => Cond::Gt,
            Cond::Le => Cond::Ge,
            Cond::Gt => Cond::Lt,
            Cond::Ge => Cond::Le,
            Cond::Eq => Cond::Eq,
            Cond::Ne => Cond::Ne,
        }
    }

    /// The logical negation of the condition.
    pub fn negated(self) -> Cond {
        match self {
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
        }
    }

    /// Evaluates the condition over two signed values (reference
    /// semantics used by tests and simulators).
    pub fn eval_signed(self, a: i64, b: i64) -> bool {
        match self {
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
            Cond::Eq => a == b,
            Cond::Ne => a != b,
        }
    }

    /// Evaluates the condition over two unsigned values.
    pub fn eval_unsigned(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Lt => a < b,
            Cond::Le => a <= b,
            Cond::Gt => a > b,
            Cond::Ge => a >= b,
            Cond::Eq => a == b,
            Cond::Ne => a != b,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An immediate operand for `set` (load constant into a register).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Imm {
    /// Integer/pointer immediate (sign bits are interpreted per type).
    Int(i64),
    /// Single-precision immediate; backends place these in the literal
    /// pool at the end of the function's instruction stream (paper §5.2).
    F32(f32),
    /// Double-precision immediate (literal pool).
    F64(f64),
}

impl From<i64> for Imm {
    fn from(v: i64) -> Imm {
        Imm::Int(v)
    }
}

impl From<f32> for Imm {
    fn from(v: f32) -> Imm {
        Imm::F32(v)
    }
}

impl From<f64> for Imm {
    fn from(v: f64) -> Imm {
        Imm::F64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_type_matrix_matches_table2() {
        assert!(BinOp::Add.accepts(Ty::P));
        assert!(!BinOp::Mul.accepts(Ty::P));
        assert!(BinOp::Div.accepts(Ty::D));
        assert!(!BinOp::Mod.accepts(Ty::F));
        assert!(!BinOp::Lsh.accepts(Ty::D));
        assert!(BinOp::Xor.accepts(Ty::Ul));
        for op in [BinOp::Add, BinOp::And, BinOp::Rsh] {
            assert!(!op.accepts(Ty::C), "sub-word types are memory-only");
        }
    }

    #[test]
    fn unop_type_matrix() {
        assert!(UnOp::Mov.accepts(Ty::D));
        assert!(UnOp::Neg.accepts(Ty::F));
        assert!(!UnOp::Com.accepts(Ty::F));
        assert!(!UnOp::Not.accepts(Ty::P));
    }

    #[test]
    fn commutativity() {
        assert!(BinOp::Add.commutes());
        assert!(BinOp::Xor.commutes());
        assert!(!BinOp::Sub.commutes());
        assert!(!BinOp::Lsh.commutes());
        assert!(!BinOp::Div.commutes());
    }

    #[test]
    fn cond_negate_and_swap_are_consistent() {
        for c in [Cond::Lt, Cond::Le, Cond::Gt, Cond::Ge, Cond::Eq, Cond::Ne] {
            for (a, b) in [(1i64, 2i64), (2, 1), (3, 3), (-1, 1)] {
                assert_eq!(c.eval_signed(a, b), !c.negated().eval_signed(a, b));
                assert_eq!(c.eval_signed(a, b), c.swapped().eval_signed(b, a));
            }
        }
    }

    #[test]
    fn unsigned_vs_signed_comparison_differ() {
        assert!(Cond::Lt.eval_signed(-1, 0));
        assert!(!Cond::Lt.eval_unsigned(-1i64 as u64, 0));
    }

    #[test]
    fn imm_from() {
        assert_eq!(Imm::from(3i64), Imm::Int(3));
        assert_eq!(Imm::from(1.5f32), Imm::F32(1.5));
        assert_eq!(Imm::from(2.5f64), Imm::F64(2.5));
    }
}
