//! A tiny synthetic target used by the core crate's own tests and
//! doctests.
//!
//! `FakeTarget` is an "idealized RISC" in the most literal sense: every
//! VCODE instruction encodes to exactly one 32-bit word of an invented
//! encoding. It exists so the target-independent machinery (labels,
//! fixups, the register allocator, prologue reservation, literal pool)
//! can be exercised without pulling in a real backend. Real code runs on
//! the `vcode-mips`, `vcode-sparc`, `vcode-alpha` and `vcode-x64` crates.

use crate::asm::Asm;
use crate::error::Error;
use crate::label::{Fixup, FixupTarget, Label};
use crate::op::{BinOp, Cond, Imm, UnOp};
use crate::reg::{Bank, Reg, RegDesc, RegFile, RegKind};
use crate::target::{BrOperand, CallFrame, JumpTarget, Leaf, Off, StackSlot, Target};
use crate::ty::{Sig, Ty};

/// The synthetic test target. One VCODE instruction = one 32-bit word.
#[derive(Debug, Clone, Copy)]
pub enum FakeTarget {}

/// Opcodes of the fake encoding (public so tests can decode).
pub mod opcodes {
    /// Binary register op.
    pub const BINOP: u8 = 0x01;
    /// Binary immediate op.
    pub const BINOPI: u8 = 0x02;
    /// Unary op.
    pub const UNOP: u8 = 0x03;
    /// Set constant.
    pub const SET: u8 = 0x04;
    /// Conversion.
    pub const CVT: u8 = 0x05;
    /// Load.
    pub const LD: u8 = 0x06;
    /// Store.
    pub const ST: u8 = 0x07;
    /// Conditional branch (fixup kind 0 patches the high 16 bits with the
    /// word index of the destination).
    pub const BRANCH: u8 = 0x08;
    /// Unconditional jump.
    pub const JUMP: u8 = 0x09;
    /// Jump and link.
    pub const JAL: u8 = 0x0a;
    /// No-op.
    pub const NOP: u8 = 0x0b;
    /// Return (transfer to epilogue).
    pub const RET: u8 = 0x0c;
    /// Frame allocation (prologue; low 16 bits patched with frame size).
    pub const FRAME: u8 = 0x0d;
    /// Register save/restore marker (patched prologue save area).
    pub const SAVE: u8 = 0x0e;
    /// Epilogue marker.
    pub const EPILOGUE: u8 = 0x0f;
    /// Call-marshaling word.
    pub const CALL: u8 = 0x10;
}

fn word(op: u8, a: u8, b: u8, c: u8) -> u32 {
    u32::from_le_bytes([op, a, b, c])
}

static INT_REGS: [RegDesc; 16] = {
    const fn d(n: u8, kind: RegKind, name: &'static str) -> RegDesc {
        RegDesc {
            reg: Reg::int(n),
            kind,
            name,
        }
    }
    [
        d(8, RegKind::CallerSaved, "t0"),
        d(9, RegKind::CallerSaved, "t1"),
        d(10, RegKind::CallerSaved, "t2"),
        d(11, RegKind::CallerSaved, "t3"),
        d(4, RegKind::Arg(0), "a0"),
        d(5, RegKind::Arg(1), "a1"),
        d(6, RegKind::Arg(2), "a2"),
        d(7, RegKind::Arg(3), "a3"),
        d(16, RegKind::CalleeSaved, "s0"),
        d(17, RegKind::CalleeSaved, "s1"),
        d(18, RegKind::CalleeSaved, "s2"),
        d(19, RegKind::CalleeSaved, "s3"),
        d(20, RegKind::CalleeSaved, "s4"),
        d(21, RegKind::CalleeSaved, "s5"),
        d(1, RegKind::Reserved, "at"),
        d(2, RegKind::Reserved, "v0"),
    ]
};

static FLT_REGS: [RegDesc; 8] = {
    const fn d(n: u8, kind: RegKind, name: &'static str) -> RegDesc {
        RegDesc {
            reg: Reg::flt(n),
            kind,
            name,
        }
    }
    [
        d(4, RegKind::CallerSaved, "f4"),
        d(5, RegKind::CallerSaved, "f5"),
        d(12, RegKind::Arg(0), "f12"),
        d(14, RegKind::Arg(1), "f14"),
        d(20, RegKind::CalleeSaved, "f20"),
        d(22, RegKind::CalleeSaved, "f22"),
        d(0, RegKind::Reserved, "f0"),
        d(2, RegKind::Reserved, "f2"),
    ]
};

static REGFILE: RegFile = RegFile {
    int: &INT_REGS,
    flt: &FLT_REGS,
    hard_temps: &[Reg::int(8), Reg::int(9), Reg::int(10), Reg::int(11)],
    hard_saved: &[Reg::int(16), Reg::int(17), Reg::int(18), Reg::int(19)],
    sp: Reg::int(29),
    fp: Reg::int(30),
    zero: Some(Reg::int(0)),
};

impl Target for FakeTarget {
    const NAME: &'static str = "fake";
    const WORD_BITS: u32 = 32;
    const MAX_SAVE_BYTES: usize = 6 * 4;

    fn regfile() -> &'static RegFile {
        &REGFILE
    }

    fn begin(a: &mut Asm<'_>, sig: &Sig, _leaf: Leaf) -> Result<Vec<Reg>, Error> {
        // Frame-allocation word, patched in `end` with the final size.
        a.ts.frame_fix = a.buf.len();
        a.buf.put_u32(word(opcodes::FRAME, 0, 0, 0));
        // Worst-case register-save area (paper §5.2): one word per
        // callee-saved register, filled with SAVE markers at `end`.
        let start = a.buf.len();
        a.buf.reserve(Self::MAX_SAVE_BYTES, 0);
        a.ts.save_area = (start, a.buf.len());
        // Argument homing: ints in a0..a3, floats in f12/f14.
        let mut args = Vec::new();
        let (mut ni, mut nf) = (0u8, 0u8);
        for &ty in sig.args() {
            let reg = if ty.is_float() {
                let r = [Reg::flt(12), Reg::flt(14)].get(nf as usize).copied();
                nf += 1;
                r
            } else {
                let r = [Reg::int(4), Reg::int(5), Reg::int(6), Reg::int(7)]
                    .get(ni as usize)
                    .copied();
                ni += 1;
                r
            };
            let reg = reg.ok_or(Error::TooManyArgs {
                requested: sig.args().len(),
                max: 4,
            })?;
            a.ra.take(reg);
            args.push(reg);
        }
        Ok(args)
    }

    fn local(a: &mut Asm<'_>, ty: Ty) -> StackSlot {
        let size = ty.size_bytes(Self::WORD_BITS).max(4);
        a.locals_bytes = a.locals_bytes.div_ceil(size) * size + size;
        StackSlot {
            base: REGFILE.fp,
            off: -(a.locals_bytes as i32),
            ty,
        }
    }

    fn emit_ret(a: &mut Asm<'_>, val: Option<(Ty, Reg)>) {
        let r = val.map(|(_, r)| r.num()).unwrap_or(0);
        a.ret_sites.push(a.buf.len());
        a.fixup_here(FixupTarget::Label(a.epilogue), 0);
        a.buf.put_u32(word(opcodes::RET, r, 0, 0));
    }

    fn end(a: &mut Asm<'_>) -> Result<(), Error> {
        // Fill the reserved prologue save area with SAVE markers for the
        // callee-saved registers actually used.
        let used = a.ra.callee_used(Bank::Int);
        let (start, end) = a.ts.save_area;
        let mut at = start;
        for n in 0..64u8 {
            if used & (1 << n) != 0 && at + 4 <= end {
                a.buf.patch_u32(at, word(opcodes::SAVE, n, 0, 0));
                at += 4;
            }
        }
        while at < end {
            a.buf.patch_u32(at, word(opcodes::NOP, 0, 0, 0));
            at += 4;
        }
        // Backpatch the activation-record size.
        let frame = (Self::MAX_SAVE_BYTES + a.locals_bytes) as u32;
        let old = a.buf.read_u32(a.ts.frame_fix);
        a.buf
            .patch_u32(a.ts.frame_fix, old | (frame & 0xffff) << 16);
        // Deferred epilogue.
        let here = a.buf.len();
        a.labels.bind(a.epilogue, here);
        a.buf.put_u32(word(opcodes::EPILOGUE, 0, 0, 0));
        Ok(())
    }

    fn patch(a: &mut Asm<'_>, fixup: Fixup, dest: usize) {
        // Kind 0: high 16 bits = destination word index.
        let old = a.buf.read_u32(fixup.at);
        let widx = (dest / 4) as u32;
        a.buf
            .patch_u32(fixup.at, (old & 0x0000_ffff) | (widx & 0xffff) << 16);
    }

    fn emit_binop(a: &mut Asm<'_>, op: BinOp, _ty: Ty, rd: Reg, rs1: Reg, rs2: Reg) {
        a.buf
            .put_u32(word(opcodes::BINOP, rd.num(), rs1.num(), rs2.num()) | (op as u32) << 28);
    }

    fn emit_binop_imm(a: &mut Asm<'_>, _op: BinOp, _ty: Ty, rd: Reg, rs: Reg, imm: i64) {
        a.buf
            .put_u32(word(opcodes::BINOPI, rd.num(), rs.num(), imm as u8));
    }

    fn emit_unop(a: &mut Asm<'_>, op: UnOp, _ty: Ty, rd: Reg, rs: Reg) {
        a.buf
            .put_u32(word(opcodes::UNOP, rd.num(), rs.num(), op as u8));
    }

    fn emit_set(a: &mut Asm<'_>, _ty: Ty, rd: Reg, imm: Imm) {
        match imm {
            Imm::Int(v) => a.buf.put_u32(word(opcodes::SET, rd.num(), v as u8, 0)),
            Imm::F32(v) => {
                let id = a.lits.intern_f32(v);
                a.fixup_here(FixupTarget::Lit(id), 0);
                a.buf.put_u32(word(opcodes::SET, rd.num(), 0, 1));
            }
            Imm::F64(v) => {
                let id = a.lits.intern_f64(v);
                a.fixup_here(FixupTarget::Lit(id), 0);
                a.buf.put_u32(word(opcodes::SET, rd.num(), 0, 2));
            }
        }
    }

    fn emit_cvt(a: &mut Asm<'_>, _from: Ty, _to: Ty, rd: Reg, rs: Reg) {
        a.buf.put_u32(word(opcodes::CVT, rd.num(), rs.num(), 0));
    }

    fn emit_ld(a: &mut Asm<'_>, _ty: Ty, rd: Reg, base: Reg, off: Off) {
        let o = match off {
            Off::I(i) => i as u8,
            Off::R(r) => r.num(),
        };
        a.buf.put_u32(word(opcodes::LD, rd.num(), base.num(), o));
    }

    fn emit_st(a: &mut Asm<'_>, _ty: Ty, src: Reg, base: Reg, off: Off) {
        let o = match off {
            Off::I(i) => i as u8,
            Off::R(r) => r.num(),
        };
        a.buf.put_u32(word(opcodes::ST, src.num(), base.num(), o));
    }

    fn emit_branch(a: &mut Asm<'_>, cond: Cond, _ty: Ty, rs1: Reg, rs2: BrOperand, l: Label) {
        // The fake encoding drops rs2/cond details: bytes 2-3 hold the
        // (patched) destination word index.
        let _ = (cond, rs2);
        a.fixup_here(FixupTarget::Label(l), 0);
        a.buf.put_u32(word(opcodes::BRANCH, rs1.num(), 0, 0));
    }

    fn emit_jump(a: &mut Asm<'_>, t: JumpTarget) {
        match t {
            JumpTarget::Label(l) => {
                a.fixup_here(FixupTarget::Label(l), 0);
                a.buf.put_u32(word(opcodes::JUMP, 0, 0, 0));
            }
            JumpTarget::Reg(r) => a.buf.put_u32(word(opcodes::JUMP, r.num(), 0, 1)),
            JumpTarget::Abs(_) => a.buf.put_u32(word(opcodes::JUMP, 0, 0, 2)),
        }
    }

    fn emit_jal(a: &mut Asm<'_>, t: JumpTarget) {
        match t {
            JumpTarget::Label(l) => {
                a.fixup_here(FixupTarget::Label(l), 0);
                a.buf.put_u32(word(opcodes::JAL, 0, 0, 0));
            }
            JumpTarget::Reg(r) => a.buf.put_u32(word(opcodes::JAL, r.num(), 0, 1)),
            JumpTarget::Abs(_) => a.buf.put_u32(word(opcodes::JAL, 0, 0, 2)),
        }
    }

    fn emit_nop(a: &mut Asm<'_>) {
        a.buf.put_u32(word(opcodes::NOP, 0, 0, 0));
    }

    fn call_begin(a: &mut Asm<'_>, sig: &Sig) -> CallFrame {
        let _ = a;
        CallFrame {
            sig: sig.clone(),
            stack_bytes: 0,
            next_int: 0,
            next_flt: 0,
            misc: 0,
        }
    }

    fn call_arg(a: &mut Asm<'_>, cf: &mut CallFrame, _idx: usize, _ty: Ty, src: Reg) {
        cf.next_int += 1;
        a.buf
            .put_u32(word(opcodes::CALL, src.num(), cf.next_int, 0));
    }

    fn call_end(a: &mut Asm<'_>, _cf: CallFrame, _target: JumpTarget, _ret: Option<(Ty, Reg)>) {
        a.buf.put_u32(word(opcodes::CALL, 0, 0, 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::reg::RegClass;

    fn decode(buf: &[u8], widx: usize) -> [u8; 4] {
        let mut w = [0u8; 4];
        w.copy_from_slice(&buf[widx * 4..widx * 4 + 4]);
        w
    }

    #[test]
    fn plus1_layout_matches_figure_1() {
        let mut mem = vec![0u8; 256];
        let mut a = Assembler::<FakeTarget>::lambda(&mut mem, "%i", Leaf::Yes).unwrap();
        let arg = a.arg(0);
        assert_eq!(arg, Reg::int(4), "first int argument homed in a0");
        a.addii(arg, arg, 1);
        a.reti(arg);
        let fin = a.end().unwrap();
        // frame word + 6 save words + addii + ret + epilogue = 10 words.
        assert_eq!(fin.len, 10 * 4);
        let frame = decode(&mem, 0);
        assert_eq!(frame[0], opcodes::FRAME);
        // Frame size = save area only (no locals) = 24.
        assert_eq!(u16::from_le_bytes([frame[2], frame[3]]), 24);
        assert_eq!(decode(&mem, 7)[0], opcodes::BINOPI);
        let ret = decode(&mem, 8);
        assert_eq!(ret[0], opcodes::RET);
        // Unused prologue save slots become nops.
        assert_eq!(decode(&mem, 1)[0], opcodes::NOP);
        assert_eq!(decode(&mem, 9)[0], opcodes::EPILOGUE);
    }

    #[test]
    fn branch_backpatching_links_forward_jumps() {
        let mut mem = vec![0u8; 256];
        let mut a = Assembler::<FakeTarget>::lambda(&mut mem, "%i", Leaf::Yes).unwrap();
        let arg = a.arg(0);
        let done = a.genlabel();
        a.bltii(arg, 10, done);
        a.addii(arg, arg, 1);
        a.label(done);
        a.reti(arg);
        a.end().unwrap();
        let br = decode(&mem, 7);
        assert_eq!(br[0], opcodes::BRANCH);
        // Destination is word 9 (the ret after the addii at word 8).
        let w = u32::from_le_bytes(br);
        assert_eq!(w >> 16, 9, "branch links to the label's word index");
    }

    #[test]
    fn unbound_label_is_an_error() {
        let mut mem = vec![0u8; 256];
        let mut a = Assembler::<FakeTarget>::lambda(&mut mem, "", Leaf::Yes).unwrap();
        let l = a.genlabel();
        a.jmp(l);
        a.retv();
        match a.end() {
            Err(crate::Error::UnboundLabel(_)) => {}
            other => panic!("expected UnboundLabel, got {other:?}"),
        }
    }

    #[test]
    fn overflow_is_reported_at_end() {
        let mut mem = vec![0u8; 8]; // far too small for the prologue
        let a = Assembler::<FakeTarget>::lambda(&mut mem, "", Leaf::Yes).unwrap();
        match a.end() {
            Err(crate::Error::Overflow { capacity: 8 }) => {}
            other => panic!("expected Overflow, got {other:?}"),
        }
    }

    #[test]
    fn callee_saved_use_patches_save_area() {
        let mut mem = vec![0u8; 256];
        let mut a = Assembler::<FakeTarget>::lambda(&mut mem, "", Leaf::No).unwrap();
        let s = a.getreg(RegClass::Persistent).unwrap();
        assert_eq!(s, Reg::int(16));
        a.setl(s, 7);
        a.retv();
        a.end().unwrap();
        let save = decode(&mem, 1);
        assert_eq!(save[0], opcodes::SAVE);
        assert_eq!(save[1], 16);
        assert_eq!(decode(&mem, 2)[0], opcodes::NOP);
    }

    #[test]
    fn float_constants_go_to_the_literal_pool() {
        let mut mem = vec![0u8; 256];
        let mut a = Assembler::<FakeTarget>::lambda(&mut mem, "", Leaf::Yes).unwrap();
        let f = a.getreg_f(RegClass::Temp).unwrap();
        a.setd(f, 2.5);
        a.retd(f);
        let fin = a.end().unwrap();
        // The pool holds the 8 bytes of 2.5 at the (aligned) end.
        let pool_off = (fin.len - 8) / 8 * 8;
        let mut bits = [0u8; 8];
        bits.copy_from_slice(&mem[pool_off..pool_off + 8]);
        assert_eq!(f64::from_le_bytes(bits), 2.5);
        // The SET word was patched to point at the pool entry.
        let set_w = u32::from_le_bytes(decode(&mem, 7));
        assert_eq!(set_w >> 16, (pool_off / 4) as u32);
    }

    #[test]
    fn call_in_leaf_is_an_error() {
        let mut mem = vec![0u8; 256];
        let mut a = Assembler::<FakeTarget>::lambda(&mut mem, "", Leaf::Yes).unwrap();
        let sig = crate::Sig::parse("%i").unwrap();
        let cf = a.call_begin(&sig);
        a.call_end(cf, JumpTarget::Abs(0x1000), None);
        a.retv();
        assert_eq!(a.end(), Err(crate::Error::CallInLeaf));
    }

    #[test]
    fn too_many_args_rejected() {
        let mut mem = vec![0u8; 256];
        let r = Assembler::<FakeTarget>::lambda(&mut mem, "%i%i%i%i%i", Leaf::Yes);
        assert!(matches!(r, Err(crate::Error::TooManyArgs { .. })));
    }

    #[test]
    fn schedule_delay_places_slot_before_branch_without_delay_slots() {
        let mut mem = vec![0u8; 256];
        let mut a = Assembler::<FakeTarget>::lambda(&mut mem, "%i", Leaf::Yes).unwrap();
        let arg = a.arg(0);
        let l = a.genlabel();
        a.label(l);
        // FakeTarget has no delay slots: the slot instruction must be
        // emitted *before* the branch.
        a.schedule_delay(|a| a.bneii(arg, 0, l), |a| a.addii(arg, arg, 1));
        a.retv();
        a.end().unwrap();
        assert_eq!(decode(&mem, 7)[0], opcodes::BINOPI);
        assert_eq!(decode(&mem, 8)[0], opcodes::BRANCH);
    }

    #[test]
    fn locals_have_distinct_offsets_and_frame_grows() {
        let mut mem = vec![0u8; 256];
        let mut a = Assembler::<FakeTarget>::lambda(&mut mem, "", Leaf::Yes).unwrap();
        let s1 = a.local(Ty::I);
        let s2 = a.local(Ty::D);
        assert_ne!(s1.off, s2.off);
        assert_eq!(s2.off % 8, 0, "double slot is 8-aligned");
        a.retv();
        a.end().unwrap();
        let frame = decode(&mem, 0);
        assert!(u16::from_le_bytes([frame[2], frame[3]]) >= 24 + 12);
    }

    #[test]
    fn insn_count_tracks_specified_instructions() {
        let mut mem = vec![0u8; 256];
        let mut a = Assembler::<FakeTarget>::lambda(&mut mem, "%i", Leaf::Yes).unwrap();
        let arg = a.arg(0);
        a.addii(arg, arg, 1);
        a.subii(arg, arg, 1);
        a.reti(arg);
        assert_eq!(a.insn_count(), 3);
    }
}
