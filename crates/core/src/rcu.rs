//! Generic epoch-based RCU cell on the [`vsync`](crate::vsync) facade.
//!
//! Extracted from `dpf::service`'s hand-rolled classifier RCU so the
//! protocol exists once, generically, and — because every atomic below
//! comes from `vsync` — so the `mcheck` model checker can drive it
//! through explored interleavings (see `crates/mcheck`'s RCU model
//! programs and the `RcuRelaxedPublication` mutation test).
//!
//! Protocol (unchanged from the original):
//! - **Readers never lock.** Each reader owns a registered *slot*; on
//!   [`Rcu::enter`] it announces the current epoch in its slot, loads
//!   the current value pointer, and re-checks the epoch (a concurrent
//!   publication forces a retry). [`ReadGuard`] clears the slot on
//!   drop.
//! - **Writers publish with a pointer swap**, bump the epoch *after*
//!   the swap, push the old value on the retire list, then
//!   [`Rcu::reclaim`] frees every retired entry whose retire epoch is
//!   at or below all active reader slots.
//! - The reader's announce store is the load-bearing **StoreLoad
//!   barrier**: it must be `SeqCst` so the writer's slot scan cannot
//!   miss a reader that is about to use a generation the writer just
//!   retired. [`vsync::rcu_publication_order`] returns `SeqCst` in
//!   production and weakens to `Relaxed` only under the model-checker
//!   mutation that proves the explorer catches exactly this bug.
//!
//! Under an active model execution, reclamation does not actually free:
//! the box is marked with a *freed canary* and parked in the
//! execution's graveyard, so a use-after-retire becomes a deterministic
//! assertion (with a replayable schedule) instead of undefined
//! behavior.

use crate::vsync::{self, Arc, AtomicPtr, AtomicU64, AtomicUsize, Mutex, MutexGuard, Ordering};

/// Heap node wrapping a published value. The canary exists only in
/// `mcheck` builds (one cold flag per published generation).
struct Node<T> {
    value: T,
    #[cfg(feature = "mcheck")]
    freed: std::sync::atomic::AtomicBool,
}

impl<T> Node<T> {
    fn boxed(value: T) -> Box<Node<T>> {
        Box::new(Node {
            value,
            #[cfg(feature = "mcheck")]
            freed: std::sync::atomic::AtomicBool::new(false),
        })
    }
}

/// Epoch-based RCU cell: wait-free lock-free readers, writer-side
/// deferred reclamation. See the module docs for the protocol.
pub struct Rcu<T: Send + Sync + 'static> {
    /// The current value (`Box::into_raw` of a [`Node`]).
    cur: AtomicPtr<Node<T>>,
    /// Publication epoch; bumped *after* every swap, starts at 1 so a
    /// slot value of 0 can mean "quiescent".
    epoch: AtomicU64,
    /// Registered reader slots. 0 = quiescent, otherwise the epoch the
    /// reader observed on entry.
    slots: Mutex<Vec<Arc<AtomicU64>>>,
    /// Retired values: (epoch at retire, node). Writer-side only.
    retired: Mutex<Vec<(u64, *mut Node<T>)>>,
    /// Cheap mirror of `retired.len()` so readers can skip reclamation
    /// probes without touching the mutex.
    retired_len: AtomicUsize,
}

// SAFETY: the raw pointers always come from `Box::into_raw` of a
// `Node<T>` with `T: Send + Sync`, and each is freed exactly once — by
// the epoch-guarded reclaim (which removes it from the retire list
// first) or by `Drop` (which has exclusive access).
unsafe impl<T: Send + Sync + 'static> Send for Rcu<T> {}
// SAFETY: as above; shared access only ever yields `&T` to values that
// reclaim has proven unreachable by that reader's epoch.
unsafe impl<T: Send + Sync + 'static> Sync for Rcu<T> {}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

impl<T: Send + Sync + 'static> Rcu<T> {
    /// A cell holding `first` at epoch 1.
    pub fn new(first: T) -> Rcu<T> {
        Rcu {
            cur: AtomicPtr::new(Box::into_raw(Node::boxed(first))),
            epoch: AtomicU64::new(1),
            slots: Mutex::new(Vec::new()),
            retired: Mutex::new(Vec::new()),
            retired_len: AtomicUsize::new(0),
        }
    }

    /// Registers a reader slot; the handle is what [`Rcu::enter`]
    /// announces through. Unregister with [`Rcu::unregister_slot`] when
    /// the reader is done (a stale quiescent slot is harmless but makes
    /// the reclaim scan longer).
    pub fn register_slot(&self) -> Arc<AtomicU64> {
        let slot = Arc::new(AtomicU64::new(0));
        lock(&self.slots).push(Arc::clone(&slot));
        slot
    }

    /// Removes a reader slot registered by [`Rcu::register_slot`].
    pub fn unregister_slot(&self, slot: &Arc<AtomicU64>) {
        lock(&self.slots).retain(|s| !Arc::ptr_eq(s, slot));
    }

    /// Number of registered reader slots (diagnostics).
    pub fn slots_len(&self) -> usize {
        lock(&self.slots).len()
    }

    /// Enters a read-side critical section: publishes the entry epoch
    /// in `slot`, then loads the current value, retrying if a
    /// publication raced in between. Lock-free, and wait-free in
    /// practice (a retry requires a concurrent publish). The guard
    /// clears the slot on drop.
    #[inline]
    pub fn enter<'a>(&'a self, slot: &'a AtomicU64) -> ReadGuard<'a, T> {
        loop {
            let e = self.epoch.load(Ordering::SeqCst);
            // The SeqCst announce is the required StoreLoad barrier:
            // the writer must observe our slot before we observe (and
            // start using) a generation it may retire. The ordering is
            // routed through `vsync` so the mutation test can weaken it
            // to Relaxed and prove the model checker catches the
            // resulting early reclaim.
            slot.store(e, vsync::rcu_publication_order());
            let p = self.cur.load(Ordering::SeqCst);
            if self.epoch.load(Ordering::SeqCst) == e {
                return ReadGuard { node: p, slot };
            }
            // A publish completed mid-entry; re-announce and reload.
        }
    }

    /// Publishes a new value, retiring the old one. Returns the number
    /// of retired values reclaimed as a side effect.
    pub fn publish(&self, value: T) -> u64 {
        let p = Box::into_raw(Node::boxed(value));
        let old = self.cur.swap(p, Ordering::SeqCst);
        let e = self.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        {
            let mut r = lock(&self.retired);
            r.push((e, old));
            self.retired_len.store(r.len(), Ordering::SeqCst);
        }
        self.reclaim()
    }

    /// Frees every retired value whose retire epoch is at or below all
    /// active reader slots. Writer-side; never blocks readers. Returns
    /// the number freed.
    pub fn reclaim(&self) -> u64 {
        // Any reader that enters after this scan starts sees an epoch
        // >= every already-retired entry's epoch (the bump happens
        // before the entry is pushed), so scanning slots first is safe.
        let min_active = lock(&self.slots)
            .iter()
            .map(|s| s.load(Ordering::SeqCst))
            .filter(|&v| v != 0)
            .min();
        let mut r = lock(&self.retired);
        let mut freed = 0u64;
        r.retain(|&(e, p)| {
            let quiet = match min_active {
                None => true,
                Some(m) => m >= e,
            };
            if quiet {
                // SAFETY: no active reader entered before epoch `e`, so
                // none can still hold this pointer; it is removed from
                // the list here, so it is disposed exactly once.
                unsafe { dispose(p) };
                freed += 1;
            }
            !quiet
        });
        self.retired_len.store(r.len(), Ordering::SeqCst);
        freed
    }

    /// Number of retired-but-not-yet-reclaimed values (cheap mirror,
    /// no lock).
    pub fn retired_len(&self) -> usize {
        self.retired_len.load(Ordering::SeqCst)
    }

    /// The current publication epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }
}

impl<T: Send + Sync + 'static> Drop for Rcu<T> {
    fn drop(&mut self) {
        // No readers can exist here: `drop` has exclusive access.
        for (_, p) in lock(&self.retired).drain(..) {
            // SAFETY: exclusive access; each retired node disposed
            // exactly once.
            unsafe { dispose(p) };
        }
        let cur = self.cur.load(Ordering::SeqCst);
        // SAFETY: as above; `cur` is never on the retire list.
        unsafe { dispose(cur) };
    }
}

impl<T: Send + Sync + 'static> std::fmt::Debug for Rcu<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rcu")
            .field("epoch", &self.epoch)
            .field("retired_len", &self.retired_len)
            .finish_non_exhaustive()
    }
}

/// Frees (or, under an active model execution, canaries-and-defers) a
/// reclaimed node.
///
/// # Safety
/// `p` must come from `Box::into_raw(Node::boxed(..))` and be disposed
/// exactly once, with no reader able to reach it per the epoch
/// argument in [`Rcu::reclaim`].
unsafe fn dispose<T: Send + Sync + 'static>(p: *mut Node<T>) {
    // SAFETY: per the contract above.
    let b = unsafe { Box::from_raw(p) };
    #[cfg(feature = "mcheck")]
    {
        if crate::vsync::model::is_managed() {
            // Don't actually free: mark the canary and park the box in
            // the execution's graveyard, so a reader that reaches this
            // node after reclaim trips a deterministic assertion
            // (replayable schedule) instead of UB.
            b.freed.store(true, std::sync::atomic::Ordering::SeqCst);
            crate::vsync::model::defer_drop(b);
            return;
        }
    }
    drop(b);
}

/// Read-side guard from [`Rcu::enter`]: derefs to the entered value,
/// clears the reader's slot on drop.
pub struct ReadGuard<'a, T> {
    node: *mut Node<T>,
    slot: &'a AtomicU64,
}

impl<T> std::ops::Deref for ReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        #[cfg(feature = "mcheck")]
        {
            if crate::vsync::model::is_managed() {
                // SAFETY: under a model execution reclaimed nodes are
                // graveyard-parked, so the allocation is live even if
                // the protocol is broken; the canary then reports it.
                let node = unsafe { &*self.node };
                assert!(
                    !node.freed.load(std::sync::atomic::Ordering::SeqCst),
                    "RCU use-after-retire: reader dereferenced a reclaimed generation"
                );
                return &node.value;
            }
        }
        // SAFETY: the epoch protocol keeps the node alive while any
        // reader that entered before its retirement holds a guard.
        unsafe { &(*self.node).value }
    }
}

impl<T> Drop for ReadGuard<'_, T> {
    fn drop(&mut self) {
        // Leaving the read-side critical section: quiesce the slot.
        self.slot.store(0, Ordering::Release);
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ReadGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_reclaims_when_quiescent() {
        let rcu: Rcu<u64> = Rcu::new(1);
        assert_eq!(rcu.epoch(), 1);
        // No readers: each publish frees the predecessor immediately.
        assert_eq!(rcu.publish(2), 1);
        assert_eq!(rcu.publish(3), 1);
        assert_eq!(rcu.retired_len(), 0);
        let slot = rcu.register_slot();
        assert_eq!(*rcu.enter(&slot), 3);
        rcu.unregister_slot(&slot);
        assert_eq!(rcu.slots_len(), 0);
    }

    #[test]
    fn active_reader_defers_reclaim() {
        let rcu: Rcu<u64> = Rcu::new(10);
        let slot = rcu.register_slot();
        let g = rcu.enter(&slot);
        assert_eq!(*g, 10);
        // Reader active at epoch 1: the old generation must survive.
        assert_eq!(rcu.publish(20), 0);
        assert_eq!(rcu.retired_len(), 1);
        assert_eq!(*g, 10, "reader keeps its snapshot across a publish");
        drop(g);
        // Quiescent now: the next probe frees it.
        assert_eq!(rcu.reclaim(), 1);
        assert_eq!(rcu.retired_len(), 0);
        let g = rcu.enter(&slot);
        assert_eq!(*g, 20);
    }

    #[test]
    fn guard_drop_quiesces_slot() {
        let rcu: Rcu<&'static str> = Rcu::new("a");
        let slot = rcu.register_slot();
        {
            let _g = rcu.enter(&slot);
            assert_ne!(slot.load(Ordering::SeqCst), 0);
        }
        assert_eq!(slot.load(Ordering::SeqCst), 0);
    }
}
