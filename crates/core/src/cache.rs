//! Content-addressed, sharded cache for finished dynamic code.
//!
//! Dynamic codegen is only "very fast" relative to executing the code
//! once; a serving system (the ROADMAP's north star) compiles the same
//! lambda across many requests, and the win comes from *not* compiling
//! the second time. [`LambdaCache`] is the workspace-wide primitive for
//! that amortization:
//!
//! - **Content-addressed.** A [`CacheKey`] is (target id, key bytes):
//!   either the serialized vcode stream (`Program::encode`) or a client
//!   key (DPF filter shape, ASH pipeline shape). The stored FNV-1a hash
//!   only *routes* (shard choice, bucket probe); equality is decided on
//!   the full bytes, so hash collisions can never alias two programs.
//! - **Sharded.** Entries spread over `min(8, capacity)` mutexed shards
//!   by key hash; concurrent compiles of different programs do not
//!   contend.
//! - **Thundering-herd safe.** The first thread to miss installs a
//!   `Building` slot and compiles; racers wait on a condvar and share
//!   the single result — exactly one compile per key, no matter how many
//!   threads race.
//! - **Never poisoned.** A failed build removes the slot and hands the
//!   typed error to every waiter; the next caller simply retries. A
//!   panicking build likewise clears the slot (guard in
//!   [`LambdaCache::get_or_insert_with`]) so the key stays usable.
//! - **Capacity-capped LRU.** Each shard evicts its least-recently-used
//!   *ready* entry beyond its share of the capacity. Eviction only drops
//!   the cache's `Arc` — code still referenced by callers stays alive
//!   (and, for native code, its mapping stays out of the executable-
//!   memory pool) until the last clone is gone.
//! - **Observable.** Per-cache [`CacheStats`] plus process-wide
//!   [`obs::lambda_cache_counters`](crate::obs::lambda_cache_counters).

use crate::engine::{fnv1a, TargetId};
use crate::obs;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Key of one cached lambda: the backend it was compiled for plus the
/// content bytes that identify the program.
///
/// The bytes are shared (`Arc`) so warm-path lookups clone the key in
/// O(1) instead of copying the serialized stream.
#[derive(Debug, Clone)]
pub struct CacheKey {
    target: TargetId,
    bytes: Arc<[u8]>,
    hash: u64,
}

/// Routing hash of (target, content hash): a cheap avalanche mix, so a
/// caller with a memoized content hash builds a key without re-scanning
/// the bytes. Every constructor must agree on this function — the stored
/// hash must be a function of (target, bytes) for `HashMap` correctness.
fn route_hash(target: TargetId, content: u64) -> u64 {
    content ^ (target.index() as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

impl CacheKey {
    /// Content-addressed key: `bytes` is the program identity (e.g.
    /// `Program::encode()`); the hash mixes FNV-1a of the bytes with the
    /// target id, so the same stream on two backends routes — and keys —
    /// differently.
    pub fn new(target: TargetId, bytes: Vec<u8>) -> CacheKey {
        let hash = route_hash(target, fnv1a(&bytes));
        CacheKey {
            target,
            bytes: bytes.into(),
            hash,
        }
    }

    /// Key from an already-serialized, already-hashed identity (the
    /// memoized `Program::encoded` fast path): no byte scan, no copy.
    /// `content_hash` MUST be FNV-1a of `bytes` — the constructors must
    /// agree so equal keys hash equally.
    pub fn from_encoded(target: TargetId, bytes: Arc<[u8]>, content_hash: u64) -> CacheKey {
        CacheKey {
            target,
            hash: route_hash(target, content_hash),
            bytes,
        }
    }

    /// Client-hash key for callers that already maintain a collision-free
    /// 64-bit identity. The hash bytes *are* the content, so two clients
    /// passing the same `h` for different programs will alias — the
    /// client key must be collision-free by construction.
    pub fn from_client_hash(target: TargetId, h: u64) -> CacheKey {
        CacheKey::new(target, h.to_le_bytes().to_vec())
    }

    /// Key with an explicitly injected routing hash. Exists so tests can
    /// force hash collisions and prove that equality on the bytes keeps
    /// colliding keys distinct.
    pub fn with_hash(target: TargetId, bytes: Vec<u8>, hash: u64) -> CacheKey {
        CacheKey {
            target,
            bytes: bytes.into(),
            hash,
        }
    }

    /// The backend this key is scoped to.
    pub fn target(&self) -> TargetId {
        self.target
    }

    /// The routing hash (shard choice and bucket probe only).
    pub fn hash(&self) -> u64 {
        self.hash
    }
}

// Equality deliberately ignores `hash`: the hash routes, the bytes
// decide. Hash must agree with Eq for HashMap correctness, which holds
// because equal (target, bytes) always produce the same stored hash via
// the public constructors, and `with_hash` colliders compare unequal on
// bytes and merely probe the same bucket.
impl PartialEq for CacheKey {
    fn eq(&self, other: &CacheKey) -> bool {
        self.target == other.target
            // Same shared allocation (a memoized Program re-looked-up):
            // content equality without the byte scan.
            && (Arc::ptr_eq(&self.bytes, &other.bytes) || self.bytes == other.bytes)
    }
}

impl Eq for CacheKey {}

impl std::hash::Hash for CacheKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Snapshot of one cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned finished code with zero emission work.
    pub hits: u64,
    /// Lookups that had to compile (includes herd waiters that shared a
    /// racing compile).
    pub misses: u64,
    /// Ready entries dropped by LRU capacity enforcement.
    pub evictions: u64,
    /// Successful compiles inserted.
    pub inserts: u64,
}

#[derive(Debug, Default)]
struct StatCells {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
}

/// In-flight compile slot: `done` flips under the mutex, waiters sleep
/// on the condvar, and the result (or its absence, on failure) lives in
/// the shard map itself.
#[derive(Debug, Default)]
struct Build {
    done: Mutex<bool>,
    cv: Condvar,
}

#[derive(Debug)]
enum Slot<V: ?Sized> {
    Ready { val: Arc<V>, stamp: u64 },
    Building(Arc<Build>),
}

type Shard<V> = Mutex<HashMap<CacheKey, Slot<V>>>;

/// Sharded, content-addressed, LRU-capped cache of `Arc<V>` keyed by
/// [`CacheKey`]. `V` may be unsized (`LambdaCache<dyn Lambda>`).
pub struct LambdaCache<V: ?Sized> {
    shards: Vec<Shard<V>>,
    /// Max ready entries per shard (total capacity split across shards,
    /// rounded up — the global cap is approximate by design).
    per_shard: usize,
    clock: AtomicU64,
    stats: StatCells,
}

impl<V: ?Sized> std::fmt::Debug for LambdaCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LambdaCache")
            .field("shards", &self.shards.len())
            .field("per_shard", &self.per_shard)
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Clears a `Building` slot if the builder unwinds, so a panicking
/// compile never wedges the key.
struct BuildGuard<'c, V: ?Sized> {
    cache: &'c LambdaCache<V>,
    key: Option<CacheKey>,
    build: Arc<Build>,
}

impl<V: ?Sized> Drop for BuildGuard<'_, V> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            let mut shard = self.cache.shard(&key);
            shard.remove(&key);
            drop(shard);
            self.build.wake();
        }
    }
}

impl Build {
    fn wake(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        drop(done);
        self.cv.notify_all();
    }
}

impl<V: ?Sized> LambdaCache<V> {
    /// Creates a cache retaining at most ~`capacity` finished lambdas
    /// (LRU beyond that; a capacity of 0 caches nothing).
    pub fn new(capacity: usize) -> LambdaCache<V> {
        let nshards = capacity.clamp(1, 8);
        LambdaCache {
            shards: (0..nshards).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard: capacity.div_ceil(nshards),
            clock: AtomicU64::new(1),
            stats: StatCells::default(),
        }
    }

    fn shard(&self, key: &CacheKey) -> MutexGuard<'_, HashMap<CacheKey, Slot<V>>> {
        let idx = (key.hash as usize) % self.shards.len();
        self.shards[idx].lock().unwrap_or_else(|e| e.into_inner())
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up `key`, counting a hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<V>> {
        let mut shard = self.shard(key);
        match shard.get_mut(key) {
            Some(Slot::Ready { val, stamp }) => {
                *stamp = self.tick();
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                obs::note_lambda_cache_hit();
                Some(Arc::clone(val))
            }
            _ => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                obs::note_lambda_cache_miss();
                None
            }
        }
    }

    /// Returns the cached value for `key`, or runs `build` to produce
    /// it. Exactly one builder runs per key however many threads race;
    /// the others block and share the result. `build` runs *without* the
    /// shard lock held, so slow compiles don't serialize unrelated keys.
    ///
    /// # Errors
    ///
    /// The builder's typed error, handed to the builder *and* every
    /// waiter of that round. The failed slot is removed — the key stays
    /// usable and the next caller retries the compile.
    pub fn get_or_insert_with<E>(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> Result<Arc<V>, E>,
    ) -> Result<Arc<V>, E> {
        let mut build = Some(build);
        let mut waited = false;
        loop {
            let wait_on: Arc<Build>;
            {
                let mut shard = self.shard(&key);
                match shard.get_mut(&key) {
                    Some(Slot::Ready { val, stamp }) => {
                        *stamp = self.tick();
                        // A herd waiter that finds the result ready still
                        // experienced a miss (it waited for a compile).
                        if waited {
                            self.stats.misses.fetch_add(1, Ordering::Relaxed);
                            obs::note_lambda_cache_miss();
                        } else {
                            self.stats.hits.fetch_add(1, Ordering::Relaxed);
                            obs::note_lambda_cache_hit();
                        }
                        return Ok(Arc::clone(val));
                    }
                    Some(Slot::Building(b)) => {
                        wait_on = Arc::clone(b);
                    }
                    None => {
                        let b = Arc::new(Build::default());
                        shard.insert(key.clone(), Slot::Building(Arc::clone(&b)));
                        drop(shard);
                        self.stats.misses.fetch_add(1, Ordering::Relaxed);
                        obs::note_lambda_cache_miss();
                        return self.run_build(key, b, build.take().expect("builder reused"));
                    }
                }
            }
            waited = true;
            let mut done = wait_on.done.lock().unwrap_or_else(|e| e.into_inner());
            while !*done {
                done = wait_on.cv.wait(done).unwrap_or_else(|e| e.into_inner());
            }
            // Re-probe: either Ready (success) or vacant (failed build →
            // this thread becomes the next builder).
        }
    }

    fn run_build<E>(
        &self,
        key: CacheKey,
        build_slot: Arc<Build>,
        build: impl FnOnce() -> Result<Arc<V>, E>,
    ) -> Result<Arc<V>, E> {
        let mut guard = BuildGuard {
            cache: self,
            key: Some(key),
            build: Arc::clone(&build_slot),
        };
        let result = build();
        let key = guard.key.take().expect("build key consumed");
        match result {
            Ok(val) => {
                {
                    let mut shard = self.shard(&key);
                    shard.insert(
                        key.clone(),
                        Slot::Ready {
                            val: Arc::clone(&val),
                            stamp: self.tick(),
                        },
                    );
                    self.stats.inserts.fetch_add(1, Ordering::Relaxed);
                    obs::note_lambda_cache_insert();
                    self.enforce_capacity(&mut shard, &key);
                }
                build_slot.wake();
                Ok(val)
            }
            Err(e) => {
                {
                    let mut shard = self.shard(&key);
                    shard.remove(&key);
                }
                build_slot.wake();
                Err(e)
            }
        }
    }

    /// Evicts least-recently-used `Ready` entries (never `Building`
    /// slots, never `just_inserted`) until the shard is within its cap.
    fn enforce_capacity(&self, shard: &mut HashMap<CacheKey, Slot<V>>, just_inserted: &CacheKey) {
        loop {
            let ready = shard
                .iter()
                .filter(|(k, _)| *k != just_inserted)
                .filter_map(|(k, s)| match s {
                    Slot::Ready { stamp, .. } => Some((*stamp, k.clone())),
                    Slot::Building(_) => None,
                });
            let ready_count = shard
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count();
            if ready_count <= self.per_shard {
                return;
            }
            let Some((_, victim)) = ready.min_by_key(|(stamp, _)| *stamp) else {
                // Only the just-inserted entry is ready (per_shard == 0):
                // drop it — a zero-capacity cache caches nothing.
                shard.remove(just_inserted);
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                obs::note_lambda_cache_eviction();
                return;
            };
            shard.remove(&victim);
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            obs::note_lambda_cache_eviction();
        }
    }

    /// Ready entries currently cached (excludes in-flight builds).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready { .. }))
                    .count()
            })
            .sum()
    }

    /// Whether no finished code is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every ready entry (in-flight builds complete normally).
    /// Callers holding `Arc`s keep their code.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock()
                .unwrap_or_else(|e| e.into_inner())
                .retain(|_, slot| matches!(slot, Slot::Building(_)));
        }
    }

    /// Snapshot of this cache's counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            inserts: self.stats.inserts.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    fn key(n: u8) -> CacheKey {
        CacheKey::new(TargetId::Mips, vec![n])
    }

    #[test]
    fn hit_miss_insert_counters() {
        let c: LambdaCache<u32> = LambdaCache::new(8);
        assert!(c.get(&key(1)).is_none());
        let v = c
            .get_or_insert_with::<Infallible>(key(1), || Ok(Arc::new(7)))
            .unwrap();
        assert_eq!(*v, 7);
        assert_eq!(*c.get(&key(1)).unwrap(), 7);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.evictions), (1, 2, 1, 0));
    }

    #[test]
    fn same_bytes_different_target_do_not_alias() {
        let c: LambdaCache<u32> = LambdaCache::new(8);
        let ka = CacheKey::new(TargetId::Mips, vec![1, 2, 3]);
        let kb = CacheKey::new(TargetId::X64, vec![1, 2, 3]);
        assert_ne!(ka, kb);
        c.get_or_insert_with::<Infallible>(ka.clone(), || Ok(Arc::new(1)))
            .unwrap();
        c.get_or_insert_with::<Infallible>(kb.clone(), || Ok(Arc::new(2)))
            .unwrap();
        assert_eq!(*c.get(&ka).unwrap(), 1);
        assert_eq!(*c.get(&kb).unwrap(), 2);
    }

    #[test]
    fn forced_hash_collision_does_not_alias() {
        // Capacity 16 → 8 shards × 2 slots, so both colliding keys fit
        // in the shared shard and neither is evicted.
        let c: LambdaCache<u32> = LambdaCache::new(16);
        let ka = CacheKey::with_hash(TargetId::Mips, vec![1], 0xdead_beef);
        let kb = CacheKey::with_hash(TargetId::Mips, vec![2], 0xdead_beef);
        assert_eq!(ka.hash(), kb.hash());
        assert_ne!(ka, kb);
        c.get_or_insert_with::<Infallible>(ka.clone(), || Ok(Arc::new(1)))
            .unwrap();
        c.get_or_insert_with::<Infallible>(kb.clone(), || Ok(Arc::new(2)))
            .unwrap();
        assert_eq!(*c.get(&ka).unwrap(), 1);
        assert_eq!(*c.get(&kb).unwrap(), 2);
    }

    #[test]
    fn lru_eviction_respects_recency() {
        // Capacity 16 → 8 shards × 2 slots; hashes ≡ 0 (mod 8) pin all
        // three keys to shard 0, so the third insert must evict one.
        let c: LambdaCache<u32> = LambdaCache::new(16);
        let ka = CacheKey::with_hash(TargetId::Mips, vec![1], 0);
        let kb = CacheKey::with_hash(TargetId::Mips, vec![2], 8);
        let kc = CacheKey::with_hash(TargetId::Mips, vec![3], 16);
        c.get_or_insert_with::<Infallible>(ka.clone(), || Ok(Arc::new(1)))
            .unwrap();
        c.get_or_insert_with::<Infallible>(kb.clone(), || Ok(Arc::new(2)))
            .unwrap();
        // Touch ka so kb is the LRU victim when kc arrives.
        assert!(c.get(&ka).is_some());
        c.get_or_insert_with::<Infallible>(kc.clone(), || Ok(Arc::new(3)))
            .unwrap();
        assert!(c.get(&ka).is_some());
        assert!(c.get(&kb).is_none());
        assert!(c.get(&kc).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_keeps_caller_arcs_alive() {
        let c: LambdaCache<u32> = LambdaCache::new(1);
        let ka = CacheKey::with_hash(TargetId::Mips, vec![1], 0);
        let kb = CacheKey::with_hash(TargetId::Mips, vec![2], 0);
        let held = c
            .get_or_insert_with::<Infallible>(ka, || Ok(Arc::new(41)))
            .unwrap();
        c.get_or_insert_with::<Infallible>(kb, || Ok(Arc::new(42)))
            .unwrap();
        assert_eq!(*held, 41); // evicted from the cache, alive for us
    }

    #[test]
    fn failed_build_returns_error_and_leaves_key_usable() {
        let c: LambdaCache<u32> = LambdaCache::new(8);
        let err = c
            .get_or_insert_with(key(9), || Err::<Arc<u32>, _>("boom"))
            .unwrap_err();
        assert_eq!(err, "boom");
        // Not poisoned: the retry compiles and succeeds.
        let v = c
            .get_or_insert_with::<Infallible>(key(9), || Ok(Arc::new(5)))
            .unwrap();
        assert_eq!(*v, 5);
    }

    #[test]
    fn panicking_build_does_not_wedge_the_key() {
        let c: LambdaCache<u32> = LambdaCache::new(8);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = c.get_or_insert_with::<Infallible>(key(3), || panic!("compile exploded"));
        }));
        assert!(r.is_err());
        let v = c
            .get_or_insert_with::<Infallible>(key(3), || Ok(Arc::new(11)))
            .unwrap();
        assert_eq!(*v, 11);
    }

    #[test]
    fn thundering_herd_compiles_exactly_once() {
        const THREADS: usize = 8;
        let c: Arc<LambdaCache<u32>> = Arc::new(LambdaCache::new(8));
        let builds = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (c, builds, barrier) = (c.clone(), builds.clone(), barrier.clone());
                std::thread::spawn(move || {
                    barrier.wait();
                    let v = c
                        .get_or_insert_with::<Infallible>(key(7), || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(Arc::new(99))
                        })
                        .unwrap();
                    assert_eq!(*v, 99);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(builds.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn zero_capacity_caches_nothing_but_stays_usable() {
        let c: LambdaCache<u32> = LambdaCache::new(0);
        let v = c
            .get_or_insert_with::<Infallible>(key(1), || Ok(Arc::new(7)))
            .unwrap();
        assert_eq!(*v, 7);
        assert!(c.get(&key(1)).is_none());
        assert_eq!(c.len(), 0);
    }
}
