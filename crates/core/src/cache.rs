//! Content-addressed, sharded cache for finished dynamic code.
//!
//! Dynamic codegen is only "very fast" relative to executing the code
//! once; a serving system (the ROADMAP's north star) compiles the same
//! lambda across many requests, and the win comes from *not* compiling
//! the second time. [`LambdaCache`] is the workspace-wide primitive for
//! that amortization:
//!
//! - **Content-addressed.** A [`CacheKey`] is (target id, key bytes):
//!   either the serialized vcode stream (`Program::encode`) or a client
//!   key (DPF filter shape, ASH pipeline shape). The stored FNV-1a hash
//!   only *routes* (shard choice, bucket probe); equality is decided on
//!   the full bytes, so hash collisions can never alias two programs.
//! - **Sharded.** Entries spread over `min(8, capacity)` mutexed shards
//!   by key hash; concurrent compiles of different programs do not
//!   contend.
//! - **Thundering-herd safe.** The first thread to miss installs a
//!   `Building` slot and compiles; racers wait on a condvar and share
//!   the single result — exactly one compile per key, no matter how many
//!   threads race.
//! - **Never poisoned, never wedged.** A failed build removes the slot
//!   and hands the typed error to every waiter; the next caller simply
//!   retries. A panicking build likewise clears the slot (guard in
//!   [`LambdaCache::get_or_insert_with`]) so the key stays usable. And
//!   every condvar wait is *bounded*: a builder thread that dies without
//!   unwinding (or hangs) stalls its waiters for at most the configured
//!   stall timeout, after which the stuck slot is vacated and the waiter
//!   either retries as the builder ([`get_or_insert_with`]
//!   (LambdaCache::get_or_insert_with)) or surfaces a typed
//!   [`CacheError::Stalled`] ([`get_or_build`](LambdaCache::get_or_build)).
//! - **Capacity-capped LRU, builds included.** Each shard evicts its
//!   least-recently-used *ready* entry beyond its share of the capacity,
//!   and in-flight `Building` slots count against that share: a burst of
//!   cold keys caps out at `per_shard` simultaneous builds, with the
//!   overflow compiled *uncached* (a counted bypass) instead of growing
//!   the shard without bound. Eviction only drops the cache's `Arc` —
//!   code still referenced by callers stays alive (and, for native code,
//!   its mapping stays out of the executable-memory pool) until the last
//!   clone is gone.
//! - **Observable.** Per-cache [`CacheStats`] plus process-wide
//!   [`obs::lambda_cache_counters`](crate::obs::lambda_cache_counters).
//! - **Async-buildable.** [`crate::service::CompileService`] layers a
//!   background worker pool over the same `Building`-slot machinery via
//!   the crate-internal [`LambdaCache::begin_build`] / [`BuildTicket`]
//!   surface, so compilation can leave the request path entirely.

use crate::engine::{fnv1a, TargetId};
use crate::obs;
use std::collections::HashMap;
// Synchronization comes from the `vsync` facade (std in production,
// model-checked scheduler under the `mcheck` feature) so the Building-
// slot protocol below is explorable by `crates/mcheck`; the facade
// `Instant` also virtualizes the stall clock, making `Stalled` paths
// deterministically replayable. Facade rule: no raw `std::sync` in this
// module (see DESIGN.md "Model-checked concurrency").
use crate::vsync::{self, Arc, AtomicU64, Condvar, Duration, Instant, Mutex, MutexGuard, Ordering};

/// Key of one cached lambda: the backend it was compiled for plus the
/// content bytes that identify the program.
///
/// The bytes are shared (`Arc`) so warm-path lookups clone the key in
/// O(1) instead of copying the serialized stream.
#[derive(Debug, Clone)]
pub struct CacheKey {
    target: TargetId,
    bytes: Arc<[u8]>,
    hash: u64,
}

/// Routing hash of (target, content hash): a cheap avalanche mix, so a
/// caller with a memoized content hash builds a key without re-scanning
/// the bytes. Every constructor must agree on this function — the stored
/// hash must be a function of (target, bytes) for `HashMap` correctness.
fn route_hash(target: TargetId, content: u64) -> u64 {
    content ^ (target.index() as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

impl CacheKey {
    /// Content-addressed key: `bytes` is the program identity (e.g.
    /// `Program::encode()`); the hash mixes FNV-1a of the bytes with the
    /// target id, so the same stream on two backends routes — and keys —
    /// differently.
    pub fn new(target: TargetId, bytes: Vec<u8>) -> CacheKey {
        let hash = route_hash(target, fnv1a(&bytes));
        CacheKey {
            target,
            bytes: bytes.into(),
            hash,
        }
    }

    /// Key from an already-serialized, already-hashed identity (the
    /// memoized `Program::encoded` fast path): no byte scan, no copy.
    /// `content_hash` MUST be FNV-1a of `bytes` — the constructors must
    /// agree so equal keys hash equally.
    pub fn from_encoded(target: TargetId, bytes: Arc<[u8]>, content_hash: u64) -> CacheKey {
        CacheKey {
            target,
            hash: route_hash(target, content_hash),
            bytes,
        }
    }

    /// Derives the cache identity of a higher compilation *tier* of the
    /// same program: same target, content bytes prefixed with a tier tag.
    ///
    /// The tag byte is `0xF0 | tier`, which no base key can start with —
    /// a `Program::encode()` stream begins with its argument count
    /// (≤ `MAX_PROGRAM_ARGS`) — so tiered keys can never alias a tier-0
    /// entry, and distinct tiers never alias each other. Tier-2
    /// recompilation publishes optimized code under `self.tiered(2)`
    /// while the baseline entry stays resident under `self`.
    pub fn tiered(&self, tier: u8) -> CacheKey {
        debug_assert!(tier < 0x10, "tier tag must fit the 0xF0 prefix");
        let mut bytes = Vec::with_capacity(self.bytes.len() + 1);
        bytes.push(0xF0 | (tier & 0x0F));
        bytes.extend_from_slice(&self.bytes);
        CacheKey {
            target: self.target,
            hash: route_hash(self.target, fnv1a(&bytes)),
            bytes: bytes.into(),
        }
    }

    /// Client-hash key for callers that already maintain a collision-free
    /// 64-bit identity. The hash bytes *are* the content, so two clients
    /// passing the same `h` for different programs will alias — the
    /// client key must be collision-free by construction.
    pub fn from_client_hash(target: TargetId, h: u64) -> CacheKey {
        CacheKey::new(target, h.to_le_bytes().to_vec())
    }

    /// Key with an explicitly injected routing hash. Exists so tests can
    /// force hash collisions and prove that equality on the bytes keeps
    /// colliding keys distinct.
    pub fn with_hash(target: TargetId, bytes: Vec<u8>, hash: u64) -> CacheKey {
        CacheKey {
            target,
            bytes: bytes.into(),
            hash,
        }
    }

    /// The backend this key is scoped to.
    pub fn target(&self) -> TargetId {
        self.target
    }

    /// The routing hash (shard choice and bucket probe only).
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The content bytes — the serialized program identity. The
    /// persistent tier embeds these verbatim in each artifact and
    /// fingerprints them (plain FNV-1a, no process-local routing salt)
    /// to name the artifact file, so the same program maps to the same
    /// file across processes.
    pub fn content(&self) -> &[u8] {
        &self.bytes
    }
}

// Equality deliberately ignores `hash`: the hash routes, the bytes
// decide. Hash must agree with Eq for HashMap correctness, which holds
// because equal (target, bytes) always produce the same stored hash via
// the public constructors, and `with_hash` colliders compare unequal on
// bytes and merely probe the same bucket.
impl PartialEq for CacheKey {
    fn eq(&self, other: &CacheKey) -> bool {
        self.target == other.target
            // Same shared allocation (a memoized Program re-looked-up):
            // content equality without the byte scan.
            && (Arc::ptr_eq(&self.bytes, &other.bytes) || self.bytes == other.bytes)
    }
}

impl Eq for CacheKey {}

impl std::hash::Hash for CacheKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Snapshot of one cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that returned finished code with zero emission work.
    pub hits: u64,
    /// Lookups that had to compile (includes herd waiters that shared a
    /// racing compile).
    pub misses: u64,
    /// Ready entries dropped by LRU capacity enforcement.
    pub evictions: u64,
    /// Successful compiles inserted.
    pub inserts: u64,
    /// Condvar waits that exceeded the stall timeout: a builder died
    /// without unwinding (or hung) and its slot was forcibly vacated.
    pub stalls: u64,
    /// Compiles run *uncached* because the shard was already at its
    /// simultaneous-build cap (the result was returned but not shared).
    pub bypasses: u64,
}

#[derive(Debug, Default)]
struct StatCells {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    inserts: AtomicU64,
    stalls: AtomicU64,
    bypasses: AtomicU64,
}

/// Error from a bounded cache build ([`LambdaCache::get_or_build`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError<E> {
    /// The builder ran and failed with its typed error.
    Build(E),
    /// The in-flight builder for this key made no progress for the
    /// whole stall window: it died without unwinding, or hung. The
    /// stuck `Building` slot has been vacated, so the next caller can
    /// retry the compile.
    Stalled {
        /// How long this caller waited before giving up.
        waited: Duration,
    },
}

impl<E: std::fmt::Display> std::fmt::Display for CacheError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Build(e) => write!(f, "build failed: {e}"),
            CacheError::Stalled { waited } => {
                write!(f, "in-flight build stalled (waited {waited:?})")
            }
        }
    }
}

impl<E: std::fmt::Debug + std::fmt::Display> std::error::Error for CacheError<E> {}

/// In-flight compile slot: `done` flips under the mutex, waiters sleep
/// on the condvar, and the result (or its absence, on failure) lives in
/// the shard map itself. The `Arc<Build>` pointer identity doubles as
/// the build's *generation*: vacate/insert decisions compare pointers so
/// a stale builder can never clobber a successor's slot.
#[derive(Debug, Default)]
pub(crate) struct Build {
    done: Mutex<bool>,
    cv: Condvar,
}

#[derive(Debug)]
enum Slot<V: ?Sized> {
    Ready { val: Arc<V>, stamp: u64 },
    Building(Arc<Build>),
}

type Shard<V> = Mutex<HashMap<CacheKey, Slot<V>>>;

/// Default bound on any one condvar wait for an in-flight build: long
/// enough that no real compile in this workspace comes near it, short
/// enough that a dead builder cannot wedge a request thread forever.
pub const DEFAULT_STALL_TIMEOUT: Duration = Duration::from_secs(10);

/// Sharded, content-addressed, LRU-capped cache of `Arc<V>` keyed by
/// [`CacheKey`]. `V` may be unsized (`LambdaCache<dyn Lambda>`).
pub struct LambdaCache<V: ?Sized> {
    shards: Vec<Shard<V>>,
    /// Max entries per shard — ready *plus* in-flight `Building` (total
    /// capacity split across shards, rounded up — the global cap is
    /// approximate by design).
    per_shard: usize,
    /// Cap on simultaneous `Building` slots per shard; cold-key bursts
    /// beyond it compile uncached (see [`CacheStats::bypasses`]).
    max_builds: usize,
    /// Upper bound on one condvar wait for an in-flight build.
    stall: Duration,
    clock: AtomicU64,
    stats: StatCells,
}

impl<V: ?Sized> std::fmt::Debug for LambdaCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LambdaCache")
            .field("shards", &self.shards.len())
            .field("per_shard", &self.per_shard)
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Clears a `Building` slot if the builder unwinds, so a panicking
/// compile never wedges the key. Removal is pointer-checked: if a
/// stall-recovery path already vacated this build and a successor moved
/// in, the successor's slot is left untouched.
struct BuildGuard<'c, V: ?Sized> {
    cache: &'c LambdaCache<V>,
    key: Option<CacheKey>,
    build: Arc<Build>,
}

impl<V: ?Sized> Drop for BuildGuard<'_, V> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            self.cache.vacate_if(&key, &self.build);
            self.build.wake();
        }
    }
}

impl Build {
    pub(crate) fn wake(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        drop(done);
        if vsync::injected(vsync::Injection::DropCacheNotify) {
            // Mutation under test (model checker only): the builder
            // "forgets" to notify. Waiters must then limp home on the
            // stall timeout — which the explorer observes as a virtual-
            // clock jump, failing the latency assertion in the cache
            // model program. Proves lost notifies are catchable.
            return;
        }
        self.cv.notify_all();
    }
}

impl<V: ?Sized> LambdaCache<V> {
    /// Creates a cache retaining at most ~`capacity` finished lambdas
    /// (LRU beyond that; a capacity of 0 caches nothing).
    pub fn new(capacity: usize) -> LambdaCache<V> {
        let nshards = capacity.clamp(1, 8);
        let per_shard = capacity.div_ceil(nshards);
        LambdaCache {
            shards: (0..nshards).map(|_| Mutex::new(HashMap::new())).collect(),
            per_shard,
            // At least one build must always be admitted or a cold
            // zero-capacity cache could never compile at all.
            max_builds: per_shard.max(1),
            stall: DEFAULT_STALL_TIMEOUT,
            clock: AtomicU64::new(1),
            stats: StatCells::default(),
        }
    }

    /// Sets the stall timeout: the longest any caller will wait on one
    /// in-flight build before vacating the stuck slot (see
    /// [`CacheError::Stalled`]). Builder-style API for construction.
    #[must_use]
    pub fn with_stall_timeout(mut self, stall: Duration) -> LambdaCache<V> {
        self.stall = stall;
        self
    }

    /// The configured stall timeout.
    pub fn stall_timeout(&self) -> Duration {
        self.stall
    }

    fn shard(&self, key: &CacheKey) -> MutexGuard<'_, HashMap<CacheKey, Slot<V>>> {
        let idx = (key.hash as usize) % self.shards.len();
        self.shards[idx].lock().unwrap_or_else(|e| e.into_inner())
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up `key`, counting a hit or miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<V>> {
        let mut shard = self.shard(key);
        match shard.get_mut(key) {
            Some(Slot::Ready { val, stamp }) => {
                *stamp = self.tick();
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                obs::note_lambda_cache_hit();
                Some(Arc::clone(val))
            }
            _ => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                obs::note_lambda_cache_miss();
                None
            }
        }
    }

    /// Looks up `key` without counting a hit or miss. Degraded-serving
    /// handles poll this every call while their native build is in
    /// flight; counting each poll as a miss would drown the real
    /// hit/miss signal. The LRU stamp *is* refreshed on success.
    pub fn peek(&self, key: &CacheKey) -> Option<Arc<V>> {
        let mut shard = self.shard(key);
        match shard.get_mut(key) {
            Some(Slot::Ready { val, stamp }) => {
                *stamp = self.tick();
                Some(Arc::clone(val))
            }
            _ => None,
        }
    }

    /// Removes a `Building` slot only if it still belongs to `build`
    /// (pointer identity), waking its waiters. Returns whether the slot
    /// was vacated. The check makes vacating idempotent and safe against
    /// successors: a new builder's slot under the same key is a
    /// different `Arc` and is never touched.
    pub(crate) fn vacate_if(&self, key: &CacheKey, build: &Arc<Build>) -> bool {
        let mut shard = self.shard(key);
        if matches!(shard.get(key), Some(Slot::Building(b)) if Arc::ptr_eq(b, build)) {
            shard.remove(key);
            drop(shard);
            build.wake();
            true
        } else {
            false
        }
    }

    /// Returns the cached value for `key`, or runs `build` to produce
    /// it. Exactly one builder runs per key however many threads race;
    /// the others block and share the result. `build` runs *without* the
    /// shard lock held, so slow compiles don't serialize unrelated keys.
    ///
    /// Waits are bounded by the cache's stall timeout: if the in-flight
    /// builder makes no progress for the whole window (it died without
    /// unwinding, or hung), the stuck slot is vacated and this caller
    /// retries — typically becoming the next builder itself. The
    /// self-healing retry is why this method needs no stall error; use
    /// [`get_or_build`](Self::get_or_build) to surface stalls as typed
    /// errors instead.
    ///
    /// # Errors
    ///
    /// The builder's typed error, handed to the builder *and* every
    /// waiter of that round. The failed slot is removed — the key stays
    /// usable and the next caller retries the compile.
    pub fn get_or_insert_with<E>(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> Result<Arc<V>, E>,
    ) -> Result<Arc<V>, E> {
        let mut build = Some(build);
        loop {
            match self.attempt(&key, &mut build, self.stall) {
                Attempt::Done(result) => return result,
                // The stuck slot was vacated; retry — this thread
                // becomes the next builder unless someone beat it.
                Attempt::Stalled { .. } => continue,
            }
        }
    }

    /// [`get_or_insert_with`](Self::get_or_insert_with) with an explicit
    /// wait bound and a typed stall outcome: a caller that would rather
    /// degrade (serve a fallback) than keep waiting uses this entry
    /// point. On [`CacheError::Stalled`] the stuck `Building` slot has
    /// already been vacated, so a later retry can compile.
    ///
    /// # Errors
    ///
    /// [`CacheError::Build`] wraps the builder's typed error;
    /// [`CacheError::Stalled`] reports a builder that made no progress
    /// for the whole `stall` window.
    pub fn get_or_build<E>(
        &self,
        key: CacheKey,
        build: impl FnOnce() -> Result<Arc<V>, E>,
        stall: Duration,
    ) -> Result<Arc<V>, CacheError<E>> {
        let mut build = Some(build);
        match self.attempt(&key, &mut build, stall) {
            Attempt::Done(result) => result.map_err(CacheError::Build),
            Attempt::Stalled { waited } => Err(CacheError::Stalled { waited }),
        }
    }

    /// One bounded lookup-or-build round. Takes the builder by
    /// `&mut Option` so a stalled round hands it back unconsumed for the
    /// caller's retry policy.
    fn attempt<E, F: FnOnce() -> Result<Arc<V>, E>>(
        &self,
        key: &CacheKey,
        build: &mut Option<F>,
        stall: Duration,
    ) -> Attempt<V, E> {
        let mut waited = false;
        loop {
            let wait_on: Arc<Build>;
            {
                let mut shard = self.shard(key);
                match shard.get_mut(key) {
                    Some(Slot::Ready { val, stamp }) => {
                        *stamp = self.tick();
                        // A herd waiter that finds the result ready still
                        // experienced a miss (it waited for a compile).
                        if waited {
                            self.stats.misses.fetch_add(1, Ordering::Relaxed);
                            obs::note_lambda_cache_miss();
                        } else {
                            self.stats.hits.fetch_add(1, Ordering::Relaxed);
                            obs::note_lambda_cache_hit();
                        }
                        return Attempt::Done(Ok(Arc::clone(val)));
                    }
                    Some(Slot::Building(b)) => {
                        wait_on = Arc::clone(b);
                    }
                    None => {
                        let building = count_building(&shard);
                        if building >= self.max_builds {
                            // The shard is saturated with in-flight
                            // builds: compile uncached rather than grow
                            // past the configured capacity.
                            drop(shard);
                            self.stats.misses.fetch_add(1, Ordering::Relaxed);
                            obs::note_lambda_cache_miss();
                            self.stats.bypasses.fetch_add(1, Ordering::Relaxed);
                            obs::note_lambda_cache_bypass();
                            let build = build.take().expect("builder reused");
                            return Attempt::Done(build());
                        }
                        let b = Arc::new(Build::default());
                        shard.insert(key.clone(), Slot::Building(Arc::clone(&b)));
                        drop(shard);
                        self.stats.misses.fetch_add(1, Ordering::Relaxed);
                        obs::note_lambda_cache_miss();
                        let build = build.take().expect("builder reused");
                        return Attempt::Done(self.run_build(key.clone(), b, build));
                    }
                }
            }
            waited = true;
            // Bounded wait: the window restarts per build slot — a
            // stall means *this* builder made no progress for `stall`.
            let start = Instant::now();
            let deadline = start + stall;
            let mut done = wait_on.done.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if *done {
                    break;
                }
                let now = Instant::now();
                if now >= deadline {
                    drop(done);
                    // Only counts as a stall if the slot really was
                    // still this build; otherwise the builder finished
                    // between our timeout and the vacate — re-probe.
                    if self.vacate_if(key, &wait_on) {
                        self.stats.stalls.fetch_add(1, Ordering::Relaxed);
                        obs::note_lambda_cache_stall();
                        return Attempt::Stalled {
                            waited: start.elapsed(),
                        };
                    }
                    break;
                }
                let (guard, _) = wait_on
                    .cv
                    .wait_timeout(done, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                done = guard;
            }
            // Re-probe: either Ready (success) or vacant (failed build →
            // this thread becomes the next builder).
        }
    }

    fn run_build<E>(
        &self,
        key: CacheKey,
        build_slot: Arc<Build>,
        build: impl FnOnce() -> Result<Arc<V>, E>,
    ) -> Result<Arc<V>, E> {
        let mut guard = BuildGuard {
            cache: self,
            key: Some(key),
            build: Arc::clone(&build_slot),
        };
        let result = build();
        let key = guard.key.take().expect("build key consumed");
        match result {
            Ok(val) => {
                // If the slot was vacated by stall recovery the value is
                // still returned to this caller, just not published —
                // the successor builder owns the key now.
                self.install_if(&key, &build_slot, Arc::clone(&val));
                build_slot.wake();
                Ok(val)
            }
            Err(e) => {
                self.vacate_if(&key, &build_slot);
                build_slot.wake();
                Err(e)
            }
        }
    }

    /// Publishes `val` under `key` if the `Building` slot still belongs
    /// to `build` (pointer identity), enforcing capacity. Returns
    /// whether the value was published.
    fn install_if(&self, key: &CacheKey, build: &Arc<Build>, val: Arc<V>) -> bool {
        let mut shard = self.shard(key);
        if matches!(shard.get(key), Some(Slot::Building(b)) if Arc::ptr_eq(b, build)) {
            shard.insert(
                key.clone(),
                Slot::Ready {
                    val,
                    stamp: self.tick(),
                },
            );
            self.stats.inserts.fetch_add(1, Ordering::Relaxed);
            obs::note_lambda_cache_insert();
            self.evict_to(&mut shard, key);
            true
        } else {
            false
        }
    }

    /// Evicts least-recently-used `Ready` entries (never `Building`
    /// slots, never `just_inserted`) until the shard is within its cap.
    /// In-flight `Building` slots count against the cap — capacity is a
    /// bound on the shard's footprint, not just its finished entries —
    /// but they are never victims; they vacate on completion.
    fn evict_to(&self, shard: &mut HashMap<CacheKey, Slot<V>>, just_inserted: &CacheKey) {
        loop {
            let occupied = shard.len(); // ready + building
            if occupied <= self.per_shard {
                return;
            }
            let victim = shard
                .iter()
                .filter(|(k, _)| *k != just_inserted)
                .filter_map(|(k, s)| match s {
                    Slot::Ready { stamp, .. } => Some((*stamp, k.clone())),
                    Slot::Building(_) => None,
                })
                .min_by_key(|(stamp, _)| *stamp);
            let Some((_, victim)) = victim else {
                // No victim but still over cap: every other slot is an
                // in-flight build (or per_shard == 0). Drop the
                // just-inserted entry — the result was already handed to
                // its callers, it just isn't shared.
                if matches!(shard.get(just_inserted), Some(Slot::Ready { .. })) {
                    shard.remove(just_inserted);
                    self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                    obs::note_lambda_cache_eviction();
                }
                return;
            };
            shard.remove(&victim);
            self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            obs::note_lambda_cache_eviction();
        }
    }

    /// Probes `key` for the async compile service: a `Ready` hit returns
    /// the value, an in-flight build reports itself, and a vacant slot
    /// is *claimed* — a `Building` slot is installed and the returned
    /// [`BuildTicket`] must resolve it (finish, abandon, or drop).
    pub(crate) fn begin_build(self: &Arc<Self>, key: &CacheKey) -> Probe<V> {
        let mut shard = self.shard(key);
        match shard.get_mut(key) {
            Some(Slot::Ready { val, stamp }) => {
                *stamp = self.tick();
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                obs::note_lambda_cache_hit();
                Probe::Ready(Arc::clone(val))
            }
            Some(Slot::Building(_)) => Probe::InFlight,
            None => {
                if count_building(&shard) >= self.max_builds {
                    return Probe::Busy;
                }
                let b = Arc::new(Build::default());
                shard.insert(key.clone(), Slot::Building(Arc::clone(&b)));
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                obs::note_lambda_cache_miss();
                Probe::Claimed(BuildTicket {
                    cache: Arc::clone(self),
                    key: key.clone(),
                    build: b,
                    armed: true,
                })
            }
        }
    }

    /// Ready entries currently cached (excludes in-flight builds).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready { .. }))
                    .count()
            })
            .sum()
    }

    /// Whether no finished code is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every ready entry (in-flight builds complete normally).
    /// Callers holding `Arc`s keep their code.
    pub fn clear(&self) {
        for s in &self.shards {
            s.lock()
                .unwrap_or_else(|e| e.into_inner())
                .retain(|_, slot| matches!(slot, Slot::Building(_)));
        }
    }

    /// Snapshot of this cache's counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            evictions: self.stats.evictions.load(Ordering::Relaxed),
            inserts: self.stats.inserts.load(Ordering::Relaxed),
            stalls: self.stats.stalls.load(Ordering::Relaxed),
            bypasses: self.stats.bypasses.load(Ordering::Relaxed),
        }
    }
}

/// `Building` slots currently in flight in one locked shard.
fn count_building<V: ?Sized>(shard: &HashMap<CacheKey, Slot<V>>) -> usize {
    shard
        .values()
        .filter(|s| matches!(s, Slot::Building(_)))
        .count()
}

/// Outcome of one bounded lookup-or-build round (internal).
enum Attempt<V: ?Sized, E> {
    Done(Result<Arc<V>, E>),
    Stalled { waited: Duration },
}

/// Result of [`LambdaCache::begin_build`]: the async service's view of
/// one key.
#[derive(Debug)]
pub(crate) enum Probe<V: ?Sized> {
    /// Finished code was already cached.
    Ready(Arc<V>),
    /// Another build (sync or async) holds the `Building` slot.
    InFlight,
    /// The shard is at its simultaneous-build cap; nothing was claimed.
    Busy,
    /// A `Building` slot was installed for the caller, who must resolve
    /// the ticket.
    Claimed(BuildTicket<V>),
}

/// Exclusive claim on one key's `Building` slot, held by an async
/// builder. Exactly one of [`finish`](Self::finish) /
/// [`abandon`](Self::abandon) resolves it; dropping the ticket (builder
/// panicked, queue torn down) abandons implicitly so the key can never
/// wedge. All resolution is pointer-checked: if the slot was vacated by
/// stall recovery and reclaimed by a successor, a stale ticket is a
/// no-op.
#[derive(Debug)]
pub(crate) struct BuildTicket<V: ?Sized> {
    cache: Arc<LambdaCache<V>>,
    key: CacheKey,
    build: Arc<Build>,
    armed: bool,
}

impl<V: ?Sized> BuildTicket<V> {
    /// The key this ticket claims.
    pub(crate) fn key(&self) -> &CacheKey {
        &self.key
    }

    /// Publishes `val` under the key and wakes waiters. Returns `false`
    /// if the slot was no longer this build's (vacated by stall/deadline
    /// recovery) — the value is then *not* cached and the caller should
    /// treat the build as expired.
    pub(crate) fn finish(mut self, val: Arc<V>) -> bool {
        self.armed = false;
        let published = self.cache.install_if(&self.key, &self.build, val);
        self.build.wake();
        published
    }

    /// Vacates the slot (build failed, expired, or was shed) and wakes
    /// waiters so they can retry.
    pub(crate) fn abandon(mut self) {
        self.armed = false;
        self.cache.vacate_if(&self.key, &self.build);
        self.build.wake();
    }
}

impl<V: ?Sized> Drop for BuildTicket<V> {
    fn drop(&mut self) {
        if self.armed {
            self.cache.vacate_if(&self.key, &self.build);
            self.build.wake();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::convert::Infallible;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    fn key(n: u8) -> CacheKey {
        CacheKey::new(TargetId::Mips, vec![n])
    }

    #[test]
    fn hit_miss_insert_counters() {
        let c: LambdaCache<u32> = LambdaCache::new(8);
        assert!(c.get(&key(1)).is_none());
        let v = c
            .get_or_insert_with::<Infallible>(key(1), || Ok(Arc::new(7)))
            .unwrap();
        assert_eq!(*v, 7);
        assert_eq!(*c.get(&key(1)).unwrap(), 7);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.inserts, s.evictions), (1, 2, 1, 0));
    }

    #[test]
    fn same_bytes_different_target_do_not_alias() {
        let c: LambdaCache<u32> = LambdaCache::new(8);
        let ka = CacheKey::new(TargetId::Mips, vec![1, 2, 3]);
        let kb = CacheKey::new(TargetId::X64, vec![1, 2, 3]);
        assert_ne!(ka, kb);
        c.get_or_insert_with::<Infallible>(ka.clone(), || Ok(Arc::new(1)))
            .unwrap();
        c.get_or_insert_with::<Infallible>(kb.clone(), || Ok(Arc::new(2)))
            .unwrap();
        assert_eq!(*c.get(&ka).unwrap(), 1);
        assert_eq!(*c.get(&kb).unwrap(), 2);
    }

    #[test]
    fn forced_hash_collision_does_not_alias() {
        // Capacity 16 → 8 shards × 2 slots, so both colliding keys fit
        // in the shared shard and neither is evicted.
        let c: LambdaCache<u32> = LambdaCache::new(16);
        let ka = CacheKey::with_hash(TargetId::Mips, vec![1], 0xdead_beef);
        let kb = CacheKey::with_hash(TargetId::Mips, vec![2], 0xdead_beef);
        assert_eq!(ka.hash(), kb.hash());
        assert_ne!(ka, kb);
        c.get_or_insert_with::<Infallible>(ka.clone(), || Ok(Arc::new(1)))
            .unwrap();
        c.get_or_insert_with::<Infallible>(kb.clone(), || Ok(Arc::new(2)))
            .unwrap();
        assert_eq!(*c.get(&ka).unwrap(), 1);
        assert_eq!(*c.get(&kb).unwrap(), 2);
    }

    #[test]
    fn lru_eviction_respects_recency() {
        // Capacity 16 → 8 shards × 2 slots; hashes ≡ 0 (mod 8) pin all
        // three keys to shard 0, so the third insert must evict one.
        let c: LambdaCache<u32> = LambdaCache::new(16);
        let ka = CacheKey::with_hash(TargetId::Mips, vec![1], 0);
        let kb = CacheKey::with_hash(TargetId::Mips, vec![2], 8);
        let kc = CacheKey::with_hash(TargetId::Mips, vec![3], 16);
        c.get_or_insert_with::<Infallible>(ka.clone(), || Ok(Arc::new(1)))
            .unwrap();
        c.get_or_insert_with::<Infallible>(kb.clone(), || Ok(Arc::new(2)))
            .unwrap();
        // Touch ka so kb is the LRU victim when kc arrives.
        assert!(c.get(&ka).is_some());
        c.get_or_insert_with::<Infallible>(kc.clone(), || Ok(Arc::new(3)))
            .unwrap();
        assert!(c.get(&ka).is_some());
        assert!(c.get(&kb).is_none());
        assert!(c.get(&kc).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn eviction_keeps_caller_arcs_alive() {
        let c: LambdaCache<u32> = LambdaCache::new(1);
        let ka = CacheKey::with_hash(TargetId::Mips, vec![1], 0);
        let kb = CacheKey::with_hash(TargetId::Mips, vec![2], 0);
        let held = c
            .get_or_insert_with::<Infallible>(ka, || Ok(Arc::new(41)))
            .unwrap();
        c.get_or_insert_with::<Infallible>(kb, || Ok(Arc::new(42)))
            .unwrap();
        assert_eq!(*held, 41); // evicted from the cache, alive for us
    }

    #[test]
    fn failed_build_returns_error_and_leaves_key_usable() {
        let c: LambdaCache<u32> = LambdaCache::new(8);
        let err = c
            .get_or_insert_with(key(9), || Err::<Arc<u32>, _>("boom"))
            .unwrap_err();
        assert_eq!(err, "boom");
        // Not poisoned: the retry compiles and succeeds.
        let v = c
            .get_or_insert_with::<Infallible>(key(9), || Ok(Arc::new(5)))
            .unwrap();
        assert_eq!(*v, 5);
    }

    #[test]
    fn panicking_build_does_not_wedge_the_key() {
        let c: LambdaCache<u32> = LambdaCache::new(8);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = c.get_or_insert_with::<Infallible>(key(3), || panic!("compile exploded"));
        }));
        assert!(r.is_err());
        let v = c
            .get_or_insert_with::<Infallible>(key(3), || Ok(Arc::new(11)))
            .unwrap();
        assert_eq!(*v, 11);
    }

    #[test]
    fn thundering_herd_compiles_exactly_once() {
        const THREADS: usize = 8;
        let c: Arc<LambdaCache<u32>> = Arc::new(LambdaCache::new(8));
        let builds = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(THREADS));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let (c, builds, barrier) = (c.clone(), builds.clone(), barrier.clone());
                std::thread::spawn(move || {
                    barrier.wait();
                    let v = c
                        .get_or_insert_with::<Infallible>(key(7), || {
                            builds.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(std::time::Duration::from_millis(20));
                            Ok(Arc::new(99))
                        })
                        .unwrap();
                    assert_eq!(*v, 99);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(builds.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn zero_capacity_caches_nothing_but_stays_usable() {
        let c: LambdaCache<u32> = LambdaCache::new(0);
        let v = c
            .get_or_insert_with::<Infallible>(key(1), || Ok(Arc::new(7)))
            .unwrap();
        assert_eq!(*v, 7);
        assert!(c.get(&key(1)).is_none());
        assert!(c.is_empty());
    }

    /// A `Building` slot whose builder will never resolve it — the
    /// "builder thread died without unwinding" scenario. Returns the
    /// build generation so the test can assert vacate semantics.
    fn wedge(c: &LambdaCache<u32>, k: &CacheKey) -> Arc<Build> {
        let b = Arc::new(Build::default());
        c.shard(k).insert(k.clone(), Slot::Building(Arc::clone(&b)));
        b
    }

    #[test]
    fn stalled_build_surfaces_typed_error_and_vacates() {
        let c: LambdaCache<u32> = LambdaCache::new(8);
        wedge(&c, &key(1));
        let err = c
            .get_or_build::<&str>(key(1), || Ok(Arc::new(1)), Duration::from_millis(20))
            .unwrap_err();
        match err {
            CacheError::Stalled { waited } => assert!(waited >= Duration::from_millis(20)),
            CacheError::Build(e) => panic!("expected Stalled, got Build({e})"),
        }
        assert_eq!(c.stats().stalls, 1);
        // The dead slot was vacated: the key is immediately buildable.
        let v = c
            .get_or_build::<&str>(key(1), || Ok(Arc::new(5)), Duration::from_millis(20))
            .unwrap();
        assert_eq!(*v, 5);
    }

    #[test]
    fn get_or_insert_with_self_heals_after_stall() {
        // The infallible path retries instead of surfacing Stalled: the
        // waiter that vacated the dead slot becomes the builder.
        let c: LambdaCache<u32> = LambdaCache::new(8).with_stall_timeout(Duration::from_millis(20));
        wedge(&c, &key(2));
        let t0 = std::time::Instant::now();
        let v = c
            .get_or_insert_with::<Infallible>(key(2), || Ok(Arc::new(9)))
            .unwrap();
        assert_eq!(*v, 9);
        assert!(t0.elapsed() >= Duration::from_millis(20));
        assert_eq!(c.stats().stalls, 1);
        assert_eq!(*c.get(&key(2)).unwrap(), 9);
    }

    #[test]
    fn stale_builder_cannot_clobber_successor() {
        // A builder that outlives its vacated slot must not overwrite
        // the successor build that reclaimed the key.
        let c: Arc<LambdaCache<u32>> = Arc::new(LambdaCache::new(8));
        let stale = wedge(&c, &key(3));
        assert!(c.vacate_if(&key(3), &stale), "vacate the dead build");
        let v = c
            .get_or_insert_with::<Infallible>(key(3), || Ok(Arc::new(42)))
            .unwrap();
        assert_eq!(*v, 42);
        // The stale generation tries to publish late: ptr-check rejects.
        assert!(!c.install_if(&key(3), &stale, Arc::new(7)));
        assert!(!c.vacate_if(&key(3), &stale));
        assert_eq!(*c.get(&key(3)).unwrap(), 42);
    }

    #[test]
    fn building_slots_count_against_capacity_and_bypass() {
        // Capacity 8 → 8 shards × 1 slot. Wedge a build into the shard
        // of a colliding key: the next cold build on that shard is over
        // the cap and must bypass (compile uncached), not queue behind
        // the cap or grow the shard.
        let c: LambdaCache<u32> = LambdaCache::new(8);
        let ka = CacheKey::with_hash(TargetId::Mips, vec![1], 0);
        let kb = CacheKey::with_hash(TargetId::Mips, vec![2], 8); // same shard
        wedge(&c, &ka);
        let v = c
            .get_or_build::<&str>(kb.clone(), || Ok(Arc::new(2)), Duration::from_millis(50))
            .unwrap();
        assert_eq!(*v, 2);
        assert_eq!(c.stats().bypasses, 1);
        // Bypass result is served but not cached (the shard is full of
        // in-flight builds).
        assert!(c.peek(&kb).is_none());
    }

    #[test]
    fn begin_build_claims_once_and_reports_states() {
        let c: Arc<LambdaCache<u32>> = Arc::new(LambdaCache::new(8));
        let t1 = match c.begin_build(&key(4)) {
            Probe::Claimed(t) => t,
            other => panic!("expected Claimed, got {other:?}"),
        };
        assert!(matches!(c.begin_build(&key(4)), Probe::InFlight));
        assert!(t1.finish(Arc::new(4)));
        match c.begin_build(&key(4)) {
            Probe::Ready(v) => assert_eq!(*v, 4),
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn dropped_ticket_vacates_and_wakes_waiters() {
        let c: Arc<LambdaCache<u32>> = Arc::new(LambdaCache::new(8));
        let ticket = match c.begin_build(&key(5)) {
            Probe::Claimed(t) => t,
            other => panic!("expected Claimed, got {other:?}"),
        };
        let waiter = {
            let c = Arc::clone(&c);
            std::thread::spawn(move || {
                c.get_or_build::<&str>(key(5), || Ok(Arc::new(55)), Duration::from_secs(5))
            })
        };
        std::thread::sleep(Duration::from_millis(10));
        drop(ticket); // abandoned implicitly — waiters must not stall
        let v = waiter.join().unwrap().unwrap();
        assert_eq!(*v, 55);
    }

    #[test]
    fn peek_counts_no_stats() {
        let c: LambdaCache<u32> = LambdaCache::new(8);
        assert!(c.peek(&key(6)).is_none());
        c.get_or_insert_with::<Infallible>(key(6), || Ok(Arc::new(6)))
            .unwrap();
        let before = c.stats();
        assert_eq!(*c.peek(&key(6)).unwrap(), 6);
        let after = c.stats();
        assert_eq!((before.hits, before.misses), (after.hits, after.misses));
    }
}
