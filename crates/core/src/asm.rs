//! The assembler: VCODE's client interface.
//!
//! [`Assembler<T>`] is the Rust analogue of the paper's `v_*` macro family:
//! a monomorphized, `#[inline]`-heavy instruction surface that encodes each
//! VCODE instruction directly into client storage the moment it is
//! specified — *zero passes*, no intermediate representation (paper §3).
//!
//! A generation session mirrors Figure 1 of the paper:
//!
//! ```
//! use vcode::{Assembler, Leaf, RegClass};
//! use vcode::fake::FakeTarget; // a do-nothing target used in doctests
//!
//! let mut mem = vec![0u8; 1024];
//! // v_lambda: "%i" = one int argument.
//! let mut a = Assembler::<FakeTarget>::lambda(&mut mem, "%i", Leaf::Yes)?;
//! let arg = a.arg(0);
//! a.addii(arg, arg, 1); // ADD Integer Immediate
//! a.reti(arg);          // RETurn Integer
//! let f = a.end()?;     // v_end: link + cleanup
//! assert!(f.len > 0);
//! # Ok::<(), vcode::Error>(())
//! ```

use crate::buf::{CodeBuffer, EmitPath};
use crate::error::Error;
use crate::label::{Fixup, FixupTarget, Label, LabelMap, LiteralPool};
use crate::op::{BinOp, Cond, Imm, UnOp};
use crate::reg::{Bank, Reg, RegClass, RegFile, RegKind};
use crate::regalloc::RegAlloc;
use crate::target::{
    BrOperand, CallFrame, Finished, JumpTarget, Leaf, Off, StackSlot, Target, TargetScratch,
};
use crate::ty::{Sig, Ty};
use crate::verify::{MarkKind, Rule, Severity, VInsn, VerifierState, VerifyReport};
use std::marker::PhantomData;

/// Target-independent assembler state, shared with [`Target`]
/// implementations.
///
/// All fields are public within the retargeting interface: a backend is a
/// trusted extension of the core, exactly as a machine-specification file
/// was in the original system.
#[derive(Debug)]
pub struct Asm<'m> {
    /// The in-place code buffer (client storage + instruction pointer).
    pub buf: CodeBuffer<'m>,
    /// Label offset table.
    pub labels: LabelMap,
    /// Unresolved jump/branch/literal references.
    pub fixups: Vec<Fixup>,
    /// Floating-point literal pool (paper §5.2).
    pub lits: LiteralPool,
    /// The register allocator.
    pub ra: RegAlloc,
    /// The function's signature.
    pub sig: Sig,
    /// Leaf declaration.
    pub leaf: Leaf,
    /// Label of the (deferred) epilogue; `ret` jumps here.
    pub epilogue: Label,
    /// Bytes of local-variable space allocated so far.
    pub locals_bytes: usize,
    /// Backend scratch (prologue patch sites etc.).
    pub ts: TargetScratch,
    /// First latched error, reported at `end`.
    pub err: Option<Error>,
    /// When set, branch emitters must leave their delay slot open
    /// (manual scheduling via `schedule_delay`, paper §5.3).
    pub manual_delay: bool,
    /// When set, load emitters must not pad the load delay
    /// (`raw_load`, paper §5.3).
    pub raw_load: bool,
    /// Count of VCODE instructions specified so far (statistics).
    pub insns: u64,
    /// Count of ret sites recorded (lets backends elide the
    /// jump-to-epilogue when possible, paper §5.2).
    pub ret_sites: Vec<usize>,
    /// Streaming-verifier state (see [`crate::verify`]); `None` on the
    /// fast path, where every emission site pays exactly one `Option`
    /// discriminant test for it.
    pub verifier: Option<Box<VerifierState>>,
}

impl<'m> Asm<'m> {
    /// Latches the first error (later ones are dropped; by then the code
    /// is unusable anyway).
    pub fn record_err(&mut self, e: Error) {
        if self.err.is_none() {
            self.err = Some(e);
        }
    }

    /// Records an unresolved reference at the current cursor.
    pub fn fixup_here(&mut self, target: FixupTarget, kind: u8) {
        self.fixups.push(Fixup {
            at: self.buf.len(),
            target,
            kind,
        });
    }

    /// Records an unresolved reference at an explicit offset.
    ///
    /// An `at` past the buffer write cursor would patch bytes that were
    /// never emitted; it latches [`Error::FixupOutOfRange`] (and a
    /// verifier diagnostic) instead of recording a silent bad patch.
    pub fn fixup_at(&mut self, at: usize, target: FixupTarget, kind: u8) {
        if at > self.buf.len() {
            let len = self.buf.len();
            self.record_err(Error::FixupOutOfRange { at, len });
            if let Some(vs) = self.verifier.as_mut() {
                vs.diag(
                    Rule::FixupPastCursor,
                    Severity::Error,
                    at,
                    format!("fixup recorded at {at:#x}, past the write cursor {len:#x}"),
                );
            }
            return;
        }
        self.fixups.push(Fixup { at, target, kind });
    }

    /// Bytes of bookkeeping VCODE holds besides the code itself: labels
    /// and unresolved jumps (paper §3: "at a cost of a few words per
    /// label"). Used by the space-behaviour experiment.
    pub fn aux_bytes(&self) -> usize {
        self.labels.len() * std::mem::size_of::<usize>()
            + self.fixups.capacity() * std::mem::size_of::<Fixup>()
            + self.lits.len() * 9
    }
}

/// The VCODE assembler for target `T`.
///
/// Construct with [`Assembler::lambda`], specify instructions with the
/// typed methods (`addi`, `ldii`, `bltii`, ... — the paper's `v_addi`
/// family without the prefix), and finish with [`Assembler::end`].
#[derive(Debug)]
pub struct Assembler<'m, T: Target> {
    a: Asm<'m>,
    args: Vec<Reg>,
    _t: PhantomData<T>,
}

/// Wraps one instruction emission for the streaming verifier. The fast
/// path pays a cursor read and a single `Option` discriminant test; the
/// instruction record itself is built inside the outlined cold call
/// ([`Assembler::vrfy_record`]), so the emit functions stay small enough
/// to inline and the verifier-off cost model is unchanged.
macro_rules! vrfy {
    ($self:ident, $emit:expr, $vi:expr) => {
        let vrfy_start = $self.a.buf.len();
        $emit;
        if $self.a.verifier.is_some() {
            Self::vrfy_record(&mut $self.a, vrfy_start, || $vi);
        }
    };
}

/// Generates the register and immediate forms of a typed binary operation.
macro_rules! binops {
    ($($name:ident, $imm:ident => $op:ident, $ty:ident);* $(;)?) => { $(
        #[doc = concat!("`rd = rs1 ", stringify!($op), " rs2` (type `", stringify!($ty), "`).")]
        #[inline]
        pub fn $name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
            debug_assert!(
                self.a.verifier.is_some()
                    || (rd.is_flt() == Ty::$ty.is_float()
                        && rs1.is_flt() == Ty::$ty.is_float()
                        && rs2.is_flt() == Ty::$ty.is_float()),
                concat!("register bank mismatch in ", stringify!($name))
            );
            self.a.insns += 1;
            vrfy!(
                self,
                T::emit_binop(&mut self.a, BinOp::$op, Ty::$ty, rd, rs1, rs2),
                VInsn::new(stringify!($name))
                    .r(rs1, Ty::$ty.is_float())
                    .r(rs2, Ty::$ty.is_float())
                    .w(rd, Ty::$ty.is_float())
            );
        }
        #[doc = concat!("`rd = rs ", stringify!($op), " imm` (type `", stringify!($ty), "`, immediate).")]
        #[inline]
        pub fn $imm(&mut self, rd: Reg, rs: Reg, imm: i64) {
            debug_assert!(
                self.a.verifier.is_some() || (!rd.is_flt() && !rs.is_flt()),
                concat!("register bank mismatch in ", stringify!($imm))
            );
            self.a.insns += 1;
            vrfy!(
                self,
                T::emit_binop_imm(&mut self.a, BinOp::$op, Ty::$ty, rd, rs, imm),
                VInsn::new(stringify!($imm)).r(rs, false).w(rd, false).i(imm)
            );
        }
    )* }
}

/// Generates register-only binary operations (float/double: Table 2
/// footnote — immediates are not allowed for `f`/`d`).
macro_rules! binops_regonly {
    ($($name:ident => $op:ident, $ty:ident);* $(;)?) => { $(
        #[doc = concat!("`rd = rs1 ", stringify!($op), " rs2` (type `", stringify!($ty), "`).")]
        #[inline]
        pub fn $name(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
            debug_assert!(
                self.a.verifier.is_some()
                    || (rd.is_flt() == Ty::$ty.is_float()
                        && rs1.is_flt() == Ty::$ty.is_float()
                        && rs2.is_flt() == Ty::$ty.is_float()),
                concat!("register bank mismatch in ", stringify!($name))
            );
            self.a.insns += 1;
            vrfy!(
                self,
                T::emit_binop(&mut self.a, BinOp::$op, Ty::$ty, rd, rs1, rs2),
                VInsn::new(stringify!($name))
                    .r(rs1, Ty::$ty.is_float())
                    .r(rs2, Ty::$ty.is_float())
                    .w(rd, Ty::$ty.is_float())
            );
        }
    )* }
}

macro_rules! unops {
    ($($name:ident => $op:ident, $ty:ident);* $(;)?) => { $(
        #[doc = concat!("`rd = ", stringify!($op), " rs` (type `", stringify!($ty), "`).")]
        #[inline]
        pub fn $name(&mut self, rd: Reg, rs: Reg) {
            debug_assert!(
                self.a.verifier.is_some()
                    || (rd.is_flt() == Ty::$ty.is_float() && rs.is_flt() == Ty::$ty.is_float()),
                concat!("register bank mismatch in ", stringify!($name))
            );
            self.a.insns += 1;
            vrfy!(
                self,
                T::emit_unop(&mut self.a, UnOp::$op, Ty::$ty, rd, rs),
                VInsn::new(stringify!($name))
                    .r(rs, Ty::$ty.is_float())
                    .w(rd, Ty::$ty.is_float())
            );
        }
    )* }
}

macro_rules! cvts {
    ($($name:ident => $from:ident, $to:ident);* $(;)?) => { $(
        #[doc = concat!("Convert `", stringify!($from), "` to `", stringify!($to), "`: `rd = (", stringify!($to), ") rs`.")]
        #[inline]
        pub fn $name(&mut self, rd: Reg, rs: Reg) {
            self.a.insns += 1;
            vrfy!(
                self,
                T::emit_cvt(&mut self.a, Ty::$from, Ty::$to, rd, rs),
                VInsn::new(stringify!($name))
                    .r(rs, Ty::$from.is_float())
                    .w(rd, Ty::$to.is_float())
            );
        }
    )* }
}

macro_rules! mems {
    ($($ld:ident, $ldi:ident, $st:ident, $sti:ident => $ty:ident);* $(;)?) => { $(
        #[doc = concat!("Load `", stringify!($ty), "`: `rd = *(base + idx)`.")]
        #[inline]
        pub fn $ld(&mut self, rd: Reg, base: Reg, idx: Reg) {
            debug_assert!(
                self.a.verifier.is_some()
                    || (rd.is_flt() == Ty::$ty.is_float() && base.is_int() && idx.is_int()),
                concat!("register bank mismatch in ", stringify!($ld))
            );
            self.a.insns += 1;
            vrfy!(
                self,
                T::emit_ld(&mut self.a, Ty::$ty, rd, base, Off::R(idx)),
                VInsn::new(stringify!($ld))
                    .k(MarkKind::Load)
                    .r(base, false)
                    .r(idx, false)
                    .w(rd, Ty::$ty.is_float())
            );
        }
        #[doc = concat!("Load `", stringify!($ty), "` with immediate offset: `rd = *(base + off)`.")]
        #[inline]
        pub fn $ldi(&mut self, rd: Reg, base: Reg, off: i32) {
            debug_assert!(
                self.a.verifier.is_some()
                    || (rd.is_flt() == Ty::$ty.is_float() && base.is_int()),
                concat!("register bank mismatch in ", stringify!($ldi))
            );
            self.a.insns += 1;
            vrfy!(
                self,
                T::emit_ld(&mut self.a, Ty::$ty, rd, base, Off::I(off)),
                VInsn::new(stringify!($ldi))
                    .k(MarkKind::Load)
                    .r(base, false)
                    .w(rd, Ty::$ty.is_float())
            );
        }
        #[doc = concat!("Store `", stringify!($ty), "`: `*(base + idx) = src`.")]
        #[inline]
        pub fn $st(&mut self, src: Reg, base: Reg, idx: Reg) {
            debug_assert!(
                self.a.verifier.is_some()
                    || (src.is_flt() == Ty::$ty.is_float() && base.is_int() && idx.is_int()),
                concat!("register bank mismatch in ", stringify!($st))
            );
            self.a.insns += 1;
            vrfy!(
                self,
                T::emit_st(&mut self.a, Ty::$ty, src, base, Off::R(idx)),
                VInsn::new(stringify!($st))
                    .k(MarkKind::Store)
                    .r(src, Ty::$ty.is_float())
                    .r(base, false)
                    .r(idx, false)
            );
        }
        #[doc = concat!("Store `", stringify!($ty), "` with immediate offset: `*(base + off) = src`.")]
        #[inline]
        pub fn $sti(&mut self, src: Reg, base: Reg, off: i32) {
            debug_assert!(
                self.a.verifier.is_some()
                    || (src.is_flt() == Ty::$ty.is_float() && base.is_int()),
                concat!("register bank mismatch in ", stringify!($sti))
            );
            self.a.insns += 1;
            vrfy!(
                self,
                T::emit_st(&mut self.a, Ty::$ty, src, base, Off::I(off)),
                VInsn::new(stringify!($sti))
                    .k(MarkKind::Store)
                    .r(src, Ty::$ty.is_float())
                    .r(base, false)
            );
        }
    )* }
}

macro_rules! branches {
    ($($name:ident, $imm:ident => $cond:ident, $ty:ident);* $(;)?) => { $(
        #[doc = concat!("Branch to `l` if `rs1 ", stringify!($cond), " rs2` (type `", stringify!($ty), "`).")]
        #[inline]
        pub fn $name(&mut self, rs1: Reg, rs2: Reg, l: Label) {
            debug_assert!(
                self.a.verifier.is_some()
                    || (rs1.is_flt() == Ty::$ty.is_float() && rs2.is_flt() == Ty::$ty.is_float()),
                concat!("register bank mismatch in ", stringify!($name))
            );
            self.a.insns += 1;
            vrfy!(
                self,
                T::emit_branch(&mut self.a, Cond::$cond, Ty::$ty, rs1, BrOperand::R(rs2), l),
                VInsn::new(stringify!($name))
                    .k(MarkKind::Branch(l))
                    .r(rs1, Ty::$ty.is_float())
                    .r(rs2, Ty::$ty.is_float())
            );
        }
        #[doc = concat!("Branch to `l` if `rs ", stringify!($cond), " imm` (type `", stringify!($ty), "`, immediate).")]
        #[inline]
        pub fn $imm(&mut self, rs: Reg, imm: i64, l: Label) {
            self.a.insns += 1;
            vrfy!(
                self,
                T::emit_branch(&mut self.a, Cond::$cond, Ty::$ty, rs, BrOperand::I(imm), l),
                VInsn::new(stringify!($imm))
                    .k(MarkKind::Branch(l))
                    .r(rs, false)
                    .i(imm)
            );
        }
    )* }
}

macro_rules! branches_regonly {
    ($($name:ident => $cond:ident, $ty:ident);* $(;)?) => { $(
        #[doc = concat!("Branch to `l` if `rs1 ", stringify!($cond), " rs2` (type `", stringify!($ty), "`).")]
        #[inline]
        pub fn $name(&mut self, rs1: Reg, rs2: Reg, l: Label) {
            self.a.insns += 1;
            vrfy!(
                self,
                T::emit_branch(&mut self.a, Cond::$cond, Ty::$ty, rs1, BrOperand::R(rs2), l),
                VInsn::new(stringify!($name))
                    .k(MarkKind::Branch(l))
                    .r(rs1, Ty::$ty.is_float())
                    .r(rs2, Ty::$ty.is_float())
            );
        }
    )* }
}

macro_rules! rets {
    ($($name:ident => $ty:ident);* $(;)?) => { $(
        #[doc = concat!("Return the value in `rs` (type `", stringify!($ty), "`).")]
        #[inline]
        pub fn $name(&mut self, rs: Reg) {
            debug_assert!(
                self.a.verifier.is_some() || rs.is_flt() == Ty::$ty.is_float(),
                concat!("register bank mismatch in ", stringify!($name))
            );
            self.a.insns += 1;
            vrfy!(
                self,
                T::emit_ret(&mut self.a, Some((Ty::$ty, rs))),
                VInsn::new(stringify!($name))
                    .k(MarkKind::Ret)
                    .r(rs, Ty::$ty.is_float())
            );
        }
    )* }
}

impl<'m, T: Target> Assembler<'m, T> {
    /// Begins dynamic code generation of a new function (the paper's
    /// `v_lambda`). `type_str` lists the incoming parameter types
    /// (`"%i%p"` for `(int, void *)`); `mem` is the client storage the
    /// code is generated into.
    ///
    /// The registers holding the incoming parameters are available via
    /// [`arg`](Self::arg) / [`args`](Self::args).
    ///
    /// # Errors
    ///
    /// [`Error::BadSignature`] for a malformed type string and
    /// [`Error::TooManyArgs`] when the calling-convention support cannot
    /// place all parameters.
    pub fn lambda(mem: &'m mut [u8], type_str: &str, leaf: Leaf) -> Result<Self, Error> {
        let sig = Sig::parse(type_str)?;
        Self::lambda_sig(mem, sig, leaf)
    }

    /// [`lambda`](Self::lambda) with a pre-built [`Sig`] — useful when the
    /// argument list itself is computed at runtime (argument-marshaling
    /// generators, paper §2).
    pub fn lambda_sig(mem: &'m mut [u8], sig: Sig, leaf: Leaf) -> Result<Self, Error> {
        Self::lambda_sig_path(mem, sig, leaf, EmitPath::Fast)
    }

    /// [`lambda_sig`](Self::lambda_sig) with an explicit [`EmitPath`].
    /// `EmitPath::Bytewise` forces every append through the per-byte
    /// checked reference path; the differential test proves it emits the
    /// same machine code as the production fast path.
    pub fn lambda_sig_path(
        mem: &'m mut [u8],
        sig: Sig,
        leaf: Leaf,
        path: EmitPath,
    ) -> Result<Self, Error> {
        let mut labels = LabelMap::new();
        let epilogue = labels.fresh();
        let mut a = Asm {
            buf: CodeBuffer::with_path(mem, path),
            labels,
            fixups: Vec::new(),
            lits: LiteralPool::new(),
            ra: RegAlloc::new(T::regfile(), matches!(leaf, Leaf::Yes)),
            // Placeholder; the real signature moves in (alloc-free) once
            // `begin` no longer needs to read it alongside `&mut a`.
            sig: Sig::default(),
            leaf,
            epilogue,
            locals_bytes: 0,
            ts: TargetScratch::default(),
            err: None,
            manual_delay: false,
            raw_load: false,
            insns: 0,
            ret_sites: Vec::new(),
            verifier: None,
        };
        let args = T::begin(&mut a, &sig, leaf)?;
        a.sig = sig;
        if crate::verify::enabled() {
            Self::install_verifier(&mut a, &args);
        }
        crate::obs::emit_event(|| crate::obs::CodegenEvent::LambdaBegin {
            args: args.len(),
            leaf: matches!(leaf, Leaf::Yes),
        });
        Ok(Assembler {
            a,
            args,
            _t: PhantomData,
        })
    }

    /// The verifier-on half of `vrfy!`: records the emitted byte span
    /// and streams the (lazily built) instruction record through the
    /// rule set. Outlined and cold so the emission fast path carries
    /// only the discriminant test.
    #[cold]
    #[inline(never)]
    fn vrfy_record(a: &mut Asm<'m>, start: usize, mk: impl FnOnce() -> VInsn) {
        let end = a.buf.len();
        let vi = mk();
        if let Some(vs) = a.verifier.as_mut() {
            vs.insn(start, end, &vi);
        }
    }

    fn install_verifier(a: &mut Asm<'m>, args: &[Reg]) {
        let mut vs = Box::new(VerifierState::new(T::regfile(), T::CHECKS));
        vs.note_args(args);
        a.verifier = Some(vs);
    }

    /// Enables the streaming verifier for this session only, regardless
    /// of the global [`verify::set_enabled`](crate::verify::set_enabled)
    /// switch. Idempotent; instructions emitted before the call are not
    /// retroactively checked.
    pub fn enable_verifier(&mut self) {
        if self.a.verifier.is_none() {
            Self::install_verifier(&mut self.a, &self.args);
        }
    }

    /// Diagnostics the verifier has collected so far (empty when the
    /// verifier is off). The full report comes back through
    /// [`Finished::verify`] at [`end`](Self::end).
    pub fn verify_diags(&self) -> &[crate::verify::Diag] {
        self.a.verifier.as_deref().map_or(&[], |vs| vs.diags())
    }

    /// Ends code generation (the paper's `v_end`): emits the deferred
    /// epilogue and prologue register saves, backpatches the activation
    /// record size, emits the literal pool, and links all recorded jumps.
    ///
    /// # Errors
    ///
    /// Any error latched during generation ([`Error::Overflow`],
    /// [`Error::CallInLeaf`], ...), or [`Error::UnboundLabel`] if a
    /// referenced label was never placed.
    pub fn end(self) -> Result<Finished, Error> {
        let (r, report) = self.end_report();
        match r {
            Ok(mut f) => {
                f.verify = report;
                Ok(f)
            }
            Err(e) => Err(e),
        }
    }

    /// Like [`end`](Self::end), but hands back the verifier report even
    /// when generation failed — a latched [`Error`] and the collected
    /// diagnostics usually describe the same client bug, and the bad-client
    /// test corpus asserts on the diagnostics.
    pub fn end_report(mut self) -> (Result<Finished, Error>, Option<Box<VerifyReport>>) {
        let r = self.end_inner();
        let report = self
            .a
            .verifier
            .take()
            .map(|mut vs| Box::new(vs.take_report()));
        crate::obs::emit_event(|| crate::obs::CodegenEvent::LambdaEnd {
            insns: self.a.insns,
            bytes: self.a.buf.len() as u64,
            overflowed: self.a.buf.overflowed(),
            spills: self.a.ra.spill_count(),
        });
        (r, report)
    }

    fn end_inner(&mut self) -> Result<Finished, Error> {
        let ended = T::end(&mut self.a);
        {
            // The end-of-session sweep (dangling fixups, leaked leases,
            // unbalanced calls) must see the fixup list before resolution
            // consumes it below.
            let a = &mut self.a;
            if let Some(vs) = a.verifier.as_mut() {
                vs.finish(&a.labels, &a.fixups, a.buf.len());
            }
        }
        ended?;
        self.a.lits.emit(&mut self.a.buf);
        let fixups = std::mem::take(&mut self.a.fixups);
        for f in fixups {
            let dest = match f.target {
                FixupTarget::Label(l) => self.a.labels.offset(l).ok_or(Error::UnboundLabel(l))?,
                FixupTarget::Lit(id) => self.a.lits.offset(id),
            };
            T::patch(&mut self.a, f, dest);
        }
        if self.a.buf.overflowed() {
            self.a.record_err(Error::Overflow {
                capacity: self.a.buf.capacity(),
            });
        }
        match self.a.err.take() {
            Some(e) => Err(e),
            None => Ok(Finished {
                entry: 0,
                len: self.a.buf.len(),
                label_offsets: (0..self.a.labels.len() as u32)
                    .map(|i| self.a.labels.offset(Label(i)))
                    .collect(),
                verify: None,
                insns: self.a.insns,
            }),
        }
    }

    // ---- registers ----

    /// The register holding the `i`-th incoming parameter.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range for the declared signature.
    pub fn arg(&self, i: usize) -> Reg {
        self.args[i]
    }

    /// All incoming parameter registers.
    pub fn args(&self) -> &[Reg] {
        &self.args
    }

    /// Allocates an integer register of the given class (the paper's
    /// `v_getreg`), or `None` when the machine's registers are exhausted —
    /// clients then keep the variable on the stack via
    /// [`local`](Self::local).
    pub fn getreg(&mut self, class: RegClass) -> Option<Reg> {
        let r = self.a.ra.getreg(Bank::Int, class);
        if let (Some(reg), Some(vs)) = (r, self.a.verifier.as_mut()) {
            vs.note_getreg(reg);
        }
        r
    }

    /// Allocates a floating-point register of the given class.
    pub fn getreg_f(&mut self, class: RegClass) -> Option<Reg> {
        let r = self.a.ra.getreg(Bank::Flt, class);
        if let (Some(reg), Some(vs)) = (r, self.a.verifier.as_mut()) {
            vs.note_getreg(reg);
        }
        r
    }

    /// Returns a register to the allocator (the paper's `v_putreg`).
    pub fn putreg(&mut self, reg: Reg) {
        if self.a.verifier.is_some() {
            // The verifier owns misuse reporting (double frees become a
            // collected diagnostic instead of the allocator's debug
            // panic).
            self.a.ra.try_putreg(reg);
            let pc = self.a.buf.len();
            if let Some(vs) = self.a.verifier.as_mut() {
                vs.note_putreg(reg, pc);
            }
        } else {
            self.a.ra.putreg(reg);
        }
    }

    /// Releases the `i`-th incoming argument register back to the
    /// allocator once the argument value is dead.
    pub fn release_arg(&mut self, i: usize) {
        let reg = self.args[i];
        self.putreg(reg);
    }

    /// Dynamically reclassifies a physical register for this function
    /// (paper §5.3 — e.g. an interrupt handler marks every register
    /// callee-saved).
    ///
    /// A register outside the target's register file latches
    /// [`Error::UnknownRegister`] (and a verifier diagnostic) and leaves
    /// the allocator untouched.
    pub fn set_register_class(&mut self, reg: Reg, kind: RegKind) {
        if !self.a.ra.contains(reg) {
            self.a.record_err(Error::UnknownRegister(reg));
            let pc = self.a.buf.len();
            if let Some(vs) = self.a.verifier.as_mut() {
                vs.diag(
                    Rule::UnknownRegister,
                    Severity::Error,
                    pc,
                    format!("set_register_class: {reg} is not in the target register file"),
                );
            }
            return;
        }
        self.a.ra.set_kind(reg, kind);
    }

    /// Overrides the allocation priority ordering (paper §3.2).
    ///
    /// Registers outside the target's register file latch
    /// [`Error::UnknownRegister`] (and a verifier diagnostic); the known
    /// registers in `order` still take effect.
    pub fn set_register_priority(&mut self, bank: Bank, order: &[Reg]) {
        for &reg in order {
            if !self.a.ra.contains(reg) {
                self.a.record_err(Error::UnknownRegister(reg));
                let pc = self.a.buf.len();
                if let Some(vs) = self.a.verifier.as_mut() {
                    vs.diag(
                        Rule::UnknownRegister,
                        Severity::Error,
                        pc,
                        format!("set_register_priority: {reg} is not in the target register file"),
                    );
                }
            }
        }
        self.a.ra.set_priority(bank, order);
    }

    /// The `i`-th architecture-independent hard-coded temporary register
    /// (`T0`, `T1`, ... — paper §5.3). Using hard names skips the
    /// allocator and roughly halves generation cost.
    ///
    /// Requesting more temporaries than the target provides — the
    /// paper's "register assertion" — latches [`Error::BadOperands`]
    /// (reported by [`end`](Self::end)) and returns the target's first
    /// temporary so generation can continue to the error report.
    pub fn hard_temp(&mut self, i: usize) -> Reg {
        let temps = T::regfile().hard_temps;
        match temps.get(i) {
            Some(&r) => {
                if let Some(vs) = self.a.verifier.as_mut() {
                    vs.note_owned(r);
                }
                r
            }
            None => {
                self.a
                    .record_err(Error::BadOperands("hard temporary index out of range"));
                let pc = self.a.buf.len();
                if let Some(vs) = self.a.verifier.as_mut() {
                    vs.diag(
                        Rule::BadOperand,
                        Severity::Error,
                        pc,
                        format!(
                            "hard_temp: index {i} out of range ({} provided)",
                            temps.len()
                        ),
                    );
                }
                temps.first().copied().unwrap_or(Reg::int(0))
            }
        }
    }

    /// The `i`-th architecture-independent hard-coded persistent register
    /// (`S0`, `S1`, ...).
    ///
    /// Out-of-range requests latch [`Error::BadOperands`] exactly like
    /// [`hard_temp`](Self::hard_temp).
    pub fn hard_saved(&mut self, i: usize) -> Reg {
        let saved = T::regfile().hard_saved;
        match saved.get(i) {
            Some(&r) => {
                if let Some(vs) = self.a.verifier.as_mut() {
                    vs.note_owned(r);
                }
                r
            }
            None => {
                self.a.record_err(Error::BadOperands(
                    "hard persistent register index out of range",
                ));
                let pc = self.a.buf.len();
                if let Some(vs) = self.a.verifier.as_mut() {
                    vs.diag(
                        Rule::BadOperand,
                        Severity::Error,
                        pc,
                        format!(
                            "hard_saved: index {i} out of range ({} provided)",
                            saved.len()
                        ),
                    );
                }
                saved.first().copied().unwrap_or(Reg::int(0))
            }
        }
    }

    /// The target's register-file description.
    pub fn regfile(&self) -> &'static RegFile {
        T::regfile()
    }

    // ---- locals and labels ----

    /// Allocates a local variable in the activation record (the paper's
    /// `v_local`). Offsets are known immediately because the prologue
    /// reserves a worst-case save area (paper §5.2).
    ///
    /// `Ty::V` has no size; requesting a void local latches
    /// [`Error::BadOperands`] (reported by [`end`](Self::end)) and
    /// returns a dummy zero-offset slot.
    pub fn local(&mut self, ty: Ty) -> StackSlot {
        let Some(size) = ty.try_size_bytes(T::WORD_BITS) else {
            self.a
                .record_err(Error::BadOperands("void local requested"));
            let pc = self.a.buf.len();
            if let Some(vs) = self.a.verifier.as_mut() {
                vs.diag(
                    Rule::BadOperand,
                    Severity::Error,
                    pc,
                    "local: void local requested".to_owned(),
                );
            }
            return StackSlot {
                base: T::regfile().fp,
                off: 0,
                ty,
            };
        };
        let slot = T::local(&mut self.a, ty);
        if let Some(vs) = self.a.verifier.as_mut() {
            vs.note_local(slot, size as u32);
        }
        slot
    }

    /// Allocates `n` contiguous locals of type `ty`, returning the slot
    /// with the lowest offset: element `k` lives at
    /// `base + off + k * size` regardless of which direction the
    /// target's locals grow.
    ///
    /// A zero `n` or a `Ty::V` element type latches
    /// [`Error::BadOperands`] and returns a dummy slot, like
    /// [`local`](Self::local).
    pub fn local_array(&mut self, ty: Ty, n: usize) -> StackSlot {
        let size = ty.try_size_bytes(T::WORD_BITS);
        let (Some(size), true) = (size, n > 0) else {
            self.a
                .record_err(Error::BadOperands("empty or void local array requested"));
            let pc = self.a.buf.len();
            if let Some(vs) = self.a.verifier.as_mut() {
                vs.diag(
                    Rule::BadOperand,
                    Severity::Error,
                    pc,
                    "local_array: empty or void local array requested".to_owned(),
                );
            }
            return StackSlot {
                base: T::regfile().fp,
                off: 0,
                ty,
            };
        };
        let mut first = T::local(&mut self.a, ty);
        for _ in 1..n {
            let s = T::local(&mut self.a, ty);
            if s.off < first.off {
                first = s;
            }
        }
        if let Some(vs) = self.a.verifier.as_mut() {
            vs.note_local(first, (size * n) as u32);
        }
        first
    }

    /// Creates a fresh, unplaced label (the paper's `v_genlabel`).
    pub fn genlabel(&mut self) -> Label {
        self.a.labels.fresh()
    }

    /// Places `l` at the current position in the instruction stream.
    ///
    /// # Panics
    ///
    /// Panics if `l` was already placed — unless the verifier is
    /// enabled, in which case rebinding is collected as a
    /// [`Rule::LabelRebound`] diagnostic and the first binding stands.
    pub fn label(&mut self, l: Label) {
        let here = self.a.buf.len();
        if let Some(vs) = self.a.verifier.as_mut() {
            if !self.a.labels.try_bind(l, here) {
                vs.diag(
                    Rule::LabelRebound,
                    Severity::Error,
                    here,
                    format!("label {} bound twice", l.index()),
                );
            }
        } else {
            self.a.labels.bind(l, here);
        }
    }

    // ---- loads/stores of stack slots ----

    /// Loads a local variable: `rd = *slot`.
    #[inline]
    pub fn ld_slot(&mut self, rd: Reg, slot: StackSlot) {
        self.a.insns += 1;
        vrfy!(
            self,
            T::emit_ld(&mut self.a, slot.ty, rd, slot.base, Off::I(slot.off)),
            VInsn::new("ld_slot")
                .k(MarkKind::Load)
                .w(rd, slot.ty.is_float())
                .s(slot)
        );
    }

    /// Stores to a local variable: `*slot = src`.
    #[inline]
    pub fn st_slot(&mut self, slot: StackSlot, src: Reg) {
        self.a.insns += 1;
        vrfy!(
            self,
            T::emit_st(&mut self.a, slot.ty, src, slot.base, Off::I(slot.off)),
            VInsn::new("st_slot")
                .k(MarkKind::Store)
                .r(src, slot.ty.is_float())
                .s(slot)
        );
    }

    // ---- generated instruction surface ----

    binops! {
        addi, addii => Add, I;  addu, addui => Add, U;
        addl, addli => Add, L;  addul, adduli => Add, Ul;
        addp, addpi => Add, P;
        subi, subii => Sub, I;  subu, subui => Sub, U;
        subl, subli => Sub, L;  subul, subuli => Sub, Ul;
        subp, subpi => Sub, P;
        muli, mulii => Mul, I;  mulu, mului => Mul, U;
        mull, mulli => Mul, L;  mulul, mululi => Mul, Ul;
        divi, divii => Div, I;  divu, divui => Div, U;
        divl, divli => Div, L;  divul, divuli => Div, Ul;
        modi, modii => Mod, I;  modu, modui => Mod, U;
        modl, modli => Mod, L;  modul, moduli => Mod, Ul;
        andi, andii => And, I;  andu, andui => And, U;
        andl, andli => And, L;  andul, anduli => And, Ul;
        ori, orii => Or, I;     oru, orui => Or, U;
        orl, orli => Or, L;     orul, oruli => Or, Ul;
        xori, xorii => Xor, I;  xoru, xorui => Xor, U;
        xorl, xorli => Xor, L;  xorul, xoruli => Xor, Ul;
        lshi, lshii => Lsh, I;  lshu, lshui => Lsh, U;
        lshl, lshli => Lsh, L;  lshul, lshuli => Lsh, Ul;
        rshi, rshii => Rsh, I;  rshu, rshui => Rsh, U;
        rshl, rshli => Rsh, L;  rshul, rshuli => Rsh, Ul;
    }

    binops_regonly! {
        addf => Add, F;  addd => Add, D;
        subf => Sub, F;  subd => Sub, D;
        mulf => Mul, F;  muld => Mul, D;
        divf => Div, F;  divd => Div, D;
    }

    unops! {
        comi => Com, I;  comu => Com, U;  coml => Com, L;  comul => Com, Ul;
        noti => Not, I;  notu => Not, U;  notl => Not, L;  notul => Not, Ul;
        movi => Mov, I;  movu => Mov, U;  movl => Mov, L;  movul => Mov, Ul;
        movp => Mov, P;  movf => Mov, F;  movd => Mov, D;
        negi => Neg, I;  negu => Neg, U;  negl => Neg, L;  negul => Neg, Ul;
        negf => Neg, F;  negd => Neg, D;
    }

    /// Load constant into an integer register: `rd = imm` (type `i`).
    #[inline]
    pub fn seti(&mut self, rd: Reg, imm: i32) {
        self.a.insns += 1;
        vrfy!(
            self,
            T::emit_set(&mut self.a, Ty::I, rd, Imm::Int(imm as i64)),
            VInsn::new("seti").w(rd, false)
        );
    }

    /// Load constant (type `u`).
    #[inline]
    pub fn setu(&mut self, rd: Reg, imm: u32) {
        self.a.insns += 1;
        vrfy!(
            self,
            T::emit_set(&mut self.a, Ty::U, rd, Imm::Int(imm as i64)),
            VInsn::new("setu").w(rd, false)
        );
    }

    /// Load constant (type `l`).
    #[inline]
    pub fn setl(&mut self, rd: Reg, imm: i64) {
        self.a.insns += 1;
        vrfy!(
            self,
            T::emit_set(&mut self.a, Ty::L, rd, Imm::Int(imm)),
            VInsn::new("setl").w(rd, false).i(imm)
        );
    }

    /// Load constant (type `ul`).
    #[inline]
    pub fn setul(&mut self, rd: Reg, imm: u64) {
        self.a.insns += 1;
        vrfy!(
            self,
            T::emit_set(&mut self.a, Ty::Ul, rd, Imm::Int(imm as i64)),
            VInsn::new("setul").w(rd, false).i(imm as i64)
        );
    }

    /// Load a pointer constant: `rd = addr`.
    #[inline]
    pub fn setp(&mut self, rd: Reg, addr: u64) {
        self.a.insns += 1;
        vrfy!(
            self,
            T::emit_set(&mut self.a, Ty::P, rd, Imm::Int(addr as i64)),
            VInsn::new("setp").w(rd, false).i(addr as i64)
        );
    }

    /// Load a single-precision constant (goes to the literal pool at the
    /// end of the instruction stream, paper §5.2).
    #[inline]
    pub fn setf(&mut self, rd: Reg, imm: f32) {
        self.a.insns += 1;
        vrfy!(
            self,
            T::emit_set(&mut self.a, Ty::F, rd, Imm::F32(imm)),
            VInsn::new("setf").w(rd, true)
        );
    }

    /// Load a double-precision constant (literal pool).
    #[inline]
    pub fn setd(&mut self, rd: Reg, imm: f64) {
        self.a.insns += 1;
        vrfy!(
            self,
            T::emit_set(&mut self.a, Ty::D, rd, Imm::F64(imm)),
            VInsn::new("setd").w(rd, true)
        );
    }

    cvts! {
        cvi2u => I, U;   cvi2l => I, L;   cvi2ul => I, Ul;
        cvi2f => I, F;   cvi2d => I, D;
        cvu2i => U, I;   cvu2l => U, L;   cvu2ul => U, Ul;  cvu2d => U, D;
        cvl2i => L, I;   cvl2u => L, U;   cvl2ul => L, Ul;
        cvl2f => L, F;   cvl2d => L, D;
        cvul2i => Ul, I; cvul2u => Ul, U; cvul2l => Ul, L;  cvul2p => Ul, P;
        cvp2ul => P, Ul;
        cvf2i => F, I;   cvf2l => F, L;   cvf2d => F, D;
        cvd2i => D, I;   cvd2l => D, L;   cvd2f => D, F;
    }

    mems! {
        ldc, ldci, stc, stci => C;
        lduc, lduci, stuc, stuci => Uc;
        lds, ldsi, sts, stsi => S;
        ldus, ldusi, stus, stusi => Us;
        ldi, ldii, sti, stii => I;
        ldu, ldui, stu, stui => U;
        ldl, ldli, stl, stli => L;
        ldul, lduli, stul, stuli => Ul;
        ldp, ldpi, stp, stpi => P;
        ldf, ldfi, stf, stfi => F;
        ldd, lddi, std, stdi => D;
    }

    branches! {
        blti, bltii => Lt, I;   bltu, bltui => Lt, U;
        bltl, bltli => Lt, L;   bltul, bltuli => Lt, Ul;
        bltp, bltpi => Lt, P;
        blei, bleii => Le, I;   bleu, bleui => Le, U;
        blel, bleli => Le, L;   bleul, bleuli => Le, Ul;
        blep, blepi => Le, P;
        bgti, bgtii => Gt, I;   bgtu, bgtui => Gt, U;
        bgtl, bgtli => Gt, L;   bgtul, bgtuli => Gt, Ul;
        bgtp, bgtpi => Gt, P;
        bgei, bgeii => Ge, I;   bgeu, bgeui => Ge, U;
        bgel, bgeli => Ge, L;   bgeul, bgeuli => Ge, Ul;
        bgep, bgepi => Ge, P;
        beqi, beqii => Eq, I;   bequ, bequi => Eq, U;
        beql, beqli => Eq, L;   bequl, bequli => Eq, Ul;
        beqp, beqpi => Eq, P;
        bnei, bneii => Ne, I;   bneu, bneui => Ne, U;
        bnel, bneli => Ne, L;   bneul, bneuli => Ne, Ul;
        bnep, bnepi => Ne, P;
    }

    branches_regonly! {
        bltf => Lt, F;  bltd => Lt, D;
        blef => Le, F;  bled => Le, D;
        bgtf => Gt, F;  bgtd => Gt, D;
        bgef => Ge, F;  bged => Ge, D;
        beqf => Eq, F;  beqd => Eq, D;
        bnef => Ne, F;  bned => Ne, D;
    }

    rets! {
        reti => I; retu => U; retl => L; retul => Ul;
        retp => P; retf => F; retd => D;
    }

    /// Return with no value (`ret v`).
    #[inline]
    pub fn retv(&mut self) {
        self.a.insns += 1;
        vrfy!(
            self,
            T::emit_ret(&mut self.a, None),
            VInsn::new("retv").k(MarkKind::Ret)
        );
    }

    /// Unconditional jump to a label.
    #[inline]
    pub fn jmp(&mut self, l: Label) {
        self.a.insns += 1;
        vrfy!(
            self,
            T::emit_jump(&mut self.a, JumpTarget::Label(l)),
            VInsn::new("jmp").k(MarkKind::Branch(l))
        );
    }

    /// Jump to the address in a register (computed goto / indirect jump).
    #[inline]
    pub fn jmp_reg(&mut self, r: Reg) {
        self.a.insns += 1;
        vrfy!(
            self,
            T::emit_jump(&mut self.a, JumpTarget::Reg(r)),
            VInsn::new("jmp_reg").k(MarkKind::Jump).r(r, false)
        );
    }

    /// Jump to an absolute address known at generation time.
    #[inline]
    pub fn jmp_abs(&mut self, addr: u64) {
        self.a.insns += 1;
        vrfy!(
            self,
            T::emit_jump(&mut self.a, JumpTarget::Abs(addr)),
            VInsn::new("jmp_abs").k(MarkKind::Jump)
        );
    }

    /// Jump-and-link to a label (raw call primitive).
    #[inline]
    pub fn jal(&mut self, l: Label) {
        self.a.insns += 1;
        vrfy!(
            self,
            T::emit_jal(&mut self.a, JumpTarget::Label(l)),
            VInsn::new("jal").k(MarkKind::Branch(l))
        );
    }

    /// Jump-and-link to the address in a register.
    #[inline]
    pub fn jal_reg(&mut self, r: Reg) {
        self.a.insns += 1;
        vrfy!(
            self,
            T::emit_jal(&mut self.a, JumpTarget::Reg(r)),
            VInsn::new("jal_reg").k(MarkKind::Jump).r(r, false)
        );
    }

    /// Jump-and-link to an absolute address.
    #[inline]
    pub fn jal_abs(&mut self, addr: u64) {
        self.a.insns += 1;
        vrfy!(
            self,
            T::emit_jal(&mut self.a, JumpTarget::Abs(addr)),
            VInsn::new("jal_abs").k(MarkKind::Jump)
        );
    }

    /// No-operation.
    #[inline]
    pub fn nop(&mut self) {
        self.a.insns += 1;
        vrfy!(self, T::emit_nop(&mut self.a), VInsn::new("nop"));
    }

    // ---- dynamically constructed calls ----

    /// Starts marshaling a call to a function with the given signature
    /// (paper §2: argument number and types may be computed at runtime).
    ///
    /// In a leaf procedure this latches [`Error::CallInLeaf`].
    pub fn call_begin(&mut self, sig: &Sig) -> CallFrame {
        if matches!(self.a.leaf, Leaf::Yes) {
            self.a.record_err(Error::CallInLeaf);
            let pc = self.a.buf.len();
            if let Some(vs) = self.a.verifier.as_mut() {
                vs.diag(
                    Rule::CallInLeaf,
                    Severity::Error,
                    pc,
                    "call_begin inside a procedure declared leaf".to_owned(),
                );
            }
        }
        let pc = self.a.buf.len();
        if let Some(vs) = self.a.verifier.as_mut() {
            vs.note_call_begin(pc);
        }
        T::call_begin(&mut self.a, sig)
    }

    /// Supplies the `idx`-th argument of the call from `src`.
    pub fn call_arg(&mut self, cf: &mut CallFrame, idx: usize, ty: Ty, src: Reg) {
        self.a.insns += 1;
        vrfy!(
            self,
            T::call_arg(&mut self.a, cf, idx, ty, src),
            VInsn::new("call_arg").r(src, ty.is_float())
        );
    }

    /// Emits the call; the return value (if the signature has one) is
    /// moved to `ret`.
    pub fn call_end(&mut self, cf: CallFrame, target: JumpTarget, ret: Option<Reg>) {
        self.a.insns += 1;
        let ret = match (cf.sig.ret(), ret) {
            (Ty::V, _) | (_, None) => None,
            (ty, Some(r)) => Some((ty, r)),
        };
        let pc = self.a.buf.len();
        if let Some(vs) = self.a.verifier.as_mut() {
            vs.note_call_end(pc);
        }
        vrfy!(self, T::call_end(&mut self.a, cf, target, ret), {
            let mut vi = VInsn::new("call_end").k(MarkKind::Jump);
            if let JumpTarget::Reg(r) = target {
                vi = vi.r(r, false);
            }
            if let Some((ty, r)) = ret {
                vi = vi.w(r, ty.is_float());
            }
            vi
        });
    }

    // ---- instruction scheduling (paper §5.3) ----

    /// Schedules `slot` into the delay slot of the branch emitted by
    /// `branch` (the paper's `v_schedule_delay`). On targets without
    /// delay slots, `slot` is simply placed before the branch.
    pub fn schedule_delay(&mut self, branch: impl FnOnce(&mut Self), slot: impl FnOnce(&mut Self)) {
        if T::BRANCH_DELAY_SLOTS > 0 {
            self.a.manual_delay = true;
            branch(self);
            self.a.manual_delay = false;
            slot(self);
        } else {
            slot(self);
            branch(self);
        }
    }

    /// Emits the load produced by `load` without safety padding,
    /// promising that at least `insns_before_use` instructions separate
    /// it from the first use of the result (the paper's `v_raw_load`).
    /// Any shortfall is made up with `nop`s.
    pub fn raw_load(&mut self, load: impl FnOnce(&mut Self), insns_before_use: u32) {
        self.a.raw_load = true;
        load(self);
        self.a.raw_load = false;
        for _ in insns_before_use..T::LOAD_DELAY_CYCLES {
            self.nop();
        }
    }

    // ---- introspection ----

    /// VCODE instructions specified so far (for the code-generation cost
    /// experiments).
    pub fn insn_count(&self) -> u64 {
        self.a.insns
    }

    /// Bytes of machine code emitted so far.
    pub fn code_len(&self) -> usize {
        self.a.buf.len()
    }

    /// Bookkeeping bytes held besides the code (space experiment).
    pub fn aux_bytes(&self) -> usize {
        self.a.aux_bytes()
    }

    /// Direct access to the shared assembler state, for extension layers
    /// that emit target instructions themselves (paper §5.4).
    pub fn raw(&mut self) -> &mut Asm<'m> {
        &mut self.a
    }

    /// Read-only access to the shared assembler state.
    pub fn state(&self) -> &Asm<'m> {
        &self.a
    }
}
