//! # vcode — retargetable, extensible, very fast dynamic code generation
//!
//! A Rust reproduction of **VCODE** (Dawson R. Engler, *"VCODE: a
//! Retargetable, Extensible, Very Fast Dynamic Code Generation System"*,
//! PLDI 1996). Dynamic code generation is the creation of executable code
//! at runtime; VCODE lets clients portably and efficiently specify that
//! code through the instruction set of an idealized load–store RISC
//! architecture, and *transliterates* each instruction to machine code
//! **in place** — no intermediate representation is built or consumed at
//! runtime. The result is code generation at a cost of a handful of host
//! instructions per generated instruction.
//!
//! ## Structure
//!
//! - This crate is the machine-independent core: the instruction set
//!   ([`Ty`], [`BinOp`], ... — paper Tables 1 and 2), the in-place
//!   [`buf::CodeBuffer`], [`label`]s and jump backpatching, the
//!   [`regalloc`] register allocator, and the client surface
//!   [`Assembler`].
//! - Backends implement [`Target`] (the retargeting interface): see the
//!   `vcode-mips`, `vcode-sparc`, `vcode-alpha` and `vcode-x64` crates.
//! - [`ext`] holds extension layers built on the core (paper §5.4), and
//!   [`spec`] the concise instruction-specification language the paper's
//!   preprocessor consumed (§3.3).
//!
//! ## Quick start
//!
//! Generating `int plus1(int x) { return x + 1; }` at runtime (Figure 1
//! of the paper; here against the synthetic test target — substitute
//! `vcode_x64::X64` to run the result natively):
//!
//! ```
//! use vcode::{Assembler, Leaf};
//! use vcode::fake::FakeTarget;
//!
//! let mut mem = vec![0u8; 1024];                       // client storage
//! let mut a = Assembler::<FakeTarget>::lambda(&mut mem, "%i", Leaf::Yes)?;
//! let x = a.arg(0);
//! a.addii(x, x, 1);                                    // v_addii
//! a.reti(x);                                           // v_reti
//! let func = a.end()?;                                 // v_end: link + cleanup
//! assert!(func.len > 0);
//! # Ok::<(), vcode::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod asm;
pub mod buf;
pub mod cache;
pub mod engine;
pub mod error;
pub mod ext;
pub mod fake;
pub mod label;
#[macro_use]
pub mod macros;
pub mod obs;
pub mod op;
pub mod persist;
pub mod rcu;
pub mod reg;
pub mod regalloc;
pub mod regress;
pub mod service;
pub mod spec;
pub mod target;
pub mod tier2;
pub mod trap;
pub mod ty;
pub mod verify;
pub mod vsync;

pub use asm::{Asm, Assembler};
pub use buf::EmitPath;
pub use cache::{CacheError, CacheKey, CacheStats, LambdaCache};
pub use engine::{
    AsyncCompile, Backend, DegradedLambda, Engine, EngineError, Lambda, Program, ServeMode,
    TargetId, TieredLambda,
};
pub use error::Error;
pub use label::Label;
pub use obs::{CodegenEvent, ExecStats, TraceRecord, TrapCounts};
pub use op::{BinOp, Cond, Imm, UnOp};
pub use persist::{Artifact, ArtifactCodec, CacheTier, DiskTier, PersistError};
pub use reg::{Bank, Reg, RegClass, RegDesc, RegFile, RegKind};
pub use service::{CompileService, QuarantineInfo, ServiceConfig, ServiceStats, Submit};
pub use target::{
    BrOperand, CallFrame, Finished, JumpTarget, Leaf, Off, StackSlot, Target, TargetScratch,
};
pub use tier2::{OptStats, TierConfig};
pub use trap::{ExecError, Fuel, Trap, TrapKind};
pub use ty::{Sig, SigParseError, Ty};
pub use verify::{
    cross_check, DecodedInsn, Diag, InsnDecoder, Rule, Severity, TargetChecks, VerifyReport,
};
