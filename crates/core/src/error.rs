//! Error type for dynamic code generation.

use crate::label::Label;
use std::fmt;

/// Error produced while generating a function.
///
/// Per-instruction emission methods are infallible (the hot path must stay
/// a handful of host instructions — paper §5.1); failures are latched and
/// reported by [`Assembler::end`](crate::Assembler::end).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// The client-provided code storage was exhausted.
    Overflow {
        /// Capacity of the storage in bytes.
        capacity: usize,
    },
    /// A branch or jump referenced a label that was never bound.
    UnboundLabel(Label),
    /// A procedure declared leaf tried to generate a call (paper §5.2:
    /// "If the client attempts to call a procedure from the function,
    /// VCODE signals an error").
    CallInLeaf,
    /// The function signature asked for more arguments than the target's
    /// calling convention support handles.
    TooManyArgs {
        /// Requested argument count.
        requested: usize,
        /// Supported maximum.
        max: usize,
    },
    /// An instruction was used with a type outside its Table-2 row, or a
    /// register from the wrong bank.
    BadOperands(&'static str),
    /// A branch displacement did not fit the target's encoding.
    BranchOutOfRange {
        /// Offset of the instruction.
        at: usize,
        /// Offset of the destination.
        dest: usize,
    },
    /// The `lambda` type string was malformed.
    BadSignature(crate::ty::SigParseError),
    /// A fixup was recorded past the buffer write cursor — the patch
    /// would target bytes that were never emitted.
    FixupOutOfRange {
        /// Offset the fixup was recorded at.
        at: usize,
        /// Buffer write cursor at the time.
        len: usize,
    },
    /// A register outside the target's register file was named (e.g. in
    /// `set_register_class`).
    UnknownRegister(crate::reg::Reg),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Overflow { capacity } => {
                write!(f, "code storage exhausted ({capacity} bytes)")
            }
            Error::UnboundLabel(l) => write!(f, "label {} referenced but never bound", l.index()),
            Error::CallInLeaf => write!(f, "call generated inside a leaf procedure"),
            Error::TooManyArgs { requested, max } => {
                write!(f, "{requested} arguments requested, target supports {max}")
            }
            Error::BadOperands(what) => write!(f, "bad operands: {what}"),
            Error::BranchOutOfRange { at, dest } => {
                write!(f, "branch at {at:#x} to {dest:#x} out of encodable range")
            }
            Error::BadSignature(e) => write!(f, "{e}"),
            Error::FixupOutOfRange { at, len } => {
                write!(f, "fixup at {at:#x} past the write cursor ({len:#x})")
            }
            Error::UnknownRegister(r) => {
                write!(f, "register {r} is not in the target register file")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<crate::ty::SigParseError> for Error {
    fn from(e: crate::ty::SigParseError) -> Error {
        Error::BadSignature(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = Error::Overflow { capacity: 64 };
        assert_eq!(e.to_string(), "code storage exhausted (64 bytes)");
        let e = Error::TooManyArgs {
            requested: 9,
            max: 6,
        };
        assert!(e.to_string().contains("9 arguments"));
    }
}
