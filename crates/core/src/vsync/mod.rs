//! Synchronization facade: `std::sync` in production, a model-checked
//! scheduler under test.
//!
//! The workspace's concurrency protocols — the cache's `Building`-slot
//! condvar handshake, the compile service's work queue and quarantine
//! table, the tiering latch, DPF's epoch-RCU cell — are exactly the kind
//! of hand-rolled lock-free plumbing the paper's §6 concession ("misuse
//! generates bad code with no warning") warns about, except here the
//! misuse would be *ours*, not a client's. Stress tests on a 1-core CI
//! box explore almost no interleavings; `vsync` exists so the same
//! production code can be driven by a deterministic scheduler instead.
//!
//! - **Normal builds** (no `mcheck` feature): every name in this module
//!   is a re-export of the `std` type. Zero cost, zero behavior change —
//!   the existing 20% bench fences (codegen_cost, cache_amortize,
//!   compile_service, dpf_service) hold over the facade.
//! - **`mcheck` builds**: each type is a thin wrapper that, *when used
//!   from a thread managed by [`model`]'s cooperative scheduler*, turns
//!   every operation into a schedule point: the explorer enumerates
//!   interleavings (bounded exhaustive DFS or seeded random walks),
//!   models TSO-style store buffers for non-SeqCst atomic stores,
//!   virtualizes the clock, and detects deadlock and lost wakeups.
//!   Unmanaged threads fall straight through to `std`, so cargo's
//!   feature unification (the `mcheck` crate enabling the feature for a
//!   whole workspace test build) never changes the semantics of
//!   ordinary tests.
//!
//! Ported modules (`cache`, `service`, the tiering half of `engine`,
//! `rcu`, `dpf::service`) import their primitives from here and only
//! here — `scripts/unsafe_audit.sh` and DESIGN.md "Model-checked
//! concurrency" document the rule: no raw `std::sync` in ported
//! modules.
//!
//! The facade deliberately mirrors the `std` API (poisoning included)
//! so a port is an import swap, not a rewrite.

#[cfg(feature = "mcheck")]
pub mod model;

#[cfg(feature = "mcheck")]
mod instrumented;

#[cfg(feature = "mcheck")]
pub use instrumented::{
    thread, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Condvar, Instant, Mutex, MutexGuard,
    OnceLock, WaitTimeoutResult,
};

#[cfg(not(feature = "mcheck"))]
pub use passthrough::{
    thread, AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Condvar, Instant, Mutex, MutexGuard,
    OnceLock, WaitTimeoutResult,
};

// Shared-by-construction re-exports: these are pure data (or reference
// counting) with no scheduling decisions to model, so both modes use
// `std` directly.
pub use std::sync::atomic::Ordering;
pub use std::sync::{Arc, LockResult, PoisonError, TryLockError, TryLockResult, Weak};
pub use std::time::Duration;

/// Fault-injection points for the checker's mutation tests: each one
/// deliberately weakens a protocol so the explorer can prove it would
/// *catch* the regression (see `crates/mcheck`). In normal builds the
/// queries below constant-fold to "no injection".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Injection {
    /// Weakens the epoch-RCU reader announcement from `SeqCst` to
    /// `Relaxed` ([`crate::rcu::Rcu::enter`]): the StoreLoad barrier
    /// between publishing the entry epoch and loading the current
    /// generation disappears, so a writer can miss an active reader and
    /// reclaim a generation still in use.
    RcuRelaxedPublication,
    /// Drops the `Building`-slot condvar notify
    /// (`crate::cache::Build::wake`): waiters only ever progress via
    /// the stall timeout, which the explorer observes as a virtual-
    /// clock jump (or, for unbounded waits, a deadlock).
    DropCacheNotify,
    /// Breaks the persistent-cache single-writer claim
    /// (`crate::persist::StoreSlots::try_claim`): the claim is handed
    /// out but never recorded in the slot table, so two threads racing
    /// to persist one key both "win" and both publish — the
    /// `persist_single_writer` model program counts the publications
    /// and fails.
    PersistClaimRace,
}

/// Whether `i` is injected for the current model execution. Always
/// `false` outside an active model run; constant `false` in normal
/// builds (the call compiles away).
#[inline]
#[cfg(feature = "mcheck")]
pub fn injected(i: Injection) -> bool {
    model::injected(i)
}

/// Normal-build stub: no injections exist.
#[inline]
#[cfg(not(feature = "mcheck"))]
pub fn injected(_i: Injection) -> bool {
    false
}

/// The memory ordering for the epoch-RCU reader announcement: `SeqCst`
/// unless the mutation test weakened it (see
/// [`Injection::RcuRelaxedPublication`]).
#[inline]
pub fn rcu_publication_order() -> Ordering {
    if injected(Injection::RcuRelaxedPublication) {
        Ordering::Relaxed
    } else {
        Ordering::SeqCst
    }
}

#[cfg(not(feature = "mcheck"))]
mod passthrough {
    //! Production facade: straight re-exports. The only code in this
    //! module is `thread`, which narrows `std::thread` to the surface
    //! the ported modules use (so the instrumented build can mirror it
    //! exactly).

    pub use std::sync::{Condvar, Mutex, MutexGuard, OnceLock, WaitTimeoutResult};
    pub use std::time::Instant;

    pub use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize};

    /// Thread spawning and sleeping, re-exported from `std::thread`.
    pub mod thread {
        pub use std::thread::{sleep, spawn, yield_now, Builder, JoinHandle};
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The facade must present the identical API in both modes; these
    // compile-and-run smoke checks exercise every surface the ported
    // modules rely on, so a drift in either mode fails tier-1 whether
    // or not the `mcheck` feature is unified into the build.
    #[test]
    fn facade_smoke() {
        let m = Mutex::new(1u32);
        {
            let mut g = m.lock().unwrap_or_else(|e| e.into_inner());
            *g += 1;
        }
        assert_eq!(*m.lock().unwrap(), 2);
        assert!(m.try_lock().is_ok());

        let cv = Condvar::new();
        let g = m.lock().unwrap();
        let (g, t) = cv
            .wait_timeout(g, Duration::from_millis(1))
            .unwrap_or_else(|e| e.into_inner());
        assert!(t.timed_out());
        drop(g);
        cv.notify_one();
        cv.notify_all();

        let o: OnceLock<u32> = OnceLock::new();
        assert!(o.get().is_none());
        assert_eq!(*o.get_or_init(|| 7), 7);
        assert_eq!(o.get(), Some(&7));
        assert!(o.set(9).is_err());

        let a = AtomicU64::new(1);
        a.store(2, Ordering::SeqCst);
        assert_eq!(a.swap(3, Ordering::SeqCst), 2);
        assert_eq!(a.fetch_add(1, Ordering::Relaxed), 3);
        assert_eq!(a.load(Ordering::SeqCst), 4);

        let b = AtomicBool::new(false);
        b.store(true, Ordering::Release);
        assert!(b.load(Ordering::Acquire));

        let u = AtomicUsize::new(0);
        assert_eq!(u.fetch_add(2, Ordering::SeqCst), 0);
        u.fetch_sub(1, Ordering::SeqCst);
        u.fetch_max(9, Ordering::Relaxed);
        assert_eq!(u.load(Ordering::SeqCst), 9);

        let mut boxed = Box::new(5u8);
        let p: AtomicPtr<u8> = AtomicPtr::new(std::ptr::null_mut());
        p.store(&mut *boxed, Ordering::SeqCst);
        assert_eq!(
            p.swap(std::ptr::null_mut(), Ordering::SeqCst),
            &mut *boxed as *mut u8
        );

        let t0 = Instant::now();
        let deadline = t0 + Duration::from_millis(1);
        assert!(deadline.saturating_duration_since(t0) >= Duration::from_millis(1));
        let _ = t0.elapsed();
        assert!(deadline >= t0);

        let h = thread::spawn(|| 6u32);
        assert_eq!(h.join().unwrap(), 6);
        let h = thread::Builder::new()
            .name("vsync-smoke".into())
            .spawn(|| 8u32)
            .unwrap();
        assert_eq!(h.join().unwrap(), 8);
        thread::yield_now();
        thread::sleep(Duration::from_micros(10));

        assert!(!injected(Injection::RcuRelaxedPublication));
        assert_eq!(rcu_publication_order(), Ordering::SeqCst);
    }
}
