//! Deterministic cooperative scheduler and interleaving explorer — the
//! `mcheck` runtime behind the [`vsync`](crate::vsync) facade.
//!
//! A *model execution* runs ordinary Rust closures on real OS threads,
//! but with exactly one thread running at any instant: every facade
//! operation (atomic load/store/RMW, mutex lock/unlock, condvar
//! wait/notify, `OnceLock` init, spawn/join/sleep) is a **schedule
//! point** where control returns to a coordinator, which picks the next
//! action from the set of *enabled* actions:
//!
//! - step a thread whose pending operation can proceed (a lock on a
//!   free mutex, any atomic op, a join on a finished thread, …),
//! - flush the oldest entry of a thread's **store buffer** (see below),
//! - or — only when nothing else can move — advance the **virtual
//!   clock** to the earliest sleep/timeout deadline.
//!
//! The sequence of picks is driven by a [`Schedule`]: bounded
//! exhaustive depth-first enumeration ([`Explorer::exhaustive`]),
//! seeded random walks ([`Explorer::random`]), or the replay of a
//! previously reported schedule ([`Explorer::replay`]). Executions are
//! deterministic functions of the choice string, so every reported
//! [`Violation`] carries a schedule that reproduces it exactly.
//!
//! # Memory model: TSO store buffers
//!
//! Non-`SeqCst` atomic stores do not hit shared memory immediately:
//! they enter the storing thread's FIFO buffer, visible to that
//! thread's own later loads but to nobody else until a *flush* action
//! drains them (or the thread performs a `SeqCst` store / any RMW,
//! which drains its own buffer first, or exits). This is the x86-TSO
//! relaxation — precisely the store→load reordering that epoch-RCU's
//! publication barrier exists to forbid — so weakening that barrier to
//! `Relaxed` ([`Injection::RcuRelaxedPublication`]) becomes an
//! explorable, catchable bug instead of a latent one. Orderings weaker
//! than TSO (independent-read-independent-write effects, load
//! reordering) are *not* modeled; DESIGN.md "Model-checked concurrency"
//! spells out the boundary.
//!
//! # What counts as a violation
//!
//! - any panic in a model thread (assertion failures in model programs,
//!   `unwrap`s in the code under test),
//! - **deadlock**: no enabled action, no pending flush, and no timed
//!   wait to advance onto, while unfinished threads remain (this is how
//!   a lost condvar notify without a timeout backstop surfaces),
//! - exceeding the per-execution step bound (livelock guard),
//! - exceeding the thread cap.
//!
//! Lost notifies *with* a timeout backstop do not deadlock — the
//! virtual clock bails the waiter out — so model programs assert
//! latency instead: a wait that only completed because the clock
//! jumped to its deadline is a protocol regression even though it
//! eventually returned (see the `mcheck` crate's cache programs).

use std::any::Any;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};
use std::time::Duration;

pub use super::Injection;

// ---------------------------------------------------------------------------
// Public configuration and reports
// ---------------------------------------------------------------------------

/// Bounds and knobs for one exploration.
#[derive(Debug, Clone)]
pub struct Options {
    /// Max schedule points in one execution before it is reported as a
    /// livelock.
    pub max_steps: usize,
    /// Max live model threads in one execution.
    pub max_threads: usize,
    /// Deliberate protocol weakenings for mutation (checker-teeth)
    /// tests.
    pub injections: Vec<Injection>,
    /// Cap on recorded trace steps per execution (the tail is kept).
    pub trace_cap: usize,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            max_steps: 20_000,
            max_threads: 16,
            injections: Vec::new(),
            trace_cap: 4_096,
        }
    }
}

/// One reported schedule decision: `chosen` out of `options` enabled
/// actions. Forced moves (a single enabled action) consume no decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Choice {
    /// Index picked among the enabled actions at this point.
    pub chosen: u32,
    /// How many actions were enabled.
    pub options: u32,
}

/// A schedule-reproducible failure found by the explorer.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong: the panic message, or the coordinator's
    /// deadlock / livelock report.
    pub message: String,
    /// The decision string that reproduces the failure via
    /// [`Explorer::replay`].
    pub schedule: Vec<Choice>,
    /// The seed of the random walk that found it, if any.
    pub seed: Option<u64>,
    /// Zero-based index of the failing execution within the run.
    pub execution: u64,
    /// Rendered step-by-step trace of the failing execution.
    pub trace: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "model violation: {}", self.message)?;
        if let Some(seed) = self.seed {
            writeln!(
                f,
                "  found by random walk: seed {seed}, execution {}",
                self.execution
            )?;
        } else {
            writeln!(f, "  found at execution {}", self.execution)?;
        }
        writeln!(f, "  replay schedule: {}", render_schedule(&self.schedule))?;
        write!(f, "{}", self.trace)
    }
}

/// Outcome of one exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Executions (interleavings) actually run.
    pub executions: u64,
    /// Schedule points taken across all executions.
    pub steps: u64,
    /// `true` when an exhaustive sweep drained the whole bounded
    /// schedule tree (always `false` for random walks that were capped,
    /// `true` for replays).
    pub complete: bool,
    /// The first failure found, if any (exploration stops on it).
    pub violation: Option<Violation>,
}

impl Report {
    /// Panics with the full rendered violation if one was found;
    /// returns `self` otherwise. The model-program test entry point.
    #[track_caller]
    pub fn assert_ok(self) -> Report {
        if let Some(v) = &self.violation {
            panic!("{v}");
        }
        self
    }

    /// The violation, or a panic naming the explorer state — for
    /// mutation tests that *require* a failure to be found.
    #[track_caller]
    pub fn expect_violation(self, what: &str) -> Violation {
        match self.violation {
            Some(v) => v,
            None => panic!(
                "mutation NOT caught ({what}): {} executions, {} steps, complete={}",
                self.executions, self.steps, self.complete
            ),
        }
    }
}

/// Renders a decision string as the dotted form shown in reports and
/// accepted back by [`parse_schedule`].
pub fn render_schedule(s: &[Choice]) -> String {
    if s.is_empty() {
        return "(empty)".to_string();
    }
    let mut out = String::new();
    for (i, c) in s.iter().enumerate() {
        if i > 0 {
            out.push('.');
        }
        let _ = write!(out, "{}", c.chosen);
    }
    out
}

/// Parses the dotted decision string from a [`Violation`] report back
/// into replayable choices. Option counts are re-derived during replay.
pub fn parse_schedule(s: &str) -> Option<Vec<Choice>> {
    if s == "(empty)" {
        return Some(Vec::new());
    }
    s.split('.')
        .map(|tok| {
            tok.trim()
                .parse::<u32>()
                .ok()
                .map(|chosen| Choice { chosen, options: 0 })
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Explorer: the three exploration modes over one closure
// ---------------------------------------------------------------------------

/// Runs a model program under the cooperative scheduler in one of three
/// modes. The closure is the *whole program*: it runs on the root model
/// thread and may spawn more via `vsync::thread::spawn`; the execution
/// ends when every model thread has finished.
#[derive(Debug, Clone, Default)]
pub struct Explorer {
    /// Exploration bounds.
    pub opts: Options,
}

impl Explorer {
    /// An explorer with default bounds.
    pub fn new() -> Explorer {
        Explorer::default()
    }

    /// An explorer with the given bounds.
    pub fn with_options(opts: Options) -> Explorer {
        Explorer { opts }
    }

    /// Bounded exhaustive DFS over the schedule tree: systematically
    /// enumerates interleavings until the tree is drained (`complete`)
    /// or `max_executions` is hit. Stops at the first violation.
    pub fn exhaustive(&self, max_executions: u64, f: impl Fn() + Sync) -> Report {
        let mut path: Vec<Choice> = Vec::new();
        let mut executions = 0u64;
        let mut steps = 0u64;
        loop {
            if executions >= max_executions {
                return Report {
                    executions,
                    steps,
                    complete: false,
                    violation: None,
                };
            }
            let out = run_one(&self.opts, Source::Dfs, &mut path, &mut 0, &f);
            executions += 1;
            steps += out.steps;
            if let Some(message) = out.failure {
                return Report {
                    executions,
                    steps,
                    complete: false,
                    violation: Some(Violation {
                        message,
                        schedule: path.clone(),
                        seed: None,
                        execution: executions - 1,
                        trace: out.trace,
                    }),
                };
            }
            // Advance DFS: bump the deepest decision that still has an
            // unexplored sibling, drop everything after it.
            let advanced = loop {
                match path.pop() {
                    None => break false,
                    Some(c) if c.chosen + 1 < c.options => {
                        path.push(Choice {
                            chosen: c.chosen + 1,
                            options: c.options,
                        });
                        break true;
                    }
                    Some(_) => {}
                }
            };
            if !advanced {
                return Report {
                    executions,
                    steps,
                    complete: true,
                    violation: None,
                };
            }
        }
    }

    /// `executions` seeded random walks (seeds derived from `seed` by a
    /// SplitMix64 stream, so every walk is independently replayable).
    /// Stops at the first violation.
    pub fn random(&self, seed: u64, executions: u64, f: impl Fn() + Sync) -> Report {
        let mut steps = 0u64;
        for i in 0..executions {
            let mut rng = splitmix64(seed.wrapping_add(i.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
            let mut path = Vec::new();
            let out = run_one(&self.opts, Source::Random, &mut path, &mut rng, &f);
            steps += out.steps;
            if let Some(message) = out.failure {
                return Report {
                    executions: i + 1,
                    steps,
                    complete: false,
                    violation: Some(Violation {
                        message,
                        schedule: path,
                        seed: Some(seed),
                        execution: i,
                        trace: out.trace,
                    }),
                };
            }
        }
        Report {
            executions,
            steps,
            complete: false,
            violation: None,
        }
    }

    /// Replays one execution following `schedule`; decisions beyond its
    /// end take the first enabled action. Returns the single-execution
    /// report (violation included if the schedule still fails — the
    /// round-trip every mutation test asserts).
    pub fn replay(&self, schedule: &[Choice], f: impl Fn() + Sync) -> Report {
        let mut path = schedule.to_vec();
        let out = run_one(&self.opts, Source::Replay, &mut path, &mut 0, &f);
        Report {
            executions: 1,
            steps: out.steps,
            complete: true,
            violation: out.failure.map(|message| Violation {
                message,
                schedule: path,
                seed: None,
                execution: 0,
                trace: out.trace,
            }),
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

// ---------------------------------------------------------------------------
// Execution state
// ---------------------------------------------------------------------------

/// How the next decision index is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    /// Follow the path prefix, then first-option; grow the path.
    Dfs,
    /// Follow the path prefix (none on entry), then RNG; grow the path.
    Random,
    /// Follow the path prefix, then first-option; do not grow.
    Replay,
}

/// A buffered (not yet globally visible) atomic store.
struct BufEntry {
    addr: usize,
    val: u64,
    /// Writes `val` to the atomic at `addr` with `SeqCst`. Safe while
    /// the owning object is alive; facade objects purge their entries
    /// on drop.
    apply: unsafe fn(usize, u64),
    what: &'static str,
}

/// The operation a thread is parked on at a schedule point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// First schedule point of a freshly spawned thread.
    Start,
    Load {
        addr: usize,
        what: &'static str,
    },
    Store {
        addr: usize,
        what: &'static str,
        seq_cst: bool,
    },
    Rmw {
        addr: usize,
        what: &'static str,
    },
    Lock {
        m: usize,
    },
    TryLock {
        m: usize,
    },
    /// Post-notify / post-timeout condvar reacquire.
    Reacquire {
        m: usize,
        timed_out: bool,
    },
    CvWait {
        cv: usize,
        m: usize,
        deadline: Option<u64>,
    },
    Notify {
        cv: usize,
        all: bool,
    },
    /// `OnceLock` get / get_or_init entry.
    Once {
        o: usize,
        init: bool,
    },
    Join {
        t: usize,
    },
    Sleep {
        deadline: u64,
    },
    Yield,
}

/// Why a thread cannot be scheduled at all (as opposed to a guarded
/// [`Op`] that is merely disabled right now).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Block {
    CvWait {
        cv: usize,
        m: usize,
        deadline: Option<u64>,
    },
    Sleep {
        deadline: u64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// OS thread launched, has not reached its first schedule point.
    Starting,
    /// Parked at a schedule point, wants to perform `Op`.
    AtYield(Op),
    /// Unschedulable until an event (notify, clock) converts it back.
    Blocked(Block),
    /// Closure returned (or unwound); never scheduled again.
    Finished,
}

struct ThreadSt {
    status: Status,
    buffer: Vec<BufEntry>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MutexSt {
    Free,
    Held { by: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OnceSt {
    Empty,
    Initializing { by: usize },
    Done,
}

struct ExecState {
    threads: Vec<ThreadSt>,
    /// The thread currently granted the right to run, if any.
    running: Option<usize>,
    mutexes: HashMap<usize, MutexSt>,
    onces: HashMap<usize, OnceSt>,
    /// Virtual clock, nanoseconds since execution start.
    now: u64,
    /// Decision cursor into `path`.
    cursor: usize,
    /// RNG state for `Source::Random` decisions past the prefix.
    rng: u64,
    steps: u64,
    trace: Vec<String>,
    trace_dropped: u64,
    failure: Option<String>,
    abort: bool,
    /// Deferred drops (e.g. RCU generations under test): kept alive so
    /// use-after-retire is a detectable canary read, not UB. Dropped
    /// when the execution ends.
    graveyard: Vec<Box<dyn Any + Send>>,
    /// Decision mismatch between replayed prefix and live option count.
    nondet: bool,
}

/// One model execution's shared context. Threads hold it in TLS; the
/// coordinator owns the schedule.
pub(crate) struct Ctx {
    state: StdMutex<ExecState>,
    cv: StdCondvar,
    opts: Options,
    source: Source,
    /// The DFS/replay path, shared with the coordinator's caller.
    path: StdMutex<Vec<Choice>>,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("model::Ctx").finish_non_exhaustive()
    }
}

thread_local! {
    static TLS: RefCell<Option<(Arc<Ctx>, usize)>> = const { RefCell::new(None) };
}

/// The calling thread's model context, if it is a managed model thread.
pub(crate) fn current() -> Option<(Arc<Ctx>, usize)> {
    TLS.with(|t| t.borrow().clone())
}

/// Whether the calling thread is managed by an active model execution.
pub fn is_managed() -> bool {
    TLS.with(|t| t.borrow().is_some())
}

/// Whether `i` is injected for the calling thread's execution (always
/// `false` off-model).
pub fn injected(i: Injection) -> bool {
    match current() {
        Some((ctx, _)) => ctx.opts.injections.contains(&i),
        None => false,
    }
}

/// Defers `b`'s drop to the end of the current model execution. Panics
/// off-model — callers gate on [`is_managed`]. Used by `crate::rcu` to
/// turn use-after-retire into a catchable canary instead of UB.
pub fn defer_drop(b: Box<dyn Any + Send>) {
    let (ctx, _) = current().expect("defer_drop outside a model execution");
    ctx.state.lock().unwrap().graveyard.push(b);
}

/// The virtual clock of the calling thread's execution, if managed.
pub(crate) fn virtual_now() -> Option<u64> {
    current().map(|(ctx, _)| ctx.state.lock().unwrap().now)
}

/// Panic payload used to unwind model threads when an execution aborts.
struct AbortToken;

struct RunOutcome {
    steps: u64,
    failure: Option<String>,
    trace: String,
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

/// An enabled scheduler action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    Step(usize),
    Flush(usize),
}

fn run_one(
    opts: &Options,
    source: Source,
    path: &mut Vec<Choice>,
    rng: &mut u64,
    f: &(impl Fn() + Sync),
) -> RunOutcome {
    let ctx = Arc::new(Ctx {
        state: StdMutex::new(ExecState {
            threads: Vec::new(),
            running: None,
            mutexes: HashMap::new(),
            onces: HashMap::new(),
            now: 0,
            cursor: 0,
            rng: *rng,
            steps: 0,
            trace: Vec::new(),
            trace_dropped: 0,
            failure: None,
            abort: false,
            graveyard: Vec::new(),
            nondet: false,
        }),
        cv: StdCondvar::new(),
        opts: opts.clone(),
        source,
        path: StdMutex::new(std::mem::take(path)),
    });

    std::thread::scope(|scope| {
        // Root model thread (tid 0).
        ctx.state.lock().unwrap().threads.push(ThreadSt {
            status: Status::Starting,
            buffer: Vec::new(),
        });
        {
            let ctx = Arc::clone(&ctx);
            scope.spawn(move || thread_main(ctx, 0, f, None));
        }
        coordinate(&ctx);
    });

    // Tear down: drop deferred objects, recover the (possibly grown)
    // path for the caller's DFS bookkeeping.
    let mut st = ctx.state.lock().unwrap();
    st.graveyard.clear();
    let steps = st.steps;
    let failure = st.failure.take();
    let trace = render_trace(&st);
    *rng = st.rng;
    drop(st);
    *path = std::mem::take(&mut *ctx.path.lock().unwrap());
    RunOutcome {
        steps,
        failure,
        trace,
    }
}

fn render_trace(st: &ExecState) -> String {
    let mut out = String::new();
    if st.trace_dropped > 0 {
        let _ = writeln!(out, "  … {} earlier steps elided …", st.trace_dropped);
    }
    for line in &st.trace {
        let _ = writeln!(out, "  {line}");
    }
    out
}

fn coordinate(ctx: &Ctx) {
    loop {
        let mut st = ctx.state.lock().unwrap();
        // Wait for the granted thread (if any) to park again, and for
        // freshly launched OS threads to reach their first schedule
        // point (`Starting` is transient: the root settles immediately,
        // children settle before their spawner's `spawn` returns).
        while st.running.is_some() || st.threads.iter().any(|t| t.status == Status::Starting) {
            st = ctx.cv.wait(st).unwrap();
        }
        if st.failure.is_some() || st.nondet {
            if st.nondet && st.failure.is_none() {
                st.failure =
                    Some("nondeterministic schedule tree: replayed decision had a different option count".into());
            }
            drop(st);
            abort_all(ctx);
            return;
        }
        if st.threads.iter().all(|t| t.status == Status::Finished) {
            return;
        }
        if st.steps >= ctx.opts.max_steps as u64 {
            st.failure = Some(format!(
                "step bound exceeded ({} schedule points): livelock or unbounded loop",
                ctx.opts.max_steps
            ));
            drop(st);
            abort_all(ctx);
            return;
        }

        // Enumerate enabled actions in deterministic (tid) order.
        let mut actions: Vec<Action> = Vec::new();
        for (i, t) in st.threads.iter().enumerate() {
            if let Status::AtYield(op) = t.status {
                if guard(&st, op) {
                    actions.push(Action::Step(i));
                }
            }
        }
        for (i, t) in st.threads.iter().enumerate() {
            if !t.buffer.is_empty() {
                actions.push(Action::Flush(i));
            }
        }

        if actions.is_empty() {
            // Nothing can move: advance the virtual clock to the
            // earliest deadline, or report deadlock.
            let next = st
                .threads
                .iter()
                .filter_map(|t| match t.status {
                    Status::Blocked(Block::CvWait {
                        deadline: Some(d), ..
                    }) => Some(d),
                    Status::Blocked(Block::Sleep { deadline }) => Some(d_min(deadline)),
                    _ => None,
                })
                .min();
            match next {
                Some(d) => {
                    st.now = st.now.max(d);
                    let now = st.now;
                    trace_push(ctx, &mut st, format!("time advances to {}ns", now));
                    for t in st.threads.iter_mut() {
                        match t.status {
                            Status::Blocked(Block::CvWait {
                                m,
                                deadline: Some(dl),
                                ..
                            }) if dl <= now => {
                                t.status = Status::AtYield(Op::Reacquire { m, timed_out: true });
                            }
                            Status::Blocked(Block::Sleep { deadline }) if deadline <= now => {
                                t.status = Status::AtYield(Op::Yield);
                            }
                            _ => {}
                        }
                    }
                    continue;
                }
                None => {
                    st.failure = Some(deadlock_report(&st));
                    drop(st);
                    abort_all(ctx);
                    return;
                }
            }
        }

        let idx = decide(ctx, &mut st, actions.len() as u32) as usize;
        st.steps += 1;
        match actions[idx] {
            Action::Flush(t) => {
                let e = st.threads[t].buffer.remove(0);
                trace_push(
                    ctx,
                    &mut st,
                    format!(
                        "t{t} store-buffer flush: {} @{:#x} = {}",
                        e.what, e.addr, e.val
                    ),
                );
                // SAFETY: facade objects purge their buffered entries on
                // drop, so `addr` refers to a live atomic.
                unsafe { (e.apply)(e.addr, e.val) };
            }
            Action::Step(t) => {
                if let Status::AtYield(op) = st.threads[t].status {
                    let d = describe(&st, t, op);
                    trace_push(ctx, &mut st, d);
                }
                st.running = Some(t);
                ctx.cv.notify_all();
            }
        }
    }
}

/// `Sleep` deadlines participate in time advance exactly like timed
/// waits; kept as a function so the clock math stays in one place.
fn d_min(d: u64) -> u64 {
    d
}

/// Whether `op` can proceed right now.
fn guard(st: &ExecState, op: Op) -> bool {
    match op {
        Op::Lock { m } | Op::Reacquire { m, .. } => {
            matches!(
                st.mutexes.get(&m).copied().unwrap_or(MutexSt::Free),
                MutexSt::Free
            )
        }
        Op::Join { t } => st.threads[t].status == Status::Finished,
        Op::Once { o, .. } => !matches!(
            st.onces.get(&o).copied().unwrap_or(OnceSt::Empty),
            OnceSt::Initializing { .. }
        ),
        _ => true,
    }
}

fn describe(st: &ExecState, t: usize, op: Op) -> String {
    let step = st.steps;
    match op {
        Op::Start => format!("#{step} t{t} starts"),
        Op::Load { addr, what } => format!("#{step} t{t} {what}.load @{addr:#x}"),
        Op::Store {
            addr,
            what,
            seq_cst,
        } => {
            let k = if seq_cst {
                "store(SeqCst)"
            } else {
                "store(buffered)"
            };
            format!("#{step} t{t} {what}.{k} @{addr:#x}")
        }
        Op::Rmw { addr, what } => format!("#{step} t{t} {what}.rmw @{addr:#x}"),
        Op::Lock { m } => format!("#{step} t{t} mutex.lock @{m:#x}"),
        Op::TryLock { m } => format!("#{step} t{t} mutex.try_lock @{m:#x}"),
        Op::Reacquire { m, timed_out } => {
            format!("#{step} t{t} condvar-reacquire @{m:#x} (timed_out={timed_out})")
        }
        Op::CvWait { cv, m, deadline } => match deadline {
            Some(d) => format!(
                "#{step} t{t} condvar.wait_timeout @{cv:#x} (mutex @{m:#x}, deadline {d}ns)"
            ),
            None => format!("#{step} t{t} condvar.wait @{cv:#x} (mutex @{m:#x})"),
        },
        Op::Notify { cv, all } => {
            let k = if all { "notify_all" } else { "notify_one" };
            format!("#{step} t{t} condvar.{k} @{cv:#x}")
        }
        Op::Once { o, init } => {
            let k = if init { "get_or_init" } else { "get" };
            format!("#{step} t{t} once.{k} @{o:#x}")
        }
        Op::Join { t: target } => format!("#{step} t{t} join t{target}"),
        Op::Sleep { deadline } => format!("#{step} t{t} sleep until {deadline}ns"),
        Op::Yield => format!("#{step} t{t} yields"),
    }
}

fn deadlock_report(st: &ExecState) -> String {
    let mut msg =
        String::from("deadlock: no enabled action, no flush, no timed wait; live threads:");
    for (i, t) in st.threads.iter().enumerate() {
        match t.status {
            Status::Finished => {}
            Status::AtYield(op) => {
                let _ = write!(msg, "\n    t{i} waiting on {op:?}");
            }
            Status::Blocked(b) => {
                let _ = write!(msg, "\n    t{i} blocked on {b:?}");
            }
            Status::Starting => {
                let _ = write!(msg, "\n    t{i} starting");
            }
        }
    }
    msg
}

fn trace_push(ctx: &Ctx, st: &mut ExecState, line: String) {
    if st.trace.len() >= ctx.opts.trace_cap {
        st.trace.remove(0);
        st.trace_dropped += 1;
    }
    st.trace.push(line);
}

/// Produces the next decision index among `options` enabled actions.
/// Forced moves consume no decision.
fn decide(ctx: &Ctx, st: &mut ExecState, options: u32) -> u32 {
    if options <= 1 {
        return 0;
    }
    let mut path = ctx.path.lock().unwrap();
    let cursor = st.cursor;
    st.cursor += 1;
    if cursor < path.len() {
        let c = &mut path[cursor];
        if c.options != 0 && c.options != options && ctx.source != Source::Replay {
            st.nondet = true;
            return 0;
        }
        c.options = options;
        return c.chosen.min(options - 1);
    }
    let chosen = match ctx.source {
        Source::Dfs => 0,
        Source::Replay => 0,
        Source::Random => {
            st.rng = splitmix64(st.rng);
            (st.rng % options as u64) as u32
        }
    };
    if ctx.source != Source::Replay {
        path.push(Choice { chosen, options });
    }
    chosen
}

/// Wakes every live thread into the abort path and waits for all of
/// them to finish unwinding. Sequentially consistent teardown is not
/// needed: aborted threads perform only degenerate (non-model,
/// non-blocking-on-model) operations while unwinding.
fn abort_all(ctx: &Ctx) {
    let mut st = ctx.state.lock().unwrap();
    st.abort = true;
    ctx.cv.notify_all();
    while st.threads.iter().any(|t| t.status != Status::Finished) {
        st = ctx.cv.wait(st).unwrap();
    }
}

// ---------------------------------------------------------------------------
// Thread side
// ---------------------------------------------------------------------------

fn thread_main<T>(
    ctx: Arc<Ctx>,
    tid: usize,
    f: impl FnOnce() -> T,
    out: Option<Arc<StdMutex<Option<T>>>>,
) {
    TLS.with(|t| *t.borrow_mut() = Some((Arc::clone(&ctx), tid)));
    // Announce the first schedule point and wait for the grant.
    {
        let mut st = ctx.state.lock().unwrap();
        st.threads[tid].status = Status::AtYield(Op::Start);
        ctx.cv.notify_all();
        while st.running != Some(tid) && !st.abort {
            st = ctx.cv.wait(st).unwrap();
        }
        if st.abort {
            st.threads[tid].status = Status::Finished;
            ctx.cv.notify_all();
            TLS.with(|t| *t.borrow_mut() = None);
            return;
        }
    }
    let result = catch_unwind(AssertUnwindSafe(f));
    // Publish the result BEFORE the Finished handshake: a joiner can be
    // granted the instant `Finished` becomes visible and must find the
    // value in the slot.
    let err = match result {
        Ok(v) => {
            if let Some(out) = &out {
                *out.lock().unwrap() = Some(v);
            }
            None
        }
        Err(p) => Some(p),
    };
    let mut st = ctx.state.lock().unwrap();
    // Exiting is a synchronization point: the buffer drains (a joiner
    // must observe every store of the joined thread).
    flush_buffer(&mut st, tid);
    if let Some(p) = &err {
        if !p.is::<AbortToken>() && st.failure.is_none() {
            st.failure = Some(panic_message(p.as_ref()));
        }
    }
    st.threads[tid].status = Status::Finished;
    st.running = None;
    ctx.cv.notify_all();
    drop(st);
    TLS.with(|t| *t.borrow_mut() = None);
}

fn panic_message(p: &(dyn Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked (non-string payload)".to_string()
    }
}

fn flush_buffer(st: &mut ExecState, tid: usize) {
    for e in std::mem::take(&mut st.threads[tid].buffer) {
        // SAFETY: as in the coordinator's flush action — the owning
        // objects are alive (they purge on drop).
        unsafe { (e.apply)(e.addr, e.val) };
    }
}

impl Ctx {
    /// Parks the calling thread at a schedule point wanting `op`;
    /// returns when granted. Panics with the abort token when the
    /// execution is being torn down.
    fn yield_op(self: &Arc<Ctx>, tid: usize, op: Op) -> std::sync::MutexGuard<'_, ExecState> {
        let mut st = self.state.lock().unwrap();
        if st.abort {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
        st.threads[tid].status = Status::AtYield(op);
        st.running = None;
        self.cv.notify_all();
        while st.running != Some(tid) && !st.abort {
            st = self.cv.wait(st).unwrap();
        }
        if st.abort {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
        st
    }

    /// Inline nondeterministic choice for a granted thread (notify
    /// target selection).
    fn choose(self: &Arc<Ctx>, st: &mut ExecState, options: u32) -> u32 {
        decide(self, st, options)
    }

    pub(crate) fn aborting(&self) -> bool {
        self.state.lock().unwrap().abort
    }

    // -- atomics ---------------------------------------------------------

    /// A buffered value for `addr` by this thread, newest first.
    pub(crate) fn atomic_load(
        self: &Arc<Ctx>,
        tid: usize,
        addr: usize,
        what: &'static str,
    ) -> Option<u64> {
        if self.aborting() {
            return None;
        }
        let st = self.yield_op(tid, Op::Load { addr, what });
        st.threads[tid]
            .buffer
            .iter()
            .rev()
            .find(|e| e.addr == addr)
            .map(|e| e.val)
    }

    /// `true` → caller must perform the global store itself (SeqCst or
    /// unmanaged); `false` → the store was buffered.
    pub(crate) fn atomic_store(
        self: &Arc<Ctx>,
        tid: usize,
        addr: usize,
        val: u64,
        seq_cst: bool,
        apply: unsafe fn(usize, u64),
        what: &'static str,
    ) -> bool {
        if self.aborting() {
            return true;
        }
        let mut st = self.yield_op(
            tid,
            Op::Store {
                addr,
                what,
                seq_cst,
            },
        );
        if seq_cst {
            flush_buffer(&mut st, tid);
            true
        } else {
            st.threads[tid].buffer.push(BufEntry {
                addr,
                val,
                apply,
                what,
            });
            false
        }
    }

    /// RMWs drain the calling thread's buffer (x86: every RMW is a full
    /// barrier), then the caller applies the std RMW globally.
    pub(crate) fn atomic_rmw(self: &Arc<Ctx>, tid: usize, addr: usize, what: &'static str) {
        if self.aborting() {
            return;
        }
        let mut st = self.yield_op(tid, Op::Rmw { addr, what });
        flush_buffer(&mut st, tid);
    }

    /// Purges buffered stores to a dying object's address from every
    /// thread (facade `Drop`).
    pub(crate) fn purge_addr(&self, addr: usize) {
        let mut st = self.state.lock().unwrap();
        for t in st.threads.iter_mut() {
            t.buffer.retain(|e| e.addr != addr);
        }
    }

    // -- mutex -----------------------------------------------------------

    pub(crate) fn mutex_lock(self: &Arc<Ctx>, tid: usize, m: usize) {
        if self.aborting() {
            return;
        }
        let mut st = self.yield_op(tid, Op::Lock { m });
        st.mutexes.insert(m, MutexSt::Held { by: tid });
    }

    pub(crate) fn mutex_try_lock(self: &Arc<Ctx>, tid: usize, m: usize) -> bool {
        if self.aborting() {
            return true;
        }
        let mut st = self.yield_op(tid, Op::TryLock { m });
        match st.mutexes.get(&m).copied().unwrap_or(MutexSt::Free) {
            MutexSt::Free => {
                st.mutexes.insert(m, MutexSt::Held { by: tid });
                true
            }
            MutexSt::Held { .. } => false,
        }
    }

    /// Unlock is not a schedule point: the next enabled-set evaluation
    /// happens at the unlocking thread's next yield, which observes the
    /// same released state any interleaved thread would.
    pub(crate) fn mutex_unlock(&self, m: usize) {
        let mut st = self.state.lock().unwrap();
        st.mutexes.insert(m, MutexSt::Free);
    }

    // -- condvar ---------------------------------------------------------

    /// Releases `m`, parks on `cv` (optionally until `timeout`), and
    /// reacquires `m` before returning. Returns whether the wait timed
    /// out.
    pub(crate) fn cv_wait(
        self: &Arc<Ctx>,
        tid: usize,
        cv: usize,
        m: usize,
        timeout: Option<Duration>,
    ) -> bool {
        if self.aborting() {
            return false;
        }
        let deadline = timeout.map(|d| {
            let st = self.state.lock().unwrap();
            st.now.saturating_add(dur_ns(d))
        });
        let mut st = self.yield_op(tid, Op::CvWait { cv, m, deadline });
        // The grant performs release+park in one step.
        st.mutexes.insert(m, MutexSt::Free);
        st.threads[tid].status = Status::Blocked(Block::CvWait { cv, m, deadline });
        st.running = None;
        self.cv.notify_all();
        while st.running != Some(tid) && !st.abort {
            st = self.cv.wait(st).unwrap();
        }
        if st.abort {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
        // A notify or the clock converted us to `Reacquire` and the
        // coordinator granted it (mutex free): take the mutex.
        let timed_out = match st.threads[tid].status {
            Status::AtYield(Op::Reacquire { timed_out, .. }) => timed_out,
            other => unreachable!("woken condvar waiter in state {other:?}"),
        };
        st.mutexes.insert(m, MutexSt::Held { by: tid });
        timed_out
    }

    pub(crate) fn cv_notify(self: &Arc<Ctx>, tid: usize, cv: usize, all: bool) {
        if self.aborting() {
            return;
        }
        let mut st = self.yield_op(tid, Op::Notify { cv, all });
        let waiters: Vec<usize> = st
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                matches!(t.status, Status::Blocked(Block::CvWait { cv: c, .. }) if c == cv)
            })
            .map(|(i, _)| i)
            .collect();
        if waiters.is_empty() {
            return;
        }
        if all {
            for w in waiters {
                if let Status::Blocked(Block::CvWait { m, .. }) = st.threads[w].status {
                    st.threads[w].status = Status::AtYield(Op::Reacquire {
                        m,
                        timed_out: false,
                    });
                }
            }
        } else {
            let pick = self.choose(&mut st, waiters.len() as u32) as usize;
            let w = waiters[pick];
            if let Status::Blocked(Block::CvWait { m, .. }) = st.threads[w].status {
                st.threads[w].status = Status::AtYield(Op::Reacquire {
                    m,
                    timed_out: false,
                });
            }
        }
    }

    // -- OnceLock --------------------------------------------------------

    /// `init=false`: peek. `init=true`: claim initialization if empty.
    /// Returns the state seen (claim already applied for `Claimed`).
    pub(crate) fn once_enter(self: &Arc<Ctx>, tid: usize, o: usize, init: bool) -> OnceEnter {
        if self.aborting() {
            return OnceEnter::Aborting;
        }
        let mut st = self.yield_op(tid, Op::Once { o, init });
        match st.onces.get(&o).copied().unwrap_or(OnceSt::Empty) {
            OnceSt::Done => OnceEnter::Done,
            OnceSt::Empty if init => {
                st.onces.insert(o, OnceSt::Initializing { by: tid });
                OnceEnter::Claimed
            }
            OnceSt::Empty => OnceEnter::Empty,
            // The guard keeps us parked while another thread holds the
            // claim, so observing `Initializing` here is impossible.
            OnceSt::Initializing { .. } => unreachable!("once guard admitted during init"),
        }
    }

    /// Resolves a claimed initialization (success or unwind-rollback).
    pub(crate) fn once_resolve(&self, o: usize, done: bool) {
        let mut st = self.state.lock().unwrap();
        st.onces
            .insert(o, if done { OnceSt::Done } else { OnceSt::Empty });
    }

    // -- spawn / join / sleep -------------------------------------------

    /// Registers and launches a managed child thread; blocks (not a
    /// schedule point) until the child parks at its first one, so the
    /// schedule tree never races OS thread startup.
    pub(crate) fn spawn<T: Send + 'static>(
        self: &Arc<Ctx>,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> ModelJoin<T> {
        let child = {
            let mut st = self.state.lock().unwrap();
            if st.threads.len() >= self.opts.max_threads {
                st.failure.get_or_insert_with(|| {
                    format!(
                        "thread cap exceeded ({} model threads)",
                        self.opts.max_threads
                    )
                });
                drop(st);
                std::panic::panic_any(AbortToken);
            }
            st.threads.push(ThreadSt {
                status: Status::Starting,
                buffer: Vec::new(),
            });
            st.threads.len() - 1
        };
        let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
        let ctx = Arc::clone(self);
        let out = Arc::clone(&slot);
        std::thread::spawn(move || thread_main(ctx, child, f, Some(out)));
        let mut st = self.state.lock().unwrap();
        while st.threads[child].status == Status::Starting {
            st = self.cv.wait(st).unwrap();
        }
        ModelJoin { tid: child, slot }
    }

    pub(crate) fn join<T>(self: &Arc<Ctx>, tid: usize, j: &ModelJoin<T>) -> Option<T> {
        if self.aborting() {
            return j.slot.lock().unwrap().take();
        }
        let _st = self.yield_op(tid, Op::Join { t: j.tid });
        drop(_st);
        j.slot.lock().unwrap().take()
    }

    pub(crate) fn sleep(self: &Arc<Ctx>, tid: usize, d: Duration) {
        if self.aborting() {
            return;
        }
        let deadline = {
            let st = self.state.lock().unwrap();
            st.now.saturating_add(dur_ns(d))
        };
        let mut st = self.yield_op(tid, Op::Sleep { deadline });
        st.threads[tid].status = Status::Blocked(Block::Sleep { deadline });
        st.running = None;
        self.cv.notify_all();
        while st.running != Some(tid) && !st.abort {
            st = self.cv.wait(st).unwrap();
        }
        if st.abort {
            drop(st);
            std::panic::panic_any(AbortToken);
        }
    }

    pub(crate) fn yield_now(self: &Arc<Ctx>, tid: usize) {
        if self.aborting() {
            return;
        }
        drop(self.yield_op(tid, Op::Yield));
    }
}

/// Join state for a model-spawned thread.
#[derive(Debug)]
pub(crate) struct ModelJoin<T> {
    tid: usize,
    slot: Arc<StdMutex<Option<T>>>,
}

/// Outcome of a `OnceLock` schedule point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OnceEnter {
    Done,
    Empty,
    Claimed,
    Aborting,
}

fn dur_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vsync::{self, Ordering};
    use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdO};

    #[test]
    fn single_thread_program_runs_once() {
        let r = Explorer::new().exhaustive(100, || {
            let a = vsync::AtomicU64::new(0);
            a.store(3, Ordering::SeqCst);
            assert_eq!(a.load(Ordering::SeqCst), 3);
        });
        assert!(r.violation.is_none());
        assert!(r.complete);
        assert_eq!(r.executions, 1, "no branching in a 1-thread program");
    }

    #[test]
    fn two_racing_increments_explore_multiple_interleavings() {
        let execs = Arc::new(StdAtomicUsize::new(0));
        let e2 = Arc::clone(&execs);
        let r = Explorer::new().exhaustive(10_000, move || {
            e2.fetch_add(1, StdO::SeqCst);
            let a = Arc::new(vsync::AtomicU64::new(0));
            let b = Arc::clone(&a);
            let h = vsync::thread::spawn(move || {
                b.fetch_add(1, Ordering::SeqCst);
            });
            a.fetch_add(1, Ordering::SeqCst);
            h.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2, "RMWs never lose updates");
        });
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(r.complete);
        assert!(
            r.executions > 1,
            "scheduler must branch: {} executions",
            r.executions
        );
        assert_eq!(r.executions, execs.load(StdO::SeqCst) as u64);
    }

    #[test]
    fn exhaustive_finds_plain_store_race_lost_update() {
        // load;add;store (non-atomic RMW) must lose an update in SOME
        // interleaving — the canonical "checker has teeth" smoke.
        let r = Explorer::new().exhaustive(10_000, || {
            let a = Arc::new(vsync::AtomicU64::new(0));
            let b = Arc::clone(&a);
            let h = vsync::thread::spawn(move || {
                let v = b.load(Ordering::SeqCst);
                b.store(v + 1, Ordering::SeqCst);
            });
            let v = a.load(Ordering::SeqCst);
            a.store(v + 1, Ordering::SeqCst);
            h.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2);
        });
        let v = r.violation.expect("lost update must be found");
        assert!(
            v.message.contains("assertion"),
            "unexpected message: {}",
            v.message
        );
        assert!(!v.schedule.is_empty());
    }

    #[test]
    fn violation_schedule_replays_deterministically() {
        let program = || {
            let a = Arc::new(vsync::AtomicU64::new(0));
            let b = Arc::clone(&a);
            let h = vsync::thread::spawn(move || {
                let v = b.load(Ordering::SeqCst);
                b.store(v + 1, Ordering::SeqCst);
            });
            let v = a.load(Ordering::SeqCst);
            a.store(v + 1, Ordering::SeqCst);
            h.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2);
        };
        let v = Explorer::new()
            .exhaustive(10_000, program)
            .violation
            .unwrap();
        let replayed = Explorer::new().replay(&v.schedule, program);
        let rv = replayed
            .violation
            .expect("replay must reproduce the violation");
        assert_eq!(rv.message, v.message);
        // And the dotted round-trip parses back.
        let parsed = parse_schedule(&render_schedule(&v.schedule)).unwrap();
        assert_eq!(parsed.len(), v.schedule.len());
    }

    #[test]
    fn random_walks_are_seed_reproducible() {
        let program = || {
            let a = Arc::new(vsync::AtomicU64::new(0));
            let b = Arc::clone(&a);
            let h = vsync::thread::spawn(move || {
                let v = b.load(Ordering::SeqCst);
                b.store(v + 1, Ordering::SeqCst);
            });
            let v = a.load(Ordering::SeqCst);
            a.store(v + 1, Ordering::SeqCst);
            h.join().unwrap();
            assert_eq!(a.load(Ordering::SeqCst), 2);
        };
        let r1 = Explorer::new().random(42, 500, program);
        let r2 = Explorer::new().random(42, 500, program);
        match (&r1.violation, &r2.violation) {
            (Some(a), Some(b)) => {
                assert_eq!(a.execution, b.execution);
                assert_eq!(a.schedule, b.schedule);
            }
            (None, None) => panic!("500 random walks should hit the lost update"),
            _ => panic!("same seed, different outcome"),
        }
    }

    #[test]
    fn deadlock_is_detected_with_live_thread_report() {
        // Classic lock-order inversion AB/BA.
        let r = Explorer::new().exhaustive(50_000, || {
            let m1 = Arc::new(vsync::Mutex::new(()));
            let m2 = Arc::new(vsync::Mutex::new(()));
            let (a1, a2) = (Arc::clone(&m1), Arc::clone(&m2));
            let h = vsync::thread::spawn(move || {
                let g1 = a1.lock().unwrap();
                let g2 = a2.lock().unwrap();
                drop((g1, g2));
            });
            let g2 = m2.lock().unwrap();
            let g1 = m1.lock().unwrap();
            drop((g1, g2));
            h.join().unwrap();
        });
        let v = r.violation.expect("AB/BA deadlock must be found");
        assert!(v.message.contains("deadlock"), "{}", v.message);
        assert!(
            v.message.contains("mutex.lock") || v.message.contains("Lock"),
            "{}",
            v.message
        );
    }

    #[test]
    fn lost_notify_without_timeout_deadlocks() {
        let r = Explorer::new().exhaustive(10_000, || {
            let pair = Arc::new((vsync::Mutex::new(false), vsync::Condvar::new()));
            let p2 = Arc::clone(&pair);
            let h = vsync::thread::spawn(move || {
                let (m, _cv) = &*p2;
                // Bug under test: flag set but no notify.
                *m.lock().unwrap() = true;
            });
            let (m, cv) = &*pair;
            let mut done = m.lock().unwrap();
            while !*done {
                done = cv.wait(done).unwrap();
            }
            drop(done);
            h.join().unwrap();
        });
        let v = r
            .violation
            .expect("lost notify must deadlock in some schedule");
        assert!(v.message.contains("deadlock"), "{}", v.message);
    }

    #[test]
    fn timed_wait_progresses_via_virtual_clock() {
        let r = Explorer::new().exhaustive(10_000, || {
            let pair = Arc::new((vsync::Mutex::new(false), vsync::Condvar::new()));
            let (m, cv) = &*pair;
            let g = m.lock().unwrap();
            let t0 = vsync::Instant::now();
            let (g, t) = cv.wait_timeout(g, Duration::from_millis(5)).unwrap();
            assert!(t.timed_out());
            assert!(
                t0.elapsed() >= Duration::from_millis(5),
                "virtual clock must advance"
            );
            drop(g);
        });
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(r.complete);
    }

    #[test]
    fn tso_store_buffering_is_observable_with_relaxed_stores() {
        // Dekker/SB litmus: with Relaxed stores both threads can read 0
        // under TSO; with SeqCst stores they cannot.
        let run = |seq_cst: bool| {
            Explorer::new().exhaustive(200_000, move || {
                let x = Arc::new(vsync::AtomicU64::new(0));
                let y = Arc::new(vsync::AtomicU64::new(0));
                let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
                let ord = if seq_cst {
                    Ordering::SeqCst
                } else {
                    Ordering::Relaxed
                };
                // T1: x := 1; read y.  T2 (inline): y := 1; read x.
                let h = vsync::thread::spawn(move || {
                    x2.store(1, ord);
                    y2.load(Ordering::SeqCst)
                });
                y.store(1, ord);
                let rx = x.load(Ordering::SeqCst);
                let ry = h.join().unwrap();
                assert!(
                    !(rx == 0 && ry == 0 && seq_cst),
                    "SB litmus: both threads read 0 despite SeqCst stores"
                );
                if rx == 0 && ry == 0 {
                    panic!("sb-relaxed-both-zero");
                }
            })
        };
        // SeqCst: the forbidden outcome must NOT appear anywhere.
        let r = run(true);
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(r.complete);
        // Relaxed: the store-buffer outcome MUST appear somewhere.
        let v = run(false)
            .violation
            .expect("TSO must expose both-zero under Relaxed");
        assert!(v.message.contains("sb-relaxed-both-zero"), "{}", v.message);
    }

    #[test]
    fn step_bound_reports_livelock() {
        let r = Explorer::with_options(Options {
            max_steps: 64,
            ..Options::default()
        })
        .exhaustive(4, || {
            let a = vsync::AtomicU64::new(0);
            loop {
                if a.load(Ordering::SeqCst) == 1 {
                    break; // never
                }
            }
        });
        let v = r
            .violation
            .expect("unbounded spin must trip the step bound");
        assert!(v.message.contains("step bound"), "{}", v.message);
    }

    #[test]
    fn notify_one_choice_branches_over_waiters() {
        // Two waiters, one notify_one: both pick orders must be
        // explored; the late waiter is freed by a final notify_all.
        let r = Explorer::new().exhaustive(200_000, || {
            let pair = Arc::new((vsync::Mutex::new(0u32), vsync::Condvar::new()));
            let mk = |p: Arc<(vsync::Mutex<u32>, vsync::Condvar)>| {
                vsync::thread::spawn(move || {
                    let (m, cv) = &*p;
                    let mut g = m.lock().unwrap();
                    while *g == 0 {
                        g = cv.wait(g).unwrap();
                    }
                    *g -= 1;
                })
            };
            let h1 = mk(Arc::clone(&pair));
            let h2 = mk(Arc::clone(&pair));
            let (m, cv) = &*pair;
            *m.lock().unwrap() = 2;
            cv.notify_one();
            cv.notify_all();
            h1.join().unwrap();
            h2.join().unwrap();
            assert_eq!(*m.lock().unwrap(), 0);
        });
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(r.complete);
    }

    #[test]
    fn once_lock_initializes_exactly_once_under_races() {
        let r = Explorer::new().exhaustive(100_000, || {
            let inits = Arc::new(vsync::AtomicU64::new(0));
            let o: Arc<vsync::OnceLock<u64>> = Arc::new(vsync::OnceLock::new());
            let (o2, i2) = (Arc::clone(&o), Arc::clone(&inits));
            let h = vsync::thread::spawn(move || {
                *o2.get_or_init(|| {
                    i2.fetch_add(1, Ordering::SeqCst);
                    7
                })
            });
            let a = *o.get_or_init(|| {
                inits.fetch_add(1, Ordering::SeqCst);
                7
            });
            let b = h.join().unwrap();
            assert_eq!((a, b), (7, 7));
            assert_eq!(
                inits.load(Ordering::SeqCst),
                1,
                "exactly one initializer runs"
            );
        });
        assert!(r.violation.is_none(), "{:?}", r.violation);
        assert!(r.complete);
    }
}
