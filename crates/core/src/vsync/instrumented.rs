//! `mcheck`-build facade types: `std`-API-compatible wrappers that
//! route operations through [`super::model`]'s cooperative scheduler
//! *when both the object and the calling thread belong to a model
//! execution*, and fall straight through to `std` otherwise.
//!
//! Mode is decided at construction: an object created on a managed
//! model thread is a *model object*; everything else is a *std object*.
//! Cargo feature unification means ordinary workspace tests compile
//! against these wrappers too — their objects are all std-mode, so
//! behavior is unchanged. Two mixings are unsupported by design and
//! documented in DESIGN.md: touching a std-mode global from inside a
//! model program (the op bypasses the scheduler and can block it for
//! real), and touching a model object from an unmanaged thread.
//!
//! Abort teardown: when an execution aborts (violation found), model
//! threads unwind via a panic token and every facade op degenerates to
//! a non-model `std` operation so destructors always complete.

use std::fmt;
use std::ops::{Add, Deref, DerefMut, Sub};
use std::sync::atomic::{
    AtomicBool as StdAtomicBool, AtomicPtr as StdAtomicPtr, AtomicU64 as StdAtomicU64,
    AtomicUsize as StdAtomicUsize,
};
use std::sync::{
    Arc, Condvar as StdCondvar, LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard,
    OnceLock as StdOnceLock, PoisonError, TryLockError, TryLockResult,
};
use std::time::{Duration, Instant as StdInstant};

use super::model::{self, Ctx, OnceEnter};
use super::Ordering;

/// Whether an object routes through the model scheduler; fixed at
/// construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Std,
    Model,
}

impl Mode {
    fn current() -> Mode {
        if model::is_managed() {
            Mode::Model
        } else {
            Mode::Std
        }
    }
}

/// The calling thread's model context, iff this op should be modeled.
fn mctx(mode: Mode) -> Option<(Arc<Ctx>, usize)> {
    match mode {
        Mode::Model => model::current(),
        Mode::Std => None,
    }
}

// ---------------------------------------------------------------------------
// Mutex / MutexGuard
// ---------------------------------------------------------------------------

/// Facade mutex: the data always lives in an inner `std::sync::Mutex`;
/// in model mode the scheduler decides who may take it, so the inner
/// lock is uncontended by construction.
pub struct Mutex<T> {
    mode: Mode,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates the mutex; model-mode iff constructed on a managed
    /// thread.
    pub fn new(t: T) -> Mutex<T> {
        Mutex {
            mode: Mode::current(),
            inner: StdMutex::new(t),
        }
    }

    fn key(&self) -> usize {
        &self.inner as *const StdMutex<T> as usize
    }

    /// Takes the inner std lock after the model has granted exclusivity
    /// (or during abort teardown, where blocking for real is correct).
    fn take_inner(&self) -> StdMutexGuard<'_, T> {
        match self.inner.try_lock() {
            Ok(g) => g,
            Err(TryLockError::Poisoned(p)) => p.into_inner(),
            Err(TryLockError::WouldBlock) => {
                self.inner.lock().unwrap_or_else(PoisonError::into_inner)
            }
        }
    }

    /// Locks, blocking (via the scheduler in model mode).
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some((ctx, tid)) = mctx(self.mode) {
            ctx.mutex_lock(tid, self.key());
            Ok(MutexGuard {
                lock: self,
                inner: Some(self.take_inner()),
                model: true,
            })
        } else {
            match self.inner.lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model: false,
                }),
                Err(e) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(e.into_inner()),
                    model: false,
                })),
            }
        }
    }

    /// Non-blocking lock attempt (a schedule point in model mode).
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        if let Some((ctx, tid)) = mctx(self.mode) {
            if ctx.mutex_try_lock(tid, self.key()) {
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(self.take_inner()),
                    model: true,
                })
            } else {
                Err(TryLockError::WouldBlock)
            }
        } else {
            match self.inner.try_lock() {
                Ok(g) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(g),
                    model: false,
                }),
                Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
                Err(TryLockError::Poisoned(e)) => {
                    Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                        lock: self,
                        inner: Some(e.into_inner()),
                        model: false,
                    })))
                }
            }
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("inner", &self.inner).finish()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

/// Guard for [`Mutex`]; releases the model lock state on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    /// Whether drop must release the model-side lock state.
    model: bool,
}

impl<'a, T> MutexGuard<'a, T> {
    /// Disassembles without running `Drop` (so no model unlock).
    fn into_parts(mut self) -> (&'a Mutex<T>, StdMutexGuard<'a, T>, bool) {
        let inner = self.inner.take().expect("guard already dissolved");
        let lock = self.lock;
        let model = self.model;
        std::mem::forget(self);
        (lock, inner, model)
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard already dissolved")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard already dissolved")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Drop the std guard first; the model release below is what
        // actually lets other model threads in.
        self.inner = None;
        if self.model {
            if let Some((ctx, _tid)) = model::current() {
                ctx.mutex_unlock(self.lock.key());
            }
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

/// Result of [`Condvar::wait_timeout`]; mirrors
/// `std::sync::WaitTimeoutResult` (which has no public constructor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Facade condition variable. In model mode, waiting releases the
/// model mutex and parks in the scheduler; notify is a schedule point
/// that picks the woken waiter (a `notify_one` over several waiters is
/// an explored branch).
pub struct Condvar {
    mode: Mode,
    inner: StdCondvar,
}

impl Condvar {
    /// Creates the condvar; model-mode iff constructed on a managed
    /// thread.
    pub fn new() -> Condvar {
        Condvar {
            mode: Mode::current(),
            inner: StdCondvar::new(),
        }
    }

    fn key(&self) -> usize {
        &self.inner as *const StdCondvar as usize
    }

    fn wait_inner<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        timeout: Option<Duration>,
    ) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
        let modeled = guard.model && self.mode == Mode::Model;
        if modeled {
            if let Some((ctx, tid)) = model::current() {
                let (lock, inner, _) = guard.into_parts();
                drop(inner);
                let timed_out = ctx.cv_wait(tid, self.key(), lock.key(), timeout);
                let g = MutexGuard {
                    lock,
                    inner: Some(lock.take_inner()),
                    model: true,
                };
                return (g, WaitTimeoutResult(timed_out));
            }
            // Model guard on an unmanaged thread: unsupported mixing;
            // fall through to the std wait below.
        }
        let (lock, inner, model) = guard.into_parts();
        match timeout {
            None => {
                let g = self
                    .inner
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
                (
                    MutexGuard {
                        lock,
                        inner: Some(g),
                        model,
                    },
                    WaitTimeoutResult(false),
                )
            }
            Some(d) => {
                let (g, r) = self
                    .inner
                    .wait_timeout(inner, d)
                    .unwrap_or_else(PoisonError::into_inner);
                (
                    MutexGuard {
                        lock,
                        inner: Some(g),
                        model,
                    },
                    WaitTimeoutResult(r.timed_out()),
                )
            }
        }
    }

    /// Waits until notified; reacquires the mutex before returning.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        Ok(self.wait_inner(guard, None).0)
    }

    /// Waits until notified or `dur` elapses (the model's virtual clock
    /// in model mode — it only advances when nothing else can run).
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        Ok(self.wait_inner(guard, Some(dur)))
    }

    /// Wakes one waiter (scheduler-chosen in model mode).
    pub fn notify_one(&self) {
        if let Some((ctx, tid)) = mctx(self.mode) {
            ctx.cv_notify(tid, self.key(), false);
        } else {
            self.inner.notify_one();
        }
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        if let Some((ctx, tid)) = mctx(self.mode) {
            ctx.cv_notify(tid, self.key(), true);
        } else {
            self.inner.notify_all();
        }
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

// ---------------------------------------------------------------------------
// OnceLock
// ---------------------------------------------------------------------------

/// Facade one-shot cell. In model mode the *claim* to initialize is a
/// schedule point; racing claimants park until the winner resolves, so
/// exactly one initializer runs per interleaving and the scheduler can
/// interleave code before/after the claim.
pub struct OnceLock<T> {
    mode: Mode,
    inner: StdOnceLock<T>,
}

/// Rolls a claimed initialization back if the initializer unwinds.
struct InitClaim<'a> {
    ctx: &'a Arc<Ctx>,
    key: usize,
    done: bool,
}

impl Drop for InitClaim<'_> {
    fn drop(&mut self) {
        self.ctx.once_resolve(self.key, self.done);
    }
}

impl<T> OnceLock<T> {
    /// Creates an empty cell; model-mode iff constructed on a managed
    /// thread.
    pub fn new() -> OnceLock<T> {
        OnceLock {
            mode: Mode::current(),
            inner: StdOnceLock::new(),
        }
    }

    fn key(&self) -> usize {
        &self.inner as *const StdOnceLock<T> as usize
    }

    /// The value, if initialization has completed.
    pub fn get(&self) -> Option<&T> {
        if let Some((ctx, tid)) = mctx(self.mode) {
            match ctx.once_enter(tid, self.key(), false) {
                OnceEnter::Done | OnceEnter::Aborting => self.inner.get(),
                OnceEnter::Empty | OnceEnter::Claimed => None,
            }
        } else {
            self.inner.get()
        }
    }

    /// Sets the value if empty; `Err(value)` if already initialized.
    pub fn set(&self, value: T) -> Result<(), T> {
        if let Some((ctx, tid)) = mctx(self.mode) {
            match ctx.once_enter(tid, self.key(), true) {
                OnceEnter::Done => Err(value),
                OnceEnter::Aborting => self.inner.set(value),
                OnceEnter::Claimed => {
                    let r = self.inner.set(value);
                    ctx.once_resolve(self.key(), r.is_ok());
                    r
                }
                OnceEnter::Empty => unreachable!("claimed init returned Empty"),
            }
        } else {
            self.inner.set(value)
        }
    }

    /// Takes the value out, emptying the cell. `&mut self` guarantees
    /// no concurrent initializer, so the model state just resets.
    pub fn take(&mut self) -> Option<T> {
        if self.mode == Mode::Model {
            if let Some((ctx, _tid)) = model::current() {
                ctx.once_resolve(self.key(), false);
            }
        }
        self.inner.take()
    }

    /// Returns the value, initializing it with `f` if empty; exactly
    /// one racing initializer runs.
    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
        if let Some((ctx, tid)) = mctx(self.mode) {
            match ctx.once_enter(tid, self.key(), true) {
                OnceEnter::Done => self.inner.get().expect("once marked Done but empty"),
                OnceEnter::Aborting => self.inner.get_or_init(f),
                OnceEnter::Claimed => {
                    let mut claim = InitClaim {
                        ctx: &ctx,
                        key: self.key(),
                        done: false,
                    };
                    let v = f();
                    let _ = self.inner.set(v);
                    claim.done = true;
                    drop(claim);
                    self.inner.get().expect("just initialized")
                }
                OnceEnter::Empty => unreachable!("claimed init returned Empty"),
            }
        } else {
            self.inner.get_or_init(f)
        }
    }
}

impl<T> Default for OnceLock<T> {
    fn default() -> OnceLock<T> {
        OnceLock::new()
    }
}

impl<T: fmt::Debug> fmt::Debug for OnceLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OnceLock")
            .field("inner", &self.inner)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Atomics
// ---------------------------------------------------------------------------

macro_rules! atomic_int {
    ($(#[$doc:meta])* $Name:ident, $Std:ty, $Prim:ty, $label:literal) => {
        $(#[$doc])*
        pub struct $Name {
            mode: Mode,
            inner: $Std,
        }

        impl $Name {
            /// Creates the atomic; model-mode iff constructed on a
            /// managed thread.
            pub fn new(v: $Prim) -> $Name {
                $Name { mode: Mode::current(), inner: <$Std>::new(v) }
            }

            fn key(&self) -> usize {
                &self.inner as *const $Std as usize
            }

            /// Store-buffer flush thunk: writes a drained buffered
            /// store to the real atomic.
            ///
            /// # Safety
            /// `addr` must be the address of this object's live inner
            /// atomic; `Drop` purges pending entries to uphold that.
            unsafe fn apply(addr: usize, val: u64) {
                // SAFETY: per the contract above, `addr` points at a
                // live atomic of the right type.
                unsafe { (*(addr as *const $Std)).store(val as $Prim, Ordering::SeqCst) }
            }

            /// Atomic load (never drains store buffers: TSO loads do
            /// not reorder, but they do read the thread's own buffer
            /// first).
            pub fn load(&self, ord: Ordering) -> $Prim {
                match mctx(self.mode) {
                    Some((ctx, tid)) => match ctx.atomic_load(tid, self.key(), $label) {
                        Some(v) => v as $Prim,
                        None => self.inner.load(Ordering::SeqCst),
                    },
                    None => self.inner.load(ord),
                }
            }

            /// Atomic store; non-`SeqCst` stores enter the thread's
            /// store buffer in model mode.
            pub fn store(&self, v: $Prim, ord: Ordering) {
                match mctx(self.mode) {
                    Some((ctx, tid)) => {
                        let seq_cst = matches!(ord, Ordering::SeqCst);
                        if ctx.atomic_store(tid, self.key(), v as u64, seq_cst, Self::apply, $label)
                        {
                            self.inner.store(v, Ordering::SeqCst);
                        }
                    }
                    None => self.inner.store(v, ord),
                }
            }

            /// Gate for read-modify-writes: a schedule point that also
            /// drains the calling thread's buffer (every RMW is a full
            /// barrier under TSO). Returns the effective ordering.
            fn rmw(&self, ord: Ordering) -> Ordering {
                match mctx(self.mode) {
                    Some((ctx, tid)) => {
                        ctx.atomic_rmw(tid, self.key(), $label);
                        Ordering::SeqCst
                    }
                    None => ord,
                }
            }

            /// Atomic swap.
            pub fn swap(&self, v: $Prim, ord: Ordering) -> $Prim {
                let ord = self.rmw(ord);
                self.inner.swap(v, ord)
            }

            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: $Prim, ord: Ordering) -> $Prim {
                let ord = self.rmw(ord);
                self.inner.fetch_add(v, ord)
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, v: $Prim, ord: Ordering) -> $Prim {
                let ord = self.rmw(ord);
                self.inner.fetch_sub(v, ord)
            }

            /// Atomic max, returning the previous value.
            pub fn fetch_max(&self, v: $Prim, ord: Ordering) -> $Prim {
                let ord = self.rmw(ord);
                self.inner.fetch_max(v, ord)
            }

            /// Atomic min, returning the previous value.
            pub fn fetch_min(&self, v: $Prim, ord: Ordering) -> $Prim {
                let ord = self.rmw(ord);
                self.inner.fetch_min(v, ord)
            }

            /// Atomic compare-exchange.
            pub fn compare_exchange(
                &self,
                current: $Prim,
                new: $Prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$Prim, $Prim> {
                match mctx(self.mode) {
                    Some((ctx, tid)) => {
                        ctx.atomic_rmw(tid, self.key(), $label);
                        self.inner.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                    }
                    None => self.inner.compare_exchange(current, new, success, failure),
                }
            }

            /// Atomic compare-exchange; spurious failure is legal (the
            /// model uses the strong form — fewer uninteresting
            /// branches).
            pub fn compare_exchange_weak(
                &self,
                current: $Prim,
                new: $Prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$Prim, $Prim> {
                match mctx(self.mode) {
                    Some((ctx, tid)) => {
                        ctx.atomic_rmw(tid, self.key(), $label);
                        self.inner.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                    }
                    None => self.inner.compare_exchange_weak(current, new, success, failure),
                }
            }
        }

        impl Drop for $Name {
            fn drop(&mut self) {
                if self.mode == Mode::Model {
                    if let Some((ctx, _tid)) = model::current() {
                        ctx.purge_addr(self.key());
                    }
                }
            }
        }

        impl Default for $Name {
            fn default() -> $Name {
                $Name::new(0)
            }
        }

        impl fmt::Debug for $Name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.debug_tuple(stringify!($Name)).field(&self.inner).finish()
            }
        }
    };
}

atomic_int!(
    /// Facade `AtomicU64` (TSO store buffers in model mode).
    AtomicU64,
    StdAtomicU64,
    u64,
    "u64"
);
atomic_int!(
    /// Facade `AtomicUsize` (TSO store buffers in model mode).
    AtomicUsize,
    StdAtomicUsize,
    usize,
    "usize"
);

/// Facade `AtomicBool` (TSO store buffers in model mode).
pub struct AtomicBool {
    mode: Mode,
    inner: StdAtomicBool,
}

impl AtomicBool {
    /// Creates the atomic; model-mode iff constructed on a managed
    /// thread.
    pub fn new(v: bool) -> AtomicBool {
        AtomicBool {
            mode: Mode::current(),
            inner: StdAtomicBool::new(v),
        }
    }

    fn key(&self) -> usize {
        &self.inner as *const StdAtomicBool as usize
    }

    /// Store-buffer flush thunk.
    ///
    /// # Safety
    /// `addr` must be the address of this object's live inner atomic.
    unsafe fn apply(addr: usize, val: u64) {
        // SAFETY: per the contract above.
        unsafe { (*(addr as *const StdAtomicBool)).store(val != 0, Ordering::SeqCst) }
    }

    /// Atomic load.
    pub fn load(&self, ord: Ordering) -> bool {
        match mctx(self.mode) {
            Some((ctx, tid)) => match ctx.atomic_load(tid, self.key(), "bool") {
                Some(v) => v != 0,
                None => self.inner.load(Ordering::SeqCst),
            },
            None => self.inner.load(ord),
        }
    }

    /// Atomic store; non-`SeqCst` stores are buffered in model mode.
    pub fn store(&self, v: bool, ord: Ordering) {
        match mctx(self.mode) {
            Some((ctx, tid)) => {
                let seq_cst = matches!(ord, Ordering::SeqCst);
                if ctx.atomic_store(tid, self.key(), v as u64, seq_cst, Self::apply, "bool") {
                    self.inner.store(v, Ordering::SeqCst);
                }
            }
            None => self.inner.store(v, ord),
        }
    }

    /// Atomic swap.
    pub fn swap(&self, v: bool, ord: Ordering) -> bool {
        match mctx(self.mode) {
            Some((ctx, tid)) => {
                ctx.atomic_rmw(tid, self.key(), "bool");
                self.inner.swap(v, Ordering::SeqCst)
            }
            None => self.inner.swap(v, ord),
        }
    }

    /// Atomic compare-exchange.
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        match mctx(self.mode) {
            Some((ctx, tid)) => {
                ctx.atomic_rmw(tid, self.key(), "bool");
                self.inner
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }
            None => self.inner.compare_exchange(current, new, success, failure),
        }
    }
}

impl Drop for AtomicBool {
    fn drop(&mut self) {
        if self.mode == Mode::Model {
            if let Some((ctx, _tid)) = model::current() {
                ctx.purge_addr(self.key());
            }
        }
    }
}

impl Default for AtomicBool {
    fn default() -> AtomicBool {
        AtomicBool::new(false)
    }
}

impl fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("AtomicBool").field(&self.inner).finish()
    }
}

/// Facade `AtomicPtr` (TSO store buffers in model mode).
pub struct AtomicPtr<T> {
    mode: Mode,
    inner: StdAtomicPtr<T>,
}

impl<T> AtomicPtr<T> {
    /// Creates the atomic; model-mode iff constructed on a managed
    /// thread.
    pub fn new(p: *mut T) -> AtomicPtr<T> {
        AtomicPtr {
            mode: Mode::current(),
            inner: StdAtomicPtr::new(p),
        }
    }

    fn key(&self) -> usize {
        &self.inner as *const StdAtomicPtr<T> as usize
    }

    /// Store-buffer flush thunk.
    ///
    /// # Safety
    /// `addr` must be the address of this object's live inner atomic.
    unsafe fn apply(addr: usize, val: u64) {
        // SAFETY: per the contract above.
        unsafe {
            (*(addr as *const StdAtomicPtr<T>)).store(val as usize as *mut T, Ordering::SeqCst)
        }
    }

    /// Atomic load.
    pub fn load(&self, ord: Ordering) -> *mut T {
        match mctx(self.mode) {
            Some((ctx, tid)) => match ctx.atomic_load(tid, self.key(), "ptr") {
                Some(v) => v as usize as *mut T,
                None => self.inner.load(Ordering::SeqCst),
            },
            None => self.inner.load(ord),
        }
    }

    /// Atomic store; non-`SeqCst` stores are buffered in model mode.
    pub fn store(&self, p: *mut T, ord: Ordering) {
        match mctx(self.mode) {
            Some((ctx, tid)) => {
                let seq_cst = matches!(ord, Ordering::SeqCst);
                if ctx.atomic_store(
                    tid,
                    self.key(),
                    p as usize as u64,
                    seq_cst,
                    Self::apply,
                    "ptr",
                ) {
                    self.inner.store(p, Ordering::SeqCst);
                }
            }
            None => self.inner.store(p, ord),
        }
    }

    /// Atomic swap.
    pub fn swap(&self, p: *mut T, ord: Ordering) -> *mut T {
        match mctx(self.mode) {
            Some((ctx, tid)) => {
                ctx.atomic_rmw(tid, self.key(), "ptr");
                self.inner.swap(p, Ordering::SeqCst)
            }
            None => self.inner.swap(p, ord),
        }
    }

    /// Atomic compare-exchange.
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        match mctx(self.mode) {
            Some((ctx, tid)) => {
                ctx.atomic_rmw(tid, self.key(), "ptr");
                self.inner
                    .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
            }
            None => self.inner.compare_exchange(current, new, success, failure),
        }
    }
}

impl<T> Drop for AtomicPtr<T> {
    fn drop(&mut self) {
        if self.mode == Mode::Model {
            if let Some((ctx, _tid)) = model::current() {
                ctx.purge_addr(self.key());
            }
        }
    }
}

impl<T> Default for AtomicPtr<T> {
    fn default() -> AtomicPtr<T> {
        AtomicPtr::new(std::ptr::null_mut())
    }
}

impl<T> fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("AtomicPtr").field(&self.inner).finish()
    }
}

// ---------------------------------------------------------------------------
// Instant (virtual clock)
// ---------------------------------------------------------------------------

/// Facade instant: wall clock off-model, the execution's virtual clock
/// (nanoseconds, advancing only at quiescence) on managed threads.
/// Real and virtual instants never mix in practice — mixed-variant
/// differences saturate to zero rather than panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Instant {
    /// Wall-clock instant (unmanaged threads).
    Real(StdInstant),
    /// Virtual nanoseconds since execution start (managed threads).
    Virtual(u64),
}

impl Instant {
    /// The current instant on the calling thread's clock.
    pub fn now() -> Instant {
        match model::virtual_now() {
            Some(n) => Instant::Virtual(n),
            None => Instant::Real(StdInstant::now()),
        }
    }

    /// Time since `earlier`, or zero if `earlier` is later (or on a
    /// different clock).
    pub fn saturating_duration_since(&self, earlier: Instant) -> Duration {
        match (self, earlier) {
            (Instant::Real(a), Instant::Real(b)) => a.saturating_duration_since(b),
            (Instant::Virtual(a), Instant::Virtual(b)) => Duration::from_nanos(a.saturating_sub(b)),
            _ => Duration::ZERO,
        }
    }

    /// Alias of [`Instant::saturating_duration_since`] (the facade
    /// never panics on clock skew).
    pub fn duration_since(&self, earlier: Instant) -> Duration {
        self.saturating_duration_since(earlier)
    }

    /// Time since this instant on its own clock.
    pub fn elapsed(&self) -> Duration {
        Instant::now().saturating_duration_since(*self)
    }

    /// `self + d`, `None` on overflow.
    pub fn checked_add(&self, d: Duration) -> Option<Instant> {
        match self {
            Instant::Real(a) => a.checked_add(d).map(Instant::Real),
            Instant::Virtual(a) => {
                let ns = u64::try_from(d.as_nanos()).ok()?;
                a.checked_add(ns).map(Instant::Virtual)
            }
        }
    }
}

impl Add<Duration> for Instant {
    type Output = Instant;
    fn add(self, d: Duration) -> Instant {
        match self {
            Instant::Real(a) => Instant::Real(a + d),
            Instant::Virtual(a) => {
                Instant::Virtual(a.saturating_add(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)))
            }
        }
    }
}

impl Sub<Instant> for Instant {
    type Output = Duration;
    fn sub(self, other: Instant) -> Duration {
        self.saturating_duration_since(other)
    }
}

// ---------------------------------------------------------------------------
// thread
// ---------------------------------------------------------------------------

/// Facade `thread`: spawn/join/sleep/yield route through the scheduler
/// on managed threads and through `std::thread` otherwise.
pub mod thread {
    use super::*;
    use std::any::Any;

    enum Repr<T> {
        Std(std::thread::JoinHandle<T>),
        Model(model::ModelJoin<T>),
    }

    /// Facade join handle.
    pub struct JoinHandle<T>(Repr<T>);

    impl<T> JoinHandle<T> {
        /// Joins the thread (a schedule point in model mode, enabled
        /// once the target finishes). Model threads that panicked or
        /// were aborted yield `Err` — though a panic aborts the whole
        /// execution first, so model code rarely observes it.
        pub fn join(self) -> std::thread::Result<T> {
            match self.0 {
                Repr::Std(h) => h.join(),
                Repr::Model(j) => {
                    let (ctx, tid) =
                        model::current().expect("model thread joined from unmanaged thread");
                    ctx.join(tid, &j).ok_or_else(|| {
                        Box::new("model thread produced no value (panicked or aborted)".to_string())
                            as Box<dyn Any + Send>
                    })
                }
            }
        }
    }

    impl<T> fmt::Debug for JoinHandle<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("JoinHandle").finish_non_exhaustive()
        }
    }

    /// Spawns a thread: a managed model thread when called from one,
    /// a plain OS thread otherwise.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match model::current() {
            Some((ctx, _tid)) => JoinHandle(Repr::Model(ctx.spawn(f))),
            None => JoinHandle(Repr::Std(std::thread::spawn(f))),
        }
    }

    /// Facade thread builder (name is advisory; model threads ignore
    /// it — traces identify threads by spawn-ordered id).
    pub struct Builder {
        inner: std::thread::Builder,
    }

    impl Builder {
        /// A builder with default settings.
        pub fn new() -> Builder {
            Builder {
                inner: std::thread::Builder::new(),
            }
        }

        /// Names the thread (std mode only).
        pub fn name(self, name: String) -> Builder {
            Builder {
                inner: self.inner.name(name),
            }
        }

        /// Spawns; infallible in model mode (the scheduler has no
        /// spawn errors — thread-cap violations abort the execution).
        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            match model::current() {
                Some((ctx, _tid)) => Ok(JoinHandle(Repr::Model(ctx.spawn(f)))),
                None => self.inner.spawn(f).map(|h| JoinHandle(Repr::Std(h))),
            }
        }
    }

    impl Default for Builder {
        fn default() -> Builder {
            Builder::new()
        }
    }

    impl fmt::Debug for Builder {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Builder").finish_non_exhaustive()
        }
    }

    /// Sleeps: virtual-clock sleep in model mode (a schedule point
    /// that parks until the clock reaches the deadline), real sleep
    /// otherwise.
    pub fn sleep(d: Duration) {
        match model::current() {
            Some((ctx, tid)) => ctx.sleep(tid, d),
            None => std::thread::sleep(d),
        }
    }

    /// Yields: an explicit schedule point in model mode.
    pub fn yield_now() {
        match model::current() {
            Some((ctx, tid)) => ctx.yield_now(tid),
            None => std::thread::yield_now(),
        }
    }
}
